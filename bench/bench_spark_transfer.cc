// Figure 7: database -> Spark data transfer. Measures the two levers the
// paper describes: collocated per-node shard fetch vs plain remote JDBC,
// and WHERE pushdown vs transfer-then-filter; plus end-to-end GLM training
// time on the transferred dataset.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "spark/connector.h"
#include "spark/glm.h"

using namespace dashdb;
using namespace dashdb::bench;
using namespace dashdb::spark;

int main() {
  PrintHeader("Figure 7: Spark transfer modes (collocated/pushdown)");
  MppDatabase db(4, 4, 8, size_t{16} << 30);
  TableSchema schema("PUBLIC", "OBS",
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"SEGMENT", TypeId::kInt64, true, 0, false},
                      {"X1", TypeId::kDouble, true, 0, false},
                      {"X2", TypeId::kDouble, true, 0, false},
                      {"Y", TypeId::kDouble, true, 0, false}});
  schema.set_distribution_key(0);
  if (!db.CreateTable(schema).ok()) return 1;
  RowBatch rows;
  for (int c = 0; c < schema.num_columns(); ++c) {
    rows.columns.emplace_back(schema.column(c).type);
  }
  Rng rng(12);
  for (int i = 0; i < 200000; ++i) {
    double x1 = rng.NextDouble(), x2 = rng.NextDouble();
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendInt(static_cast<int64_t>(rng.Uniform(20)));
    rows.columns[2].AppendDouble(x1);
    rows.columns[3].AppendDouble(x2);
    rows.columns[4].AppendDouble(1 + 2 * x1 - 3 * x2 + rng.Gaussian() * 0.05);
  }
  if (!db.Load("PUBLIC", "OBS", rows).ok()) return 1;

  std::printf("  %-40s %10s %12s %14s\n", "mode", "rows", "MB moved",
              "modeled xfer s");
  auto report_mode = [&](const char* name, bool collocated,
                         const std::string& where) -> bool {
    TransferOptions opts;
    opts.collocated = collocated;
    opts.pushdown_where = where;
    TransferReport rep;
    auto d = TableToDataset(&db, "PUBLIC", "OBS", opts, &rep);
    if (!d.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   d.status().ToString().c_str());
      return false;
    }
    std::printf("  %-40s %10zu %12.2f %14.4f\n", name, rep.rows,
                rep.bytes / 1e6, rep.modeled_seconds);
    return true;
  };
  if (!report_mode("remote JDBC, no pushdown", false, "")) return 1;
  if (!report_mode("collocated, no pushdown", true, "")) return 1;
  if (!report_mode("remote JDBC + pushdown (segment=7)", false,
                   "segment = 7")) {
    return 1;
  }
  if (!report_mode("collocated + pushdown (segment=7)", true, "segment = 7")) {
    return 1;
  }
  PrintNote("expected shape: collocated ~Nx faster than one remote link; "
            "pushdown shrinks bytes by the predicate's selectivity");

  // End-to-end: transfer + distributed GLM (paper II.D analytics story).
  TransferOptions opts;
  TransferReport rep;
  auto data = TableToDataset(&db, "PUBLIC", "OBS", opts, &rep);
  if (!data.ok()) return 1;
  SparkDispatcher disp(4, size_t{4} << 30);
  GlmConfig cfg;
  cfg.logistic = false;
  cfg.iterations = 200;
  cfg.learning_rate = 0.5;
  Stopwatch sw;
  auto model = TrainGlm(*data, {2, 3}, 4, cfg,
                        disp.ManagerFor("bench")->pool());
  if (!model.ok()) return 1;
  PrintRow("GLM training (200 iters, 200k rows, 4 workers)",
           sw.ElapsedSeconds(), "s");
  PrintNote("learned " + model->Describe());
  return 0;
}
