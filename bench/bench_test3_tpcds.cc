// Table 1, Test 3: TPC-DS queries, dashDB vs appliance. Paper: better than
// 2x average query speedup. Here the 12 mini-TPC-DS queries run on both
// engines; per-query and average speedups are reported.
#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "workloads/tpcds_mini.h"

using namespace dashdb;
using namespace dashdb::bench;

namespace {

Result<std::vector<double>> RunQueries(Engine* engine,
                                       const std::vector<std::string>& qs) {
  auto session = engine->CreateSession();
  std::vector<double> out;
  (void)engine->TakeIoSeconds();
  for (const auto& q : qs) {
    Stopwatch sw;
    auto r = engine->Execute(session.get(), q);
    if (!r.ok()) {
      return Status(r.status().code(), r.status().message() + " in: " + q);
    }
    // Per-query time = measured CPU + modeled storage I/O (DESIGN.md).
    out.push_back(sw.ElapsedSeconds() + engine->TakeIoSeconds());
  }
  return out;
}

}  // namespace

int main() {
  PrintHeader("Table 1 / Test 3: TPC-DS queries (dashDB vs appliance)");

  TpcdsScale scale;
  scale.store_sales_rows = 400000;
  Engine dashdb_engine(DashDbConfig(size_t{4} << 20));
  Engine appliance(ApplianceConfig(size_t{4} << 20));
  auto st = LoadTpcds(&dashdb_engine, scale, /*index_keys=*/false);
  if (!st.ok()) {
    std::fprintf(stderr, "load(dashdb): %s\n", st.ToString().c_str());
    return 1;
  }
  st = LoadTpcds(&appliance, scale, /*index_keys=*/true);
  if (!st.ok()) {
    std::fprintf(stderr, "load(appliance): %s\n", st.ToString().c_str());
    return 1;
  }
  auto queries = TpcdsQueries();
  PrintNote("store_sales rows: " + std::to_string(scale.store_sales_rows) +
            "; queries: " + std::to_string(queries.size()));

  auto appl = RunQueries(&appliance, queries);
  auto dash = RunQueries(&dashdb_engine, queries);
  if (!appl.ok() || !dash.ok()) {
    std::fprintf(stderr, "run failed: %s %s\n",
                 appl.status().ToString().c_str(),
                 dash.status().ToString().c_str());
    return 1;
  }
  double sum_ratio = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    double ratio = (*appl)[i] / std::max((*dash)[i], 1e-9);
    std::printf("  Q%02zu  appliance %8.2f ms   dashDB %8.2f ms   speedup %6.2fx\n",
                i + 1, (*appl)[i] * 1e3, (*dash)[i] * 1e3, ratio);
    sum_ratio += ratio;
  }
  PrintRow("average query speedup", sum_ratio / queries.size(), "x");
  PrintNote("paper reports: 2.1x average query speedup vs appliance");
  return 0;
}
