// Figure 9: HA failover drill. A 4-node x 6-shard cluster loses server D:
// shards reassociate so survivors serve 8 each, per-shard memory and
// parallelism rescale, queries keep answering (same results), and modeled
// wall-clock degrades by the expected survivors' share. Elastic shrink and
// regrowth use the same mechanics (paper II.E).
#include <cstdio>

#include "bench_util.h"
#include <algorithm>
#include <string>

#include "common/fault_injector.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "mpp/mpp.h"

using namespace dashdb;
using namespace dashdb::bench;

int main() {
  PrintHeader("Figure 9: HA failover and elasticity drill (4 nodes x 6 shards)");
  MppDatabase db(4, 6, 12, size_t{64} << 30);
  TableSchema schema("PUBLIC", "T",
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"V", TypeId::kDouble, true, 0, false}});
  schema.set_distribution_key(0);
  if (!db.CreateTable(schema).ok()) return 1;
  RowBatch rows;
  rows.columns.emplace_back(TypeId::kInt64);
  rows.columns.emplace_back(TypeId::kDouble);
  Rng rng(6);
  for (int i = 0; i < 600000; ++i) {
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendDouble(rng.Uniform(1000));
  }
  if (!db.Load("PUBLIC", "T", rows).ok()) return 1;

  // Measure per-shard work ONCE (warm), then model wall-clock for every
  // topology state from the same vector: identical work, different
  // placement — which is exactly what a failover changes.
  const std::string q = "SELECT COUNT(*), SUM(V) FROM T";
  auto warm = db.Execute(q);
  if (!warm.ok()) return 1;
  // Per-shard minimum over several runs: a stable work vector, so that
  // makespan differences reflect PLACEMENT only.
  auto before = db.Execute(q);
  if (!before.ok()) return 1;
  std::vector<double> work = before->shard_seconds;
  for (int r = 0; r < 3; ++r) {
    auto again = db.Execute(q);
    if (!again.ok()) return 1;
    before = again;
    for (size_t s = 0; s < work.size(); ++s) {
      work[s] = std::min(work[s], again->shard_seconds[s]);
    }
  }
  double t_before = db.topology()->Makespan(work);
  PrintRow("healthy: modeled query time", t_before * 1e3, "ms");
  PrintRow("healthy: shards per node", 6, "");
  PrintRow("healthy: cores per shard", db.topology()->CoresPerShard(0), "");

  // ---- server D fails ----
  auto stats = db.topology()->FailNode(3);
  if (!stats.ok()) return 1;
  PrintNote("--- node D fails ---");
  PrintRow("shards reassociated", static_cast<double>(stats->shards_moved),
           "shards");
  PrintRow("survivors now serve",
           static_cast<double>(stats->max_shards_per_node), "shards each");
  auto after = db.Execute(q);
  if (!after.ok()) return 1;
  bool same = after->result.rows.columns[0].GetInt(0) ==
              before->result.rows.columns[0].GetInt(0);
  PrintRow("query answers unchanged", same ? 1 : 0, "(1=yes)");
  double t_after = db.topology()->Makespan(work);
  PrintRow("degraded: modeled query time", t_after * 1e3, "ms");
  PrintRow("slowdown factor", t_after / t_before, "x");
  PrintNote("expected ~4/3 (3 of 4 nodes' compute; packing may round up)");

  // ---- repair (same path as elastic growth) ----
  auto repair = db.topology()->RepairNode(3);
  if (!repair.ok()) return 1;
  PrintNote("--- node D reinstated ---");
  PrintRow("shards moved back", static_cast<double>(repair->shards_moved),
           "shards");
  PrintRow("restored: modeled query time",
           db.topology()->Makespan(work) * 1e3, "ms");

  // ---- elastic growth beyond the original size ----
  auto grow = db.topology()->AddNode(12, size_t{64} << 30);
  if (!grow.ok()) return 1;
  auto bigger = db.Execute(q);
  if (!bigger.ok()) return 1;
  PrintNote("--- elastic growth to 5 nodes ---");
  double t_grown = db.topology()->Makespan(work);
  PrintRow("grown: modeled query time", t_grown * 1e3, "ms");
  PrintRow("speedup vs 4 healthy nodes", t_before / t_grown, "x");

  // ---- mid-query failure drill (deterministic fault injection) ----
  // Figure 9 above fails the node BETWEEN queries. Here the owner dies at
  // the instant each shard's sub-query starts: the coordinator must
  // reassociate and re-execute only the victim shard, and every answer must
  // stay byte-identical to the fault-free run. The whole schedule is
  // seed-driven, so any mismatch replays exactly.
  PrintNote("--- mid-query failure drill ---");
  constexpr uint64_t kFaultSeed = 42;
  const int num_shards = db.num_shards();
  auto digest = [](const MppQueryResult& r) {
    std::string out;
    const RowBatch& rb = r.result.rows;
    for (size_t i = 0; i < rb.num_rows(); ++i) {
      for (const auto& c : rb.columns) out += c.GetValue(i).ToString() + "|";
    }
    return out;
  };
  auto base = db.Execute(q);
  if (!base.ok()) return 1;
  const std::string base_key = digest(*base);

  FILE* json = std::fopen("BENCH_fault.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_fault.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"seed\": %llu,\n  \"num_shards\": %d,\n"
               "  \"node_kills\": [\n",
               static_cast<unsigned long long>(kFaultSeed), num_shards);
  int recovered = 0, identical = 0;
  uint64_t kill_retries = 0, kill_failovers = 0;
  for (int k = 0; k < num_shards; ++k) {
    FaultInjector::Global().Reset(kFaultSeed + static_cast<uint64_t>(k));
    FaultSpec kill;
    kill.code = StatusCode::kUnavailable;
    kill.message = "node lost";
    kill.skip_hits = static_cast<uint64_t>(k);
    kill.max_fires = 1;
    FaultInjector::Global().Arm("mpp.shard_exec", kill);
    auto r = db.Execute(q);
    FaultInjector::Global().Reset(0);
    const bool ok = r.ok();
    const bool same = ok && digest(*r) == base_key;
    recovered += ok ? 1 : 0;
    identical += same ? 1 : 0;
    if (ok) {
      kill_retries += r->exec.shard_retries;
      kill_failovers += r->exec.failovers;
    }
    std::fprintf(json,
                 "    {\"shard\": %d, \"recovered\": %s, \"identical\": %s, "
                 "\"retries\": %llu, \"failovers\": %llu}%s\n",
                 k, ok ? "true" : "false", same ? "true" : "false",
                 ok ? static_cast<unsigned long long>(r->exec.shard_retries)
                    : 0ull,
                 ok ? static_cast<unsigned long long>(r->exec.failovers)
                    : 0ull,
                 k + 1 < num_shards ? "," : "");
    // Reinstate whichever node the failover killed before the next drill.
    for (int n = 0; n < db.topology()->num_nodes(); ++n) {
      if (!db.topology()->IsAlive(n)) (void)db.topology()->RepairNode(n);
    }
  }
  PrintRow("node kills injected", num_shards, "(one per shard)");
  PrintRow("queries recovered", recovered, "(all = pass)");
  PrintRow("answers byte-identical", identical, "(all = pass)");
  PrintRow("shard re-executions", static_cast<double>(kill_retries), "");
  PrintRow("failovers triggered", static_cast<double>(kill_failovers), "");

  // Transient error storm: ~25% of shard attempts abort; retries absorb it.
  // A 0.25 failure rate needs more than the default 3-attempt budget
  // (0.25^3 per shard across 24 shards loses a shard every few runs), so
  // the drill widens the budget — the knob an operator would turn.
  db.failover_policy().max_attempts_per_shard = 8;
  FaultInjector::Global().Reset(kFaultSeed);
  FaultSpec storm;
  storm.code = StatusCode::kAborted;
  storm.probability = 0.25;
  FaultInjector::Global().Arm("mpp.shard_exec", storm);
  auto stormy = db.Execute(q);
  FaultInjector::Global().Reset(0);
  db.failover_policy().max_attempts_per_shard = 3;
  const bool storm_same = stormy.ok() && digest(*stormy) == base_key;
  PrintRow("25% abort storm: identical", storm_same ? 1 : 0, "(1=yes)");
  if (stormy.ok()) {
    PrintRow("25% abort storm: retries",
             static_cast<double>(stormy->exec.shard_retries), "");
  }

  // Straggler: one shard stalls; speculation should win well before the
  // stall completes.
  db.failover_policy().straggler_after_seconds = 0.05;
  FaultInjector::Global().Reset(kFaultSeed);
  FaultSpec stall;
  stall.code = StatusCode::kOk;
  stall.stall_seconds = 0.5;
  stall.max_fires = 1;
  FaultInjector::Global().Arm("mpp.shard_stall", stall);
  Stopwatch straggler_sw;
  auto spec_r = db.Execute(q);
  double straggler_s = straggler_sw.ElapsedSeconds();
  FaultInjector::Global().Reset(0);
  db.failover_policy().straggler_after_seconds = -1.0;
  const bool spec_same = spec_r.ok() && digest(*spec_r) == base_key;
  PrintRow("0.5s straggler: query time", straggler_s * 1e3, "ms");
  PrintRow("0.5s straggler: identical", spec_same ? 1 : 0, "(1=yes)");
  if (spec_r.ok()) {
    PrintRow("speculative wins",
             static_cast<double>(spec_r->exec.speculative_wins), "");
  }

  std::fprintf(
      json,
      "  ],\n  \"kills_recovered\": %d,\n  \"kills_identical\": %d,\n"
      "  \"storm_identical\": %s,\n  \"storm_retries\": %llu,\n"
      "  \"straggler_seconds\": %.6f,\n  \"straggler_identical\": %s,\n"
      "  \"speculative_wins\": %llu\n}\n",
      recovered, identical, storm_same ? "true" : "false",
      stormy.ok()
          ? static_cast<unsigned long long>(stormy->exec.shard_retries)
          : 0ull,
      straggler_s, spec_same ? "true" : "false",
      spec_r.ok()
          ? static_cast<unsigned long long>(spec_r->exec.speculative_wins)
          : 0ull);
  std::fclose(json);
  if (recovered != num_shards || identical != num_shards || !storm_same ||
      !spec_same) {
    PrintNote("FAULT DRILL FAILED — see BENCH_fault.json");
    return 1;
  }
  PrintNote("all faulted answers byte-identical (replayable from seed)");
  return 0;
}
