// Figure 9: HA failover drill. A 4-node x 6-shard cluster loses server D:
// shards reassociate so survivors serve 8 each, per-shard memory and
// parallelism rescale, queries keep answering (same results), and modeled
// wall-clock degrades by the expected survivors' share. Elastic shrink and
// regrowth use the same mechanics (paper II.E).
#include <cstdio>

#include "bench_util.h"
#include <algorithm>

#include "common/rng.h"
#include "mpp/mpp.h"

using namespace dashdb;
using namespace dashdb::bench;

int main() {
  PrintHeader("Figure 9: HA failover and elasticity drill (4 nodes x 6 shards)");
  MppDatabase db(4, 6, 12, size_t{64} << 30);
  TableSchema schema("PUBLIC", "T",
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"V", TypeId::kDouble, true, 0, false}});
  schema.set_distribution_key(0);
  if (!db.CreateTable(schema).ok()) return 1;
  RowBatch rows;
  rows.columns.emplace_back(TypeId::kInt64);
  rows.columns.emplace_back(TypeId::kDouble);
  Rng rng(6);
  for (int i = 0; i < 600000; ++i) {
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendDouble(rng.Uniform(1000));
  }
  if (!db.Load("PUBLIC", "T", rows).ok()) return 1;

  // Measure per-shard work ONCE (warm), then model wall-clock for every
  // topology state from the same vector: identical work, different
  // placement — which is exactly what a failover changes.
  const std::string q = "SELECT COUNT(*), SUM(V) FROM T";
  auto warm = db.Execute(q);
  if (!warm.ok()) return 1;
  // Per-shard minimum over several runs: a stable work vector, so that
  // makespan differences reflect PLACEMENT only.
  auto before = db.Execute(q);
  if (!before.ok()) return 1;
  std::vector<double> work = before->shard_seconds;
  for (int r = 0; r < 3; ++r) {
    auto again = db.Execute(q);
    if (!again.ok()) return 1;
    before = again;
    for (size_t s = 0; s < work.size(); ++s) {
      work[s] = std::min(work[s], again->shard_seconds[s]);
    }
  }
  double t_before = db.topology()->Makespan(work);
  PrintRow("healthy: modeled query time", t_before * 1e3, "ms");
  PrintRow("healthy: shards per node", 6, "");
  PrintRow("healthy: cores per shard", db.topology()->CoresPerShard(0), "");

  // ---- server D fails ----
  auto stats = db.topology()->FailNode(3);
  if (!stats.ok()) return 1;
  PrintNote("--- node D fails ---");
  PrintRow("shards reassociated", static_cast<double>(stats->shards_moved),
           "shards");
  PrintRow("survivors now serve",
           static_cast<double>(stats->max_shards_per_node), "shards each");
  auto after = db.Execute(q);
  if (!after.ok()) return 1;
  bool same = after->result.rows.columns[0].GetInt(0) ==
              before->result.rows.columns[0].GetInt(0);
  PrintRow("query answers unchanged", same ? 1 : 0, "(1=yes)");
  double t_after = db.topology()->Makespan(work);
  PrintRow("degraded: modeled query time", t_after * 1e3, "ms");
  PrintRow("slowdown factor", t_after / t_before, "x");
  PrintNote("expected ~4/3 (3 of 4 nodes' compute; packing may round up)");

  // ---- repair (same path as elastic growth) ----
  auto repair = db.topology()->RepairNode(3);
  if (!repair.ok()) return 1;
  PrintNote("--- node D reinstated ---");
  PrintRow("shards moved back", static_cast<double>(repair->shards_moved),
           "shards");
  PrintRow("restored: modeled query time",
           db.topology()->Makespan(work) * 1e3, "ms");

  // ---- elastic growth beyond the original size ----
  auto grow = db.topology()->AddNode(12, size_t{64} << 30);
  if (!grow.ok()) return 1;
  auto bigger = db.Execute(q);
  if (!bigger.ok()) return 1;
  PrintNote("--- elastic growth to 5 nodes ---");
  double t_grown = db.topology()->Makespan(work);
  PrintRow("grown: modeled query time", t_grown * 1e3, "ms");
  PrintRow("speedup vs 4 healthy nodes", t_before / t_grown, "x");
  return 0;
}
