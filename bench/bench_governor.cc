// Admission control under a mixed interactive/batch load (paper II.B:
// "analytics data warehouse... supports concurrent users"): a pool of
// expensive full-width scans competes with short interactive aggregates
// on one engine. Without admission every expensive query runs at once and
// the morsel pool thrashes; with per-class slots the expensive tier is
// bounded, so short queries keep their latency. Reports completed /
// queued / shed counts per mode and the small-query p50/p99.
//
// Writes BENCH_governor.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "sql/engine.h"

namespace dashdb {
namespace {

constexpr int64_t kBigRows = 1500000;
constexpr int64_t kSmallRows = 5000;
constexpr int kExpensiveThreads = 8;
constexpr int kCheapThreads = 4;
constexpr double kRunSeconds = 2.5;

// Full-width scan: the root estimate is ~|BIG|, so admission classes it
// expensive. The short query aggregates to one row and classes cheap.
const char* kExpensiveSql = "SELECT ID, GRP, V FROM BIG WHERE V >= 0";
const char* kCheapSql = "SELECT COUNT(*), SUM(V) FROM SMALL WHERE V > 50";

void LoadRows(Engine* engine, const std::string& name, int64_t n) {
  TableSchema schema("PUBLIC", name,
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"GRP", TypeId::kInt64, true, 0, false},
                      {"V", TypeId::kInt64, true, 0, false}});
  auto t = engine->CreateColumnTable(schema);
  if (!t.ok()) {
    std::fprintf(stderr, "load %s: %s\n", name.c_str(),
                 t.status().ToString().c_str());
    std::exit(1);
  }
  RowBatch rows;
  for (int c = 0; c < 3; ++c) rows.columns.emplace_back(TypeId::kInt64);
  for (int64_t i = 0; i < n; ++i) {
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendInt(i % 97);
    rows.columns[2].AppendInt(i * 31 % 101);
  }
  Status st = t.value()->Append(rows);
  if (!st.ok()) std::exit(1);
}

struct ModeResult {
  std::string name;
  bool admission = false;
  uint64_t cheap_completed = 0;
  uint64_t expensive_completed = 0;
  uint64_t expensive_shed = 0;
  uint64_t queued = 0;
  double cheap_p50_ms = 0;
  double cheap_p99_ms = 0;
};

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// Runs the mixed load for kRunSeconds and collects per-class stats.
ModeResult RunMode(Engine& engine, const std::string& name, bool admission) {
  ModeResult out;
  out.name = name;
  out.admission = admission;
  auto& reg = MetricRegistry::Global();
  const uint64_t shed0 = reg.GetCounter("exec.admission_shed")->value();
  const uint64_t queued0 = reg.GetCounter("exec.admission_queued")->value();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> cheap_done{0}, expensive_done{0}, shed{0};
  std::vector<std::vector<double>> cheap_ms(kCheapThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kExpensiveThreads; ++t) {
    threads.emplace_back([&, admission] {
      auto session = engine.CreateSession();
      engine.Execute(session.get(),
                     admission ? "SET ADMISSION ON" : "SET ADMISSION OFF");
      engine.Execute(session.get(), "SET DOP = 8");
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = engine.Execute(session.get(), kExpensiveSql);
        if (r.ok()) {
          expensive_done.fetch_add(1);
        } else if (r.status().IsResourceExhausted()) {
          shed.fetch_add(1);
        }
      }
    });
  }
  for (int t = 0; t < kCheapThreads; ++t) {
    threads.emplace_back([&, t, admission] {
      auto session = engine.CreateSession();
      engine.Execute(session.get(),
                     admission ? "SET ADMISSION ON" : "SET ADMISSION OFF");
      engine.Execute(session.get(), "SET DOP = 1");
      while (!stop.load(std::memory_order_relaxed)) {
        auto t0 = std::chrono::steady_clock::now();
        auto r = engine.Execute(session.get(), kCheapSql);
        auto t1 = std::chrono::steady_clock::now();
        if (r.ok()) {
          cheap_done.fetch_add(1);
          cheap_ms[t].push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(kRunSeconds));
  stop.store(true);
  for (auto& th : threads) th.join();
  std::vector<double> all;
  for (auto& v : cheap_ms) all.insert(all.end(), v.begin(), v.end());
  out.cheap_completed = cheap_done.load();
  out.expensive_completed = expensive_done.load();
  out.expensive_shed = shed.load();
  out.queued = reg.GetCounter("exec.admission_queued")->value() - queued0;
  (void)shed0;
  out.cheap_p50_ms = Percentile(all, 0.50);
  out.cheap_p99_ms = Percentile(all, 0.99);
  return out;
}

}  // namespace
}  // namespace dashdb

int main() {
  using namespace dashdb;
  EngineConfig cfg = bench::DashDbConfig();
  cfg.query_parallelism = 8;
  // Admission policy for the governed mode: the expensive tier is capped
  // well below the thread count, the cheap tier is effectively unlimited,
  // and expensive statements that cannot start soon are shed.
  cfg.admission.cheap_slots = 64;
  cfg.admission.expensive_slots = 1;
  cfg.admission.max_queued = 64;
  cfg.admission.queue_timeout_seconds = 0.25;
  Engine engine(cfg);
  LoadRows(&engine, "BIG", kBigRows);
  LoadRows(&engine, "SMALL", kSmallRows);

  bench::PrintHeader("Query governor: admission control under mixed load");
  bench::PrintNote(std::to_string(kExpensiveThreads) +
                   " expensive full scans vs " +
                   std::to_string(kCheapThreads) + " interactive aggregates, " +
                   std::to_string(kRunSeconds) + "s per mode");

  // Warm both query shapes once so neither mode pays first-touch costs.
  {
    auto s = engine.CreateSession();
    engine.Execute(s.get(), "SET ADMISSION OFF");
    engine.Execute(s.get(), kExpensiveSql);
    engine.Execute(s.get(), kCheapSql);
  }

  ModeResult base = RunMode(engine, "no_admission", false);
  ModeResult gov = RunMode(engine, "admission", true);

  for (const ModeResult* m : {&base, &gov}) {
    bench::PrintHeader(m->name);
    bench::PrintRow("cheap queries completed",
                    static_cast<double>(m->cheap_completed), "");
    bench::PrintRow("cheap p50", m->cheap_p50_ms, "ms");
    bench::PrintRow("cheap p99", m->cheap_p99_ms, "ms");
    bench::PrintRow("expensive completed",
                    static_cast<double>(m->expensive_completed), "");
    bench::PrintRow("expensive shed",
                    static_cast<double>(m->expensive_shed), "");
    bench::PrintRow("admission waits (queued)",
                    static_cast<double>(m->queued), "");
  }
  double improvement =
      gov.cheap_p99_ms > 0 ? base.cheap_p99_ms / gov.cheap_p99_ms : 0;
  bench::PrintHeader("summary");
  bench::PrintRow("small-query p99 improvement", improvement, "x");

  FILE* json = std::fopen("BENCH_governor.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_governor.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"big_rows\": %lld,\n  \"small_rows\": %lld,\n"
               "  \"expensive_threads\": %d,\n  \"cheap_threads\": %d,\n"
               "  \"run_seconds\": %.2f,\n  \"modes\": [\n",
               static_cast<long long>(kBigRows),
               static_cast<long long>(kSmallRows), kExpensiveThreads,
               kCheapThreads, kRunSeconds);
  const ModeResult* modes[] = {&base, &gov};
  for (int i = 0; i < 2; ++i) {
    const ModeResult& m = *modes[i];
    std::fprintf(
        json,
        "    {\"name\": \"%s\", \"admission\": %s,"
        " \"cheap_completed\": %llu, \"cheap_p50_ms\": %.4f,"
        " \"cheap_p99_ms\": %.4f, \"expensive_completed\": %llu,"
        " \"expensive_shed\": %llu, \"queued\": %llu}%s\n",
        m.name.c_str(), m.admission ? "true" : "false",
        static_cast<unsigned long long>(m.cheap_completed), m.cheap_p50_ms,
        m.cheap_p99_ms, static_cast<unsigned long long>(m.expensive_completed),
        static_cast<unsigned long long>(m.expensive_shed),
        static_cast<unsigned long long>(m.queued), i == 0 ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"small_query_p99_improvement\": %.4f\n}\n",
               improvement);
  std::fclose(json);
  std::printf("\nwrote BENCH_governor.json\n");
  return 0;
}
