// Synthetic stand-in for the paper's 25TB customer financial-analytics
// workload (Table 1 Tests 1 and 2; see DESIGN.md substitutions).
//
// The real workload: 9 schemas, 1,640 tables, 71,145 columns, >250K
// statements in the mix 86537 INSERT / 55873 UPDATE / 46383 DROP /
// 44914 SELECT / 25572 CREATE / 2453 DELETE / 12 WITH / 12 EXPLAIN /
// 5 TRUNCATE. This generator reproduces the statement mix and the
// multi-schema catalog at a configurable scale, emitting a deterministic
// statement stream that runs unmodified on the dashDB (columnar) engine
// and the appliance (row + B+Tree) baseline.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/engine.h"

namespace dashdb {
namespace bench {

struct CustomerScale {
  int schemas = 3;
  int tables_per_schema = 6;
  size_t rows_per_table = 30000;
  size_t num_statements = 1200;
  uint64_t seed = 7;
};

enum class StmtClass : uint8_t {
  kInsert = 0,
  kUpdate,
  kDrop,
  kSelect,
  kCreate,
  kDelete,
  kWith,
  kExplain,
  kTruncate,
};

struct WorkloadStatement {
  std::string sql;
  StmtClass cls;
};

class CustomerWorkload {
 public:
  explicit CustomerWorkload(CustomerScale scale) : scale_(scale) {}

  /// Creates schemas + base tables and bulk-loads them. On row-organized
  /// engines, also builds the appliance's B+Tree indexes (id, txn date).
  Status Setup(Engine* engine);

  /// Deterministic statement stream with the paper's mix proportions.
  /// Staging-table lifecycles (CREATE ... INSERT ... DROP) are sequenced so
  /// the stream is valid when executed in order.
  std::vector<WorkloadStatement> MakeStatements();

  /// Runs the statements serially; returns per-statement seconds.
  static Result<std::vector<double>> RunSerial(
      Engine* engine, const std::vector<WorkloadStatement>& stmts);

  /// Runs `streams` interleaved statement streams (WLM-admitted one at a
  /// time, modeling full admission on single-core hosts); returns total
  /// wall seconds.
  static Result<double> RunConcurrent(
      Engine* engine, const std::vector<WorkloadStatement>& stmts,
      int streams);

 private:
  std::string TableName(int schema, int table) const;

  CustomerScale scale_;
};

/// Speedup summary over the longest-running statements (the paper reports
/// the 3,500 longest of 15,000).
struct SpeedupReport {
  double avg_speedup = 0;
  double median_speedup = 0;
  size_t statements_compared = 0;
};

/// Compares per-statement times (same statement order) over the longest
/// `fraction` of statements by baseline time.
SpeedupReport CompareLongest(const std::vector<double>& baseline_seconds,
                             const std::vector<double>& dashdb_seconds,
                             double fraction);

}  // namespace bench
}  // namespace dashdb
