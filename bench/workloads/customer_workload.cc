#include "workloads/customer_workload.h"

#include <algorithm>

#include "common/datetime.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "storage/row_table.h"

namespace dashdb {
namespace bench {

namespace {

const char* kStatuses[] = {"OPEN", "SETTLED", "PENDING", "CANCELLED"};

/// Paper statement counts (Test 1); used as mix weights.
constexpr double kMix[] = {
    86537,  // INSERT
    55873,  // UPDATE
    46383,  // DROP
    44914,  // SELECT
    25572,  // CREATE
    2453,   // DELETE
    12,     // WITH
    12,     // EXPLAIN
    5,      // TRUNCATE
};

}  // namespace

std::string CustomerWorkload::TableName(int schema, int table) const {
  return "FIN" + std::to_string(schema) + ".POSITIONS" + std::to_string(table);
}

Status CustomerWorkload::Setup(Engine* engine) {
  Rng rng(scale_.seed);
  const int32_t start = DaysFromCivil(2010, 1, 1);
  const int32_t days = 7 * 365;  // paper: "data for seven years"
  auto session = engine->CreateSession();
  for (int s = 0; s < scale_.schemas; ++s) {
    DASHDB_RETURN_IF_ERROR(
        engine->catalog()->CreateSchema("FIN" + std::to_string(s)));
    for (int t = 0; t < scale_.tables_per_schema; ++t) {
      TableSchema schema(
          "FIN" + std::to_string(s), "POSITIONS" + std::to_string(t),
          {{"ID", TypeId::kInt64, false, 0, false},
           {"TXN_DATE", TypeId::kDate, true, 0, false},
           {"ACCOUNT", TypeId::kInt64, true, 0, false},
           {"INSTRUMENT", TypeId::kInt64, true, 0, false},
           {"AMOUNT", TypeId::kDouble, true, 0, false},
           {"QUANTITY", TypeId::kInt64, true, 0, false},
           {"STATUS", TypeId::kVarchar, true, 0, false},
           {"BOOK", TypeId::kVarchar, true, 0, false}});
      RowBatch rows;
      for (int c = 0; c < schema.num_columns(); ++c) {
        rows.columns.emplace_back(schema.column(c).type);
      }
      ZipfGenerator instr(500, 1.1, scale_.seed + s * 100 + t);
      for (size_t i = 0; i < scale_.rows_per_table; ++i) {
        rows.columns[0].AppendInt(static_cast<int64_t>(i));
        // Time-ordered ingest (most queries hit recent months, II.B.4).
        rows.columns[1].AppendInt(
            start + static_cast<int32_t>(i * days / scale_.rows_per_table));
        rows.columns[2].AppendInt(static_cast<int64_t>(rng.Uniform(2000)));
        rows.columns[3].AppendInt(static_cast<int64_t>(instr.Next()));
        rows.columns[4].AppendDouble(rng.Uniform(2000000) / 100.0 - 5000);
        rows.columns[5].AppendInt(static_cast<int64_t>(rng.Uniform(10000)));
        rows.columns[6].AppendString(kStatuses[rng.Uniform(4)]);
        rows.columns[7].AppendString("BOOK" + std::to_string(rng.Uniform(20)));
      }
      if (engine->config().default_organization == TableOrganization::kRow) {
        schema.set_organization(TableOrganization::kRow);
        DASHDB_ASSIGN_OR_RETURN(auto table, engine->CreateRowTable(schema));
        DASHDB_RETURN_IF_ERROR(table->Append(rows));
        DASHDB_RETURN_IF_ERROR(table->CreateIndex(0));  // id
        DASHDB_RETURN_IF_ERROR(table->CreateIndex(1));  // txn_date
      } else {
        DASHDB_ASSIGN_OR_RETURN(auto table, engine->CreateColumnTable(schema));
        DASHDB_RETURN_IF_ERROR(table->Load(rows));
      }
    }
  }
  return Status::OK();
}

std::vector<WorkloadStatement> CustomerWorkload::MakeStatements() {
  Rng rng(scale_.seed + 99);
  double total_weight = 0;
  for (double w : kMix) total_weight += w;
  const int32_t start = DaysFromCivil(2010, 1, 1);
  const int32_t end = start + 7 * 365;

  auto base_table = [&]() {
    return TableName(static_cast<int>(rng.Uniform(scale_.schemas)),
                     static_cast<int>(rng.Uniform(scale_.tables_per_schema)));
  };
  auto recent_date = [&]() {
    // "most queries ask questions over the most recent few months."
    return end - static_cast<int32_t>(rng.Uniform(120));
  };

  std::vector<std::string> staging;  // live CREATEd tables awaiting DROP
  int staging_seq = 0;
  std::vector<WorkloadStatement> out;
  out.reserve(scale_.num_statements);
  size_t next_insert_id = scale_.rows_per_table;

  for (size_t i = 0; i < scale_.num_statements; ++i) {
    double pick = rng.NextDouble() * total_weight;
    int cls = 0;
    for (; cls < 8; ++cls) {
      if (pick < kMix[cls]) break;
      pick -= kMix[cls];
    }
    switch (static_cast<StmtClass>(cls)) {
      case StmtClass::kInsert: {
        std::string t = base_table();
        int64_t id = static_cast<int64_t>(next_insert_id++);
        out.push_back(
            {"INSERT INTO " + t + " VALUES (" + std::to_string(id) + ", DATE '" +
                 FormatDate(recent_date()) + "', " +
                 std::to_string(rng.Uniform(2000)) + ", " +
                 std::to_string(rng.Uniform(500)) + ", " +
                 std::to_string(rng.Uniform(10000)) + ".25, " +
                 std::to_string(rng.Uniform(100)) + ", 'OPEN', 'BOOK1')",
             StmtClass::kInsert});
        break;
      }
      case StmtClass::kUpdate: {
        // Point update by id (OLTP-ish maintenance traffic).
        out.push_back(
            {"UPDATE " + base_table() + " SET STATUS = 'SETTLED', AMOUNT = "
                 "AMOUNT * 1.01 WHERE ID = " +
                 std::to_string(rng.Uniform(scale_.rows_per_table)),
             StmtClass::kUpdate});
        break;
      }
      case StmtClass::kDrop: {
        if (staging.empty()) {
          // Nothing to drop yet: emit a CREATE instead (keeps mix close).
          std::string name =
              "FIN0.STAGING" + std::to_string(staging_seq++);
          staging.push_back(name);
          out.push_back({"CREATE TABLE " + name +
                             " (K BIGINT, V DOUBLE, NOTE VARCHAR(20))",
                         StmtClass::kCreate});
        } else {
          std::string name = staging.back();
          staging.pop_back();
          out.push_back({"DROP TABLE " + name, StmtClass::kDrop});
        }
        break;
      }
      case StmtClass::kSelect: {
        std::string t = base_table();
        int kind = static_cast<int>(rng.Uniform(4));
        if (kind == 0) {
          // Analytic rollup over a recent window — the long-running class.
          out.push_back(
              {"SELECT STATUS, COUNT(*), SUM(AMOUNT), AVG(QUANTITY) FROM " +
                   t + " WHERE TXN_DATE >= DATE '" +
                   FormatDate(recent_date() - 90) +
                   "' GROUP BY STATUS ORDER BY STATUS",
               StmtClass::kSelect});
        } else if (kind == 1) {
          out.push_back(
              {"SELECT ACCOUNT, SUM(AMOUNT) total FROM " + t +
                   " WHERE INSTRUMENT < 50 GROUP BY ACCOUNT "
                   "ORDER BY total DESC LIMIT 10",
               StmtClass::kSelect});
        } else if (kind == 2) {
          // Point lookup by id (index-friendly on the appliance).
          out.push_back(
              {"SELECT * FROM " + t + " WHERE ID = " +
                   std::to_string(rng.Uniform(scale_.rows_per_table)),
               StmtClass::kSelect});
        } else {
          out.push_back(
              {"SELECT COUNT(*) FROM " + t + " WHERE AMOUNT BETWEEN 0 AND "
                   "500 AND STATUS = 'OPEN'",
               StmtClass::kSelect});
        }
        break;
      }
      case StmtClass::kCreate: {
        std::string name = "FIN0.STAGING" + std::to_string(staging_seq++);
        staging.push_back(name);
        out.push_back({"CREATE TABLE " + name +
                           " (K BIGINT, V DOUBLE, NOTE VARCHAR(20))",
                       StmtClass::kCreate});
        break;
      }
      case StmtClass::kDelete: {
        out.push_back(
            {"DELETE FROM " + base_table() + " WHERE ID = " +
                 std::to_string(rng.Uniform(scale_.rows_per_table)),
             StmtClass::kDelete});
        break;
      }
      case StmtClass::kWith: {
        out.push_back(
            {"WITH recent AS (SELECT ACCOUNT, AMOUNT FROM " + base_table() +
                 " WHERE TXN_DATE >= DATE '" + FormatDate(recent_date() - 30) +
                 "') SELECT COUNT(*), SUM(AMOUNT) FROM recent",
             StmtClass::kWith});
        break;
      }
      case StmtClass::kExplain: {
        out.push_back(
            {"EXPLAIN SELECT STATUS, COUNT(*) FROM " + base_table() +
                 " GROUP BY STATUS",
             StmtClass::kExplain});
        break;
      }
      case StmtClass::kTruncate: {
        if (staging.empty()) {
          std::string name = "FIN0.STAGING" + std::to_string(staging_seq++);
          staging.push_back(name);
          out.push_back({"CREATE TABLE " + name +
                             " (K BIGINT, V DOUBLE, NOTE VARCHAR(20))",
                         StmtClass::kCreate});
        } else {
          out.push_back(
              {"TRUNCATE TABLE " + staging.back(), StmtClass::kTruncate});
        }
        break;
      }
    }
  }
  return out;
}

Result<std::vector<double>> CustomerWorkload::RunSerial(
    Engine* engine, const std::vector<WorkloadStatement>& stmts) {
  auto session = engine->CreateSession();
  std::vector<double> seconds;
  seconds.reserve(stmts.size());
  (void)engine->TakeIoSeconds();
  for (const auto& s : stmts) {
    Stopwatch sw;
    auto r = engine->Execute(session.get(), s.sql);
    if (!r.ok()) {
      return Status(r.status().code(),
                    r.status().message() + " in: " + s.sql);
    }
    // Per-statement time = measured CPU + modeled storage I/O.
    seconds.push_back(sw.ElapsedSeconds() + engine->TakeIoSeconds());
  }
  return seconds;
}

Result<double> CustomerWorkload::RunConcurrent(
    Engine* engine, const std::vector<WorkloadStatement>& stmts,
    int streams) {
  // Deal statements round-robin into streams, then interleave execution
  // (WLM admits one at a time; see header).
  std::vector<std::vector<const WorkloadStatement*>> queues(streams);
  for (size_t i = 0; i < stmts.size(); ++i) {
    queues[i % streams].push_back(&stmts[i]);
  }
  std::vector<std::shared_ptr<Session>> sessions;
  for (int s = 0; s < streams; ++s) sessions.push_back(engine->CreateSession());
  (void)engine->TakeIoSeconds();
  Stopwatch sw;
  bool more = true;
  size_t pos = 0;
  while (more) {
    more = false;
    for (int s = 0; s < streams; ++s) {
      if (pos < queues[s].size()) {
        more = true;
        auto r = engine->Execute(sessions[s].get(), queues[s][pos]->sql);
        if (!r.ok()) {
          return Status(r.status().code(),
                        r.status().message() + " in: " + queues[s][pos]->sql);
        }
      }
    }
    ++pos;
  }
  return sw.ElapsedSeconds() + engine->TakeIoSeconds();
}

SpeedupReport CompareLongest(const std::vector<double>& baseline_seconds,
                             const std::vector<double>& dashdb_seconds,
                             double fraction) {
  SpeedupReport rep;
  const size_t n = std::min(baseline_seconds.size(), dashdb_seconds.size());
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return baseline_seconds[a] > baseline_seconds[b];
  });
  size_t take = std::max<size_t>(1, static_cast<size_t>(n * fraction));
  std::vector<double> ratios;
  for (size_t k = 0; k < take; ++k) {
    size_t i = order[k];
    double d = dashdb_seconds[i];
    if (d <= 0) d = 1e-9;
    ratios.push_back(baseline_seconds[i] / d);
  }
  double sum = 0;
  for (double r : ratios) sum += r;
  rep.avg_speedup = sum / ratios.size();
  std::sort(ratios.begin(), ratios.end());
  rep.median_speedup = ratios[ratios.size() / 2];
  rep.statements_compared = take;
  return rep;
}

}  // namespace bench
}  // namespace dashdb
