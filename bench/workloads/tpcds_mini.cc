#include "workloads/tpcds_mini.h"

#include "common/datetime.h"
#include "common/rng.h"
#include "storage/row_table.h"

namespace dashdb {
namespace bench {

namespace {

const char* kCategories[] = {"Books", "Electronics", "Home",  "Jewelry",
                             "Men",   "Music",       "Shoes", "Sports",
                             "Toys",  "Women"};
const char* kStates[] = {"TN", "CA", "TX", "NY", "GA", "OH", "IL", "WA",
                         "MI", "FL"};
const char* kDayNames[] = {"Sunday",   "Monday", "Tuesday", "Wednesday",
                           "Thursday", "Friday", "Saturday"};

Status CreateAndLoad(Engine* engine, TableSchema schema, const RowBatch& rows,
                     const std::vector<int>& index_cols) {
  if (engine->config().default_organization == TableOrganization::kRow) {
    schema.set_organization(TableOrganization::kRow);
    DASHDB_ASSIGN_OR_RETURN(auto t, engine->CreateRowTable(schema));
    DASHDB_RETURN_IF_ERROR(t->Append(rows));
    for (int c : index_cols) {
      DASHDB_RETURN_IF_ERROR(t->CreateIndex(c));
    }
    return Status::OK();
  }
  DASHDB_ASSIGN_OR_RETURN(auto t, engine->CreateColumnTable(schema));
  return t->Load(rows);
}

}  // namespace

Status LoadTpcds(Engine* engine, const TpcdsScale& scale, bool index_keys) {
  Rng rng(scale.seed);
  const int32_t start_day = DaysFromCivil(2012, 1, 1);
  const int32_t num_days = scale.years * 365;

  // ---- date_dim ----
  {
    RowBatch b;
    for (TypeId t : {TypeId::kInt64, TypeId::kDate, TypeId::kInt64,
                     TypeId::kInt64, TypeId::kInt64, TypeId::kInt64}) {
      b.columns.emplace_back(t);
    }
    ColumnVector day_names(TypeId::kVarchar);
    for (int32_t d = 0; d < num_days; ++d) {
      int32_t days = start_day + d;
      CivilDate c = CivilFromDays(days);
      b.columns[0].AppendInt(days);                      // d_date_sk
      b.columns[1].AppendInt(days);                      // d_date
      b.columns[2].AppendInt(c.year);                    // d_year
      b.columns[3].AppendInt(c.month);                   // d_moy
      b.columns[4].AppendInt(c.day);                     // d_dom
      b.columns[5].AppendInt((c.month - 1) / 3 + 1);     // d_qoy
      day_names.AppendString(kDayNames[DayOfWeek(days)]);
    }
    b.columns.push_back(std::move(day_names));
    TableSchema s("PUBLIC", "DATE_DIM",
                  {{"D_DATE_SK", TypeId::kInt64, false, 0, false},
                   {"D_DATE", TypeId::kDate, true, 0, false},
                   {"D_YEAR", TypeId::kInt64, true, 0, false},
                   {"D_MOY", TypeId::kInt64, true, 0, false},
                   {"D_DOM", TypeId::kInt64, true, 0, false},
                   {"D_QOY", TypeId::kInt64, true, 0, false},
                   {"D_DAY_NAME", TypeId::kVarchar, true, 0, false}});
    DASHDB_RETURN_IF_ERROR(CreateAndLoad(engine, s, b,
                                         index_keys ? std::vector<int>{0}
                                                    : std::vector<int>{}));
  }

  // ---- item ----
  {
    RowBatch b;
    b.columns.emplace_back(TypeId::kInt64);
    b.columns.emplace_back(TypeId::kVarchar);
    b.columns.emplace_back(TypeId::kInt64);
    b.columns.emplace_back(TypeId::kDouble);
    for (int i = 0; i < scale.items; ++i) {
      b.columns[0].AppendInt(i);                          // i_item_sk
      b.columns[1].AppendString(kCategories[i % 10]);     // i_category
      b.columns[2].AppendInt(i % 50);                     // i_brand_id
      b.columns[3].AppendDouble(1 + rng.Uniform(9900) / 100.0);
    }
    TableSchema s("PUBLIC", "ITEM",
                  {{"I_ITEM_SK", TypeId::kInt64, false, 0, false},
                   {"I_CATEGORY", TypeId::kVarchar, true, 0, false},
                   {"I_BRAND_ID", TypeId::kInt64, true, 0, false},
                   {"I_CURRENT_PRICE", TypeId::kDouble, true, 0, false}});
    DASHDB_RETURN_IF_ERROR(CreateAndLoad(engine, s, b,
                                         index_keys ? std::vector<int>{0}
                                                    : std::vector<int>{}));
  }

  // ---- customer ----
  {
    RowBatch b;
    b.columns.emplace_back(TypeId::kInt64);
    b.columns.emplace_back(TypeId::kInt64);
    b.columns.emplace_back(TypeId::kVarchar);
    for (int i = 0; i < scale.customers; ++i) {
      b.columns[0].AppendInt(i);
      b.columns[1].AppendInt(1940 + rng.Uniform(60));
      b.columns[2].AppendString(rng.Bernoulli(0.3) ? "Y" : "N");
    }
    TableSchema s("PUBLIC", "CUSTOMER",
                  {{"C_CUSTOMER_SK", TypeId::kInt64, false, 0, false},
                   {"C_BIRTH_YEAR", TypeId::kInt64, true, 0, false},
                   {"C_PREFERRED_CUST_FLAG", TypeId::kVarchar, true, 0,
                    false}});
    DASHDB_RETURN_IF_ERROR(CreateAndLoad(engine, s, b,
                                         index_keys ? std::vector<int>{0}
                                                    : std::vector<int>{}));
  }

  // ---- store ----
  {
    RowBatch b;
    b.columns.emplace_back(TypeId::kInt64);
    b.columns.emplace_back(TypeId::kVarchar);
    for (int i = 0; i < scale.stores; ++i) {
      b.columns[0].AppendInt(i);
      b.columns[1].AppendString(kStates[i % 10]);
    }
    TableSchema s("PUBLIC", "STORE",
                  {{"S_STORE_SK", TypeId::kInt64, false, 0, false},
                   {"S_STATE", TypeId::kVarchar, true, 0, false}});
    DASHDB_RETURN_IF_ERROR(CreateAndLoad(engine, s, b, {}));
  }

  // ---- promotion ----
  {
    RowBatch b;
    b.columns.emplace_back(TypeId::kInt64);
    b.columns.emplace_back(TypeId::kVarchar);
    for (int i = 0; i < scale.promotions; ++i) {
      b.columns[0].AppendInt(i);
      b.columns[1].AppendString(i % 2 ? "Y" : "N");
    }
    TableSchema s("PUBLIC", "PROMOTION",
                  {{"P_PROMO_SK", TypeId::kInt64, false, 0, false},
                   {"P_CHANNEL_EMAIL", TypeId::kVarchar, true, 0, false}});
    DASHDB_RETURN_IF_ERROR(CreateAndLoad(engine, s, b, {}));
  }

  // ---- store_sales (the fact; rows arrive in date order, as ingested) ----
  {
    RowBatch b;
    for (TypeId t : {TypeId::kInt64, TypeId::kInt64, TypeId::kInt64,
                     TypeId::kInt64, TypeId::kInt64, TypeId::kInt64,
                     TypeId::kDouble, TypeId::kDouble}) {
      b.columns.emplace_back(t);
    }
    ZipfGenerator item_zipf(scale.items, 1.05, scale.seed + 1);
    for (size_t i = 0; i < scale.store_sales_rows; ++i) {
      int32_t day = start_day + static_cast<int32_t>(
                                    i * num_days / scale.store_sales_rows);
      int64_t qty = 1 + rng.Uniform(100);
      double price = 1 + rng.Uniform(19900) / 100.0;
      b.columns[0].AppendInt(day);                                // date_sk
      b.columns[1].AppendInt(static_cast<int64_t>(item_zipf.Next()));
      b.columns[2].AppendInt(static_cast<int64_t>(rng.Uniform(scale.customers)));
      b.columns[3].AppendInt(static_cast<int64_t>(rng.Uniform(scale.stores)));
      b.columns[4].AppendInt(static_cast<int64_t>(rng.Uniform(scale.promotions)));
      b.columns[5].AppendInt(qty);
      b.columns[6].AppendDouble(price);
      b.columns[7].AppendDouble(price * qty * (rng.NextDouble() - 0.3));
    }
    TableSchema s("PUBLIC", "STORE_SALES",
                  {{"SS_SOLD_DATE_SK", TypeId::kInt64, false, 0, false},
                   {"SS_ITEM_SK", TypeId::kInt64, true, 0, false},
                   {"SS_CUSTOMER_SK", TypeId::kInt64, true, 0, false},
                   {"SS_STORE_SK", TypeId::kInt64, true, 0, false},
                   {"SS_PROMO_SK", TypeId::kInt64, true, 0, false},
                   {"SS_QUANTITY", TypeId::kInt64, true, 0, false},
                   {"SS_SALES_PRICE", TypeId::kDouble, true, 0, false},
                   {"SS_NET_PROFIT", TypeId::kDouble, true, 0, false}});
    DASHDB_RETURN_IF_ERROR(CreateAndLoad(engine, s, b,
                                         index_keys ? std::vector<int>{0}
                                                    : std::vector<int>{}));
  }
  return Status::OK();
}

std::vector<std::string> TpcdsQueries() {
  const int32_t y2015 = DaysFromCivil(2015, 1, 1);
  const int32_t y2015_feb = DaysFromCivil(2015, 2, 1);
  const int32_t y2016 = DaysFromCivil(2016, 1, 1);
  auto n = [](int32_t d) { return std::to_string(d); };
  return {
      // Q3-like: brand revenue for one month.
      "SELECT i.i_brand_id, SUM(ss.ss_sales_price) rev "
      "FROM store_sales ss JOIN item i ON ss.ss_item_sk = i.i_item_sk "
      "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
      "WHERE d.d_moy = 11 AND d.d_year = 2015 "
      "GROUP BY i.i_brand_id ORDER BY rev DESC LIMIT 10",
      // Q42-like: category revenue for one quarter of one year.
      "SELECT i.i_category, SUM(ss.ss_net_profit) p FROM store_sales ss "
      "JOIN item i ON ss.ss_item_sk = i.i_item_sk "
      "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
      "WHERE d.d_year = 2015 AND d.d_qoy = 1 "
      "GROUP BY i.i_category ORDER BY p DESC",
      // Q52-like: daily brand revenue, narrow date band.
      "SELECT d.d_date, i.i_brand_id, SUM(ss.ss_sales_price) s "
      "FROM store_sales ss JOIN item i ON ss.ss_item_sk = i.i_item_sk "
      "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
      "WHERE ss.ss_sold_date_sk BETWEEN " + n(y2015) + " AND " +
          n(y2015_feb) + " "
      "GROUP BY d.d_date, i.i_brand_id ORDER BY s DESC LIMIT 20",
      // Q55-like: one brand's monthly performance.
      "SELECT SUM(ss.ss_sales_price) FROM store_sales ss "
      "JOIN item i ON ss.ss_item_sk = i.i_item_sk "
      "WHERE i.i_brand_id = 7 AND ss.ss_sold_date_sk >= " + n(y2015) +
          " AND ss.ss_sold_date_sk < " + n(y2016),
      // Q7-like: demographic average over promotions.
      "SELECT i.i_category, AVG(ss.ss_quantity) q, AVG(ss.ss_sales_price) p "
      "FROM store_sales ss JOIN item i ON ss.ss_item_sk = i.i_item_sk "
      "JOIN promotion pr ON ss.ss_promo_sk = pr.p_promo_sk "
      "WHERE pr.p_channel_email = 'N' "
      "GROUP BY i.i_category ORDER BY i.i_category",
      // Q96-like: selective count.
      "SELECT COUNT(*) FROM store_sales ss "
      "JOIN store s ON ss.ss_store_sk = s.s_store_sk "
      "WHERE s.s_state = 'CA' AND ss.ss_quantity BETWEEN 90 AND 100",
      // Recent-window scan (the paper's data-skipping motivation).
      "SELECT COUNT(*), SUM(ss_sales_price) FROM store_sales "
      "WHERE ss_sold_date_sk >= " + n(DaysFromCivil(2016, 10, 1)),
      // Store-state rollup.
      "SELECT s.s_state, COUNT(*) n, SUM(ss.ss_net_profit) profit "
      "FROM store_sales ss JOIN store s ON ss.ss_store_sk = s.s_store_sk "
      "GROUP BY s.s_state ORDER BY profit DESC",
      // Preferred-customer revenue by year.
      "SELECT d.d_year, SUM(ss.ss_sales_price) rev FROM store_sales ss "
      "JOIN customer c ON ss.ss_customer_sk = c.c_customer_sk "
      "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
      "WHERE c.c_preferred_cust_flag = 'Y' "
      "GROUP BY d.d_year ORDER BY d.d_year",
      // High-value transactions, TOP-N.
      "SELECT ss_item_sk, ss_sales_price FROM store_sales "
      "WHERE ss_sales_price > 195 ORDER BY ss_sales_price DESC LIMIT 25",
      // Weekend vs weekday quantity.
      "SELECT d.d_day_name, AVG(ss.ss_quantity) FROM store_sales ss "
      "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
      "WHERE d.d_year = 2014 GROUP BY d.d_day_name ORDER BY d.d_day_name",
      // Category price statistics (dialect aggregate spellings).
      "SELECT i.i_category, STDDEV_POP(ss.ss_sales_price), "
      "MEDIAN(ss.ss_sales_price) FROM store_sales ss "
      "JOIN item i ON ss.ss_item_sk = i.i_item_sk "
      "WHERE ss.ss_sold_date_sk < " + n(DaysFromCivil(2012, 7, 1)) + " "
      "GROUP BY i.i_category ORDER BY i.i_category",
  };
}

}  // namespace bench
}  // namespace dashdb
