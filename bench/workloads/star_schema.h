// Seeded star/snowflake schema generator shared by the optimizer benchmark
// (bench_join_order) and the cardinality/optimizer tests: one SALES fact
// table with skewed foreign keys into four dimensions (CUSTOMER, PRODUCT,
// STORE, DATEDIM) plus a CATEGORY outrigger off PRODUCT (the snowflake
// arm). Skew gives the cost-based optimizer something to exploit — and the
// CUSTOMER.SEGMENT column is deliberately mis-estimable (95% of rows share
// one of 20 values) so the adaptive re-planner has a >10x estimation error
// to catch.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "sql/engine.h"

namespace dashdb {
namespace bench {

struct StarScale {
  size_t fact_rows = 1000000;
  size_t customers = 50000;
  size_t products = 20000;
  size_t stores = 1000;
  size_t dates = 2000;
  size_t categories = 25;
  uint64_t seed = 17;
};

/// Tables created (all PUBLIC, all column-organized):
///   SALES(ID, CUST_ID, PROD_ID, STORE_ID, DATE_ID, AMT, QTY)
///   CUSTOMER(CUST_ID, SEGMENT, REGION)   SEGMENT: 95% = 0, else 1..19
///   PRODUCT(PROD_ID, CAT_ID, PRICE)
///   STORE(STORE_ID, REGION)
///   DATEDIM(DATE_ID, MONTH, YEAR)
///   CATEGORY(CAT_ID, KIND)               snowflake outrigger of PRODUCT
///   RETURNS(ID, RAMT)                    second fact: 30% of SALES ids
/// Fact FKs are skewed: ~80% of rows hit the first 10% of each dimension.
class StarSchemaWorkload {
 public:
  explicit StarSchemaWorkload(StarScale scale) : scale_(scale) {}

  /// Creates and bulk-loads every table on `engine`.
  Status Setup(Engine* engine);

  const StarScale& scale() const { return scale_; }

 private:
  StarScale scale_;
};

}  // namespace bench
}  // namespace dashdb
