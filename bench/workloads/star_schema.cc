#include "workloads/star_schema.h"

#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/column_table.h"

namespace dashdb {
namespace bench {

namespace {

/// Skewed FK draw: ~80% of picks land in the first 10% of the domain.
size_t SkewedPick(Rng* rng, size_t n) {
  if (n == 0) return 0;
  size_t hot = n / 10 > 0 ? n / 10 : 1;
  if (rng->Uniform(100) < 80) return rng->Uniform(hot);
  return rng->Uniform(n);
}

}  // namespace

Status StarSchemaWorkload::Setup(Engine* engine) {
  Rng rng(scale_.seed);

  // SALES: the fact.
  TableSchema sales("PUBLIC", "SALES",
                    {{"ID", TypeId::kInt64, false, 0, false},
                     {"CUST_ID", TypeId::kInt64, true, 0, false},
                     {"PROD_ID", TypeId::kInt64, true, 0, false},
                     {"STORE_ID", TypeId::kInt64, true, 0, false},
                     {"DATE_ID", TypeId::kInt64, true, 0, false},
                     {"AMT", TypeId::kInt64, true, 0, false},
                     {"QTY", TypeId::kInt64, true, 0, false}});
  DASHDB_ASSIGN_OR_RETURN(auto st, engine->CreateColumnTable(sales));
  RowBatch srows;
  for (int c = 0; c < 7; ++c) srows.columns.emplace_back(TypeId::kInt64);
  for (size_t i = 0; i < scale_.fact_rows; ++i) {
    srows.columns[0].AppendInt(static_cast<int64_t>(i));
    srows.columns[1].AppendInt(
        static_cast<int64_t>(SkewedPick(&rng, scale_.customers)));
    srows.columns[2].AppendInt(
        static_cast<int64_t>(SkewedPick(&rng, scale_.products)));
    srows.columns[3].AppendInt(
        static_cast<int64_t>(SkewedPick(&rng, scale_.stores)));
    srows.columns[4].AppendInt(
        static_cast<int64_t>(SkewedPick(&rng, scale_.dates)));
    srows.columns[5].AppendInt(static_cast<int64_t>(rng.Uniform(10000)));
    srows.columns[6].AppendInt(static_cast<int64_t>(1 + rng.Uniform(10)));
  }
  DASHDB_RETURN_IF_ERROR(st->Load(srows));

  // CUSTOMER: SEGMENT is the adaptive trap — 20 distinct values but 95% of
  // rows carry segment 0, so an equality on it under-estimates ~19x.
  TableSchema customer("PUBLIC", "CUSTOMER",
                       {{"CUST_ID", TypeId::kInt64, false, 0, false},
                        {"SEGMENT", TypeId::kInt64, true, 0, false},
                        {"REGION", TypeId::kInt64, true, 0, false}});
  DASHDB_ASSIGN_OR_RETURN(auto ct, engine->CreateColumnTable(customer));
  RowBatch crows;
  for (int c = 0; c < 3; ++c) crows.columns.emplace_back(TypeId::kInt64);
  for (size_t i = 0; i < scale_.customers; ++i) {
    crows.columns[0].AppendInt(static_cast<int64_t>(i));
    crows.columns[1].AppendInt(
        rng.Uniform(100) < 95 ? 0
                              : static_cast<int64_t>(1 + rng.Uniform(19)));
    crows.columns[2].AppendInt(static_cast<int64_t>(rng.Uniform(50)));
  }
  DASHDB_RETURN_IF_ERROR(ct->Load(crows));

  // PRODUCT with the CATEGORY snowflake outrigger.
  TableSchema product("PUBLIC", "PRODUCT",
                      {{"PROD_ID", TypeId::kInt64, false, 0, false},
                       {"CAT_ID", TypeId::kInt64, true, 0, false},
                       {"PRICE", TypeId::kInt64, true, 0, false}});
  DASHDB_ASSIGN_OR_RETURN(auto pt, engine->CreateColumnTable(product));
  RowBatch prows;
  for (int c = 0; c < 3; ++c) prows.columns.emplace_back(TypeId::kInt64);
  for (size_t i = 0; i < scale_.products; ++i) {
    prows.columns[0].AppendInt(static_cast<int64_t>(i));
    prows.columns[1].AppendInt(static_cast<int64_t>(i % scale_.categories));
    prows.columns[2].AppendInt(static_cast<int64_t>(1 + rng.Uniform(500)));
  }
  DASHDB_RETURN_IF_ERROR(pt->Load(prows));

  TableSchema store("PUBLIC", "STORE",
                    {{"STORE_ID", TypeId::kInt64, false, 0, false},
                     {"REGION", TypeId::kInt64, true, 0, false}});
  DASHDB_ASSIGN_OR_RETURN(auto tt, engine->CreateColumnTable(store));
  RowBatch trows;
  for (int c = 0; c < 2; ++c) trows.columns.emplace_back(TypeId::kInt64);
  for (size_t i = 0; i < scale_.stores; ++i) {
    trows.columns[0].AppendInt(static_cast<int64_t>(i));
    trows.columns[1].AppendInt(static_cast<int64_t>(i % 50));
  }
  DASHDB_RETURN_IF_ERROR(tt->Load(trows));

  TableSchema datedim("PUBLIC", "DATEDIM",
                      {{"DATE_ID", TypeId::kInt64, false, 0, false},
                       {"MONTH", TypeId::kInt64, true, 0, false},
                       {"YEAR", TypeId::kInt64, true, 0, false}});
  DASHDB_ASSIGN_OR_RETURN(auto dt, engine->CreateColumnTable(datedim));
  RowBatch drows;
  for (int c = 0; c < 3; ++c) drows.columns.emplace_back(TypeId::kInt64);
  for (size_t i = 0; i < scale_.dates; ++i) {
    drows.columns[0].AppendInt(static_cast<int64_t>(i));
    drows.columns[1].AppendInt(static_cast<int64_t>(1 + (i / 30) % 12));
    drows.columns[2].AppendInt(static_cast<int64_t>(2010 + i / 365));
  }
  DASHDB_RETURN_IF_ERROR(dt->Load(drows));

  // RETURNS: a second fact keyed by SALES.ID (~30% of sales have one).
  // Strictly increasing id stride keeps ids distinct and inside the
  // SALES domain.
  TableSchema returns("PUBLIC", "RETURNS",
                      {{"ID", TypeId::kInt64, false, 0, false},
                       {"RAMT", TypeId::kInt64, true, 0, false}});
  DASHDB_ASSIGN_OR_RETURN(auto rt, engine->CreateColumnTable(returns));
  RowBatch rrows;
  for (int c = 0; c < 2; ++c) rrows.columns.emplace_back(TypeId::kInt64);
  const size_t nreturns = scale_.fact_rows * 3 / 10;
  for (size_t i = 0; i < nreturns; ++i) {
    rrows.columns[0].AppendInt(static_cast<int64_t>(i * 10 / 3));
    rrows.columns[1].AppendInt(static_cast<int64_t>(rng.Uniform(5000)));
  }
  DASHDB_RETURN_IF_ERROR(rt->Load(rrows));

  TableSchema category("PUBLIC", "CATEGORY",
                       {{"CAT_ID", TypeId::kInt64, false, 0, false},
                        {"KIND", TypeId::kInt64, true, 0, false}});
  DASHDB_ASSIGN_OR_RETURN(auto gt, engine->CreateColumnTable(category));
  RowBatch grows;
  for (int c = 0; c < 2; ++c) grows.columns.emplace_back(TypeId::kInt64);
  for (size_t i = 0; i < scale_.categories; ++i) {
    grows.columns[0].AppendInt(static_cast<int64_t>(i));
    grows.columns[1].AppendInt(static_cast<int64_t>(i % 5));
  }
  return gt->Load(grows);
}

}  // namespace bench
}  // namespace dashdb
