// Mini TPC-DS (substitute for the TPC-DS kit used in Table 1 Test 3; see
// DESIGN.md substitutions). A star schema with the same workload shape:
// a large fact (store_sales) with selective date-dimension predicates,
// star joins, grouped aggregation, and TOP-N ordering.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/engine.h"

namespace dashdb {
namespace bench {

/// Scale: rows in store_sales. Dimensions scale sub-linearly, as in TPC-DS.
struct TpcdsScale {
  size_t store_sales_rows = 500000;
  int years = 5;           ///< date_dim coverage
  int items = 2000;
  int customers = 20000;
  int stores = 20;
  int promotions = 50;
  uint64_t seed = 42;
};

/// Creates the six tables in `engine` (organization follows the engine's
/// default: columnar for dashDB, row for the appliance baseline) and loads
/// generated data. When `index_keys` is true, B+Tree indexes are built on
/// the fact's date key and the dimension keys (the appliance access paths).
Status LoadTpcds(Engine* engine, const TpcdsScale& scale, bool index_keys);

/// The 12 benchmark queries (shaped after TPC-DS Q3/Q7/Q42/Q52/Q55/Q96...).
/// All run unmodified on both engines.
std::vector<std::string> TpcdsQueries();

}  // namespace bench
}  // namespace dashdb
