// Shared work under concurrency: 64 wire clients replaying dashboard-style
// traffic — a 90/10 mix of repeated and unique aggregates over one hot
// table — against a single engine, A/B with the sharing features off
// (every query recomputes from scratch) and on (SET SHARED_SCAN ON +
// SET RESULT_CACHE ON: concurrent scans follow one circular page clock and
// repeat traffic is served from the versioned result cache). Reports QPS,
// p99 latency, pages scanned per query (exec.morsels delta), the cache hit
// rate, and a per-client result checksum that must agree across every
// client AND both arms — sharing may never change bytes.
//
// Writes BENCH_shared.json. The ON arm's QPS must be >= 2x the OFF arm.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/engine.h"

namespace dashdb {
namespace {

constexpr int kClients = 64;
constexpr int64_t kHotRows = 200000;  // ~49 pages/column at 4096 rows/page
constexpr double kRunSeconds = 2.0;

// The 90% repeat traffic: the dashboard panel queries every client re-issues.
const char* kRepeated[] = {
    "SELECT COUNT(*), SUM(V), MIN(V), MAX(V) FROM HOT WHERE V >= 0",
    "SELECT GRP, COUNT(*), SUM(V) FROM HOT GROUP BY GRP ORDER BY GRP",
    "SELECT COUNT(*), MAX(ID) FROM HOT WHERE V > 500",
    "SELECT SUM(ID), COUNT(*) FROM HOT WHERE GRP = 3",
    "SELECT GRP, MIN(V), MAX(V) FROM HOT WHERE GRP < 20 GROUP BY GRP ORDER BY GRP",
    "SELECT COUNT(*), SUM(V) FROM HOT WHERE V % 7 = 0",
    "SELECT GRP, COUNT(*) FROM HOT WHERE V > 250 GROUP BY GRP ORDER BY GRP",
    "SELECT MIN(ID), MAX(ID), SUM(V) FROM HOT WHERE GRP >= 40",
};
constexpr size_t kRepeatedCount = sizeof(kRepeated) / sizeof(kRepeated[0]);

void LoadHot(Engine* engine) {
  TableSchema schema("PUBLIC", "HOT",
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"GRP", TypeId::kInt64, true, 0, false},
                      {"V", TypeId::kInt64, true, 0, false}});
  auto t = engine->CreateColumnTable(schema);
  if (!t.ok()) {
    std::fprintf(stderr, "load HOT: %s\n", t.status().ToString().c_str());
    std::exit(1);
  }
  RowBatch rows;
  for (int c = 0; c < 3; ++c) rows.columns.emplace_back(TypeId::kInt64);
  for (int64_t i = 0; i < kHotRows; ++i) {
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendInt(i % 97);
    rows.columns[2].AppendInt(i * 31 % 1009);
  }
  if (!t.value()->Append(rows).ok()) std::exit(1);
}

/// Canonical checksum of one result (column names + every row in order).
size_t ResultChecksum(const QueryResult& r) {
  std::string key;
  for (const auto& c : r.columns) key += c.name + "|";
  key += "\n";
  for (size_t i = 0; i < r.rows.num_rows(); ++i) {
    for (size_t c = 0; c < r.rows.columns.size(); ++c) {
      key += r.rows.columns[c].GetValue(i).ToString() + "|";
    }
    key += "\n";
  }
  return std::hash<std::string>{}(key);
}

struct ModeResult {
  std::string name;
  bool sharing = false;
  uint64_t completed = 0;
  uint64_t errors = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double qps = 0;
  double pages_per_query = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  double cache_hit_rate = 0;
  int64_t scan_attaches = 0;
  int64_t scan_misses = 0;
  int64_t pages_shared = 0;
  /// checksum per repeated query, identical across all clients or 0-filled
  /// on divergence (checked before aggregation).
  std::vector<size_t> checksums;
  bool checksums_agree = true;
};

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[static_cast<size_t>(p * static_cast<double>(v.size() - 1))];
}

ModeResult RunMode(int port, const std::string& name, bool sharing) {
  ModeResult out;
  out.name = name;
  out.sharing = sharing;

  std::vector<std::unique_ptr<WireClient>> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    auto cl = std::make_unique<WireClient>();
    if (!cl->Connect(port).ok()) {
      std::fprintf(stderr, "client %d connect failed\n", c);
      std::exit(1);
    }
    for (const char* knob :
         {sharing ? "SET SHARED_SCAN ON" : "SET SHARED_SCAN OFF",
          sharing ? "SET RESULT_CACHE ON" : "SET RESULT_CACHE OFF"}) {
      if (!cl->Query(knob).ok()) std::exit(1);
    }
    clients.push_back(std::move(cl));
  }

  MetricDeltaScope metrics;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> done{0}, errors{0};
  std::vector<std::vector<double>> lat_ms(kClients);
  // Per-client checksum of each repeated query's result; every repetition
  // and every client must agree (byte-identity is the contract).
  std::vector<std::vector<size_t>> sums(kClients,
                                        std::vector<size_t>(kRepeatedCount, 0));
  std::vector<bool> self_consistent(kClients, true);
  std::vector<std::thread> threads;
  auto bench_start = std::chrono::steady_clock::now();
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      WireClient& cl = *clients[c];
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::string sql;
        size_t rep_idx = kRepeatedCount;
        if (i % 10 == 9) {
          // The 10% unique tail: a literal no other request ever used, so
          // it can never be served from the cache.
          sql = "SELECT COUNT(*), SUM(V) FROM HOT WHERE V > " +
                std::to_string(1000 + (static_cast<uint64_t>(c) << 32 | i) % 500);
          sql += " AND ID >= " + std::to_string(static_cast<uint64_t>(c) * 1000000 + i);
        } else {
          rep_idx = (static_cast<size_t>(c) + i) % kRepeatedCount;
          sql = kRepeated[rep_idx];
        }
        auto t0 = std::chrono::steady_clock::now();
        auto r = cl.Query(sql);
        auto t1 = std::chrono::steady_clock::now();
        if (!r.ok()) {
          errors.fetch_add(1);
          return;
        }
        done.fetch_add(1);
        lat_ms[c].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        if (rep_idx < kRepeatedCount) {
          const size_t sum = ResultChecksum(*r);
          if (sums[c][rep_idx] == 0) {
            sums[c][rep_idx] = sum;
          } else if (sums[c][rep_idx] != sum) {
            self_consistent[c] = false;  // same text, different bytes
          }
        }
        ++i;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(kRunSeconds));
  stop.store(true);
  for (auto& th : threads) th.join();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - bench_start)
                             .count();
  for (auto& cl : clients) cl->Close();

  out.completed = done.load();
  out.errors = errors.load();
  std::vector<double> all;
  for (auto& v : lat_ms) all.insert(all.end(), v.begin(), v.end());
  out.p50_ms = Percentile(all, 0.50);
  out.p99_ms = Percentile(all, 0.99);
  out.qps = elapsed > 0 ? static_cast<double>(out.completed) / elapsed : 0;
  out.pages_per_query =
      out.completed
          ? static_cast<double>(metrics.Delta("exec.morsels")) /
                static_cast<double>(out.completed)
          : 0;
  out.cache_hits = metrics.Delta("server.result_cache_hits");
  out.cache_misses = metrics.Delta("server.result_cache_misses");
  out.cache_hit_rate =
      out.cache_hits + out.cache_misses
          ? static_cast<double>(out.cache_hits) /
                static_cast<double>(out.cache_hits + out.cache_misses)
          : 0;
  out.scan_attaches = metrics.Delta("exec.shared_scan_attaches");
  out.scan_misses = metrics.Delta("exec.shared_scan_misses");
  out.pages_shared = metrics.Delta("exec.shared_scan_pages_shared");

  // Cross-client agreement: every client that saw repeated query q must
  // have the same checksum.
  out.checksums.assign(kRepeatedCount, 0);
  for (size_t q = 0; q < kRepeatedCount; ++q) {
    for (int c = 0; c < kClients; ++c) {
      if (sums[c][q] == 0) continue;  // client never drew this query
      if (out.checksums[q] == 0) {
        out.checksums[q] = sums[c][q];
      } else if (out.checksums[q] != sums[c][q]) {
        out.checksums_agree = false;
      }
    }
  }
  for (int c = 0; c < kClients; ++c) {
    if (!self_consistent[c]) out.checksums_agree = false;
  }
  return out;
}

}  // namespace
}  // namespace dashdb

int main() {
  using namespace dashdb;
  EngineConfig cfg = bench::DashDbConfig();
  cfg.query_parallelism = 2;
  cfg.admission.cheap_slots = 64;
  cfg.admission.expensive_slots = 8;
  cfg.admission.max_queued = 256;
  Engine engine(cfg);
  LoadHot(&engine);

  EngineBackend backend(&engine);
  ServerConfig scfg;
  scfg.worker_threads = 16;
  Server server(&backend, scfg);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }

  bench::PrintHeader("Shared work: " + std::to_string(kClients) +
                     " wire clients, sharing A/B");
  bench::PrintNote("90% repeated / 10% unique aggregates over " +
                   std::to_string(kHotRows) + " rows, " +
                   std::to_string(kRunSeconds) + "s per mode");

  // Warm every repeated shape once so neither arm pays first-touch costs
  // (and the OFF arm is not penalized for cold plan-cache misses).
  {
    WireClient warm;
    if (!warm.Connect(server.port()).ok()) return 1;
    for (const char* q : kRepeated) warm.Query(q);
    warm.Close();
  }

  ModeResult off = RunMode(server.port(), "sharing_off", false);
  engine.result_cache().Clear();  // arms start equal
  ModeResult on = RunMode(server.port(), "sharing_on", true);

  for (const ModeResult* m : {&off, &on}) {
    bench::PrintHeader(m->name);
    bench::PrintRow("completed", static_cast<double>(m->completed), "");
    bench::PrintRow("errors", static_cast<double>(m->errors), "");
    bench::PrintRow("QPS", m->qps, "q/s");
    bench::PrintRow("p50", m->p50_ms, "ms");
    bench::PrintRow("p99", m->p99_ms, "ms");
    bench::PrintRow("pages scanned / query", m->pages_per_query, "");
    bench::PrintRow("result cache hit rate", m->cache_hit_rate * 100.0, "%");
    bench::PrintRow("shared-scan attaches",
                    static_cast<double>(m->scan_attaches), "");
    bench::PrintRow("shared pages", static_cast<double>(m->pages_shared), "");
    bench::PrintRow("checksums agree", m->checksums_agree ? 1 : 0, "");
  }

  const double speedup = off.qps > 0 ? on.qps / off.qps : 0;
  bool identical_across_arms = off.checksums_agree && on.checksums_agree;
  for (size_t q = 0; q < kRepeatedCount; ++q) {
    if (off.checksums[q] != 0 && on.checksums[q] != 0 &&
        off.checksums[q] != on.checksums[q]) {
      identical_across_arms = false;
    }
  }
  bench::PrintHeader("summary");
  bench::PrintRow("QPS speedup (on/off)", speedup, "x");
  bench::PrintRow("byte-identical across arms", identical_across_arms ? 1 : 0,
                  "");

  FILE* json = std::fopen("BENCH_shared.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_shared.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"clients\": %d,\n  \"hot_rows\": %lld,\n"
               "  \"run_seconds\": %.2f,\n  \"repeated_fraction\": 0.9,\n"
               "  \"modes\": [\n",
               kClients, static_cast<long long>(kHotRows), kRunSeconds);
  bool first = true;
  for (const ModeResult* m : {&off, &on}) {
    std::fprintf(
        json,
        "%s    {\"name\": \"%s\", \"sharing\": %s,\n"
        "     \"completed\": %llu, \"errors\": %llu, \"qps\": %.1f,\n"
        "     \"p50_ms\": %.3f, \"p99_ms\": %.3f,\n"
        "     \"pages_per_query\": %.2f,\n"
        "     \"result_cache\": {\"hits\": %lld, \"misses\": %lld, "
        "\"hit_rate\": %.4f},\n"
        "     \"shared_scan\": {\"attaches\": %lld, \"group_starts\": %lld, "
        "\"pages_shared\": %lld},\n"
        "     \"checksums_agree\": %s}",
        first ? "" : ",\n", m->name.c_str(), m->sharing ? "true" : "false",
        static_cast<unsigned long long>(m->completed),
        static_cast<unsigned long long>(m->errors), m->qps, m->p50_ms,
        m->p99_ms, m->pages_per_query, static_cast<long long>(m->cache_hits),
        static_cast<long long>(m->cache_misses), m->cache_hit_rate,
        static_cast<long long>(m->scan_attaches),
        static_cast<long long>(m->scan_misses),
        static_cast<long long>(m->pages_shared),
        m->checksums_agree ? "true" : "false");
    first = false;
  }
  std::fprintf(json,
               "\n  ],\n  \"qps_speedup\": %.2f,\n"
               "  \"byte_identical_across_arms\": %s\n}\n",
               speedup, identical_across_arms ? "true" : "false");
  std::fclose(json);
  server.Stop();
  std::printf("\nwrote BENCH_shared.json\n");
  if (!identical_across_arms) {
    std::fprintf(stderr, "FAIL: results diverged between clients or arms\n");
    return 1;
  }
  return 0;
}
