// Figure 2: MPP shared-nothing scale-out. Fixed total data is distributed
// over 1..8 nodes; per-shard execution times are measured and cluster
// wall-clock is modeled via the topology makespan (LPT per node), showing
// the near-linear scaling curve of the shared-nothing architecture.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "mpp/mpp.h"

using namespace dashdb;
using namespace dashdb::bench;

namespace {

constexpr size_t kTotalRows = 800000;

Result<MppQueryResult> LoadAndQuery(int nodes, double* load_s) {
  MppDatabase db(nodes, /*shards_per_node=*/4, /*cores_per_node=*/8,
                 size_t{16} << 30);
  TableSchema schema("PUBLIC", "F",
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"G", TypeId::kInt64, true, 0, false},
                      {"V", TypeId::kDouble, true, 0, false}});
  schema.set_distribution_key(0);
  DASHDB_RETURN_IF_ERROR(db.CreateTable(schema));
  RowBatch rows;
  rows.columns.emplace_back(TypeId::kInt64);
  rows.columns.emplace_back(TypeId::kInt64);
  rows.columns.emplace_back(TypeId::kDouble);
  Rng rng(4);
  for (size_t i = 0; i < kTotalRows; ++i) {
    rows.columns[0].AppendInt(static_cast<int64_t>(i));
    rows.columns[1].AppendInt(static_cast<int64_t>(rng.Uniform(1000)));
    rows.columns[2].AppendDouble(rng.Uniform(10000) / 100.0);
  }
  Stopwatch sw;
  DASHDB_RETURN_IF_ERROR(db.Load("PUBLIC", "F", rows));
  *load_s = sw.ElapsedSeconds();
  DASHDB_ASSIGN_OR_RETURN(
      MppQueryResult r,
      db.Execute("SELECT G, COUNT(*), SUM(V), AVG(V) FROM F GROUP BY G"));
  // Makespan must be computed against THIS db's topology before it dies.
  MppQueryResult out = r;
  out.result.message = std::to_string(r.MakespanOn(*db.topology()));
  return out;
}

}  // namespace

int main() {
  PrintHeader("Figure 2: MPP shared-nothing scale-out (fixed total data)");
  std::printf("  %5s %8s %16s %14s %10s\n", "nodes", "shards",
              "modeled query s", "speedup vs 1", "efficiency");
  double base = 0;
  for (int nodes : {1, 2, 4, 8}) {
    double load_s = 0;
    auto r = LoadAndQuery(nodes, &load_s);
    if (!r.ok()) {
      std::fprintf(stderr, "failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    double makespan = std::stod(r->result.message);
    if (nodes == 1) base = makespan;
    double speedup = base / makespan;
    std::printf("  %5d %8d %16.4f %13.2fx %9.0f%%\n", nodes, nodes * 4,
                makespan, speedup, 100.0 * speedup / nodes);
  }
  PrintNote("shape: near-linear speedup — each node owns 1/N of the shards "
            "and scans proceed shard-parallel (paper: 'scales to massive "
            "data and compute')");
  return 0;
}
