// Cost-based join ordering + Bloom semi-join pushdown vs the FROM-order
// heuristic (DESIGN.md "Cost-based optimization"), over the seeded star/
// snowflake workload (bench/workloads/star_schema.h):
//
//   star       — 5-way star with a selective PRODUCT filter, fact written
//                mid-FROM so the heuristic builds a 1M-row hash table while
//                the cost path streams the fact through small builds behind
//                a Bloom filter. Acceptance gate: >= 2x at equal digests.
//   snowflake  — PRODUCT -> CATEGORY outrigger chain.
//   adaptive   — 11-way join (greedy ordering beyond the DP cutoff) whose
//                CUSTOMER.SEGMENT predicate under-estimates ~19x; the
//                mid-query re-plan pulls the reducing PRODUCT -> CATEGORY
//                outrigger chain forward. Gate: re-plan fires and
//                ADAPTIVE ON beats OFF.
//
// Every A/B pair is digest-checked (sorted row strings) at DOP 1 and 4.
// Writes BENCH_optimizer.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "sql/engine.h"
#include "workloads/star_schema.h"

using namespace dashdb;
using namespace dashdb::bench;

namespace {

constexpr int kReps = 3;

std::string Digest(const QueryResult& r) {
  std::vector<std::string> rows;
  for (size_t i = 0; i < r.rows.num_rows(); ++i) {
    std::string row;
    for (const ColumnVector& cv : r.rows.columns) {
      Value v = cv.GetValue(i);
      row += v.is_null() ? "<null>" : v.ToString();
      row += '|';
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  std::string all;
  for (const auto& row : rows) {
    all += row;
    all += '\n';
  }
  return all;
}

struct Timed {
  double best_s = 1e30;
  std::string digest;
};

Timed Run(Engine* engine, Session* session, const std::string& sql) {
  Timed t;
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch sw;
    auto r = engine->Execute(session, sql);
    double s = sw.ElapsedSeconds();
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n  %s\n",
                   r.status().ToString().c_str(), sql.c_str());
      std::exit(1);
    }
    t.best_s = std::min(t.best_s, s);
    t.digest = Digest(r.value());
  }
  return t;
}

void Set(Engine* engine, Session* session, const std::string& sql) {
  auto r = engine->Execute(session, sql);
  if (!r.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", sql.c_str(),
                 r.status().ToString().c_str());
    std::exit(1);
  }
}

std::string AdaptiveSql() {
  // 11 relations: past the DP cutoff, so the initial ordering is greedy and
  // the mid-query re-plan can genuinely change it. CUSTOMER.SEGMENT = 0
  // under-estimates ~19x (50k/20 = 2.5k est vs ~47.5k actual), tripping the
  // re-plan after the first build. The reducing join is the CATEGORY
  // outrigger (KIND = 2 keeps 1/5 of rows) reached only through PRODUCT —
  // a non-driver edge, so the Bloom pushdown cannot pre-filter it away.
  // Against the mis-estimated 50k-row intermediate, greedy one-step
  // lookahead defers PRODUCT's 20k build behind the seven cheap STORE
  // aliases and never sees that it unlocks CATEGORY; the re-planned DP
  // (9 free relations, under the cutoff) pulls PRODUCT -> CATEGORY forward
  // and runs the stores over a 5x smaller intermediate.
  std::string sql =
      "SELECT COUNT(*), SUM(S.AMT) "
      "FROM SALES S, CUSTOMER C, PRODUCT P, CATEGORY G";
  for (int k = 1; k <= 7; ++k) sql += ", STORE T" + std::to_string(k);
  sql +=
      " WHERE S.CUST_ID = C.CUST_ID AND S.PROD_ID = P.PROD_ID"
      " AND P.CAT_ID = G.CAT_ID";
  for (int k = 1; k <= 7; ++k) {
    sql += " AND S.STORE_ID = T" + std::to_string(k) + ".STORE_ID";
  }
  sql += " AND C.SEGMENT = 0 AND G.KIND = 2";
  return sql;
}

}  // namespace

int main() {
  PrintHeader("Cost-based join ordering + Bloom pushdown vs FROM-order");
  EngineConfig cfg = DashDbConfig(size_t{512} << 20);
  cfg.io_model = IoModel{};  // pure CPU measurement
  cfg.query_parallelism = 4;
  Engine engine(cfg);
  auto session = engine.CreateSession();
  StarSchemaWorkload workload(StarScale{});
  if (auto s = workload.Setup(&engine); !s.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
    return 1;
  }

  struct Spec {
    const char* name;
    std::string sql;
    bool gate_2x;
  };
  const std::vector<Spec> specs = {
      {"star",
       "SELECT C.REGION, COUNT(*), SUM(S.AMT) "
       "FROM DATEDIM D, SALES S, STORE T, CUSTOMER C, PRODUCT P "
       "WHERE S.DATE_ID = D.DATE_ID AND S.STORE_ID = T.STORE_ID "
       "AND S.CUST_ID = C.CUST_ID AND S.PROD_ID = P.PROD_ID "
       "AND P.PRICE <= 10 GROUP BY C.REGION",
       true},
      {"snowflake",
       "SELECT P.CAT_ID, COUNT(*), SUM(S.AMT) "
       "FROM DATEDIM D, SALES S, PRODUCT P, CATEGORY G "
       "WHERE S.DATE_ID = D.DATE_ID AND S.PROD_ID = P.PROD_ID "
       "AND P.CAT_ID = G.CAT_ID AND G.KIND = 2 AND P.PRICE <= 50 "
       "GROUP BY P.CAT_ID",
       false},
  };

  FILE* json = std::fopen("BENCH_optimizer.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_optimizer.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"fact_rows\": %zu,\n  \"queries\": [\n",
               workload.scale().fact_rows);

  bool ok = true;
  for (size_t qi = 0; qi < specs.size(); ++qi) {
    const Spec& q = specs[qi];
    std::fprintf(json, "    {\"name\": \"%s\", \"dops\": [\n", q.name);
    for (size_t di = 0; di < 2; ++di) {
      int dop = di == 0 ? 1 : 4;
      Set(&engine, session.get(), "SET DOP " + std::to_string(dop));
      Set(&engine, session.get(), "SET OPTIMIZER HEURISTIC");
      Timed heur = Run(&engine, session.get(), q.sql);
      Set(&engine, session.get(), "SET OPTIMIZER COST");
      Timed cost = Run(&engine, session.get(), q.sql);
      bool equal = heur.digest == cost.digest;
      double speedup = cost.best_s > 0 ? heur.best_s / cost.best_s : 0;
      std::printf("%-10s dop=%d  heuristic %8.4fs  cost %8.4fs  %5.2fx  %s\n",
                  q.name, dop, heur.best_s, cost.best_s, speedup,
                  equal ? "digests equal" : "DIGEST MISMATCH");
      if (!equal) ok = false;
      if (q.gate_2x && speedup < 2.0) {
        std::printf("  ** below 2x acceptance gate\n");
        ok = false;
      }
      std::fprintf(json,
                   "      {\"dop\": %d, \"heuristic_s\": %.6f, "
                   "\"cost_s\": %.6f, \"speedup\": %.3f, "
                   "\"digests_equal\": %s}%s\n",
                   dop, heur.best_s, cost.best_s, speedup,
                   equal ? "true" : "false", di == 0 ? "," : "");
    }
    std::fprintf(json, "    ]}%s\n", qi + 1 < specs.size() ? "," : ",");
  }

  // Adaptive re-planning A/B: same cost-based plan seed, re-plan on/off.
  Counter* replans =
      MetricRegistry::Global().GetCounter("exec.adaptive_replans");
  Set(&engine, session.get(), "SET DOP 1");
  Set(&engine, session.get(), "SET OPTIMIZER COST");
  const std::string asql = AdaptiveSql();
  Set(&engine, session.get(), "SET ADAPTIVE OFF");
  Timed off = Run(&engine, session.get(), asql);
  uint64_t replans_before = replans->value();
  Set(&engine, session.get(), "SET ADAPTIVE ON");
  Timed on = Run(&engine, session.get(), asql);
  uint64_t fired = replans->value() - replans_before;
  bool equal = on.digest == off.digest;
  double improvement = on.best_s > 0 ? off.best_s / on.best_s : 0;
  std::printf(
      "adaptive   dop=1  off %8.4fs  on %8.4fs  %5.2fx  replans=%llu  %s\n",
      off.best_s, on.best_s, improvement,
      static_cast<unsigned long long>(fired),
      equal ? "digests equal" : "DIGEST MISMATCH");
  if (!equal || fired == 0 || improvement <= 1.0) {
    std::printf("  ** adaptive gate failed (fired=%llu, %.2fx)\n",
                static_cast<unsigned long long>(fired), improvement);
    ok = false;
  }
  std::fprintf(json,
               "    {\"name\": \"adaptive\", \"off_s\": %.6f, \"on_s\": %.6f, "
               "\"improvement\": %.3f, \"replans\": %llu, "
               "\"digests_equal\": %s}\n  ]\n}\n",
               off.best_s, on.best_s, improvement,
               static_cast<unsigned long long>(fired),
               equal ? "true" : "false");
  std::fclose(json);
  PrintNote(ok ? "all gates passed; wrote BENCH_optimizer.json"
               : "GATE FAILURES; wrote BENCH_optimizer.json");
  return ok ? 0 : 1;
}
