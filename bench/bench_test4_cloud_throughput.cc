// Table 1, Test 4: 5-stream throughput (queries/hour) on identical
// hardware, dashDB vs "a popular cloud data warehouse" — reproduced as a
// columnar MPP store WITHOUT dashDB's levers: decode-then-filter
// predicates, no data skipping, LRU caching (see DESIGN.md substitutions).
// Paper: 3.2x Qph advantage.
#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "workloads/tpcds_mini.h"
#include <vector>

using namespace dashdb;
using namespace dashdb::bench;

namespace {

/// Runs `streams` interleaved query streams; returns (queries run, secs).
Result<std::pair<int, double>> RunStreams(Engine* engine,
                                          const std::vector<std::string>& qs,
                                          int streams, int rounds) {
  std::vector<std::shared_ptr<Session>> sessions;
  for (int s = 0; s < streams; ++s) sessions.push_back(engine->CreateSession());
  (void)engine->TakeIoSeconds();
  Stopwatch sw;
  int done = 0;
  for (int r = 0; r < rounds; ++r) {
    for (size_t q = 0; q < qs.size(); ++q) {
      for (int s = 0; s < streams; ++s) {
        // Each stream visits the mix at a different offset (BD Insight-ish).
        const std::string& sql = qs[(q + s) % qs.size()];
        auto res = engine->Execute(sessions[s].get(), sql);
        if (!res.ok()) {
          return Status(res.status().code(),
                        res.status().message() + " in: " + sql);
        }
        ++done;
      }
    }
  }
  // Stream time = measured CPU + modeled storage I/O (DESIGN.md).
  return std::make_pair(done, sw.ElapsedSeconds() + engine->TakeIoSeconds());
}

}  // namespace

int main() {
  PrintHeader(
      "Table 1 / Test 4: 5-stream BD-Insight-style throughput "
      "(dashDB vs competitor column store)");

  TpcdsScale scale;
  scale.store_sales_rows = 2000000;
  Engine dashdb_engine(DashDbConfig(size_t{4} << 20));
  Engine competitor(CompetitorConfig(size_t{4} << 20));
  if (!LoadTpcds(&dashdb_engine, scale, false).ok() ||
      !LoadTpcds(&competitor, scale, false).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  // BD-Insight-style interactive mix: scan-dominated reporting queries with
  // recent-date windows and selective bands — the workload class where the
  // paper attributes its advantage to in-memory columnar algorithms.
  std::vector<std::string> queries = {
      "SELECT COUNT(*), SUM(ss_sales_price) FROM store_sales "
      "WHERE ss_sold_date_sk >= 17130",  // recent window (data skipping)
      "SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 95 "
      "AND 100 AND ss_sold_date_sk >= 16800",
      "SELECT MAX(ss_sales_price), MIN(ss_sales_price) FROM store_sales "
      "WHERE ss_item_sk = 1",            // hot frequency-partition code
      "SELECT ss_store_sk, COUNT(*), AVG(ss_quantity) FROM store_sales "
      "WHERE ss_sold_date_sk >= 17000 GROUP BY ss_store_sk",
      "SELECT COUNT(*) FROM store_sales ss JOIN store s "
      "ON ss.ss_store_sk = s.s_store_sk WHERE s.s_state = 'CA' "
      "AND ss.ss_sold_date_sk >= 17100",
      "SELECT ss_item_sk, ss_sales_price FROM store_sales "
      "WHERE ss_sales_price > 198 AND ss_sold_date_sk >= 16900 "
      "ORDER BY ss_sales_price DESC LIMIT 20",
  };
  const int kStreams = 5;

  auto comp = RunStreams(&competitor, queries, kStreams, 1);
  auto dash = RunStreams(&dashdb_engine, queries, kStreams, 1);
  if (!comp.ok() || !dash.ok()) {
    std::fprintf(stderr, "run failed: %s %s\n",
                 comp.status().ToString().c_str(),
                 dash.status().ToString().c_str());
    return 1;
  }
  double qph_comp = comp->first / comp->second * 3600;
  double qph_dash = dash->first / dash->second * 3600;
  PrintRow("competitor Qph", qph_comp, "q/h");
  PrintRow("dashDB Qph", qph_dash, "q/h");
  PrintRow("throughput increase", qph_dash / qph_comp, "x");
  PrintNote("paper reports: 3.2x Qph on identical AWS hardware");
  PrintNote("competitor = columnar MPP minus operating-on-compressed, "
            "data skipping, software SIMD, and scan-resistant caching");
  return 0;
}
