// Morsel-driven intra-query parallelism scaling (paper II.B.6/II.B.7):
// scan + grouped aggregation and a star join over a 1.2M-row fact table,
// swept over SET DOP 1/2/4/8 on one engine. Queries use integer aggregates
// so results must be BYTE-IDENTICAL across degrees (verified here via a
// sorted-row digest); rows/sec and speedup-vs-serial go to stdout and to
// BENCH_parallel.json. Acceptance target: >= 2x at dop 4 for scan+agg.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "sql/engine.h"

using namespace dashdb;
using namespace dashdb::bench;

namespace {

constexpr size_t kFactRows = 1200000;
constexpr size_t kDimRows = 50000;
constexpr int kGroups = 1000;

Status LoadData(Engine* engine) {
  TableSchema fact("PUBLIC", "SALES",
                   {{"ID", TypeId::kInt64, false, 0, false},
                    {"G", TypeId::kInt64, true, 0, false},
                    {"K", TypeId::kInt64, true, 0, false},
                    {"V", TypeId::kInt64, true, 0, false}});
  DASHDB_ASSIGN_OR_RETURN(auto ft, engine->CreateColumnTable(fact));
  RowBatch rows;
  for (int c = 0; c < 4; ++c) rows.columns.emplace_back(TypeId::kInt64);
  Rng rng(11);
  for (size_t i = 0; i < kFactRows; ++i) {
    rows.columns[0].AppendInt(static_cast<int64_t>(i));
    rows.columns[1].AppendInt(static_cast<int64_t>(rng.Uniform(kGroups)));
    rows.columns[2].AppendInt(static_cast<int64_t>(rng.Uniform(kDimRows)));
    rows.columns[3].AppendInt(static_cast<int64_t>(rng.Uniform(100000)));
  }
  DASHDB_RETURN_IF_ERROR(ft->Load(rows));

  TableSchema dim("PUBLIC", "DIM",
                  {{"K", TypeId::kInt64, false, 0, false},
                   {"A", TypeId::kInt64, true, 0, false}});
  DASHDB_ASSIGN_OR_RETURN(auto dt, engine->CreateColumnTable(dim));
  RowBatch drows;
  for (int c = 0; c < 2; ++c) drows.columns.emplace_back(TypeId::kInt64);
  for (size_t i = 0; i < kDimRows; ++i) {
    drows.columns[0].AppendInt(static_cast<int64_t>(i));
    drows.columns[1].AppendInt(static_cast<int64_t>(i % 50));
  }
  return dt->Load(drows);
}

/// Canonical digest of a result: sorted row strings joined. Integer-only
/// aggregates make this byte-exact across degrees of parallelism.
std::string Digest(const QueryResult& r) {
  std::vector<std::string> rows;
  for (size_t i = 0; i < r.rows.num_rows(); ++i) {
    std::string row;
    for (const ColumnVector& cv : r.rows.columns) {
      Value v = cv.GetValue(i);
      row += v.is_null() ? "<null>" : v.ToString();
      row += '|';
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  std::string all;
  for (const auto& row : rows) {
    all += row;
    all += '\n';
  }
  return all;
}

struct QuerySpec {
  const char* name;
  const char* sql;
};

}  // namespace

int main() {
  PrintHeader(
      "Morsel-driven parallelism: scan+agg and join scaling vs SET DOP");
  EngineConfig cfg = DashDbConfig(size_t{512} << 20);
  cfg.io_model = IoModel{};  // pure CPU scaling measurement
  cfg.query_parallelism = 8;
  Engine engine(cfg);
  auto session = engine.CreateSession();
  if (auto s = LoadData(&engine); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const std::vector<QuerySpec> queries = {
      {"scan_agg",
       "SELECT G, COUNT(*), SUM(V), MIN(V), MAX(V) FROM SALES GROUP BY G"},
      {"scan_filter_agg",
       "SELECT COUNT(*), SUM(V) FROM SALES WHERE V < 60000"},
      {"star_join_agg",
       "SELECT D.A, COUNT(*), SUM(S.V) FROM SALES S, DIM D "
       "WHERE S.K = D.K GROUP BY D.A"},
  };
  const std::vector<int> dops = {1, 2, 4, 8};
  constexpr int kReps = 3;

  FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
    return 1;
  }
  const unsigned host_cores = std::max(1u, std::thread::hardware_concurrency());
  std::fprintf(json,
               "{\n  \"fact_rows\": %zu,\n  \"host_cores\": %u,\n"
               "  \"queries\": [\n",
               kFactRows, host_cores);
  std::printf("  host cores: %u\n", host_cores);

  bool identical = true;
  bool met_target = true;
  std::printf("  %-16s %4s %10s %14s %9s\n", "query", "dop", "best s",
              "rows/sec", "speedup");
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& q = queries[qi];
    std::string baseline_digest;
    double base_s = 0;
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"points\": [", q.name);
    for (size_t di = 0; di < dops.size(); ++di) {
      int dop = dops[di];
      auto set = engine.Execute(session.get(),
                                "SET DOP = " + std::to_string(dop));
      if (!set.ok()) {
        std::fprintf(stderr, "SET DOP failed: %s\n",
                     set.status().ToString().c_str());
        return 1;
      }
      double best = 0;
      std::string digest;
      for (int rep = 0; rep < kReps; ++rep) {
        Stopwatch sw;
        auto r = engine.Execute(session.get(), q.sql);
        double s = sw.ElapsedSeconds();
        if (!r.ok()) {
          std::fprintf(stderr, "%s failed: %s\n", q.name,
                       r.status().ToString().c_str());
          return 1;
        }
        if (rep == 0) digest = Digest(*r);
        if (rep == 0 || s < best) best = s;
      }
      if (dop == 1) {
        baseline_digest = digest;
        base_s = best;
      } else if (digest != baseline_digest) {
        identical = false;
        std::fprintf(stderr, "  RESULT MISMATCH: %s at dop %d\n", q.name,
                     dop);
      }
      double rps = static_cast<double>(kFactRows) / best;
      double speedup = base_s / best;
      if (qi == 0 && dop == 4 && speedup < 2.0) met_target = false;
      std::printf("  %-16s %4d %10.4f %14.0f %8.2fx\n", q.name, dop, best,
                  rps, speedup);
      std::fprintf(json,
                   "%s{\"dop\": %d, \"seconds\": %.6f, "
                   "\"rows_per_sec\": %.0f, \"speedup\": %.3f}",
                   di == 0 ? "" : ", ", dop, best, rps, speedup);
    }
    std::fprintf(json, "], \"identical_results\": %s}%s\n",
                 identical ? "true" : "false",
                 qi + 1 < queries.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);

  PrintNote(identical
                ? "results byte-identical across all degrees"
                : "RESULT MISMATCH across degrees — parallelism bug");
  if (host_cores < 4) {
    PrintNote("host has < 4 cores: a wall-clock speedup target cannot be "
              "expressed here (threads time-slice one core); the sweep "
              "still verifies result equality under real concurrency");
  } else {
    PrintNote(met_target ? "scan+agg >= 2x at dop 4: met"
                         : "scan+agg >= 2x at dop 4: NOT met on this host");
  }
  PrintNote("written: BENCH_parallel.json");
  return identical ? 0 : 1;
}
