// Parallel sort & Top-N A/B (DESIGN.md "Parallel sort & Top-N"): a 1M-row
// table sorted end-to-end through the engine, comparing the serial
// stable_sort oracle (SET SORT SERIAL) against the normalized-key run
// sort + k-way merge (SET SORT PARALLEL) at DOP 1 and 4, and the fused
// bounded-heap Top-N (ORDER BY ... LIMIT 100) against full-sort-then-limit.
// Every arm's ordered output checksum must be identical — the optimized
// paths are only admissible if they are byte-equivalent to the oracle.
// Results go to stdout and BENCH_sort.json. Acceptance targets: >= 2x on
// the full sort at DOP 4 (wall-clock targets need >= 4 host cores; on
// smaller hosts the sweep still verifies equality under real concurrency,
// the BENCH_parallel convention) and >= 5x for Top-N at any DOP.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "sql/engine.h"

using namespace dashdb;
using namespace dashdb::bench;

namespace {

constexpr size_t kRows = 1000000;

Status LoadData(Engine* engine) {
  TableSchema schema("PUBLIC", "BIGSORT",
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"V", TypeId::kInt64, true, 0, false},
                      {"STR", TypeId::kVarchar, true, 0, false}});
  DASHDB_ASSIGN_OR_RETURN(auto t, engine->CreateColumnTable(schema));
  RowBatch rows;
  rows.columns.emplace_back(TypeId::kInt64);
  rows.columns.emplace_back(TypeId::kInt64);
  rows.columns.emplace_back(TypeId::kVarchar);
  Rng rng(7);
  for (size_t i = 0; i < kRows; ++i) {
    rows.columns[0].AppendInt(static_cast<int64_t>(i));
    rows.columns[1].AppendInt(static_cast<int64_t>(rng.Next()));
    rows.columns[2].AppendString("k" + std::to_string(rng.Uniform(5000)) +
                                 "-" + std::to_string(rng.Uniform(97)));
  }
  return t->Load(rows);
}

/// Order-sensitive FNV-1a checksum of a result: any reordered, missing, or
/// altered row changes it, so equal checksums mean byte-identical output.
uint64_t OrderedChecksum(const QueryResult& r) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    h ^= '|';
    h *= 1099511628211ull;
  };
  for (size_t i = 0; i < r.rows.num_rows(); ++i) {
    for (const ColumnVector& cv : r.rows.columns) {
      Value v = cv.GetValue(i);
      mix(v.is_null() ? "<null>" : v.ToString());
    }
  }
  return h;
}

struct Arm {
  const char* name;      ///< JSON/report label
  const char* sort_mode; ///< SET SORT ...
  const char* topn_mode; ///< SET TOPN ...
  int dop;
};

struct ArmResult {
  double best_s = 0;
  uint64_t checksum = 0;
};

}  // namespace

int main() {
  PrintHeader("Parallel sort & Top-N: serial oracle vs run-sort/merge A/B");
  EngineConfig cfg = DashDbConfig(size_t{512} << 20);
  cfg.io_model = IoModel{};  // pure CPU measurement
  cfg.query_parallelism = 8;
  Engine engine(cfg);
  auto session = engine.CreateSession();
  if (auto s = LoadData(&engine); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  struct QuerySpec {
    const char* name;
    const char* sql;
    bool topn;  ///< Top-N A/B (oracle = full sort + limit) vs full-sort A/B
  };
  const std::vector<QuerySpec> queries = {
      {"full_sort_int", "SELECT ID, V FROM BIGSORT ORDER BY V, ID", false},
      {"full_sort_str",
       "SELECT ID, STR FROM BIGSORT ORDER BY STR DESC, ID", false},
      {"topn_100_of_1m",
       "SELECT ID, V FROM BIGSORT ORDER BY V, ID LIMIT 100", true},
  };
  constexpr int kReps = 3;
  const unsigned host_cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("  host cores: %u\n", host_cores);

  FILE* json = std::fopen("BENCH_sort.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_sort.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"rows\": %zu,\n  \"host_cores\": %u,\n  \"queries\": [\n",
               kRows, host_cores);

  bool identical = true;
  bool met_full = true;
  bool met_topn = true;
  std::printf("  %-16s %-22s %4s %10s %9s\n", "query", "arm", "dop", "best s",
              "speedup");
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& q = queries[qi];
    // Arm 0 is always the serial oracle; later arms are measured against it.
    std::vector<Arm> arms;
    if (q.topn) {
      arms = {{"serial_fullsort_limit", "SET SORT SERIAL", "SET TOPN OFF", 1},
              {"topn_heap_dop1", "SET SORT PARALLEL", "SET TOPN ON", 1},
              {"topn_heap_dop4", "SET SORT PARALLEL", "SET TOPN ON", 4}};
    } else {
      arms = {{"serial_oracle", "SET SORT SERIAL", "SET TOPN OFF", 1},
              {"parallel_dop1", "SET SORT PARALLEL", "SET TOPN OFF", 1},
              {"parallel_dop4", "SET SORT PARALLEL", "SET TOPN OFF", 4}};
    }
    std::fprintf(json, "    {\"name\": \"%s\", \"arms\": [", q.name);
    ArmResult base;
    for (size_t ai = 0; ai < arms.size(); ++ai) {
      const Arm& arm = arms[ai];
      for (const std::string stmt :
           {std::string(arm.sort_mode), std::string(arm.topn_mode),
            "SET DOP = " + std::to_string(arm.dop)}) {
        auto set = engine.Execute(session.get(), stmt);
        if (!set.ok()) {
          std::fprintf(stderr, "%s failed: %s\n", stmt.c_str(),
                       set.status().ToString().c_str());
          return 1;
        }
      }
      ArmResult res;
      for (int rep = 0; rep < kReps; ++rep) {
        Stopwatch sw;
        auto r = engine.Execute(session.get(), q.sql);
        double s = sw.ElapsedSeconds();
        if (!r.ok()) {
          std::fprintf(stderr, "%s/%s failed: %s\n", q.name, arm.name,
                       r.status().ToString().c_str());
          return 1;
        }
        if (rep == 0) res.checksum = OrderedChecksum(*r);
        if (rep == 0 || s < res.best_s) res.best_s = s;
      }
      if (ai == 0) {
        base = res;
      } else if (res.checksum != base.checksum) {
        identical = false;
        std::fprintf(stderr, "  CHECKSUM MISMATCH: %s arm %s\n", q.name,
                     arm.name);
      }
      const double speedup = base.best_s / res.best_s;
      // Arm 0 is the oracle itself (speedup 1.0 by construction) — only the
      // contender arms count against the gates.
      if (ai > 0 && !q.topn && arm.dop == 4 && speedup < 2.0) met_full = false;
      if (ai > 0 && q.topn && arm.dop == 1 && speedup < 5.0) met_topn = false;
      std::printf("  %-16s %-22s %4d %10.4f %8.2fx\n", q.name, arm.name,
                  arm.dop, res.best_s, speedup);
      std::fprintf(json,
                   "%s{\"arm\": \"%s\", \"dop\": %d, \"seconds\": %.6f, "
                   "\"speedup\": %.3f, \"checksum\": \"%016llx\"}",
                   ai == 0 ? "" : ", ", arm.name, arm.dop, res.best_s,
                   static_cast<unsigned long long>(res.checksum));
    }
    std::fprintf(json, "], \"identical_results\": %s}%s\n",
                 identical ? "true" : "false",
                 qi + 1 < queries.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"full_sort_2x_at_dop4\": %s,\n"
               "  \"topn_5x_at_dop1\": %s\n}\n",
               met_full ? "true" : "false", met_topn ? "true" : "false");
  std::fclose(json);

  PrintNote(identical ? "all arms byte-identical to the serial oracle"
                      : "CHECKSUM MISMATCH — sort correctness bug");
  if (host_cores < 4) {
    PrintNote("host has < 4 cores: the dop-4 wall-clock speedup target "
              "cannot be expressed here (threads time-slice one core); the "
              "sweep still verifies oracle equality under real concurrency");
  } else {
    PrintNote(met_full ? "full sort >= 2x at dop 4: met"
                       : "full sort >= 2x at dop 4: NOT met on this host");
  }
  PrintNote(met_topn ? "top-100-of-1M >= 5x over full sort at dop 1: met"
                     : "top-100-of-1M >= 5x over full sort at dop 1: NOT met");
  PrintNote("written: BENCH_sort.json");
  return identical ? 0 : 1;
}
