// Shared helpers for the benchmark binaries: engine factories matching the
// paper's systems under test, and table-style output.
#pragma once

#include <cstdio>
#include <string>

#include "sql/engine.h"

namespace dashdb {
namespace bench {

/// The dashDB Local engine: columnar, all BLU levers on, randomized-weight
/// buffer pool.
inline EngineConfig DashDbConfig(size_t pool_bytes = size_t{256} << 20) {
  EngineConfig cfg;
  cfg.buffer_pool_bytes = pool_bytes;
  cfg.buffer_policy = ReplacementPolicy::kRandomWeight;
  cfg.default_organization = TableOrganization::kColumn;
  cfg.io_model = IoModel::Ssd();  // paper: "28TB SSD"
  return cfg;
}

/// The warehouse-appliance baseline of Table 1 Tests 1-3: row-organized
/// tables with B+Tree secondary indexes (built by the workload loaders).
/// Its I/O model reflects the appliance generation's strengths: many HDD
/// spindles streaming in parallel with FPGA-filtered scans give a high
/// EFFECTIVE sequential rate (rows are filtered before the CPU sees them),
/// while random access still pays HDD seeks.
inline EngineConfig ApplianceConfig(size_t pool_bytes = size_t{256} << 20) {
  EngineConfig cfg;
  cfg.buffer_pool_bytes = pool_bytes;
  cfg.buffer_policy = ReplacementPolicy::kLru;
  cfg.default_organization = TableOrganization::kRow;
  cfg.io_model = IoModel{true, 500e6, 0.008};  // HDD array + FPGA scan assist
  return cfg;
}

/// A plain row store with secondary indexes on ordinary HDD — the
/// "row-organized tables with secondary indexing" of the II.B.7 10-50x
/// claim (no FPGA assist).
inline EngineConfig RowStoreConfig(size_t pool_bytes = size_t{256} << 20) {
  EngineConfig cfg;
  cfg.buffer_pool_bytes = pool_bytes;
  cfg.buffer_policy = ReplacementPolicy::kLru;
  cfg.default_organization = TableOrganization::kRow;
  cfg.io_model = IoModel::Hdd();
  return cfg;
}

/// The Test-4 "popular cloud data warehouse" competitor: an MPP columnar
/// store WITHOUT dashDB's distinguishing levers — predicates evaluate on
/// decoded values, no data skipping, plain LRU cache.
inline EngineConfig CompetitorConfig(size_t pool_bytes = size_t{256} << 20) {
  EngineConfig cfg;
  cfg.buffer_pool_bytes = pool_bytes;
  cfg.buffer_policy = ReplacementPolicy::kLru;
  cfg.default_organization = TableOrganization::kColumn;
  cfg.operate_on_compressed = false;
  cfg.use_synopsis = false;
  cfg.use_swar = false;
  cfg.io_model = IoModel::Ssd();  // Test 4: "identical hardware"
  return cfg;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::string& label, double value,
                     const char* unit) {
  std::printf("  %-52s %12.4f %s\n", label.c_str(), value, unit);
}

inline void PrintNote(const std::string& note) {
  std::printf("  %s\n", note.c_str());
}

}  // namespace bench
}  // namespace dashdb
