// Design-choice ablation: each of the paper's architectural levers
// (II.B.2 operating on compressed data, II.B.4 data skipping, II.B.6
// software SIMD, II.B.5 cache policy, II.B.7 partitioned join) toggled
// one at a time on a scan-heavy query, quantifying its contribution.
#include <cstdio>

#include "bench_util.h"
#include "common/datetime.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "exec/operator.h"

using namespace dashdb;
using namespace dashdb::bench;

namespace {

constexpr size_t kRows = 3000000;

std::shared_ptr<ColumnTable> MakeTable() {
  TableSchema schema("PUBLIC", "F",
                     {{"TS", TypeId::kDate, true, 0, false},
                      {"CODE", TypeId::kInt64, true, 0, false},
                      {"V", TypeId::kInt64, true, 0, false}});
  auto t = std::make_shared<ColumnTable>(schema, 1);
  RowBatch rows;
  rows.columns.emplace_back(TypeId::kDate);
  rows.columns.emplace_back(TypeId::kInt64);
  rows.columns.emplace_back(TypeId::kInt64);
  Rng rng(1);
  ZipfGenerator code(256, 1.1, 2);
  const int32_t start = DaysFromCivil(2012, 1, 1);
  for (size_t i = 0; i < kRows; ++i) {
    rows.columns[0].AppendInt(start + static_cast<int32_t>(i * 1500 / kRows));
    rows.columns[1].AppendInt(static_cast<int64_t>(code.Next()));
    rows.columns[2].AppendInt(rng.Range(0, 1000000));
  }
  if (!t->Load(rows).ok()) std::exit(1);
  return t;
}

double TimeScan(const ColumnTable& t, const ScanOptions& opts, int reps) {
  ColumnPredicate date_pred;
  date_pred.column = 0;
  date_pred.int_range.lo = DaysFromCivil(2015, 6, 1);
  ColumnPredicate code_pred;
  code_pred.column = 1;
  code_pred.int_range.lo = 0;
  code_pred.int_range.hi = 3;  // hot codes -> short frequency partitions
  Stopwatch sw;
  size_t total = 0;
  for (int r = 0; r < reps; ++r) {
    (void)t.Scan({date_pred, code_pred}, {2}, opts,
                 [&](RowBatch& b, const std::vector<uint64_t>&) {
                   total += b.num_rows();
                 });
  }
  if (total == 0) std::exit(2);
  return sw.ElapsedSeconds() / reps;
}

}  // namespace

int main() {
  PrintHeader("Ablation: contribution of each architectural lever");
  auto t = MakeTable();
  const int kReps = 5;
  ScanOptions full;
  double base = TimeScan(*t, full, kReps);
  std::printf("  %-44s %10.2f ms  %8s\n", "all levers on (dashDB)",
              base * 1e3, "1.00x");
  struct Case {
    const char* name;
    ScanOptions opts;
  };
  ScanOptions no_syn = full;
  no_syn.use_synopsis = false;
  ScanOptions no_swar = full;
  no_swar.use_swar = false;
  ScanOptions no_comp = full;
  no_comp.operate_on_compressed = false;
  ScanOptions none;
  none.use_synopsis = false;
  none.use_swar = false;
  none.operate_on_compressed = false;
  for (const Case& c : {Case{"- data skipping (II.B.4)", no_syn},
                        Case{"- software SIMD (II.B.6)", no_swar},
                        Case{"- operate on compressed (II.B.2)", no_comp},
                        Case{"- all three (naive column store)", none}}) {
    double s = TimeScan(*t, c.opts, kReps);
    std::printf("  %-44s %10.2f ms  %7.2fx slower\n", c.name, s * 1e3,
                s / base);
  }

  // Partitioned vs global hash join (II.B.7).
  {
    ExecContext ctx;
    // A build side far larger than L2/L3 so partitioning's cache locality
    // can matter (with a small build side both variants fit in cache).
    auto dim_schema = TableSchema("PUBLIC", "D",
                                  {{"K", TypeId::kInt64, false, 0, false}});
    auto dim = std::make_shared<ColumnTable>(dim_schema, 2);
    RowBatch drows;
    drows.columns.emplace_back(TypeId::kInt64);
    for (int i = 0; i < 2000000; ++i) {
      drows.columns[0].AppendInt(i % 1000000);
    }
    (void)dim->Load(drows);
    auto run_join = [&](bool partitioned) {
      auto probe = std::make_unique<ColumnScanOp>(
          t, std::vector<ColumnPredicate>{}, std::vector<int>{2},
          ScanOptions{});
      auto build = std::make_unique<ColumnScanOp>(
          dim, std::vector<ColumnPredicate>{}, std::vector<int>{0},
          ScanOptions{});
      auto key = std::make_shared<ColumnRefExpr>(0, TypeId::kInt64);
      HashJoinOp join(std::move(probe), std::move(build),
                      std::vector<ExprPtr>{key}, std::vector<ExprPtr>{key},
                      JoinType::kInner, &ctx, partitioned);
      Stopwatch sw;
      auto r = DrainOperator(&join);
      if (!r.ok()) std::exit(3);
      return sw.ElapsedSeconds();
    };
    double part = run_join(true);
    double global = run_join(false);
    std::printf("  %-44s %10.2f ms\n", "hash join, cache-partitioned (II.B.7)",
                part * 1e3);
    std::printf("  %-44s %10.2f ms  %7.2fx\n", "hash join, one global table",
                global * 1e3, global / part);
    PrintNote("finding: with row-at-a-time probing the partition routing "
              "overhead is not amortized; realizing the paper's cache win "
              "needs batch radix probing (documented in EXPERIMENTS.md)");
  }
  PrintNote("each lever contributes independently; the naive configuration "
            "is the Test-4 competitor profile");
  return 0;
}
