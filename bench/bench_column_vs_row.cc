// Claim C-colrow (paper II.B.7): "Entire workloads run on column-organized
// tables in dashDB are typically 10 to 50 times faster than the same
// workloads run on row-organized tables with secondary indexing."
//
// An analytic workload (rollups, selective aggregations, TOP-N) runs over
// the same data in both organizations, sweeping predicate selectivity.
#include <cstdio>

#include "bench_util.h"
#include "common/datetime.h"
#include "common/rng.h"
#include "common/stopwatch.h"

using namespace dashdb;
using namespace dashdb::bench;

namespace {

constexpr size_t kRows = 3000000;
constexpr int kFillerCols = 12;  // realistic warehouse row width (II.B.3)

Status Load(Engine* engine, bool index) {
  std::vector<ColumnDef> cols = {{"ID", TypeId::kInt64, false, 0, false},
                                 {"TS", TypeId::kDate, true, 0, false},
                                 {"GRP", TypeId::kInt64, true, 0, false},
                                 {"AMOUNT", TypeId::kDouble, true, 0, false},
                                 {"FLAG", TypeId::kVarchar, true, 0, false}};
  // Warehouse tables are wide (the paper's customer schema averaged 43
  // columns per table); analytic queries touch a handful. The row store
  // must read full rows from storage; the column store only the active
  // columns (paper II.B.3).
  for (int f = 0; f < kFillerCols; ++f) {
    cols.push_back({"ATTR" + std::to_string(f), TypeId::kInt64, true, 0,
                    false});
  }
  TableSchema schema("PUBLIC", "FACTS", cols);
  Rng rng(3);
  RowBatch rows;
  for (int c = 0; c < schema.num_columns(); ++c) {
    rows.columns.emplace_back(schema.column(c).type);
  }
  const int32_t start = DaysFromCivil(2012, 1, 1);
  for (size_t i = 0; i < kRows; ++i) {
    rows.columns[0].AppendInt(static_cast<int64_t>(i));
    rows.columns[1].AppendInt(start + static_cast<int32_t>(i * 2000 / kRows));
    rows.columns[2].AppendInt(static_cast<int64_t>(rng.Uniform(100)));
    rows.columns[3].AppendDouble(rng.Uniform(100000) / 100.0);
    rows.columns[4].AppendString(rng.Bernoulli(0.1) ? "Y" : "N");
    for (int f = 0; f < kFillerCols; ++f) {
      rows.columns[5 + f].AppendInt(static_cast<int64_t>(rng.Uniform(256)));
    }
  }
  if (engine->config().default_organization == TableOrganization::kRow) {
    schema.set_organization(TableOrganization::kRow);
    DASHDB_ASSIGN_OR_RETURN(auto t, engine->CreateRowTable(schema));
    DASHDB_RETURN_IF_ERROR(t->Append(rows));
    if (index) {
      DASHDB_RETURN_IF_ERROR(t->CreateIndex(0));
      DASHDB_RETURN_IF_ERROR(t->CreateIndex(1));
    }
    return Status::OK();
  }
  DASHDB_ASSIGN_OR_RETURN(auto t, engine->CreateColumnTable(schema));
  return t->Load(rows);
}

double RunAll(Engine* engine, const std::vector<std::string>& qs) {
  auto session = engine->CreateSession();
  (void)engine->TakeIoSeconds();
  Stopwatch sw;
  for (const auto& q : qs) {
    auto r = engine->Execute(session.get(), q);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n  %s\n",
                   r.status().ToString().c_str(), q.c_str());
      std::exit(1);
    }
  }
  // Workload time = measured CPU + modeled storage I/O (DESIGN.md).
  return sw.ElapsedSeconds() + engine->TakeIoSeconds();
}

}  // namespace

int main() {
  PrintHeader("Claim II.B.7: column-organized vs row-organized + indexes");
  Engine columnar(DashDbConfig(size_t{64} << 20));
  Engine rowstore(RowStoreConfig(size_t{64} << 20));
  if (!Load(&columnar, false).ok() || !Load(&rowstore, true).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  const int32_t recent = DaysFromCivil(2016, 1, 1);
  std::vector<std::string> analytic = {
      "SELECT GRP, COUNT(*), SUM(AMOUNT), AVG(AMOUNT) FROM facts "
      "GROUP BY GRP ORDER BY GRP",
      "SELECT COUNT(*), SUM(AMOUNT) FROM facts WHERE FLAG = 'Y'",
      "SELECT GRP, SUM(AMOUNT) s FROM facts WHERE TS >= " +
          std::to_string(recent) + " GROUP BY GRP ORDER BY s DESC LIMIT 5",
      "SELECT COUNT(*) FROM facts WHERE AMOUNT BETWEEN 100 AND 200",
      "SELECT MAX(AMOUNT), MIN(AMOUNT), STDDEV_POP(AMOUNT) FROM facts",
  };
  double row_s = RunAll(&rowstore, analytic);
  double col_s = RunAll(&columnar, analytic);
  PrintRow("row-organized + B+Tree (5 analytic queries)", row_s * 1e3, "ms");
  PrintRow("column-organized (5 analytic queries)", col_s * 1e3, "ms");
  PrintRow("speedup", row_s / col_s, "x");
  PrintNote("paper claims 10-50x for full analytic workloads");

  // Where the row store's indexes DO help (and the column engine has no
  // index by design): point lookups. Reported for completeness.
  std::vector<std::string> point = {
      "SELECT * FROM facts WHERE ID = 1234567",
      "SELECT * FROM facts WHERE ID = 42",
  };
  double row_p = RunAll(&rowstore, point);
  double col_p = RunAll(&columnar, point);
  PrintRow("row point-lookups (indexed)", row_p * 1e3, "ms");
  PrintRow("column point-lookups (synopsis only)", col_p * 1e3, "ms");
  return 0;
}
