// Table 1, Test 1: customer financial workload, single stream.
//
// Paper: dashDB Local vs a warehouse appliance with similar compute; of
// 250K+ statements a 15,000-statement subset ran serially and the 3,500
// longest-running queries showed an average 27.1x / median 6.3x per-query
// speedup. Here the same deterministic statement stream (paper mix) runs
// on both engines and the longest ~23% (3500/15000) are compared.
#include <cstdio>

#include "bench_util.h"
#include "workloads/customer_workload.h"

using namespace dashdb;
using namespace dashdb::bench;

int main() {
  PrintHeader("Table 1 / Test 1: customer workload, serial (dashDB vs appliance)");

  CustomerScale scale;
  scale.schemas = 3;
  scale.tables_per_schema = 4;
  scale.rows_per_table = 40000;
  scale.num_statements = 900;
  CustomerWorkload workload(scale);

  Engine dashdb_engine(DashDbConfig(size_t{4} << 20));
  Engine appliance(ApplianceConfig(size_t{4} << 20));
  auto st = workload.Setup(&dashdb_engine);
  if (!st.ok()) {
    std::fprintf(stderr, "setup(dashdb): %s\n", st.ToString().c_str());
    return 1;
  }
  st = workload.Setup(&appliance);
  if (!st.ok()) {
    std::fprintf(stderr, "setup(appliance): %s\n", st.ToString().c_str());
    return 1;
  }
  auto stmts = workload.MakeStatements();
  PrintNote("catalog: " + std::to_string(dashdb_engine.catalog()->TableCount()) +
            " tables across " + std::to_string(scale.schemas) +
            " schemas; statements: " + std::to_string(stmts.size()) +
            " (paper mix: INSERT/UPDATE/DROP/SELECT/CREATE/DELETE/WITH/"
            "EXPLAIN/TRUNCATE)");

  auto appliance_times = CustomerWorkload::RunSerial(&appliance, stmts);
  if (!appliance_times.ok()) {
    std::fprintf(stderr, "appliance run: %s\n",
                 appliance_times.status().ToString().c_str());
    return 1;
  }
  auto dashdb_times = CustomerWorkload::RunSerial(&dashdb_engine, stmts);
  if (!dashdb_times.ok()) {
    std::fprintf(stderr, "dashdb run: %s\n",
                 dashdb_times.status().ToString().c_str());
    return 1;
  }

  double total_a = 0, total_d = 0;
  for (double t : *appliance_times) total_a += t;
  for (double t : *dashdb_times) total_d += t;
  PrintRow("appliance total", total_a, "s");
  PrintRow("dashDB total", total_d, "s");

  // Paper methodology: the longest-running ~23% of statements.
  SpeedupReport rep = CompareLongest(*appliance_times, *dashdb_times,
                                     3500.0 / 15000.0);
  PrintRow("avg per-query speedup (longest 23%)", rep.avg_speedup, "x");
  PrintRow("median per-query speedup (longest 23%)", rep.median_speedup, "x");
  PrintNote("paper reports: avg 27.1x, median 6.3x (25TB, real appliance)");
  PrintNote("expected shape: dashDB wins by several factors on the long "
            "analytic queries; exact magnitudes depend on substrate");
  return 0;
}
