// Cache-efficient compact hash tables A/B (paper II.B.4 "cache-efficient
// compact hash tables for join and group by"): the executor's flat
// open-addressing structures (src/common/flat_hash.h) against the
// std::unordered_* node-based tables they replaced.
//
//  - Join probe: FlatJoinIndex + BloomPrefilter vs std::unordered_multimap,
//    swept over build sizes 1e4 / 1e6 / 1e7 and probe hit rates 1% / 50% /
//    99%. Both sides pre-reserve; probe time only (the build is timed and
//    reported once per size).
//  - Grouping: FlatKeyIndex over serialized two-column keys vs
//    std::unordered_map<std::string, uint64_t>.
//
// Writes BENCH_join.json. Acceptance target: >= 1.5x probe speedup at the
// 1e6-row / 50%-hit-rate point.
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/flat_hash.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/stopwatch.h"

// std::unordered_multimap deliberately: it is the oracle structure the
// executor used before the flat rewrite.
#include <unordered_map>

using namespace dashdb;
using namespace dashdb::bench;

namespace {

constexpr size_t kProbes = 4000000;

struct ProbePoint {
  size_t build_rows;
  double hit_rate;
  double build_flat_s, build_std_s;
  double flat_s, std_s;  // best probe pass
  uint64_t checksum_flat, checksum_std;
};

/// Build keys are a random permutation-ish spread of [0, n) scaled by an
/// odd constant so neighboring keys don't share cache lines; ~12% of rows
/// are duplicates (key reused), matching a mildly skewed fact-dim join.
std::vector<int64_t> MakeBuildKeys(size_t n, Rng* rng) {
  std::vector<int64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t base = (rng->Uniform(100) < 12 && i > 0)
                       ? keys[rng->Uniform(i)] / 2654435761LL
                       : static_cast<int64_t>(i);
    keys.push_back(base * 2654435761LL);
  }
  return keys;
}

/// Probe keys: `hit_rate` of them are sampled from the build keys, the
/// rest from a disjoint range (so they miss).
std::vector<int64_t> MakeProbeKeys(const std::vector<int64_t>& build,
                                   double hit_rate, Rng* rng) {
  std::vector<int64_t> keys;
  keys.reserve(kProbes);
  for (size_t i = 0; i < kProbes; ++i) {
    if (rng->NextDouble() < hit_rate) {
      keys.push_back(build[rng->Uniform(build.size())]);
    } else {
      keys.push_back(-static_cast<int64_t>(rng->Uniform(1u << 30)) - 1);
    }
  }
  return keys;
}

ProbePoint RunProbePoint(size_t build_rows, double hit_rate, int reps) {
  Rng rng(0xD05 + build_rows);
  std::vector<int64_t> build = MakeBuildKeys(build_rows, &rng);
  std::vector<int64_t> probe = MakeProbeKeys(build, hit_rate, &rng);

  ProbePoint pt{};
  pt.build_rows = build_rows;
  pt.hit_rate = hit_rate;

  // --- flat build: hash once, partitioned structures omitted (single
  // partition mirrors the serial executor path).
  FlatJoinIndex flat;
  BloomPrefilter bloom;
  {
    Stopwatch sw;
    flat.Reserve(build_rows);
    bloom.Init(build_rows);
    for (size_t r = 0; r < build.size(); ++r) {
      uint64_t h = HashInt64(static_cast<uint64_t>(build[r]));
      flat.Insert(static_cast<uint64_t>(build[r]), h,
                  static_cast<uint32_t>(r));
      bloom.Add(h);
    }
    pt.build_flat_s = sw.ElapsedSeconds();
  }

  // --- std build.
  std::unordered_multimap<int64_t, uint32_t> std_map;
  {
    Stopwatch sw;
    std_map.reserve(build_rows);
    for (size_t r = 0; r < build.size(); ++r) {
      std_map.emplace(build[r], static_cast<uint32_t>(r));
    }
    pt.build_std_s = sw.ElapsedSeconds();
  }

  // --- probe passes (best of `reps`); checksum = sum of matched build
  // rows, proving both structures return the same multiset. The flat side
  // runs the executor's vectorized probe: hash a batch up front, then
  // prefetch filter words and slots a few rows ahead.
  constexpr size_t kBatch = 1024;
  constexpr size_t kDist = 8;
  std::vector<uint64_t> hb(kBatch);
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch sw;
    uint64_t sum = 0;
    for (size_t base = 0; base < probe.size(); base += kBatch) {
      const size_t nb = std::min(kBatch, probe.size() - base);
      for (size_t j = 0; j < nb; ++j) {
        hb[j] = HashInt64(static_cast<uint64_t>(probe[base + j]));
      }
      for (size_t j = 0; j < nb; ++j) {
        if (j + kDist < nb) {
          bloom.Prefetch(hb[j + kDist]);
          flat.Prefetch(hb[j + kDist]);
        }
        const uint64_t h = hb[j];
        if (!bloom.MayContain(h)) continue;
        for (int32_t cur =
                 flat.Find(static_cast<uint64_t>(probe[base + j]), h);
             cur != FlatJoinIndex::kNone; cur = flat.Next(cur)) {
          sum += flat.Row(cur);
        }
      }
    }
    double s = sw.ElapsedSeconds();
    if (rep == 0 || s < pt.flat_s) pt.flat_s = s;
    pt.checksum_flat = sum;
  }
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch sw;
    uint64_t sum = 0;
    for (int64_t k : probe) {
      auto [b, e] = std_map.equal_range(k);
      for (auto it = b; it != e; ++it) sum += it->second;
    }
    double s = sw.ElapsedSeconds();
    if (rep == 0 || s < pt.std_s) pt.std_s = s;
    pt.checksum_std = sum;
  }
  return pt;
}

struct GroupPoint {
  size_t rows, groups;
  double flat_s, std_s;
  size_t distinct_flat, distinct_std;
};

GroupPoint RunGroupPoint(size_t rows, size_t groups, int reps) {
  Rng rng(0xA66);
  // Serialized two-column group keys (int64 pair, little-endian) — the
  // same canonical byte form HashAggOp feeds FlatKeyIndex.
  std::vector<std::string> keys;
  keys.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    int64_t a = static_cast<int64_t>(rng.Uniform(groups));
    int64_t b = a % 13;
    std::string k(16, '\0');
    std::memcpy(&k[0], &a, 8);
    std::memcpy(&k[8], &b, 8);
    keys.push_back(std::move(k));
  }

  GroupPoint pt{};
  pt.rows = rows;
  pt.groups = groups;
  for (int rep = 0; rep < reps; ++rep) {
    FlatKeyIndex idx;
    std::vector<uint64_t> counts;
    Stopwatch sw;
    for (const std::string& k : keys) {
      uint64_t h = HashBytesFast(k.data(), k.size());
      bool inserted = false;
      uint32_t id = idx.FindOrInsert(
          reinterpret_cast<const uint8_t*>(k.data()), k.size(), h, &inserted);
      if (inserted) counts.push_back(0);
      ++counts[id];
    }
    double s = sw.ElapsedSeconds();
    if (rep == 0 || s < pt.flat_s) pt.flat_s = s;
    pt.distinct_flat = idx.size();
  }
  for (int rep = 0; rep < reps; ++rep) {
    std::unordered_map<std::string, uint64_t> map;
    Stopwatch sw;
    for (const std::string& k : keys) ++map[k];
    double s = sw.ElapsedSeconds();
    if (rep == 0 || s < pt.std_s) pt.std_s = s;
    pt.distinct_std = map.size();
  }
  return pt;
}

}  // namespace

int main() {
  PrintHeader("Flat hash tables vs std::unordered_* (join probe, grouping)");

  const std::vector<size_t> build_sizes = {10000, 1000000, 10000000};
  const std::vector<double> hit_rates = {0.01, 0.50, 0.99};

  FILE* json = std::fopen("BENCH_join.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_join.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"probes\": %zu,\n  \"join_probe\": [\n", kProbes);

  bool ok = true;
  bool met_target = true;
  double target_speedup = 0;
  std::printf("  %-10s %6s %10s %10s %10s %9s\n", "build", "hit%", "flat s",
              "std s", "Mprobe/s", "speedup");
  bool first = true;
  for (size_t n : build_sizes) {
    const int reps = n >= 10000000 ? 2 : 3;
    for (double hr : hit_rates) {
      ProbePoint pt = RunProbePoint(n, hr, reps);
      if (pt.checksum_flat != pt.checksum_std) {
        ok = false;
        std::fprintf(stderr, "  CHECKSUM MISMATCH at %zu/%.0f%%\n", n,
                     hr * 100);
      }
      double speedup = pt.std_s / pt.flat_s;
      if (n == 1000000 && hr == 0.50) {
        target_speedup = speedup;
        if (speedup < 1.5) met_target = false;
      }
      std::printf("  %-10zu %5.0f%% %10.4f %10.4f %10.1f %8.2fx\n", n,
                  hr * 100, pt.flat_s, pt.std_s,
                  static_cast<double>(kProbes) / pt.flat_s / 1e6, speedup);
      std::fprintf(json,
                   "%s    {\"build_rows\": %zu, \"hit_rate\": %.2f, "
                   "\"flat_build_s\": %.6f, \"std_build_s\": %.6f, "
                   "\"flat_probe_s\": %.6f, \"std_probe_s\": %.6f, "
                   "\"probe_speedup\": %.3f, \"checksums_match\": %s}",
                   first ? "" : ",\n", pt.build_rows, pt.hit_rate,
                   pt.build_flat_s, pt.build_std_s, pt.flat_s, pt.std_s,
                   speedup,
                   pt.checksum_flat == pt.checksum_std ? "true" : "false");
      first = false;
    }
  }
  std::fprintf(json, "\n  ],\n  \"grouping\": [\n");

  std::printf("  %-10s %8s %10s %10s %9s\n", "rows", "groups", "flat s",
              "std s", "speedup");
  const std::vector<std::pair<size_t, size_t>> group_points = {
      {1000000, 100}, {1000000, 100000}, {4000000, 1000000}};
  for (size_t gi = 0; gi < group_points.size(); ++gi) {
    auto [rows, groups] = group_points[gi];
    GroupPoint pt = RunGroupPoint(rows, groups, 3);
    if (pt.distinct_flat != pt.distinct_std) {
      ok = false;
      std::fprintf(stderr, "  GROUP COUNT MISMATCH at %zu/%zu\n", rows,
                   groups);
    }
    double speedup = pt.std_s / pt.flat_s;
    std::printf("  %-10zu %8zu %10.4f %10.4f %8.2fx\n", rows, groups,
                pt.flat_s, pt.std_s, speedup);
    std::fprintf(json,
                 "%s    {\"rows\": %zu, \"groups\": %zu, "
                 "\"flat_s\": %.6f, \"std_s\": %.6f, \"speedup\": %.3f, "
                 "\"distinct_match\": %s}",
                 gi == 0 ? "" : ",\n", rows, groups, pt.flat_s, pt.std_s,
                 speedup, pt.distinct_flat == pt.distinct_std ? "true"
                                                              : "false");
  }
  std::fprintf(json,
               "\n  ],\n  \"target_point_speedup\": %.3f,\n"
               "  \"target_met\": %s\n}\n",
               target_speedup, met_target ? "true" : "false");
  std::fclose(json);

  PrintNote(ok ? "flat and std structures agree on every checksum"
               : "CHECKSUM MISMATCH — flat hash bug");
  std::printf("  1e6-row / 50%%-hit probe speedup: %.2fx (target 1.5x): %s\n",
              target_speedup, met_target ? "met" : "NOT met");
  PrintNote("written: BENCH_join.json");
  return ok ? 0 : 1;
}
