// Claim C-bufferpool (paper II.B.5): the randomized-page-weight policy
// achieves scan-hit ratios "within a few percentiles of optimal" where LRU
// collapses. Traces: cyclic big scans (the pathological case), Zipf-hot
// access, and a scan+hot mix; each policy vs offline Belady MIN.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "bufferpool/bufferpool.h"
#include "common/rng.h"

using namespace dashdb;
using namespace dashdb::bench;

namespace {

double RunTrace(ReplacementPolicy policy, const std::vector<uint32_t>& trace,
                size_t capacity_pages) {
  BufferPool pool(capacity_pages * 100, policy);
  for (uint32_t p : trace) pool.Access(PageId{1, 0, p}, 100);
  return pool.stats().HitRatio();
}

void Report(const std::string& name, const std::vector<uint32_t>& trace,
            size_t capacity) {
  double lru = RunTrace(ReplacementPolicy::kLru, trace, capacity);
  double clock = RunTrace(ReplacementPolicy::kClock, trace, capacity);
  double rw = RunTrace(ReplacementPolicy::kRandomWeight, trace, capacity);
  double opt = SimulateOptimalHitRatio(trace, capacity);
  std::printf("  %-34s %7.1f%% %7.1f%% %7.1f%% %7.1f%%  gap-to-opt %5.1fpp\n",
              name.c_str(), lru * 100, clock * 100, rw * 100, opt * 100,
              (opt - rw) * 100);
}

}  // namespace

int main() {
  PrintHeader("Claim II.B.5: buffer pool policies vs offline optimal");
  std::printf("  %-34s %8s %8s %8s %8s\n", "trace (capacity 100 pages)",
              "LRU", "CLOCK", "RandW", "OPT");

  // 1. Cyclic scan of 130 pages (data slightly larger than cache) — the
  //    paper's motivating pathology.
  {
    std::vector<uint32_t> t;
    for (int r = 0; r < 50; ++r) {
      for (uint32_t p = 0; p < 130; ++p) t.push_back(p);
    }
    Report("cyclic scan, 1.3x cache", t, 100);
  }
  // 2. Cyclic scan of 4x cache.
  {
    std::vector<uint32_t> t;
    for (int r = 0; r < 20; ++r) {
      for (uint32_t p = 0; p < 400; ++p) t.push_back(p);
    }
    Report("cyclic scan, 4x cache", t, 100);
  }
  // 3. Zipf-hot random access (hot columns of hot tables).
  {
    ZipfGenerator z(1000, 1.1, 3);
    std::vector<uint32_t> t;
    for (int i = 0; i < 120000; ++i) t.push_back(static_cast<uint32_t>(z.Next()));
    Report("zipf(1.1) hot pages", t, 100);
  }
  // 4. Mixed: repeated scans + hot lookups (realistic warehouse).
  {
    Rng rng(8);
    ZipfGenerator z(200, 1.2, 4);
    std::vector<uint32_t> t;
    for (int r = 0; r < 30; ++r) {
      for (uint32_t p = 0; p < 150; ++p) {
        t.push_back(p + 1000);  // scan range
        if (rng.Bernoulli(0.5)) t.push_back(static_cast<uint32_t>(z.Next()));
      }
    }
    Report("scan + zipf lookups mix", t, 100);
  }
  PrintNote("paper: randomized weights within a few percentiles of optimal "
            "for Big-Data-style scanning; LRU ~0% on cyclic scans");
  return 0;
}
