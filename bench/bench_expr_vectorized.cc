// A/B benchmark: vectorized expression kernels + selection vectors vs the
// row-at-a-time evaluator they replaced (paper II.B.2/II.B.6 — BLU operates
// on columnar batches, not tuples).
//
// Four workloads over ~1e6 rows of directly-constructed batches (bypassing
// the planner so predicates cannot be pushed into the scan):
//   filter_project  — conjunctive filter at ~50% selectivity, arithmetic
//                     projection over the survivors (the acceptance gate:
//                     >= 2x vs row-at-a-time, identical checksums)
//   case_project    — 3-arm CASE over every row
//   like_prefix     — LIKE 's1%' over a 13-value string column
//   dict_filter     — the same prefix filter over scan batches carrying
//                     dictionary codes (SWAR on compressed codes)
// Every workload checksums both paths and the JSON asserts they agree.
// Writes BENCH_expr.json.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "compression/dict_codes.h"
#include "exec/expr.h"
#include "sql/engine.h"
#include "storage/column_table.h"

namespace dashdb {
namespace {

using bench::PrintHeader;
using bench::PrintNote;

constexpr size_t kBatchRows = 4096;
constexpr size_t kBatches = 245;  // ~1.003e6 rows
constexpr int kReps = 3;

// Columns: 0 V INT64 [0,100)   1 CAT INT64 [0,5)   2 S VARCHAR s0..s12
std::vector<RowBatch> MakeBatches() {
  std::mt19937 rng(7);
  std::vector<RowBatch> batches;
  batches.reserve(kBatches);
  for (size_t b = 0; b < kBatches; ++b) {
    RowBatch rb;
    rb.columns.emplace_back(TypeId::kInt64);
    rb.columns.emplace_back(TypeId::kInt64);
    rb.columns.emplace_back(TypeId::kVarchar);
    for (size_t i = 0; i < kBatchRows; ++i) {
      rb.columns[0].AppendInt(static_cast<int64_t>(rng() % 100));
      rb.columns[1].AppendInt(static_cast<int64_t>(rng() % 5));
      rb.columns[2].AppendString("s" + std::to_string(rng() % 13));
    }
    batches.push_back(std::move(rb));
  }
  return batches;
}

ExprPtr Col(int i, TypeId t) { return std::make_shared<ColumnRefExpr>(i, t); }
ExprPtr Lit(int64_t v) {
  return std::make_shared<LiteralExpr>(Value::Int64(v));
}

struct AB {
  double vec_s = 0;
  double row_s = 0;
  uint64_t vec_sum = 0;
  uint64_t row_sum = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
};

// One measured pass of the vectorized path: filter -> selection ->
// projection over the selection only (compaction deferred, as FilterOp /
// ProjectOp do it).
uint64_t VecPass(const Expr& pred, const Expr* proj,
                 const std::vector<RowBatch>& batches, const ExecContext& ctx,
                 uint64_t* rows_out) {
  uint64_t sum = 0;
  for (const auto& b : batches) {
    auto sel = EvalFilterSel(pred, b, nullptr, b.num_rows(), ctx);
    if (!sel.ok()) std::abort();
    *rows_out += sel->size();
    if (sel->empty()) continue;
    if (!proj) {
      sum += sel->size();
      continue;
    }
    auto out = proj->EvaluateSel(b, sel->data(), sel->size(), ctx);
    if (!out.ok()) std::abort();
    for (size_t i = 0; i < out->size(); ++i) {
      if (!out->IsNull(i)) {
        sum += static_cast<uint64_t>(out->GetInt(i)) * 31 + 7;
      }
    }
  }
  return sum;
}

// The tuple-at-a-time baseline this PR replaced: EvaluateRow per row for
// the predicate, then per surviving row for the projection.
uint64_t RowPass(const Expr& pred, const Expr* proj,
                 const std::vector<RowBatch>& batches, const ExecContext& ctx,
                 uint64_t* rows_out) {
  uint64_t sum = 0;
  for (const auto& b : batches) {
    const size_t n = b.num_rows();
    for (size_t i = 0; i < n; ++i) {
      auto v = pred.EvaluateRow(b, i, ctx);
      if (!v.ok()) std::abort();
      if (v->is_null() || !v->AsBool()) continue;
      ++*rows_out;
      if (!proj) {
        ++sum;
        continue;
      }
      auto p = proj->EvaluateRow(b, i, ctx);
      if (!p.ok()) std::abort();
      if (!p->is_null()) {
        int64_t x = p->type() == TypeId::kDouble
                        ? static_cast<int64_t>(p->AsDouble())
                        : p->AsInt();
        sum += static_cast<uint64_t>(x) * 31 + 7;
      }
    }
  }
  return sum;
}

AB RunAB(const Expr& pred, const Expr* proj,
         const std::vector<RowBatch>& batches, const ExecContext& ctx) {
  AB ab{};
  for (const auto& b : batches) ab.rows_in += b.num_rows();
  for (int rep = 0; rep < kReps; ++rep) {
    uint64_t out = 0;
    Stopwatch sw;
    uint64_t sum = VecPass(pred, proj, batches, ctx, &out);
    double s = sw.ElapsedSeconds();
    if (rep == 0 || s < ab.vec_s) ab.vec_s = s;
    ab.vec_sum = sum;
    ab.rows_out = out;
  }
  for (int rep = 0; rep < kReps; ++rep) {
    uint64_t out = 0;
    Stopwatch sw;
    uint64_t sum = RowPass(pred, proj, batches, ctx, &out);
    double s = sw.ElapsedSeconds();
    if (rep == 0 || s < ab.row_s) ab.row_s = s;
    ab.row_sum = sum;
  }
  return ab;
}

}  // namespace
}  // namespace dashdb

int main() {
  using namespace dashdb;
  PrintHeader("Vectorized expression engine vs row-at-a-time (1e6 rows)");

  ExecContext ctx;
  std::vector<RowBatch> batches = MakeBatches();

  // filter_project: V >= 50 AND CAT <> 2 (~40% pass), project V*3+CAT.
  auto pred_fp = std::make_shared<LogicExpr>(
      LogicOp::kAnd,
      std::make_shared<CompareExpr>(CmpOp::kGe, Col(0, TypeId::kInt64),
                                    Lit(50)),
      std::make_shared<CompareExpr>(CmpOp::kNe, Col(1, TypeId::kInt64),
                                    Lit(2)));
  auto proj_fp = std::make_shared<ArithExpr>(
      ArithOp::kAdd,
      std::make_shared<ArithExpr>(ArithOp::kMul, Col(0, TypeId::kInt64),
                                  Lit(3), TypeId::kInt64),
      Col(1, TypeId::kInt64), TypeId::kInt64);

  // case_project: a filter that accepts everything + a 3-arm CASE.
  auto pred_all = std::make_shared<CompareExpr>(
      CmpOp::kGe, Col(0, TypeId::kInt64), Lit(0));
  std::vector<std::pair<ExprPtr, ExprPtr>> whens;
  whens.emplace_back(std::make_shared<CompareExpr>(
                         CmpOp::kGe, Col(0, TypeId::kInt64), Lit(67)),
                     Lit(100));
  whens.emplace_back(std::make_shared<CompareExpr>(
                         CmpOp::kGe, Col(0, TypeId::kInt64), Lit(34)),
                     std::make_shared<ArithExpr>(
                         ArithOp::kAdd, Col(1, TypeId::kInt64), Lit(10),
                         TypeId::kInt64));
  auto proj_case = std::make_shared<CaseExpr>(std::move(whens), Lit(0),
                                              TypeId::kInt64);

  // like_prefix: S LIKE 's1%' (s1, s10..s12 -> ~4/13 ≈ 31% pass).
  auto pred_like = std::make_shared<LikeExpr>(Col(2, TypeId::kVarchar),
                                              "s1%", false);

  struct Entry {
    const char* name;
    AB ab;
    double target = 0;  // min speedup, 0 = informational
  };
  std::vector<Entry> entries;
  entries.push_back({"filter_project",
                     RunAB(*pred_fp, proj_fp.get(), batches, ctx), 2.0});
  entries.push_back({"case_project",
                     RunAB(*pred_all, proj_case.get(), batches, ctx), 0});
  entries.push_back({"like_prefix",
                     RunAB(*pred_like, nullptr, batches, ctx), 0});

  // dict_filter: the same shapes over scan batches carrying dictionary
  // codes (one full-page table, codes attached by the scan).
  {
    Engine engine(bench::DashDbConfig());
    TableSchema s("PUBLIC", "E",
                  {{"V", TypeId::kInt64, true, 0, false},
                   {"S", TypeId::kVarchar, true, 0, false}});
    auto t = *engine.CreateColumnTable(s);
    RowBatch load;
    load.columns.emplace_back(TypeId::kInt64);
    load.columns.emplace_back(TypeId::kVarchar);
    std::mt19937 rng(11);
    for (size_t i = 0; i < kBatches * kBatchRows; ++i) {
      load.columns[0].AppendInt(static_cast<int64_t>(rng() % 100));
      load.columns[1].AppendString("s" + std::to_string(rng() % 13));
    }
    if (!t->Load(load).ok()) return 1;
    std::vector<RowBatch> scanned;
    Status st = t->Scan({}, {0, 1}, ScanOptions{},
                        [&](RowBatch& b, const std::vector<uint64_t>&) {
                          scanned.push_back(std::move(b));
                        });
    if (!st.ok()) return 1;
    auto pred_dict = std::make_shared<LikeExpr>(Col(1, TypeId::kVarchar),
                                                "s1%", false);
    entries.push_back({"dict_filter",
                       RunAB(*pred_dict, nullptr, scanned, ctx), 0});
  }

  FILE* json = std::fopen("BENCH_expr.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_expr.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"workloads\": [\n");

  bool checks_ok = true;
  bool target_ok = true;
  std::printf("  %-16s %10s %10s %10s %8s %9s %6s\n", "workload", "rows",
              "pass%", "vec s", "row s", "speedup", "sum=");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    const AB& ab = e.ab;
    bool match = ab.vec_sum == ab.row_sum;
    if (!match) checks_ok = false;
    double speedup = ab.row_s / ab.vec_s;
    if (e.target > 0 && speedup < e.target) target_ok = false;
    double sel = ab.rows_in
                     ? 100.0 * static_cast<double>(ab.rows_out) / ab.rows_in
                     : 0;
    std::printf("  %-16s %10llu %9.1f%% %10.4f %8.4f %8.2fx %6s\n", e.name,
                static_cast<unsigned long long>(ab.rows_in), sel, ab.vec_s,
                ab.row_s, speedup, match ? "ok" : "MISMATCH");
    std::fprintf(
        json,
        "%s    {\"workload\": \"%s\", \"rows\": %llu, "
        "\"selectivity_pct\": %.2f, \"vectorized_s\": %.6f, "
        "\"row_at_a_time_s\": %.6f, \"speedup\": %.3f, "
        "\"checksum_vectorized\": %llu, \"checksum_row\": %llu, "
        "\"checksums_match\": %s, \"target_speedup\": %.1f}",
        i ? ",\n" : "", e.name,
        static_cast<unsigned long long>(ab.rows_in), sel, ab.vec_s, ab.row_s,
        speedup, static_cast<unsigned long long>(ab.vec_sum),
        static_cast<unsigned long long>(ab.row_sum),
        match ? "true" : "false", e.target);
  }
  std::fprintf(json,
               "\n  ],\n  \"checksums_match\": %s,\n"
               "  \"meets_2x_filter_project_target\": %s\n}\n",
               checks_ok ? "true" : "false", target_ok ? "true" : "false");
  std::fclose(json);

  PrintNote(checks_ok ? "all checksums match"
                      : "CHECKSUM MISMATCH — see BENCH_expr.json");
  PrintNote(target_ok ? "filter_project >= 2x target met"
                      : "filter_project 2x target MISSED");
  PrintNote("written: BENCH_expr.json");
  return checks_ok ? 0 : 1;
}
