// Concurrent serving layer under a client storm (paper Test 2 territory:
// "concurrent users" against one warehouse): 256 wire clients — a ~90/10
// mix of short interactive aggregates and expensive full-width scans —
// hammer one TCP server multiplexing sessions over a small worker pool.
// Run once with admission control off (every expensive scan runs at once,
// interactive latency collapses) and once with per-class slots on. Reports
// interactive p50/p99, aggregate QPS, expensive completed/shed, and the
// plan-cache hit rate the storm produced.
//
// Writes BENCH_serving.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/engine.h"

namespace dashdb {
namespace {

constexpr int kClients = 256;        // 1 in 10 runs the expensive scan
constexpr int64_t kBigRows = 150000;  // above the expensive-class threshold
constexpr int64_t kSmallRows = 5000;
constexpr double kRunSeconds = 2.0;

const char* kExpensiveSql = "SELECT ID, GRP, V FROM BIG WHERE V >= 0";
// Rotating literals so the cheap tier exercises cache misses AND hits.
const char* kCheapSql[4] = {
    "SELECT COUNT(*), SUM(V) FROM SMALL WHERE V > 50",
    "SELECT COUNT(*), SUM(V) FROM SMALL WHERE V > 60",
    "SELECT GRP, COUNT(*) FROM SMALL WHERE V > 70 GROUP BY GRP ORDER BY GRP",
    "SELECT MIN(V), MAX(V) FROM SMALL WHERE GRP = 7",
};

void LoadRows(Engine* engine, const std::string& name, int64_t n) {
  TableSchema schema("PUBLIC", name,
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"GRP", TypeId::kInt64, true, 0, false},
                      {"V", TypeId::kInt64, true, 0, false}});
  auto t = engine->CreateColumnTable(schema);
  if (!t.ok()) {
    std::fprintf(stderr, "load %s: %s\n", name.c_str(),
                 t.status().ToString().c_str());
    std::exit(1);
  }
  RowBatch rows;
  for (int c = 0; c < 3; ++c) rows.columns.emplace_back(TypeId::kInt64);
  for (int64_t i = 0; i < n; ++i) {
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendInt(i % 97);
    rows.columns[2].AppendInt(i * 31 % 101);
  }
  Status st = t.value()->Append(rows);
  if (!st.ok()) std::exit(1);
}

struct ModeResult {
  std::string name;
  bool admission = false;
  uint64_t cheap_completed = 0;
  uint64_t expensive_completed = 0;
  uint64_t expensive_shed = 0;
  uint64_t errors = 0;
  double cheap_p50_ms = 0;
  double cheap_p99_ms = 0;
  double qps = 0;
};

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// One storm: all kClients connected up front, then kRunSeconds of load.
ModeResult RunMode(int port, const std::string& name, bool admission) {
  ModeResult out;
  out.name = name;
  out.admission = admission;

  // Connection storm first: every client handshakes before the clock
  // starts, so the mode measures serving, not connect latency.
  std::vector<std::unique_ptr<WireClient>> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    auto cl = std::make_unique<WireClient>();
    Status st = cl->Connect(port);
    if (!st.ok()) {
      std::fprintf(stderr, "client %d connect: %s\n", c,
                   st.ToString().c_str());
      std::exit(1);
    }
    auto r = cl->Query(admission ? "SET ADMISSION ON" : "SET ADMISSION OFF");
    if (!r.ok()) std::exit(1);
    clients.push_back(std::move(cl));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> cheap_done{0}, expensive_done{0}, shed{0}, errors{0};
  std::vector<std::vector<double>> cheap_ms(kClients);
  std::vector<std::thread> threads;
  auto bench_start = std::chrono::steady_clock::now();
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      WireClient& cl = *clients[c];
      const bool expensive = (c % 10 == 0);
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (expensive) {
          auto r = cl.Query(kExpensiveSql);
          if (r.ok()) {
            expensive_done.fetch_add(1);
          } else if (r.status().IsResourceExhausted()) {
            shed.fetch_add(1);
          } else {
            errors.fetch_add(1);
            return;  // connection-level failure: stop this client
          }
        } else {
          auto t0 = std::chrono::steady_clock::now();
          auto r = cl.Query(kCheapSql[(c + i) % 4]);
          auto t1 = std::chrono::steady_clock::now();
          if (r.ok()) {
            cheap_done.fetch_add(1);
            cheap_ms[c].push_back(
                std::chrono::duration<double, std::milli>(t1 - t0).count());
          } else if (!r.status().IsResourceExhausted()) {
            errors.fetch_add(1);
            return;
          }
        }
        ++i;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(kRunSeconds));
  stop.store(true);
  for (auto& th : threads) th.join();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - bench_start)
                       .count();
  for (auto& cl : clients) cl->Close();

  std::vector<double> all;
  for (auto& v : cheap_ms) all.insert(all.end(), v.begin(), v.end());
  out.cheap_completed = cheap_done.load();
  out.expensive_completed = expensive_done.load();
  out.expensive_shed = shed.load();
  out.errors = errors.load();
  out.cheap_p50_ms = Percentile(all, 0.50);
  out.cheap_p99_ms = Percentile(all, 0.99);
  out.qps = static_cast<double>(out.cheap_completed +
                                out.expensive_completed) /
            elapsed;
  return out;
}

}  // namespace
}  // namespace dashdb

int main() {
  using namespace dashdb;
  EngineConfig cfg = bench::DashDbConfig();
  cfg.query_parallelism = 4;
  cfg.admission.cheap_slots = 64;
  cfg.admission.expensive_slots = 2;
  cfg.admission.max_queued = 64;
  cfg.admission.queue_timeout_seconds = 0.25;
  Engine engine(cfg);
  LoadRows(&engine, "BIG", kBigRows);
  LoadRows(&engine, "SMALL", kSmallRows);

  EngineBackend backend(&engine);
  ServerConfig scfg;
  // Enough workers that the thread pool is NOT the governor — otherwise the
  // admission A/B just measures worker-pool queueing.
  scfg.worker_threads = 48;
  Server server(&backend, scfg);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start: %s\n", st.ToString().c_str());
    return 1;
  }

  bench::PrintHeader("Concurrent serving: " + std::to_string(kClients) +
                     " wire clients, admission A/B");
  bench::PrintNote("90% interactive aggregates / 10% expensive scans, " +
                   std::to_string(kRunSeconds) + "s per mode, " +
                   std::to_string(scfg.worker_threads) + " workers");

  // Warm both shapes once so neither mode pays first-touch costs.
  {
    WireClient warm;
    if (!warm.Connect(server.port()).ok()) return 1;
    warm.Query("SET ADMISSION OFF");
    warm.Query(kExpensiveSql);
    for (const char* q : kCheapSql) warm.Query(q);
  }

  const uint64_t pc_hits0 = engine.plan_cache().hits();
  const uint64_t pc_misses0 = engine.plan_cache().misses();

  ModeResult base = RunMode(server.port(), "no_admission", false);
  ModeResult gov = RunMode(server.port(), "admission", true);

  const uint64_t pc_hits = engine.plan_cache().hits() - pc_hits0;
  const uint64_t pc_misses = engine.plan_cache().misses() - pc_misses0;
  const double hit_rate =
      pc_hits + pc_misses
          ? static_cast<double>(pc_hits) /
                static_cast<double>(pc_hits + pc_misses)
          : 0;

  for (const ModeResult* m : {&base, &gov}) {
    bench::PrintHeader(m->name);
    bench::PrintRow("interactive completed",
                    static_cast<double>(m->cheap_completed), "");
    bench::PrintRow("interactive p50", m->cheap_p50_ms, "ms");
    bench::PrintRow("interactive p99", m->cheap_p99_ms, "ms");
    bench::PrintRow("expensive completed",
                    static_cast<double>(m->expensive_completed), "");
    bench::PrintRow("expensive shed",
                    static_cast<double>(m->expensive_shed), "");
    bench::PrintRow("connection errors",
                    static_cast<double>(m->errors), "");
    bench::PrintRow("total QPS", m->qps, "q/s");
  }
  double improvement =
      gov.cheap_p99_ms > 0 ? base.cheap_p99_ms / gov.cheap_p99_ms : 0;
  bench::PrintHeader("summary");
  bench::PrintRow("interactive p99 improvement", improvement, "x");
  bench::PrintRow("plan cache hit rate", hit_rate * 100.0, "%");

  FILE* json = std::fopen("BENCH_serving.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_serving.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"clients\": %d,\n  \"big_rows\": %lld,\n"
               "  \"small_rows\": %lld,\n  \"run_seconds\": %.2f,\n"
               "  \"worker_threads\": %d,\n  \"modes\": [\n",
               kClients, static_cast<long long>(kBigRows),
               static_cast<long long>(kSmallRows), kRunSeconds,
               scfg.worker_threads);
  bool first = true;
  for (const ModeResult* m : {&base, &gov}) {
    std::fprintf(
        json,
        "%s    {\"name\": \"%s\", \"admission\": %s,\n"
        "     \"interactive_completed\": %llu, \"interactive_p50_ms\": %.3f,\n"
        "     \"interactive_p99_ms\": %.3f, \"expensive_completed\": %llu,\n"
        "     \"expensive_shed\": %llu, \"errors\": %llu, \"qps\": %.1f}",
        first ? "" : ",\n", m->name.c_str(), m->admission ? "true" : "false",
        static_cast<unsigned long long>(m->cheap_completed), m->cheap_p50_ms,
        m->cheap_p99_ms, static_cast<unsigned long long>(m->expensive_completed),
        static_cast<unsigned long long>(m->expensive_shed),
        static_cast<unsigned long long>(m->errors), m->qps);
    first = false;
  }
  std::fprintf(json,
               "\n  ],\n  \"interactive_p99_improvement\": %.2f,\n"
               "  \"plan_cache\": {\"hits\": %llu, \"misses\": %llu, "
               "\"hit_rate\": %.4f}\n}\n",
               improvement, static_cast<unsigned long long>(pc_hits),
               static_cast<unsigned long long>(pc_misses), hit_rate);
  std::fclose(json);
  server.Stop();
  std::printf("\nwrote BENCH_serving.json\n");
  return 0;
}
