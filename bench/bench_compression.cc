// Claim C-compress (paper II.B.1): frequency + minus + prefix encoding
// "regularly compress data 2-3x smaller than previous generations of
// compression techniques". Compares the new-generation pipeline against
// the legacy byte-aligned page-dictionary baseline across representative
// value distributions, and reports whole-table ratios.
#include <cstdio>

#include "bench_util.h"
#include "common/datetime.h"
#include "common/rng.h"
#include "compression/legacy.h"
#include "storage/column_table.h"

using namespace dashdb;
using namespace dashdb::bench;

namespace {

constexpr size_t kN = 262144;

struct Distribution {
  std::string name;
  std::vector<int64_t> values;
};

std::vector<Distribution> IntDistributions() {
  std::vector<Distribution> out;
  Rng rng(5);
  {
    Distribution d{"zipf skewed, 64 distinct (status codes)", {}};
    ZipfGenerator z(64, 1.2, 11);
    for (size_t i = 0; i < kN; ++i) d.values.push_back(z.Next());
    out.push_back(std::move(d));
  }
  {
    Distribution d{"uniform low-card, 1000 distinct (accounts)", {}};
    for (size_t i = 0; i < kN; ++i) d.values.push_back(rng.Range(0, 999));
    out.push_back(std::move(d));
  }
  {
    Distribution d{"clustered high-card (timestamps)", {}};
    for (size_t i = 0; i < kN; ++i) {
      d.values.push_back(1400000000 + static_cast<int64_t>(i) * 30 +
                         rng.Range(0, 29));
    }
    out.push_back(std::move(d));
  }
  {
    Distribution d{"sequential ids", {}};
    for (size_t i = 0; i < kN; ++i) d.values.push_back(static_cast<int64_t>(i));
    out.push_back(std::move(d));
  }
  return out;
}

/// Footprint of the new pipeline for one int column, measured by loading a
/// single-column table (dictionary + pages + exceptions all included).
size_t NewGenBytes(const std::vector<int64_t>& values) {
  TableSchema s("PUBLIC", "C", {{"V", TypeId::kInt64, true, 0, false}});
  ColumnTable t(s, 1);
  RowBatch b;
  b.columns.emplace_back(TypeId::kInt64);
  for (int64_t v : values) b.columns[0].AppendInt(v);
  if (!t.Load(b).ok()) return 0;
  return t.CompressedBytes();
}

}  // namespace

int main() {
  PrintHeader("Claim II.B.1: compression vs previous-generation techniques");
  std::printf("  %-44s %10s %10s %8s\n", "distribution", "legacy KB",
              "new KB", "ratio");
  double worst = 1e9, best = 0;
  for (const auto& d : IntDistributions()) {
    auto legacy = LegacyCompressInts(d.values.data(), d.values.size());
    size_t newgen = NewGenBytes(d.values);
    double ratio = static_cast<double>(legacy.encoded_bytes) / newgen;
    worst = std::min(worst, ratio);
    best = std::max(best, ratio);
    std::printf("  %-44s %10.1f %10.1f %7.2fx\n", d.name.c_str(),
                legacy.encoded_bytes / 1024.0, newgen / 1024.0, ratio);
  }
  // Strings with shared prefixes (prefix compression).
  {
    std::vector<std::string> vals;
    Rng rng(9);
    for (size_t i = 0; i < kN / 4; ++i) {
      vals.push_back("ACCT-" + std::to_string(1000 + rng.Range(0, 2000)));
    }
    auto legacy = LegacyCompressStrings(vals.data(), vals.size());
    TableSchema s("PUBLIC", "S", {{"V", TypeId::kVarchar, true, 0, false}});
    ColumnTable t(s, 1);
    RowBatch b;
    b.columns.emplace_back(TypeId::kVarchar);
    for (auto& v : vals) b.columns[0].AppendString(v);
    (void)t.Load(b);
    double ratio =
        static_cast<double>(legacy.encoded_bytes) / t.CompressedBytes();
    std::printf("  %-44s %10.1f %10.1f %7.2fx\n",
                "prefixed strings (account numbers)",
                legacy.encoded_bytes / 1024.0, t.CompressedBytes() / 1024.0,
                ratio);
    worst = std::min(worst, ratio);
    best = std::max(best, ratio);
  }
  PrintRow("improvement range vs legacy", worst, "x (min)");
  PrintRow("", best, "x (max)");
  PrintNote("paper claims 2-3x vs previous IBM compression generations");
  return 0;
}
