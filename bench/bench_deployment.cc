// Claim D-deploy (paper II.A): fully configured cluster deployments in
// under 30 minutes, across cluster sizes and the paper's hardware range,
// plus the stop-and-rename stack-update path.
#include <cstdio>

#include "bench_util.h"
#include "deploy/container.h"

using namespace dashdb;
using namespace dashdb::bench;

namespace {

std::vector<Host> MakeHosts(int n, const HardwareProfile& hw,
                            std::shared_ptr<ClusterFileSystem> fs) {
  std::vector<Host> hosts;
  for (int i = 0; i < n; ++i) {
    Host h("node" + std::to_string(i), hw);
    h.InstallDocker();
    h.MountClusterFs(fs);
    hosts.push_back(std::move(h));
  }
  return hosts;
}

}  // namespace

int main() {
  PrintHeader("Claim II.A: cluster deployment timeline (< 30 minutes)");
  Deployer deployer;
  auto fs = std::make_shared<ClusterFileSystem>();
  std::printf("  %-22s %6s %14s %12s %8s\n", "hardware profile", "nodes",
              "deploy (min)", "update (min)", "<30min");
  for (const auto& hw : StandardProfiles()) {
    if (hw.ram_bytes < (size_t{8} << 30)) continue;
    for (int nodes : {1, 4, 12, 24}) {
      auto hosts = MakeHosts(nodes, hw, fs);
      auto deploy = deployer.DeployCluster(&hosts, "ibmdashdb/local:1.0");
      if (!deploy.ok()) {
        std::fprintf(stderr, "deploy failed: %s\n",
                     deploy.status().ToString().c_str());
        return 1;
      }
      auto update = deployer.UpdateStack(&hosts, "ibmdashdb/local:1.1");
      if (!update.ok()) return 1;
      double d_min = deploy->TotalSeconds() / 60.0;
      double u_min = update->TotalSeconds() / 60.0;
      std::printf("  %-22s %6d %14.2f %12.2f %8s\n", hw.name.c_str(), nodes,
                  d_min, u_min, d_min < 30 ? "yes" : "NO");
    }
  }
  // Show one full timeline + derived configuration for the paper's largest
  // profile.
  auto hosts = MakeHosts(2, StandardProfiles()[3], fs);
  auto deploy = deployer.DeployCluster(&hosts, "ibmdashdb/local:1.0");
  PrintNote("");
  PrintNote("sample timeline (2 x xeon-e7-72way / 6TB):");
  std::printf("%s", deploy->Describe().c_str());
  PrintNote("derived node configuration (automatic, paper II.A):");
  PrintNote("  " + deploy->node_configs[0].Describe());
  return 0;
}
