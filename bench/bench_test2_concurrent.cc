// Table 1, Test 2: the same customer workload as a concurrent multi-stream
// run ("up to 100 concurrent streams ... executing the workload exactly
// how they are executed in customer environments"). Paper: dashDB finished
// in less than half the appliance's time (2.1x).
#include <cstdio>

#include "bench_util.h"
#include "workloads/customer_workload.h"

using namespace dashdb;
using namespace dashdb::bench;

int main() {
  PrintHeader(
      "Table 1 / Test 2: customer workload, concurrent streams "
      "(dashDB vs appliance)");

  CustomerScale scale;
  scale.schemas = 2;
  scale.tables_per_schema = 4;
  scale.rows_per_table = 30000;
  scale.num_statements = 800;
  CustomerWorkload workload(scale);
  const int kStreams = 100;

  Engine dashdb_engine(DashDbConfig(size_t{4} << 20));
  Engine appliance(ApplianceConfig(size_t{4} << 20));
  if (!workload.Setup(&dashdb_engine).ok() ||
      !workload.Setup(&appliance).ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  auto stmts = workload.MakeStatements();
  PrintNote("streams: " + std::to_string(kStreams) + ", statements: " +
            std::to_string(stmts.size()) + " (incl. load traffic)");

  auto t_appl = CustomerWorkload::RunConcurrent(&appliance, stmts, kStreams);
  auto t_dash = CustomerWorkload::RunConcurrent(&dashdb_engine, stmts,
                                                kStreams);
  if (!t_appl.ok() || !t_dash.ok()) {
    std::fprintf(stderr, "run failed: %s %s\n",
                 t_appl.status().ToString().c_str(),
                 t_dash.status().ToString().c_str());
    return 1;
  }
  PrintRow("appliance workload time", *t_appl, "s");
  PrintRow("dashDB workload time", *t_dash, "s");
  PrintRow("workload-time improvement", *t_appl / *t_dash, "x");
  PrintNote("paper reports: 2.1x total workload-time improvement");
  return 0;
}
