// Claim C-skip (paper II.B.4): the per-1K-tuple synopsis is ~3 orders of
// magnitude smaller than user data, and date-restricted queries over a
// 7-year repository that only touch recent months skip almost everything.
#include <cstdio>

#include "bench_util.h"
#include "common/datetime.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "storage/column_table.h"

using namespace dashdb;
using namespace dashdb::bench;

int main() {
  PrintHeader("Claim II.B.4: data skipping via the stride synopsis");

  // Seven years of time-ordered data (the paper's scenario).
  constexpr size_t kRows = 4000000;
  const int32_t start = DaysFromCivil(2010, 1, 1);
  const int32_t end = start + 7 * 365;
  TableSchema schema("PUBLIC", "LEDGER",
                     {{"TXN_DATE", TypeId::kDate, true, 0, false},
                      {"AMOUNT", TypeId::kInt64, true, 0, false}});
  ColumnTable table(schema, 1);
  // Attach SSD I/O accounting with a tiny pool: pages skipped by the
  // synopsis are never touched, so they cost no storage reads.
  IoSink io_nanos{0};
  BufferPool tiny_pool(1 << 10, ReplacementPolicy::kLru);
  table.ConfigureIo(IoModel::Ssd(), &io_nanos, &tiny_pool);
  RowBatch rows;
  rows.columns.emplace_back(TypeId::kDate);
  rows.columns.emplace_back(TypeId::kInt64);
  Rng rng(2);
  for (size_t i = 0; i < kRows; ++i) {
    rows.columns[0].AppendInt(start +
                              static_cast<int32_t>(i * (7 * 365) / kRows));
    rows.columns[1].AppendInt(rng.Range(0, 100000));
  }
  if (!table.Load(rows).ok()) return 1;

  PrintRow("user data (compressed)", table.CompressedBytes() / 1024.0, "KB");
  PrintRow("synopsis (compressed, same representation)",
           table.SynopsisBytes() / 1024.0, "KB");
  PrintRow("user/synopsis size ratio",
           static_cast<double>(table.CompressedBytes()) /
               table.SynopsisBytes(),
           "x");
  PrintNote("paper: metadata every 1K tuples => ~3 orders of magnitude "
            "smaller");

  // Query the most recent N months with skipping on vs off.
  std::printf("\n  %-22s %12s %12s %10s %14s\n", "predicate window",
              "skip ON ms", "skip OFF ms", "speedup", "strides skipped");
  for (int months : {1, 3, 12, 84}) {
    ColumnPredicate pred;
    pred.column = 0;
    pred.int_range.lo = end - months * 30;
    for (int pass = 0; pass < 1; ++pass) {
      ScanOptions on, off;
      on.use_synopsis = true;
      off.use_synopsis = false;
      ScanStats stats_on;
      io_nanos = 0;
      Stopwatch sw1;
      size_t n1 = 0;
      (void)table.Scan({pred}, {1}, on,
                       [&](RowBatch& b, const std::vector<uint64_t>&) {
                         n1 += b.num_rows();
                       },
                       &stats_on);
      double t_on = sw1.ElapsedSeconds() + io_nanos.exchange(0) * 1e-9;
      Stopwatch sw2;
      size_t n2 = 0;
      (void)table.Scan({pred}, {1}, off,
                       [&](RowBatch& b, const std::vector<uint64_t>&) {
                         n2 += b.num_rows();
                       });
      double t_off = sw2.ElapsedSeconds() + io_nanos.exchange(0) * 1e-9;
      if (n1 != n2) {
        std::fprintf(stderr, "MISMATCH %zu vs %zu\n", n1, n2);
        return 1;
      }
      std::printf("  last %3d months       %12.2f %12.2f %9.2fx %14zu\n",
                  months, t_on * 1e3, t_off * 1e3, t_off / t_on,
                  stats_on.strides_skipped);
    }
  }
  PrintNote("expected shape: narrow recent windows skip nearly all strides; "
            "the full-history query skips nothing");
  return 0;
}
