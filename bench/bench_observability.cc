// Observability end-to-end: EXPLAIN ANALYZE on a two-join aggregate over a
// multi-shard MPP cluster with a fault seed armed, so the annotated plan
// shows real per-operator rows/time and per-shard attempt/retry counters;
// then the SystemMetrics() JSON (the full registry: exec.*, bufferpool.*,
// mpp.*) is dumped into BENCH_observability.json alongside the report. Also
// measures the cost of the ANALYZE wrapper itself (plain run vs analyzed
// run of the same query) — the instrumentation is always-on, so this bounds
// what EXPLAIN ANALYZE adds on top, not what the metrics layer costs
// (budgeted at <= 2% in DESIGN.md and tracked via bench_parallel_scaling).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "mpp/mpp.h"

using namespace dashdb;
using namespace dashdb::bench;

namespace {

constexpr size_t kFactRows = 200000;
constexpr int kGroups = 7;
constexpr int kCats = 5;

Status LoadCluster(MppDatabase* db) {
  TableSchema fact("PUBLIC", "SALES",
                   {{"ID", TypeId::kInt64, false, 0, false},
                    {"GRP", TypeId::kInt64, true, 0, false},
                    {"CAT", TypeId::kInt64, true, 0, false},
                    {"V", TypeId::kInt64, true, 0, false}});
  fact.set_distribution_key(0);
  DASHDB_RETURN_IF_ERROR(db->CreateTable(fact));
  TableSchema dim_d("PUBLIC", "D",
                    {{"GRP", TypeId::kInt64, false, 0, false},
                     {"A", TypeId::kInt64, true, 0, false}});
  DASHDB_RETURN_IF_ERROR(db->CreateTable(dim_d, /*replicated=*/true));
  TableSchema dim_c("PUBLIC", "C",
                    {{"CAT", TypeId::kInt64, false, 0, false},
                     {"B", TypeId::kInt64, true, 0, false}});
  DASHDB_RETURN_IF_ERROR(db->CreateTable(dim_c, /*replicated=*/true));

  RowBatch rows;
  for (int c = 0; c < 4; ++c) rows.columns.emplace_back(TypeId::kInt64);
  Rng rng(23);
  for (size_t i = 0; i < kFactRows; ++i) {
    rows.columns[0].AppendInt(static_cast<int64_t>(i));
    rows.columns[1].AppendInt(static_cast<int64_t>(rng.Uniform(kGroups)));
    rows.columns[2].AppendInt(static_cast<int64_t>(rng.Uniform(kCats)));
    rows.columns[3].AppendInt(static_cast<int64_t>(rng.Uniform(100000)));
  }
  DASHDB_RETURN_IF_ERROR(db->Load("PUBLIC", "SALES", rows));

  RowBatch d;
  d.columns.emplace_back(TypeId::kInt64);
  d.columns.emplace_back(TypeId::kInt64);
  for (int g = 0; g < kGroups; ++g) {
    d.columns[0].AppendInt(g);
    d.columns[1].AppendInt(g / 2);
  }
  DASHDB_RETURN_IF_ERROR(db->Load("PUBLIC", "D", d));
  RowBatch c;
  c.columns.emplace_back(TypeId::kInt64);
  c.columns.emplace_back(TypeId::kInt64);
  for (int k = 0; k < kCats; ++k) {
    c.columns[0].AppendInt(k);
    c.columns[1].AppendInt(k % 2);
  }
  return db->Load("PUBLIC", "C", c);
}

/// Escapes a string for embedding in the JSON report.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  return out;
}

constexpr const char* kQuery =
    "SELECT d.A, COUNT(*), SUM(s.V) FROM SALES s "
    "JOIN D d ON s.GRP = d.GRP JOIN C c ON s.CAT = c.CAT "
    "WHERE c.B = 1 GROUP BY d.A ORDER BY d.A";

}  // namespace

int main() {
  PrintHeader("Observability: EXPLAIN ANALYZE + SystemMetrics under faults");
  EngineConfig cfg = DashDbConfig(size_t{256} << 20);
  cfg.query_parallelism = 4;
  MppDatabase db(4, 2, 8, size_t{8} << 30, cfg);
  if (auto s = LoadCluster(&db); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("  cluster: 4 nodes x 2 shards, fact rows: %zu\n", kFactRows);

  // Warm + plain timing (no ANALYZE overhead, instrumentation always on).
  constexpr int kReps = 5;
  double plain_best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch sw;
    auto r = db.Execute(kQuery);
    double s = sw.ElapsedSeconds();
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    if (rep == 0 || s < plain_best) plain_best = s;
  }

  // Seeded transient faults: the analyzed run must show the retries.
  MetricSnapshot before = MetricRegistry::Global().Snapshot();
  FaultInjector::Global().Reset(2026);
  FaultSpec flaky;
  flaky.code = StatusCode::kAborted;
  flaky.message = "transient shard error";
  flaky.max_fires = 2;
  FaultInjector::Global().Arm("mpp.shard_exec", flaky);

  Stopwatch asw;
  auto analyzed = db.Execute(std::string("EXPLAIN ANALYZE ") + kQuery);
  double analyze_s = asw.ElapsedSeconds();
  FaultInjector::Global().Reset(0);
  if (!analyzed.ok()) {
    std::fprintf(stderr, "EXPLAIN ANALYZE failed: %s\n",
                 analyzed.status().ToString().c_str());
    return 1;
  }
  MetricSnapshot delta =
      SnapshotDelta(before, MetricRegistry::Global().Snapshot());

  std::printf("\n%s\n", analyzed->result.message.c_str());
  std::printf("  plain best: %.4fs   analyzed: %.4fs (includes 2 injected "
              "retries)\n", plain_best, analyze_s);
  std::printf("  registry delta for the analyzed run:\n");
  for (const auto& [name, v] : delta) {
    if (name.rfind("mpp.", 0) == 0 || name.rfind("exec.", 0) == 0) {
      std::printf("    %-28s %lld\n", name.c_str(),
                  static_cast<long long>(v));
    }
  }

  bool saw_retries = analyzed->exec.shard_retries >= 2;
  bool per_shard = !analyzed->shard_exec.empty();
  bool has_trace = analyzed->trace && !analyzed->trace->empty();

  FILE* json = std::fopen("BENCH_observability.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_observability.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"query\": \"%s\",\n  \"shards\": %d,\n"
               "  \"fact_rows\": %zu,\n  \"plain_seconds\": %.6f,\n"
               "  \"analyzed_seconds\": %.6f,\n"
               "  \"shard_retries\": %llu,\n  \"failovers\": %llu,\n"
               "  \"report\": \"%s\",\n  \"metrics\": %s}\n",
               JsonEscape(kQuery).c_str(), db.num_shards(), kFactRows,
               plain_best, analyze_s,
               static_cast<unsigned long long>(analyzed->exec.shard_retries),
               static_cast<unsigned long long>(analyzed->exec.failovers),
               JsonEscape(analyzed->result.message).c_str(),
               SystemMetricsJson().c_str());
  std::fclose(json);

  PrintNote(saw_retries ? "injected retries visible in the analyzed run"
                        : "MISSING: expected >= 2 shard retries");
  PrintNote(per_shard ? "per-shard exec stats attached"
                      : "MISSING: per-shard exec stats");
  PrintNote(has_trace ? "span tree attached to the result"
                      : "MISSING: trace");
  PrintNote("written: BENCH_observability.json");
  return (saw_retries && per_shard && has_trace) ? 0 : 1;
}
