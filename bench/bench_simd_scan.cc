// Claim C-simd (paper II.B.6): software-SIMD evaluates predicates on all
// bit-packed codes in a word at once, for ANY code width — not just the
// power-of-2 byte lanes hardware SIMD offers. google-benchmark sweep of
// SWAR vs scalar decode-then-compare across code widths.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "simd/swar.h"

namespace dashdb {
namespace {

constexpr size_t kCodes = 1 << 18;

BitPackedArray MakeCodes(int width) {
  BitPackedArray arr(width);
  Rng rng(width);
  const uint64_t mask =
      width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  for (size_t i = 0; i < kCodes; ++i) arr.Append(rng.Next() & mask);
  return arr;
}

void BM_SwarCompare(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  BitPackedArray arr = MakeCodes(width);
  const uint64_t c = (uint64_t{1} << (width - 1));
  for (auto _ : state) {
    BitVector out(kCodes);
    SwarCompare(arr, kCodes, CmpOp::kLt, c, &out);
    benchmark::DoNotOptimize(out.CountSet());
  }
  state.SetItemsProcessed(state.iterations() * kCodes);
  state.counters["values_per_word"] = 64 / width;
}

void BM_ScalarCompare(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  BitPackedArray arr = MakeCodes(width);
  const uint64_t c = (uint64_t{1} << (width - 1));
  for (auto _ : state) {
    BitVector out(kCodes);
    ScalarCompare(arr, kCodes, CmpOp::kLt, c, &out);
    benchmark::DoNotOptimize(out.CountSet());
  }
  state.SetItemsProcessed(state.iterations() * kCodes);
}

void BM_SwarBetween(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  BitPackedArray arr = MakeCodes(width);
  const uint64_t hi = (uint64_t{1} << (width - 1));
  for (auto _ : state) {
    BitVector out(kCodes);
    SwarBetween(arr, kCodes, hi / 2, hi, &out);
    benchmark::DoNotOptimize(out.CountSet());
  }
  state.SetItemsProcessed(state.iterations() * kCodes);
}

void BM_SwarCount(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  BitPackedArray arr = MakeCodes(width);
  const uint64_t c = (uint64_t{1} << (width - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SwarCount(arr, kCodes, CmpOp::kLt, c));
  }
  state.SetItemsProcessed(state.iterations() * kCodes);
}

// Widths include the non-power-of-2 / non-byte sizes that hardware SIMD
// cannot address ("for any code size").
#define WIDTHS Arg(1)->Arg(2)->Arg(3)->Arg(5)->Arg(8)->Arg(11)->Arg(16)->Arg(21)->Arg(32)

BENCHMARK(BM_SwarCompare)->WIDTHS;
BENCHMARK(BM_ScalarCompare)->WIDTHS;
BENCHMARK(BM_SwarBetween)->WIDTHS;
BENCHMARK(BM_SwarCount)->WIDTHS;

}  // namespace
}  // namespace dashdb

BENCHMARK_MAIN();
