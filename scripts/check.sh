#!/usr/bin/env bash
# Full verification sweep: Release build + complete ctest, then ASan and
# TSan builds running the concurrency/fault/differential/trace/hash/
# optimizer/governor/serving/sort suites (ctest labels: parallel, fault,
# diff, trace, hash, expr, opt, govern, serve, share, sort). This is the recipe
# the observability and parallelism PRs are gated on; run it from the repo
# root. Set JOBS to bound parallelism (defaults to nproc).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
LABELS='parallel|fault|diff|trace|hash|expr|opt|govern|serve|share|sort'

echo "== Release build + full test suite =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== ASan build: labels $LABELS =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DENABLE_ASAN=ON >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L "$LABELS"

echo "== TSan build: labels $LABELS =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DENABLE_TSAN=ON >/dev/null
cmake --build build-tsan -j "$JOBS"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L "$LABELS"

echo "== all checks passed =="
