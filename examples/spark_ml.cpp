// Integrated Spark analytics (paper II.D): the same data served to SQL is
// handed to the sparklite engine — collocated, with WHERE pushdown — and a
// GLM is trained both through the Dataset API and through the SQL stored
// procedure CALL IDAX.GLM(...).
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "core/dashdb.h"
#include "mpp/mpp.h"
#include "spark/connector.h"

int main() {
  using namespace dashdb;
  using namespace dashdb::spark;

  // A 4-node MPP cluster holding churn observations.
  MppDatabase cluster(4, 2, 4, size_t{8} << 30);
  TableSchema schema("PUBLIC", "CHURN",
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"TENURE", TypeId::kDouble, true, 0, false},
                      {"SPEND", TypeId::kDouble, true, 0, false},
                      {"CHURNED", TypeId::kDouble, true, 0, false}});
  schema.set_distribution_key(0);
  if (!cluster.CreateTable(schema).ok()) return 1;

  RowBatch rows;
  for (int c = 0; c < 4; ++c) {
    rows.columns.emplace_back(schema.column(c).type);
  }
  Rng rng(31);
  for (int i = 0; i < 60000; ++i) {
    double tenure = rng.NextDouble() * 10;          // years
    double spend = rng.NextDouble() * 200;          // $/month
    double z = 1.5 - 0.6 * tenure + 0.01 * spend;   // churn propensity
    double churned = rng.NextDouble() < 1 / (1 + std::exp(-z)) ? 1.0 : 0.0;
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendDouble(tenure);
    rows.columns[2].AppendDouble(spend);
    rows.columns[3].AppendDouble(churned);
  }
  if (!cluster.Load("PUBLIC", "CHURN", rows).ok()) return 1;

  // --- Dataset API path: collocated fetch + pushdown, then training ---
  TransferOptions opts;
  opts.collocated = true;
  opts.pushdown_where = "tenure < 9.5";  // drop outliers at the source
  TransferReport rep;
  auto data = TableToDataset(&cluster, "PUBLIC", "CHURN", opts, &rep);
  if (!data.ok()) {
    std::fprintf(stderr, "transfer failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("transferred %zu rows (%.1f MB) collocated+pushdown; modeled "
              "transfer %.3fs\n",
              rep.rows, rep.bytes / 1e6, rep.modeled_seconds);

  SparkDispatcher dispatcher(/*workers_per_user=*/4, size_t{2} << 30);
  GlmConfig cfg;
  cfg.logistic = true;
  cfg.iterations = 300;
  cfg.learning_rate = 0.3;
  auto job = dispatcher.Submit(
      "datascientist", "churn-glm",
      [&](ClusterManager* mgr) -> Result<std::string> {
        DASHDB_ASSIGN_OR_RETURN(GlmModel model,
                                TrainGlm(*data, {1, 2}, 3, cfg, mgr->pool()));
        std::printf("model: %s\n", model.Describe().c_str());
        std::printf("P(churn | tenure=1, spend=150) = %.3f\n",
                    model.Predict({1.0, 150.0}));
        std::printf("P(churn | tenure=9, spend=20)  = %.3f\n",
                    model.Predict({9.0, 20.0}));
        return model.Describe();
      });
  if (!job.ok()) {
    std::fprintf(stderr, "job failed: %s\n", job.status().ToString().c_str());
    return 1;
  }
  auto info = *dispatcher.GetStatus("datascientist", *job);
  std::printf("job #%lld [%s] finished in %.2fs\n",
              static_cast<long long>(info.id), JobStateName(info.state),
              info.seconds);

  // --- SQL stored-procedure path (single-node instance) ---
  auto db = std::move(*DashDbLocal::Deploy());
  auto conn = db->Connect("datascientist");
  (void)conn->Execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)");
  for (int i = 0; i < 60; ++i) {
    double x = i / 60.0;
    (void)conn->Execute("INSERT INTO pts VALUES (" + std::to_string(x) +
                        ", " + std::to_string(3 * x + 1) + ")");
  }
  auto r = conn->Execute("CALL IDAX.GLM('pts', 'y', 'x', 400, 'LINEAR')");
  if (!r.ok()) {
    std::fprintf(stderr, "CALL failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSQL procedure result: %s\n", r->message.c_str());
  return 0;
}
