// Fluid Query federation (paper II.C.6, Figure 5): register nicknames over
// a simulated remote Oracle and a Hadoop store, then query and join them
// with local dashDB tables using plain SQL — "transparent data access
// across your enterprise regardless of location".
#include <cstdio>

#include "core/dashdb.h"
#include "fluid/nickname.h"

int main() {
  using namespace dashdb;
  using namespace dashdb::fluid;
  auto db = std::move(*DashDbLocal::Deploy());
  auto conn = db->Connect("integrator");
  auto run = [&](const std::string& sql) {
    auto r = conn->Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "SQL error: %s\n  in: %s\n",
                   r.status().ToString().c_str(), sql.c_str());
      std::exit(1);
    }
    return *std::move(r);
  };

  // A legacy Oracle system holding the order archive ("queryable archive").
  TableSchema archive_schema(
      "REMOTE", "ORDER_ARCHIVE",
      {{"ORDER_ID", TypeId::kInt64, false, 0, false},
       {"CUSTOMER", TypeId::kVarchar, true, 0, false},
       {"TOTAL", TypeId::kDouble, true, 0, false}});
  auto oracle = std::make_shared<SimRdbmsStore>("ORACLE", archive_schema);
  {
    RowBatch rows;
    rows.columns.emplace_back(TypeId::kInt64);
    rows.columns.emplace_back(TypeId::kVarchar);
    rows.columns.emplace_back(TypeId::kDouble);
    const char* customers[] = {"acme", "globex", "initech", "umbrella"};
    for (int i = 0; i < 5000; ++i) {
      rows.columns[0].AppendInt(i);
      rows.columns[1].AppendString(customers[i % 4]);
      rows.columns[2].AppendDouble(10.0 + (i % 500));
    }
    if (!oracle->Load(rows).ok()) return 1;
  }

  // A Hadoop cluster holding raw clickstream lines (schema on read).
  TableSchema clicks_schema("REMOTE", "CLICKS",
                            {{"CUSTOMER", TypeId::kVarchar, true, 0, false},
                             {"PAGE", TypeId::kVarchar, true, 0, false},
                             {"DWELL_MS", TypeId::kInt64, true, 0, false}});
  auto hadoop = std::make_shared<SimHadoopStore>(clicks_schema);
  const char* pages[] = {"/", "/pricing", "/docs", "/careers"};
  for (int i = 0; i < 8000; ++i) {
    hadoop->AppendLine(std::string(i % 3 ? "acme" : "globex") + "|" +
                       pages[i % 4] + "|" + std::to_string(50 + i % 900));
  }

  if (!db->engine()->catalog()->CreateSchema("REMOTE").ok()) return 1;
  if (!CreateNickname(db->engine(), "REMOTE", "ORDER_ARCHIVE", oracle).ok() ||
      !CreateNickname(db->engine(), "REMOTE", "CLICKS", hadoop).ok()) {
    return 1;
  }
  std::printf("nicknames registered: REMOTE.ORDER_ARCHIVE (Oracle), "
              "REMOTE.CLICKS (Hadoop)\n\n");

  // Local warehouse dimension.
  run("CREATE TABLE customer_tier (customer VARCHAR(20), tier INT)");
  run("INSERT INTO customer_tier VALUES ('acme', 1), ('globex', 1), "
      "('initech', 2), ('umbrella', 3)");

  // 1. Query the archive with pushdown.
  QueryResult r1 = run(
      "SELECT customer, COUNT(*) n, SUM(total) amount FROM "
      "remote.order_archive WHERE order_id >= 4000 GROUP BY customer "
      "ORDER BY amount DESC");
  std::printf("archive rollup (pushed: order_id >= 4000):\n");
  for (size_t i = 0; i < r1.rows.num_rows(); ++i) {
    std::printf("  %-10s %5lld  %10.2f\n",
                r1.rows.columns[0].GetString(i).c_str(),
                static_cast<long long>(r1.rows.columns[1].GetInt(i)),
                r1.rows.columns[2].GetDouble(i));
  }
  auto stats = oracle->stats();
  std::printf("  [connector: scanned %llu remote rows, transferred %llu]\n\n",
              static_cast<unsigned long long>(stats.rows_scanned),
              static_cast<unsigned long long>(stats.rows_transferred));

  // 2. Unify Hadoop + RDBMS + local warehouse in one statement.
  QueryResult r2 = run(
      "SELECT t.tier, COUNT(*) clicks, AVG(c.dwell_ms) avg_dwell "
      "FROM remote.clicks c JOIN customer_tier t "
      "ON c.customer = t.customer "
      "WHERE c.page = '/pricing' GROUP BY t.tier ORDER BY t.tier");
  std::printf("pricing-page engagement by local tier (Hadoop x local):\n");
  for (size_t i = 0; i < r2.rows.num_rows(); ++i) {
    std::printf("  tier %lld: %lld clicks, avg dwell %.0f ms\n",
                static_cast<long long>(r2.rows.columns[0].GetInt(i)),
                static_cast<long long>(r2.rows.columns[1].GetInt(i)),
                r2.rows.columns[2].GetDouble(i));
  }
  std::printf("  [hadoop transferred %llu of %llu rows: no pushdown]\n",
              static_cast<unsigned long long>(
                  hadoop->stats().rows_transferred),
              static_cast<unsigned long long>(hadoop->stats().rows_scanned));

  // 3. Warehouse capacity relief: archive query federated with fresh data.
  run("CREATE TABLE orders_2017 (order_id BIGINT, customer VARCHAR(20), "
      "total DOUBLE)");
  run("INSERT INTO orders_2017 VALUES (90001, 'acme', 512.0), "
      "(90002, 'initech', 64.0)");
  QueryResult r3 = run(
      "WITH unified AS (SELECT customer, total FROM orders_2017), "
      "archived AS (SELECT customer, total FROM remote.order_archive "
      "WHERE order_id >= 4990) "
      "SELECT u.customer, u.total FROM unified u ORDER BY u.total DESC");
  std::printf("\nfresh orders (local) alongside the archive: %zu rows\n",
              r3.rows.num_rows());
  return 0;
}
