// Quickstart: deploy a dashDB Local instance (hardware detection +
// automatic configuration, paper II.A), create a table, load data, query.
//
//   $ ./quickstart
#include <cstdio>

#include "core/dashdb.h"

int main() {
  using namespace dashdb;
  // One call boots the full stack, adapted to this machine.
  auto deployed = DashDbLocal::Deploy();
  if (!deployed.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 deployed.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(*deployed);
  std::printf("deployed on %d cores / %zu GB RAM\n", db->hardware().cores,
              db->hardware().ram_gb());
  std::printf("auto-configuration: %s\n", db->config().Describe().c_str());

  auto conn = db->Connect("quickstart");
  auto run = [&](const std::string& sql) {
    auto r = conn->Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "SQL error: %s\n  in: %s\n",
                   r.status().ToString().c_str(), sql.c_str());
      std::exit(1);
    }
    return *std::move(r);
  };

  run("CREATE TABLE sales (region VARCHAR(10), sale_date DATE, "
      "amount DOUBLE)");
  run("INSERT INTO sales VALUES "
      "('NORTH', DATE '2017-01-05', 120.50), "
      "('SOUTH', DATE '2017-01-06', 220.00), "
      "('NORTH', DATE '2017-02-07', 80.25), "
      "('EAST',  DATE '2017-02-08', 310.10), "
      "('SOUTH', DATE '2017-03-09', 150.75)");

  QueryResult r = run(
      "SELECT region, COUNT(*) n, SUM(amount) total FROM sales "
      "GROUP BY region ORDER BY total DESC");
  std::printf("\n%-8s %4s %10s\n", "REGION", "N", "TOTAL");
  for (size_t i = 0; i < r.rows.num_rows(); ++i) {
    std::printf("%-8s %4lld %10.2f\n",
                r.rows.columns[0].GetString(i).c_str(),
                static_cast<long long>(r.rows.columns[1].GetInt(i)),
                r.rows.columns[2].GetDouble(i));
  }

  // Peek at the columnar plan.
  QueryResult plan = run(
      "EXPLAIN SELECT region, SUM(amount) FROM sales "
      "WHERE sale_date >= DATE '2017-02-01' GROUP BY region");
  std::printf("\nplan:\n%s", plan.message.c_str());
  return 0;
}
