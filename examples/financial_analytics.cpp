// Financial analytics over a 7-year ledger: the workload class that
// motivates the paper's engine (II.B) — time-ordered big data, restrictive
// date predicates (data skipping), low-cardinality dimensions (frequency
// encoding), scan-heavy rollups (SIMD + compressed-domain predicates).
#include <cstdio>

#include "common/datetime.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/dashdb.h"

int main() {
  using namespace dashdb;
  auto db = std::move(*DashDbLocal::Deploy());
  auto conn = db->Connect("quant");
  auto run = [&](const std::string& sql) {
    auto r = conn->Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "SQL error: %s\n  in: %s\n",
                   r.status().ToString().c_str(), sql.c_str());
      std::exit(1);
    }
    return *std::move(r);
  };

  run("CREATE TABLE trades (id BIGINT NOT NULL, trade_date DATE, "
      "account INT, instrument INT, side VARCHAR(4), qty INT, "
      "price DOUBLE)");

  // Bulk-load seven years of trades straight through the storage API (the
  // path a real loader would take).
  auto entry = *db->engine()->GetTable("PUBLIC", "TRADES");
  auto table = std::dynamic_pointer_cast<ColumnTable>(entry->storage);
  RowBatch rows;
  for (int c = 0; c < entry->schema.num_columns(); ++c) {
    rows.columns.emplace_back(entry->schema.column(c).type);
  }
  Rng rng(2024);
  ZipfGenerator hot_instruments(300, 1.2, 7);
  const int32_t start = DaysFromCivil(2010, 1, 1);
  const size_t kTrades = 1500000;
  for (size_t i = 0; i < kTrades; ++i) {
    rows.columns[0].AppendInt(static_cast<int64_t>(i));
    rows.columns[1].AppendInt(start +
                              static_cast<int32_t>(i * 2555 / kTrades));
    rows.columns[2].AppendInt(static_cast<int64_t>(rng.Uniform(5000)));
    rows.columns[3].AppendInt(static_cast<int64_t>(hot_instruments.Next()));
    rows.columns[4].AppendString(rng.Bernoulli(0.52) ? "BUY" : "SELL");
    rows.columns[5].AppendInt(static_cast<int64_t>(1 + rng.Uniform(1000)));
    rows.columns[6].AppendDouble(10 + rng.Uniform(49000) / 100.0);
  }
  Stopwatch load_sw;
  if (!table->Load(rows).ok()) return 1;
  std::printf("loaded %zu trades in %.2fs; compressed %0.1f MB "
              "(raw %0.1f MB, %.1fx); synopsis %.1f KB\n",
              kTrades, load_sw.ElapsedSeconds(),
              table->CompressedBytes() / 1e6, table->RawBytes() / 1e6,
              static_cast<double>(table->RawBytes()) /
                  table->CompressedBytes(),
              table->SynopsisBytes() / 1e3);

  struct Q {
    const char* label;
    std::string sql;
  };
  const Q queries[] = {
      {"last-quarter volume by side",
       "SELECT side, COUNT(*) n, SUM(qty) volume FROM trades "
       "WHERE trade_date >= DATE '2016-10-01' GROUP BY side ORDER BY side"},
      {"top accounts, last month",
       "SELECT account, SUM(qty * price) notional FROM trades "
       "WHERE trade_date >= DATE '2016-12-01' GROUP BY account "
       "ORDER BY notional DESC LIMIT 5"},
      {"hot-instrument price stats (full history)",
       "SELECT instrument, COUNT(*), AVG(price), STDDEV_POP(price) "
       "FROM trades WHERE instrument < 4 GROUP BY instrument "
       "ORDER BY instrument"},
      {"median trade price, 2016",
       "SELECT MEDIAN(price) FROM trades WHERE trade_date BETWEEN "
       "DATE '2016-01-01' AND DATE '2016-12-31'"},
  };
  for (const Q& q : queries) {
    Stopwatch sw;
    QueryResult r = run(q.sql);
    std::printf("\n[%s] %.1f ms, %zu rows\n", q.label, sw.ElapsedMillis(),
                r.rows.num_rows());
    for (size_t i = 0; i < std::min<size_t>(r.rows.num_rows(), 5); ++i) {
      std::string line;
      for (size_t c = 0; c < r.rows.columns.size(); ++c) {
        line += (c ? " | " : "  ") + r.rows.columns[c].GetValue(i).ToString();
      }
      std::printf("%s\n", line.c_str());
    }
  }
  return 0;
}
