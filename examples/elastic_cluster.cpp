// Elasticity & HA walk-through (paper II.E, Figure 9): build a 4-node MPP
// cluster, fail a node mid-flight, watch shards reassociate and queries
// keep answering, then repair and grow the cluster — all metadata-only
// operations thanks to the shared clustered filesystem.
#include <cstdio>

#include "common/rng.h"
#include "mpp/mpp.h"

int main() {
  using namespace dashdb;
  MppDatabase db(4, 6, 12, size_t{32} << 30);
  std::printf("cluster: 4 nodes x 6 shards (%d shards total)\n\n%s\n",
              db.num_shards(), db.topology()->Describe().c_str());

  TableSchema schema("PUBLIC", "EVENTS",
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"KIND", TypeId::kInt64, true, 0, false}});
  schema.set_distribution_key(0);
  if (!db.CreateTable(schema).ok()) return 1;
  RowBatch rows;
  rows.columns.emplace_back(TypeId::kInt64);
  rows.columns.emplace_back(TypeId::kInt64);
  Rng rng(5);
  for (int i = 0; i < 300000; ++i) {
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendInt(static_cast<int64_t>(rng.Uniform(16)));
  }
  if (!db.Load("PUBLIC", "EVENTS", rows).ok()) return 1;

  auto query = [&]() {
    auto r = db.Execute("SELECT COUNT(*), MIN(id), MAX(id) FROM events");
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("  COUNT=%lld MIN=%lld MAX=%lld   (modeled %.1f ms)\n",
                static_cast<long long>(r->result.rows.columns[0].GetInt(0)),
                static_cast<long long>(r->result.rows.columns[1].GetInt(0)),
                static_cast<long long>(r->result.rows.columns[2].GetInt(0)),
                r->MakespanOn(*db.topology()) * 1e3);
  };

  std::printf("healthy cluster:\n");
  query();

  std::printf("\n>>> node 3 (server D) fails\n");
  auto fail = db.topology()->FailNode(3);
  if (!fail.ok()) return 1;
  std::printf("reassociated %zu shards; survivors hold %zu each\n\n%s\n",
              fail->shards_moved, fail->max_shards_per_node,
              db.topology()->Describe().c_str());
  std::printf("after failover (same answers, fewer cores per byte):\n");
  query();

  std::printf("\n>>> node 3 repaired\n");
  if (!db.topology()->RepairNode(3).ok()) return 1;
  query();

  std::printf("\n>>> elastic growth: adding node 4\n");
  auto grow = db.topology()->AddNode(12, size_t{32} << 30);
  if (!grow.ok()) return 1;
  std::printf("rebalanced %zu shards onto the new node\n\n%s\n",
              grow->shards_moved, db.topology()->Describe().c_str());
  query();

  std::printf("\n>>> elastic contraction: removing node 0 (deliberate)\n");
  if (!db.topology()->RemoveNode(0).ok()) return 1;
  query();
  return 0;
}
