// Polyglot SQL (paper II.C): one database, four dialects. Each session
// picks its dialect ("a session variable ... allowing individual sessions
// to decide the dialect to use when compiling SQL"), and dialect-specific
// syntax/functions/semantics work side by side over shared tables.
#include <cstdio>

#include "core/dashdb.h"

int main() {
  using namespace dashdb;
  auto db = std::move(*DashDbLocal::Deploy());

  auto show = [](const char* label, const Result<QueryResult>& r) {
    if (!r.ok()) {
      std::fprintf(stderr, "%s FAILED: %s\n", label,
                   r.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("%-52s => ", label);
    if (r->rows.num_rows() > 0) {
      for (size_t c = 0; c < r->rows.columns.size(); ++c) {
        std::printf("%s%s", c ? " | " : "",
                    r->rows.columns[c].GetValue(0).ToString().c_str());
      }
    } else {
      std::printf("%s", r->message.c_str());
    }
    std::printf("\n");
  };

  // Shared table, created once.
  auto setup = db->Connect("dba");
  (void)setup->Execute(
      "CREATE TABLE accounts (id INT, owner VARCHAR(20), balance DOUBLE, "
      "opened DATE)");
  (void)setup->Execute(
      "INSERT INTO accounts VALUES "
      "(1, 'ada', 1000.0, DATE '2015-02-14'), "
      "(2, 'grace', 250.5, DATE '2016-07-04'), "
      "(3, '', 75.0, DATE '2016-11-11')");

  // --- Oracle session -----------------------------------------------------
  auto oracle = db->Connect("oracle_app");
  oracle->SetDialect(Dialect::kOracle);
  std::printf("--- ORACLE dialect ---\n");
  show("SELECT 6*7 FROM DUAL", oracle->Execute("SELECT 6*7 FROM DUAL"));
  show("NVL / DECODE / SUBSTR",
       oracle->Execute(
           "SELECT NVL(NULL, 'fallback'), DECODE(2, 1, 'a', 2, 'b'), "
           "SUBSTR('dashDB Local', 1, 6) FROM DUAL"));
  show("ROWNUM <= 2",
       oracle->Execute("SELECT COUNT(*) FROM (SELECT owner FROM accounts "
                       "WHERE ROWNUM <= 2) t"));
  show("VARCHAR2: '' IS NULL",
       oracle->Execute(
           "SELECT COUNT(*) FROM accounts WHERE owner IS NULL"));
  (void)oracle->Execute("CREATE SEQUENCE txn_seq");
  show("txn_seq.NEXTVAL", oracle->Execute("SELECT txn_seq.NEXTVAL FROM DUAL"));

  // --- Netezza / PostgreSQL session ---------------------------------------
  auto netezza = db->Connect("nz_app");
  netezza->SetDialect(Dialect::kNetezza);
  std::printf("--- NETEZZA/POSTGRES dialect ---\n");
  show("'123'::INT4 + 1, DATE_PART",
       netezza->Execute("SELECT '123'::INT4 + 1, "
                        "DATE_PART('year', opened) FROM accounts LIMIT 1"));
  show("ISNULL / NOTNULL / LIMIT",
       netezza->Execute("SELECT COUNT(*) FROM accounts WHERE owner NOTNULL "
                        "LIMIT 1"));
  show("ORDER BY ordinal",
       netezza->Execute(
           "SELECT owner, balance FROM accounts ORDER BY 2 DESC LIMIT 1"));
  show("OVERLAPS",
       netezza->Execute(
           "SELECT (DATE '2016-01-01', DATE '2016-12-31') OVERLAPS "
           "(opened, opened + 1) FROM accounts WHERE id = 2"));

  // --- DB2 session ---------------------------------------------------------
  auto db2 = db->Connect("db2_app");
  db2->SetDialect(Dialect::kDb2);
  std::printf("--- DB2 dialect ---\n");
  show("VALUES clause", db2->Execute("VALUES 40 + 2"));
  show("FETCH FIRST 1 ROWS ONLY",
       db2->Execute("SELECT owner FROM accounts ORDER BY balance DESC "
                    "FETCH FIRST 1 ROWS ONLY"));
  show("VARIANCE / STDDEV (DB2 spellings)",
       db2->Execute("SELECT VARIANCE(balance), STDDEV(balance) "
                    "FROM accounts"));
  (void)db2->Execute(
      "DECLARE GLOBAL TEMPORARY TABLE work1 (x INT) ON COMMIT PRESERVE ROWS");
  (void)db2->Execute("INSERT INTO session.work1 VALUES (9)");
  show("DECLARE GLOBAL TEMPORARY TABLE",
       db2->Execute("SELECT x FROM session.work1"));
  (void)db2->Execute("CREATE ALIAS acct FOR accounts");
  show("CREATE ALIAS", db2->Execute("SELECT COUNT(*) FROM acct"));

  // --- SET SQL_DIALECT at runtime ------------------------------------------
  auto flexible = db->Connect("mixed_app");
  std::printf("--- switching dialects within one session ---\n");
  show("SET SQL_DIALECT = ORACLE",
       flexible->Execute("SET SQL_DIALECT = ORACLE"));
  show("SELECT SYSDATE FROM DUAL",
       flexible->Execute("SELECT SYSDATE FROM DUAL"));
  show("SET SQL_DIALECT = NETEZZA",
       flexible->Execute("SET SQL_DIALECT = NETEZZA"));
  show("SELECT NOW()::DATE", flexible->Execute("SELECT NOW()::DATE"));
  return 0;
}
