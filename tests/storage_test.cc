// Tests for the storage engine: column pages (frequency cells, FOR, raw),
// column tables (load/scan/skip/append/delete), the row-store baseline with
// B+Tree indexes, and the clustered-filesystem serialization.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "storage/btree.h"
#include "storage/clusterfs.h"
#include "storage/column_table.h"
#include "storage/row_table.h"

namespace dashdb {
namespace {

// ---------------------------------------------------------------- pages --

TEST(ColumnPageTest, FrequencyPageRoundTrip) {
  std::vector<int64_t> vals;
  Rng rng(1);
  ZipfGenerator z(50, 1.1, 2);
  for (int i = 0; i < 3000; ++i) vals.push_back(static_cast<int64_t>(z.Next()));
  IntColumnStats st = ComputeIntStats(vals.data(), vals.size(), nullptr);
  auto dict = IntFrequencyDict::Build(st.freq_desc);
  auto page = BuildIntPage(vals.data(), vals.size(), nullptr, 0, &dict);
  ASSERT_EQ(page->encoding, PageEncoding::kFrequencyInt);
  ColumnVector out(TypeId::kInt64);
  DecodeIntPage(*page, &dict, nullptr, &out);
  ASSERT_EQ(out.size(), vals.size());
  for (size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(out.GetInt(i), vals[i]);
}

TEST(ColumnPageTest, FrequencyPagePredicateOnCompressed) {
  std::vector<int64_t> vals;
  for (int i = 0; i < 2000; ++i) vals.push_back(i % 97);
  IntColumnStats st = ComputeIntStats(vals.data(), vals.size(), nullptr);
  auto dict = IntFrequencyDict::Build(st.freq_desc);
  auto page = BuildIntPage(vals.data(), vals.size(), nullptr, 0, &dict);
  IntRangePred pred;
  pred.lo = 10;
  pred.hi = 20;
  for (bool swar : {true, false}) {
    for (bool on_comp : {true, false}) {
      BitVector m(vals.size());
      EvalIntRange(*page, &dict, pred, swar, on_comp, &m);
      for (size_t i = 0; i < vals.size(); ++i) {
        ASSERT_EQ(m.Get(i), vals[i] >= 10 && vals[i] <= 20)
            << "i=" << i << " swar=" << swar << " on_comp=" << on_comp;
      }
    }
  }
}

TEST(ColumnPageTest, ExceptionCellHoldsUnseenValues) {
  // Dictionary built from {0..9}; page contains 999 (post-load insert).
  std::vector<std::pair<int64_t, size_t>> freq;
  for (int i = 0; i < 10; ++i) freq.emplace_back(i, 10 - i);
  auto dict = IntFrequencyDict::Build(freq);
  std::vector<int64_t> vals = {1, 2, 999, 3};
  auto page = BuildIntPage(vals.data(), vals.size(), nullptr, 0, &dict);
  EXPECT_EQ(page->exc_ints.size(), 1u);
  ColumnVector out(TypeId::kInt64);
  DecodeIntPage(*page, &dict, nullptr, &out);
  EXPECT_EQ(out.GetInt(2), 999);
  // Predicates still see the exception value.
  IntRangePred pred;
  pred.lo = 500;
  BitVector m(4);
  EvalIntRange(*page, &dict, pred, true, true, &m);
  EXPECT_TRUE(m.Get(2));
  EXPECT_EQ(m.CountSet(), 1u);
}

TEST(ColumnPageTest, NullsNeverMatchAndDecodeAsNull) {
  std::vector<int64_t> vals = {5, 0, 7};
  BitVector nulls(3);
  nulls.Set(1);
  // FOR page (no dict): nulls stored as code 0.
  auto page = BuildIntPage(vals.data(), vals.size(), &nulls, 0, nullptr);
  IntRangePred pred;
  pred.lo = 0;  // would match the null's code-0 slot if unmasked
  BitVector m(3);
  EvalIntRange(*page, nullptr, pred, true, true, &m);
  EXPECT_TRUE(m.Get(0));
  EXPECT_FALSE(m.Get(1));
  EXPECT_TRUE(m.Get(2));
  ColumnVector out(TypeId::kInt64);
  DecodeIntPage(*page, nullptr, nullptr, &out);
  EXPECT_TRUE(out.IsNull(1));
  EXPECT_EQ(out.GetInt(2), 7);
}

TEST(ColumnPageTest, StringPagePredicates) {
  std::vector<std::string> vals = {"alpha", "beta", "alpha", "gamma", "beta"};
  StringColumnStats st = ComputeStringStats(vals.data(), vals.size(), nullptr);
  auto dict = StringFrequencyDict::Build(st.freq_desc);
  auto page = BuildStringPage(vals.data(), vals.size(), nullptr, 0, &dict);
  StrRangePred eq;
  eq.lo = "beta";
  eq.hi = "beta";
  BitVector m(5);
  EvalStringRange(*page, &dict, eq, true, true, &m);
  EXPECT_EQ(m.CountSet(), 2u);
  EXPECT_TRUE(m.Get(1));
  EXPECT_TRUE(m.Get(4));
  ColumnVector out(TypeId::kVarchar);
  DecodeStringPage(*page, &dict, &m, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.GetString(0), "beta");
}

TEST(ColumnPageTest, SelectiveDecodePreservesRowOrder) {
  std::vector<int64_t> vals;
  for (int i = 0; i < 1000; ++i) vals.push_back(i % 7);
  IntColumnStats st = ComputeIntStats(vals.data(), vals.size(), nullptr);
  auto dict = IntFrequencyDict::Build(st.freq_desc);
  auto page = BuildIntPage(vals.data(), vals.size(), nullptr, 0, &dict);
  BitVector sel(1000);
  for (size_t i = 0; i < 1000; i += 13) sel.Set(i);
  ColumnVector out(TypeId::kInt64);
  DecodeIntPage(*page, &dict, &sel, &out);
  size_t k = 0;
  for (size_t i = 0; i < 1000; i += 13, ++k) {
    ASSERT_EQ(out.GetInt(k), vals[i]);
  }
}

TEST(ColumnPageTest, CompressedSmallerThanRaw) {
  std::vector<int64_t> vals;
  ZipfGenerator z(16, 1.2, 4);
  for (int i = 0; i < 4096; ++i) vals.push_back(static_cast<int64_t>(z.Next()));
  IntColumnStats st = ComputeIntStats(vals.data(), vals.size(), nullptr);
  auto dict = IntFrequencyDict::Build(st.freq_desc);
  auto page = BuildIntPage(vals.data(), vals.size(), nullptr, 0, &dict);
  EXPECT_LT(page->ByteSize(), vals.size() * 2);  // vs 8 bytes/value raw
}

// ---------------------------------------------------------------- table --

TableSchema SalesSchema() {
  TableSchema s("PUBLIC", "SALES",
                {{"ID", TypeId::kInt64, false, 0, false},
                 {"REGION", TypeId::kVarchar, true, 0, false},
                 {"SALE_DATE", TypeId::kDate, true, 0, false},
                 {"AMOUNT", TypeId::kDouble, true, 0, false}});
  return s;
}

RowBatch MakeSales(size_t n, uint64_t seed = 9) {
  Rng rng(seed);
  const char* regions[] = {"NORTH", "SOUTH", "EAST", "WEST"};
  RowBatch b;
  b.columns.emplace_back(TypeId::kInt64);
  b.columns.emplace_back(TypeId::kVarchar);
  b.columns.emplace_back(TypeId::kDate);
  b.columns.emplace_back(TypeId::kDouble);
  for (size_t i = 0; i < n; ++i) {
    b.columns[0].AppendInt(static_cast<int64_t>(i));
    b.columns[1].AppendString(regions[rng.Uniform(4)]);
    // Dates ascend: row i is day i/8 (mimics time-ordered ingest).
    b.columns[2].AppendInt(17000 + static_cast<int64_t>(i / 8));
    b.columns[3].AppendDouble(static_cast<double>(rng.Uniform(10000)) / 100);
  }
  return b;
}

TEST(ColumnTableTest, LoadAndFullScan) {
  ColumnTable t(SalesSchema(), 1);
  ASSERT_TRUE(t.Load(MakeSales(10000)).ok());
  EXPECT_EQ(t.row_count(), 10000u);
  size_t rows = 0;
  ScanOptions opts;
  ASSERT_TRUE(t.Scan({}, {0, 1, 2, 3}, opts,
                     [&](RowBatch& b, const std::vector<uint64_t>&) {
                       rows += b.num_rows();
                     })
                  .ok());
  EXPECT_EQ(rows, 10000u);
}

TEST(ColumnTableTest, PredicateScanMatchesNaiveFilter) {
  RowBatch data = MakeSales(20000);
  ColumnTable t(SalesSchema(), 2);
  ASSERT_TRUE(t.Load(data).ok());
  ColumnPredicate pred;
  pred.column = 2;  // SALE_DATE
  pred.int_range.lo = 17100;
  pred.int_range.hi = 17200;
  size_t expect = 0;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    int64_t d = data.columns[2].GetInt(i);
    if (d >= 17100 && d <= 17200) ++expect;
  }
  ScanOptions opts;
  auto count = t.CountRows({pred}, opts);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, expect);
}

TEST(ColumnTableTest, SynopsisSkipsTimeOrderedData) {
  ColumnTable t(SalesSchema(), 3);
  ASSERT_TRUE(t.Load(MakeSales(100000)).ok());
  ColumnPredicate pred;
  pred.column = 2;
  pred.int_range.lo = 17000 + 100000 / 8 - 100;  // last ~800 rows
  ScanOptions opts;
  ScanStats stats;
  size_t rows = 0;
  ASSERT_TRUE(t.Scan({pred}, {0}, opts,
                     [&](RowBatch& b, const std::vector<uint64_t>&) {
                       rows += b.num_rows();
                     },
                     &stats)
                  .ok());
  EXPECT_GT(stats.pages_skipped, t.num_pages() * 8 / 10)
      << "most pages should be skipped for a recent-date predicate";
  EXPECT_GT(rows, 0u);
}

TEST(ColumnTableTest, FeaturetogglesGiveIdenticalResults) {
  // Property: synopsis/SWAR/compressed-domain toggles never change results.
  RowBatch data = MakeSales(30000);
  ColumnTable t(SalesSchema(), 4);
  ASSERT_TRUE(t.Load(data).ok());
  ColumnPredicate p1;
  p1.column = 2;
  p1.int_range.lo = 17050;
  p1.int_range.hi = 17300;
  ColumnPredicate p2;
  p2.column = 1;
  p2.str_range.lo = "WEST";
  p2.str_range.hi = "WEST";
  size_t baseline = SIZE_MAX;
  for (bool syn : {true, false}) {
    for (bool swar : {true, false}) {
      for (bool comp : {true, false}) {
        ScanOptions o;
        o.use_synopsis = syn;
        o.use_swar = swar;
        o.operate_on_compressed = comp;
        auto c = t.CountRows({p1, p2}, o);
        ASSERT_TRUE(c.ok());
        if (baseline == SIZE_MAX) baseline = *c;
        ASSERT_EQ(*c, baseline) << syn << swar << comp;
      }
    }
  }
  EXPECT_GT(baseline, 0u);
}

TEST(ColumnTableTest, AppendGoesThroughTailAndFlushes) {
  ColumnTable t(SalesSchema(), 5);
  ASSERT_TRUE(t.Load(MakeSales(5000)).ok());
  size_t pages_before = t.num_pages();
  ASSERT_TRUE(t.Append(MakeSales(9000, 77)).ok());
  EXPECT_EQ(t.row_count(), 14000u);
  EXPECT_GT(t.num_pages(), pages_before);
  ScanOptions opts;
  auto c = t.CountRows({}, opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 14000u);
}

TEST(ColumnTableTest, AppendRowVisibleInTail) {
  ColumnTable t(SalesSchema(), 6);
  ASSERT_TRUE(
      t.AppendRow({Value::Int64(1), Value::String("NORTH"),
                   Value::Date(17500), Value::Double(9.5)})
          .ok());
  ColumnPredicate pred;
  pred.column = 0;
  pred.int_range.lo = 1;
  pred.int_range.hi = 1;
  ScanOptions opts;
  EXPECT_EQ(*t.CountRows({pred}, opts), 1u);
  EXPECT_EQ(t.GetCell(0, 1).AsString(), "NORTH");
}

TEST(ColumnTableTest, DeleteHidesRows) {
  ColumnTable t(SalesSchema(), 7);
  ASSERT_TRUE(t.Load(MakeSales(10000)).ok());
  std::vector<uint64_t> victims;
  ScanOptions opts;
  ColumnPredicate pred;
  pred.column = 0;
  pred.int_range.hi = 99;  // ids 0..99
  ASSERT_TRUE(t.Scan({pred}, {}, opts,
                     [&](RowBatch&, const std::vector<uint64_t>& ids) {
                       victims.insert(victims.end(), ids.begin(), ids.end());
                     })
                  .ok());
  ASSERT_EQ(victims.size(), 100u);
  ASSERT_TRUE(t.DeleteRows(victims).ok());
  EXPECT_EQ(t.live_row_count(), 9900u);
  EXPECT_EQ(*t.CountRows({pred}, opts), 0u);
  EXPECT_EQ(*t.CountRows({}, opts), 9900u);
}

TEST(ColumnTableTest, UniqueConstraintEnforced) {
  TableSchema s("PUBLIC", "U",
                {{"ID", TypeId::kInt64, false, 0, true},
                 {"V", TypeId::kInt64, true, 0, false}});
  ColumnTable t(s, 8);
  ASSERT_TRUE(t.AppendRow({Value::Int64(1), Value::Int64(10)}).ok());
  EXPECT_EQ(t.AppendRow({Value::Int64(1), Value::Int64(20)}).code(),
            StatusCode::kAlreadyExists);
  // Delete releases the key (UPDATE = delete + insert must work).
  ASSERT_TRUE(t.DeleteRows({0}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Int64(1), Value::Int64(30)}).ok());
}

TEST(ColumnTableTest, TruncateEmptiesTable) {
  ColumnTable t(SalesSchema(), 9);
  ASSERT_TRUE(t.Load(MakeSales(5000)).ok());
  t.Truncate();
  EXPECT_EQ(t.row_count(), 0u);
  ScanOptions opts;
  EXPECT_EQ(*t.CountRows({}, opts), 0u);
  // Reload works after truncate.
  ASSERT_TRUE(t.Load(MakeSales(100)).ok());
  EXPECT_EQ(t.row_count(), 100u);
}

TEST(ColumnTableTest, CompressionBeatsRawOnTypicalData) {
  ColumnTable t(SalesSchema(), 10);
  ASSERT_TRUE(t.Load(MakeSales(100000)).ok());
  EXPECT_LT(t.CompressedBytes() * 2, t.RawBytes())
      << "typical warehouse data should compress >2x";
  EXPECT_LT(t.SynopsisBytes() * 100, t.CompressedBytes());
}

TEST(ColumnTableTest, BufferPoolChargedDuringScan) {
  ColumnTable t(SalesSchema(), 11);
  ASSERT_TRUE(t.Load(MakeSales(50000)).ok());
  BufferPool pool(size_t{64} << 20, ReplacementPolicy::kRandomWeight);
  ScanOptions opts;
  opts.pool = &pool;
  ColumnPredicate pred;
  pred.column = 0;
  pred.int_range.lo = 0;
  (void)*t.CountRows({pred}, opts);
  EXPECT_GT(pool.stats().accesses, 0u);
  auto misses_first = pool.stats().misses;
  (void)*t.CountRows({pred}, opts);
  EXPECT_EQ(pool.stats().misses, misses_first) << "second scan should hit";
}

// ------------------------------------------------------------ row store --

TEST(BPlusTreeTest, InsertLookup) {
  BPlusTree t;
  for (int64_t k = 0; k < 10000; ++k) t.Insert(k * 2, static_cast<uint64_t>(k));
  EXPECT_EQ(t.size(), 10000u);
  EXPECT_GT(t.height(), 1);
  auto hits = t.Lookup(500);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 250u);
  EXPECT_TRUE(t.Lookup(501).empty());
}

TEST(BPlusTreeTest, DuplicateKeys) {
  BPlusTree t;
  for (int i = 0; i < 100; ++i) t.Insert(7, static_cast<uint64_t>(i));
  EXPECT_EQ(t.Lookup(7).size(), 100u);
}

TEST(BPlusTreeTest, RangeScanOrderedAndComplete) {
  BPlusTree t;
  Rng rng(13);
  std::multiset<int64_t> truth;
  for (int i = 0; i < 20000; ++i) {
    int64_t k = rng.Range(0, 5000);
    t.Insert(k, static_cast<uint64_t>(i));
    truth.insert(k);
  }
  int64_t prev = INT64_MIN;
  size_t n = 0;
  t.SeekRange(1000, 2000, [&](int64_t k, uint64_t) {
    EXPECT_GE(k, prev);
    EXPECT_GE(k, 1000);
    EXPECT_LE(k, 2000);
    prev = k;
    ++n;
  });
  size_t expect = std::distance(truth.lower_bound(1000),
                                truth.upper_bound(2000));
  EXPECT_EQ(n, expect);
}

TEST(RowTableTest, AppendScanRoundTrip) {
  RowTable t(SalesSchema(), 20);
  ASSERT_TRUE(t.Append(MakeSales(5000)).ok());
  EXPECT_EQ(t.row_count(), 5000u);
  size_t rows = 0;
  ASSERT_TRUE(t.Scan({}, {0, 1, 3},
                     [&](RowBatch& b, const std::vector<uint64_t>&) {
                       rows += b.num_rows();
                     })
                  .ok());
  EXPECT_EQ(rows, 5000u);
  EXPECT_EQ(t.GetCell(0, 0).AsInt(), 0);
}

TEST(RowTableTest, RowAndColumnScansAgree) {
  // Property: both engines return identical answers for the same predicate.
  RowBatch data = MakeSales(20000);
  RowTable rt(SalesSchema(), 21);
  ColumnTable ct(SalesSchema(), 22);
  ASSERT_TRUE(rt.Append(data).ok());
  ASSERT_TRUE(ct.Load(data).ok());
  ColumnPredicate pred;
  pred.column = 2;
  pred.int_range.lo = 17100;
  pred.int_range.hi = 17500;
  size_t row_hits = 0;
  ASSERT_TRUE(rt.Scan({pred}, {0},
                      [&](RowBatch& b, const std::vector<uint64_t>&) {
                        row_hits += b.num_rows();
                      })
                  .ok());
  ScanOptions opts;
  EXPECT_EQ(*ct.CountRows({pred}, opts), row_hits);
}

TEST(RowTableTest, IndexScanAgreesWithFullScan) {
  RowTable t(SalesSchema(), 23);
  ASSERT_TRUE(t.Append(MakeSales(20000)).ok());
  ASSERT_TRUE(t.CreateIndex(2).ok());
  ColumnPredicate pred;
  pred.column = 2;
  pred.int_range.lo = 17100;
  pred.int_range.hi = 17150;
  size_t full = 0, via_index = 0;
  ASSERT_TRUE(t.Scan({pred}, {0},
                     [&](RowBatch& b, const std::vector<uint64_t>&) {
                       full += b.num_rows();
                     })
                  .ok());
  ASSERT_TRUE(t.IndexScan(2, 17100, 17150, {}, {0},
                          [&](RowBatch& b, const std::vector<uint64_t>&) {
                            via_index += b.num_rows();
                          })
                  .ok());
  EXPECT_EQ(full, via_index);
  EXPECT_GT(full, 0u);
}

TEST(RowTableTest, InPlaceUpdateAndStaleIndexEntries) {
  RowTable t(SalesSchema(), 24);
  ASSERT_TRUE(t.Append(MakeSales(100)).ok());
  ASSERT_TRUE(t.CreateIndex(0).ok());
  // Move row 5's key from 5 to 1000005.
  auto row = t.GetRow(5);
  row[0] = Value::Int64(1000005);
  ASSERT_TRUE(t.UpdateRow(5, row).ok());
  size_t via_old = 0, via_new = 0;
  ASSERT_TRUE(t.IndexScan(0, 5, 5, {}, {0},
                          [&](RowBatch& b, const std::vector<uint64_t>&) {
                            via_old += b.num_rows();
                          })
                  .ok());
  ASSERT_TRUE(t.IndexScan(0, 1000005, 1000005, {}, {0},
                          [&](RowBatch& b, const std::vector<uint64_t>&) {
                            via_new += b.num_rows();
                          })
                  .ok());
  EXPECT_EQ(via_old, 0u) << "stale index entry must be filtered by re-check";
  EXPECT_EQ(via_new, 1u);
}

TEST(RowTableTest, DeleteRows) {
  RowTable t(SalesSchema(), 25);
  ASSERT_TRUE(t.Append(MakeSales(1000)).ok());
  ASSERT_TRUE(t.DeleteRows({1, 2, 3}).ok());
  EXPECT_EQ(t.live_row_count(), 997u);
  size_t rows = 0;
  ASSERT_TRUE(t.Scan({}, {0},
                     [&](RowBatch& b, const std::vector<uint64_t>&) {
                       rows += b.num_rows();
                     })
                  .ok());
  EXPECT_EQ(rows, 997u);
}

// ------------------------------------------------------------ clusterfs --

TEST(ClusterFsTest, WriteReadListRemove) {
  ClusterFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("/shard0/data.bin", {1, 2, 3}).ok());
  ASSERT_TRUE(fs.WriteFile("/shard1/data.bin", {4}).ok());
  auto r = fs.ReadFile("/shard0/data.bin");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->size(), 3u);
  EXPECT_EQ(fs.List("/shard").size(), 2u);
  EXPECT_EQ(fs.TotalBytes(), 4u);
  ASSERT_TRUE(fs.Remove("/shard1/data.bin").ok());
  EXPECT_FALSE(fs.Exists("/shard1/data.bin"));
  EXPECT_EQ(fs.ReadFile("/nope").status().code(), StatusCode::kNotFound);
}

TEST(ClusterFsTest, BatchSerializationRoundTrip) {
  TableSchema schema = SalesSchema();
  RowBatch b = MakeSales(500);
  b.columns[1].AppendNull();  // exercise nulls
  b.columns[0].AppendInt(500);
  b.columns[2].AppendNull();
  b.columns[3].AppendDouble(1.25);
  std::vector<uint8_t> bytes;
  SerializeBatch(schema, b, &bytes);
  auto r = DeserializeBatch(schema, bytes.data(), bytes.size());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 501u);
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(r->columns[0].GetInt(i), b.columns[0].GetInt(i));
    EXPECT_EQ(r->columns[1].GetString(i), b.columns[1].GetString(i));
    EXPECT_EQ(r->columns[3].GetDouble(i), b.columns[3].GetDouble(i));
  }
  EXPECT_TRUE(r->columns[1].IsNull(500));
  EXPECT_TRUE(r->columns[2].IsNull(500));
  EXPECT_DOUBLE_EQ(r->columns[3].GetDouble(500), 1.25);
}

TEST(ClusterFsTest, TruncatedFileRejected) {
  TableSchema schema = SalesSchema();
  RowBatch b = MakeSales(10);
  std::vector<uint8_t> bytes;
  SerializeBatch(schema, b, &bytes);
  auto r = DeserializeBatch(schema, bytes.data(), bytes.size() / 2);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(ClusterFsTest, SaveAndLoadColumnTable) {
  ClusterFileSystem fs;
  ColumnTable t(SalesSchema(), 30);
  ASSERT_TRUE(t.Load(MakeSales(12345)).ok());
  // Delete some rows; save persists only live rows.
  ASSERT_TRUE(t.DeleteRows({0, 1, 2}).ok());
  ASSERT_TRUE(SaveColumnTable(t, &fs, "/tables/sales").ok());
  auto r = LoadColumnTable(SalesSchema(), 31, fs, "/tables/sales");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->row_count(), 12342u);
  ScanOptions opts;
  ColumnPredicate pred;
  pred.column = 0;
  pred.int_range.lo = 0;
  pred.int_range.hi = 2;
  EXPECT_EQ(*(*r)->CountRows({pred}, opts), 0u);
}

}  // namespace
}  // namespace dashdb
