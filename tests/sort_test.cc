// Parallel sort & Top-N subsystem (ctest -L sort). Covers the normalized
// memcmp-able key encoding against the Value::Compare oracle (NULLs,
// -0.0/NaN canonicalization, empty and embedded-NUL strings, DESC
// complements), byte-identity of the morsel run-sort + k-way merge against
// the serial stable_sort oracle, bounded-heap Top-N equivalence, LIMIT
// early termination, cancellation storms through a governed sort, and the
// MPP ORDER BY/LIMIT pushdown with the coordinator stream merge.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/query_context.h"
#include "common/rng.h"
#include "common/sort_key.h"
#include "common/threadpool.h"
#include "exec/operator.h"
#include "exec/sort.h"
#include "mpp/mpp.h"
#include "sql/engine.h"
#include "corpus_util.h"

namespace dashdb {
namespace {

uint64_t CounterValue(const char* name) {
  return MetricRegistry::Global().GetCounter(name)->value();
}

int Sgn(int c) { return c < 0 ? -1 : (c > 0 ? 1 : 0); }

/// Encodes one cell through the public normalized-key entry point.
std::string Enc(const ColumnVector& cv, size_t row, bool desc = false) {
  std::string out;
  AppendNormalizedCell(cv, row, desc, &out);
  return out;
}

int CompareEnc(const std::string& a, const std::string& b) {
  int c = std::memcmp(a.data(), b.data(), std::min(a.size(), b.size()));
  if (c != 0) return Sgn(c);
  return a.size() < b.size() ? -1 : (a.size() == b.size() ? 0 : 1);
}

/// Canonical string form of a drained batch (row order significant).
std::string BatchKey(const RowBatch& b) {
  std::ostringstream os;
  for (size_t i = 0; i < b.num_rows(); ++i) {
    for (size_t c = 0; c < b.columns.size(); ++c) {
      os << b.columns[c].GetValue(i).ToString() << '|';
    }
    os << '\n';
  }
  return os.str();
}

/// Canonical string form of a single-node result.
std::string RowsKey(const QueryResult& r) {
  std::ostringstream os;
  for (const auto& c : r.columns) os << c.name << '|';
  os << '\n';
  for (size_t i = 0; i < r.rows.num_rows(); ++i) {
    for (size_t c = 0; c < r.rows.columns.size(); ++c) {
      os << r.rows.columns[c].GetValue(i).ToString() << '|';
    }
    os << '\n';
  }
  return os.str();
}

// ------------------------------------------------- key encoding property --

TEST(SortKeyTest, Int64EncodingMatchesValueCompare) {
  ColumnVector cv(TypeId::kInt64);
  cv.AppendInt(std::numeric_limits<int64_t>::min());
  cv.AppendInt(std::numeric_limits<int64_t>::min() + 1);
  cv.AppendInt(-1);
  cv.AppendInt(0);
  cv.AppendInt(1);
  cv.AppendInt(std::numeric_limits<int64_t>::max());
  cv.AppendNull();
  Rng rng(11);
  for (int i = 0; i < 120; ++i) {
    if (rng.Bernoulli(0.1)) {
      cv.AppendNull();
    } else {
      cv.AppendInt(static_cast<int64_t>(rng.Next()));
    }
  }
  for (size_t i = 0; i < cv.size(); ++i) {
    for (size_t j = 0; j < cv.size(); ++j) {
      const int want = cv.GetValue(i).Compare(cv.GetValue(j));
      EXPECT_EQ(Sgn(CompareEnc(Enc(cv, i), Enc(cv, j))), Sgn(want))
          << "rows " << i << "," << j;
    }
  }
}

TEST(SortKeyTest, DoubleEncodingMatchesValueCompare) {
  ColumnVector cv(TypeId::kDouble);
  cv.AppendDouble(-std::numeric_limits<double>::infinity());
  cv.AppendDouble(-1e308);
  cv.AppendDouble(-1.5);
  cv.AppendDouble(-std::numeric_limits<double>::denorm_min());
  cv.AppendDouble(-0.0);
  cv.AppendDouble(0.0);
  cv.AppendDouble(std::numeric_limits<double>::denorm_min());
  cv.AppendDouble(1.5);
  cv.AppendDouble(1e308);
  cv.AppendDouble(std::numeric_limits<double>::infinity());
  cv.AppendNull();
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    cv.AppendDouble((rng.NextDouble() - 0.5) * std::pow(10.0, rng.Range(-20, 20)));
  }
  for (size_t i = 0; i < cv.size(); ++i) {
    for (size_t j = 0; j < cv.size(); ++j) {
      const int want = cv.GetValue(i).Compare(cv.GetValue(j));
      EXPECT_EQ(Sgn(CompareEnc(Enc(cv, i), Enc(cv, j))), Sgn(want))
          << "rows " << i << "," << j;
    }
  }
}

TEST(SortKeyTest, DoubleCanonicalization) {
  // -0.0 and +0.0 encode identically (Value::Compare calls them equal, so
  // byte-equality is required for the memcmp comparator to agree).
  ColumnVector cv(TypeId::kDouble);
  cv.AppendDouble(0.0);
  cv.AppendDouble(-0.0);
  EXPECT_EQ(Enc(cv, 0), Enc(cv, 1));

  // All NaN payloads collapse to one canonical encoding that sorts above
  // +inf and below NULL. (Value::Compare is not a total order on NaN, so
  // the encoding defines the order; it only has to be self-consistent.)
  ColumnVector nans(TypeId::kDouble);
  nans.AppendDouble(std::numeric_limits<double>::quiet_NaN());
  nans.AppendDouble(-std::numeric_limits<double>::quiet_NaN());
  nans.AppendDouble(std::nan("0x5412"));
  nans.AppendDouble(std::numeric_limits<double>::infinity());
  nans.AppendNull();
  EXPECT_EQ(Enc(nans, 0), Enc(nans, 1));
  EXPECT_EQ(Enc(nans, 0), Enc(nans, 2));
  EXPECT_GT(CompareEnc(Enc(nans, 0), Enc(nans, 3)), 0);  // NaN > +inf
  EXPECT_LT(CompareEnc(Enc(nans, 0), Enc(nans, 4)), 0);  // NaN < NULL
}

TEST(SortKeyTest, VarcharEncodingMatchesValueCompare) {
  ColumnVector cv(TypeId::kVarchar);
  cv.AppendString("");
  cv.AppendString("a");
  cv.AppendString("ab");
  cv.AppendString("b");
  cv.AppendString(std::string("\0", 1));
  cv.AppendString(std::string("a\0", 2));
  cv.AppendString(std::string("a\0b", 3));
  cv.AppendString(std::string("a\0\0", 3));
  cv.AppendString("s1");
  cv.AppendString("s10");
  cv.AppendString("s2");
  cv.AppendNull();
  Rng rng(13);
  const char alphabet[] = {'\0', 'a', 'b', 0x7f};
  for (int i = 0; i < 80; ++i) {
    std::string s;
    const int len = static_cast<int>(rng.Uniform(6));
    for (int k = 0; k < len; ++k) s.push_back(alphabet[rng.Uniform(4)]);
    cv.AppendString(std::move(s));
  }
  for (size_t i = 0; i < cv.size(); ++i) {
    for (size_t j = 0; j < cv.size(); ++j) {
      const int want = cv.GetValue(i).Compare(cv.GetValue(j));
      EXPECT_EQ(Sgn(CompareEnc(Enc(cv, i), Enc(cv, j))), Sgn(want))
          << "rows " << i << "," << j;
    }
  }
}

TEST(SortKeyTest, DescComplementReversesOrderAndNullsGoFirst) {
  ColumnVector cv(TypeId::kInt64);
  cv.AppendInt(-5);
  cv.AppendInt(0);
  cv.AppendInt(7);
  cv.AppendNull();
  Rng rng(14);
  for (int i = 0; i < 60; ++i) cv.AppendInt(rng.Range(-1000, 1000));
  for (size_t i = 0; i < cv.size(); ++i) {
    for (size_t j = 0; j < cv.size(); ++j) {
      const int asc = CompareEnc(Enc(cv, i), Enc(cv, j));
      const int desc = CompareEnc(Enc(cv, i, true), Enc(cv, j, true));
      EXPECT_EQ(Sgn(desc), -Sgn(asc)) << "rows " << i << "," << j;
    }
  }
  // NULL sorts high ascending, therefore first descending — matching the
  // serial comparator, which flips the whole three-way result under DESC.
  EXPECT_GT(CompareEnc(Enc(cv, 3), Enc(cv, 2)), 0);
  EXPECT_LT(CompareEnc(Enc(cv, 3, true), Enc(cv, 2, true)), 0);
}

TEST(SortKeyTest, CompositeKeysKeepColumnBoundaries) {
  // Embedded NULs and prefixes must not leak across key-column boundaries:
  // ("a", "b") vs ("a\0b", "") would collide under naive concatenation.
  ColumnVector c1(TypeId::kVarchar), c2(TypeId::kVarchar);
  auto add = [&](const std::string& a, const std::string& b) {
    c1.AppendString(a);
    c2.AppendString(b);
  };
  add("a", "b");
  add(std::string("a\0b", 3), "");
  add("a", "");
  add("", "a");
  add("", "");
  add(std::string("a\0", 2), "b");
  std::vector<const ColumnVector*> cols{&c1, &c2};
  std::vector<bool> desc{false, false};
  NormalizedKeyColumn keys;
  keys.Build(cols, desc, 0, c1.size());
  for (size_t i = 0; i < c1.size(); ++i) {
    for (size_t j = 0; j < c1.size(); ++j) {
      int want = c1.GetValue(i).Compare(c1.GetValue(j));
      if (want == 0) want = c2.GetValue(i).Compare(c2.GetValue(j));
      EXPECT_EQ(Sgn(keys.Compare(i, keys, j)), Sgn(want))
          << "rows " << i << "," << j;
    }
  }
}

TEST(SortKeyTest, MixedKeyColumnMatchesSerialComparator) {
  // Random three-key rows (int DESC, varchar ASC, double ASC) with NULLs:
  // the composite encoding must agree with the lexicographic typed
  // comparator the serial oracle uses.
  ColumnVector ki(TypeId::kInt64), ks(TypeId::kVarchar), kd(TypeId::kDouble);
  Rng rng(15);
  const size_t n = 250;
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.1)) ki.AppendNull(); else ki.AppendInt(rng.Range(0, 9));
    if (rng.Bernoulli(0.1)) ks.AppendNull();
    else ks.AppendString("s" + std::to_string(rng.Uniform(4)));
    if (rng.Bernoulli(0.1)) kd.AppendNull();
    else kd.AppendDouble(static_cast<double>(rng.Range(-3, 3)) / 2.0);
  }
  std::vector<const ColumnVector*> cols{&ki, &ks, &kd};
  std::vector<bool> desc{true, false, false};
  NormalizedKeyColumn keys;
  keys.Build(cols, desc, 0, n);
  for (size_t i = 0; i < n; i += 3) {
    for (size_t j = 0; j < n; j += 3) {
      int want = 0;
      for (size_t k = 0; k < cols.size() && want == 0; ++k) {
        want = cols[k]->GetValue(i).Compare(cols[k]->GetValue(j));
        if (desc[k]) want = -want;
      }
      EXPECT_EQ(Sgn(keys.Compare(i, keys, j)), Sgn(want))
          << "rows " << i << "," << j;
    }
  }
}

// ------------------------------------------------------- operator level --

ExprPtr Col(int i, TypeId t) { return std::make_shared<ColumnRefExpr>(i, t); }

/// Ties-heavy mixed batch: K (int64, few distinct), D (double), STR
/// (varchar, small alphabet), PAY (int64 row id — makes every row unique
/// so byte-identity checks detect any stability violation).
RowBatch MakeMixedBatch(size_t n, uint64_t seed) {
  RowBatch b;
  b.columns.emplace_back(TypeId::kInt64);
  b.columns.emplace_back(TypeId::kDouble);
  b.columns.emplace_back(TypeId::kVarchar);
  b.columns.emplace_back(TypeId::kInt64);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.05)) b.columns[0].AppendNull();
    else b.columns[0].AppendInt(rng.Range(0, 49));
    if (rng.Bernoulli(0.05)) b.columns[1].AppendNull();
    else b.columns[1].AppendDouble(static_cast<double>(rng.Range(-40, 40)) / 4.0);
    if (rng.Bernoulli(0.05)) b.columns[2].AppendNull();
    else b.columns[2].AppendString("k" + std::to_string(rng.Uniform(7)));
    b.columns[3].AppendInt(static_cast<int64_t>(i));
  }
  return b;
}

std::vector<OutputCol> MixedCols() {
  return {{"K", TypeId::kInt64},
          {"D", TypeId::kDouble},
          {"STR", TypeId::kVarchar},
          {"PAY", TypeId::kInt64}};
}

std::vector<SortKey> MixedKeys(int variant) {
  std::vector<SortKey> keys;
  switch (variant) {
    case 0:
      keys.push_back({Col(0, TypeId::kInt64), false});
      break;
    case 1:
      keys.push_back({Col(0, TypeId::kInt64), true});
      keys.push_back({Col(2, TypeId::kVarchar), false});
      break;
    default:
      keys.push_back({Col(2, TypeId::kVarchar), true});
      keys.push_back({Col(1, TypeId::kDouble), false});
      keys.push_back({Col(0, TypeId::kInt64), false});
      break;
  }
  return keys;
}

TEST(SortOpTest, ParallelSortMatchesSerialStableOracle) {
  ThreadPool pool(4);
  for (size_t n : {size_t{0}, size_t{1}, size_t{1000}, size_t{20000}}) {
    RowBatch data = MakeMixedBatch(n, 21 + n);
    for (int variant = 0; variant < 3; ++variant) {
      ExecContext serial_ctx;
      auto serial = std::make_unique<SortOp>(
          std::make_unique<ValuesOp>(data, MixedCols()), MixedKeys(variant),
          &serial_ctx, /*serial=*/true);
      auto want = DrainOperator(serial.get());
      ASSERT_TRUE(want.ok()) << want.status().ToString();

      ExecContext par_ctx;
      par_ctx.pool = &pool;
      par_ctx.dop = 4;
      const uint64_t runs_before = CounterValue("exec.sort_runs");
      auto par = std::make_unique<SortOp>(
          std::make_unique<ValuesOp>(data, MixedCols()), MixedKeys(variant),
          &par_ctx);
      auto got = DrainOperator(par.get());
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(BatchKey(*got), BatchKey(*want))
          << "n=" << n << " variant=" << variant;
      if (n >= 20000) {
        // Large inputs must take the multi-run path, not degrade to one run.
        EXPECT_GT(CounterValue("exec.sort_runs"), runs_before + 1);
      }
    }
  }
}

TEST(TopNOpTest, MatchesSortPlusLimitOracle) {
  ThreadPool pool(4);
  for (size_t n : {size_t{100}, size_t{20000}}) {
    RowBatch data = MakeMixedBatch(n, 31 + n);
    for (int variant = 0; variant < 3; ++variant) {
      for (int64_t limit : {int64_t{0}, int64_t{1}, int64_t{17}, int64_t{1000}}) {
        for (int64_t offset : {int64_t{0}, int64_t{3}, int64_t{50}}) {
          ExecContext serial_ctx;
          auto sort = std::make_unique<SortOp>(
              std::make_unique<ValuesOp>(data, MixedCols()),
              MixedKeys(variant), &serial_ctx, /*serial=*/true);
          auto lim = std::make_unique<LimitOp>(std::move(sort), limit, offset);
          auto want = DrainOperator(lim.get());
          ASSERT_TRUE(want.ok()) << want.status().ToString();

          ExecContext par_ctx;
          par_ctx.pool = &pool;
          par_ctx.dop = 4;
          auto topn = std::make_unique<TopNOp>(
              std::make_unique<ValuesOp>(data, MixedCols()),
              MixedKeys(variant), limit, offset, &par_ctx);
          auto got = DrainOperator(topn.get());
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          EXPECT_EQ(BatchKey(*got), BatchKey(*want))
              << "n=" << n << " variant=" << variant << " limit=" << limit
              << " offset=" << offset;
        }
      }
    }
  }
}

/// Emits `batches` batches of `rows` sequential rows and counts pulls, so
/// tests can observe whether a consumer stopped early.
class ChunkedOp : public Operator {
 public:
  ChunkedOp(int batches, int rows)
      : batches_(batches), rows_(rows) {
    output_.push_back({"ID", TypeId::kInt64});
    output_.push_back({"V", TypeId::kInt64});
  }
  std::string label() const override { return "Chunked()"; }
  int pulls() const { return pulls_; }

 protected:
  Status OpenImpl() override {
    next_ = 0;
    pulls_ = 0;
    return Status::OK();
  }
  Result<bool> NextImpl(RowBatch* out) override {
    ++pulls_;
    if (next_ >= batches_) return false;
    out->columns.clear();
    out->selection.reset();
    out->columns.emplace_back(TypeId::kInt64);
    out->columns.emplace_back(TypeId::kInt64);
    for (int i = 0; i < rows_; ++i) {
      const int64_t id = static_cast<int64_t>(next_) * rows_ + i;
      out->columns[0].AppendInt(id);
      out->columns[1].AppendInt(id * 31 % 101);
    }
    ++next_;
    return true;
  }

 private:
  int batches_;
  int rows_;
  int next_ = 0;
  int pulls_ = 0;
};

TEST(LimitOpTest, StopsPullingChildOnceSatisfied) {
  ExecContext ctx;
  auto chunked = std::make_unique<ChunkedOp>(100, 10);
  ChunkedOp* child = chunked.get();
  const uint64_t stops_before = CounterValue("exec.limit_early_stops");
  auto lim = std::make_unique<LimitOp>(std::move(chunked), 25, 0);
  auto r = DrainOperator(lim.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 25u);
  // 25 rows span 3 of the 100 child batches; the limit must not drain the
  // other 97.
  EXPECT_EQ(child->pulls(), 3);
  EXPECT_EQ(lim->child_pulls(), 3u);
  EXPECT_GT(CounterValue("exec.limit_early_stops"), stops_before);
}

TEST(LimitOpTest, LimitZeroNeverPullsChild) {
  ExecContext ctx;
  auto chunked = std::make_unique<ChunkedOp>(10, 10);
  ChunkedOp* child = chunked.get();
  auto lim = std::make_unique<LimitOp>(std::move(chunked), 0, 0);
  auto r = DrainOperator(lim.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 0u);
  EXPECT_EQ(child->pulls(), 0);
}

TEST(LimitOpTest, OffsetCrossesBatches) {
  ExecContext ctx;
  auto lim = std::make_unique<LimitOp>(std::make_unique<ChunkedOp>(10, 10),
                                       5, 17);
  auto r = DrainOperator(lim.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(r->columns[0].GetInt(i), static_cast<int64_t>(17 + i));
  }
}

TEST(TopNOpTest, LimitZeroNeverPullsChild) {
  ExecContext ctx;
  auto chunked = std::make_unique<ChunkedOp>(10, 10);
  ChunkedOp* child = chunked.get();
  std::vector<SortKey> keys;
  keys.push_back({Col(1, TypeId::kInt64), false});
  auto topn = std::make_unique<TopNOp>(std::move(chunked), std::move(keys),
                                       0, 0, &ctx);
  auto r = DrainOperator(topn.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 0u);
  EXPECT_EQ(child->pulls(), 0);
}

// --------------------------------------------------------- engine level --

EngineConfig ParallelConfig() {
  EngineConfig cfg;
  cfg.query_parallelism = 8;
  return cfg;
}

/// Loads an ID/GRP/V/S column table with `n` rows (ties on GRP/V/S).
void LoadRows(Engine* engine, const std::string& name, int64_t n) {
  TableSchema schema("PUBLIC", name,
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"GRP", TypeId::kInt64, true, 0, false},
                      {"V", TypeId::kInt64, true, 0, false},
                      {"S", TypeId::kVarchar, true, 0, false}});
  auto t = engine->CreateColumnTable(schema);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  RowBatch rows;
  for (int c = 0; c < 3; ++c) rows.columns.emplace_back(TypeId::kInt64);
  rows.columns.emplace_back(TypeId::kVarchar);
  for (int64_t i = 0; i < n; ++i) {
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendInt(i % 97);
    rows.columns[2].AppendInt(i * 31 % 101);
    rows.columns[3].AppendString("s" + std::to_string(i % 13));
  }
  ASSERT_TRUE(t.value()->Append(rows).ok());
}

void Set(Engine& e, Session* s, const std::string& stmt) {
  auto r = e.Execute(s, stmt);
  ASSERT_TRUE(r.ok()) << stmt << ": " << r.status().ToString();
}

TEST(SortEngineTest, AllStrategiesByteIdentical) {
  Engine engine(ParallelConfig());
  auto session = engine.CreateSession();
  LoadRows(&engine, "S", 20000);
  const std::string queries[] = {
      "SELECT ID, V FROM S ORDER BY V DESC, ID",
      "SELECT S, GRP, ID FROM S ORDER BY S, GRP DESC, ID",
      "SELECT ID, GRP, V FROM S ORDER BY GRP, V DESC LIMIT 37 OFFSET 11",
      "SELECT ID FROM S ORDER BY V, ID LIMIT 100",
      "SELECT ID, V FROM S WHERE GRP < 40 ORDER BY V LIMIT 60",
  };
  for (const std::string& sql : queries) {
    // Baseline: the serial stable_sort oracle with Top-N fusion disabled.
    Set(engine, session.get(), "SET SORT SERIAL");
    Set(engine, session.get(), "SET TOPN OFF");
    Set(engine, session.get(), "SET DOP = 1");
    auto baseline = engine.Execute(session.get(), sql);
    ASSERT_TRUE(baseline.ok()) << sql << ": " << baseline.status().ToString();
    const std::string want = RowsKey(*baseline);
    for (const char* sort_mode : {"SET SORT PARALLEL"}) {
      for (const char* topn_mode : {"SET TOPN OFF", "SET TOPN ON"}) {
        for (int dop : {1, 4}) {
          Set(engine, session.get(), sort_mode);
          Set(engine, session.get(), topn_mode);
          Set(engine, session.get(), "SET DOP = " + std::to_string(dop));
          auto r = engine.Execute(session.get(), sql);
          ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
          EXPECT_EQ(RowsKey(*r), want)
              << sql << " under " << topn_mode << " dop=" << dop;
        }
      }
    }
  }
  // Restore defaults for any follow-on statements on this session.
  Set(engine, session.get(), "SET SORT PARALLEL");
  Set(engine, session.get(), "SET TOPN ON");
}

TEST(SortEngineTest, ExplainShowsStrategyAndMetricsAccumulate) {
  Engine engine(ParallelConfig());
  auto session = engine.CreateSession();
  LoadRows(&engine, "S", 20000);
  Set(engine, session.get(), "SET DOP = 4");

  // ORDER BY + LIMIT fuses into the bounded-heap Top-N.
  const uint64_t fused_before = CounterValue("exec.topn_fused");
  auto topn = engine.Execute(
      session.get(), "EXPLAIN ANALYZE SELECT ID FROM S ORDER BY V, ID LIMIT 5");
  ASSERT_TRUE(topn.ok()) << topn.status().ToString();
  EXPECT_NE(topn->message.find("TopN("), std::string::npos) << topn->message;
  EXPECT_NE(topn->message.find("strategy=topn"), std::string::npos)
      << topn->message;
  EXPECT_GT(CounterValue("exec.topn_fused"), fused_before);

  // Full sort reports the run/merge strategy and row counters.
  const uint64_t rows_before = CounterValue("exec.sort_rows");
  auto full = engine.Execute(
      session.get(), "EXPLAIN ANALYZE SELECT ID, V FROM S ORDER BY V, ID");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_NE(full->message.find("strategy=full"), std::string::npos)
      << full->message;
  EXPECT_NE(full->message.find("runs="), std::string::npos) << full->message;
  EXPECT_GE(CounterValue("exec.sort_rows"), rows_before + 20000);

  // SET SORT SERIAL pins the oracle path and says so in the plan.
  Set(engine, session.get(), "SET SORT SERIAL");
  auto serial = engine.Execute(
      session.get(), "EXPLAIN ANALYZE SELECT ID, V FROM S ORDER BY V, ID");
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_NE(serial->message.find("strategy=serial"), std::string::npos)
      << serial->message;
  Set(engine, session.get(), "SET SORT PARALLEL");

  // With fusion disabled the standalone LimitOp reports its child pulls.
  Set(engine, session.get(), "SET TOPN OFF");
  auto lim = engine.Execute(
      session.get(), "EXPLAIN ANALYZE SELECT ID FROM S ORDER BY V, ID LIMIT 5");
  ASSERT_TRUE(lim.ok()) << lim.status().ToString();
  EXPECT_NE(lim->message.find("pulls="), std::string::npos) << lim->message;
  Set(engine, session.get(), "SET TOPN ON");
}

TEST(SortEngineTest, CancellationStormMidSortAndMerge) {
  Engine engine(ParallelConfig());
  auto session = engine.CreateSession();
  LoadRows(&engine, "S", 20000);
  const std::string queries[] = {
      "SELECT ID, V FROM S ORDER BY V, ID",
      "SELECT ID FROM S ORDER BY V DESC, ID LIMIT 50",
  };
  for (const std::string& sql : queries) {
    for (int dop : {1, 4}) {
      Set(engine, session.get(), "SET DOP = " + std::to_string(dop));
      auto baseline = engine.Execute(session.get(), sql);
      ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
      const std::string want = RowsKey(*baseline);
      // Count the governor checks of one governed run, then sweep the trip
      // point across them so every abort site fires deterministically.
      auto probe = std::make_shared<QueryContext>();
      session->InjectNextQueryContext(probe);
      auto counted = engine.Execute(session.get(), sql);
      ASSERT_TRUE(counted.ok()) << counted.status().ToString();
      const uint64_t total = probe->checks();
      ASSERT_GT(total, 0u) << sql;
      const uint64_t stride = std::max<uint64_t>(1, total / 40);
      uint64_t cancelled_runs = 0;
      for (uint64_t n = 1; n <= total; n += stride) {
        auto qc = std::make_shared<QueryContext>();
        qc->CancelAfterChecks(n);
        session->InjectNextQueryContext(qc);
        auto r = engine.Execute(session.get(), sql);
        if (r.ok()) {
          EXPECT_EQ(RowsKey(*r), want) << sql << " n=" << n;
        } else {
          EXPECT_TRUE(r.status().IsCancelled())
              << sql << " n=" << n << ": " << r.status().ToString();
          ++cancelled_runs;
        }
      }
      EXPECT_GT(cancelled_runs, 0u) << sql << " dop=" << dop;
      // Engine healthy after the storm: rerun is byte-identical.
      auto after = engine.Execute(session.get(), sql);
      ASSERT_TRUE(after.ok()) << after.status().ToString();
      EXPECT_EQ(RowsKey(*after), want);
    }
  }
}

// ------------------------------------------------------------ MPP level --

TEST(SortMppTest, OrderByPushdownMergesPresortedShardStreams) {
  auto db = corpus::MakeLoadedDb(1);
  const uint64_t streams_before = CounterValue("mpp.merge_streams");
  auto r = db->Execute("SELECT ID, V FROM T ORDER BY V, ID LIMIT 31");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 4 nodes x 2 shards: the coordinator merged 8 pre-sorted streams
  // instead of re-sorting the gathered rows.
  EXPECT_EQ(CounterValue("mpp.merge_streams"), streams_before + 8);
  ASSERT_EQ(r->result.rows.num_rows(), 31u);
  // Oracle: the generator formula V = ID * 31 % 101 over ID in [0, 400).
  std::vector<std::pair<int64_t, int64_t>> oracle;
  for (int64_t id = 0; id < 400; ++id) oracle.emplace_back(id * 31 % 101, id);
  std::sort(oracle.begin(), oracle.end());
  for (size_t i = 0; i < 31; ++i) {
    EXPECT_EQ(r->result.rows.columns[0].GetInt(i), oracle[i].second) << i;
    EXPECT_EQ(r->result.rows.columns[1].GetInt(i), oracle[i].first) << i;
  }

  // The shard-local plans in EXPLAIN ANALYZE show the pushed-down Top-N.
  auto analyzed =
      db->Execute("EXPLAIN ANALYZE SELECT ID, V FROM T ORDER BY V, ID LIMIT 31");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(analyzed->result.message.find("TopN("), std::string::npos)
      << analyzed->result.message;
  EXPECT_NE(analyzed->result.message.find("strategy=topn"), std::string::npos)
      << analyzed->result.message;
  EXPECT_EQ(corpus::ResultKey(analyzed->result), corpus::ResultKey(r->result));
}

TEST(SortMppTest, OrderByOffsetBeyondShardRows) {
  auto db = corpus::MakeLoadedDb(1);
  auto tail = db->Execute("SELECT ID FROM T ORDER BY ID LIMIT 10 OFFSET 395");
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  ASSERT_EQ(tail->result.rows.num_rows(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(tail->result.rows.columns[0].GetInt(i),
              static_cast<int64_t>(395 + i));
  }
  auto past = db->Execute("SELECT ID FROM T ORDER BY ID LIMIT 10 OFFSET 1000");
  ASSERT_TRUE(past.ok()) << past.status().ToString();
  EXPECT_EQ(past->result.rows.num_rows(), 0u);
}

TEST(SortMppTest, OrderBySelectListExpressionIsPushedDown) {
  auto db = corpus::MakeLoadedDb(1);
  // Pre-PR this shape was rejected ("MPP ORDER BY supports output columns
  // / ordinals"); now any select-list expression is a valid sort key.
  auto r = db->Execute(
      "SELECT ID, V + CAT FROM T WHERE V >= 10 ORDER BY V + CAT DESC, ID "
      "LIMIT 12");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->result.rows.num_rows(), 12u);
  for (size_t i = 1; i < 12; ++i) {
    EXPECT_GE(r->result.rows.columns[1].GetInt(i - 1),
              r->result.rows.columns[1].GetInt(i));
  }
}

TEST(SortMppTest, OrderByForeignExpressionReportsTypedError) {
  auto db = corpus::MakeLoadedDb(1);
  auto r = db->Execute("SELECT ID, V FROM T ORDER BY V * GRP");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("select-list expressions"),
            std::string::npos)
      << r.status().ToString();
}

TEST(SortMppTest, SortKnobsBroadcastToShards) {
  auto db = corpus::MakeLoadedDb(1);
  auto want = db->Execute("SELECT ID, V, S FROM T ORDER BY V DESC, ID LIMIT 31");
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  // Shard-local serial sorts + no Top-N fusion must still merge to the
  // byte-identical answer (the oracle arms of the bench).
  ASSERT_TRUE(db->Execute("SET SORT SERIAL").ok());
  ASSERT_TRUE(db->Execute("SET TOPN OFF").ok());
  auto got = db->Execute("SELECT ID, V, S FROM T ORDER BY V DESC, ID LIMIT 31");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(corpus::ResultKey(got->result), corpus::ResultKey(want->result));
  ASSERT_TRUE(db->Execute("SET SORT PARALLEL").ok());
  ASSERT_TRUE(db->Execute("SET TOPN ON").ok());
}

}  // namespace
}  // namespace dashdb
