// Tests for the SQL/MM geospatial surface (paper II.C.5).
#include <gtest/gtest.h>

#include "exec/geo.h"
#include "sql/engine.h"

namespace dashdb {
namespace {

TEST(GeoTest, WktRoundTrip) {
  auto p = geo::ParseWkt("POINT(1.5 -2)");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->kind, geo::GeomKind::kPoint);
  EXPECT_DOUBLE_EQ(p->points[0].x, 1.5);
  auto l = geo::ParseWkt("LINESTRING(0 0, 3 4)");
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l->points.size(), 2u);
  auto poly = geo::ParseWkt("POLYGON((0 0, 4 0, 4 4, 0 4, 0 0))");
  ASSERT_TRUE(poly.ok());
  EXPECT_EQ(poly->points.size(), 4u);  // closing vertex dropped
  EXPECT_FALSE(geo::ParseWkt("CIRCLE(0 0, 5)").ok());
  EXPECT_FALSE(geo::ParseWkt("POINT(1)").ok());
}

TEST(GeoTest, DistanceAndLength) {
  auto a = *geo::ParseWkt("POINT(0 0)");
  auto b = *geo::ParseWkt("POINT(3 4)");
  EXPECT_DOUBLE_EQ(geo::Distance(a, b), 5.0);
  auto line = *geo::ParseWkt("LINESTRING(0 0, 3 4, 3 10)");
  EXPECT_DOUBLE_EQ(geo::Length(line), 11.0);
  // Point-to-segment distance.
  auto seg = *geo::ParseWkt("LINESTRING(0 0, 10 0)");
  auto p = *geo::ParseWkt("POINT(5 2)");
  EXPECT_DOUBLE_EQ(geo::Distance(p, seg), 2.0);
}

TEST(GeoTest, ContainsAndArea) {
  auto square = *geo::ParseWkt("POLYGON((0 0, 10 0, 10 10, 0 10, 0 0))");
  EXPECT_TRUE(geo::Contains(square, {5, 5}));
  EXPECT_FALSE(geo::Contains(square, {15, 5}));
  EXPECT_TRUE(geo::Contains(square, {0, 5})) << "boundary counts";
  EXPECT_DOUBLE_EQ(geo::Area(square), 100.0);
  // Point inside a polygon has distance 0.
  auto p = *geo::ParseWkt("POINT(5 5)");
  EXPECT_DOUBLE_EQ(geo::Distance(p, square), 0.0);
}

TEST(GeoTest, SqlSurface) {
  Engine engine;
  auto session = engine.CreateSession();
  auto exec = [&](const std::string& sql) {
    auto r = engine.Execute(session.get(), sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? r->rows.columns[0].GetValue(0) : Value();
  };
  EXPECT_EQ(exec("SELECT ST_POINT(1, 2) FROM dual").AsString(), "POINT(1 2)");
  EXPECT_DOUBLE_EQ(
      exec("SELECT ST_DISTANCE(ST_POINT(0,0), ST_POINT(3,4)) FROM dual")
          .AsDouble(),
      5.0);
  EXPECT_TRUE(exec("SELECT ST_CONTAINS('POLYGON((0 0, 2 0, 2 2, 0 2, 0 0))', "
                   "ST_POINT(1, 1)) FROM dual")
                  .AsBool());
  EXPECT_TRUE(exec("SELECT ST_WITHIN(ST_POINT(1, 1), "
                   "'POLYGON((0 0, 2 0, 2 2, 0 2, 0 0))') FROM dual")
                  .AsBool());
  EXPECT_DOUBLE_EQ(
      exec("SELECT ST_AREA('POLYGON((0 0, 4 0, 4 4, 0 4, 0 0))') FROM dual")
          .AsDouble(),
      16.0);
  EXPECT_DOUBLE_EQ(exec("SELECT ST_X(ST_POINT(7, 9)) FROM dual").AsDouble(),
                   7.0);
}

TEST(GeoTest, SpatialFilterOverTable) {
  // A geofencing query: which stores fall inside a region.
  Engine engine;
  auto session = engine.CreateSession();
  ASSERT_TRUE(engine
                  .Execute(session.get(),
                           "CREATE TABLE stores (id INT, loc VARCHAR(60))")
                  .ok());
  for (int i = 0; i < 20; ++i) {
    std::string wkt = "POINT(" + std::to_string(i) + " " + std::to_string(i) +
                      ")";
    ASSERT_TRUE(engine
                    .Execute(session.get(),
                             "INSERT INTO stores VALUES (" +
                                 std::to_string(i) + ", '" + wkt + "')")
                    .ok());
  }
  auto r = engine.Execute(
      session.get(),
      "SELECT COUNT(*) FROM stores WHERE "
      "ST_CONTAINS('POLYGON((0 0, 5 0, 5 5, 0 5, 0 0))', loc)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.columns[0].GetInt(0), 6);  // points (0,0)..(5,5)
}

}  // namespace
}  // namespace dashdb
