// Query lifecycle governance (DESIGN.md "Query governance"): cooperative
// cancellation at every morsel/batch boundary, statement deadlines, memory
// budgets with clean kResourceExhausted aborts, and admission control —
// exercised at DOP 1 and 4, through the MPP coordinator, and over fluid
// remote scans. The cancellation storm sweeps a deterministic trip point
// across every governor check of a query, so each abort site is hit without
// racing a second thread; a real cross-thread CANCEL is drilled separately.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/query_context.h"
#include "common/threadpool.h"
#include "exec/admission.h"
#include "fluid/nickname.h"
#include "fluid/remote_store.h"
#include "mpp/mpp.h"
#include "sql/engine.h"

namespace dashdb {
namespace {

uint64_t CounterValue(const char* name) {
  return MetricRegistry::Global().GetCounter(name)->value();
}

/// Canonical string form of a single-node result.
std::string RowsKey(const QueryResult& r) {
  std::ostringstream os;
  for (const auto& c : r.columns) os << c.name << '|';
  os << '\n';
  for (size_t i = 0; i < r.rows.num_rows(); ++i) {
    for (size_t c = 0; c < r.rows.columns.size(); ++c) {
      os << r.rows.columns[c].GetValue(i).ToString() << '|';
    }
    os << '\n';
  }
  return os.str();
}

std::string MppKey(const MppQueryResult& r) { return RowsKey(r.result); }

EngineConfig ParallelConfig() {
  EngineConfig cfg;
  cfg.query_parallelism = 8;
  return cfg;
}

/// Loads an ID/GRP/V column table with `n` rows.
void LoadRows(Engine* engine, const std::string& name, int64_t n) {
  TableSchema schema("PUBLIC", name,
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"GRP", TypeId::kInt64, true, 0, false},
                      {"V", TypeId::kInt64, true, 0, false}});
  auto t = engine->CreateColumnTable(schema);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  RowBatch rows;
  for (int c = 0; c < 3; ++c) rows.columns.emplace_back(TypeId::kInt64);
  for (int64_t i = 0; i < n; ++i) {
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendInt(i % 97);
    rows.columns[2].AppendInt(i * 31 % 101);
  }
  ASSERT_TRUE(t.value()->Append(rows).ok());
}

Result<QueryResult> Exec(Engine& e, Session* s, const std::string& sql) {
  return e.Execute(s, sql);
}

void SetDop(Engine& e, Session* s, int dop) {
  auto r = e.Execute(s, "SET DOP = " + std::to_string(dop));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

/// Runs `sql` under an injected governor and returns the checks it made.
uint64_t GovernedChecks(Engine& e, Session* s, const std::string& sql,
                        std::string* key = nullptr) {
  auto qc = std::make_shared<QueryContext>();
  s->InjectNextQueryContext(qc);
  auto r = e.Execute(s, sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (r.ok() && key != nullptr) *key = RowsKey(*r);
  return qc->checks();
}

class GovernorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().ResetForTest();
    MetricRegistry::Global().ResetForTest();
  }
  void TearDown() override { FaultInjector::Global().ResetForTest(); }
};

// ---------------------------------------------------------------------------
// Governed ParallelFor

TEST_F(GovernorTest, ParallelForAbandonsTailOnCancel) {
  ThreadPool pool(4);
  QueryContext qc;
  qc.CancelAfterChecks(8);
  std::atomic<size_t> ran{0};
  // Returns normally with the tail abandoned — callers re-probe their own
  // governor to observe the abort.
  pool.ParallelFor(100000, [&](size_t) { ran.fetch_add(1); }, 4, &qc);
  EXPECT_LT(ran.load(), 100000u);
  EXPECT_TRUE(qc.cancelled());
}

TEST_F(GovernorTest, ParallelForInlinePathChecksPerItem) {
  ThreadPool pool(4);
  QueryContext qc;
  qc.CancelAfterChecks(5);
  std::atomic<size_t> ran{0};
  // max_workers=1 runs inline: exactly the items before the tripping check.
  pool.ParallelFor(100, [&](size_t) { ran.fetch_add(1); }, 1, &qc);
  EXPECT_EQ(ran.load(), 4u);
}

// ---------------------------------------------------------------------------
// Cancellation storm: trip at EVERY governor check of a scan, a join, and
// an aggregation, at DOP 1 and DOP 4. Every run must either fail kCancelled
// or (when the trip lands past the query's last check) return the baseline
// result; the engine must stay healthy throughout.

TEST_F(GovernorTest, CancellationStormAtEveryCheck) {
  Engine engine(ParallelConfig());
  auto session = engine.CreateSession();
  LoadRows(&engine, "S", 30000);
  const std::string queries[] = {
      "SELECT COUNT(*) FROM S WHERE V > 50",
      "SELECT COUNT(*) FROM S A, S B WHERE A.ID = B.ID",
      "SELECT GRP, COUNT(*), SUM(V) FROM S GROUP BY GRP ORDER BY GRP",
  };
  for (const std::string& sql : queries) {
    for (int dop : {1, 4}) {
      SetDop(engine, session.get(), dop);
      auto baseline = Exec(engine, session.get(), sql);
      ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
      const std::string want = RowsKey(*baseline);
      const uint64_t total = GovernedChecks(engine, session.get(), sql);
      ASSERT_GT(total, 0u);
      uint64_t cancelled_runs = 0;
      for (uint64_t n = 1; n <= total; ++n) {
        auto qc = std::make_shared<QueryContext>();
        qc->CancelAfterChecks(n);
        session->InjectNextQueryContext(qc);
        auto r = engine.Execute(session.get(), sql);
        if (r.ok()) {
          // DOP 4 check counts vary run to run; a late trip can miss.
          EXPECT_EQ(RowsKey(*r), want) << sql << " n=" << n;
        } else {
          EXPECT_TRUE(r.status().IsCancelled())
              << sql << " n=" << n << ": " << r.status().ToString();
          ++cancelled_runs;
        }
      }
      EXPECT_GT(cancelled_runs, 0u) << sql << " dop=" << dop;
      // Engine healthy after the storm: ungoverned rerun is byte-identical.
      auto after = Exec(engine, session.get(), sql);
      ASSERT_TRUE(after.ok()) << after.status().ToString();
      EXPECT_EQ(RowsKey(*after), want);
    }
  }
  EXPECT_GT(CounterValue("exec.cancelled"), 0u);
}

// ---------------------------------------------------------------------------
// 1M-row promptness: a cancel tripping on an early check must stop the
// query after a bounded number of further checks (the in-flight morsels),
// not run it to completion — at DOP 1 and 4, for scan/join/agg shapes.

TEST_F(GovernorTest, MillionRowQueriesCancelWithinOneMorsel) {
  Engine engine(ParallelConfig());
  auto session = engine.CreateSession();
  LoadRows(&engine, "BIG", 1000000);
  const std::string queries[] = {
      "SELECT COUNT(*) FROM BIG WHERE V > 50",
      "SELECT COUNT(*) FROM BIG A, BIG B WHERE A.ID = B.ID",
      "SELECT GRP, COUNT(*), SUM(V) FROM BIG GROUP BY GRP",
  };
  for (const std::string& sql : queries) {
    for (int dop : {1, 4}) {
      SetDop(engine, session.get(), dop);
      auto qc = std::make_shared<QueryContext>();
      qc->CancelAfterChecks(3);
      session->InjectNextQueryContext(qc);
      auto r = engine.Execute(session.get(), sql);
      ASSERT_FALSE(r.ok()) << sql << " dop=" << dop;
      EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
      // Stragglers may each consume a few more checks before observing the
      // flag, but the query must not have kept grinding morsels.
      EXPECT_LE(qc->checks(), 3u + 160u) << sql << " dop=" << dop;
    }
  }
}

TEST_F(GovernorTest, CrossThreadCancelDrainsCleanly) {
  Engine engine(ParallelConfig());
  auto session = engine.CreateSession();
  LoadRows(&engine, "BIG", 1000000);
  SetDop(engine, session.get(), 4);
  const std::string sql = "SELECT COUNT(*) FROM BIG A, BIG B WHERE A.ID = B.ID";
  for (int round = 0; round < 3; ++round) {
    std::thread killer([&] {
      for (;;) {
        auto qc = session->current_query();
        if (qc != nullptr && qc->checks() > 4) {
          EXPECT_TRUE(session->CancelCurrentQuery());
          return;
        }
        std::this_thread::yield();
      }
    });
    auto r = engine.Execute(session.get(), sql);
    killer.join();
    ASSERT_FALSE(r.ok()) << "round " << round;
    EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  }
  // All worker threads drained: the next statement runs normally.
  auto ok = Exec(engine, session.get(), "SELECT COUNT(*) FROM BIG");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->rows.columns[0].GetValue(0).AsInt(), 1000000);
}

// ---------------------------------------------------------------------------
// Deadlines

TEST_F(GovernorTest, StatementTimeoutTripsAndClears) {
  Engine engine(ParallelConfig());
  auto session = engine.CreateSession();
  LoadRows(&engine, "BIG", 1000000);
  SetDop(engine, session.get(), 4);
  const std::string sql = "SELECT GRP, COUNT(*), SUM(V) FROM BIG GROUP BY GRP";
  auto baseline = Exec(engine, session.get(), sql);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(Exec(engine, session.get(),
                   "SET STATEMENT_TIMEOUT = 0.000001").ok());
  auto r = engine.Execute(session.get(), sql);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout()) << r.status().ToString();
  EXPECT_GE(CounterValue("exec.statement_timeouts"), 1u);
  // Disarm; the session recovers byte-identically.
  ASSERT_TRUE(Exec(engine, session.get(), "SET STATEMENT_TIMEOUT NONE").ok());
  auto after = Exec(engine, session.get(), sql);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(RowsKey(*after), RowsKey(*baseline));
}

// ---------------------------------------------------------------------------
// Memory budgets

TEST_F(GovernorTest, MemBudgetExceededFailsCleanlyAndRecovers) {
  Engine engine(ParallelConfig());
  auto session = engine.CreateSession();
  LoadRows(&engine, "BIG", 1000000);
  SetDop(engine, session.get(), 4);
  const std::string sql = "SELECT GRP, COUNT(*), SUM(V) FROM BIG GROUP BY GRP";
  auto baseline = Exec(engine, session.get(), sql);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(Exec(engine, session.get(), "SET MEM_BUDGET = 10000").ok());
  auto r = engine.Execute(session.get(), sql);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("budget"), std::string::npos);
  EXPECT_GE(CounterValue("exec.mem_budget_exceeded"), 1u);
  // The engine stays healthy and the next (ungoverned) run is identical.
  ASSERT_TRUE(Exec(engine, session.get(), "SET MEM_BUDGET NONE").ok());
  auto after = Exec(engine, session.get(), sql);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(RowsKey(*after), RowsKey(*baseline));
}

TEST_F(GovernorTest, AllocPressureFaultPointDrills) {
  Engine engine(ParallelConfig());
  auto session = engine.CreateSession();
  LoadRows(&engine, "S", 30000);
  const std::string sql = "SELECT GRP, SUM(V) FROM S GROUP BY GRP";
  auto baseline = Exec(engine, session.get(), sql);
  ASSERT_TRUE(baseline.ok());
  FaultSpec pressure;
  pressure.code = StatusCode::kResourceExhausted;
  pressure.message = "simulated allocation pressure";
  pressure.max_fires = 1;
  FaultInjector::Global().Arm("exec.alloc_pressure", pressure);
  auto r = engine.Execute(session.get(), sql);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("allocation pressure"),
            std::string::npos);
  // One fire only: the next run succeeds, byte-identical.
  auto after = Exec(engine, session.get(), sql);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(RowsKey(*after), RowsKey(*baseline));
}

TEST_F(GovernorTest, ExplainAnalyzeReportsOperatorPeakBytes) {
  Engine engine(ParallelConfig());
  auto session = engine.CreateSession();
  LoadRows(&engine, "S", 30000);
  auto r = Exec(engine, session.get(),
                "EXPLAIN ANALYZE SELECT COUNT(*) FROM S A, S B "
                "WHERE A.ID = B.ID");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->message.find(" mem="), std::string::npos) << r->message;
}

// ---------------------------------------------------------------------------
// Admission control

TEST_F(GovernorTest, AdmissionShedsOnTimeoutAndQueueFull) {
  EngineConfig cfg = ParallelConfig();
  cfg.admission.cheap_slots = 0;
  cfg.admission.expensive_slots = 0;
  cfg.admission.queue_timeout_seconds = 0.02;
  Engine engine(cfg);
  auto session = engine.CreateSession();
  LoadRows(&engine, "S", 1000);
  // No slots at all: the wait times out and the query is shed.
  auto r = engine.Execute(session.get(), "SELECT COUNT(*) FROM S");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  EXPECT_GE(CounterValue("exec.admission_shed"), 1u);
  // Full queue: shed immediately instead of waiting.
  AdmissionConfig full = cfg.admission;
  full.max_queued = 0;
  engine.admission().Configure(full);
  auto r2 = engine.Execute(session.get(), "SELECT COUNT(*) FROM S");
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().ToString().find("queue full"), std::string::npos);
  // SET ADMISSION OFF bypasses the controller for this session.
  ASSERT_TRUE(Exec(engine, session.get(), "SET ADMISSION OFF").ok());
  auto r3 = engine.Execute(session.get(), "SELECT COUNT(*) FROM S");
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  EXPECT_EQ(r3->rows.columns[0].GetValue(0).AsInt(), 1000);
}

TEST_F(GovernorTest, AdmissionSlotsReleaseToWaiters) {
  AdmissionConfig cfg;
  cfg.cheap_slots = 1;
  cfg.queue_timeout_seconds = 5.0;
  AdmissionController ac(cfg);
  auto held = ac.Admit(QueryClass::kCheap);
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(ac.running(QueryClass::kCheap), 1);
  std::thread holder([tk = std::move(held).value()]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });  // ticket destroyed when the thread exits -> slot released
  auto waited = ac.Admit(QueryClass::kCheap);
  EXPECT_TRUE(waited.ok());
  holder.join();
  EXPECT_GE(CounterValue("exec.admission_queued"), 1u);
}

TEST_F(GovernorTest, AdmissionClassifiesByRootEstimate) {
  AdmissionController ac;
  EXPECT_EQ(ac.Classify(10.0), QueryClass::kCheap);
  EXPECT_EQ(ac.Classify(-1.0), QueryClass::kCheap);  // no estimate
  EXPECT_EQ(ac.Classify(1e6), QueryClass::kExpensive);
}

// ---------------------------------------------------------------------------
// SET knob parsing

TEST_F(GovernorTest, SessionKnobParsing) {
  Engine engine;
  auto session = engine.CreateSession();
  ASSERT_TRUE(Exec(engine, session.get(), "SET STATEMENT_TIMEOUT = 5").ok());
  EXPECT_DOUBLE_EQ(session->statement_timeout_seconds(), 5.0);
  ASSERT_TRUE(Exec(engine, session.get(), "SET STATEMENT_TIMEOUT NONE").ok());
  EXPECT_DOUBLE_EQ(session->statement_timeout_seconds(), 0.0);
  EXPECT_FALSE(Exec(engine, session.get(), "SET STATEMENT_TIMEOUT = -1").ok());
  ASSERT_TRUE(Exec(engine, session.get(), "SET MEM_BUDGET = 1048576").ok());
  EXPECT_EQ(session->mem_budget_bytes(), 1048576);
  ASSERT_TRUE(Exec(engine, session.get(), "SET MEM_BUDGET NONE").ok());
  EXPECT_EQ(session->mem_budget_bytes(), 0);
  EXPECT_FALSE(Exec(engine, session.get(), "SET MEM_BUDGET = -4").ok());
  ASSERT_TRUE(Exec(engine, session.get(), "SET ADMISSION OFF").ok());
  EXPECT_FALSE(session->admission_enabled());
  ASSERT_TRUE(Exec(engine, session.get(), "SET ADMISSION ON").ok());
  EXPECT_TRUE(session->admission_enabled());
  EXPECT_FALSE(Exec(engine, session.get(), "SET ADMISSION = MAYBE").ok());
}

// ---------------------------------------------------------------------------
// MPP: governed cluster execution

std::unique_ptr<MppDatabase> MakeMppDb() {
  auto db = std::make_unique<MppDatabase>(4, 2, 8, size_t{8} << 30);
  TableSchema schema("PUBLIC", "T",
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"GRP", TypeId::kInt64, true, 0, false},
                      {"V", TypeId::kInt64, true, 0, false}});
  schema.set_distribution_key(0);
  EXPECT_TRUE(db->CreateTable(schema).ok());
  RowBatch rows;
  for (int c = 0; c < 3; ++c) rows.columns.emplace_back(TypeId::kInt64);
  for (int i = 0; i < 4000; ++i) {
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendInt(i % 7);
    rows.columns[2].AppendInt(i * 31 % 101);
  }
  EXPECT_TRUE(db->Load("PUBLIC", "T", rows).ok());
  return db;
}

TEST_F(GovernorTest, MppCancellationStormAcrossShards) {
  auto db = MakeMppDb();
  const std::string queries[] = {
      "SELECT GRP, COUNT(*), SUM(V) FROM T GROUP BY GRP ORDER BY GRP",
      "SELECT ID, V FROM T ORDER BY ID LIMIT 25",
  };
  for (const std::string& sql : queries) {
    auto baseline = db->Execute(sql);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    const std::string want = MppKey(*baseline);
    auto probe = std::make_shared<QueryContext>();
    auto counted = db->Execute(sql, probe);
    ASSERT_TRUE(counted.ok());
    const uint64_t total = probe->checks();
    ASSERT_GT(total, 0u);
    uint64_t cancelled_runs = 0;
    for (uint64_t n = 1; n <= total; ++n) {
      auto qc = std::make_shared<QueryContext>();
      qc->CancelAfterChecks(n);
      auto r = db->Execute(sql, qc);
      if (r.ok()) {
        EXPECT_EQ(MppKey(*r), want) << sql << " n=" << n;
      } else {
        EXPECT_TRUE(r.status().IsCancelled())
            << sql << " n=" << n << ": " << r.status().ToString();
        ++cancelled_runs;
      }
    }
    EXPECT_GT(cancelled_runs, 0u) << sql;
    // Cluster healthy: the next ungoverned run is byte-identical.
    auto after = db->Execute(sql);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(MppKey(*after), want);
  }
}

TEST_F(GovernorTest, MppDeadlineAndBudget) {
  auto db = MakeMppDb();
  const std::string sql = "SELECT GRP, COUNT(*), SUM(V) FROM T GROUP BY GRP";
  auto baseline = db->Execute(sql);
  ASSERT_TRUE(baseline.ok());
  auto timed = std::make_shared<QueryContext>();
  timed->SetTimeout(1e-6);
  auto r = db->Execute(sql, timed);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout()) << r.status().ToString();
  auto tight = std::make_shared<QueryContext>();
  tight->SetMemBudget(64);
  auto r2 = db->Execute(sql, tight);
  ASSERT_FALSE(r2.ok());
  EXPECT_TRUE(r2.status().IsResourceExhausted()) << r2.status().ToString();
  auto after = db->Execute(sql);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(MppKey(*after), MppKey(*baseline));
}

TEST_F(GovernorTest, SpeculationActivelyCancelsLosingAttempt) {
  auto db = MakeMppDb();
  const std::string sql = "SELECT COUNT(*), SUM(V), MIN(V), MAX(V) FROM T";
  auto clean = db->Execute(sql);
  ASSERT_TRUE(clean.ok());
  db->failover_policy().straggler_after_seconds = 0.05;
  FaultInjector::Global().Reset(77);
  FaultSpec stall;
  stall.code = StatusCode::kOk;  // stall only
  stall.stall_seconds = 0.4;
  stall.max_fires = 1;
  FaultInjector::Global().Arm("mpp.shard_stall", stall);
  auto r = db->Execute(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(MppKey(*r), MppKey(*clean));
  EXPECT_EQ(r->exec.speculative_launches, 1u);
  EXPECT_EQ(r->exec.speculative_wins, 1u);
  EXPECT_EQ(r->exec.shard_retries, 0u);
  // The losing primary was actively cancelled (and joined), not abandoned.
  EXPECT_GE(CounterValue("exec.cancelled"), 1u);
}

// ---------------------------------------------------------------------------
// Fluid: governed remote scans

TEST_F(GovernorTest, RemoteScanCancelsAndChargesBudget) {
  Engine engine(ParallelConfig());
  auto session = engine.CreateSession();
  TableSchema rschema("PUBLIC", "RWEB",
                      {{"ID", TypeId::kInt64, false, 0, false},
                       {"V", TypeId::kInt64, true, 0, false}});
  auto store = std::make_shared<fluid::SimHadoopStore>(rschema);
  RowBatch rows;
  rows.columns.emplace_back(TypeId::kInt64);
  rows.columns.emplace_back(TypeId::kInt64);
  for (int i = 0; i < 20000; ++i) {
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendInt(i % 13);
  }
  ASSERT_TRUE(store->Load(rows).ok());
  ASSERT_TRUE(fluid::CreateNickname(&engine, "PUBLIC", "RWEB", store).ok());
  const std::string sql = "SELECT COUNT(*) FROM RWEB";
  auto baseline = Exec(engine, session.get(), sql);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(baseline->rows.columns[0].GetValue(0).AsInt(), 20000);
  // Cancel before the transfer starts: the retry loop must not run.
  auto qc = std::make_shared<QueryContext>();
  qc->CancelAfterChecks(1);
  session->InjectNextQueryContext(qc);
  auto r = engine.Execute(session.get(), sql);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  EXPECT_EQ(store->stats().failed_requests, 0u);
  // The materialized transfer charges the query budget.
  ASSERT_TRUE(Exec(engine, session.get(), "SET MEM_BUDGET = 1000").ok());
  auto r2 = engine.Execute(session.get(), sql);
  ASSERT_FALSE(r2.ok());
  EXPECT_TRUE(r2.status().IsResourceExhausted()) << r2.status().ToString();
  ASSERT_TRUE(Exec(engine, session.get(), "SET MEM_BUDGET NONE").ok());
  auto after = Exec(engine, session.get(), sql);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(RowsKey(*after), RowsKey(*baseline));
}

}  // namespace
}  // namespace dashdb
