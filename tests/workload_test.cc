// Tests for the benchmark workload generators: the customer workload's
// statement mix matches the paper's proportions, streams are deterministic
// and valid end-to-end on both engines, and mini TPC-DS loads + queries
// agree across engine configurations.
#include <gtest/gtest.h>

#include <map>

#include "workloads/customer_workload.h"
#include "workloads/tpcds_mini.h"

namespace dashdb {
namespace bench {
namespace {

TEST(CustomerWorkloadTest, MixMatchesPaperProportions) {
  CustomerScale scale;
  scale.num_statements = 20000;
  CustomerWorkload w(scale);
  auto stmts = w.MakeStatements();
  std::map<StmtClass, size_t> counts;
  for (const auto& s : stmts) ++counts[s.cls];
  const double total = static_cast<double>(stmts.size());
  // Paper: INSERT 86537 / UPDATE 55873 / DROP 46383 / SELECT 44914 /
  // CREATE 25572 / DELETE 2453 of 261749 total.
  EXPECT_NEAR(counts[StmtClass::kInsert] / total, 86537.0 / 261761, 0.02);
  EXPECT_NEAR(counts[StmtClass::kUpdate] / total, 55873.0 / 261761, 0.02);
  EXPECT_NEAR(counts[StmtClass::kSelect] / total, 44914.0 / 261761, 0.02);
  // DROP + CREATE together cover the staging-table lifecycle; their sum
  // matches the paper's combined share (CREATEs may substitute for DROPs
  // when no staging table is live yet).
  EXPECT_NEAR((counts[StmtClass::kDrop] + counts[StmtClass::kCreate]) / total,
              (46383.0 + 25572.0) / 261761, 0.02);
  EXPECT_GT(counts[StmtClass::kDelete], 0u);
}

TEST(CustomerWorkloadTest, DeterministicStream) {
  CustomerScale scale;
  scale.num_statements = 200;
  auto a = CustomerWorkload(scale).MakeStatements();
  auto b = CustomerWorkload(scale).MakeStatements();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].sql, b[i].sql);
}

TEST(CustomerWorkloadTest, StreamRunsCleanOnBothEngines) {
  CustomerScale scale;
  scale.schemas = 1;
  scale.tables_per_schema = 2;
  scale.rows_per_table = 3000;
  scale.num_statements = 150;
  CustomerWorkload w(scale);
  EngineConfig col_cfg;
  Engine columnar(col_cfg);
  EngineConfig row_cfg;
  row_cfg.default_organization = TableOrganization::kRow;
  Engine rowstore(row_cfg);
  ASSERT_TRUE(w.Setup(&columnar).ok());
  ASSERT_TRUE(w.Setup(&rowstore).ok());
  auto stmts = w.MakeStatements();
  auto t1 = CustomerWorkload::RunSerial(&columnar, stmts);
  ASSERT_TRUE(t1.ok()) << t1.status().ToString();
  auto t2 = CustomerWorkload::RunSerial(&rowstore, stmts);
  ASSERT_TRUE(t2.ok()) << t2.status().ToString();
  EXPECT_EQ(t1->size(), stmts.size());
  // Both engines end in the same logical state: row counts agree.
  auto s1 = columnar.CreateSession();
  auto s2 = rowstore.CreateSession();
  auto c1 = columnar.Execute(s1.get(), "SELECT COUNT(*) FROM fin0.positions0");
  auto c2 = rowstore.Execute(s2.get(), "SELECT COUNT(*) FROM fin0.positions0");
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_EQ(c1->rows.columns[0].GetInt(0), c2->rows.columns[0].GetInt(0));
}

TEST(CustomerWorkloadTest, ConcurrentRunMatchesSerialState) {
  CustomerScale scale;
  scale.schemas = 1;
  scale.tables_per_schema = 2;
  scale.rows_per_table = 2000;
  scale.num_statements = 120;
  CustomerWorkload w(scale);
  Engine serial_engine{EngineConfig{}};
  Engine conc_engine{EngineConfig{}};
  ASSERT_TRUE(w.Setup(&serial_engine).ok());
  ASSERT_TRUE(w.Setup(&conc_engine).ok());
  auto stmts = w.MakeStatements();
  ASSERT_TRUE(CustomerWorkload::RunSerial(&serial_engine, stmts).ok());
  ASSERT_TRUE(CustomerWorkload::RunConcurrent(&conc_engine, stmts, 10).ok());
  // NOTE: streams reorder statements, so end states can differ where
  // UPDATE ordering matters; COUNT-level invariants must still agree.
  auto s1 = serial_engine.CreateSession();
  auto s2 = conc_engine.CreateSession();
  auto c1 =
      serial_engine.Execute(s1.get(), "SELECT COUNT(*) FROM fin0.positions1");
  auto c2 =
      conc_engine.Execute(s2.get(), "SELECT COUNT(*) FROM fin0.positions1");
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_EQ(c1->rows.columns[0].GetInt(0), c2->rows.columns[0].GetInt(0));
}

TEST(TpcdsTest, LoadsAndAnswersConsistentlyAcrossConfigs) {
  TpcdsScale scale;
  scale.store_sales_rows = 20000;
  scale.customers = 2000;
  scale.items = 200;
  // dashDB columnar vs the naive competitor config vs the row appliance:
  // identical answers on every query.
  EngineConfig dash_cfg;
  EngineConfig naive_cfg;
  naive_cfg.operate_on_compressed = false;
  naive_cfg.use_synopsis = false;
  naive_cfg.use_swar = false;
  EngineConfig row_cfg;
  row_cfg.default_organization = TableOrganization::kRow;
  Engine dash(dash_cfg), naive(naive_cfg), rowstore(row_cfg);
  ASSERT_TRUE(LoadTpcds(&dash, scale, false).ok());
  ASSERT_TRUE(LoadTpcds(&naive, scale, false).ok());
  ASSERT_TRUE(LoadTpcds(&rowstore, scale, true).ok());
  auto queries = TpcdsQueries();
  auto s1 = dash.CreateSession();
  auto s2 = naive.CreateSession();
  auto s3 = rowstore.CreateSession();
  for (const auto& q : queries) {
    auto r1 = dash.Execute(s1.get(), q);
    auto r2 = naive.Execute(s2.get(), q);
    auto r3 = rowstore.Execute(s3.get(), q);
    ASSERT_TRUE(r1.ok()) << q << " -> " << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << q;
    ASSERT_TRUE(r3.ok()) << q;
    ASSERT_EQ(r1->rows.num_rows(), r2->rows.num_rows()) << q;
    ASSERT_EQ(r1->rows.num_rows(), r3->rows.num_rows()) << q;
    // Compare first row cell-by-cell (ordered queries => deterministic).
    if (r1->rows.num_rows() > 0) {
      for (size_t c = 0; c < r1->rows.columns.size(); ++c) {
        Value v1 = r1->rows.columns[c].GetValue(0);
        Value v2 = r2->rows.columns[c].GetValue(0);
        Value v3 = r3->rows.columns[c].GetValue(0);
        if (v1.type() == TypeId::kDouble && !v1.is_null()) {
          EXPECT_NEAR(v1.AsDouble(), v2.AsDouble(),
                      std::abs(v1.AsDouble()) * 1e-9 + 1e-9)
              << q;
          EXPECT_NEAR(v1.AsDouble(), v3.AsDouble(),
                      std::abs(v1.AsDouble()) * 1e-9 + 1e-9)
              << q;
        } else {
          EXPECT_EQ(v1.ToString(), v2.ToString()) << q << " col " << c;
          EXPECT_EQ(v1.ToString(), v3.ToString()) << q << " col " << c;
        }
      }
    }
  }
}

TEST(SpeedupReportTest, CompareLongestPicksSlowBaselineStatements) {
  std::vector<double> base = {0.001, 1.0, 0.002, 2.0, 0.003};
  std::vector<double> mine = {0.001, 0.1, 0.002, 0.1, 0.003};
  SpeedupReport rep = CompareLongest(base, mine, 0.4);
  EXPECT_EQ(rep.statements_compared, 2u);  // the 2.0s and 1.0s statements
  EXPECT_NEAR(rep.avg_speedup, (20.0 + 10.0) / 2, 1e-9);
  EXPECT_NEAR(rep.median_speedup, 20.0, 1e-9);  // upper middle of {10, 20}
}

}  // namespace
}  // namespace bench
}  // namespace dashdb
