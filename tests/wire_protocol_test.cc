// Wire-protocol conformance and hostile-input battery: the server must
// speak the framed protocol exactly (handshake, typed errors, prepared
// statements, out-of-band CANCEL) and must survive everything a broken or
// malicious client can throw at it — truncated frames, oversized lengths,
// garbage handshakes, mid-query disconnects, seeded frame fuzz — without
// crashing, leaking admission slots, or wedging other sessions. Runs under
// the ASan/TSan sweeps (label `serve`), so "survive" means sanitizer-clean.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/engine.h"

namespace dashdb {
namespace {

/// Raw TCP connection that speaks bytes, not frames — for sending exactly
/// the malformed input a WireClient never would.
class RawConn {
 public:
  ~RawConn() { Close(); }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval tv{2, 0};
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads until the server closes the connection (or the 2s receive
  /// timeout); returns everything received.
  std::string DrainUntilClose() {
    std::string out;
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

/// Loads an ID/GRP/V table big enough that a self-join takes real time —
/// the raw material for cancellation and disconnect tests.
void SeedBig(Engine* engine, const std::string& name, int64_t n) {
  TableSchema schema("PUBLIC", name,
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"GRP", TypeId::kInt64, true, 0, false},
                      {"V", TypeId::kInt64, true, 0, false}});
  auto t = engine->CreateColumnTable(schema);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  RowBatch rows;
  for (int c = 0; c < 3; ++c) rows.columns.emplace_back(TypeId::kInt64);
  for (int64_t i = 0; i < n; ++i) {
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendInt(i % 97);
    rows.columns[2].AppendInt(i * 31 % 101);
  }
  ASSERT_TRUE(t.value()->Append(rows).ok());
}

constexpr const char* kSlowJoin =
    "SELECT COUNT(*) FROM BIG A, BIG B WHERE A.ID = B.ID";

std::string U32Le(uint32_t v) {
  std::string s(4, '\0');
  s[0] = static_cast<char>(v & 0xff);
  s[1] = static_cast<char>((v >> 8) & 0xff);
  s[2] = static_cast<char>((v >> 16) & 0xff);
  s[3] = static_cast<char>((v >> 24) & 0xff);
  return s;
}

class WireProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineConfig cfg;
    cfg.query_parallelism = 2;
    engine_ = std::make_unique<Engine>(cfg);
    auto session = engine_->CreateSession();
    ASSERT_TRUE(
        engine_->Execute(session.get(), "CREATE TABLE ITEMS (ID BIGINT, V BIGINT)")
            .ok());
    for (int i = 0; i < 40; i += 8) {
      std::string sql = "INSERT INTO ITEMS VALUES";
      for (int j = i; j < i + 8; ++j) {
        sql += (j == i ? " (" : ", (") + std::to_string(j) + ", " +
               std::to_string(j * 31 % 101) + ")";
      }
      ASSERT_TRUE(engine_->Execute(session.get(), sql).ok());
    }
    backend_ = std::make_unique<EngineBackend>(engine_.get());
    server_ = std::make_unique<Server>(backend_.get());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  /// The ultimate liveness check after every hostile interaction: a fresh,
  /// well-behaved client still gets correct answers.
  void ExpectServerStillServes() {
    WireClient c;
    ASSERT_TRUE(c.Connect(server_->port()).ok());
    auto r = c.Query("SELECT COUNT(*) FROM ITEMS");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows.columns[0].GetValue(0).AsInt(), 40);
  }

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<EngineBackend> backend_;
  std::unique_ptr<Server> server_;
};

TEST_F(WireProtocolTest, HandshakeNegotiatesDialect) {
  WireClient ansi;
  EXPECT_TRUE(ansi.Connect(server_->port(), "ANSI").ok());
  WireClient oracle;
  EXPECT_TRUE(oracle.Connect(server_->port(), "ORACLE").ok());
  // Oracle dialect is actually in force on the session: empty string is
  // NULL under Oracle semantics, a plain literal elsewhere.
  auto r = oracle.Query("SELECT COUNT(*) FROM ITEMS WHERE '' IS NULL");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.columns[0].GetValue(0).AsInt(), 40);
  auto r2 = ansi.Query("SELECT COUNT(*) FROM ITEMS WHERE '' IS NULL");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->rows.columns[0].GetValue(0).AsInt(), 0);
}

TEST_F(WireProtocolTest, BadDialectAndBadVersionAreTypedErrors) {
  WireClient c;
  Status st = c.Connect(server_->port(), "KLINGON");
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(c.connected());

  // Wrong protocol version, hand-rolled (WireClient always sends the right
  // one): HELLO with version 99.
  RawConn raw;
  ASSERT_TRUE(raw.Connect(server_->port()));
  wire::Writer w;
  w.U8(wire::kHello);
  w.U8(99);
  w.Str("ANSI");
  ASSERT_TRUE(raw.Send(wire::Frame(w.payload())));
  std::string reply = raw.DrainUntilClose();
  // 4-byte length, then payload starting with the ERROR tag.
  ASSERT_GE(reply.size(), size_t{5});
  EXPECT_EQ(static_cast<uint8_t>(reply[4]), wire::kError);
  ExpectServerStillServes();
}

TEST_F(WireProtocolTest, SqlErrorsAreTypedAndConnectionSurvives) {
  WireClient c;
  ASSERT_TRUE(c.Connect(server_->port()).ok());
  auto parse = c.Query("SELEC COUNT(*) FROM ITEMS");
  ASSERT_FALSE(parse.ok());
  EXPECT_EQ(parse.status().code(), StatusCode::kParseError)
      << parse.status().ToString();
  auto missing = c.Query("SELECT COUNT(*) FROM NO_SUCH_TABLE");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound)
      << missing.status().ToString();
  // Same connection, unharmed.
  auto r = c.Query("SELECT COUNT(*) FROM ITEMS");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.columns[0].GetValue(0).AsInt(), 40);
}

TEST_F(WireProtocolTest, PrepareExecuteRoundTrip) {
  WireClient c;
  ASSERT_TRUE(c.Connect(server_->port()).ok());
  auto nparams = c.Prepare("byv", "SELECT COUNT(*) FROM ITEMS WHERE V > ?");
  ASSERT_TRUE(nparams.ok()) << nparams.status().ToString();
  EXPECT_EQ(*nparams, 1);

  auto all = c.ExecutePrepared("byv", {Value::Int64(-1)});
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->rows.columns[0].GetValue(0).AsInt(), 40);
  auto none = c.ExecutePrepared("byv", {Value::Int64(1000)});
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->rows.columns[0].GetValue(0).AsInt(), 0);

  // Arity violations and unknown names are typed errors, not hangs.
  auto zero = c.ExecutePrepared("byv", {});
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kSemanticError);
  auto two = c.ExecutePrepared("byv", {Value::Int64(1), Value::Int64(2)});
  ASSERT_FALSE(two.ok());
  EXPECT_EQ(two.status().code(), StatusCode::kSemanticError);
  auto unknown = c.ExecutePrepared("nope", {});
  EXPECT_FALSE(unknown.ok());

  // The statement survives its own errors.
  auto again = c.ExecutePrepared("byv", {Value::Int64(50)});
  ASSERT_TRUE(again.ok());
}

TEST_F(WireProtocolTest, DoubleCancelWithNoQueryIsHarmless) {
  WireClient c;
  ASSERT_TRUE(c.Connect(server_->port()).ok());
  ASSERT_TRUE(c.SendCancel().ok());
  ASSERT_TRUE(c.SendCancel().ok());
  auto r = c.Query("SELECT COUNT(*) FROM ITEMS");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.columns[0].GetValue(0).AsInt(), 40);
}

TEST_F(WireProtocolTest, CancelAbortsInFlightQuery) {
  SeedBig(engine_.get(), "BIG", 1000000);
  WireClient c;
  ASSERT_TRUE(c.Connect(server_->port()).ok());
  std::atomic<bool> done{false};
  // CANCEL races the query start, so fire repeatedly until the query ends;
  // redundant CANCELs double as an idempotence check.
  std::thread canceller([&] {
    while (!done.load()) {
      (void)c.SendCancel();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  auto r = c.Query(kSlowJoin);
  done.store(true);
  canceller.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
      << r.status().ToString();
  // Connection and server both survive the abort.
  auto ok = c.Query("SELECT COUNT(*) FROM BIG");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->rows.columns[0].GetValue(0).AsInt(), 1000000);
}

TEST(WireProtocolAdmissionTest, MidQueryDisconnectFreesAdmissionSlot) {
  // One expensive slot in the whole engine: if the vanished client's slot
  // leaked, the follow-up query could never run.
  EngineConfig cfg;
  cfg.query_parallelism = 1;
  cfg.admission.cheap_slots = 1;
  cfg.admission.expensive_slots = 1;
  cfg.admission.expensive_est_rows = 0;  // every SELECT is expensive
  cfg.admission.max_queued = 4;
  cfg.admission.queue_timeout_seconds = 20.0;
  Engine engine(cfg);
  SeedBig(&engine, "BIG", 1000000);
  EngineBackend backend(&engine);
  Server server(&backend);
  ASSERT_TRUE(server.Start().ok());

  WireClient victim;
  ASSERT_TRUE(victim.Connect(server.port()).ok());
  std::atomic<bool> victim_done{false};
  std::thread runner([&] {
    // Blocks in recv until the abort tears the connection down under it.
    auto r = victim.Query(kSlowJoin);
    EXPECT_FALSE(r.ok());
    victim_done.store(true);
  });
  // Wait until the victim actually holds the expensive slot.
  for (int i = 0; i < 2000 && engine.admission().running(QueryClass::kExpensive) == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(engine.admission().running(QueryClass::kExpensive), 1);

  victim.Abort();  // vanish mid-query, no BYE

  // The slot must come back: a second client's query — carrying a plan
  // estimate, so itself expensive-class under the 0-row threshold — can
  // only run once the vanished client's ticket is released.
  WireClient next;
  ASSERT_TRUE(next.Connect(server.port()).ok());
  auto r = next.Query("SELECT COUNT(*), SUM(V) FROM BIG WHERE V >= 0");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.columns[0].GetValue(0).AsInt(), 1000000);

  runner.join();
  EXPECT_TRUE(victim_done.load());
  // The client sees EOF the instant the socket dies, but the server-side
  // statement drains asynchronously — wait for the ticket to come home.
  for (int i = 0; i < 2000 && engine.admission().running(QueryClass::kExpensive) != 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(engine.admission().running(QueryClass::kExpensive), 0);
  EXPECT_EQ(engine.admission().queued(), 0);
  server.Stop();
}

TEST_F(WireProtocolTest, TruncatedFrameThenDisconnectIsHarmless) {
  RawConn raw;
  ASSERT_TRUE(raw.Connect(server_->port()));
  // Claim 100 bytes, deliver 10, vanish.
  ASSERT_TRUE(raw.Send(U32Le(100) + std::string(10, 'x')));
  raw.Close();
  ExpectServerStillServes();
}

TEST_F(WireProtocolTest, OversizedFrameLengthIsRejected) {
  MetricDeltaScope metrics;
  RawConn raw;
  ASSERT_TRUE(raw.Connect(server_->port()));
  ASSERT_TRUE(raw.Send(U32Le(0x7fffffffu)));
  std::string reply = raw.DrainUntilClose();  // error frame, then close
  ASSERT_GE(reply.size(), size_t{5});
  EXPECT_EQ(static_cast<uint8_t>(reply[4]), wire::kError);
  EXPECT_GE(metrics.Delta("server.protocol_errors"), 1);
  ExpectServerStillServes();
}

TEST_F(WireProtocolTest, ZeroLengthFrameIsRejected) {
  RawConn raw;
  ASSERT_TRUE(raw.Connect(server_->port()));
  ASSERT_TRUE(raw.Send(U32Le(0)));
  std::string reply = raw.DrainUntilClose();
  ASSERT_GE(reply.size(), size_t{5});
  EXPECT_EQ(static_cast<uint8_t>(reply[4]), wire::kError);
  ExpectServerStillServes();
}

TEST_F(WireProtocolTest, GarbageHandshakeIsRejected) {
  RawConn raw;
  ASSERT_TRUE(raw.Connect(server_->port()));
  ASSERT_TRUE(raw.Send(wire::Frame("\x37 utter garbage, not a hello")));
  std::string reply = raw.DrainUntilClose();
  ASSERT_GE(reply.size(), size_t{5});
  EXPECT_EQ(static_cast<uint8_t>(reply[4]), wire::kError);
  ExpectServerStillServes();
}

TEST_F(WireProtocolTest, QueryBeforeHelloIsRejected) {
  RawConn raw;
  ASSERT_TRUE(raw.Connect(server_->port()));
  wire::Writer w;
  w.U8(wire::kQuery);
  w.Str("SELECT COUNT(*) FROM ITEMS");
  ASSERT_TRUE(raw.Send(wire::Frame(w.payload())));
  std::string reply = raw.DrainUntilClose();
  ASSERT_GE(reply.size(), size_t{5});
  EXPECT_EQ(static_cast<uint8_t>(reply[4]), wire::kError);
  ExpectServerStillServes();
}

TEST_F(WireProtocolTest, TruncatedHelloPayloadIsRejected) {
  RawConn raw;
  ASSERT_TRUE(raw.Connect(server_->port()));
  // HELLO whose declared string length runs past the frame end.
  wire::Writer w;
  w.U8(wire::kHello);
  w.U8(wire::kProtocolVersion);
  w.U32(1000);  // string length with no bytes behind it
  ASSERT_TRUE(raw.Send(wire::Frame(w.payload())));
  std::string reply = raw.DrainUntilClose();
  ASSERT_GE(reply.size(), size_t{5});
  EXPECT_EQ(static_cast<uint8_t>(reply[4]), wire::kError);
  ExpectServerStillServes();
}

TEST_F(WireProtocolTest, SeededFrameFuzzNeverCrashesServer) {
  // Deterministic fuzz: 200 connections each hurl a few random "frames" —
  // random lengths (occasionally huge or zero), random payload bytes,
  // sometimes truncated mid-frame, sometimes after a valid HELLO. The only
  // acceptable outcomes are a typed error or a dropped connection; the
  // server must stay up and sanitizer-clean throughout.
  std::mt19937 rng(0xda5bdb01u);
  for (int iter = 0; iter < 200; ++iter) {
    RawConn raw;
    ASSERT_TRUE(raw.Connect(server_->port())) << "iteration " << iter;
    if (iter % 3 == 0) {
      // Valid handshake first, so fuzz also exercises post-HELLO dispatch.
      wire::Writer hello;
      hello.U8(wire::kHello);
      hello.U8(wire::kProtocolVersion);
      hello.Str("ANSI");
      raw.Send(wire::Frame(hello.payload()));
    }
    int nframes = 1 + static_cast<int>(rng() % 3);
    for (int f = 0; f < nframes; ++f) {
      uint32_t r = rng();
      uint32_t len;
      if (r % 7 == 0) {
        len = 0;
      } else if (r % 7 == 1) {
        len = 0x10000000u + (rng() % 0x1000u);  // far past max_frame
      } else {
        len = 1 + (rng() % 64);
      }
      std::string payload;
      uint32_t body = std::min<uint32_t>(len, 64);
      if (r % 5 == 0 && body > 0) body = rng() % body;  // truncate
      for (uint32_t i = 0; i < body; ++i) {
        payload.push_back(static_cast<char>(rng() & 0xff));
      }
      if (!raw.Send(U32Le(len) + payload)) break;  // server already hung up
    }
    // Alternate between reading the server's reaction and slamming the
    // connection shut immediately.
    if (iter % 2 == 0) raw.DrainUntilClose();
    raw.Close();
  }
  ExpectServerStillServes();
}

TEST_F(WireProtocolTest, ByeClosesCleanlyAndServerStaysUp) {
  MetricDeltaScope metrics;
  for (int i = 0; i < 5; ++i) {
    WireClient c;
    ASSERT_TRUE(c.Connect(server_->port()).ok());
    ASSERT_TRUE(c.Query("SELECT COUNT(*) FROM ITEMS").ok());
    c.Close();
  }
  ExpectServerStillServes();
  EXPECT_EQ(metrics.Delta("server.connections_accepted"), 6);  // 5 + liveness
}

}  // namespace
}  // namespace dashdb
