// Tests for the JSON analytics surface (paper Section VI future work).
#include <gtest/gtest.h>

#include "exec/json.h"
#include "sql/engine.h"

namespace dashdb {
namespace {

const char* kDoc = R"({
  "user": {"id": 42, "name": "ada", "vip": true, "score": 9.5},
  "tags": ["db", "ml", "hpc"],
  "events": [{"t": 1, "kind": "open"}, {"t": 2, "kind": "close"}],
  "note": "line1\nline2",
  "missing_value": null
})";

TEST(JsonTest, ScalarExtraction) {
  EXPECT_EQ(json::Extract(kDoc, "$.user.name")->AsString(), "ada");
  EXPECT_DOUBLE_EQ(json::Extract(kDoc, "$.user.id")->AsDouble(), 42.0);
  EXPECT_DOUBLE_EQ(json::Extract(kDoc, "$.user.score")->AsDouble(), 9.5);
  EXPECT_TRUE(json::Extract(kDoc, "$.user.vip")->AsBool());
  EXPECT_EQ(json::Extract(kDoc, "$.note")->AsString(), "line1\nline2");
}

TEST(JsonTest, NestedAndArrayPaths) {
  EXPECT_EQ(json::Extract(kDoc, "$.tags[1]")->AsString(), "ml");
  EXPECT_EQ(json::Extract(kDoc, "$.events[1].kind")->AsString(), "close");
  // Objects/arrays come back as JSON text.
  Value obj = *json::Extract(kDoc, "$.user");
  EXPECT_NE(obj.AsString().find("\"name\""), std::string::npos);
}

TEST(JsonTest, MissingPathsAreNullNotErrors) {
  EXPECT_TRUE(json::Extract(kDoc, "$.nope")->is_null());
  EXPECT_TRUE(json::Extract(kDoc, "$.user.nope")->is_null());
  EXPECT_TRUE(json::Extract(kDoc, "$.tags[9]")->is_null());
  EXPECT_TRUE(json::Extract(kDoc, "$.missing_value")->is_null());
  EXPECT_TRUE(json::Exists(kDoc, "$.user.name")->AsBool());
  EXPECT_FALSE(json::Exists(kDoc, "$.user.nope")->AsBool());
}

TEST(JsonTest, ArrayLength) {
  EXPECT_EQ(json::ArrayLength(kDoc, "$.tags")->AsInt(), 3);
  EXPECT_EQ(json::ArrayLength(kDoc, "$.events")->AsInt(), 2);
  EXPECT_TRUE(json::ArrayLength(kDoc, "$.user")->is_null());  // not an array
  EXPECT_EQ(json::ArrayLength("[1, 2, 3, 4]", "$")->AsInt(), 4);
  EXPECT_EQ(json::ArrayLength("[]", "$")->AsInt(), 0);
}

TEST(JsonTest, BadPathsError) {
  EXPECT_FALSE(json::Extract(kDoc, "user.name").ok());   // no leading $
  EXPECT_FALSE(json::Extract(kDoc, "$.tags[1").ok());    // missing ]
}

TEST(JsonTest, SqlSurface) {
  // Analytics over JSON event payloads, straight from SQL.
  Engine engine;
  auto session = engine.CreateSession();
  auto exec = [&](const std::string& sql) {
    auto r = engine.Execute(session.get(), sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *std::move(r) : QueryResult{};
  };
  exec("CREATE TABLE events (id INT, payload VARCHAR(200))");
  exec("INSERT INTO events VALUES "
       "(1, '{\"kind\": \"click\", \"ms\": 120, \"tags\": [1,2]}'), "
       "(2, '{\"kind\": \"view\",  \"ms\": 40}'), "
       "(3, '{\"kind\": \"click\", \"ms\": 80}')");
  QueryResult r = exec(
      "SELECT COUNT(*), AVG(TO_NUMBER(JSON_VALUE(payload, '$.ms'))) "
      "FROM events WHERE JSON_VALUE(payload, '$.kind') = 'click'");
  EXPECT_EQ(r.rows.columns[0].GetInt(0), 2);
  EXPECT_DOUBLE_EQ(r.rows.columns[1].GetDouble(0), 100.0);
  QueryResult l = exec(
      "SELECT JSON_ARRAY_LENGTH(payload, '$.tags') FROM events WHERE id = 1");
  EXPECT_EQ(l.rows.columns[0].GetInt(0), 2);
  QueryResult e = exec(
      "SELECT COUNT(*) FROM events WHERE JSON_EXISTS(payload, '$.tags')");
  EXPECT_EQ(e.rows.columns[0].GetInt(0), 1);
}

}  // namespace
}  // namespace dashdb
