// Tests for the storage I/O cost model (DESIGN.md substitutions): scans
// charge modeled read time on buffer-pool misses; hits are free; row scans
// pay full-row pages while column scans pay only active columns; index
// scans pay seeks; and with the model disabled nothing is charged.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/engine.h"

namespace dashdb {
namespace {

EngineConfig WithIo(TableOrganization org, IoModel model,
                    size_t pool = size_t{1} << 20) {
  EngineConfig cfg;
  cfg.buffer_pool_bytes = pool;
  cfg.default_organization = org;
  cfg.io_model = model;
  return cfg;
}

void LoadWide(Engine* engine, size_t rows) {
  std::vector<ColumnDef> cols = {{"ID", TypeId::kInt64, false, 0, false},
                                 {"V", TypeId::kInt64, true, 0, false}};
  for (int f = 0; f < 8; ++f) {
    cols.push_back({"F" + std::to_string(f), TypeId::kInt64, true, 0, false});
  }
  TableSchema schema("PUBLIC", "T", cols, engine->config().default_organization);
  RowBatch b;
  for (const auto& c : schema.columns()) b.columns.emplace_back(c.type);
  Rng rng(1);
  for (size_t i = 0; i < rows; ++i) {
    b.columns[0].AppendInt(static_cast<int64_t>(i));
    b.columns[1].AppendInt(rng.Range(0, 100));
    for (int f = 0; f < 8; ++f) {
      b.columns[2 + f].AppendInt(rng.Range(0, 1000000));
    }
  }
  if (engine->config().default_organization == TableOrganization::kRow) {
    auto t = *engine->CreateRowTable(schema);
    ASSERT_TRUE(t->Append(b).ok());
    ASSERT_TRUE(t->CreateIndex(0).ok());
  } else {
    auto t = *engine->CreateColumnTable(schema);
    ASSERT_TRUE(t->Load(b).ok());
  }
}

double QueryIo(Engine* engine, const std::string& sql) {
  auto session = engine->CreateSession();
  (void)engine->TakeIoSeconds();
  auto r = engine->Execute(session.get(), sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return engine->TakeIoSeconds();
}

TEST(IoModelTest, DisabledChargesNothing) {
  Engine e(WithIo(TableOrganization::kColumn, IoModel::None()));
  LoadWide(&e, 50000);
  EXPECT_DOUBLE_EQ(QueryIo(&e, "SELECT SUM(v) FROM t"), 0.0);
}

TEST(IoModelTest, CostNanosArithmetic) {
  IoModel hdd = IoModel::Hdd();
  // 150 MB at 150 MB/s = 1 second.
  EXPECT_NEAR(hdd.CostNanos(150'000'000) * 1e-9, 1.0, 1e-6);
  // A pure seek costs 8 ms.
  EXPECT_NEAR(hdd.CostNanos(0, 1) * 1e-9, 0.008, 1e-9);
  EXPECT_EQ(IoModel::None().CostNanos(1 << 30, 100), 0u);
}

TEST(IoModelTest, ColumnScanChargesOnlyActiveColumns) {
  // 10-column table, query touches 1 column: the charge must reflect one
  // column's compressed pages, far below the full table footprint.
  Engine e(WithIo(TableOrganization::kColumn, IoModel::Ssd(), 1 << 10));
  LoadWide(&e, 200000);
  double io = QueryIo(&e, "SELECT SUM(v) FROM t");
  EXPECT_GT(io, 0.0);
  auto entry = *e.GetTable("PUBLIC", "T");
  auto table = std::dynamic_pointer_cast<ColumnTable>(entry->storage);
  double full_table_io =
      IoModel::Ssd().CostNanos(table->CompressedBytes()) * 1e-9;
  EXPECT_LT(io, full_table_io / 3)
      << "single-column scan must not pay for the whole table";
}

TEST(IoModelTest, RowScanPaysFullRowsRegardlessOfProjection) {
  Engine e(WithIo(TableOrganization::kRow, IoModel::Hdd(), 1 << 10));
  LoadWide(&e, 100000);
  double narrow = QueryIo(&e, "SELECT SUM(v) FROM t");
  double wide = QueryIo(&e, "SELECT SUM(v), SUM(f0), SUM(f7) FROM t");
  // Same pages read either way: projection cannot shrink row-store I/O.
  EXPECT_NEAR(narrow, wide, narrow * 0.05);
  EXPECT_GT(narrow, 0.0);
}

TEST(IoModelTest, BufferPoolHitsAreFree) {
  // Pool big enough for everything: second scan is fully cached.
  Engine e(WithIo(TableOrganization::kColumn, IoModel::Ssd(),
                  size_t{256} << 20));
  LoadWide(&e, 100000);
  double first = QueryIo(&e, "SELECT SUM(v) FROM t");
  double second = QueryIo(&e, "SELECT SUM(v) FROM t");
  EXPECT_GT(first, 0.0);
  EXPECT_DOUBLE_EQ(second, 0.0);
}

TEST(IoModelTest, SelectiveIndexScanCheaperThanFullScan) {
  Engine e(WithIo(TableOrganization::kRow, IoModel::Hdd(), 1 << 10));
  LoadWide(&e, 200000);
  double point = QueryIo(&e, "SELECT * FROM t WHERE id = 12345");
  double full = QueryIo(&e, "SELECT COUNT(*) FROM t WHERE v = 5");
  EXPECT_LT(point * 10, full)
      << "a point lookup via the index must beat a full scan";
  // A seek was paid: the point query is not free either.
  EXPECT_GE(point, 0.008 * 0.9);
}

TEST(IoModelTest, WideIndexRangeFallsBackToSequentialCosting) {
  Engine e(WithIo(TableOrganization::kRow, IoModel::Hdd(), 1 << 10));
  LoadWide(&e, 200000);
  // >1/8 of the table via the index: costed as a sequential sweep, so it
  // must not exceed ~full-scan cost (per-page seeks would cost far more).
  double wide_range = QueryIo(&e, "SELECT COUNT(*) FROM t WHERE id >= 0");
  double full = QueryIo(&e, "SELECT COUNT(*) FROM t WHERE v = 5");
  EXPECT_LT(wide_range, full * 1.5);
}

TEST(IoModelTest, DataSkippingReducesCharges) {
  Engine e(WithIo(TableOrganization::kColumn, IoModel::Ssd(), 1 << 10));
  LoadWide(&e, 200000);  // ID is load-ordered => synopsis skips
  double narrow = QueryIo(&e, "SELECT COUNT(*) FROM t WHERE id >= 199000");
  double all = QueryIo(&e, "SELECT COUNT(*) FROM t WHERE id >= 0");
  EXPECT_LT(narrow * 5, all)
      << "skipped pages must not be charged";
}

}  // namespace
}  // namespace dashdb
