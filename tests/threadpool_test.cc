// ThreadPool::ParallelFor stress coverage: range coverage, caller
// participation (nested fan-out from pool workers must not deadlock),
// first-exception propagation after all in-flight chunks settle, many
// small jobs back-to-back, and the max_workers cap.
#include "common/threadpool.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace dashdb {
namespace {

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForFromWorkersDoesNotDeadlock) {
  // More outer tasks than pool threads: without caller participation every
  // worker would block inside the inner call waiting for helpers that can
  // never be scheduled.
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(64, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8u * 64u);
}

TEST(ThreadPoolTest, DeeplyNestedParallelFor) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) {
      pool.ParallelFor(16, [&](size_t) { total.fetch_add(1); });
    });
  });
  EXPECT_EQ(total.load(), 4u * 4u * 16u);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(4096,
                       [&](size_t i) {
                         if (i == 1000) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, FirstExceptionWinsAndPoolStaysUsable) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    try {
      pool.ParallelFor(2048, [&](size_t i) {
        if (i % 100 == 0) throw std::invalid_argument("n" + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::invalid_argument&) {
    }
    // The pool must still run normal jobs after an aborted ParallelFor.
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 100u * 99u / 2u);
  }
}

TEST(ThreadPoolTest, ManySmallJobsBackToBack) {
  ThreadPool pool(4);
  for (int round = 0; round < 500; ++round) {
    std::atomic<size_t> sum{0};
    const size_t n = 1 + static_cast<size_t>(round % 23);
    pool.ParallelFor(n, [&](size_t i) { sum.fetch_add(i); });
    ASSERT_EQ(sum.load(), n * (n - 1) / 2);
  }
}

TEST(ThreadPoolTest, MaxWorkersCapStillCoversRange) {
  ThreadPool pool(8);
  for (int cap : {1, 2, 3, 16}) {
    std::vector<std::atomic<int>> hits(5000);
    pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); },
                     cap);
    for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ZeroAndTinyRanges) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "fn called for n=0"; });
  std::atomic<int> one{0};
  pool.ParallelFor(1, [&](size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 1);
}

}  // namespace
}  // namespace dashdb
