// Flat hash structures (src/common/flat_hash.h) — seeded property tests
// against the std::unordered_* oracles they replaced in the executor, plus
// the SQL-level COUNT(*) fast path that rides the same PR.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_hash.h"
#include "common/hash.h"
#include "sql/engine.h"

namespace dashdb {
namespace {

// -------------------------------------------------------- FlatJoinIndex --

std::vector<uint32_t> CollectRows(const FlatJoinIndex& idx, uint64_t key,
                                  uint64_t hash) {
  std::vector<uint32_t> rows;
  for (int32_t cur = idx.Find(key, hash); cur != FlatJoinIndex::kNone;
       cur = idx.Next(cur)) {
    rows.push_back(idx.Row(cur));
  }
  return rows;
}

TEST(FlatJoinIndexTest, MatchesMultimapOracleWithDuplicates) {
  std::mt19937_64 rng(42);
  // Small key domain forces long duplicate chains.
  constexpr size_t kRows = 20000;
  constexpr int64_t kDomain = 997;
  FlatJoinIndex idx;
  std::unordered_multimap<int64_t, uint32_t> oracle;
  for (uint32_t r = 0; r < kRows; ++r) {
    int64_t k = static_cast<int64_t>(rng() % kDomain) - kDomain / 2;
    idx.Insert(static_cast<uint64_t>(k), HashInt64(static_cast<uint64_t>(k)),
               r);
    oracle.emplace(k, r);
  }
  EXPECT_EQ(idx.rows(), kRows);
  for (int64_t k = -kDomain; k <= kDomain; ++k) {
    std::vector<uint32_t> got = CollectRows(
        idx, static_cast<uint64_t>(k), HashInt64(static_cast<uint64_t>(k)));
    std::vector<uint32_t> want;
    auto [b, e] = oracle.equal_range(k);
    for (auto it = b; it != e; ++it) want.push_back(it->second);
    // The flat index guarantees ascending insertion (build-row) order;
    // the multimap guarantees only the multiset.
    std::vector<uint32_t> sorted_got = got;
    std::sort(sorted_got.begin(), sorted_got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(sorted_got, want) << "key " << k;
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()))
        << "chain must preserve insertion order for key " << k;
  }
}

TEST(FlatJoinIndexTest, GrowthPreservesChainsAndReserveHolds) {
  // Unreserved: many growth steps; reserved: none after Reserve.
  for (bool reserve : {false, true}) {
    std::mt19937_64 rng(7);
    constexpr size_t kRows = 50000;
    FlatJoinIndex idx;
    if (reserve) idx.Reserve(kRows);
    const size_t cap_before = idx.capacity();
    std::unordered_multimap<uint64_t, uint32_t> oracle;
    std::vector<uint64_t> keys;
    for (uint32_t r = 0; r < kRows; ++r) {
      uint64_t k = rng() % 30000;  // mix of unique and duplicate keys
      idx.Insert(k, HashInt64(k), r);
      oracle.emplace(k, r);
      keys.push_back(k);
    }
    if (reserve) {
      EXPECT_EQ(idx.capacity(), cap_before) << "Reserve must pre-size fully";
    }
    for (size_t i = 0; i < 500; ++i) {
      uint64_t k = keys[rng() % keys.size()];
      EXPECT_EQ(CollectRows(idx, k, HashInt64(k)).size(), oracle.count(k));
    }
    // Absent keys stay absent.
    for (size_t i = 0; i < 500; ++i) {
      uint64_t k = 30000 + rng() % 100000;
      EXPECT_EQ(idx.Find(k, HashInt64(k)), FlatJoinIndex::kNone);
    }
  }
}

// -------------------------------------------------------- BloomPrefilter --

TEST(BloomPrefilterTest, NoFalseNegativesAndUsefulRejection) {
  std::mt19937_64 rng(123);
  constexpr size_t kKeys = 10000;
  BloomPrefilter bloom;
  bloom.Init(kKeys);
  std::vector<uint64_t> hashes;
  for (size_t i = 0; i < kKeys; ++i) {
    uint64_t h = HashInt64(rng());
    bloom.Add(h);
    hashes.push_back(h);
  }
  for (uint64_t h : hashes) {
    EXPECT_TRUE(bloom.MayContain(h)) << "Bloom filters never false-negative";
  }
  size_t false_pos = 0;
  constexpr size_t kProbes = 20000;
  for (size_t i = 0; i < kProbes; ++i) {
    if (bloom.MayContain(HashInt64(rng() + 0x9E3779B97F4A7C15ull))) {
      ++false_pos;
    }
  }
  // ~8 bits/key with 2 probe bits lands well under 30% in practice.
  EXPECT_LT(false_pos, kProbes * 3 / 10)
      << "prefilter must reject most absent keys";
}

TEST(BloomPrefilterTest, EmptyFilterIsDisabled) {
  BloomPrefilter bloom;
  bloom.Init(0);
  EXPECT_TRUE(bloom.MayContain(0x12345));
  EXPECT_EQ(bloom.ByteSize(), 0u);
}

// --------------------------------------------------------- FlatKeyIndex --

TEST(FlatKeyIndexTest, MatchesMapOracleAcrossGrowth) {
  std::mt19937_64 rng(2024);
  FlatKeyIndex idx;
  std::unordered_map<std::string, uint32_t> oracle;
  std::vector<std::string> inserted;  // in first-seen order
  for (size_t i = 0; i < 30000; ++i) {
    // Variable-length keys with embedded NULs and duplicates.
    size_t len = rng() % 24;
    std::string key;
    for (size_t j = 0; j < len; ++j) {
      key.push_back(static_cast<char>(rng() % 7));  // tiny alphabet -> dups
    }
    uint64_t h = HashBytes(key.data(), key.size());
    bool inserted_flag = false;
    uint32_t id = idx.FindOrInsert(
        reinterpret_cast<const uint8_t*>(key.data()), key.size(), h,
        &inserted_flag);
    auto [it, fresh] = oracle.emplace(key, static_cast<uint32_t>(
                                               oracle.size()));
    EXPECT_EQ(inserted_flag, fresh);
    EXPECT_EQ(id, it->second) << "ids must be dense first-seen order";
    if (fresh) inserted.push_back(key);
  }
  ASSERT_EQ(idx.size(), oracle.size());
  // Dense side round-trips every key in insertion order.
  for (uint32_t id = 0; id < idx.size(); ++id) {
    std::string key(reinterpret_cast<const char*>(idx.KeyData(id)),
                    idx.KeyLen(id));
    EXPECT_EQ(key, inserted[id]);
    EXPECT_EQ(idx.HashOf(id), HashBytes(key.data(), key.size()));
  }
  // Find: present and absent.
  for (const auto& [key, id] : oracle) {
    uint64_t h = HashBytes(key.data(), key.size());
    EXPECT_EQ(idx.Find(reinterpret_cast<const uint8_t*>(key.data()),
                       key.size(), h),
              static_cast<int64_t>(id));
  }
  std::string absent = "definitely-not-in-the-tiny-alphabet";
  EXPECT_EQ(idx.Find(reinterpret_cast<const uint8_t*>(absent.data()),
                     absent.size(), HashBytes(absent.data(), absent.size())),
            -1);
}

// ----------------------------------------------------------- FlatIntMap --

TEST(FlatIntMapTest, MatchesMapOracleIncludingSentinels) {
  std::mt19937_64 rng(99);
  FlatIntMap idx;
  std::unordered_map<int64_t, uint32_t> oracle;
  // Extreme values — including the executor's NULL-group sentinel — behave
  // like any other key.
  std::vector<int64_t> specials = {0, -1, INT64_MIN, INT64_MAX,
                                   INT64_MIN + 1};
  for (size_t i = 0; i < 40000; ++i) {
    int64_t k;
    if (i % 100 < 5) {
      k = specials[rng() % specials.size()];
    } else {
      k = static_cast<int64_t>(rng() % 20000) - 10000;
    }
    bool inserted = false;
    uint32_t id = idx.FindOrInsert(k, &inserted);
    auto [it, fresh] =
        oracle.emplace(k, static_cast<uint32_t>(oracle.size()));
    EXPECT_EQ(inserted, fresh);
    EXPECT_EQ(id, it->second);
    EXPECT_EQ(idx.KeyOf(id), k);
  }
  EXPECT_EQ(idx.size(), oracle.size());
}

// --------------------------------------------- COUNT(*) fast path (SQL) --

class CountStarFastPathTest : public ::testing::Test {
 protected:
  CountStarFastPathTest()
      : engine_(EngineConfig{}), session_(engine_.CreateSession()) {
    TableSchema s("PUBLIC", "CNT",
                  {{"ID", TypeId::kInt64, false, 0, false},
                   {"V", TypeId::kInt64, true, 0, false},
                   {"S", TypeId::kVarchar, true, 0, false}});
    auto t = engine_.CreateColumnTable(s);
    EXPECT_TRUE(t.ok());
    RowBatch b;
    b.columns.emplace_back(TypeId::kInt64);
    b.columns.emplace_back(TypeId::kInt64);
    b.columns.emplace_back(TypeId::kVarchar);
    for (int64_t i = 0; i < kRows; ++i) {
      b.columns[0].AppendInt(i);
      if (i % 97 == 0) {
        b.columns[1].AppendNull();
      } else {
        b.columns[1].AppendInt(i % 1000);
      }
      b.columns[2].AppendString("s" + std::to_string(i % 13));
    }
    EXPECT_TRUE((*t)->Load(b).ok());
  }

  QueryResult Exec(const std::string& sql) {
    auto r = engine_.Execute(session_.get(), sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  static constexpr int64_t kRows = 10000;
  Engine engine_;
  std::shared_ptr<Session> session_;
};

TEST_F(CountStarFastPathTest, PlanUsesCountStarScan) {
  QueryResult r = Exec("EXPLAIN SELECT COUNT(*) FROM CNT WHERE V <= 500");
  EXPECT_NE(r.message.find("CountStarScan"), std::string::npos) << r.message;
  // Grouped and multi-column aggregates keep the general plan.
  QueryResult g = Exec("EXPLAIN SELECT V, COUNT(*) FROM CNT GROUP BY V");
  EXPECT_EQ(g.message.find("CountStarScan"), std::string::npos) << g.message;
}

TEST_F(CountStarFastPathTest, CountsMatchOracle) {
  // NULLs never match a predicate; i % 97 == 0 rows are NULL in V.
  int64_t expect_le_500 = 0, expect_total = kRows;
  for (int64_t i = 0; i < kRows; ++i) {
    if (i % 97 != 0 && i % 1000 <= 500) ++expect_le_500;
  }
  QueryResult r1 = Exec("SELECT COUNT(*) FROM CNT WHERE V <= 500");
  ASSERT_EQ(r1.rows.num_rows(), 1u);
  EXPECT_EQ(r1.rows.columns[0].GetInt(0), expect_le_500);

  QueryResult r2 = Exec("SELECT COUNT(*) AS N FROM CNT");
  ASSERT_EQ(r2.rows.num_rows(), 1u);
  EXPECT_EQ(r2.rows.columns[0].GetInt(0), expect_total);

  // String predicate falls back to the bitmap path but stays correct.
  int64_t expect_s1 = 0;
  for (int64_t i = 0; i < kRows; ++i) {
    if (i % 13 == 1) ++expect_s1;
  }
  QueryResult r3 = Exec("SELECT COUNT(*) FROM CNT WHERE S = 's1'");
  ASSERT_EQ(r3.rows.num_rows(), 1u);
  EXPECT_EQ(r3.rows.columns[0].GetInt(0), expect_s1);
}

TEST_F(CountStarFastPathTest, DeletesAndTailRowsStayCorrect) {
  Exec("INSERT INTO CNT VALUES (20001, 42, 'tail'), (20002, 42, 'tail')");
  Exec("DELETE FROM CNT WHERE ID < 100");
  int64_t expect = 0;
  for (int64_t i = 100; i < kRows; ++i) {
    if (i % 97 != 0 && i % 1000 <= 500) ++expect;
  }
  expect += 2;  // the two tail rows with V = 42
  QueryResult r = Exec("SELECT COUNT(*) FROM CNT WHERE V <= 500");
  ASSERT_EQ(r.rows.num_rows(), 1u);
  EXPECT_EQ(r.rows.columns[0].GetInt(0), expect);
}

}  // namespace
}  // namespace dashdb
