// Differential execution testing: the same query corpus must produce
// byte-identical results at DOP=1, DOP=4, and DOP=4 with a node killed
// mid-query — parallelism and fault recovery are performance levers, never
// semantic ones. EXPLAIN ANALYZE is held to the same standard: the row
// counts it reports must be the actual cardinalities of the plain run.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "corpus_util.h"
#include "mpp/mpp.h"

namespace dashdb {
namespace {

constexpr const char* kShardExec = "mpp.shard_exec";

using corpus::kCorpus;
using corpus::kCorpusSize;
using corpus::MakeLoadedDb;
using corpus::ResultKey;

class DifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().ResetForTest();
    MetricRegistry::Global().ResetForTest();
  }
  void TearDown() override { FaultInjector::Global().ResetForTest(); }

  std::vector<std::string> RunCorpus(MppDatabase* db) {
    std::vector<std::string> keys;
    for (const char* q : kCorpus) {
      auto r = db->Execute(q);
      EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
      keys.push_back(r.ok() ? ResultKey(r->result) : "<error>");
    }
    return keys;
  }
};

TEST_F(DifferentialTest, Dop1VersusDop4ByteIdentical) {
  auto serial = MakeLoadedDb(1);
  auto parallel = MakeLoadedDb(4);
  std::vector<std::string> base = RunCorpus(serial.get());
  std::vector<std::string> par = RunCorpus(parallel.get());
  ASSERT_EQ(base.size(), par.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(par[i], base[i]) << "corpus query " << i << ": " << kCorpus[i];
  }
}

TEST_F(DifferentialTest, Dop4WithShardKillMatchesSerialBaseline) {
  std::vector<std::string> base;
  {
    auto serial = MakeLoadedDb(1);
    base = RunCorpus(serial.get());
  }
  // Kill the owning node exactly when shard k's first attempt starts; the
  // retried shard must reproduce its partition bit-for-bit at DOP=4.
  const int num_shards = MakeLoadedDb(1)->num_shards();
  for (size_t qi = 0; qi < kCorpusSize; ++qi) {
    for (int k = 0; k < num_shards; k += 3) {  // sample shards 0, 3, 6
      auto db = MakeLoadedDb(4);
      FaultSpec kill;
      kill.code = StatusCode::kUnavailable;
      kill.message = "node lost";
      kill.skip_hits = static_cast<uint64_t>(k);
      kill.max_fires = 1;
      // Test-scoped arming: disarms at end of iteration even on failure.
      ScopedFault fault(7000 + k, kShardExec, kill);
      auto r = db->Execute(kCorpus[qi]);
      ASSERT_TRUE(r.ok()) << kCorpus[qi] << ": " << r.status().ToString();
      EXPECT_EQ(ResultKey(r->result), base[qi])
          << "query " << qi << " diverged after node kill at shard " << k;
      EXPECT_GE(r->exec.shard_retries, 1u);
      EXPECT_EQ(r->exec.failovers, 1u);
    }
  }
}

TEST_F(DifferentialTest, HeuristicVersusCostOptimizerByteIdentical) {
  // Join order and Bloom pushdown are performance levers, never semantic
  // ones: the whole corpus must agree between the FROM-order heuristic and
  // the cost-based optimizer, at both degrees of parallelism.
  for (int dop : {1, 4}) {
    auto db = MakeLoadedDb(dop);
    ASSERT_TRUE(db->Execute("SET OPTIMIZER HEURISTIC").ok());
    std::vector<std::string> heur = RunCorpus(db.get());
    ASSERT_TRUE(db->Execute("SET OPTIMIZER COST").ok());
    std::vector<std::string> cost = RunCorpus(db.get());
    ASSERT_EQ(heur.size(), cost.size());
    for (size_t i = 0; i < heur.size(); ++i) {
      EXPECT_EQ(cost[i], heur[i])
          << "optimizer modes diverged (dop=" << dop << ") on corpus query "
          << i << ": " << kCorpus[i];
    }
  }
}

TEST_F(DifferentialTest, CrossShardBloomPushdownShipsFilters) {
  auto db = MakeLoadedDb(4);
  Counter* filters = MetricRegistry::Global().GetCounter("mpp.bloom_filters");
  Counter* bytes = MetricRegistry::Global().GetCounter("mpp.bloom_bytes");
  uint64_t f0 = filters->value(), b0 = bytes->value();
  auto r = db->Execute(
      "SELECT COUNT(*), SUM(t.V) FROM T t, H h "
      "WHERE t.ID = h.ID AND h.W <= 40");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(filters->value(), f0);
  EXPECT_GT(bytes->value(), b0);
}

TEST_F(DifferentialTest, ExplainAnalyzeCardinalitiesMatchPlainRun) {
  for (int dop : {1, 4}) {
    auto db = MakeLoadedDb(dop);
    for (const char* q : kCorpus) {
      auto plain = db->Execute(q);
      ASSERT_TRUE(plain.ok()) << q;
      auto analyzed = db->Execute(std::string("EXPLAIN ANALYZE ") + q);
      ASSERT_TRUE(analyzed.ok()) << q << ": " << analyzed.status().ToString();
      // MPP EXPLAIN ANALYZE returns the real rows plus the report.
      EXPECT_EQ(ResultKey(analyzed->result), ResultKey(plain->result))
          << "analyzed run changed results for: " << q;
      std::ostringstream want;
      want << "rows=" << plain->result.rows.num_rows();
      EXPECT_NE(analyzed->result.message.find(want.str()), std::string::npos)
          << "reported cardinality mismatch (dop=" << dop << ") for " << q
          << "\n" << analyzed->result.message;
      ASSERT_NE(analyzed->trace, nullptr) << q;
      EXPECT_EQ(analyzed->trace->spans()[0].rows,
                plain->result.rows.num_rows());
    }
  }
}

}  // namespace
}  // namespace dashdb
