// Differential execution testing: the same query corpus must produce
// byte-identical results at DOP=1, DOP=4, and DOP=4 with a node killed
// mid-query — parallelism and fault recovery are performance levers, never
// semantic ones. EXPLAIN ANALYZE is held to the same standard: the row
// counts it reports must be the actual cardinalities of the plain run.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "mpp/mpp.h"

namespace dashdb {
namespace {

constexpr const char* kShardExec = "mpp.shard_exec";

/// Canonical string form of a result (columns + every row, in order).
std::string ResultKey(const QueryResult& r) {
  std::ostringstream os;
  for (const auto& c : r.columns) os << c.name << '|';
  os << '\n';
  for (size_t i = 0; i < r.rows.num_rows(); ++i) {
    for (size_t c = 0; c < r.rows.columns.size(); ++c) {
      os << r.rows.columns[c].GetValue(i).ToString() << '|';
    }
    os << '\n';
  }
  return os.str();
}

/// 4-node cluster, 2 shards/node; every shard engine runs at `dop`.
/// Fact table T hash-distributes on ID; dims D and C are replicated so
/// joins stay shard-local (collocated star join).
std::unique_ptr<MppDatabase> MakeLoadedDb(int dop) {
  EngineConfig cfg;
  cfg.query_parallelism = dop;
  auto db = std::make_unique<MppDatabase>(4, 2, 8, size_t{8} << 30, cfg);

  TableSchema fact("PUBLIC", "T",
                   {{"ID", TypeId::kInt64, false, 0, false},
                    {"GRP", TypeId::kInt64, true, 0, false},
                    {"CAT", TypeId::kInt64, true, 0, false},
                    {"V", TypeId::kInt64, true, 0, false},
                    {"S", TypeId::kVarchar, true, 0, false}});
  fact.set_distribution_key(0);
  EXPECT_TRUE(db->CreateTable(fact).ok());

  TableSchema dim_d("PUBLIC", "D",
                    {{"GRP", TypeId::kInt64, false, 0, false},
                     {"A", TypeId::kInt64, true, 0, false}});
  EXPECT_TRUE(db->CreateTable(dim_d, /*replicated=*/true).ok());
  TableSchema dim_c("PUBLIC", "C",
                    {{"CAT", TypeId::kInt64, false, 0, false},
                     {"B", TypeId::kInt64, true, 0, false}});
  EXPECT_TRUE(db->CreateTable(dim_c, /*replicated=*/true).ok());

  // High-cardinality replicated dim: one row per fact ID, so T JOIN H probes
  // a 400-entry build table where every key is distinct.
  TableSchema dim_h("PUBLIC", "H",
                    {{"ID", TypeId::kInt64, false, 0, false},
                     {"W", TypeId::kInt64, true, 0, false}});
  EXPECT_TRUE(db->CreateTable(dim_h, /*replicated=*/true).ok());

  // Snowflake outrigger off D (reachable from the fact only through D).
  TableSchema dim_e("PUBLIC", "E",
                    {{"A", TypeId::kInt64, false, 0, false},
                     {"Z", TypeId::kInt64, true, 0, false}});
  EXPECT_TRUE(db->CreateTable(dim_e, /*replicated=*/true).ok());

  RowBatch t;
  for (int i = 0; i < 4; ++i) t.columns.emplace_back(TypeId::kInt64);
  t.columns.emplace_back(TypeId::kVarchar);
  for (int i = 0; i < 400; ++i) {
    t.columns[0].AppendInt(i);
    t.columns[1].AppendInt(i % 7);
    t.columns[2].AppendInt(i % 5);
    t.columns[3].AppendInt(i * 31 % 101);
    t.columns[4].AppendString("s" + std::to_string(i % 13));
  }
  EXPECT_TRUE(db->Load("PUBLIC", "T", t).ok());

  RowBatch d;
  d.columns.emplace_back(TypeId::kInt64);
  d.columns.emplace_back(TypeId::kInt64);
  for (int g = 0; g < 7; ++g) {
    d.columns[0].AppendInt(g);
    d.columns[1].AppendInt(g / 2);
  }
  EXPECT_TRUE(db->Load("PUBLIC", "D", d).ok());

  RowBatch c;
  c.columns.emplace_back(TypeId::kInt64);
  c.columns.emplace_back(TypeId::kInt64);
  for (int k = 0; k < 5; ++k) {
    c.columns[0].AppendInt(k);
    c.columns[1].AppendInt(k % 2);
  }
  EXPECT_TRUE(db->Load("PUBLIC", "C", c).ok());

  RowBatch h;
  h.columns.emplace_back(TypeId::kInt64);
  h.columns.emplace_back(TypeId::kInt64);
  for (int i = 0; i < 400; ++i) {
    h.columns[0].AppendInt(i);
    h.columns[1].AppendInt(i * 17 % 89);
  }
  EXPECT_TRUE(db->Load("PUBLIC", "H", h).ok());

  RowBatch e;
  e.columns.emplace_back(TypeId::kInt64);
  e.columns.emplace_back(TypeId::kInt64);
  for (int a = 0; a < 4; ++a) {
    e.columns[0].AppendInt(a);
    e.columns[1].AppendInt(a % 2);
  }
  EXPECT_TRUE(db->Load("PUBLIC", "E", e).ok());
  return db;
}

const char* kCorpus[] = {
    "SELECT COUNT(*), SUM(V), MIN(V), MAX(V) FROM T",
    "SELECT GRP, COUNT(*), SUM(V) FROM T GROUP BY GRP ORDER BY GRP",
    "SELECT COUNT(*) FROM T WHERE V >= 50",
    "SELECT ID, V FROM T WHERE GRP = 3 ORDER BY ID LIMIT 20",
    "SELECT d.A, COUNT(*), SUM(t.V) FROM T t JOIN D d ON t.GRP = d.GRP "
    "GROUP BY d.A ORDER BY d.A",
    "SELECT d.A, COUNT(*), SUM(t.V) FROM T t JOIN D d ON t.GRP = d.GRP "
    "JOIN C c ON t.CAT = c.CAT WHERE c.B = 1 GROUP BY d.A ORDER BY d.A",
    // High-cardinality join: every probe row hits a distinct build key.
    "SELECT COUNT(*), SUM(h.W), MIN(h.W), MAX(h.W) FROM T t "
    "JOIN H h ON t.ID = h.ID WHERE t.V < 60",
    // Multi-column and string group keys (arena-backed serialized keys).
    "SELECT GRP, CAT, COUNT(*), SUM(V) FROM T GROUP BY GRP, CAT "
    "ORDER BY GRP, CAT",
    "SELECT S, COUNT(*), MIN(V), MAX(V) FROM T GROUP BY S ORDER BY S",
    "SELECT S, GRP, COUNT(*) FROM T GROUP BY S, GRP ORDER BY S, GRP",
    // Bare COUNT(*) with one sargable predicate: the CountStarScan fast
    // path on every shard, merged by the coordinator.
    "SELECT COUNT(*) FROM T WHERE V <= 50",
    "SELECT COUNT(*) FROM T WHERE GRP = 4",
    // Expression-heavy shapes through the vectorized engine: CASE arms,
    // LIKE prefix, mixed-type arithmetic, and residual (non-sargable)
    // predicates that run as dictionary-code filters mid-query.
    "SELECT ID, CASE WHEN V >= 67 THEN 'hi' WHEN V >= 34 THEN 'mid' "
    "ELSE 'lo' END FROM T WHERE GRP = 1 ORDER BY ID LIMIT 30",
    "SELECT S, COUNT(*) FROM T WHERE S LIKE 's1%' GROUP BY S ORDER BY S",
    "SELECT GRP, SUM(CASE WHEN CAT = 2 THEN V ELSE 0 END), "
    "SUM(V / 2.0 + CAT * 3) FROM T GROUP BY GRP ORDER BY GRP",
    "SELECT ID, V * 31 - CAT FROM T WHERE GRP = 2 OR CAT = 4 "
    "ORDER BY ID LIMIT 25",
    "SELECT COUNT(*), SUM(V) FROM T WHERE V % 7 = 0 AND S LIKE 's%'",
    "SELECT ID, CONCAT(S, CONCAT('x', CAT)) FROM T "
    "WHERE S = 's3' AND V + CAT >= 40 ORDER BY ID LIMIT 15",
    // Multi-join shapes for the cost-based optimizer (comma syntax takes
    // the >= 3-way cost path on every shard; the heuristic/cost
    // differential below must agree with these byte-for-byte).
    // 4-way star with a selective dimension filter.
    "SELECT COUNT(*), SUM(t.V), SUM(h.W) FROM T t, D d, C c, H h "
    "WHERE t.GRP = d.GRP AND t.CAT = c.CAT AND t.ID = h.ID AND c.B = 1",
    // Snowflake: the E outrigger is reachable only through D.
    "SELECT e.Z, COUNT(*), SUM(t.V) FROM T t, D d, E e "
    "WHERE t.GRP = d.GRP AND d.A = e.A AND e.Z = 1 GROUP BY e.Z ORDER BY e.Z",
    // Cyclic join graph: the d-c edge closes a cycle over the fact.
    "SELECT COUNT(*), SUM(t.V) FROM T t, D d, C c "
    "WHERE t.GRP = d.GRP AND t.CAT = c.CAT AND d.A = c.B",
    // Cross-shard Bloom semi-join: distributed fact against a filtered
    // replicated dim ships a serialized filter in every shard request.
    "SELECT COUNT(*), SUM(t.V) FROM T t, H h "
    "WHERE t.ID = h.ID AND h.W <= 40",
};
constexpr size_t kCorpusSize = sizeof(kCorpus) / sizeof(kCorpus[0]);

class DifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().ResetForTest();
    MetricRegistry::Global().ResetForTest();
  }
  void TearDown() override { FaultInjector::Global().ResetForTest(); }

  std::vector<std::string> RunCorpus(MppDatabase* db) {
    std::vector<std::string> keys;
    for (const char* q : kCorpus) {
      auto r = db->Execute(q);
      EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
      keys.push_back(r.ok() ? ResultKey(r->result) : "<error>");
    }
    return keys;
  }
};

TEST_F(DifferentialTest, Dop1VersusDop4ByteIdentical) {
  auto serial = MakeLoadedDb(1);
  auto parallel = MakeLoadedDb(4);
  std::vector<std::string> base = RunCorpus(serial.get());
  std::vector<std::string> par = RunCorpus(parallel.get());
  ASSERT_EQ(base.size(), par.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(par[i], base[i]) << "corpus query " << i << ": " << kCorpus[i];
  }
}

TEST_F(DifferentialTest, Dop4WithShardKillMatchesSerialBaseline) {
  std::vector<std::string> base;
  {
    auto serial = MakeLoadedDb(1);
    base = RunCorpus(serial.get());
  }
  // Kill the owning node exactly when shard k's first attempt starts; the
  // retried shard must reproduce its partition bit-for-bit at DOP=4.
  const int num_shards = MakeLoadedDb(1)->num_shards();
  for (size_t qi = 0; qi < kCorpusSize; ++qi) {
    for (int k = 0; k < num_shards; k += 3) {  // sample shards 0, 3, 6
      auto db = MakeLoadedDb(4);
      FaultInjector::Global().Reset(7000 + k);
      FaultSpec kill;
      kill.code = StatusCode::kUnavailable;
      kill.message = "node lost";
      kill.skip_hits = static_cast<uint64_t>(k);
      kill.max_fires = 1;
      FaultInjector::Global().Arm(kShardExec, kill);
      auto r = db->Execute(kCorpus[qi]);
      ASSERT_TRUE(r.ok()) << kCorpus[qi] << ": " << r.status().ToString();
      EXPECT_EQ(ResultKey(r->result), base[qi])
          << "query " << qi << " diverged after node kill at shard " << k;
      EXPECT_GE(r->exec.shard_retries, 1u);
      EXPECT_EQ(r->exec.failovers, 1u);
      FaultInjector::Global().ResetForTest();
    }
  }
}

TEST_F(DifferentialTest, HeuristicVersusCostOptimizerByteIdentical) {
  // Join order and Bloom pushdown are performance levers, never semantic
  // ones: the whole corpus must agree between the FROM-order heuristic and
  // the cost-based optimizer, at both degrees of parallelism.
  for (int dop : {1, 4}) {
    auto db = MakeLoadedDb(dop);
    ASSERT_TRUE(db->Execute("SET OPTIMIZER HEURISTIC").ok());
    std::vector<std::string> heur = RunCorpus(db.get());
    ASSERT_TRUE(db->Execute("SET OPTIMIZER COST").ok());
    std::vector<std::string> cost = RunCorpus(db.get());
    ASSERT_EQ(heur.size(), cost.size());
    for (size_t i = 0; i < heur.size(); ++i) {
      EXPECT_EQ(cost[i], heur[i])
          << "optimizer modes diverged (dop=" << dop << ") on corpus query "
          << i << ": " << kCorpus[i];
    }
  }
}

TEST_F(DifferentialTest, CrossShardBloomPushdownShipsFilters) {
  auto db = MakeLoadedDb(4);
  Counter* filters = MetricRegistry::Global().GetCounter("mpp.bloom_filters");
  Counter* bytes = MetricRegistry::Global().GetCounter("mpp.bloom_bytes");
  uint64_t f0 = filters->value(), b0 = bytes->value();
  auto r = db->Execute(
      "SELECT COUNT(*), SUM(t.V) FROM T t, H h "
      "WHERE t.ID = h.ID AND h.W <= 40");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(filters->value(), f0);
  EXPECT_GT(bytes->value(), b0);
}

TEST_F(DifferentialTest, ExplainAnalyzeCardinalitiesMatchPlainRun) {
  for (int dop : {1, 4}) {
    auto db = MakeLoadedDb(dop);
    for (const char* q : kCorpus) {
      auto plain = db->Execute(q);
      ASSERT_TRUE(plain.ok()) << q;
      auto analyzed = db->Execute(std::string("EXPLAIN ANALYZE ") + q);
      ASSERT_TRUE(analyzed.ok()) << q << ": " << analyzed.status().ToString();
      // MPP EXPLAIN ANALYZE returns the real rows plus the report.
      EXPECT_EQ(ResultKey(analyzed->result), ResultKey(plain->result))
          << "analyzed run changed results for: " << q;
      std::ostringstream want;
      want << "rows=" << plain->result.rows.num_rows();
      EXPECT_NE(analyzed->result.message.find(want.str()), std::string::npos)
          << "reported cardinality mismatch (dop=" << dop << ") for " << q
          << "\n" << analyzed->result.message;
      ASSERT_NE(analyzed->trace, nullptr) << q;
      EXPECT_EQ(analyzed->trace->spans()[0].rows,
                plain->result.rows.num_rows());
    }
  }
}

}  // namespace
}  // namespace dashdb
