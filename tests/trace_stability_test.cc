// Trace determinism: the span tree EXPLAIN ANALYZE records is a replayable
// artifact, not a best-effort log. Same query + same fault seed must yield
// an identical StructureDigest across runs (ids, nesting, names, rows,
// attempt/retry attrs — never timing), and across DOP the attr-free digest
// must match wherever the plan shape is unchanged (ParallelColumnScan
// reports the same span kind as ColumnScan by design).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "mpp/mpp.h"
#include "sql/engine.h"

namespace dashdb {
namespace {

constexpr const char* kShardExec = "mpp.shard_exec";

std::unique_ptr<MppDatabase> MakeLoadedDb(int dop) {
  EngineConfig cfg;
  cfg.query_parallelism = dop;
  auto db = std::make_unique<MppDatabase>(4, 2, 8, size_t{8} << 30, cfg);
  TableSchema schema("PUBLIC", "T",
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"GRP", TypeId::kInt64, true, 0, false},
                      {"V", TypeId::kInt64, true, 0, false}});
  schema.set_distribution_key(0);
  EXPECT_TRUE(db->CreateTable(schema).ok());
  RowBatch rows;
  for (int i = 0; i < 3; ++i) rows.columns.emplace_back(TypeId::kInt64);
  for (int i = 0; i < 400; ++i) {
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendInt(i % 7);
    rows.columns[2].AppendInt(i * 31 % 101);
  }
  EXPECT_TRUE(db->Load("PUBLIC", "T", rows).ok());
  return db;
}

constexpr const char* kQuery =
    "EXPLAIN ANALYZE SELECT GRP, COUNT(*), SUM(V) FROM T GROUP BY GRP "
    "ORDER BY GRP";

/// One fresh cluster + injector run (failover mutates topology, so every
/// run starts from a virgin database and a freshly seeded injector).
std::shared_ptr<const Trace> RunOnce(int dop, uint64_t seed, bool inject) {
  auto db = MakeLoadedDb(dop);
  FaultInjector::Global().Reset(seed);
  if (inject) {
    FaultSpec kill;
    kill.code = StatusCode::kUnavailable;
    kill.message = "node lost";
    kill.skip_hits = 2;
    kill.max_fires = 1;
    FaultInjector::Global().Arm(kShardExec, kill);
  }
  auto r = db->Execute(kQuery);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return nullptr;
  EXPECT_NE(r->trace, nullptr);
  return r->trace;
}

class TraceStabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().ResetForTest();
    MetricRegistry::Global().ResetForTest();
  }
  void TearDown() override { FaultInjector::Global().ResetForTest(); }
};

TEST_F(TraceStabilityTest, SameSeedReplaysIdenticalSpanTree) {
  auto a = RunOnce(4, 99, /*inject=*/false);
  auto b = RunOnce(4, 99, /*inject=*/false);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->StructureDigest(), b->StructureDigest())
      << "fault-free trees must replay bit-for-bit\nA:\n"
      << a->TreeString() << "B:\n" << b->TreeString();
}

TEST_F(TraceStabilityTest, SameFaultSeedReplaysRetriesAndFailovers) {
  auto a = RunOnce(4, 424242, /*inject=*/true);
  auto b = RunOnce(4, 424242, /*inject=*/true);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Full digest includes the attempt/retry/failover attrs: the whole fault
  // schedule replays, not just the plan shape.
  EXPECT_EQ(a->StructureDigest(), b->StructureDigest())
      << "A:\n" << a->TreeString() << "B:\n" << b->TreeString();
  // And the injected kill is actually visible in the spans.
  bool saw_retry = false;
  for (const auto& s : a->spans()) {
    auto it = s.attrs.find("retries");
    if (it != s.attrs.end() && it->second > 0) saw_retry = true;
  }
  EXPECT_TRUE(saw_retry) << "expected a retried shard span:\n"
                         << a->TreeString();
}

TEST_F(TraceStabilityTest, CrossDopTreesMatchWithoutAttrs) {
  auto serial = RunOnce(1, 7, /*inject=*/false);
  auto parallel = RunOnce(4, 7, /*inject=*/false);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);
  // `dop` lives in the attrs, so the attr-free digest isolates plan shape +
  // cardinalities — which parallelism must not change.
  EXPECT_EQ(serial->StructureDigest(false), parallel->StructureDigest(false))
      << "DOP=1:\n" << serial->TreeString() << "DOP=4:\n"
      << parallel->TreeString();
  EXPECT_NE(serial->StructureDigest(false), "");
}

TEST_F(TraceStabilityTest, EngineTraceStableAcrossRuns) {
  auto digest_once = [](int dop) {
    EngineConfig cfg;
    cfg.query_parallelism = dop;
    Engine engine(cfg);
    auto session = engine.CreateSession();
    EXPECT_TRUE(engine
                    .Execute(session.get(),
                             "CREATE TABLE t (id INT, grp INT, v INT)")
                    .ok());
    EXPECT_TRUE(engine
                    .Execute(session.get(),
                             "INSERT INTO t VALUES (1,1,10), (2,1,20), "
                             "(3,2,30), (4,2,40)")
                    .ok());
    auto r = engine.Execute(
        session.get(),
        "EXPLAIN ANALYZE SELECT grp, SUM(v) FROM t GROUP BY grp");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    auto trace = session->last_trace();
    EXPECT_NE(trace, nullptr);
    return trace ? trace->StructureDigest(false) : std::string();
  };
  std::string a = digest_once(1);
  std::string b = digest_once(1);
  std::string c = digest_once(4);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c) << "plan shape unchanged across DOP for this query";
  EXPECT_NE(a, "");
}

}  // namespace
}  // namespace dashdb
