// Unit tests for the lexer and parser: token forms, operator precedence in
// the AST, dialect syntax recognition, and error reporting.
#include <gtest/gtest.h>

#include "sql/binder.h"
#include "sql/parser.h"

namespace dashdb {
namespace {

using ast::ExprKind;
using ast::StmtKind;

ast::StatementP Parse(const std::string& sql) {
  auto r = ParseStatement(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

// ------------------------------------------------------------------ lexer --

TEST(LexerTest, TokensAndComments) {
  auto toks = Lex("SELECT x, 'it''s' -- comment\n FROM t /* block */ WHERE "
                  "a<=1.5e2");
  ASSERT_TRUE(toks.ok());
  std::vector<std::string> texts;
  for (const auto& t : *toks) texts.push_back(t.text);
  // Comments vanish; the escaped quote is unescaped; <= is one token.
  EXPECT_NE(std::find(texts.begin(), texts.end(), "it's"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "<="), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "1.5e2"), texts.end());
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "comment"), texts.end());
}

TEST(LexerTest, QuotedIdentifiersKeepCase) {
  auto toks = Lex("SELECT \"MixedCase\" FROM t");
  ASSERT_TRUE(toks.ok());
  bool found = false;
  for (const auto& t : *toks) {
    if (t.quoted && t.text == "MixedCase") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, OracleOuterJoinMarker) {
  auto toks = Lex("a.x = b.y (+)");
  ASSERT_TRUE(toks.ok());
  bool found = false;
  for (const auto& t : *toks) {
    if (t.kind == TokKind::kOp && t.text == "(+)") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("SELECT 'oops").ok());
  EXPECT_FALSE(Lex("SELECT \"oops").ok());
  EXPECT_FALSE(Lex("SELECT /* oops").ok());
  EXPECT_FALSE(Lex("SELECT @x").ok());
}

// ----------------------------------------------------------------- parser --

TEST(ParserTest, PrecedenceInAst) {
  auto st = Parse("SELECT 1 + 2 * 3");
  const auto& e = st->select->items[0].expr;
  // Root must be '+', with '*' nested on the right.
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->bin_op, ast::BinOp::kAdd);
  EXPECT_EQ(e->children[1]->bin_op, ast::BinOp::kMul);
  // AND binds tighter than OR.
  auto st2 = Parse("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3");
  EXPECT_EQ(st2->select->where->bin_op, ast::BinOp::kOr);
}

TEST(ParserTest, BetweenBindsAndCorrectly) {
  auto st = Parse("SELECT 1 FROM t WHERE x BETWEEN 1 AND 2 AND y = 3");
  // Top-level AND joins the BETWEEN and the equality.
  ASSERT_EQ(st->select->where->bin_op, ast::BinOp::kAnd);
  EXPECT_EQ(st->select->where->children[0]->kind, ExprKind::kBetween);
}

TEST(ParserTest, SelectClauses) {
  auto st = Parse(
      "SELECT a, COUNT(*) n FROM t WHERE a > 0 GROUP BY a HAVING COUNT(*) > 1 "
      "ORDER BY n DESC LIMIT 10 OFFSET 5");
  const auto& sel = *st->select;
  EXPECT_EQ(sel.items.size(), 2u);
  EXPECT_EQ(sel.items[1].alias, "N");
  EXPECT_EQ(sel.group_by.size(), 1u);
  ASSERT_TRUE(sel.having != nullptr);
  ASSERT_EQ(sel.order_by.size(), 1u);
  EXPECT_TRUE(sel.order_by[0].desc);
  EXPECT_EQ(sel.limit, 10);
  EXPECT_EQ(sel.offset, 5);
}

TEST(ParserTest, JoinVariants) {
  auto st = Parse(
      "SELECT 1 FROM a JOIN b ON a.x = b.y LEFT OUTER JOIN c USING (k), d");
  const auto& from = st->select->from;
  ASSERT_EQ(from.size(), 4u);
  EXPECT_EQ(from[1].join, ast::TableRef::JoinKind::kInner);
  EXPECT_TRUE(from[1].join_condition != nullptr);
  EXPECT_EQ(from[2].join, ast::TableRef::JoinKind::kLeft);
  EXPECT_EQ(from[2].using_cols.size(), 1u);
  EXPECT_EQ(from[3].join, ast::TableRef::JoinKind::kCross);  // comma join
}

TEST(ParserTest, SubqueryAndCte) {
  auto st = Parse(
      "WITH x AS (SELECT 1 a) SELECT * FROM (SELECT a FROM x) sub");
  EXPECT_EQ(st->select->ctes.size(), 1u);
  EXPECT_TRUE(st->select->from[0].subquery != nullptr);
  EXPECT_EQ(st->select->from[0].alias, "SUB");
}

TEST(ParserTest, DdlForms) {
  auto ct = Parse(
      "CREATE TABLE s.t (id BIGINT NOT NULL PRIMARY KEY, v VARCHAR(20)) "
      "ORGANIZE BY ROW DISTRIBUTE BY HASH(id)");
  EXPECT_EQ(ct->kind, StmtKind::kCreateTable);
  EXPECT_EQ(ct->target_schema, "S");
  EXPECT_TRUE(ct->organize_by_row);
  EXPECT_EQ(ct->distribute_by, "ID");
  EXPECT_TRUE(ct->columns[0].unique);
  EXPECT_TRUE(ct->columns[0].not_null);

  EXPECT_EQ(Parse("DROP TABLE IF EXISTS t")->if_exists, true);
  EXPECT_EQ(Parse("TRUNCATE TABLE t IMMEDIATE")->kind, StmtKind::kTruncate);
  EXPECT_EQ(Parse("CREATE TEMP TABLE t (x INT)")->temporary, true);
  EXPECT_EQ(Parse("DECLARE GLOBAL TEMPORARY TABLE t (x INT)")->temporary,
            true);
  EXPECT_EQ(Parse("CREATE ALIAS a FOR b")->kind, StmtKind::kCreateAlias);
  EXPECT_EQ(Parse("CREATE SEQUENCE seq1")->kind, StmtKind::kCreateSequence);
}

TEST(ParserTest, DmlForms) {
  auto ins = Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  EXPECT_EQ(ins->insert_columns.size(), 2u);
  EXPECT_EQ(ins->insert_rows.size(), 2u);
  auto ins2 = Parse("INSERT INTO t SELECT * FROM s");
  EXPECT_TRUE(ins2->select != nullptr);
  auto upd = Parse("UPDATE t SET a = a + 1, b = 'z' WHERE id = 3");
  EXPECT_EQ(upd->set_clauses.size(), 2u);
  EXPECT_TRUE(upd->where != nullptr);
  auto del = Parse("DELETE FROM t WHERE a IN (1, 2)");
  EXPECT_EQ(del->kind, StmtKind::kDelete);
}

TEST(ParserTest, DialectExpressionForms) {
  // Netezza :: cast chain and postfix predicates.
  auto st = Parse("SELECT '1'::INT4::FLOAT8 FROM t WHERE a ISNULL");
  EXPECT_EQ(st->select->items[0].expr->kind, ExprKind::kCast);
  EXPECT_EQ(st->select->where->kind, ExprKind::kIsNull);
  // Oracle sequence refs + DB2 spelling.
  EXPECT_EQ(Parse("SELECT s.NEXTVAL FROM DUAL")
                ->select->items[0]
                .expr->kind,
            ExprKind::kSequenceRef);
  EXPECT_EQ(Parse("SELECT NEXT VALUE FOR s FROM DUAL")
                ->select->items[0]
                .expr->kind,
            ExprKind::kSequenceRef);
  // CASE with operand; DATE literal; CAST(x AS t).
  EXPECT_EQ(Parse("SELECT CASE a WHEN 1 THEN 'x' ELSE 'y' END FROM t")
                ->select->items[0]
                .expr->kind,
            ExprKind::kCase);
  EXPECT_EQ(Parse("SELECT DATE '2017-01-01'")->select->items[0].expr->kind,
            ExprKind::kLiteral);
  EXPECT_EQ(Parse("SELECT CAST(a AS VARCHAR(10)) FROM t")
                ->select->items[0]
                .expr->kind,
            ExprKind::kCast);
  // OVERLAPS with row pairs.
  EXPECT_EQ(Parse("SELECT (a, b) OVERLAPS (c, d) FROM t")
                ->select->items[0]
                .expr->kind,
            ExprKind::kOverlaps);
}

TEST(ParserTest, ConnectByClauses) {
  auto st = Parse(
      "SELECT name, LEVEL FROM org START WITH mgr IS NULL "
      "CONNECT BY PRIOR id = mgr");
  EXPECT_TRUE(st->select->start_with != nullptr);
  EXPECT_TRUE(st->select->connect_by != nullptr);
}

TEST(ParserTest, ScriptSplitting) {
  auto r = ParseScript("SELECT 1; SELECT 2; CREATE TABLE t (x INT);");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  EXPECT_FALSE(ParseScript("SELECT 1 SELECT 2").ok());
}

TEST(ParserTest, ErrorsCarryPosition) {
  auto r = ParseStatement("SELECT a FROM t WHERE");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, AstToStringStable) {
  auto a = Parse("SELECT a + b * 2 FROM t")->select->items[0].expr;
  auto b = Parse("SELECT a + b * 2 FROM t")->select->items[0].expr;
  EXPECT_EQ(AstToString(a), AstToString(b));
  auto c = Parse("SELECT a + 2 * b FROM t")->select->items[0].expr;
  EXPECT_NE(AstToString(a), AstToString(c));
}

}  // namespace
}  // namespace dashdb
