// Tests for the buffer pool policies, including the paper's central claim:
// the randomized-weight policy is scan-resistant where LRU thrashes, and
// lands near the offline-optimal (Belady) hit ratio (paper II.B.5).
#include <gtest/gtest.h>

#include "bufferpool/bufferpool.h"

namespace dashdb {
namespace {

PageId Pid(uint32_t page) { return PageId{1, 0, page}; }

TEST(BufferPoolTest, HitAfterAdmit) {
  BufferPool pool(1024, ReplacementPolicy::kLru);
  EXPECT_FALSE(pool.Access(Pid(0), 100));  // cold miss
  EXPECT_TRUE(pool.Access(Pid(0), 100));   // hit
  auto s = pool.stats();
  EXPECT_EQ(s.accesses, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(BufferPoolTest, EvictsWhenFull) {
  BufferPool pool(250, ReplacementPolicy::kLru);
  pool.Access(Pid(0), 100);
  pool.Access(Pid(1), 100);
  pool.Access(Pid(2), 100);  // evicts page 0 (LRU)
  EXPECT_GE(pool.stats().evictions, 1u);
  EXPECT_LE(pool.used_bytes(), 250u);
  EXPECT_FALSE(pool.Access(Pid(0), 100));  // page 0 was evicted
}

TEST(BufferPoolTest, OversizedPageNeverCached) {
  BufferPool pool(100, ReplacementPolicy::kClock);
  EXPECT_FALSE(pool.Access(Pid(0), 500));
  EXPECT_FALSE(pool.Access(Pid(0), 500));
  EXPECT_EQ(pool.used_bytes(), 0u);
}

TEST(BufferPoolTest, EvictTableDropsOnlyThatTable) {
  BufferPool pool(10000, ReplacementPolicy::kLru);
  pool.Access(PageId{1, 0, 0}, 100);
  pool.Access(PageId{2, 0, 0}, 100);
  pool.EvictTable(1);
  EXPECT_FALSE(pool.Access(PageId{1, 0, 0}, 100));
  EXPECT_TRUE(pool.Access(PageId{2, 0, 0}, 100));
}

class PolicyTest : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(PolicyTest, CapacityInvariantHolds) {
  // Property: used bytes never exceed capacity under random access.
  BufferPool pool(1000, GetParam());
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    pool.Access(Pid(static_cast<uint32_t>(rng.Uniform(200))),
                50 + rng.Uniform(100));
    ASSERT_LE(pool.used_bytes(), 1000u);
  }
}

TEST_P(PolicyTest, HotSetStaysCached) {
  // 10 hot pages accessed 10x more than 200 cold ones; with room for ~20
  // pages the hot set should enjoy a high hit ratio under every policy.
  BufferPool pool(20 * 100, GetParam());
  ZipfGenerator z(210, 1.5, 3);
  for (int i = 0; i < 20000; ++i) {
    pool.Access(Pid(static_cast<uint32_t>(z.Next())), 100);
  }
  pool.ResetStats();
  for (int i = 0; i < 20000; ++i) {
    pool.Access(Pid(static_cast<uint32_t>(z.Next())), 100);
  }
  EXPECT_GT(pool.stats().HitRatio(), 0.5) << PolicyName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(ReplacementPolicy::kLru,
                                           ReplacementPolicy::kClock,
                                           ReplacementPolicy::kRandomWeight));

TEST(ScanResistanceTest, LruThrashesOnCyclicScan) {
  // The paper's motivating pathology: repeated scans of a table slightly
  // larger than the cache give LRU ~0% hits.
  const uint32_t kPages = 120;
  BufferPool lru(100 * 100, ReplacementPolicy::kLru);
  for (int scan = 0; scan < 10; ++scan) {
    for (uint32_t p = 0; p < kPages; ++p) lru.Access(Pid(p), 100);
  }
  EXPECT_LT(lru.stats().HitRatio(), 0.02);
}

TEST(ScanResistanceTest, RandomWeightApproachesOptimalOnCyclicScan) {
  // Same trace: random-weight keeps a stable subset resident; optimal for a
  // cyclic scan of N pages with capacity C is ~ (C-1)/N hits per round.
  const uint32_t kPages = 120;
  const size_t kCapacity = 100;
  BufferPool rw(kCapacity * 100, ReplacementPolicy::kRandomWeight);
  std::vector<uint32_t> trace;
  for (int scan = 0; scan < 30; ++scan) {
    for (uint32_t p = 0; p < kPages; ++p) trace.push_back(p);
  }
  for (uint32_t p : trace) rw.Access(Pid(p), 100);
  double optimal = SimulateOptimalHitRatio(trace, kCapacity);
  double achieved = rw.stats().HitRatio();
  EXPECT_GT(achieved, 0.45) << "random-weight should cache a stable subset";
  // "within a few percentiles of optimal": allow a 0.25 absolute gap here
  // (short trace); the bench measures the asymptotic gap.
  EXPECT_GT(achieved, optimal - 0.25);
}

TEST(OptimalTest, BeladyBasics) {
  // Capacity 1, trace A B A B: optimal must miss every time after admits.
  std::vector<uint32_t> t = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(SimulateOptimalHitRatio(t, 1), 0.0);
  // Capacity 2: A B A B -> 2 hits of 4.
  EXPECT_DOUBLE_EQ(SimulateOptimalHitRatio(t, 2), 0.5);
}

TEST(OptimalTest, CyclicScanFormula) {
  // Cyclic scan of N pages, capacity C: steady-state hit rate ~ (C-1)/N.
  const uint32_t kN = 50;
  const size_t kC = 20;
  std::vector<uint32_t> t;
  for (int r = 0; r < 40; ++r) {
    for (uint32_t p = 0; p < kN; ++p) t.push_back(p);
  }
  double hr = SimulateOptimalHitRatio(t, kC);
  double expect = (static_cast<double>(kC) - 1) / kN;
  EXPECT_NEAR(hr, expect, 0.05);
}

}  // namespace
}  // namespace dashdb
