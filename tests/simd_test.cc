// Tests for the SWAR software-SIMD kernels: agreement with scalar reference
// across all operators and code widths (the paper's "any code size" claim).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "simd/swar.h"

namespace dashdb {
namespace {

struct SwarCase {
  int width;
  CmpOp op;
};

class SwarAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, CmpOp>> {};

TEST_P(SwarAgreementTest, MatchesScalarReference) {
  // Property: SWAR result == decode-then-compare result, for every width
  // and operator, on adversarial sizes (not word-multiples).
  const auto [w, op] = GetParam();
  Rng rng(w * 31 + static_cast<int>(op));
  const uint64_t mask = w == 64 ? ~uint64_t{0} : (uint64_t{1} << w) - 1;
  for (size_t n : {size_t{1}, size_t{63}, size_t{64}, size_t{65}, size_t{1000},
                   size_t{1024}}) {
    BitPackedArray arr(w);
    for (size_t i = 0; i < n; ++i) arr.Append(rng.Next() & mask);
    // Compare against a constant drawn from the same domain (plus edges).
    for (uint64_t c : {uint64_t{0}, mask / 2, mask, rng.Next() & mask}) {
      BitVector swar(n), scalar(n);
      SwarCompare(arr, n, op, c, &swar);
      ScalarCompare(arr, n, op, c, &scalar);
      ASSERT_EQ(swar.CountSet(), scalar.CountSet())
          << "w=" << w << " n=" << n << " c=" << c;
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(swar.Get(i), scalar.Get(i))
            << "w=" << w << " n=" << n << " c=" << c << " i=" << i;
      }
      ASSERT_EQ(SwarCount(arr, n, op, c), scalar.CountSet());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWidthsAllOps, SwarAgreementTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8, 11, 13, 16, 17,
                                         21, 24, 31, 32, 33, 63, 64),
                       ::testing::Values(CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                         CmpOp::kLe, CmpOp::kGt, CmpOp::kGe)));

class SwarBetweenTest : public ::testing::TestWithParam<int> {};

TEST_P(SwarBetweenTest, MatchesScalarReference) {
  const int w = GetParam();
  Rng rng(w);
  const uint64_t mask = w == 64 ? ~uint64_t{0} : (uint64_t{1} << w) - 1;
  const size_t n = 777;
  BitPackedArray arr(w);
  for (size_t i = 0; i < n; ++i) arr.Append(rng.Next() & mask);
  for (int trial = 0; trial < 8; ++trial) {
    uint64_t a = rng.Next() & mask, b = rng.Next() & mask;
    uint64_t lo = std::min(a, b), hi = std::max(a, b);
    BitVector swar(n), scalar(n);
    SwarBetween(arr, n, lo, hi, &swar);
    ScalarBetween(arr, n, lo, hi, &scalar);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(swar.Get(i), scalar.Get(i)) << "w=" << w << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, SwarBetweenTest,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16, 21, 32, 64));

TEST(SwarTest, BroadcastFillsLanes) {
  EXPECT_EQ(SwarBroadcast(1, 1, 64), ~uint64_t{0});
  EXPECT_EQ(SwarBroadcast(0b101, 3, 2), 0b101101u);
  EXPECT_EQ(SwarBroadcast(7, 64, 1), 7u);
}

TEST(SwarTest, TailWordRowsBeyondNAreNotSet) {
  // 5 codes of width 16 -> second word has one valid lane out of 4.
  BitPackedArray arr(16);
  for (int i = 0; i < 5; ++i) arr.Append(42);
  BitVector out(5);
  SwarCompare(arr, 5, CmpOp::kEq, 42, &out);
  EXPECT_EQ(out.CountSet(), 5u);
}

TEST(SwarTest, EmptyInput) {
  BitPackedArray arr(8);
  BitVector out(0);
  SwarCompare(arr, 0, CmpOp::kEq, 1, &out);
  EXPECT_EQ(out.CountSet(), 0u);
  EXPECT_EQ(SwarCount(arr, 0, CmpOp::kNe, 1), 0u);
}

TEST(SwarTest, AllMatchAndNoneMatch) {
  BitPackedArray arr(4);
  for (int i = 0; i < 100; ++i) arr.Append(9);
  BitVector out(100);
  SwarCompare(arr, 100, CmpOp::kEq, 9, &out);
  EXPECT_EQ(out.CountSet(), 100u);
  BitVector out2(100);
  SwarCompare(arr, 100, CmpOp::kEq, 3, &out2);
  EXPECT_EQ(out2.CountSet(), 0u);
}

}  // namespace
}  // namespace dashdb
