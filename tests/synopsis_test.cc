// Tests for the data-skipping synopsis (paper II.B.4).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "synopsis/synopsis.h"

namespace dashdb {
namespace {

IntSynopsis BuildDateLikeSynopsis(size_t strides, int64_t days_per_stride) {
  // Monotone "date" column: stride s covers [s*d, (s+1)*d).
  IntSynopsis syn;
  std::vector<int64_t> vals(kStrideRows);
  for (size_t s = 0; s < strides; ++s) {
    for (size_t i = 0; i < kStrideRows; ++i) {
      vals[i] = static_cast<int64_t>(s) * days_per_stride +
                static_cast<int64_t>(i) % days_per_stride;
    }
    syn.AddStride(vals.data(), vals.size(), nullptr);
  }
  return syn;
}

TEST(IntSynopsisTest, MinMaxPerStride) {
  IntSynopsis syn;
  std::vector<int64_t> v = {5, 2, 9, 7};
  syn.AddStride(v.data(), v.size(), nullptr);
  ASSERT_EQ(syn.num_strides(), 1u);
  EXPECT_EQ(syn.stride(0).min, 2);
  EXPECT_EQ(syn.stride(0).max, 9);
  EXPECT_TRUE(syn.stride(0).has_non_null);
}

TEST(IntSynopsisTest, AllNullStrideAlwaysSkippable) {
  IntSynopsis syn;
  std::vector<int64_t> v = {0, 0};
  BitVector nulls(2);
  nulls.Set(0);
  nulls.Set(1);
  syn.AddStride(v.data(), v.size(), &nulls);
  int64_t lo = -100, hi = 100;
  EXPECT_FALSE(syn.MayContain(0, &lo, true, &hi, true));
}

TEST(IntSynopsisTest, SkipsDisjointStrides) {
  IntSynopsis syn = BuildDateLikeSynopsis(100, 10);
  // Predicate on the last 5% of the "time" range.
  int64_t lo = 950;
  BitVector mask(100, true);
  size_t skipped = syn.SkipStrides(&lo, true, nullptr, true, &mask);
  EXPECT_EQ(skipped, 95u);
  for (size_t s = 0; s < 95; ++s) EXPECT_FALSE(mask.Get(s));
  for (size_t s = 95; s < 100; ++s) EXPECT_TRUE(mask.Get(s));
}

TEST(IntSynopsisTest, InclusiveExclusiveBoundaries) {
  IntSynopsis syn;
  std::vector<int64_t> v(kStrideRows, 0);
  for (size_t i = 0; i < v.size(); ++i) v[i] = 10 + static_cast<int64_t>(i) % 11;
  syn.AddStride(v.data(), v.size(), nullptr);  // [10, 20]
  int64_t b = 20;
  EXPECT_TRUE(syn.MayContain(0, &b, true, nullptr, true));    // >= 20
  EXPECT_FALSE(syn.MayContain(0, &b, false, nullptr, true));  // > 20
  b = 10;
  EXPECT_TRUE(syn.MayContain(0, nullptr, true, &b, true));    // <= 10
  EXPECT_FALSE(syn.MayContain(0, nullptr, true, &b, false));  // < 10
}

TEST(IntSynopsisTest, NeverSkipsStridesThatContainMatches) {
  // Property: skipping is conservative — a stride containing a qualifying
  // value is never skipped, for random data and random predicates.
  Rng rng(77);
  IntSynopsis syn;
  std::vector<std::vector<int64_t>> strides;
  for (int s = 0; s < 50; ++s) {
    std::vector<int64_t> v(kStrideRows);
    int64_t base = rng.Range(0, 100000);
    for (auto& x : v) x = base + rng.Range(0, 500);
    syn.AddStride(v.data(), v.size(), nullptr);
    strides.push_back(std::move(v));
  }
  for (int trial = 0; trial < 20; ++trial) {
    int64_t lo = rng.Range(0, 100500);
    int64_t hi = lo + rng.Range(0, 1000);
    BitVector mask(50, true);
    syn.SkipStrides(&lo, true, &hi, true, &mask);
    for (size_t s = 0; s < 50; ++s) {
      if (mask.Get(s)) continue;
      for (int64_t x : strides[s]) {
        ASSERT_FALSE(x >= lo && x <= hi)
            << "stride " << s << " skipped but contains " << x;
      }
    }
  }
}

TEST(IntSynopsisTest, ThreeOrdersOfMagnitudeSmaller) {
  // Paper II.B.4: synopsis ~1000x smaller than user data.
  IntSynopsis syn = BuildDateLikeSynopsis(1000, 30);
  size_t user_bytes = 1000 * kStrideRows * 8;  // raw int64 user data
  size_t syn_bytes = syn.CompressedByteSize();
  EXPECT_LT(syn_bytes * 500, user_bytes)
      << "synopsis should be ~3 orders of magnitude smaller";
}

TEST(StringSynopsisTest, SkipsByRange) {
  StringSynopsis syn;
  std::vector<std::string> a = {"apple", "avocado"};
  std::vector<std::string> b = {"melon", "nectarine"};
  syn.AddStride(a.data(), a.size(), nullptr);
  syn.AddStride(b.data(), b.size(), nullptr);
  std::string lo = "m";
  BitVector mask(2, true);
  size_t skipped = syn.SkipStrides(&lo, true, nullptr, true, &mask);
  EXPECT_EQ(skipped, 1u);
  EXPECT_FALSE(mask.Get(0));
  EXPECT_TRUE(mask.Get(1));
}

}  // namespace
}  // namespace dashdb
