// Observability layer: metrics registry semantics (register-once pointers,
// relaxed counters, histogram buckets, snapshot/delta/JSON, test reset),
// trace span trees (sequential ids, grafting, digests), and the EXPLAIN
// ANALYZE surface on the single-node engine — annotated plans whose row
// counts are the real cardinalities, plus registry deltas per query.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "sql/engine.h"

namespace dashdb {
namespace {

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().ResetForTest();
    MetricRegistry::Global().ResetForTest();
  }
  void TearDown() override { FaultInjector::Global().ResetForTest(); }
};

TEST_F(ObservabilityTest, CounterGaugeBasics) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("t.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reg.GetCounter("t.counter"), c) << "register-once, same pointer";
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);

  Gauge* g = reg.GetGauge("t.gauge");
  g->Set(-7);
  g->Add(10);
  EXPECT_EQ(g->value(), 3);

  // Re-registering a name as a different kind is a naming bug -> nullptr.
  EXPECT_EQ(reg.GetGauge("t.counter"), nullptr);
  EXPECT_EQ(reg.GetCounter("t.gauge"), nullptr);
  EXPECT_EQ(reg.GetHistogram("t.counter", {1, 2}), nullptr);
}

TEST_F(ObservabilityTest, HistogramBucketsAndOverflow) {
  MetricRegistry reg;
  Histogram* h = reg.GetHistogram("t.hist", {10, 100, 1000});
  ASSERT_NE(h, nullptr);
  h->Observe(5);      // le_10
  h->Observe(10);     // le_10 (inclusive bound)
  h->Observe(11);     // le_100
  h->Observe(999);    // le_1000
  h->Observe(5000);   // overflow
  EXPECT_EQ(h->count(), 5u);
  EXPECT_EQ(h->sum(), 5 + 10 + 11 + 999 + 5000);
  auto buckets = h->bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u) << "overflow bucket";

  MetricSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.at("t.hist.count"), 5);
  EXPECT_EQ(snap.at("t.hist.le_10"), 2);
  EXPECT_EQ(snap.at("t.hist.le_inf"), 1);
}

TEST_F(ObservabilityTest, SnapshotDeltaKeepsOnlyChanges) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("t.a");
  Counter* b = reg.GetCounter("t.b");
  a->Add(5);
  MetricSnapshot before = reg.Snapshot();
  a->Add(2);
  b->Add(0);  // unchanged
  reg.GetCounter("t.new")->Add(9);
  MetricSnapshot delta = SnapshotDelta(before, reg.Snapshot());
  EXPECT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta.at("t.a"), 2);
  EXPECT_EQ(delta.at("t.new"), 9);
  EXPECT_EQ(delta.count("t.b"), 0u);
}

TEST_F(ObservabilityTest, ResetForTestKeepsPointersValid) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("t.c");
  Histogram* h = reg.GetHistogram("t.h", {8});
  c->Add(100);
  h->Observe(3);
  reg.ResetForTest();
  EXPECT_EQ(c->value(), 0u) << "zeroed in place";
  EXPECT_EQ(h->count(), 0u);
  c->Add(1);  // cached pointer still works after reset
  EXPECT_EQ(reg.Snapshot().at("t.c"), 1);
}

TEST_F(ObservabilityTest, JsonExportContainsInstruments) {
  MetricRegistry reg;
  reg.GetCounter("t.json_counter")->Add(7);
  reg.GetHistogram("t.json_hist", {4})->Observe(2);
  std::string js = reg.ToJson();
  EXPECT_NE(js.find("\"t.json_counter\": 7"), std::string::npos) << js;
  EXPECT_NE(js.find("\"t.json_hist\""), std::string::npos) << js;
  EXPECT_NE(js.find("\"le\""), std::string::npos) << js;

  // The process-wide API serves the global registry.
  MetricRegistry::Global().GetCounter("t.global_marker")->Add(1);
  EXPECT_NE(SystemMetricsJson().find("t.global_marker"), std::string::npos);
}

TEST_F(ObservabilityTest, TraceSpanIdsAndGraft) {
  Trace t;
  uint32_t root = t.AddSpan("Query", Trace::kNoParent);
  uint32_t child = t.AddSpan("Scan", root);
  EXPECT_EQ(root, 1u) << "ids start at 1";
  EXPECT_EQ(child, 2u);
  t.span(child).rows = 10;

  Trace sub;
  uint32_t s1 = sub.AddSpan("Agg", Trace::kNoParent);
  sub.AddSpan("Filter", s1);
  t.Graft(sub, child);
  ASSERT_EQ(t.spans().size(), 4u);
  EXPECT_EQ(t.spans()[2].name, "Agg");
  EXPECT_EQ(t.spans()[2].parent, child) << "sub-root reparented";
  EXPECT_EQ(t.spans()[3].parent, t.spans()[2].id) << "sub nesting preserved";

  // Digest covers structure+rows+attrs, never timing.
  t.span(root).wall_seconds = 123.0;
  Trace t2;
  uint32_t r2 = t2.AddSpan("Query", Trace::kNoParent);
  uint32_t c2 = t2.AddSpan("Scan", r2);
  t2.span(c2).rows = 10;
  Trace sub2;
  uint32_t s2 = sub2.AddSpan("Agg", Trace::kNoParent);
  sub2.AddSpan("Filter", s2);
  t2.Graft(sub2, c2);
  EXPECT_EQ(t.StructureDigest(), t2.StructureDigest());
  t2.span(c2).attrs["dop"] = 4;
  EXPECT_NE(t.StructureDigest(), t2.StructureDigest());
  EXPECT_EQ(t.StructureDigest(false), t2.StructureDigest(false))
      << "attr-free digest ignores dop";
}

class ExplainAnalyzeTest : public ObservabilityTest {
 protected:
  ExplainAnalyzeTest() : engine_(EngineConfig{}), session_(engine_.CreateSession()) {
    Exec("CREATE TABLE obs (id INT, grp INT, v INT)");
    Exec("INSERT INTO obs VALUES (1, 1, 10), (2, 1, 20), (3, 2, 30), "
         "(4, 2, 40), (5, 3, 50)");
  }

  QueryResult Exec(const std::string& sql) {
    auto r = engine_.Execute(session_.get(), sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  Engine engine_;
  std::shared_ptr<Session> session_;
};

TEST_F(ExplainAnalyzeTest, AnnotatedPlanReportsActualCardinalities) {
  QueryResult plain = Exec("SELECT grp, COUNT(*) FROM obs GROUP BY grp");
  ASSERT_EQ(plain.rows.num_rows(), 3u);

  QueryResult r = Exec("EXPLAIN ANALYZE SELECT grp, COUNT(*) FROM obs GROUP BY grp");
  EXPECT_EQ(r.rows.num_rows(), 0u) << "report goes in message, not rows";
  EXPECT_EQ(r.affected_rows, 3) << "cardinality of the analyzed query";
  EXPECT_NE(r.message.find("EXPLAIN ANALYZE"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("rows=3"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("HashAgg"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("wall="), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("self="), std::string::npos) << r.message;
  // Scan cardinality annotated too: 5 base rows feed the aggregate.
  EXPECT_NE(r.message.find("rows=5"), std::string::npos) << r.message;

  // The span tree parks on the session for programmatic access.
  auto trace = session_->last_trace();
  ASSERT_NE(trace, nullptr);
  ASSERT_FALSE(trace->empty());
  EXPECT_EQ(trace->spans()[0].name, "Query");
  EXPECT_EQ(trace->spans()[0].rows, 3u);
}

TEST_F(ExplainAnalyzeTest, PlainExplainStillStatic) {
  QueryResult r = Exec("EXPLAIN SELECT * FROM obs");
  EXPECT_EQ(r.message.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_EQ(r.message.find("wall="), std::string::npos)
      << "EXPLAIN without ANALYZE must not execute or time anything";
  EXPECT_NE(r.message.find("Scan"), std::string::npos) << r.message;
}

TEST_F(ExplainAnalyzeTest, QueriesMoveRegistryCounters) {
  MetricSnapshot before = MetricRegistry::Global().Snapshot();
  QueryResult r = Exec("SELECT COUNT(*) FROM obs WHERE v >= 30");
  ASSERT_EQ(r.rows.num_rows(), 1u);
  MetricSnapshot delta =
      SnapshotDelta(before, MetricRegistry::Global().Snapshot());
  EXPECT_GE(delta["exec.rows_out"], 1) << "operators report rows";
  EXPECT_GE(delta["exec.batches_out"], 1);
  EXPECT_GE(delta["exec.operator_opens"], 2) << "scan + aggregate at least";
  EXPECT_GE(delta["exec.batch_rows.count"], 1) << "batch-size histogram fed";
}

}  // namespace
}  // namespace dashdb
