// Tests for deployment simulation: hardware detection, automatic
// configuration, container lifecycle, and the <30-minute claim (paper II.A).
#include <gtest/gtest.h>

#include "deploy/container.h"

namespace dashdb {
namespace {

TEST(HardwareTest, DetectLocalIsSane) {
  HardwareProfile hw = DetectLocalHardware();
  EXPECT_GE(hw.cores, 1);
  EXPECT_GT(hw.ram_bytes, size_t{256} << 20);
}

TEST(HardwareTest, MinimumRequirements) {
  HardwareProfile tiny{"tiny", 2, size_t{4} << 30, size_t{10} << 30, false};
  EXPECT_EQ(CheckMinimumRequirements(tiny).code(),
            StatusCode::kResourceExhausted);
  HardwareProfile ok{"ok", 4, size_t{8} << 30, size_t{20} << 30, true};
  EXPECT_TRUE(CheckMinimumRequirements(ok).ok());
}

class AutoConfigProfileTest
    : public ::testing::TestWithParam<HardwareProfile> {};

TEST_P(AutoConfigProfileTest, InvariantsHoldOnEveryProfile) {
  // Property: for every reference profile (laptop .. 72-way/6TB), the
  // derived config passes all invariants and fits in RAM.
  const HardwareProfile& hw = GetParam();
  auto cfg = ComputeAutoConfig(hw);
  ASSERT_TRUE(cfg.ok()) << hw.name;
  EXPECT_TRUE(ValidateConfig(hw, *cfg).ok()) << hw.name;
  EXPECT_LE(cfg->TotalAllocated(), hw.ram_bytes);
  EXPECT_EQ(cfg->query_parallelism, hw.cores);
  EXPECT_GE(cfg->bufferpool_bytes, hw.ram_bytes * 30 / 100);
  EXPECT_GT(cfg->spark_bytes, 0u) << "Spark shares node memory (II.D)";
}

INSTANTIATE_TEST_SUITE_P(
    StandardProfiles, AutoConfigProfileTest,
    ::testing::ValuesIn(StandardProfiles()),
    [](const ::testing::TestParamInfo<HardwareProfile>& info) {
      std::string n = info.param.name;
      for (char& c : n) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(AutoConfigTest, ScalesWithHardware) {
  auto small = *ComputeAutoConfig(StandardProfiles()[0]);   // laptop
  auto large = *ComputeAutoConfig(StandardProfiles()[3]);   // 72-way 6TB
  EXPECT_GT(large.bufferpool_bytes, small.bufferpool_bytes * 100);
  EXPECT_GT(large.query_parallelism, small.query_parallelism);
  EXPECT_GT(large.shards_per_node, small.shards_per_node);
}

TEST(AutoConfigTest, EngineConfigProjection) {
  auto cfg = *ComputeAutoConfig(StandardProfiles()[1]);
  EngineConfig e = ToEngineConfig(cfg);
  EXPECT_EQ(e.buffer_pool_bytes, cfg.bufferpool_bytes);
  EXPECT_EQ(e.buffer_policy, ReplacementPolicy::kRandomWeight);
}

std::vector<Host> MakeHosts(int n, const HardwareProfile& hw,
                            std::shared_ptr<ClusterFileSystem> fs) {
  std::vector<Host> hosts;
  for (int i = 0; i < n; ++i) {
    Host h("node" + std::to_string(i), hw);
    h.InstallDocker();
    h.MountClusterFs(fs);
    hosts.push_back(std::move(h));
  }
  return hosts;
}

TEST(DeployTest, PrerequisitesEnforced) {
  Deployer d;
  auto fs = std::make_shared<ClusterFileSystem>();
  // Missing Docker.
  std::vector<Host> h1 = {Host("n0", StandardProfiles()[1])};
  h1[0].MountClusterFs(fs);
  EXPECT_EQ(d.DeployCluster(&h1, "ibmdashdb/local:1.0").status().code(),
            StatusCode::kUnavailable);
  // Missing clusterfs mount.
  std::vector<Host> h2 = {Host("n0", StandardProfiles()[1])};
  h2[0].InstallDocker();
  EXPECT_EQ(d.DeployCluster(&h2, "ibmdashdb/local:1.0").status().code(),
            StatusCode::kUnavailable);
  // Below minimum hardware.
  HardwareProfile tiny{"tiny", 2, size_t{4} << 30, size_t{10} << 30, false};
  auto h3 = MakeHosts(1, tiny, fs);
  EXPECT_EQ(d.DeployCluster(&h3, "ibmdashdb/local:1.0").status().code(),
            StatusCode::kResourceExhausted);
}

TEST(DeployTest, SingleNodeDeploymentUnderFiveMinutes) {
  Deployer d;
  auto fs = std::make_shared<ClusterFileSystem>();
  auto hosts = MakeHosts(1, StandardProfiles()[0], fs);
  auto r = d.DeployCluster(&hosts, "ibmdashdb/local:1.0");
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->TotalSeconds(), 5 * 60.0);
  EXPECT_EQ(hosts[0].container().state, ContainerState::kRunning);
  ASSERT_EQ(r->node_configs.size(), 1u);
}

TEST(DeployTest, LargeClusterUnderThirtyMinutes) {
  // The paper's headline: "consistently able to deploy to large clusters in
  // under 30 minutes, fully configured".
  Deployer d;
  auto fs = std::make_shared<ClusterFileSystem>();
  auto hosts = MakeHosts(24, StandardProfiles()[3], fs);  // 24 x 6TB nodes
  auto r = d.DeployCluster(&hosts, "ibmdashdb/local:1.0");
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->TotalSeconds(), 30 * 60.0) << r->Describe();
  EXPECT_EQ(r->node_configs.size(), 24u);
}

TEST(DeployTest, OnlyOneContainerPerHost) {
  Deployer d;
  auto fs = std::make_shared<ClusterFileSystem>();
  auto hosts = MakeHosts(1, StandardProfiles()[1], fs);
  ASSERT_TRUE(d.DeployCluster(&hosts, "ibmdashdb/local:1.0").ok());
  EXPECT_EQ(d.DeployCluster(&hosts, "ibmdashdb/local:1.0").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(DeployTest, StackUpdatePreservesDataAndIsFasterThanDeploy) {
  Deployer d;
  auto fs = std::make_shared<ClusterFileSystem>();
  ASSERT_TRUE(fs->WriteFile("/mnt/clusterfs/db/data.bin", {1, 2, 3}).ok());
  auto hosts = MakeHosts(4, StandardProfiles()[1], fs);
  auto deploy = d.DeployCluster(&hosts, "ibmdashdb/local:1.0");
  ASSERT_TRUE(deploy.ok());
  auto update = d.UpdateStack(&hosts, "ibmdashdb/local:1.1");
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(hosts[0].container().image, "ibmdashdb/local:1.1");
  // The data written before the update is untouched.
  EXPECT_TRUE(fs->Exists("/mnt/clusterfs/db/data.bin"));
  EXPECT_LT(update->TotalSeconds(), 30 * 60.0);
}

TEST(DeployTest, UpdateRequiresRunningContainer) {
  Deployer d;
  auto fs = std::make_shared<ClusterFileSystem>();
  auto hosts = MakeHosts(1, StandardProfiles()[1], fs);
  EXPECT_EQ(d.UpdateStack(&hosts, "ibmdashdb/local:2.0").status().code(),
            StatusCode::kUnavailable);
}

TEST(DeployTest, ParallelHostModel) {
  // Host steps overlap across hosts: a 24-node deploy is not 24x slower
  // than 1 node.
  Deployer d;
  auto fs = std::make_shared<ClusterFileSystem>();
  auto one = MakeHosts(1, StandardProfiles()[1], fs);
  auto many = MakeHosts(24, StandardProfiles()[1], fs);
  double t1 = d.DeployCluster(&one, "img:1")->TotalSeconds();
  double t24 = d.DeployCluster(&many, "img:1")->TotalSeconds();
  EXPECT_LT(t24, t1 * 2);
}

}  // namespace
}  // namespace dashdb
