// Shared differential-test corpus: the loaded 4-node MPP cluster, the
// query corpus, and the canonical result serialization. Used by the
// in-process differential suite (differential_test.cc) and the wire-
// protocol differential suite (wire_differential_test.cc), which must both
// hold the engine to the same byte-identical standard.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mpp/mpp.h"

namespace dashdb {
namespace corpus {

/// Canonical string form of a result (columns + every row, in order).
inline std::string ResultKey(const QueryResult& r) {
  std::ostringstream os;
  for (const auto& c : r.columns) os << c.name << '|';
  os << '\n';
  for (size_t i = 0; i < r.rows.num_rows(); ++i) {
    for (size_t c = 0; c < r.rows.columns.size(); ++c) {
      os << r.rows.columns[c].GetValue(i).ToString() << '|';
    }
    os << '\n';
  }
  return os.str();
}

/// 4-node cluster, 2 shards/node; every shard engine runs at `dop`.
/// Fact table T hash-distributes on ID; dims D and C are replicated so
/// joins stay shard-local (collocated star join). H is a high-cardinality
/// replicated dim (one row per fact ID); E is a snowflake outrigger off D.
inline std::unique_ptr<MppDatabase> MakeLoadedDb(int dop) {
  EngineConfig cfg;
  cfg.query_parallelism = dop;
  auto db = std::make_unique<MppDatabase>(4, 2, 8, size_t{8} << 30, cfg);

  TableSchema fact("PUBLIC", "T",
                   {{"ID", TypeId::kInt64, false, 0, false},
                    {"GRP", TypeId::kInt64, true, 0, false},
                    {"CAT", TypeId::kInt64, true, 0, false},
                    {"V", TypeId::kInt64, true, 0, false},
                    {"S", TypeId::kVarchar, true, 0, false}});
  fact.set_distribution_key(0);
  EXPECT_TRUE(db->CreateTable(fact).ok());

  TableSchema dim_d("PUBLIC", "D",
                    {{"GRP", TypeId::kInt64, false, 0, false},
                     {"A", TypeId::kInt64, true, 0, false}});
  EXPECT_TRUE(db->CreateTable(dim_d, /*replicated=*/true).ok());
  TableSchema dim_c("PUBLIC", "C",
                    {{"CAT", TypeId::kInt64, false, 0, false},
                     {"B", TypeId::kInt64, true, 0, false}});
  EXPECT_TRUE(db->CreateTable(dim_c, /*replicated=*/true).ok());

  TableSchema dim_h("PUBLIC", "H",
                    {{"ID", TypeId::kInt64, false, 0, false},
                     {"W", TypeId::kInt64, true, 0, false}});
  EXPECT_TRUE(db->CreateTable(dim_h, /*replicated=*/true).ok());

  TableSchema dim_e("PUBLIC", "E",
                    {{"A", TypeId::kInt64, false, 0, false},
                     {"Z", TypeId::kInt64, true, 0, false}});
  EXPECT_TRUE(db->CreateTable(dim_e, /*replicated=*/true).ok());

  RowBatch t;
  for (int i = 0; i < 4; ++i) t.columns.emplace_back(TypeId::kInt64);
  t.columns.emplace_back(TypeId::kVarchar);
  for (int i = 0; i < 400; ++i) {
    t.columns[0].AppendInt(i);
    t.columns[1].AppendInt(i % 7);
    t.columns[2].AppendInt(i % 5);
    t.columns[3].AppendInt(i * 31 % 101);
    t.columns[4].AppendString("s" + std::to_string(i % 13));
  }
  EXPECT_TRUE(db->Load("PUBLIC", "T", t).ok());

  RowBatch d;
  d.columns.emplace_back(TypeId::kInt64);
  d.columns.emplace_back(TypeId::kInt64);
  for (int g = 0; g < 7; ++g) {
    d.columns[0].AppendInt(g);
    d.columns[1].AppendInt(g / 2);
  }
  EXPECT_TRUE(db->Load("PUBLIC", "D", d).ok());

  RowBatch c;
  c.columns.emplace_back(TypeId::kInt64);
  c.columns.emplace_back(TypeId::kInt64);
  for (int k = 0; k < 5; ++k) {
    c.columns[0].AppendInt(k);
    c.columns[1].AppendInt(k % 2);
  }
  EXPECT_TRUE(db->Load("PUBLIC", "C", c).ok());

  RowBatch h;
  h.columns.emplace_back(TypeId::kInt64);
  h.columns.emplace_back(TypeId::kInt64);
  for (int i = 0; i < 400; ++i) {
    h.columns[0].AppendInt(i);
    h.columns[1].AppendInt(i * 17 % 89);
  }
  EXPECT_TRUE(db->Load("PUBLIC", "H", h).ok());

  RowBatch e;
  e.columns.emplace_back(TypeId::kInt64);
  e.columns.emplace_back(TypeId::kInt64);
  for (int a = 0; a < 4; ++a) {
    e.columns[0].AppendInt(a);
    e.columns[1].AppendInt(a % 2);
  }
  EXPECT_TRUE(db->Load("PUBLIC", "E", e).ok());
  return db;
}

inline constexpr const char* kCorpus[] = {
    "SELECT COUNT(*), SUM(V), MIN(V), MAX(V) FROM T",
    "SELECT GRP, COUNT(*), SUM(V) FROM T GROUP BY GRP ORDER BY GRP",
    "SELECT COUNT(*) FROM T WHERE V >= 50",
    "SELECT ID, V FROM T WHERE GRP = 3 ORDER BY ID LIMIT 20",
    "SELECT d.A, COUNT(*), SUM(t.V) FROM T t JOIN D d ON t.GRP = d.GRP "
    "GROUP BY d.A ORDER BY d.A",
    "SELECT d.A, COUNT(*), SUM(t.V) FROM T t JOIN D d ON t.GRP = d.GRP "
    "JOIN C c ON t.CAT = c.CAT WHERE c.B = 1 GROUP BY d.A ORDER BY d.A",
    // High-cardinality join: every probe row hits a distinct build key.
    "SELECT COUNT(*), SUM(h.W), MIN(h.W), MAX(h.W) FROM T t "
    "JOIN H h ON t.ID = h.ID WHERE t.V < 60",
    // Multi-column and string group keys (arena-backed serialized keys).
    "SELECT GRP, CAT, COUNT(*), SUM(V) FROM T GROUP BY GRP, CAT "
    "ORDER BY GRP, CAT",
    "SELECT S, COUNT(*), MIN(V), MAX(V) FROM T GROUP BY S ORDER BY S",
    "SELECT S, GRP, COUNT(*) FROM T GROUP BY S, GRP ORDER BY S, GRP",
    // Bare COUNT(*) with one sargable predicate: the CountStarScan fast
    // path on every shard, merged by the coordinator.
    "SELECT COUNT(*) FROM T WHERE V <= 50",
    "SELECT COUNT(*) FROM T WHERE GRP = 4",
    // Expression-heavy shapes through the vectorized engine: CASE arms,
    // LIKE prefix, mixed-type arithmetic, and residual (non-sargable)
    // predicates that run as dictionary-code filters mid-query.
    "SELECT ID, CASE WHEN V >= 67 THEN 'hi' WHEN V >= 34 THEN 'mid' "
    "ELSE 'lo' END FROM T WHERE GRP = 1 ORDER BY ID LIMIT 30",
    "SELECT S, COUNT(*) FROM T WHERE S LIKE 's1%' GROUP BY S ORDER BY S",
    "SELECT GRP, SUM(CASE WHEN CAT = 2 THEN V ELSE 0 END), "
    "SUM(V / 2.0 + CAT * 3) FROM T GROUP BY GRP ORDER BY GRP",
    "SELECT ID, V * 31 - CAT FROM T WHERE GRP = 2 OR CAT = 4 "
    "ORDER BY ID LIMIT 25",
    "SELECT COUNT(*), SUM(V) FROM T WHERE V % 7 = 0 AND S LIKE 's%'",
    "SELECT ID, CONCAT(S, CONCAT('x', CAT)) FROM T "
    "WHERE S = 's3' AND V + CAT >= 40 ORDER BY ID LIMIT 15",
    // Multi-join shapes for the cost-based optimizer (comma syntax takes
    // the >= 3-way cost path on every shard).
    "SELECT COUNT(*), SUM(t.V), SUM(h.W) FROM T t, D d, C c, H h "
    "WHERE t.GRP = d.GRP AND t.CAT = c.CAT AND t.ID = h.ID AND c.B = 1",
    // Snowflake: the E outrigger is reachable only through D.
    "SELECT e.Z, COUNT(*), SUM(t.V) FROM T t, D d, E e "
    "WHERE t.GRP = d.GRP AND d.A = e.A AND e.Z = 1 GROUP BY e.Z ORDER BY e.Z",
    // Cyclic join graph: the d-c edge closes a cycle over the fact.
    "SELECT COUNT(*), SUM(t.V) FROM T t, D d, C c "
    "WHERE t.GRP = d.GRP AND t.CAT = c.CAT AND d.A = c.B",
    // Cross-shard Bloom semi-join: distributed fact against a filtered
    // replicated dim ships a serialized filter in every shard request.
    "SELECT COUNT(*), SUM(t.V) FROM T t, H h "
    "WHERE t.ID = h.ID AND h.W <= 40",
    // ORDER BY/LIMIT/OFFSET shapes for the pushed-down parallel sort: the
    // coordinator must merge pre-sorted shard streams byte-identically to
    // a global re-sort, at DOP 1/4 and under node-kill replay.
    "SELECT ID, V, S FROM T ORDER BY V DESC, ID LIMIT 31",
    "SELECT ID, V FROM T ORDER BY V, ID LIMIT 40 OFFSET 25",
    "SELECT S, V, ID FROM T ORDER BY S, V DESC, ID",
    "SELECT ID, V + CAT FROM T WHERE V >= 10 ORDER BY V + CAT, ID LIMIT 12",
    // Non-unique sort key: ties resolved by the stable shard-order
    // tie-break, which must equal concatenation + stable global sort.
    "SELECT GRP, ID FROM T ORDER BY GRP LIMIT 50",
};
inline constexpr size_t kCorpusSize = sizeof(kCorpus) / sizeof(kCorpus[0]);

}  // namespace corpus
}  // namespace dashdb
