// Tests for the MPP layer: topology/HA/elasticity (paper II.E, Figure 9)
// and distributed query execution (Figure 2).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mpp/mpp.h"

namespace dashdb {
namespace {

// ---------------------------------------------------------------- topology --

TEST(TopologyTest, InitialBalancedLayout) {
  ClusterTopology t(4, 6, 16, size_t{64} << 30);
  EXPECT_EQ(t.num_nodes(), 4);
  EXPECT_EQ(t.num_shards(), 24);
  for (int n = 0; n < 4; ++n) EXPECT_EQ(t.ShardsOnNode(n).size(), 6u);
}

TEST(TopologyTest, ShardsCappedByCores) {
  // Paper: shard count "not larger than the cumulative number of cores".
  ClusterTopology t(2, 100, 8, size_t{1} << 30);
  EXPECT_EQ(t.num_shards(), 16);
}

TEST(TopologyTest, Figure9Failover) {
  // The paper's example: 4 servers x 6 shards; server D fails; survivors
  // serve 8 shards each.
  ClusterTopology t(4, 6, 16, size_t{64} << 30);
  auto stats = t.FailNode(3);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->shards_moved, 6u);
  EXPECT_EQ(stats->surviving_nodes, 3);
  EXPECT_EQ(stats->max_shards_per_node, 8u);
  EXPECT_EQ(stats->min_shards_per_node, 8u);
  for (int n = 0; n < 3; ++n) EXPECT_EQ(t.ShardsOnNode(n).size(), 8u);
  EXPECT_EQ(t.ShardsOnNode(3).size(), 0u);
  // Per-shard resources shrink accordingly (II.E).
  EXPECT_EQ(t.CoresPerShard(0), 2);  // 16 cores / 8 shards
}

TEST(TopologyTest, RepairRebalancesBack) {
  ClusterTopology t(4, 6, 16, size_t{64} << 30);
  ASSERT_TRUE(t.FailNode(3).ok());
  auto stats = t.RepairNode(3);
  ASSERT_TRUE(stats.ok());
  for (int n = 0; n < 4; ++n) EXPECT_EQ(t.ShardsOnNode(n).size(), 6u);
}

TEST(TopologyTest, CannotFailLastAliveNode) {
  ClusterTopology t(2, 4, 8, size_t{8} << 30);
  ASSERT_TRUE(t.FailNode(0).ok());
  auto last = t.FailNode(1);
  ASSERT_FALSE(last.ok()) << "losing the last node must be a clean error";
  EXPECT_EQ(last.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(t.num_alive_nodes(), 1) << "survivor untouched by the refusal";
  EXPECT_EQ(t.ShardsOnNode(1).size(), 8u) << "all shards still served";
  // Deliberate removal shares the FailNode mechanics and the guard.
  EXPECT_FALSE(t.RemoveNode(1).ok());
}

TEST(TopologyTest, DoubleFailAndDoubleRepairAreCleanErrors) {
  ClusterTopology t(3, 4, 8, size_t{8} << 30);
  ASSERT_TRUE(t.FailNode(2).ok());
  auto twice = t.FailNode(2);
  ASSERT_FALSE(twice.ok());
  EXPECT_EQ(twice.status().code(), StatusCode::kUnavailable);
  ASSERT_TRUE(t.RepairNode(2).ok());
  auto again = t.RepairNode(2);
  ASSERT_FALSE(again.ok()) << "repairing an up node must not rebalance";
  EXPECT_EQ(again.status().code(), StatusCode::kInvalidArgument);
  for (int n = 0; n < 3; ++n) EXPECT_EQ(t.ShardsOnNode(n).size(), 4u);
  // Out-of-range ids on both paths.
  EXPECT_EQ(t.FailNode(-1).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.RepairNode(99).status().code(), StatusCode::kInvalidArgument);
}

TEST(TopologyTest, ElasticGrowAndShrink) {
  ClusterTopology t(3, 8, 16, size_t{64} << 30);  // 24 shards
  auto grow = t.AddNode(16, size_t{64} << 30);
  ASSERT_TRUE(grow.ok());
  EXPECT_EQ(t.num_alive_nodes(), 4);
  EXPECT_EQ(grow->max_shards_per_node, 6u);
  auto shrink = t.RemoveNode(0);
  ASSERT_TRUE(shrink.ok());
  EXPECT_EQ(t.num_alive_nodes(), 3);
  EXPECT_EQ(shrink->max_shards_per_node, 8u);
}

TEST(TopologyTest, CannotFailLastNode) {
  ClusterTopology t(2, 4, 8, size_t{1} << 30);
  ASSERT_TRUE(t.FailNode(0).ok());
  EXPECT_EQ(t.FailNode(1).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(t.FailNode(0).status().code(),
            StatusCode::kUnavailable);  // already down
}

TEST(TopologyTest, MakespanModelsScaling) {
  // Equal work per shard: doubling the node count halves the makespan.
  ClusterTopology t4(4, 4, 4, size_t{1} << 30);
  ClusterTopology t8(8, 4, 4, size_t{1} << 30);
  std::vector<double> work4(t4.num_shards(), 1.0);
  std::vector<double> work8(t8.num_shards(), 1.0);
  // Same total data spread over more shards means each shard holds less:
  // model by scaling per-shard time with shard count.
  for (auto& w : work8) w = 0.5;
  double m4 = t4.Makespan(work4);
  double m8 = t8.Makespan(work8);
  EXPECT_NEAR(m8, m4 / 2, 1e-9);
}

TEST(TopologyTest, FailoverSlowsByExpectedFactor) {
  // Figure 9 arithmetic: losing 1 of 4 nodes leaves 3/4 of the compute;
  // with per-shard parallelism rescaled (work-conserving model), uniform
  // work slows by exactly 4/3.
  ClusterTopology t(4, 6, 6, size_t{1} << 30);
  std::vector<double> work(t.num_shards(), 1.0);
  double before = t.Makespan(work);
  ASSERT_TRUE(t.FailNode(3).ok());
  double after = t.Makespan(work);
  EXPECT_NEAR(after / before, 4.0 / 3.0, 1e-9);
}

// --------------------------------------------------------------- database --

class MppTest : public ::testing::Test {
 protected:
  MppTest() : db_(4, 4, 8, size_t{8} << 30) {
    TableSchema sales(
        "PUBLIC", "SALES",
        {{"ID", TypeId::kInt64, false, 0, false},
         {"CUST", TypeId::kInt64, true, 0, false},
         {"AMT", TypeId::kDouble, true, 0, false}});
    sales.set_distribution_key(0);
    EXPECT_TRUE(db_.CreateTable(sales).ok());
    TableSchema cust("PUBLIC", "CUST",
                     {{"C_ID", TypeId::kInt64, false, 0, false},
                      {"NAME", TypeId::kVarchar, true, 0, false}});
    EXPECT_TRUE(db_.CreateTable(cust, /*replicated=*/true).ok());

    RowBatch rows;
    rows.columns.emplace_back(TypeId::kInt64);
    rows.columns.emplace_back(TypeId::kInt64);
    rows.columns.emplace_back(TypeId::kDouble);
    for (int i = 0; i < 10000; ++i) {
      rows.columns[0].AppendInt(i);
      rows.columns[1].AppendInt(i % 50);
      rows.columns[2].AppendDouble(i % 100);
    }
    EXPECT_TRUE(db_.Load("PUBLIC", "SALES", rows).ok());
    RowBatch custs;
    custs.columns.emplace_back(TypeId::kInt64);
    custs.columns.emplace_back(TypeId::kVarchar);
    for (int i = 0; i < 50; ++i) {
      custs.columns[0].AppendInt(i);
      custs.columns[1].AppendString("c" + std::to_string(i));
    }
    EXPECT_TRUE(db_.Load("PUBLIC", "CUST", custs).ok());
  }

  MppDatabase db_;
};

TEST_F(MppTest, HashDistributionBalances) {
  auto counts = db_.ShardRowCounts("PUBLIC", "SALES");
  ASSERT_TRUE(counts.ok());
  size_t total = 0;
  for (size_t c : *counts) {
    total += c;
    EXPECT_GT(c, 10000u / 16 / 2) << "shard badly unbalanced";
  }
  EXPECT_EQ(total, 10000u);
}

TEST_F(MppTest, ReplicatedTableOnEveryShard) {
  auto counts = db_.ShardRowCounts("PUBLIC", "CUST");
  ASSERT_TRUE(counts.ok());
  for (size_t c : *counts) EXPECT_EQ(c, 50u);
}

TEST_F(MppTest, GlobalCount) {
  auto r = db_.Execute("SELECT COUNT(*) FROM sales");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->result.rows.columns[0].GetInt(0), 10000);
}

TEST_F(MppTest, GlobalAggregates) {
  auto r = db_.Execute(
      "SELECT COUNT(*), SUM(amt), MIN(amt), MAX(amt), AVG(amt) FROM sales");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const RowBatch& rb = r->result.rows;
  EXPECT_EQ(rb.columns[0].GetInt(0), 10000);
  EXPECT_DOUBLE_EQ(rb.columns[2].GetDouble(0), 0.0);
  EXPECT_DOUBLE_EQ(rb.columns[3].GetDouble(0), 99.0);
  EXPECT_NEAR(rb.columns[4].GetDouble(0), 49.5, 0.01);
}

TEST_F(MppTest, GroupByMergesAcrossShards) {
  auto r = db_.Execute(
      "SELECT cust, COUNT(*), SUM(amt) FROM sales GROUP BY cust "
      "ORDER BY cust LIMIT 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->result.rows.num_rows(), 5u);
  // Every customer has 200 rows regardless of sharding.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(r->result.rows.columns[1].GetInt(i), 200);
  }
}

TEST_F(MppTest, WherePushdownAcrossShards) {
  auto r = db_.Execute("SELECT COUNT(*) FROM sales WHERE id < 100");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.rows.columns[0].GetInt(0), 100);
}

TEST_F(MppTest, ShardLocalJoinWithReplicatedDim) {
  auto r = db_.Execute(
      "SELECT COUNT(*) FROM sales s JOIN cust c ON s.cust = c.c_id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->result.rows.columns[0].GetInt(0), 10000);
}

TEST_F(MppTest, NonAggSelectMergesAndSorts) {
  auto r = db_.Execute(
      "SELECT id, amt FROM sales WHERE id < 20 ORDER BY id DESC LIMIT 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->result.rows.num_rows(), 3u);
  EXPECT_EQ(r->result.rows.columns[0].GetInt(0), 19);
  EXPECT_EQ(r->result.rows.columns[0].GetInt(2), 17);
}

TEST_F(MppTest, RoutedInsertLandsOnOneShard) {
  auto before = *db_.ShardRowCounts("PUBLIC", "SALES");
  auto r = db_.Execute("INSERT INTO sales VALUES (990001, 1, 5.0)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto after = *db_.ShardRowCounts("PUBLIC", "SALES");
  size_t changed = 0;
  for (size_t s = 0; s < before.size(); ++s) {
    if (after[s] != before[s]) ++changed;
  }
  EXPECT_EQ(changed, 1u);
  auto c = db_.Execute("SELECT COUNT(*) FROM sales WHERE id = 990001");
  EXPECT_EQ(c->result.rows.columns[0].GetInt(0), 1);
}

TEST_F(MppTest, BroadcastDeleteAndUpdate) {
  auto d = db_.Execute("DELETE FROM sales WHERE cust = 7");
  ASSERT_TRUE(d.ok());
  auto c = db_.Execute("SELECT COUNT(*) FROM sales");
  EXPECT_EQ(c->result.rows.columns[0].GetInt(0), 9800);
  auto u = db_.Execute("UPDATE sales SET amt = 0 WHERE cust = 8");
  ASSERT_TRUE(u.ok());
  auto s = db_.Execute("SELECT SUM(amt) FROM sales WHERE cust = 8");
  EXPECT_DOUBLE_EQ(s->result.rows.columns[1 - 1].GetDouble(0), 0.0);
}

TEST_F(MppTest, QueriesSurviveNodeFailure) {
  // HA story: after failover the same queries return the same answers —
  // shards moved, data did not.
  ASSERT_TRUE(db_.topology()->FailNode(2).ok());
  auto r = db_.Execute("SELECT COUNT(*) FROM sales");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.rows.columns[0].GetInt(0), 10000);
  // The survivors absorbed the failed node's shards (Figure 9).
  size_t max_shards = 0;
  for (int n = 0; n < db_.topology()->num_nodes(); ++n) {
    max_shards = std::max(max_shards, db_.topology()->ShardsOnNode(n).size());
  }
  EXPECT_GE(max_shards, 5u);  // 16 shards over 3 survivors
  EXPECT_EQ(db_.topology()->ShardsOnNode(2).size(), 0u);
}

TEST_F(MppTest, ExplicitDdlBroadcast) {
  auto r = db_.Execute("CREATE TABLE t2 (x INT)");
  ASSERT_TRUE(r.ok());
  auto i = db_.Execute("INSERT INTO t2 VALUES (1)");
  ASSERT_TRUE(i.ok());
  auto c = db_.Execute("SELECT COUNT(*) FROM t2");
  EXPECT_EQ(c->result.rows.columns[0].GetInt(0), 1);
}

}  // namespace
}  // namespace dashdb
