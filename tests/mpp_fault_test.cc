// Mid-query fault tolerance for distributed execution (paper II.E made an
// exercised code path): a node killed at any shard index, transient shard
// errors, injected stalls (straggler speculation, timeout re-execution) —
// every MPP query must still return results byte-identical to the
// fault-free run, and the whole schedule must replay from its seed.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "mpp/mpp.h"

namespace dashdb {
namespace {

constexpr const char* kShardExec = "mpp.shard_exec";
constexpr const char* kShardStall = "mpp.shard_stall";

/// Canonical string form of a result (columns + every row, in order).
std::string ResultKey(const MppQueryResult& r) {
  std::ostringstream os;
  for (const auto& c : r.result.columns) os << c.name << '|';
  os << '\n';
  const RowBatch& rows = r.result.rows;
  for (size_t i = 0; i < rows.num_rows(); ++i) {
    for (size_t c = 0; c < rows.columns.size(); ++c) {
      os << rows.columns[c].GetValue(i).ToString() << '|';
    }
    os << '\n';
  }
  return os.str();
}

std::unique_ptr<MppDatabase> MakeLoadedDb() {
  auto db = std::make_unique<MppDatabase>(4, 2, 8, size_t{8} << 30);
  TableSchema schema("PUBLIC", "T",
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"GRP", TypeId::kInt64, true, 0, false},
                      {"V", TypeId::kInt64, true, 0, false}});
  schema.set_distribution_key(0);
  EXPECT_TRUE(db->CreateTable(schema).ok());
  RowBatch rows;
  rows.columns.emplace_back(TypeId::kInt64);
  rows.columns.emplace_back(TypeId::kInt64);
  rows.columns.emplace_back(TypeId::kInt64);
  for (int i = 0; i < 400; ++i) {
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendInt(i % 7);
    rows.columns[2].AppendInt(i * 31 % 101);
  }
  EXPECT_TRUE(db->Load("PUBLIC", "T", rows).ok());
  return db;
}

const char* kQueries[] = {
    "SELECT COUNT(*), SUM(V), MIN(V), MAX(V) FROM T",
    "SELECT GRP, COUNT(*), SUM(V) FROM T GROUP BY GRP ORDER BY GRP",
    "SELECT ID, V FROM T ORDER BY ID LIMIT 25",
};

class MppFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().ResetForTest();
    MetricRegistry::Global().ResetForTest();
  }
  void TearDown() override { FaultInjector::Global().ResetForTest(); }
};

TEST_F(MppFaultTest, NodeKillAtEveryShardIndexPreservesResults) {
  // Fault-free baselines first.
  std::vector<std::string> baseline;
  {
    auto db = MakeLoadedDb();
    for (const char* q : kQueries) {
      auto r = db->Execute(q);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      baseline.push_back(ResultKey(*r));
    }
  }
  // Kill the owner node exactly when shard k's first attempt starts, for
  // every k and every query shape.
  const int num_shards = MakeLoadedDb()->num_shards();
  for (size_t qi = 0; qi < 3; ++qi) {
    for (int k = 0; k < num_shards; ++k) {
      auto fresh = MakeLoadedDb();
      FaultInjector::Global().Reset(1000 + k);
      FaultSpec kill;
      kill.code = StatusCode::kUnavailable;
      kill.message = "node lost";
      kill.skip_hits = static_cast<uint64_t>(k);
      kill.max_fires = 1;
      FaultInjector::Global().Arm(kShardExec, kill);
      auto r = fresh->Execute(kQueries[qi]);
      ASSERT_TRUE(r.ok()) << "shard " << k << ": " << r.status().ToString();
      EXPECT_EQ(ResultKey(*r), baseline[qi])
          << "query " << qi << " changed after node kill at shard " << k
          << " (seed " << FaultInjector::Global().seed() << ")";
      EXPECT_EQ(r->exec.shard_retries, 1u);
      EXPECT_EQ(r->exec.failovers, 1u) << "owner reassociated mid-query";
      EXPECT_EQ(fresh->topology()->num_alive_nodes(), 3);
    }
  }
}

TEST_F(MppFaultTest, TransientErrorsRetryWithoutFailover) {
  auto db = MakeLoadedDb();
  auto clean = db->Execute(kQueries[0]);
  ASSERT_TRUE(clean.ok());
  FaultSpec flaky;
  flaky.code = StatusCode::kAborted;  // transient, not a node death
  flaky.max_fires = 2;
  FaultInjector::Global().Arm(kShardExec, flaky);
  auto r = db->Execute(kQueries[0]);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(ResultKey(*r), ResultKey(*clean));
  EXPECT_EQ(r->exec.shard_retries, 2u);
  EXPECT_EQ(r->exec.failovers, 0u) << "kAborted must not kill nodes";
  EXPECT_EQ(db->topology()->num_alive_nodes(), 4);
}

TEST_F(MppFaultTest, FatalErrorsSurfaceWithShardContext) {
  auto db = MakeLoadedDb();
  FaultSpec fatal;
  fatal.code = StatusCode::kInternal;
  fatal.max_fires = 1;
  FaultInjector::Global().Arm(kShardExec, fatal);
  auto r = db->Execute(kQueries[0]);
  ASSERT_FALSE(r.ok()) << "non-transient faults must not be retried";
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("shard 0"), std::string::npos)
      << r.status().ToString();
}

TEST_F(MppFaultTest, RetryBudgetExhaustionFailsCleanly) {
  auto db = MakeLoadedDb();
  db->failover_policy().max_attempts_per_shard = 3;
  FaultSpec always;
  always.code = StatusCode::kUnavailable;  // fires on every attempt
  FaultInjector::Global().Arm(kShardExec, always);
  auto r = db->Execute(kQueries[0]);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  // Two retries' worth of failovers, never the last node.
  EXPECT_GE(db->topology()->num_alive_nodes(), 1);
}

TEST_F(MppFaultTest, StragglerSpeculationFirstResultWins) {
  auto db = MakeLoadedDb();
  auto clean = db->Execute(kQueries[1]);
  ASSERT_TRUE(clean.ok());
  db->failover_policy().straggler_after_seconds = 0.1;
  FaultSpec stall;
  stall.code = StatusCode::kOk;  // stall-only: the shard is slow, not dead
  stall.stall_seconds = 0.8;
  stall.max_fires = 1;
  FaultInjector::Global().Arm(kShardStall, stall);
  auto r = db->Execute(kQueries[1]);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(ResultKey(*r), ResultKey(*clean));
  EXPECT_EQ(r->exec.speculative_launches, 1u);
  EXPECT_EQ(r->exec.speculative_wins, 1u)
      << "clean re-execution beats a 0.5s straggler";
  EXPECT_EQ(r->exec.shard_retries, 0u) << "speculation is not a retry";
}

TEST_F(MppFaultTest, TimeoutBudgetReexecutesSlowAttempt) {
  auto db = MakeLoadedDb();
  auto clean = db->Execute(kQueries[2]);
  ASSERT_TRUE(clean.ok());
  db->failover_policy().shard_timeout_seconds = 0.15;
  FaultSpec stall;
  stall.code = StatusCode::kOk;
  stall.stall_seconds = 0.5;
  stall.max_fires = 1;
  FaultInjector::Global().Arm(kShardStall, stall);
  auto r = db->Execute(kQueries[2]);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(ResultKey(*r), ResultKey(*clean));
  EXPECT_EQ(r->exec.timeouts, 1u);
  EXPECT_EQ(r->exec.shard_retries, 1u) << "late result discarded, re-run";
}

TEST_F(MppFaultTest, BroadcastDdlRetriesGateFailures) {
  auto db = std::make_unique<MppDatabase>(2, 2, 4, size_t{4} << 30);
  FaultSpec flaky;
  flaky.code = StatusCode::kUnavailable;
  flaky.max_fires = 1;
  FaultInjector::Global().Arm(kShardExec, flaky);
  auto r = db->Execute(
      "CREATE TABLE PUBLIC.D (ID BIGINT NOT NULL, V BIGINT)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->exec.shard_retries, 1u);
  FaultInjector::Global().Reset(0);
  // The gate fired BEFORE the shard executed, so no shard saw the DDL
  // twice: inserts and scans behave normally on every shard.
  ASSERT_TRUE(db->Execute("INSERT INTO PUBLIC.D VALUES (1, 10), (2, 20)")
                  .ok());
  auto count = db->Execute("SELECT COUNT(*) FROM PUBLIC.D");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->result.rows.columns[0].GetValue(0).AsInt(), 2);
}

TEST_F(MppFaultTest, ProbabilisticScheduleReplaysFromSeed) {
  auto run = [&](uint64_t seed) {
    auto db = MakeLoadedDb();
    FaultInjector::Global().Reset(seed);
    FaultSpec flaky;
    flaky.code = StatusCode::kAborted;
    flaky.probability = 0.3;
    FaultInjector::Global().Arm(kShardExec, flaky);
    auto r = db->Execute(kQueries[1]);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    auto log = FaultInjector::Global().FireLog();
    std::ostringstream sched;
    for (const auto& e : log) sched << e.point << '#' << e.hit_index << ';';
    return std::make_tuple(ResultKey(*r), r->exec.shard_retries,
                           sched.str());
  };
  auto a = run(777);
  auto b = run(777);
  EXPECT_EQ(a, b) << "same seed => same schedule, retries, and bytes";
  FaultInjector::Global().Reset(0);
  auto clean = MakeLoadedDb()->Execute(kQueries[1]);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(std::get<0>(a), ResultKey(*clean))
      << "faulted run matches the fault-free answer";
}

}  // namespace
}  // namespace dashdb
