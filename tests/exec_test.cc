// Tests for the vectorized executor: expressions with SQL NULL semantics,
// the polyglot scalar function library, aggregates, and operators.
#include <gtest/gtest.h>

#include "common/datetime.h"
#include "common/rng.h"
#include "exec/functions.h"
#include "exec/operator.h"
#include "exec/sort.h"

namespace dashdb {
namespace {

ExecContext Ctx(Dialect d = Dialect::kAnsi) {
  ExecContext c;
  c.dialect = d;
  return c;
}

ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr Col(int i, TypeId t) { return std::make_shared<ColumnRefExpr>(i, t); }

Result<Value> CallFn(const std::string& name, std::vector<Value> args,
                     Dialect d = Dialect::kAnsi) {
  const FunctionDef* def = FunctionRegistry::Global().Lookup(name);
  if (!def) return Status::NotFound("fn " + name);
  ExecContext ctx = Ctx(d);
  return def->fn(args, ctx);
}

// ------------------------------------------------------------ expressions --

TEST(ExprTest, ArithmeticPromotion) {
  RowBatch b;
  ExecContext ctx = Ctx();
  auto sum = std::make_shared<ArithExpr>(ArithOp::kAdd, Lit(Value::Int64(2)),
                                         Lit(Value::Int64(3)), TypeId::kInt64);
  b.columns.emplace_back(TypeId::kInt64);
  b.columns[0].AppendInt(0);
  EXPECT_EQ(sum->EvaluateRow(b, 0, ctx)->AsInt(), 5);
  auto div = std::make_shared<ArithExpr>(ArithOp::kDiv, Lit(Value::Int64(7)),
                                         Lit(Value::Int64(2)), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(div->EvaluateRow(b, 0, ctx)->AsDouble(), 3.5);
}

TEST(ExprTest, NullPropagatesThroughArithmetic) {
  RowBatch b;
  b.columns.emplace_back(TypeId::kInt64);
  b.columns[0].AppendNull();
  ExecContext ctx = Ctx();
  auto e = std::make_shared<ArithExpr>(ArithOp::kAdd, Col(0, TypeId::kInt64),
                                       Lit(Value::Int64(1)), TypeId::kInt64);
  EXPECT_TRUE(e->EvaluateRow(b, 0, ctx)->is_null());
}

TEST(ExprTest, DivisionByZeroIsError) {
  RowBatch b;
  b.columns.emplace_back(TypeId::kInt64);
  b.columns[0].AppendInt(0);
  ExecContext ctx = Ctx();
  auto e = std::make_shared<ArithExpr>(ArithOp::kDiv, Lit(Value::Int64(1)),
                                       Lit(Value::Int64(0)), TypeId::kDouble);
  EXPECT_FALSE(e->EvaluateRow(b, 0, ctx).ok());
}

TEST(ExprTest, DateArithmetic) {
  RowBatch b;
  b.columns.emplace_back(TypeId::kInt64);
  b.columns[0].AppendInt(0);
  ExecContext ctx = Ctx();
  auto e = std::make_shared<ArithExpr>(
      ArithOp::kAdd, Lit(Value::Date(DaysFromCivil(2017, 1, 31))),
      Lit(Value::Int64(1)), TypeId::kDate);
  Value v = *e->EvaluateRow(b, 0, ctx);
  EXPECT_EQ(v.ToString(), "2017-02-01");
}

TEST(ExprTest, ThreeValuedLogic) {
  RowBatch b;
  b.columns.emplace_back(TypeId::kBoolean);
  b.columns[0].AppendNull();
  ExecContext ctx = Ctx();
  ExprPtr null_bool = Col(0, TypeId::kBoolean);
  // NULL AND FALSE = FALSE; NULL AND TRUE = NULL; NULL OR TRUE = TRUE.
  auto and_false = std::make_shared<LogicExpr>(
      LogicOp::kAnd, null_bool, Lit(Value::Boolean(false)));
  EXPECT_FALSE(and_false->EvaluateRow(b, 0, ctx)->is_null());
  EXPECT_FALSE(and_false->EvaluateRow(b, 0, ctx)->AsBool());
  auto and_true = std::make_shared<LogicExpr>(LogicOp::kAnd, null_bool,
                                              Lit(Value::Boolean(true)));
  EXPECT_TRUE(and_true->EvaluateRow(b, 0, ctx)->is_null());
  auto or_true = std::make_shared<LogicExpr>(LogicOp::kOr, null_bool,
                                             Lit(Value::Boolean(true)));
  EXPECT_TRUE(or_true->EvaluateRow(b, 0, ctx)->AsBool());
}

TEST(ExprTest, CompareWithNullIsNull) {
  RowBatch b;
  b.columns.emplace_back(TypeId::kInt64);
  b.columns[0].AppendNull();
  ExecContext ctx = Ctx();
  auto e = std::make_shared<CompareExpr>(CmpOp::kEq, Col(0, TypeId::kInt64),
                                         Lit(Value::Int64(1)));
  EXPECT_TRUE(e->EvaluateRow(b, 0, ctx)->is_null());
}

TEST(ExprTest, LikeMatching) {
  EXPECT_TRUE(LikeExpr::Match("hello", "h%"));
  EXPECT_TRUE(LikeExpr::Match("hello", "%llo"));
  EXPECT_TRUE(LikeExpr::Match("hello", "h_llo"));
  EXPECT_TRUE(LikeExpr::Match("hello", "%"));
  EXPECT_FALSE(LikeExpr::Match("hello", "h_lo"));
  EXPECT_FALSE(LikeExpr::Match("", "_"));
  EXPECT_TRUE(LikeExpr::Match("", "%"));
  EXPECT_TRUE(LikeExpr::Match("a%b", "a%b"));
  EXPECT_TRUE(LikeExpr::Match("abc", "%%c"));
}

TEST(ExprTest, InListWithNullSemantics) {
  RowBatch b;
  b.columns.emplace_back(TypeId::kInt64);
  b.columns[0].AppendInt(5);
  ExecContext ctx = Ctx();
  // 5 IN (1, NULL) -> NULL (unknown); 5 IN (5, NULL) -> TRUE.
  auto e1 = std::make_shared<InExpr>(
      Col(0, TypeId::kInt64),
      std::vector<Value>{Value::Int64(1), Value::Null(TypeId::kInt64)}, false);
  EXPECT_TRUE(e1->EvaluateRow(b, 0, ctx)->is_null());
  auto e2 = std::make_shared<InExpr>(
      Col(0, TypeId::kInt64),
      std::vector<Value>{Value::Int64(5), Value::Null(TypeId::kInt64)}, false);
  EXPECT_TRUE(e2->EvaluateRow(b, 0, ctx)->AsBool());
}

TEST(ExprTest, CaseExpr) {
  RowBatch b;
  b.columns.emplace_back(TypeId::kInt64);
  b.columns[0].AppendInt(7);
  b.columns[0].AppendInt(20);
  ExecContext ctx = Ctx();
  std::vector<std::pair<ExprPtr, ExprPtr>> whens;
  whens.emplace_back(
      std::make_shared<CompareExpr>(CmpOp::kLt, Col(0, TypeId::kInt64),
                                    Lit(Value::Int64(10))),
      Lit(Value::String("small")));
  auto e = std::make_shared<CaseExpr>(std::move(whens),
                                      Lit(Value::String("big")),
                                      TypeId::kVarchar);
  EXPECT_EQ(e->EvaluateRow(b, 0, ctx)->AsString(), "small");
  EXPECT_EQ(e->EvaluateRow(b, 1, ctx)->AsString(), "big");
}

TEST(ExprTest, OracleEmptyStringIsNull) {
  // Paper II.C.2: VARCHAR2 semantics — '' IS NULL under the Oracle dialect.
  RowBatch b;
  b.columns.emplace_back(TypeId::kVarchar);
  b.columns[0].AppendString("");
  auto is_null = std::make_shared<IsNullExpr>(Col(0, TypeId::kVarchar), false);
  ExecContext oracle = Ctx(Dialect::kOracle);
  ExecContext ansi = Ctx(Dialect::kAnsi);
  EXPECT_TRUE(is_null->EvaluateRow(b, 0, oracle)->AsBool());
  EXPECT_FALSE(is_null->EvaluateRow(b, 0, ansi)->AsBool());
}

// -------------------------------------------------------------- functions --

TEST(FunctionsTest, OracleNvlDecode) {
  EXPECT_EQ(CallFn("NVL", {Value::Null(TypeId::kInt64), Value::Int64(9)})
                ->AsInt(),
            9);
  EXPECT_EQ(CallFn("NVL", {Value::Int64(3), Value::Int64(9)})->AsInt(), 3);
  EXPECT_EQ(CallFn("NVL2", {Value::Int64(1), Value::String("a"),
                            Value::String("b")})
                ->AsString(),
            "a");
  EXPECT_EQ(CallFn("DECODE", {Value::Int64(2), Value::Int64(1),
                              Value::String("one"), Value::Int64(2),
                              Value::String("two"), Value::String("other")})
                ->AsString(),
            "two");
  EXPECT_EQ(CallFn("DECODE", {Value::Int64(5), Value::Int64(1),
                              Value::String("one"), Value::String("other")})
                ->AsString(),
            "other");
  // Oracle DECODE matches NULL to NULL.
  EXPECT_EQ(CallFn("DECODE", {Value::Null(TypeId::kInt64),
                              Value::Null(TypeId::kInt64),
                              Value::String("isnull"), Value::String("no")})
                ->AsString(),
            "isnull");
}

TEST(FunctionsTest, OracleStringFunctions) {
  EXPECT_EQ(CallFn("SUBSTR", {Value::String("hello"), Value::Int64(2)})
                ->AsString(),
            "ello");
  EXPECT_EQ(CallFn("SUBSTR", {Value::String("hello"), Value::Int64(-3),
                              Value::Int64(2)})
                ->AsString(),
            "ll");
  EXPECT_EQ(CallFn("INSTR", {Value::String("banana"), Value::String("an"),
                             Value::Int64(3)})
                ->AsInt(),
            4);
  EXPECT_EQ(CallFn("LPAD", {Value::String("5"), Value::Int64(3),
                            Value::String("0")})
                ->AsString(),
            "005");
  EXPECT_EQ(CallFn("RPAD", {Value::String("ab"), Value::Int64(5)})
                ->AsString(),
            "ab   ");
  EXPECT_EQ(CallFn("INITCAP", {Value::String("hello world-foo")})->AsString(),
            "Hello World-Foo");
  EXPECT_EQ(CallFn("RAWTOHEX", {Value::String("AB")})->AsString(), "4142");
  EXPECT_EQ(CallFn("HEXTORAW", {Value::String("4142")})->AsString(), "AB");
  EXPECT_EQ(CallFn("LEAST", {Value::Int64(3), Value::Int64(1),
                             Value::Int64(2)})
                ->AsInt(),
            1);
  EXPECT_EQ(CallFn("GREATEST", {Value::Int64(3), Value::Int64(1)})->AsInt(),
            3);
}

TEST(FunctionsTest, OracleConversionFunctions) {
  EXPECT_EQ(CallFn("TO_CHAR", {Value::Int64(42)})->AsString(), "42");
  EXPECT_EQ(CallFn("TO_CHAR", {Value::Date(DaysFromCivil(2017, 4, 1)),
                               Value::String("YYYY-MM-DD")})
                ->AsString(),
            "2017-04-01");
  EXPECT_EQ(CallFn("TO_DATE", {Value::String("2017-04-01")})->ToString(),
            "2017-04-01");
  EXPECT_EQ(CallFn("TO_DATE", {Value::String("20170401"),
                               Value::String("YYYYMMDD")})
                ->ToString(),
            "2017-04-01");
  EXPECT_DOUBLE_EQ(CallFn("TO_NUMBER", {Value::String("3.5")})->AsDouble(),
                   3.5);
}

TEST(FunctionsTest, NetezzaPostgresFunctions) {
  EXPECT_EQ(CallFn("DATE_PART", {Value::String("year"),
                                 Value::Date(DaysFromCivil(2016, 7, 9))})
                ->AsInt(),
            2016);
  EXPECT_EQ(CallFn("DATE_PART", {Value::String("quarter"),
                                 Value::Date(DaysFromCivil(2016, 7, 9))})
                ->AsInt(),
            3);
  EXPECT_DOUBLE_EQ(CallFn("POW", {Value::Int64(2), Value::Int64(10)})
                       ->AsDouble(),
                   1024.0);
  EXPECT_EQ(CallFn("BTRIM", {Value::String("xxhixx"), Value::String("x")})
                ->AsString(),
            "hi");
  EXPECT_EQ(CallFn("STRLEFT", {Value::String("hello"), Value::Int64(2)})
                ->AsString(),
            "he");
  EXPECT_EQ(CallFn("STRRIGHT", {Value::String("hello"), Value::Int64(3)})
                ->AsString(),
            "llo");
  EXPECT_EQ(CallFn("STRPOS", {Value::String("hello"), Value::String("ll")})
                ->AsInt(),
            3);
  EXPECT_EQ(CallFn("INT4AND", {Value::Int64(12), Value::Int64(10)})->AsInt(),
            8);
  EXPECT_EQ(CallFn("TO_HEX", {Value::Int64(255)})->AsString(), "ff");
  EXPECT_EQ(CallFn("HASH", {Value::String("x")})->AsInt(),
            CallFn("HASH8", {Value::String("x")})->AsInt());
  EXPECT_EQ(CallFn("DAYS_BETWEEN",
                   {Value::Date(100), Value::Date(107)})
                ->AsInt(),
            7);
  EXPECT_EQ(CallFn("NEXT_MONTH", {Value::Date(DaysFromCivil(2016, 12, 15))})
                ->ToString(),
            "2017-01-01");
}

TEST(FunctionsTest, NullHandlingIsUniform) {
  // Property: every 1-arg string function returns NULL on NULL input.
  for (const char* name : {"UPPER", "LOWER", "LENGTH", "TRIM", "INITCAP",
                           "BTRIM", "TO_HEX"}) {
    auto r = CallFn(name, {Value::Null(TypeId::kVarchar)});
    ASSERT_TRUE(r.ok()) << name;
    EXPECT_TRUE(r->is_null()) << name;
  }
}

TEST(FunctionsTest, RegistryCoversDialects) {
  const auto& reg = FunctionRegistry::Global();
  EXPECT_GE(reg.NamesByOrigin(Dialect::kOracle).size(), 15u);
  EXPECT_GE(reg.NamesByOrigin(Dialect::kNetezza).size(), 15u);
  EXPECT_GE(reg.NamesByOrigin(Dialect::kDb2).size(), 2u);
  EXPECT_EQ(reg.Lookup("NO_SUCH_FN"), nullptr);
}

// -------------------------------------------------------------- aggregates --

TEST(AggTest, BasicAggregates) {
  AggSpec count{AggKind::kCountStar, nullptr, nullptr, 0.5, false,
                TypeId::kInt64};
  AggSpec sum{AggKind::kSum, nullptr, nullptr, 0.5, false, TypeId::kInt64};
  AggSpec avg{AggKind::kAvg, nullptr, nullptr, 0.5, false, TypeId::kDouble};
  AggState cs(&count), ss(&sum), as(&avg);
  for (int i = 1; i <= 4; ++i) {
    Value v = Value::Int64(i);
    cs.Add(v, v);
    ss.Add(v, v);
    as.Add(v, v);
  }
  EXPECT_EQ(cs.Finish().AsInt(), 4);
  EXPECT_EQ(ss.Finish().AsInt(), 10);
  EXPECT_DOUBLE_EQ(as.Finish().AsDouble(), 2.5);
}

TEST(AggTest, VarianceAndStddev) {
  AggSpec vp{AggKind::kVarPop, nullptr, nullptr, 0.5, false, TypeId::kDouble};
  AggSpec vs{AggKind::kVarSamp, nullptr, nullptr, 0.5, false, TypeId::kDouble};
  AggState sp(&vp), ssamp(&vs);
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    sp.Add(Value::Double(x), Value::Double(x));
    ssamp.Add(Value::Double(x), Value::Double(x));
  }
  EXPECT_NEAR(sp.Finish().AsDouble(), 4.0, 1e-9);
  EXPECT_NEAR(ssamp.Finish().AsDouble(), 32.0 / 7.0, 1e-9);
}

TEST(AggTest, Covariance) {
  AggSpec cp{AggKind::kCovarPop, nullptr, nullptr, 0.5, false,
             TypeId::kDouble};
  AggState s(&cp);
  // y = 2x -> covar_pop(x, y) = 2 * var_pop(x).
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(Value::Double(x), Value::Double(2 * x));
  }
  EXPECT_NEAR(s.Finish().AsDouble(), 2 * 1.25, 1e-9);
}

TEST(AggTest, MedianAndPercentiles) {
  AggSpec med{AggKind::kMedian, nullptr, nullptr, 0.5, false, TypeId::kDouble};
  AggState m(&med);
  for (double x : {1.0, 3.0, 2.0, 10.0}) m.Add(Value::Double(x), x == 0 ? Value::Double(0) : Value::Double(x));
  EXPECT_NEAR(m.Finish().AsDouble(), 2.5, 1e-9);
  AggSpec p90{AggKind::kPercentileDisc, nullptr, nullptr, 0.9, false,
              TypeId::kDouble};
  AggState p(&p90);
  for (int i = 1; i <= 10; ++i) p.Add(Value::Int64(i), Value::Int64(i));
  EXPECT_NEAR(p.Finish().AsDouble(), 9.0, 1e-9);
}

TEST(AggTest, DistinctCount) {
  AggSpec cd{AggKind::kCount, nullptr, nullptr, 0.5, true, TypeId::kInt64};
  AggState s(&cd);
  for (int x : {1, 2, 2, 3, 3, 3}) s.Add(Value::Int64(x), Value::Int64(x));
  EXPECT_EQ(s.Finish().AsInt(), 3);
}

TEST(AggTest, NullsIgnored) {
  AggSpec sum{AggKind::kSum, nullptr, nullptr, 0.5, false, TypeId::kInt64};
  AggState s(&sum);
  s.Add(Value::Null(TypeId::kInt64), Value::Null(TypeId::kInt64));
  EXPECT_TRUE(s.Finish().is_null()) << "SUM of no rows is NULL";
  s.Add(Value::Int64(5), Value::Int64(5));
  EXPECT_EQ(s.Finish().AsInt(), 5);
}

TEST(AggTest, NameMapping) {
  AggKind k;
  ASSERT_TRUE(AggKindFromName("VARIANCE", &k));  // DB2 spelling
  EXPECT_EQ(k, AggKind::kVarSamp);
  ASSERT_TRUE(AggKindFromName("COVARIANCE", &k));
  EXPECT_EQ(k, AggKind::kCovarPop);
  ASSERT_TRUE(AggKindFromName("STDDEV_POP", &k));
  EXPECT_EQ(k, AggKind::kStddevPop);
  EXPECT_FALSE(AggKindFromName("UPPER", &k));
}

// --------------------------------------------------------------- operators --

std::shared_ptr<ColumnTable> MakeOrders(size_t n) {
  TableSchema s("PUBLIC", "ORDERS",
                {{"O_ID", TypeId::kInt64, false, 0, false},
                 {"CUST", TypeId::kInt64, true, 0, false},
                 {"AMT", TypeId::kDouble, true, 0, false}});
  auto t = std::make_shared<ColumnTable>(s, 100);
  RowBatch b;
  b.columns.emplace_back(TypeId::kInt64);
  b.columns.emplace_back(TypeId::kInt64);
  b.columns.emplace_back(TypeId::kDouble);
  Rng rng(4);
  for (size_t i = 0; i < n; ++i) {
    b.columns[0].AppendInt(static_cast<int64_t>(i));
    b.columns[1].AppendInt(static_cast<int64_t>(i % 100));
    b.columns[2].AppendDouble(static_cast<double>(rng.Uniform(1000)));
  }
  EXPECT_TRUE(t->Load(b).ok());
  return t;
}

std::shared_ptr<ColumnTable> MakeCustomers(size_t n) {
  TableSchema s("PUBLIC", "CUSTOMERS",
                {{"C_ID", TypeId::kInt64, false, 0, false},
                 {"NAME", TypeId::kVarchar, true, 0, false}});
  auto t = std::make_shared<ColumnTable>(s, 101);
  RowBatch b;
  b.columns.emplace_back(TypeId::kInt64);
  b.columns.emplace_back(TypeId::kVarchar);
  for (size_t i = 0; i < n; ++i) {
    b.columns[0].AppendInt(static_cast<int64_t>(i));
    b.columns[1].AppendString("cust" + std::to_string(i));
  }
  EXPECT_TRUE(t->Load(b).ok());
  return t;
}

TEST(OperatorTest, ScanFilterProject) {
  auto orders = MakeOrders(10000);
  ExecContext ctx = Ctx();
  auto scan = std::make_unique<ColumnScanOp>(
      orders, std::vector<ColumnPredicate>{}, std::vector<int>{0, 1, 2},
      ScanOptions{});
  auto filt = std::make_unique<FilterOp>(
      std::move(scan),
      std::make_shared<CompareExpr>(CmpOp::kLt, Col(0, TypeId::kInt64),
                                    Lit(Value::Int64(10))),
      &ctx);
  std::vector<ExprPtr> exprs = {
      Col(0, TypeId::kInt64),
      std::make_shared<ArithExpr>(ArithOp::kMul, Col(2, TypeId::kDouble),
                                  Lit(Value::Double(2)), TypeId::kDouble)};
  auto proj = std::make_unique<ProjectOp>(
      std::move(filt), exprs, std::vector<std::string>{"ID", "DBL"}, &ctx);
  auto r = DrainOperator(proj.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 10u);
  EXPECT_EQ(r->columns.size(), 2u);
}

TEST(OperatorTest, HashJoinInner) {
  auto orders = MakeOrders(5000);
  auto custs = MakeCustomers(100);
  ExecContext ctx = Ctx();
  auto probe = std::make_unique<ColumnScanOp>(
      orders, std::vector<ColumnPredicate>{}, std::vector<int>{0, 1},
      ScanOptions{});
  auto build = std::make_unique<ColumnScanOp>(
      custs, std::vector<ColumnPredicate>{}, std::vector<int>{0, 1},
      ScanOptions{});
  auto join = std::make_unique<HashJoinOp>(
      std::move(probe), std::move(build),
      std::vector<ExprPtr>{Col(1, TypeId::kInt64)},
      std::vector<ExprPtr>{Col(0, TypeId::kInt64)}, JoinType::kInner, &ctx);
  auto r = DrainOperator(join.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 5000u);  // every order matches one customer
  EXPECT_EQ(r->columns.size(), 4u);
}

TEST(OperatorTest, HashJoinLeftOuterEmitsNulls) {
  auto orders = MakeOrders(200);    // CUST in [0, 100)
  auto custs = MakeCustomers(50);   // C_ID in [0, 50)
  ExecContext ctx = Ctx();
  auto probe = std::make_unique<ColumnScanOp>(
      orders, std::vector<ColumnPredicate>{}, std::vector<int>{0, 1},
      ScanOptions{});
  auto build = std::make_unique<ColumnScanOp>(
      custs, std::vector<ColumnPredicate>{}, std::vector<int>{0, 1},
      ScanOptions{});
  auto join = std::make_unique<HashJoinOp>(
      std::move(probe), std::move(build),
      std::vector<ExprPtr>{Col(1, TypeId::kInt64)},
      std::vector<ExprPtr>{Col(0, TypeId::kInt64)}, JoinType::kLeft, &ctx);
  auto r = DrainOperator(join.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 200u);
  size_t null_names = 0;
  for (size_t i = 0; i < r->num_rows(); ++i) {
    if (r->columns[3].IsNull(i)) ++null_names;
  }
  EXPECT_EQ(null_names, 100u);  // CUST 50..99 unmatched
}

TEST(OperatorTest, PartitionedAndGlobalJoinAgree) {
  auto orders = MakeOrders(3000);
  auto custs = MakeCustomers(100);
  ExecContext ctx = Ctx();
  size_t results[2];
  for (int mode = 0; mode < 2; ++mode) {
    auto probe = std::make_unique<ColumnScanOp>(
        orders, std::vector<ColumnPredicate>{}, std::vector<int>{1},
        ScanOptions{});
    auto build = std::make_unique<ColumnScanOp>(
        custs, std::vector<ColumnPredicate>{}, std::vector<int>{0},
        ScanOptions{});
    auto join = std::make_unique<HashJoinOp>(
        std::move(probe), std::move(build),
        std::vector<ExprPtr>{Col(0, TypeId::kInt64)},
        std::vector<ExprPtr>{Col(0, TypeId::kInt64)}, JoinType::kInner, &ctx,
        mode == 0);
    auto r = DrainOperator(join.get());
    ASSERT_TRUE(r.ok());
    results[mode] = r->num_rows();
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(OperatorTest, HashAggGroupBy) {
  auto orders = MakeOrders(10000);
  ExecContext ctx = Ctx();
  auto scan = std::make_unique<ColumnScanOp>(
      orders, std::vector<ColumnPredicate>{}, std::vector<int>{1, 2},
      ScanOptions{});
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kCountStar, nullptr, nullptr, 0.5, false,
                  TypeId::kInt64});
  aggs.push_back({AggKind::kSum, Col(1, TypeId::kDouble), nullptr, 0.5, false,
                  TypeId::kDouble});
  auto agg = std::make_unique<HashAggOp>(
      std::move(scan), std::vector<ExprPtr>{Col(0, TypeId::kInt64)},
      std::vector<std::string>{"CUST"}, std::move(aggs),
      std::vector<std::string>{"N", "TOTAL"}, &ctx);
  auto r = DrainOperator(agg.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 100u);
  for (size_t i = 0; i < r->num_rows(); ++i) {
    EXPECT_EQ(r->columns[1].GetInt(i), 100);  // 10000 rows / 100 groups
  }
}

TEST(OperatorTest, GlobalAggOnEmptyInputYieldsOneRow) {
  auto orders = MakeOrders(100);
  ExecContext ctx = Ctx();
  ColumnPredicate none;
  none.column = 0;
  none.int_range.lo = 1000000;  // matches nothing
  auto scan = std::make_unique<ColumnScanOp>(
      orders, std::vector<ColumnPredicate>{none}, std::vector<int>{0},
      ScanOptions{});
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kCountStar, nullptr, nullptr, 0.5, false,
                  TypeId::kInt64});
  auto agg = std::make_unique<HashAggOp>(
      std::move(scan), std::vector<ExprPtr>{}, std::vector<std::string>{},
      std::move(aggs), std::vector<std::string>{"N"}, &ctx);
  auto r = DrainOperator(agg.get());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->columns[0].GetInt(0), 0);
}

TEST(OperatorTest, SortAndLimit) {
  auto orders = MakeOrders(1000);
  ExecContext ctx = Ctx();
  auto scan = std::make_unique<ColumnScanOp>(
      orders, std::vector<ColumnPredicate>{}, std::vector<int>{0, 2},
      ScanOptions{});
  std::vector<SortKey> keys;
  keys.push_back({Col(1, TypeId::kDouble), true});  // AMT desc
  auto sort = std::make_unique<SortOp>(std::move(scan), std::move(keys), &ctx);
  auto limit = std::make_unique<LimitOp>(std::move(sort), 10, 5);
  auto r = DrainOperator(limit.get());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 10u);
  for (size_t i = 1; i < r->num_rows(); ++i) {
    EXPECT_GE(r->columns[1].GetDouble(i - 1), r->columns[1].GetDouble(i));
  }
}

TEST(OperatorTest, NestedLoopCrossJoin) {
  auto custs = MakeCustomers(4);
  ExecContext ctx = Ctx();
  auto l = std::make_unique<ColumnScanOp>(
      custs, std::vector<ColumnPredicate>{}, std::vector<int>{0},
      ScanOptions{});
  auto r_scan = std::make_unique<ColumnScanOp>(
      custs, std::vector<ColumnPredicate>{}, std::vector<int>{0},
      ScanOptions{});
  auto nlj = std::make_unique<NestedLoopJoinOp>(std::move(l), std::move(r_scan),
                                                nullptr, JoinType::kCross, &ctx);
  auto r = DrainOperator(nlj.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 16u);
}

TEST(OperatorTest, UnionAll) {
  auto a = MakeCustomers(3);
  auto b = MakeCustomers(5);
  std::vector<OperatorPtr> kids;
  kids.push_back(std::make_unique<ColumnScanOp>(
      a, std::vector<ColumnPredicate>{}, std::vector<int>{0}, ScanOptions{}));
  kids.push_back(std::make_unique<ColumnScanOp>(
      b, std::vector<ColumnPredicate>{}, std::vector<int>{0}, ScanOptions{}));
  auto u = std::make_unique<UnionAllOp>(std::move(kids));
  auto r = DrainOperator(u.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 8u);
}

TEST(OperatorTest, RowIndexScanOperator) {
  TableSchema s("PUBLIC", "R",
                {{"K", TypeId::kInt64, false, 0, false},
                 {"V", TypeId::kInt64, true, 0, false}});
  auto t = std::make_shared<RowTable>(s, 200);
  RowBatch b;
  b.columns.emplace_back(TypeId::kInt64);
  b.columns.emplace_back(TypeId::kInt64);
  for (int i = 0; i < 1000; ++i) {
    b.columns[0].AppendInt(i);
    b.columns[1].AppendInt(i * 10);
  }
  ASSERT_TRUE(t->Append(b).ok());
  ASSERT_TRUE(t->CreateIndex(0).ok());
  auto op = std::make_unique<RowIndexScanOp>(
      t, 0, 100, 110, std::vector<ColumnPredicate>{}, std::vector<int>{0, 1});
  auto r = DrainOperator(op.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 11u);
}

}  // namespace
}  // namespace dashdb
