// Unit tests for the foundation module: Status/Result, Value semantics,
// date arithmetic, bitmaps, bit-packed arrays, thread pool, RNG.
#include <gtest/gtest.h>

#include <set>

#include "common/bitutil.h"
#include "common/datetime.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "common/types.h"
#include "common/value.h"

namespace dashdb {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table T");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table T");
  EXPECT_EQ(s.ToString(), "NotFound: table T");
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::Internal("x");
  Status b = a;
  EXPECT_EQ(b.code(), StatusCode::kInternal);
  EXPECT_EQ(b.message(), "x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> UseAssignOrReturn(int x) {
  DASHDB_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*UseAssignOrReturn(21), 42);
  EXPECT_FALSE(UseAssignOrReturn(-1).ok());
}

TEST(TypesTest, NamesRoundTrip) {
  EXPECT_STREQ(TypeName(TypeId::kInt64), "BIGINT");
  EXPECT_EQ(*TypeFromName("bigint"), TypeId::kInt64);
  EXPECT_EQ(*TypeFromName("VARCHAR2"), TypeId::kVarchar);  // Oracle
  EXPECT_EQ(*TypeFromName("INT8"), TypeId::kInt64);        // Netezza/PG
  EXPECT_EQ(*TypeFromName("FLOAT4"), TypeId::kDouble);
  EXPECT_EQ(*TypeFromName("NUMBER"), TypeId::kDecimal);    // Oracle
  EXPECT_EQ(*TypeFromName("BPCHAR"), TypeId::kVarchar);
  EXPECT_FALSE(TypeFromName("BLOB").ok());
}

TEST(ValueTest, NullOrderingSortsHigh) {
  Value n = Value::Null(TypeId::kInt64);
  Value v = Value::Int64(5);
  EXPECT_GT(n.Compare(v), 0);
  EXPECT_LT(v.Compare(n), 0);
  EXPECT_EQ(n.Compare(Value::Null(TypeId::kInt32)), 0);
}

TEST(ValueTest, NumericCrossTypeCompare) {
  EXPECT_EQ(Value::Int32(3).Compare(Value::Int64(3)), 0);
  EXPECT_LT(Value::Int64(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Double(4.0).Compare(Value::Int32(3)), 0);
}

TEST(ValueTest, CastStringToNumbers) {
  EXPECT_EQ(Value::String("123").CastTo(TypeId::kInt64)->AsInt(), 123);
  EXPECT_DOUBLE_EQ(Value::String("1.5").CastTo(TypeId::kDouble)->AsDouble(),
                   1.5);
  EXPECT_FALSE(Value::String("abc").CastTo(TypeId::kInt64).ok());
}

TEST(ValueTest, CastDateString) {
  Value d = *Value::String("2017-04-01").CastTo(TypeId::kDate);
  EXPECT_EQ(d.ToString(), "2017-04-01");
}

TEST(ValueTest, NullCastStaysNull) {
  Value v = *Value::Null(TypeId::kInt64).CastTo(TypeId::kVarchar);
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), TypeId::kVarchar);
}

TEST(DatetimeTest, EpochIsZero) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  CivilDate c = CivilFromDays(0);
  EXPECT_EQ(c.year, 1970);
  EXPECT_EQ(c.month, 1);
  EXPECT_EQ(c.day, 1);
}

TEST(DatetimeTest, RoundTripSweep) {
  // Property: CivilFromDays(DaysFromCivil(d)) == d across 60 years,
  // including leap years and century boundaries.
  for (int32_t days = DaysFromCivil(1980, 1, 1);
       days <= DaysFromCivil(2040, 1, 1); days += 17) {
    CivilDate c = CivilFromDays(days);
    EXPECT_EQ(DaysFromCivil(c.year, c.month, c.day), days);
  }
}

TEST(DatetimeTest, LeapYearFeb29) {
  int32_t d = DaysFromCivil(2016, 2, 29);
  CivilDate c = CivilFromDays(d);
  EXPECT_EQ(c.month, 2);
  EXPECT_EQ(c.day, 29);
  EXPECT_EQ(CivilFromDays(d + 1).month, 3);
}

TEST(DatetimeTest, ParseAndFormat) {
  EXPECT_EQ(FormatDate(*ParseDate("2017-04-17")), "2017-04-17");
  EXPECT_FALSE(ParseDate("17 Apr").ok());
  EXPECT_FALSE(ParseDate("2017-13-01").ok());
  EXPECT_EQ(FormatTimestamp(*ParseTimestamp("2017-04-17 13:45:01")),
            "2017-04-17 13:45:01");
}

TEST(DatetimeTest, DayOfWeek) {
  EXPECT_EQ(DayOfWeek(DaysFromCivil(1970, 1, 1)), 4);  // Thursday
  EXPECT_EQ(DayOfWeek(DaysFromCivil(2017, 4, 16)), 0);  // Sunday
}

TEST(BitVectorTest, SetClearGet) {
  BitVector b(130);
  EXPECT_EQ(b.CountSet(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Get(0));
  EXPECT_TRUE(b.Get(64));
  EXPECT_TRUE(b.Get(129));
  EXPECT_FALSE(b.Get(1));
  EXPECT_EQ(b.CountSet(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Get(64));
}

TEST(BitVectorTest, LogicOpsAndTailMasking) {
  BitVector a(70, true);
  EXPECT_EQ(a.CountSet(), 70u);  // initial=true must not set tail bits
  BitVector b(70);
  b.Set(3);
  b.Set(69);
  a.And(b);
  EXPECT_EQ(a.CountSet(), 2u);
  a.Not();
  EXPECT_EQ(a.CountSet(), 68u);
  EXPECT_FALSE(a.Get(3));
}

TEST(BitVectorTest, ForEachSetAscending) {
  BitVector b(200);
  std::vector<size_t> want = {0, 63, 64, 65, 127, 199};
  for (size_t i : want) b.Set(i);
  std::vector<size_t> got;
  b.ForEachSet([&](size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

class BitPackedWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(BitPackedWidthTest, AppendGetRoundTrip) {
  // Property: Get(i) returns exactly what was appended, for every width.
  const int w = GetParam();
  BitPackedArray a(w);
  Rng rng(w);
  const uint64_t mask = w == 64 ? ~uint64_t{0} : (uint64_t{1} << w) - 1;
  std::vector<uint64_t> vals;
  for (int i = 0; i < 1000; ++i) vals.push_back(rng.Next() & mask);
  for (uint64_t v : vals) a.Append(v);
  ASSERT_EQ(a.size(), vals.size());
  for (size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(a.Get(i), vals[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitPackedWidthTest,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 11, 13, 16, 17,
                                           23, 31, 32, 33, 63, 64));

TEST(BitUtilTest, BitWidthFor) {
  EXPECT_EQ(BitWidthFor(0), 1);
  EXPECT_EQ(BitWidthFor(1), 1);
  EXPECT_EQ(BitWidthFor(2), 2);
  EXPECT_EQ(BitWidthFor(255), 8);
  EXPECT_EQ(BitWidthFor(256), 9);
  EXPECT_EQ(BitWidthFor(~uint64_t{0}), 64);
}

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(4);
  auto f1 = pool.Submit([] { return 7; });
  auto f2 = pool.Submit([] { return std::string("hi"); });
  EXPECT_EQ(f1.get(), 7);
  EXPECT_EQ(f2.get(), "hi");
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  ZipfGenerator z(1000, 1.2, 9);
  size_t low = 0, n = 20000;
  for (size_t i = 0; i < n; ++i) {
    if (z.Next() < 10) ++low;
  }
  // With s=1.2 the top-10 ranks should dominate heavily.
  EXPECT_GT(low, n / 3);
}

TEST(HashTest, IntAvalanche) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(HashInt64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashTest, StringStability) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
}

}  // namespace
}  // namespace dashdb
