// Tests for full-cluster portability (paper II.E): save a cluster's tables
// to the shared filesystem, stand up a DIFFERENT topology, restore, and get
// the same answers with correctly re-hashed shards.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mpp/portability.h"

namespace dashdb {
namespace {

TEST(ManifestTest, SchemaRoundTrip) {
  TableSchema s("SALES", "ORDERS",
                {{"ID", TypeId::kInt64, false, 0, true},
                 {"WHEN", TypeId::kDate, true, 0, false},
                 {"NOTE", TypeId::kVarchar, true, 0, false}},
                TableOrganization::kRow);
  s.set_distribution_key(0);
  auto parsed = ManifestToSchema(SchemaToManifest(s, true));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const TableSchema& r = parsed->first;
  EXPECT_TRUE(parsed->second);  // replicated flag survives
  EXPECT_EQ(r.QualifiedName(), "SALES.ORDERS");
  EXPECT_EQ(r.organization(), TableOrganization::kRow);
  EXPECT_EQ(r.distribution_key(), 0);
  ASSERT_EQ(r.num_columns(), 3);
  EXPECT_EQ(r.column(0).type, TypeId::kInt64);
  EXPECT_FALSE(r.column(0).nullable);
  EXPECT_TRUE(r.column(0).unique);
  EXPECT_EQ(r.column(2).type, TypeId::kVarchar);
}

TEST(ManifestTest, RejectsGarbage) {
  EXPECT_FALSE(ManifestToSchema("").ok());
  EXPECT_FALSE(ManifestToSchema("just|three|fields\n").ok());
}

TEST(PortabilityTest, MoveClusterToDifferentTopology) {
  // Source: 4 nodes x 3 shards. Destination: 2 nodes x 5 shards.
  MppDatabase src(4, 3, 8, size_t{8} << 30);
  TableSchema facts("PUBLIC", "FACTS",
                    {{"ID", TypeId::kInt64, false, 0, false},
                     {"G", TypeId::kInt64, true, 0, false},
                     {"V", TypeId::kDouble, true, 0, false}});
  facts.set_distribution_key(0);
  ASSERT_TRUE(src.CreateTable(facts).ok());
  TableSchema dim("PUBLIC", "DIM",
                  {{"K", TypeId::kInt64, false, 0, false},
                   {"NAME", TypeId::kVarchar, true, 0, false}});
  ASSERT_TRUE(src.CreateTable(dim, /*replicated=*/true).ok());

  RowBatch rows;
  rows.columns.emplace_back(TypeId::kInt64);
  rows.columns.emplace_back(TypeId::kInt64);
  rows.columns.emplace_back(TypeId::kDouble);
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendInt(static_cast<int64_t>(rng.Uniform(7)));
    rows.columns[2].AppendDouble(rng.Uniform(100));
  }
  ASSERT_TRUE(src.Load("PUBLIC", "FACTS", rows).ok());
  RowBatch drows;
  drows.columns.emplace_back(TypeId::kInt64);
  drows.columns.emplace_back(TypeId::kVarchar);
  for (int i = 0; i < 7; ++i) {
    drows.columns[0].AppendInt(i);
    drows.columns[1].AppendString("g" + std::to_string(i));
  }
  ASSERT_TRUE(src.Load("PUBLIC", "DIM", drows).ok());

  auto src_sum = src.Execute("SELECT COUNT(*), SUM(v) FROM facts");
  ASSERT_TRUE(src_sum.ok());

  // "Copy the clustered filesystem" and deploy on new hardware.
  ClusterFileSystem fs;
  ASSERT_TRUE(SaveCluster(&src, &fs, "/mnt/clusterfs/db").ok());
  EXPECT_GE(fs.FileCount(), 4u);  // 2 manifests + 2 data files

  MppDatabase dst(2, 5, 4, size_t{4} << 30);
  ASSERT_TRUE(RestoreCluster(&dst, fs, "/mnt/clusterfs/db").ok());

  // Same answers on the new topology.
  auto dst_sum = dst.Execute("SELECT COUNT(*), SUM(v) FROM facts");
  ASSERT_TRUE(dst_sum.ok()) << dst_sum.status().ToString();
  EXPECT_EQ(dst_sum->result.rows.columns[0].GetInt(0),
            src_sum->result.rows.columns[0].GetInt(0));
  EXPECT_NEAR(dst_sum->result.rows.columns[1].GetDouble(0),
              src_sum->result.rows.columns[1].GetDouble(0), 1e-6);
  // Data actually redistributed across the destination's 10 shards.
  auto counts = dst.ShardRowCounts("PUBLIC", "FACTS");
  ASSERT_TRUE(counts.ok());
  size_t non_empty = 0, total = 0;
  for (size_t c : *counts) {
    total += c;
    if (c > 0) ++non_empty;
  }
  EXPECT_EQ(total, 20000u);
  EXPECT_EQ(non_empty, counts->size()) << "every destination shard holds data";
  // Replicated dim is on every destination shard.
  auto dim_counts = *dst.ShardRowCounts("PUBLIC", "DIM");
  for (size_t c : dim_counts) EXPECT_EQ(c, 7u);
  // Joins still work post-move.
  auto joined = dst.Execute(
      "SELECT COUNT(*) FROM facts f JOIN dim d ON f.g = d.k");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->result.rows.columns[0].GetInt(0), 20000);
}

}  // namespace
}  // namespace dashdb
