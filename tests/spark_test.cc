// Tests for the sparklite integration (paper II.D): dataset DAG, per-user
// dispatcher isolation, collocated transfer with pushdown, and GLM.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "spark/connector.h"
#include "spark/glm.h"

namespace dashdb {
namespace spark {
namespace {

Dataset MakeNumbers(int n, int parts) {
  std::vector<Partition> p(parts);
  for (int i = 0; i < n; ++i) {
    p[i % parts].push_back({Value::Int64(i)});
  }
  return Dataset::FromPartitions(std::move(p));
}

TEST(DatasetTest, MapFilterCollect) {
  ThreadPool pool(2);
  Dataset d = MakeNumbers(100, 4)
                  .Filter([](const Row& r) { return r[0].AsInt() % 2 == 0; })
                  .Map([](const Row& r) {
                    return Row{Value::Int64(r[0].AsInt() * 10)};
                  });
  auto rows = d.Collect(&pool);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 50u);
  int64_t sum = 0;
  for (const Row& r : *rows) sum += r[0].AsInt();
  EXPECT_EQ(sum, 24500);  // 10 * sum(evens < 100) = 10 * 2450
}

TEST(DatasetTest, LazinessSharesNoState) {
  // Transformations produce new datasets; the base is unchanged.
  ThreadPool pool(2);
  Dataset base = MakeNumbers(10, 2);
  Dataset filtered = base.Filter([](const Row& r) { return r[0].AsInt() < 3; });
  EXPECT_EQ(*base.Count(&pool), 10u);
  EXPECT_EQ(*filtered.Count(&pool), 3u);
}

TEST(DatasetTest, AggregateTreeShape) {
  ThreadPool pool(2);
  Dataset d = MakeNumbers(1000, 8);
  auto sum = d.Aggregate<int64_t>(
      &pool, 0,
      [](int64_t& acc, const Row& r) { acc += r[0].AsInt(); },
      [](int64_t& a, const int64_t& b) { a += b; });
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 999 * 1000 / 2);
}

TEST(DispatcherTest, PerUserClusterManagers) {
  SparkDispatcher disp(2, size_t{1} << 30);
  ClusterManager* a1 = disp.ManagerFor("alice");
  ClusterManager* a2 = disp.ManagerFor("alice");
  ClusterManager* b = disp.ManagerFor("bob");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(disp.num_managers(), 2u);
  EXPECT_EQ(a1->memory_bytes(), size_t{1} << 30);
}

TEST(DispatcherTest, JobLifecycleAndIsolation) {
  SparkDispatcher disp(2, size_t{1} << 30);
  auto id = disp.Submit("alice", "job1", [](ClusterManager*) {
    return Result<std::string>("done");
  });
  ASSERT_TRUE(id.ok());
  auto status = disp.GetStatus("alice", *id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kFinished);
  EXPECT_EQ(status->result, "done");
  // Isolation: bob cannot see alice's job (paper II.D.1).
  EXPECT_EQ(disp.GetStatus("bob", *id).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(disp.ListJobs("alice").size(), 1u);
  EXPECT_EQ(disp.ListJobs("bob").size(), 0u);
}

TEST(DispatcherTest, FailedJobReported) {
  SparkDispatcher disp(2, 1 << 20);
  auto id = disp.Submit("u", "bad", [](ClusterManager*) -> Result<std::string> {
    return Status::Internal("boom");
  });
  EXPECT_FALSE(id.ok());
  auto jobs = disp.ListJobs("u");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].state, JobState::kFailed);
}

TEST(DispatcherTest, CancelCompletedJobRejected) {
  SparkDispatcher disp(2, 1 << 20);
  auto id = disp.Submit("u", "ok", [](ClusterManager*) {
    return Result<std::string>("x");
  });
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(disp.Cancel("u", *id).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(disp.Cancel("other", *id).code(), StatusCode::kNotFound);
}

class ConnectorTest : public ::testing::Test {
 protected:
  ConnectorTest() : db_(4, 2, 4, size_t{4} << 30) {
    TableSchema t("PUBLIC", "EVENTS",
                  {{"ID", TypeId::kInt64, false, 0, false},
                   {"KIND", TypeId::kInt64, true, 0, false},
                   {"PAYLOAD", TypeId::kVarchar, true, 0, false}});
    t.set_distribution_key(0);
    EXPECT_TRUE(db_.CreateTable(t).ok());
    RowBatch rows;
    rows.columns.emplace_back(TypeId::kInt64);
    rows.columns.emplace_back(TypeId::kInt64);
    rows.columns.emplace_back(TypeId::kVarchar);
    for (int i = 0; i < 20000; ++i) {
      rows.columns[0].AppendInt(i);
      rows.columns[1].AppendInt(i % 10);
      rows.columns[2].AppendString("payload-" + std::to_string(i % 100));
    }
    EXPECT_TRUE(db_.Load("PUBLIC", "EVENTS", rows).ok());
  }
  MppDatabase db_;
};

TEST_F(ConnectorTest, FullTransferHasOnePartitionPerShard) {
  TransferOptions opts;
  TransferReport report;
  auto d = TableToDataset(&db_, "PUBLIC", "EVENTS", opts, &report);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->num_partitions(), static_cast<size_t>(db_.num_shards()));
  EXPECT_EQ(report.rows, 20000u);
  ThreadPool pool(2);
  EXPECT_EQ(*d->Count(&pool), 20000u);
}

TEST_F(ConnectorTest, PushdownShrinksTransfer) {
  TransferOptions all, pushed;
  pushed.pushdown_where = "kind = 3";
  TransferReport rep_all, rep_pushed;
  ASSERT_TRUE(TableToDataset(&db_, "PUBLIC", "EVENTS", all, &rep_all).ok());
  auto d = TableToDataset(&db_, "PUBLIC", "EVENTS", pushed, &rep_pushed);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(rep_pushed.rows, 2000u);
  EXPECT_LT(rep_pushed.bytes * 5, rep_all.bytes);
  EXPECT_LT(rep_pushed.modeled_seconds, rep_all.modeled_seconds);
}

TEST_F(ConnectorTest, CollocatedBeatsRemoteJdbc) {
  // Figure 7's point: collocated per-node links beat one remote pipe.
  TransferOptions coll, remote;
  coll.collocated = true;
  remote.collocated = false;
  TransferReport rc, rr;
  ASSERT_TRUE(TableToDataset(&db_, "PUBLIC", "EVENTS", coll, &rc).ok());
  ASSERT_TRUE(TableToDataset(&db_, "PUBLIC", "EVENTS", remote, &rr).ok());
  EXPECT_LT(rc.modeled_seconds * 2, rr.modeled_seconds)
      << "4 parallel node links should be ~4x one remote link";
}

TEST(GlmTest, LearnsLinearRelation) {
  // y = 3 + 2*x1 - x2 with small noise.
  Rng rng(7);
  std::vector<Partition> parts(4);
  for (int i = 0; i < 4000; ++i) {
    double x1 = rng.NextDouble() * 2 - 1;
    double x2 = rng.NextDouble() * 2 - 1;
    double y = 3 + 2 * x1 - x2 + rng.Gaussian() * 0.01;
    parts[i % 4].push_back(
        {Value::Double(x1), Value::Double(x2), Value::Double(y)});
  }
  GlmConfig cfg;
  cfg.logistic = false;
  cfg.iterations = 800;
  cfg.learning_rate = 0.5;
  ThreadPool pool(2);
  auto model = TrainGlm(Dataset::FromPartitions(std::move(parts)), {0, 1}, 2,
                        cfg, &pool);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_NEAR(model->weights[0], 3.0, 0.1);
  EXPECT_NEAR(model->weights[1], 2.0, 0.1);
  EXPECT_NEAR(model->weights[2], -1.0, 0.1);
}

TEST(GlmTest, LearnsLogisticSeparation) {
  Rng rng(11);
  std::vector<Partition> parts(4);
  for (int i = 0; i < 4000; ++i) {
    double x = rng.NextDouble() * 4 - 2;
    double p = 1.0 / (1.0 + std::exp(-(2 * x)));
    double y = rng.NextDouble() < p ? 1.0 : 0.0;
    parts[i % 4].push_back({Value::Double(x), Value::Double(y)});
  }
  GlmConfig cfg;
  cfg.logistic = true;
  cfg.iterations = 600;
  cfg.learning_rate = 0.5;
  ThreadPool pool(2);
  auto model = TrainGlm(Dataset::FromPartitions(std::move(parts)), {0}, 1,
                        cfg, &pool);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->weights[1], 1.0) << "slope should be clearly positive";
  // Predictions separate the classes.
  EXPECT_GT(model->Predict({2.0}), 0.9);
  EXPECT_LT(model->Predict({-2.0}), 0.1);
}

TEST(GlmTest, NullRowsSkippedAndEmptyRejected) {
  std::vector<Partition> parts(1);
  parts[0].push_back({Value::Null(TypeId::kDouble), Value::Double(1)});
  GlmConfig cfg;
  ThreadPool pool(1);
  auto model = TrainGlm(Dataset::FromPartitions(std::move(parts)), {0}, 1,
                        cfg, &pool);
  EXPECT_EQ(model.status().code(), StatusCode::kInvalidArgument);
}

TEST(GlmTest, SqlStoredProcedureSurface) {
  // Paper II.D.1: run GLM "from within SQL".
  Engine engine;
  auto session = engine.CreateSession();
  SparkDispatcher disp(2, size_t{1} << 30);
  RegisterGlmProcedure(&engine, &disp);
  ASSERT_TRUE(engine
                  .Execute(session.get(),
                           "CREATE TABLE train (x DOUBLE, y DOUBLE)")
                  .ok());
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    double x = rng.NextDouble();
    double y = 1 + 2 * x;
    ASSERT_TRUE(engine
                    .Execute(session.get(),
                             "INSERT INTO train VALUES (" +
                                 std::to_string(x) + ", " +
                                 std::to_string(y) + ")")
                    .ok());
  }
  auto r = engine.Execute(
      session.get(), "CALL IDAX.GLM('train', 'y', 'x', 500, 'LINEAR')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.num_rows(), 2u);
  EXPECT_NEAR(r->rows.columns[1].GetDouble(0), 1.0, 0.3);  // intercept
  EXPECT_NEAR(r->rows.columns[1].GetDouble(1), 2.0, 0.5);  // slope
  // The training ran as a dispatcher job.
  EXPECT_EQ(disp.ListJobs("sql-user").size(), 1u);
}

}  // namespace
}  // namespace spark
}  // namespace dashdb
