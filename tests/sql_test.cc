// End-to-end SQL tests: lexer/parser, DDL/DML, SELECT planning (pushdown,
// joins, aggregation), and the four dialect surfaces of paper II.C.
#include <gtest/gtest.h>

#include "sql/engine.h"

namespace dashdb {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  SqlTest() : engine_(EngineConfig{}), session_(engine_.CreateSession()) {}

  QueryResult Exec(const std::string& sql) {
    auto r = engine_.Execute(session_.get(), sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  Status ExecErr(const std::string& sql) {
    auto r = engine_.Execute(session_.get(), sql);
    EXPECT_FALSE(r.ok()) << sql << " unexpectedly succeeded";
    return r.status();
  }

  /// First cell of the single-row result, as a string.
  std::string Scalar(const std::string& sql) {
    QueryResult r = Exec(sql);
    if (r.rows.num_rows() == 0 || r.rows.columns.empty()) return "<empty>";
    return r.rows.columns[0].GetValue(0).ToString();
  }

  void Seed() {
    Exec("CREATE TABLE emp (id INT NOT NULL, name VARCHAR(20), dept INT, "
         "salary DOUBLE, hired DATE)");
    Exec("INSERT INTO emp VALUES "
         "(1, 'alice', 10, 100.0, DATE '2015-01-15'), "
         "(2, 'bob', 10, 90.0, DATE '2015-06-01'), "
         "(3, 'carol', 20, 120.0, DATE '2016-03-20'), "
         "(4, 'dan', 20, 80.0, DATE '2016-09-09'), "
         "(5, 'eve', 30, 150.0, DATE '2017-01-02')");
    Exec("CREATE TABLE dept (dept_id INT, dept_name VARCHAR(20))");
    Exec("INSERT INTO dept VALUES (10, 'eng'), (20, 'sales'), (40, 'empty')");
  }

  Engine engine_;
  std::shared_ptr<Session> session_;
};

// ----------------------------------------------------------------- basics --

TEST_F(SqlTest, CreateInsertSelect) {
  Seed();
  QueryResult r = Exec("SELECT id, name FROM emp WHERE id = 3");
  ASSERT_EQ(r.rows.num_rows(), 1u);
  EXPECT_EQ(r.rows.columns[1].GetString(0), "carol");
  EXPECT_EQ(r.columns[0].name, "ID");
}

TEST_F(SqlTest, SelectStar) {
  Seed();
  QueryResult r = Exec("SELECT * FROM emp");
  EXPECT_EQ(r.rows.num_rows(), 5u);
  EXPECT_EQ(r.columns.size(), 5u);
}

TEST_F(SqlTest, WherePushdownRangesAndResiduals) {
  Seed();
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM emp WHERE salary >= 90 AND "
                   "salary <= 120"),
            "3");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM emp WHERE hired BETWEEN "
                   "DATE '2016-01-01' AND DATE '2016-12-31'"),
            "2");
  // Residual (non-sargable) predicate.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM emp WHERE MOD(id, 2) = 1"), "3");
  // String-literal vs DATE column coercion.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM emp WHERE hired >= '2016-01-01'"),
            "3");
}

TEST_F(SqlTest, OrderByAndLimit) {
  Seed();
  QueryResult r =
      Exec("SELECT name, salary FROM emp ORDER BY salary DESC LIMIT 2");
  ASSERT_EQ(r.rows.num_rows(), 2u);
  EXPECT_EQ(r.rows.columns[0].GetString(0), "eve");
  EXPECT_EQ(r.rows.columns[0].GetString(1), "carol");
  // ORDER BY ordinal (Netezza/PG, paper II.C.1.b).
  QueryResult r2 = Exec("SELECT name, salary FROM emp ORDER BY 2 LIMIT 1");
  EXPECT_EQ(r2.rows.columns[0].GetString(0), "dan");
  // OFFSET.
  QueryResult r3 =
      Exec("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 2");
  ASSERT_EQ(r3.rows.num_rows(), 2u);
  EXPECT_EQ(r3.rows.columns[0].GetInt(0), 3);
}

TEST_F(SqlTest, FetchFirstRowsOnly) {
  Seed();
  QueryResult r = Exec("SELECT id FROM emp ORDER BY id FETCH FIRST 3 ROWS ONLY");
  EXPECT_EQ(r.rows.num_rows(), 3u);
}

TEST_F(SqlTest, GroupByHaving) {
  Seed();
  QueryResult r = Exec(
      "SELECT dept, COUNT(*) n, AVG(salary) avg_sal FROM emp "
      "GROUP BY dept HAVING COUNT(*) >= 2 ORDER BY dept");
  ASSERT_EQ(r.rows.num_rows(), 2u);
  EXPECT_EQ(r.rows.columns[0].GetInt(0), 10);
  EXPECT_EQ(r.rows.columns[1].GetInt(0), 2);
  EXPECT_DOUBLE_EQ(r.rows.columns[2].GetDouble(0), 95.0);
}

TEST_F(SqlTest, GroupByOutputName) {
  Seed();
  // Netezza: GROUP BY references the output column name (paper II.C.1.b).
  QueryResult r = Exec(
      "SELECT dept AS d, SUM(salary) FROM emp GROUP BY d ORDER BY d");
  EXPECT_EQ(r.rows.num_rows(), 3u);
}

TEST_F(SqlTest, AggregatesAcrossDialects) {
  Seed();
  EXPECT_EQ(Scalar("SELECT MEDIAN(salary) FROM emp"), "100");
  EXPECT_EQ(Scalar("SELECT STDDEV_POP(salary) FROM emp"),
            Scalar("SELECT SQRT(VAR_POP(salary)) FROM emp"));
  // DB2 VARIANCE == sample variance (n-1).
  EXPECT_EQ(Scalar("SELECT VARIANCE(salary) FROM emp"),
            Scalar("SELECT VAR_SAMP(salary) FROM emp"));
  EXPECT_EQ(Scalar("SELECT COVARIANCE(salary, salary) FROM emp"),
            Scalar("SELECT COVAR_POP(salary, salary) FROM emp"));
  EXPECT_EQ(Scalar("SELECT COUNT(DISTINCT dept) FROM emp"), "3");
  EXPECT_EQ(Scalar("SELECT PERCENTILE_DISC(0.5) WITHIN GROUP "
                   "(ORDER BY salary) FROM emp"),
            "100");
}

TEST_F(SqlTest, Joins) {
  Seed();
  QueryResult r = Exec(
      "SELECT e.name, d.dept_name FROM emp e JOIN dept d "
      "ON e.dept = d.dept_id WHERE d.dept_name = 'eng' ORDER BY e.name");
  ASSERT_EQ(r.rows.num_rows(), 2u);
  EXPECT_EQ(r.rows.columns[0].GetString(0), "alice");
  // LEFT JOIN: dept 30 has no dept row.
  QueryResult l = Exec(
      "SELECT e.name, d.dept_name FROM emp e LEFT JOIN dept d "
      "ON e.dept = d.dept_id WHERE e.id = 5");
  ASSERT_EQ(l.rows.num_rows(), 1u);
  EXPECT_TRUE(l.rows.columns[1].IsNull(0));
}

TEST_F(SqlTest, CommaJoinWithWhereEquiBecomesHashJoin) {
  Seed();
  QueryResult r = Exec(
      "SELECT COUNT(*) FROM emp e, dept d WHERE e.dept = d.dept_id");
  EXPECT_EQ(r.rows.columns[0].GetInt(0), 4);  // eve's dept 30 unmatched
  // EXPLAIN confirms a hash join (not a nested loop).
  QueryResult ex = Exec(
      "EXPLAIN SELECT COUNT(*) FROM emp e, dept d WHERE e.dept = d.dept_id");
  EXPECT_NE(ex.message.find("HashJoin"), std::string::npos) << ex.message;
}

TEST_F(SqlTest, JoinUsing) {
  Seed();
  Exec("CREATE TABLE emp2 (id INT, bonus DOUBLE)");
  Exec("INSERT INTO emp2 VALUES (1, 5.0), (2, 6.0)");
  QueryResult r = Exec(
      "SELECT COUNT(*) FROM emp JOIN emp2 USING (id)");
  EXPECT_EQ(r.rows.columns[0].GetInt(0), 2);
}

TEST_F(SqlTest, OracleOuterJoinPlusSyntax) {
  Seed();
  session_->set_dialect(Dialect::kOracle);
  // dept 30 (eve) has no dept row -> survives via (+).
  QueryResult r = Exec(
      "SELECT e.name, d.dept_name FROM emp e, dept d "
      "WHERE e.dept = d.dept_id (+) ORDER BY e.name");
  ASSERT_EQ(r.rows.num_rows(), 5u);
  EXPECT_TRUE(r.rows.columns[1].IsNull(4));  // eve
}

TEST_F(SqlTest, SubqueryInFrom) {
  Seed();
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM "
                   "(SELECT dept FROM emp WHERE salary > 85) t"),
            "4");
}

TEST_F(SqlTest, WithCte) {
  Seed();
  QueryResult r = Exec(
      "WITH rich AS (SELECT * FROM emp WHERE salary >= 100), "
      "depts AS (SELECT DISTINCT dept FROM rich) "
      "SELECT COUNT(*) FROM depts");
  EXPECT_EQ(r.rows.columns[0].GetInt(0), 3);
}

TEST_F(SqlTest, DistinctAndUnionSemantics) {
  Seed();
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM (SELECT DISTINCT dept FROM emp) t"),
            "3");
}

TEST_F(SqlTest, UpdateAndDelete) {
  Seed();
  QueryResult u = Exec("UPDATE emp SET salary = salary * 2 WHERE dept = 10");
  EXPECT_EQ(u.affected_rows, 2);
  EXPECT_EQ(Scalar("SELECT SUM(salary) FROM emp WHERE dept = 10"), "380");
  QueryResult d = Exec("DELETE FROM emp WHERE dept = 20");
  EXPECT_EQ(d.affected_rows, 2);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM emp"), "3");
}

TEST_F(SqlTest, TruncateAndDrop) {
  Seed();
  Exec("TRUNCATE TABLE emp");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM emp"), "0");
  Exec("DROP TABLE emp");
  EXPECT_EQ(ExecErr("SELECT * FROM emp").code(), StatusCode::kNotFound);
  Exec("DROP TABLE IF EXISTS emp");  // no error
}

TEST_F(SqlTest, InsertSelect) {
  Seed();
  Exec("CREATE TABLE emp_copy (id INT, name VARCHAR(20))");
  QueryResult r = Exec("INSERT INTO emp_copy SELECT id, name FROM emp");
  EXPECT_EQ(r.affected_rows, 5);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM emp_copy"), "5");
}

TEST_F(SqlTest, InsertColumnSubset) {
  Seed();
  Exec("INSERT INTO emp (id, name) VALUES (99, 'zed')");
  QueryResult r = Exec("SELECT salary FROM emp WHERE id = 99");
  EXPECT_TRUE(r.rows.columns[0].IsNull(0));
}

TEST_F(SqlTest, NotNullEnforced) {
  Seed();
  EXPECT_EQ(ExecErr("INSERT INTO emp (name) VALUES ('noid')").code(),
            StatusCode::kSemanticError);
}

TEST_F(SqlTest, UniqueConstraint) {
  Exec("CREATE TABLE u (k INT PRIMARY KEY, v INT)");
  Exec("INSERT INTO u VALUES (1, 1)");
  EXPECT_EQ(ExecErr("INSERT INTO u VALUES (1, 2)").code(),
            StatusCode::kAlreadyExists);
}

TEST_F(SqlTest, Views) {
  Seed();
  Exec("CREATE VIEW v_eng AS SELECT name FROM emp WHERE dept = 10");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM v_eng"), "2");
  // Views re-plan against current data.
  Exec("INSERT INTO emp VALUES (6, 'fred', 10, 70.0, DATE '2017-02-02')");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM v_eng"), "3");
}

TEST_F(SqlTest, Explain) {
  Seed();
  QueryResult r = Exec("EXPLAIN SELECT dept, COUNT(*) FROM emp "
                       "WHERE salary > 50 GROUP BY dept");
  EXPECT_NE(r.message.find("ColumnScan"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("HashAggregate"), std::string::npos);
}

TEST_F(SqlTest, CaseExpressions) {
  Seed();
  QueryResult r = Exec(
      "SELECT name, CASE WHEN salary >= 120 THEN 'high' "
      "WHEN salary >= 90 THEN 'mid' ELSE 'low' END band "
      "FROM emp ORDER BY id");
  EXPECT_EQ(r.rows.columns[1].GetString(0), "mid");
  EXPECT_EQ(r.rows.columns[1].GetString(3), "low");
  // Simple (operand) form.
  EXPECT_EQ(Scalar("SELECT CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END "
                   "FROM dual"),
            "b");
}

TEST_F(SqlTest, InAndLike) {
  Seed();
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM emp WHERE dept IN (10, 30)"), "3");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM emp WHERE name LIKE '%a%'"), "3");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM emp WHERE name NOT LIKE 'a%'"), "4");
}

// ------------------------------------------------------- Oracle dialect --

TEST_F(SqlTest, OracleDualAndRownum) {
  session_->set_dialect(Dialect::kOracle);
  EXPECT_EQ(Scalar("SELECT 1 + 1 FROM DUAL"), "2");
  EXPECT_EQ(Scalar("SELECT DUMMY FROM DUAL"), "X");
  Seed();
  QueryResult r = Exec("SELECT name FROM emp WHERE ROWNUM <= 3");
  EXPECT_EQ(r.rows.num_rows(), 3u);
  QueryResult r2 = Exec("SELECT ROWNUM, name FROM emp WHERE ROWNUM <= 2");
  ASSERT_EQ(r2.rows.num_rows(), 2u);
  EXPECT_EQ(r2.rows.columns[0].GetInt(0), 1);
}

TEST_F(SqlTest, OracleFunctionsInSql) {
  session_->set_dialect(Dialect::kOracle);
  EXPECT_EQ(Scalar("SELECT NVL(NULL, 'x') FROM DUAL"), "x");
  EXPECT_EQ(Scalar("SELECT DECODE(2, 1, 'one', 2, 'two', 'other') FROM DUAL"),
            "two");
  EXPECT_EQ(Scalar("SELECT SUBSTR('hello', 2, 3) FROM DUAL"), "ell");
  EXPECT_EQ(Scalar("SELECT LPAD('7', 3, '0') FROM DUAL"), "007");
  EXPECT_EQ(Scalar("SELECT TO_CHAR(DATE '2017-04-01', 'YYYY-MM-DD') "
                   "FROM DUAL"),
            "2017-04-01");
  EXPECT_EQ(Scalar("SELECT GREATEST(3, 9, 4) FROM DUAL"), "9");
}

TEST_F(SqlTest, OracleSequences) {
  session_->set_dialect(Dialect::kOracle);
  Exec("CREATE SEQUENCE s1");
  EXPECT_EQ(Scalar("SELECT s1.NEXTVAL FROM DUAL"), "1");
  EXPECT_EQ(Scalar("SELECT s1.NEXTVAL FROM DUAL"), "2");
  EXPECT_EQ(Scalar("SELECT s1.CURRVAL FROM DUAL"), "2");
  // DB2 spelling against the same sequence.
  EXPECT_EQ(Scalar("SELECT NEXT VALUE FOR s1 FROM DUAL"), "3");
}

TEST_F(SqlTest, OracleConnectBy) {
  session_->set_dialect(Dialect::kOracle);
  Exec("CREATE TABLE org (id INT, mgr INT, name VARCHAR(20))");
  Exec("INSERT INTO org VALUES (1, NULL, 'ceo'), (2, 1, 'vp1'), "
       "(3, 1, 'vp2'), (4, 2, 'dir1'), (5, 4, 'ic1')");
  QueryResult r = Exec(
      "SELECT name, LEVEL FROM org START WITH mgr IS NULL "
      "CONNECT BY PRIOR id = mgr ORDER BY LEVEL, name");
  ASSERT_EQ(r.rows.num_rows(), 5u);
  EXPECT_EQ(r.rows.columns[0].GetString(0), "ceo");
  EXPECT_EQ(r.rows.columns[1].GetInt(4), 4);  // ic1 at level 4
}

TEST_F(SqlTest, OracleEmptyStringIsNullSemantics) {
  // Paper II.C.2: VARCHAR2 comparison semantics differ per dialect.
  Seed();
  Exec("INSERT INTO emp VALUES (7, '', 10, 1.0, NULL)");
  session_->set_dialect(Dialect::kOracle);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM emp WHERE name IS NULL"), "1");
  session_->set_dialect(Dialect::kAnsi);
  // Under ANSI the empty string is a value, not NULL — but the residual
  // IS NULL check sees the stored empty string as non-null.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM emp WHERE name IS NULL"), "0");
}

TEST_F(SqlTest, ViewRemembersCreationDialect) {
  // Paper II.C.2: objects keep the dialect they were created under.
  Seed();
  Exec("INSERT INTO emp VALUES (7, '', 10, 1.0, NULL)");
  session_->set_dialect(Dialect::kOracle);
  Exec("CREATE VIEW v_nullname AS SELECT id FROM emp WHERE name IS NULL");
  session_->set_dialect(Dialect::kAnsi);
  // Even queried under ANSI, the view evaluates with Oracle semantics.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM v_nullname"), "1");
}

// ------------------------------------------- Netezza/PostgreSQL dialect --

TEST_F(SqlTest, NetezzaCastsAndPredicates) {
  session_->set_dialect(Dialect::kNetezza);
  Seed();
  EXPECT_EQ(Scalar("SELECT '42'::INT4 + 1 FROM dual"), "43");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM emp WHERE name ISNULL"), "0");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM emp WHERE name NOTNULL"), "5");
  EXPECT_EQ(Scalar("SELECT (salary > 100) ISTRUE FROM emp WHERE id = 5"),
            "true");
}

TEST_F(SqlTest, NetezzaOverlaps) {
  session_->set_dialect(Dialect::kNetezza);
  EXPECT_EQ(Scalar("SELECT (DATE '2017-01-01', DATE '2017-03-01') OVERLAPS "
                   "(DATE '2017-02-01', DATE '2017-04-01') FROM dual"),
            "true");
  EXPECT_EQ(Scalar("SELECT (DATE '2017-01-01', DATE '2017-02-01') OVERLAPS "
                   "(DATE '2017-03-01', DATE '2017-04-01') FROM dual"),
            "false");
}

TEST_F(SqlTest, NetezzaTempTable) {
  session_->set_dialect(Dialect::kNetezza);
  Exec("CREATE TEMP TABLE scratch (x INT4)");
  Exec("INSERT INTO session.scratch VALUES (1), (2)");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM session.scratch"), "2");
}

// ----------------------------------------------------------- DB2 dialect --

TEST_F(SqlTest, Db2ValuesClause) {
  session_->set_dialect(Dialect::kDb2);
  QueryResult r = Exec("VALUES (1, 'a'), (2, 'b')");
  ASSERT_EQ(r.rows.num_rows(), 2u);
  EXPECT_EQ(r.rows.columns[1].GetString(1), "b");
  EXPECT_EQ(Scalar("VALUES 41 + 1"), "42");
}

TEST_F(SqlTest, Db2DeclareGlobalTemporary) {
  session_->set_dialect(Dialect::kDb2);
  Exec("DECLARE GLOBAL TEMPORARY TABLE tmp1 (x INT) ON COMMIT PRESERVE ROWS");
  Exec("INSERT INTO session.tmp1 VALUES (5)");
  EXPECT_EQ(Scalar("SELECT x FROM session.tmp1"), "5");
}

TEST_F(SqlTest, Db2CreateAlias) {
  Seed();
  Exec("CREATE ALIAS staff FOR emp");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM staff"), "5");
  // Alias shares storage: inserts through one name are visible via other.
  Exec("INSERT INTO staff VALUES (9, 'zoe', 10, 75.0, NULL)");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM emp"), "6");
}

// ------------------------------------------------------ session control --

TEST_F(SqlTest, SetDialectStatement) {
  Exec("SET SQL_DIALECT = NETEZZA");
  EXPECT_EQ(session_->dialect(), Dialect::kNetezza);
  Exec("SET SQL_DIALECT ORACLE");
  EXPECT_EQ(session_->dialect(), Dialect::kOracle);
  EXPECT_EQ(ExecErr("SET SQL_DIALECT = KLINGON").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SqlTest, ScriptExecution) {
  auto r = engine_.ExecuteScript(
      session_.get(),
      "CREATE TABLE s1 (x INT); INSERT INTO s1 VALUES (1), (2); "
      "SELECT SUM(x) FROM s1;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.columns[0].GetInt(0), 3);
}

TEST_F(SqlTest, ParseErrors) {
  EXPECT_EQ(ExecErr("SELEC 1").code(), StatusCode::kParseError);
  EXPECT_EQ(ExecErr("SELECT 1 FROM").code(), StatusCode::kParseError);
  EXPECT_EQ(ExecErr("SELECT 'unterminated").code(), StatusCode::kParseError);
  EXPECT_EQ(ExecErr("SELECT no_col FROM dual").code(),
            StatusCode::kSemanticError);
  EXPECT_EQ(ExecErr("SELECT NO_SUCH_FN(1) FROM dual").code(),
            StatusCode::kSemanticError);
}

TEST_F(SqlTest, CallUnknownProcedure) {
  EXPECT_EQ(ExecErr("CALL NO_SUCH_PROC(1)").code(), StatusCode::kNotFound);
}

TEST_F(SqlTest, RegisteredProcedure) {
  engine_.RegisterProcedure(
      "ECHO", [](const std::vector<Value>& args, Session*, Engine*)
                  -> Result<QueryResult> {
        QueryResult r;
        r.message = "echo:" + args[0].ToString();
        return r;
      });
  QueryResult r = Exec("CALL ECHO(42)");
  EXPECT_EQ(r.message, "echo:42");
}

TEST_F(SqlTest, RowOrganizedTables) {
  Exec("CREATE TABLE rowtab (id INT, v VARCHAR(10)) ORGANIZE BY ROW");
  Exec("INSERT INTO rowtab VALUES (1, 'a'), (2, 'b')");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM rowtab WHERE id = 2"), "1");
  QueryResult ex = Exec("EXPLAIN SELECT * FROM rowtab");
  EXPECT_NE(ex.message.find("RowScan"), std::string::npos);
  Exec("UPDATE rowtab SET v = 'c' WHERE id = 1");
  EXPECT_EQ(Scalar("SELECT v FROM rowtab WHERE id = 1"), "c");
}

TEST_F(SqlTest, ConcatOperator) {
  EXPECT_EQ(Scalar("SELECT 'a' || 'b' || 'c' FROM dual"), "abc");
}

TEST_F(SqlTest, ArithmeticPrecedence) {
  EXPECT_EQ(Scalar("SELECT 2 + 3 * 4 FROM dual"), "14");
  EXPECT_EQ(Scalar("SELECT (2 + 3) * 4 FROM dual"), "20");
  EXPECT_EQ(Scalar("SELECT -5 + 10 FROM dual"), "5");
}

TEST_F(SqlTest, DateLiteralArithmetic) {
  EXPECT_EQ(Scalar("SELECT DATE '2017-01-31' + 1 FROM dual"), "2017-02-01");
  EXPECT_EQ(Scalar("SELECT DATE '2017-01-31' - DATE '2017-01-01' FROM dual"),
            "30");
}

TEST_F(SqlTest, InsertNullAndThreeValuedWhere) {
  Exec("CREATE TABLE n (x INT)");
  Exec("INSERT INTO n VALUES (1), (NULL), (3)");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM n WHERE x > 0"), "2");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM n WHERE NOT (x > 0)"), "0");
  EXPECT_EQ(Scalar("SELECT COUNT(x) FROM n"), "2");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM n"), "3");
}

}  // namespace
}  // namespace dashdb
