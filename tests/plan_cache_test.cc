// Plan-cache battery: normalization, hit/miss accounting across literals
// and dialects, invalidation on DDL and statistics refresh, cross-session
// reuse, LRU eviction, and a concurrent PREPARE/EXECUTE storm that must
// stay deterministic while every thread fights over the same cache.
// Labeled `serve` and swept under ASan/TSan by scripts/check.sh.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "sql/engine.h"
#include "sql/plan_cache.h"

namespace dashdb {
namespace {

TEST(NormalizeSqlTest, CollapsesWhitespaceAndUppercases) {
  EXPECT_EQ(NormalizeSql("select  *\n\tfrom   t"), "SELECT * FROM T");
  EXPECT_EQ(NormalizeSql("  SELECT 1  "), "SELECT 1");
  EXPECT_EQ(NormalizeSql("select a -- trailing comment\nfrom t"),
            NormalizeSql("SELECT A FROM T"));
  EXPECT_EQ(NormalizeSql("select /* block\ncomment */ a from t"),
            NormalizeSql("select a from t"));
}

TEST(NormalizeSqlTest, PreservesQuotedTextExactly) {
  // String literals keep their case and inner whitespace; everything
  // around them normalizes.
  EXPECT_EQ(NormalizeSql("select 'MiXeD  CaSe' from t"),
            "SELECT 'MiXeD  CaSe' FROM T");
  EXPECT_NE(NormalizeSql("SELECT 'a' FROM T"), NormalizeSql("SELECT 'A' FROM T"));
  // Doubled-quote escape stays inside the literal.
  EXPECT_EQ(NormalizeSql("select 'it''s  odd' from t"),
            "SELECT 'it''s  odd' FROM T");
  // Quoted identifiers are case-sensitive too.
  EXPECT_EQ(NormalizeSql("select \"mIxEd\"  from t"),
            "SELECT \"mIxEd\" FROM T");
  // A comment-looking sequence inside a literal is not a comment.
  EXPECT_EQ(NormalizeSql("select '--not a comment' from t"),
            "SELECT '--not a comment' FROM T");
}

TEST(NormalizeSqlTest, EquivalentSpellingsCollide) {
  const char* same[] = {
      "SELECT COUNT(*) FROM ITEMS WHERE V > 10",
      "select count(*) from items where v > 10",
      "  select\n count(*)   from items\twhere v > 10  ",
      "select count(*) from items where v > 10 -- tail",
  };
  for (const char* s : same) {
    EXPECT_EQ(NormalizeSql(s), NormalizeSql(same[0])) << s;
  }
  // Different literals must NOT collide: the cached plan embeds them.
  EXPECT_NE(NormalizeSql("SELECT * FROM T WHERE V > 10"),
            NormalizeSql("SELECT * FROM T WHERE V > 11"));
}

TEST(PlanCacheUnitTest, LruEvictsOldestAndVersionsInvalidate) {
  PlanCache cache(2);
  auto s1 = std::make_shared<ast::Statement>();
  auto s2 = std::make_shared<ast::Statement>();
  auto s3 = std::make_shared<ast::Statement>();
  cache.Insert("SELECT 1", Dialect::kAnsi, 1, 1, s1);
  cache.Insert("SELECT 2", Dialect::kAnsi, 1, 1, s2);
  EXPECT_EQ(cache.size(), 2u);
  // Touch 1 so 2 is the LRU victim.
  EXPECT_EQ(cache.Lookup("SELECT 1", Dialect::kAnsi, 1, 1), s1);
  cache.Insert("SELECT 3", Dialect::kAnsi, 1, 1, s3);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup("SELECT 2", Dialect::kAnsi, 1, 1), nullptr);
  EXPECT_EQ(cache.Lookup("SELECT 1", Dialect::kAnsi, 1, 1), s1);
  EXPECT_EQ(cache.Lookup("SELECT 3", Dialect::kAnsi, 1, 1), s3);

  // Normalized spellings share an entry; dialects do not.
  EXPECT_EQ(cache.Lookup("select  1", Dialect::kAnsi, 1, 1), s1);
  EXPECT_EQ(cache.Lookup("SELECT 1", Dialect::kOracle, 1, 1), nullptr);

  // A version bump makes the entry stale: evicted on sight.
  EXPECT_EQ(cache.Lookup("SELECT 1", Dialect::kAnsi, 2, 1), nullptr);
  EXPECT_EQ(cache.Lookup("SELECT 3", Dialect::kAnsi, 1, 2), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

class PlanCacheEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(EngineConfig{});
    session_ = engine_->CreateSession();
    Exec("CREATE TABLE ITEMS (ID BIGINT, V BIGINT)");
    Exec("INSERT INTO ITEMS VALUES (1, 10), (2, 20), (3, 30), (4, 40)");
  }

  QueryResult Exec(const std::string& sql, Session* s = nullptr) {
    auto r = engine_->Execute(s ? s : session_.get(), sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  std::unique_ptr<Engine> engine_;
  std::shared_ptr<Session> session_;
};

TEST_F(PlanCacheEngineTest, RepeatQueriesHitAndLiteralsMiss) {
  MetricDeltaScope metrics;
  const std::string q = "SELECT COUNT(*) FROM ITEMS WHERE V > 15";
  EXPECT_EQ(Exec(q).rows.columns[0].GetValue(0).AsInt(), 3);
  EXPECT_EQ(metrics.Delta("server.plan_cache_misses"), 1);
  EXPECT_EQ(metrics.Delta("server.plan_cache_hits"), 0);

  // Same normalized text (case/whitespace variants) → hits.
  EXPECT_EQ(Exec("select count(*) from items where v > 15")
                .rows.columns[0].GetValue(0).AsInt(), 3);
  EXPECT_EQ(Exec("SELECT  COUNT(*)  FROM ITEMS  WHERE V > 15")
                .rows.columns[0].GetValue(0).AsInt(), 3);
  EXPECT_EQ(metrics.Delta("server.plan_cache_hits"), 2);
  EXPECT_EQ(metrics.Delta("server.plan_cache_misses"), 1);

  // Different literal → different plan → miss.
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM ITEMS WHERE V > 25")
                .rows.columns[0].GetValue(0).AsInt(), 2);
  EXPECT_EQ(metrics.Delta("server.plan_cache_misses"), 2);

  // DML and DDL never consult the read-plan cache.
  Exec("INSERT INTO ITEMS VALUES (5, 50)");
  EXPECT_EQ(metrics.Delta("server.plan_cache_misses"), 2);
  EXPECT_EQ(metrics.Delta("server.plan_cache_hits"), 2);
}

TEST_F(PlanCacheEngineTest, DialectsAreKeyedSeparately) {
  auto oracle = engine_->CreateSession();
  Exec("SET SQL_DIALECT = ORACLE", oracle.get());
  MetricDeltaScope metrics;
  const std::string q = "SELECT COUNT(*) FROM ITEMS WHERE V > 15";
  Exec(q);                // ANSI miss
  Exec(q, oracle.get());  // ORACLE miss — same text, different key
  EXPECT_EQ(metrics.Delta("server.plan_cache_misses"), 2);
  Exec(q);                // ANSI hit
  Exec(q, oracle.get());  // ORACLE hit
  EXPECT_EQ(metrics.Delta("server.plan_cache_hits"), 2);
  EXPECT_EQ(metrics.Delta("server.plan_cache_misses"), 2);
}

TEST_F(PlanCacheEngineTest, DdlInvalidatesCachedPlans) {
  MetricDeltaScope metrics;
  const std::string q = "SELECT COUNT(*) FROM ITEMS";
  Exec(q);
  Exec(q);
  EXPECT_EQ(metrics.Delta("server.plan_cache_hits"), 1);
  // Any catalog change (even an unrelated table) bumps the catalog version
  // and strands every cached plan.
  Exec("CREATE TABLE OTHER (X BIGINT)");
  Exec(q);
  EXPECT_EQ(metrics.Delta("server.plan_cache_misses"), 2);
  Exec(q);
  EXPECT_EQ(metrics.Delta("server.plan_cache_hits"), 2);
  Exec("DROP TABLE OTHER");
  Exec(q);
  EXPECT_EQ(metrics.Delta("server.plan_cache_misses"), 3);
}

TEST_F(PlanCacheEngineTest, StatsRefreshInvalidatesCachedPlans) {
  MetricDeltaScope metrics;
  const std::string q = "SELECT COUNT(*) FROM ITEMS WHERE V > 15";
  Exec(q);
  Exec(q);
  EXPECT_EQ(metrics.Delta("server.plan_cache_hits"), 1);
  uint64_t before = engine_->stats_version();
  auto r = Exec("CALL RUNSTATS()");
  EXPECT_NE(r.message.find("statistics refreshed"), std::string::npos);
  EXPECT_GT(engine_->stats_version(), before);
  Exec(q);
  EXPECT_EQ(metrics.Delta("server.plan_cache_misses"), 2);
  Exec(q);
  EXPECT_EQ(metrics.Delta("server.plan_cache_hits"), 2);
}

TEST_F(PlanCacheEngineTest, CachedPlansAreSharedAcrossSessions) {
  MetricDeltaScope metrics;
  const std::string q = "SELECT COUNT(*) FROM ITEMS WHERE V >= 20";
  Exec(q);  // session 1 primes the engine-wide cache
  auto other = engine_->CreateSession();
  EXPECT_EQ(Exec(q, other.get()).rows.columns[0].GetValue(0).AsInt(), 3);
  EXPECT_EQ(metrics.Delta("server.plan_cache_hits"), 1);
  EXPECT_EQ(metrics.Delta("server.plan_cache_misses"), 1);
}

TEST_F(PlanCacheEngineTest, ConcurrentPrepareExecuteStormIsDeterministic) {
  Exec("INSERT INTO ITEMS VALUES (5, 50), (6, 60), (7, 70), (8, 80)");
  constexpr int kThreads = 8;
  constexpr int kIters = 50;
  std::vector<std::thread> threads;
  std::vector<std::string> errors(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session = engine_->CreateSession();
      // Everyone uses the same statement name — names are session-scoped,
      // so there must be no cross-talk.
      auto np = engine_->Prepare(session.get(), "q",
                                 "SELECT COUNT(*) FROM ITEMS WHERE V > ?");
      if (!np.ok() || *np != 1) {
        errors[t] = "prepare failed";
        return;
      }
      for (int i = 0; i < kIters; ++i) {
        int64_t cutoff = (t * kIters + i) % 90;
        auto r = engine_->ExecutePrepared(session.get(), "q",
                                          {Value::Int64(cutoff)});
        if (!r.ok()) {
          errors[t] = r.status().ToString();
          return;
        }
        int64_t got = r->rows.columns[0].GetValue(0).AsInt();
        int64_t want = 0;
        for (int64_t v : {10, 20, 30, 40, 50, 60, 70, 80}) {
          if (v > cutoff) ++want;
        }
        if (got != want) {
          errors[t] = "cutoff " + std::to_string(cutoff) + ": got " +
                      std::to_string(got) + " want " + std::to_string(want);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(errors[t].empty()) << "thread " << t << ": " << errors[t];
  }
  // The shared cache stayed coherent: the storm's statement text is cached
  // engine-wide, so a fresh session re-preparing it parses from the cache
  // and still answers correctly.
  auto fresh = engine_->CreateSession();
  auto np = engine_->Prepare(fresh.get(), "q2",
                             "SELECT COUNT(*) FROM ITEMS WHERE V > ?");
  ASSERT_TRUE(np.ok());
  auto r = engine_->ExecutePrepared(fresh.get(), "q2", {Value::Int64(45)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.columns[0].GetValue(0).AsInt(), 4);
}

TEST_F(PlanCacheEngineTest, DirectCacheCountersMatchMetrics) {
  PlanCache& cache = engine_->plan_cache();
  uint64_t h0 = cache.hits(), m0 = cache.misses();
  const std::string q = "SELECT ID FROM ITEMS ORDER BY ID";
  Exec(q);
  Exec(q);
  Exec(q);
  EXPECT_EQ(cache.misses() - m0, 1u);
  EXPECT_EQ(cache.hits() - h0, 2u);
}

}  // namespace
}  // namespace dashdb
