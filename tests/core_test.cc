// Tests for the public facade: Deploy -> Connect -> Execute, and the
// hybrid-compatibility story (same API shape for local and "cloud"
// instances, paper II.F).
#include <gtest/gtest.h>

#include "core/dashdb.h"

namespace dashdb {
namespace {

TEST(DashDbLocalTest, DeployDetectsAndConfigures) {
  auto db = DashDbLocal::Deploy();
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_GE((*db)->hardware().cores, 1);
  EXPECT_GT((*db)->config().bufferpool_bytes, 0u);
  EXPECT_EQ((*db)->engine()->config().buffer_pool_bytes,
            (*db)->config().bufferpool_bytes);
}

TEST(DashDbLocalTest, QuickstartFlow) {
  auto db = std::move(*DashDbLocal::Deploy());
  auto conn = db->Connect("analyst");
  ASSERT_TRUE(conn->Execute("CREATE TABLE t (x INT, y VARCHAR(10))").ok());
  ASSERT_TRUE(conn->Execute("INSERT INTO t VALUES (1,'a'), (2,'b')").ok());
  auto r = conn->Execute("SELECT SUM(x) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.columns[0].GetInt(0), 3);
}

TEST(DashDbLocalTest, PerConnectionDialects) {
  auto db = std::move(*DashDbLocal::Deploy());
  auto oracle_conn = db->Connect("a");
  auto ansi_conn = db->Connect("b");
  oracle_conn->SetDialect(Dialect::kOracle);
  // DUAL resolves for the Oracle session; both sessions share the catalog.
  ASSERT_TRUE(oracle_conn->Execute("SELECT 1 FROM DUAL").ok());
  ASSERT_TRUE(oracle_conn->Execute("CREATE TABLE shared (x INT)").ok());
  ASSERT_TRUE(ansi_conn->Execute("INSERT INTO shared VALUES (5)").ok());
  auto r = oracle_conn->Execute("SELECT x FROM shared");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.columns[0].GetInt(0), 5);
}

TEST(DashDbLocalTest, GlmProcedureRegisteredOnDeploy) {
  auto db = std::move(*DashDbLocal::Deploy());
  auto conn = db->Connect("ds");
  ASSERT_TRUE(conn->Execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").ok());
  for (int i = 0; i < 30; ++i) {
    double x = i / 30.0;
    ASSERT_TRUE(conn->Execute("INSERT INTO pts VALUES (" + std::to_string(x) +
                              ", " + std::to_string(2 * x) + ")")
                    .ok());
  }
  auto r = conn->Execute("CALL IDAX.GLM('pts', 'y', 'x', 300, 'LINEAR')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.num_rows(), 2u);
}

TEST(DashDbLocalTest, CloudCompatibility) {
  // Paper II.F: the cloud service runs "a common query engine" — code
  // written against one instance executes unchanged on another.
  DashDbOptions cloud;
  cloud.detect_hardware = false;
  cloud.hardware = {"aws-32vcpu", 32, size_t{244} << 30, size_t{3} << 40,
                    true};
  auto onprem = std::move(*DashDbLocal::Deploy());
  auto aws = std::move(*DashDbLocal::Deploy(cloud));
  const std::string app =
      "CREATE TABLE app (k INT, v DOUBLE); "
      "INSERT INTO app VALUES (1, 1.5), (2, 2.5); "
      "SELECT AVG(v) FROM app;";
  auto r1 = onprem->Connect("u")->ExecuteScript(app);
  auto r2 = aws->Connect("u")->ExecuteScript(app);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r1->rows.columns[0].GetDouble(0),
                   r2->rows.columns[0].GetDouble(0));
}

}  // namespace
}  // namespace dashdb
