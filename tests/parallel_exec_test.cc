// Morsel-driven parallelism end-to-end: parallel execution must return the
// same rows as serial execution at every degree, over both the TPC-DS mini
// star schema and the customer workload's statement stream, and EXPLAIN
// must report the effective degree.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sql/engine.h"
#include "workloads/customer_workload.h"
#include "workloads/tpcds_mini.h"

namespace dashdb {
namespace {

using bench::CustomerScale;
using bench::CustomerWorkload;
using bench::LoadTpcds;
using bench::TpcdsQueries;
using bench::TpcdsScale;

EngineConfig ParallelConfig(int qp) {
  EngineConfig cfg;
  cfg.default_organization = TableOrganization::kColumn;
  cfg.query_parallelism = qp;
  return cfg;
}

/// Rows as sorted strings. Doubles print at 6 significant digits: parallel
/// aggregation merges partial sums in a different order than the serial
/// fold, which legally perturbs the last bits of floating-point results.
std::vector<std::string> SortedRows(const QueryResult& r) {
  std::vector<std::string> rows;
  const size_t n = r.rows.num_rows();
  for (size_t i = 0; i < n; ++i) {
    std::string row;
    for (const ColumnVector& cv : r.rows.columns) {
      Value v = cv.GetValue(i);
      if (v.is_null()) {
        row += "<null>";
      } else if (v.type() == TypeId::kDouble) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", v.AsDouble());
        row += buf;
      } else {
        row += v.ToString();
      }
      row += '|';
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Strips a trailing "LIMIT n": under TOP-N, ties at the cutoff make the
/// selected rows legitimately order-dependent, so equality is compared on
/// the full result instead (LimitOp itself is covered by tier-1 tests).
std::string WithoutLimit(const std::string& q) {
  size_t pos = q.rfind(" LIMIT ");
  return pos == std::string::npos ? q : q.substr(0, pos);
}

TEST(ParallelExecTest, TpcdsResultsIdenticalAcrossDegrees) {
  Engine engine(ParallelConfig(8));
  auto session = engine.CreateSession();
  TpcdsScale scale;
  scale.store_sales_rows = 60000;
  ASSERT_TRUE(LoadTpcds(&engine, scale, /*index_keys=*/false).ok());
  for (const auto& q : TpcdsQueries()) {
    const std::string sql = WithoutLimit(q);
    std::vector<std::vector<std::string>> per_dop;
    for (int dop : {1, 2, 8}) {
      auto s = engine.Execute(session.get(),
                              "SET DOP = " + std::to_string(dop));
      ASSERT_TRUE(s.ok()) << s.status().ToString();
      auto r = engine.Execute(session.get(), sql);
      ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
      per_dop.push_back(SortedRows(*r));
    }
    EXPECT_EQ(per_dop[0], per_dop[1]) << "dop 2 diverged: " << sql;
    EXPECT_EQ(per_dop[0], per_dop[2]) << "dop 8 diverged: " << sql;
  }
}

TEST(ParallelExecTest, CustomerWorkloadMatchesSerialEngine) {
  // Two engines run the identical statement stream: one hard-serial, one
  // with an 8-way pool. Every row-returning statement must agree.
  Engine serial(ParallelConfig(1));
  Engine parallel(ParallelConfig(8));
  CustomerScale scale;
  scale.rows_per_table = 12000;
  scale.num_statements = 400;
  CustomerWorkload w1(scale), w2(scale);
  ASSERT_TRUE(w1.Setup(&serial).ok());
  ASSERT_TRUE(w2.Setup(&parallel).ok());
  auto s1 = serial.CreateSession();
  auto s2 = parallel.CreateSession();
  size_t compared = 0;
  for (const auto& stmt : w1.MakeStatements()) {
    auto r1 = serial.Execute(s1.get(), stmt.sql);
    auto r2 = parallel.Execute(s2.get(), stmt.sql);
    ASSERT_EQ(r1.ok(), r2.ok()) << stmt.sql;
    if (!r1.ok()) continue;
    EXPECT_EQ(r1->affected_rows, r2->affected_rows) << stmt.sql;
    if (r1->has_rows()) {
      EXPECT_EQ(SortedRows(*r1), SortedRows(*r2)) << stmt.sql;
      ++compared;
    }
  }
  EXPECT_GT(compared, 0u);
}

TEST(ParallelExecTest, ExplainReportsDegreeOfParallelism) {
  Engine engine(ParallelConfig(4));
  auto session = engine.CreateSession();
  ASSERT_TRUE(engine
                  .Execute(session.get(),
                           "CREATE TABLE T (G INT NOT NULL, K INT, V INT)")
                  .ok());
  ASSERT_TRUE(engine
                  .Execute(session.get(),
                           "CREATE TABLE D (K INT NOT NULL, A INT)")
                  .ok());
  auto plan = engine.Execute(
      session.get(),
      "EXPLAIN SELECT T.G, COUNT(*), SUM(T.V) FROM T, D "
      "WHERE T.K = D.K GROUP BY T.G");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->message.find("ParallelColumnScan"), std::string::npos)
      << plan->message;
  EXPECT_NE(plan->message.find("dop=4"), std::string::npos) << plan->message;
  EXPECT_NE(plan->message.find("build-dop=4"), std::string::npos)
      << plan->message;

  // SET DOP = 1 turns the same statement fully serial.
  ASSERT_TRUE(engine.Execute(session.get(), "SET DOP = 1").ok());
  plan = engine.Execute(
      session.get(),
      "EXPLAIN SELECT T.G, COUNT(*), SUM(T.V) FROM T, D "
      "WHERE T.K = D.K GROUP BY T.G");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->message.find("ParallelColumnScan"), std::string::npos)
      << plan->message;
  EXPECT_EQ(plan->message.find("dop="), std::string::npos) << plan->message;

  // SET DOP = ANY restores the engine-configured degree.
  auto set = engine.Execute(session.get(), "SET DOP = ANY");
  ASSERT_TRUE(set.ok());
  EXPECT_NE(set->message.find("4"), std::string::npos) << set->message;
}

TEST(ParallelExecTest, SessionDegreeClampsToEngineDegree) {
  Engine engine(ParallelConfig(2));
  auto session = engine.CreateSession();
  auto r = engine.Execute(session.get(), "SET DOP = 64");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(engine.EffectiveDop(*session), 2);
  r = engine.Execute(session.get(), "SET DOP = 0");
  EXPECT_FALSE(r.ok());
}

TEST(ParallelExecTest, DistinctAggregateStaysSerialButCorrect) {
  // COUNT(DISTINCT ...) cannot merge thread-local partials; the operator
  // must fall back to the serial path and still be right at any degree.
  Engine engine(ParallelConfig(8));
  auto session = engine.CreateSession();
  ASSERT_TRUE(
      engine.Execute(session.get(), "CREATE TABLE U (G INT, V INT)").ok());
  std::string insert = "INSERT INTO U VALUES ";
  for (int i = 0; i < 500; ++i) {
    if (i) insert += ", ";
    insert += "(" + std::to_string(i % 5) + ", " + std::to_string(i % 37) +
              ")";
  }
  ASSERT_TRUE(engine.Execute(session.get(), insert).ok());
  auto r = engine.Execute(
      session.get(), "SELECT G, COUNT(DISTINCT V) FROM U GROUP BY G");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.num_rows(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(r->rows.columns[1].GetInt(i), 37);
  }
}

}  // namespace
}  // namespace dashdb
