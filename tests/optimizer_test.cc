// End-to-end cost-based optimizer tests (`ctest -L opt`): plan shape and
// result equivalence between SET OPTIMIZER COST and HEURISTIC, the `est=`
// annotations and `exec.card_est_error` feedback in EXPLAIN ANALYZE, Bloom
// semi-join pushdown metrics (and their absence under the heuristic
// baseline), adaptive re-planning on the mis-estimated star query, and the
// SET toggles themselves.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "sql/engine.h"
#include "workloads/star_schema.h"

namespace dashdb {
namespace {

bench::StarScale SmallScale() {
  bench::StarScale s;
  s.fact_rows = 20000;
  s.customers = 2000;
  s.products = 800;
  s.stores = 100;
  s.dates = 200;
  s.seed = 11;
  return s;
}

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : engine_(MakeConfig()), session_(engine_.CreateSession()) {
    bench::StarSchemaWorkload workload(SmallScale());
    auto s = workload.Setup(&engine_);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  static EngineConfig MakeConfig() {
    EngineConfig cfg;
    cfg.query_parallelism = 4;
    return cfg;
  }

  QueryResult Exec(const std::string& sql) {
    auto r = engine_.Execute(session_.get(), sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  static std::string Digest(const QueryResult& r) {
    std::vector<std::string> rows;
    for (size_t i = 0; i < r.rows.num_rows(); ++i) {
      std::string row;
      for (const ColumnVector& cv : r.rows.columns) {
        Value v = cv.GetValue(i);
        row += v.is_null() ? "<null>" : v.ToString();
        row += '|';
      }
      rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end());
    std::string all;
    for (const auto& row : rows) all += row + "\n";
    return all;
  }

  /// Runs `sql` under both optimizer modes and expects identical digests.
  void ExpectModesAgree(const std::string& sql) {
    Exec("SET OPTIMIZER HEURISTIC");
    std::string heur = Digest(Exec(sql));
    Exec("SET OPTIMIZER COST");
    std::string cost = Digest(Exec(sql));
    EXPECT_EQ(heur, cost) << sql;
  }

  static std::string StarSql() {
    return "SELECT C.REGION, COUNT(*), SUM(S.AMT) "
           "FROM DATEDIM D, SALES S, STORE T, CUSTOMER C, PRODUCT P "
           "WHERE S.DATE_ID = D.DATE_ID AND S.STORE_ID = T.STORE_ID "
           "AND S.CUST_ID = C.CUST_ID AND S.PROD_ID = P.PROD_ID "
           "AND P.PRICE <= 10 GROUP BY C.REGION";
  }

  /// 11 relations: greedy ordering, SEGMENT mis-estimate, CATEGORY
  /// outrigger reachable only through PRODUCT (same shape as the bench).
  static std::string AdaptiveSql() {
    std::string sql =
        "SELECT COUNT(*), SUM(S.AMT) "
        "FROM SALES S, CUSTOMER C, PRODUCT P, CATEGORY G";
    for (int k = 1; k <= 7; ++k) sql += ", STORE T" + std::to_string(k);
    sql +=
        " WHERE S.CUST_ID = C.CUST_ID AND S.PROD_ID = P.PROD_ID"
        " AND P.CAT_ID = G.CAT_ID";
    for (int k = 1; k <= 7; ++k) {
      sql += " AND S.STORE_ID = T" + std::to_string(k) + ".STORE_ID";
    }
    sql += " AND C.SEGMENT = 0 AND G.KIND = 2";
    return sql;
  }

  Engine engine_;
  std::shared_ptr<Session> session_;
};

// ---------------------------------------------------- result equivalence --

TEST_F(OptimizerTest, CostMatchesHeuristicOnMultiJoins) {
  ExpectModesAgree(StarSql());
  // Snowflake chain through the CATEGORY outrigger.
  ExpectModesAgree(
      "SELECT P.CAT_ID, COUNT(*) FROM SALES S, PRODUCT P, CATEGORY G "
      "WHERE S.PROD_ID = P.PROD_ID AND P.CAT_ID = G.CAT_ID AND G.KIND = 2 "
      "GROUP BY P.CAT_ID");
  // Non-aggregate projection with a residual cross-table predicate.
  ExpectModesAgree(
      "SELECT COUNT(*) FROM SALES S, CUSTOMER C, STORE T "
      "WHERE S.CUST_ID = C.CUST_ID AND S.STORE_ID = T.STORE_ID "
      "AND C.REGION < T.REGION");
}

TEST_F(OptimizerTest, OuterJoinFallsBackToHeuristicPath) {
  // LEFT JOIN in a 3-way FROM keeps the legacy join tree (the cost path
  // gates itself to inner/cross chains) and must stay correct either way.
  const std::string sql =
      "SELECT COUNT(*), COUNT(C.REGION) "
      "FROM STORE T LEFT JOIN CUSTOMER C ON T.STORE_ID = C.CUST_ID, "
      "CATEGORY G";
  ExpectModesAgree(sql);
}

// ------------------------------------------------- estimates in EXPLAIN --

TEST_F(OptimizerTest, ExplainAnalyzeShowsEstimates) {
  Exec("SET OPTIMIZER COST");
  QueryResult r = Exec("EXPLAIN ANALYZE " + StarSql());
  EXPECT_NE(r.message.find("est="), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("AdaptiveJoin"), std::string::npos) << r.message;
  // Plain EXPLAIN carries no runtime metrics, so no estimate annotations.
  QueryResult plan = Exec("EXPLAIN " + StarSql());
  EXPECT_EQ(plan.message.find("est="), std::string::npos) << plan.message;
}

TEST_F(OptimizerTest, CardinalityErrorHistogramPopulated) {
  Histogram* h = MetricRegistry::Global().GetHistogram(
      "exec.card_est_error", {-4, -2, -1, 0, 1, 2, 4});
  uint64_t before = h->count();
  Exec("SET OPTIMIZER COST");
  Exec(StarSql());
  EXPECT_GT(h->count(), before);
}

// --------------------------------------------------------- Bloom pushdown --

TEST_F(OptimizerTest, BloomPushdownFiresUnderCostOptimizer) {
  Counter* installs =
      MetricRegistry::Global().GetCounter("exec.bloom_pushdowns");
  Counter* dropped =
      MetricRegistry::Global().GetCounter("exec.bloom_rows_dropped");
  Exec("SET OPTIMIZER COST");
  uint64_t i0 = installs->value(), d0 = dropped->value();
  Exec(StarSql());
  EXPECT_GT(installs->value(), i0);
  EXPECT_GT(dropped->value(), d0);
}

TEST_F(OptimizerTest, NoBloomPushdownUnderHeuristicBaseline) {
  Counter* installs =
      MetricRegistry::Global().GetCounter("exec.bloom_pushdowns");
  Exec("SET OPTIMIZER HEURISTIC");
  uint64_t i0 = installs->value();
  Exec(StarSql());
  EXPECT_EQ(installs->value(), i0);
}

// ---------------------------------------------------- adaptive re-planning --

TEST_F(OptimizerTest, AdaptiveReplanFiresAndPreservesResults) {
  Counter* replans =
      MetricRegistry::Global().GetCounter("exec.adaptive_replans");
  Exec("SET OPTIMIZER COST");
  Exec("SET ADAPTIVE OFF");
  uint64_t r0 = replans->value();
  std::string off = Digest(Exec(AdaptiveSql()));
  EXPECT_EQ(replans->value(), r0) << "re-plan must not fire when disabled";
  Exec("SET ADAPTIVE ON");
  std::string on = Digest(Exec(AdaptiveSql()));
  EXPECT_GT(replans->value(), r0) << "19x SEGMENT mis-estimate must trigger";
  EXPECT_EQ(off, on);
}

// ------------------------------------------------------------ SET toggles --

TEST_F(OptimizerTest, SetStatementsValidateValues) {
  Exec("SET OPTIMIZER COST");
  Exec("SET OPTIMIZER HEURISTIC");
  Exec("SET OPTIMIZER SYNTACTIC");  // alias for the FROM-order baseline
  Exec("SET JOIN_ORDER COST");
  Exec("SET ADAPTIVE OFF");
  Exec("SET ADAPTIVE ON");
  auto bad = engine_.Execute(session_.get(), "SET OPTIMIZER RANDOM");
  EXPECT_FALSE(bad.ok());
  auto bad2 = engine_.Execute(session_.get(), "SET ADAPTIVE MAYBE");
  EXPECT_FALSE(bad2.ok());
}

}  // namespace
}  // namespace dashdb
