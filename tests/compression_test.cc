// Tests for the compression module: stats, frequency-partitioned
// order-preserving dictionaries, minus (FOR) encoding, prefix compression,
// and the legacy baseline.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "compression/for_encoding.h"
#include "compression/frequency_dict.h"
#include "compression/legacy.h"
#include "compression/prefix.h"
#include "compression/stats.h"

namespace dashdb {
namespace {

TEST(StatsTest, BasicIntStats) {
  std::vector<int64_t> v = {5, 1, 5, 9, 5, 1};
  IntColumnStats s = ComputeIntStats(v.data(), v.size(), nullptr);
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 9);
  EXPECT_EQ(s.ndv, 3u);
  ASSERT_TRUE(s.ndv_exact);
  EXPECT_EQ(s.freq_desc[0].first, 5);  // most frequent first
  EXPECT_EQ(s.freq_desc[0].second, 3u);
}

TEST(StatsTest, NullsExcluded) {
  std::vector<int64_t> v = {1, 0, 3};
  BitVector nulls(3);
  nulls.Set(1);
  IntColumnStats s = ComputeIntStats(v.data(), v.size(), &nulls);
  EXPECT_EQ(s.null_count, 1u);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.ndv, 2u);
}

TEST(StatsTest, NdvLimitCapsTracking) {
  std::vector<int64_t> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  IntColumnStats s = ComputeIntStats(v.data(), v.size(), nullptr, 10);
  EXPECT_FALSE(s.ndv_exact);
}

TEST(FrequencyDictTest, MostFrequentValuesGetShortestCodes) {
  // 'A' dominates -> must land in partition 0 (1-bit codes).
  std::vector<std::pair<int64_t, size_t>> freq = {
      {100, 1000}, {200, 900}, {7, 10}, {8, 9}, {9, 8}, {10, 7}};
  auto d = IntFrequencyDict::Build(freq);
  ASSERT_GE(d.num_partitions(), 2);
  EXPECT_EQ(d.partition_width(0), 1);
  EXPECT_EQ(d.partition_size(0), 2u);
  auto pc = d.Encode(100);
  ASSERT_TRUE(pc.has_value());
  EXPECT_EQ(pc->partition, 0);
  auto pc2 = d.Encode(9);
  ASSERT_TRUE(pc2.has_value());
  EXPECT_EQ(pc2->partition, 1);
}

TEST(FrequencyDictTest, OrderPreservingWithinPartition) {
  // Property: within any partition, code order == value order (paper II.B.2).
  Rng rng(11);
  std::vector<std::pair<int64_t, size_t>> freq;
  for (int i = 0; i < 500; ++i) {
    freq.emplace_back(rng.Range(-100000, 100000), 500 - i);
  }
  std::sort(freq.begin(), freq.end(),
            [](auto& a, auto& b) { return a.second > b.second; });
  // Dedup values keeping the highest frequency.
  std::vector<std::pair<int64_t, size_t>> dedup;
  std::set<int64_t> seen;
  for (auto& [v, f] : freq) {
    if (seen.insert(v).second) dedup.emplace_back(v, f);
  }
  auto d = IntFrequencyDict::Build(dedup);
  for (int p = 0; p < d.num_partitions(); ++p) {
    int64_t prev = INT64_MIN;
    for (uint32_t c = 0; c < d.partition_size(p); ++c) {
      int64_t v = d.Decode(p, c);
      EXPECT_GT(v, prev) << "partition " << p << " code " << c;
      prev = v;
    }
  }
}

TEST(FrequencyDictTest, EncodeDecodeRoundTrip) {
  std::vector<std::pair<int64_t, size_t>> freq;
  for (int i = 0; i < 300; ++i) freq.emplace_back(i * 3, 300 - i);
  auto d = IntFrequencyDict::Build(freq);
  for (int i = 0; i < 300; ++i) {
    auto pc = d.Encode(i * 3);
    ASSERT_TRUE(pc.has_value());
    EXPECT_EQ(d.Decode(pc->partition, pc->code), i * 3);
  }
  EXPECT_FALSE(d.Encode(1).has_value());  // not in dictionary
}

TEST(FrequencyDictTest, RangeForTranslatesPredicates) {
  std::vector<std::pair<int64_t, size_t>> freq;
  for (int i = 0; i < 100; ++i) freq.emplace_back(i * 10, 100 - i);
  auto d = IntFrequencyDict::Build(freq);
  // Check: for every partition, RangeFor([250, 610]) selects exactly the
  // codes whose values are in range.
  int64_t lo = 250, hi = 610;
  size_t selected = 0;
  for (int p = 0; p < d.num_partitions(); ++p) {
    CodeRange r = d.RangeFor(p, &lo, true, &hi, true);
    if (r.empty()) continue;
    for (uint32_t c = r.lo; c <= r.hi; ++c) {
      int64_t v = d.Decode(p, c);
      EXPECT_GE(v, lo);
      EXPECT_LE(v, hi);
      ++selected;
    }
  }
  // Values 250..610 step 10 -> 37 values.
  EXPECT_EQ(selected, 37u);
}

TEST(FrequencyDictTest, RangeForExclusiveBounds) {
  std::vector<std::pair<int64_t, size_t>> freq = {{10, 5}, {20, 4}, {30, 3}};
  auto d = IntFrequencyDict::Build(freq);
  int64_t lo = 10, hi = 30;
  size_t n = 0;
  for (int p = 0; p < d.num_partitions(); ++p) {
    CodeRange r = d.RangeFor(p, &lo, false, &hi, false);
    if (!r.empty()) n += r.hi - r.lo + 1;
  }
  EXPECT_EQ(n, 1u);  // only 20
}

TEST(FrequencyDictTest, StringDictionary) {
  std::vector<std::pair<std::string, size_t>> freq = {
      {"frequent", 100}, {"common", 50}, {"rare1", 2}, {"rare2", 1}};
  auto d = StringFrequencyDict::Build(freq);
  auto pc = d.Encode("frequent");
  ASSERT_TRUE(pc.has_value());
  EXPECT_EQ(pc->partition, 0);
  EXPECT_EQ(d.Decode(pc->partition, pc->code), "frequent");
  EXPECT_GT(d.ByteSize(), 0u);
}

TEST(ForEncodingTest, RoundTrip) {
  std::vector<int64_t> v = {1000000, 1000005, 999999, 1000100};
  ForEncoded e = ForEncode(v.data(), v.size(), nullptr);
  EXPECT_EQ(e.base, 999999);
  EXPECT_LE(e.bit_width, 8);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_EQ(e.Get(i), v[i]);
}

TEST(ForEncodingTest, CompressionOnClusteredValues) {
  // 1M-magnitude values in a narrow band should compress far below 8 bytes.
  std::vector<int64_t> v;
  Rng rng(3);
  for (int i = 0; i < 4096; ++i) v.push_back(5000000 + rng.Range(0, 255));
  ForEncoded e = ForEncode(v.data(), v.size(), nullptr);
  EXPECT_LE(e.bit_width, 8);
  EXPECT_LT(e.ByteSize(), v.size() * 2);
}

TEST(ForEncodingTest, RangeTranslation) {
  std::vector<int64_t> v = {100, 110, 120, 130};
  ForEncoded e = ForEncode(v.data(), v.size(), nullptr);
  int64_t lo = 105, hi = 125;
  auto r = ForRangeFor(e, &lo, true, &hi, true);
  ASSERT_TRUE(r.has_value());
  // Codes 10 and 20 (values 110, 120) qualify.
  EXPECT_EQ(r->lo, 5u);
  EXPECT_EQ(r->hi, 25u);
}

TEST(ForEncodingTest, RangeMissesPage) {
  std::vector<int64_t> v = {100, 110};
  ForEncoded e = ForEncode(v.data(), v.size(), nullptr);
  int64_t lo = 500;
  EXPECT_FALSE(ForRangeFor(e, &lo, true, nullptr, true).has_value());
  int64_t hi = 50;
  EXPECT_FALSE(ForRangeFor(e, nullptr, true, &hi, true).has_value());
}

TEST(ForEncodingTest, NegativeValues) {
  std::vector<int64_t> v = {-50, -10, -30};
  ForEncoded e = ForEncode(v.data(), v.size(), nullptr);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_EQ(e.Get(i), v[i]);
}

TEST(PrefixTest, RoundTripSortedStrings) {
  std::vector<std::string> sorted = {"app", "apple", "apples", "banana",
                                     "band", "bandit", "bank"};
  auto blk = PrefixCodedBlock::Encode(sorted);
  EXPECT_EQ(blk.DecodeAll(), sorted);
  for (size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(blk.Get(i), sorted[i]);
}

TEST(PrefixTest, SavesSpaceOnSharedPrefixes) {
  std::vector<std::string> sorted;
  for (int i = 0; i < 1000; ++i) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "customer_account_number_%06d", i);
    sorted.emplace_back(buf);
  }
  auto blk = PrefixCodedBlock::Encode(sorted);
  size_t raw = 0;
  for (auto& s : sorted) raw += s.size();
  EXPECT_LT(blk.ByteSize(), raw / 2);
  EXPECT_EQ(blk.DecodeAll(), sorted);
}

TEST(PrefixTest, RestartsBoundRandomAccessCost) {
  std::vector<std::string> sorted;
  for (int i = 0; i < 100; ++i) sorted.push_back("k" + std::to_string(1000 + i));
  auto blk = PrefixCodedBlock::Encode(sorted, /*restart_interval=*/4);
  EXPECT_EQ(blk.Get(99), sorted[99]);
  EXPECT_EQ(blk.Get(0), sorted[0]);
}

TEST(LegacyTest, DictUsedForLowCardinality) {
  std::vector<int64_t> v(4096);
  for (size_t i = 0; i < v.size(); ++i) v[i] = i % 16;
  auto c = LegacyCompressInts(v.data(), v.size());
  EXPECT_TRUE(c.dictionary_used);
  EXPECT_LT(c.encoded_bytes, c.raw_bytes);
  // Legacy uses byte codes: 1 byte/value minimum + dict.
  EXPECT_GE(c.encoded_bytes, v.size());
}

TEST(LegacyTest, FallsBackToRawOnHighCardinality) {
  std::vector<int64_t> v(100000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int64_t>(i) * 7;
  auto c = LegacyCompressInts(v.data(), v.size());
  EXPECT_FALSE(c.dictionary_used);
  EXPECT_EQ(c.encoded_bytes, c.raw_bytes);
}

TEST(LegacyTest, NewGenerationBeatsLegacyByPaperFactor) {
  // The architectural point behind the 2-3x claim: bit-packed frequency
  // codes beat byte-aligned legacy dictionary codes on skewed data.
  ZipfGenerator z(64, 1.1, 5);
  std::vector<int64_t> v(65536);
  for (auto& x : v) x = static_cast<int64_t>(z.Next());
  auto legacy = LegacyCompressInts(v.data(), v.size());

  IntColumnStats s = ComputeIntStats(v.data(), v.size(), nullptr);
  auto dict = IntFrequencyDict::Build(s.freq_desc);
  // Compute the frequency-encoded footprint: each value costs its
  // partition's width.
  size_t bits = 0;
  for (int64_t x : v) {
    auto pc = dict.Encode(x);
    ASSERT_TRUE(pc.has_value());
    bits += dict.partition_width(pc->partition);
  }
  size_t freq_bytes = bits / 8 + dict.ByteSize();
  EXPECT_LT(freq_bytes * 2, legacy.encoded_bytes)
      << "expected >=2x improvement over legacy compression";
}

}  // namespace
}  // namespace dashdb
