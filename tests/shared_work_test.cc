// Shared-work-under-concurrency battery (DESIGN.md "Shared work under
// concurrency"): the cooperative shared-scan clock, the versioned result
// cache, the flow-controlled MPP exchange, and the LRU scan-resistance fix
// must all be invisible to results — byte-identical to solo/serial runs —
// while actually sharing the work. Labeled `share` and swept under ASan and
// TSan by scripts/check.sh (attach/detach storms and cache invalidation
// races are exactly the shapes TSan exists for).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bufferpool/bufferpool.h"
#include "common/metrics.h"
#include "corpus_util.h"
#include "exec/shared_scan.h"
#include "mpp/mpp.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/engine.h"
#include "sql/result_cache.h"

namespace dashdb {
namespace {

using corpus::kCorpus;
using corpus::kCorpusSize;
using corpus::MakeLoadedDb;
using corpus::ResultKey;

// ---------------------------------------------------------------------------
// ScanShareManager unit tests
// ---------------------------------------------------------------------------

TEST(ScanShareManagerTest, AttachMissJoinAndDetachAccounting) {
  ScanShareManager mgr;
  const uint64_t sig = ScanColumnSetSignature({0, 2}, {1});

  SharedScanTicket a = mgr.Attach(7, sig, 10);
  ASSERT_TRUE(a.valid());
  EXPECT_FALSE(a.joined_inflight());
  EXPECT_EQ(a.start(), 0u);
  EXPECT_EQ(mgr.misses(), 1u);
  EXPECT_EQ(mgr.attaches(), 0u);
  EXPECT_EQ(mgr.active_consumers(), 1);

  // The in-flight scan publishes its position; a late arrival starts there.
  a.NotePage(6);
  SharedScanTicket b = mgr.Attach(7, sig, 10);
  ASSERT_TRUE(b.valid());
  EXPECT_TRUE(b.joined_inflight());
  EXPECT_EQ(b.start(), 6u);
  EXPECT_EQ(mgr.attaches(), 1u);
  EXPECT_EQ(mgr.active_consumers(), 2);

  // Pages decoded while two consumers are attached count as shared.
  const uint64_t shared_before = mgr.pages_shared();
  b.NotePage(7);
  a.NotePage(7);
  EXPECT_GE(mgr.pages_shared(), shared_before + 2);

  // A different column set over the same table is a different group.
  SharedScanTicket c = mgr.Attach(7, ScanColumnSetSignature({1}, {}), 10);
  EXPECT_FALSE(c.joined_inflight());
  EXPECT_EQ(mgr.misses(), 2u);

  { SharedScanTicket drop = std::move(a); }
  { SharedScanTicket drop = std::move(b); }
  { SharedScanTicket drop = std::move(c); }
  EXPECT_EQ(mgr.active_consumers(), 0);
}

TEST(ScanShareManagerTest, ClockPersistsAcrossQuietPeriodsAndResizeResets) {
  ScanShareManager mgr;
  const uint64_t sig = ScanColumnSetSignature({0}, {});
  {
    SharedScanTicket t = mgr.Attach(3, sig, 8);
    t.NotePage(5);
  }
  EXPECT_EQ(mgr.active_consumers(), 0);
  // The next scan over a quiet table resumes at the buffer-resident region.
  {
    SharedScanTicket t = mgr.Attach(3, sig, 8);
    EXPECT_EQ(t.start(), 5u);
  }
  // A grown/shrunk table restarts the clock inside the new page range.
  {
    SharedScanTicket t = mgr.Attach(3, sig, 4);
    EXPECT_EQ(t.start(), 0u);
  }
}

TEST(ScanShareManagerTest, ColumnSetSignatureSeparatesScanShapes) {
  EXPECT_NE(ScanColumnSetSignature({0, 1}, {}), ScanColumnSetSignature({1, 0}, {}));
  // Projection and predicate columns must not collide across the separator.
  EXPECT_NE(ScanColumnSetSignature({0, 1}, {}), ScanColumnSetSignature({0}, {1}));
  EXPECT_EQ(ScanColumnSetSignature({2, 4}, {1}), ScanColumnSetSignature({2, 4}, {1}));
}

// ---------------------------------------------------------------------------
// Shared scans through the engine: attach/detach storms must stay
// byte-identical to a SHARED_SCAN OFF baseline at DOP 1 and DOP 4.
// ---------------------------------------------------------------------------

/// Multi-page table (kPageRows = 4096; 40k rows = 10 pages per column) with
/// a row-order-sensitive ID column so any circular-start leak into emission
/// order fails the differential check.
std::unique_ptr<Engine> MakeScanEngine(int dop) {
  EngineConfig cfg;
  cfg.query_parallelism = dop;
  auto engine = std::make_unique<Engine>(cfg);
  TableSchema schema("PUBLIC", "SCANT",
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"GRP", TypeId::kInt64, true, 0, false},
                      {"V", TypeId::kInt64, true, 0, false}});
  auto t = engine->CreateColumnTable(schema);
  EXPECT_TRUE(t.ok());
  RowBatch rows;
  for (int i = 0; i < 3; ++i) rows.columns.emplace_back(TypeId::kInt64);
  for (int64_t i = 0; i < 40000; ++i) {
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendInt(i % 7);
    rows.columns[2].AppendInt(i * 31 % 1001);
  }
  EXPECT_TRUE((*t)->Append(rows).ok());
  return engine;
}

const char* kScanQueries[] = {
    "SELECT COUNT(*), SUM(V), MIN(V), MAX(V) FROM SCANT WHERE V >= 0",
    "SELECT GRP, COUNT(*), SUM(V) FROM SCANT GROUP BY GRP ORDER BY GRP",
    // COUNT with a second aggregate so the CountStarScan fast path (which
    // never touches the scan operator) stays out of the attach accounting.
    "SELECT COUNT(*), MIN(ID) FROM SCANT WHERE V > 500",
    "SELECT SUM(ID) FROM SCANT WHERE GRP = 3",
    // No ORDER BY: emission order itself is under test (page-order slots).
    "SELECT ID FROM SCANT WHERE ID % 4096 = 17",
};
constexpr size_t kScanQueryCount = sizeof(kScanQueries) / sizeof(kScanQueries[0]);

std::string ExecKey(Engine* engine, Session* sess, const std::string& sql) {
  auto r = engine->Execute(sess, sql);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  return r.ok() ? ResultKey(*r) : "<error>";
}

void RunSharedScanStorm(int dop) {
  auto engine = MakeScanEngine(dop);

  // OFF baseline, serial session.
  std::vector<std::string> base;
  {
    auto sess = engine->CreateSession();
    for (const char* q : kScanQueries) base.push_back(ExecKey(engine.get(), sess.get(), q));
  }

  constexpr int kThreads = 8;
  constexpr int kIters = 6;
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  for (int c = 0; c < kThreads; ++c) {
    threads.emplace_back([&, c] {
      auto sess = engine->CreateSession();
      auto on = engine->Execute(sess.get(), "SET SHARED_SCAN ON");
      if (!on.ok()) {
        errors[c] = on.status().ToString();
        return;
      }
      for (int it = 0; it < kIters; ++it) {
        // Stagger so different threads contend on different queries.
        const size_t qi = (static_cast<size_t>(it) + static_cast<size_t>(c)) %
                          kScanQueryCount;
        auto r = engine->Execute(sess.get(), kScanQueries[qi]);
        if (!r.ok()) {
          errors[c] = std::string(kScanQueries[qi]) + ": " + r.status().ToString();
          return;
        }
        if (ResultKey(*r) != base[qi]) {
          errors[c] = std::string("diverged on ") + kScanQueries[qi];
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kThreads; ++c) {
    EXPECT_TRUE(errors[c].empty()) << "thread " << c << ": " << errors[c];
  }

  // Every shared-arm scan attached exactly once (fresh group or joined).
  EXPECT_EQ(engine->scan_share().attaches() + engine->scan_share().misses(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(engine->scan_share().active_consumers(), 0);
}

TEST(SharedScanStormTest, ByteIdenticalAtDop1) { RunSharedScanStorm(1); }
TEST(SharedScanStormTest, ByteIdenticalAtDop4) { RunSharedScanStorm(4); }

TEST(SharedScanStormTest, NonzeroClockStartStaysByteIdentical) {
  auto engine = MakeScanEngine(1);
  auto sess = engine->CreateSession();
  std::vector<std::string> base;
  for (const char* q : kScanQueries) base.push_back(ExecKey(engine.get(), sess.get(), q));

  ASSERT_TRUE(engine->Execute(sess.get(), "SET SHARED_SCAN ON").ok());
  // First shared run of each query leaves the group clock mid-table (the
  // last page it published), so the SECOND run deterministically starts at
  // a nonzero page and wraps — the circular path must still emit in page
  // order and match the cold baseline byte for byte.
  for (int round = 0; round < 3; ++round) {
    for (size_t qi = 0; qi < kScanQueryCount; ++qi) {
      EXPECT_EQ(ExecKey(engine.get(), sess.get(), kScanQueries[qi]), base[qi])
          << "round " << round << " query " << qi;
    }
  }
  EXPECT_EQ(engine->scan_share().misses() + engine->scan_share().attaches(),
            3u * kScanQueryCount);
}

// ---------------------------------------------------------------------------
// Buffer pool scan resistance (LRU cold-end admission for tagged scans)
// ---------------------------------------------------------------------------

TEST(BufferPoolScanResistanceTest, TaggedScanDoesNotEvictHotSetUnderLru) {
  constexpr size_t kPage = 1024;
  // Hot working set of 50 pages in a 100-page pool, then a 500-page
  // one-pass scan. Tagged: the scan victimizes its own probationary pages
  // and the hot set survives. Untagged (classic LRU): the scan flushes it.
  auto run = [&](bool tagged) {
    BufferPool pool(100 * kPage, ReplacementPolicy::kLru);
    for (uint32_t p = 0; p < 50; ++p) pool.Access({1, 0, p}, kPage);
    for (uint32_t p = 0; p < 500; ++p) pool.Access({2, 0, p}, kPage, tagged);
    uint64_t hot_hits = 0;
    for (uint32_t p = 0; p < 50; ++p) {
      if (pool.Access({1, 0, p}, kPage)) ++hot_hits;
    }
    return hot_hits;
  };
  EXPECT_EQ(run(/*tagged=*/true), 50u);
  EXPECT_EQ(run(/*tagged=*/false), 0u);
}

TEST(BufferPoolScanResistanceTest, RepeatedScanEarnsResidency) {
  constexpr size_t kPage = 1024;
  BufferPool pool(100 * kPage, ReplacementPolicy::kLru);
  // A 20-page table scanned twice with the scan tag: the first pass admits
  // probationally, the second pass hits and PROMOTES — the small table has
  // earned residency and survives a later big scan.
  for (uint32_t p = 0; p < 20; ++p) pool.Access({1, 0, p}, kPage, true);
  uint64_t second_pass_hits = 0;
  for (uint32_t p = 0; p < 20; ++p) {
    if (pool.Access({1, 0, p}, kPage, true)) ++second_pass_hits;
  }
  EXPECT_EQ(second_pass_hits, 20u);
  for (uint32_t p = 0; p < 500; ++p) pool.Access({2, 0, p}, kPage, true);
  uint64_t after_big_scan = 0;
  for (uint32_t p = 0; p < 20; ++p) {
    if (pool.Access({1, 0, p}, kPage, true)) ++after_big_scan;
  }
  EXPECT_EQ(after_big_scan, 20u);
}

// ---------------------------------------------------------------------------
// Flow-controlled exchange: channel semantics and wire format
// ---------------------------------------------------------------------------

TEST(ExchangeChannelTest, DeliversInOrderAndCountsBackpressureStalls) {
  ExchangeChannel ch(/*window=*/2);
  constexpr int kChunks = 8;
  std::thread producer([&] {
    for (int i = 0; i < kChunks; ++i) {
      ExchangeChunk c;
      c.payload = std::string(1, static_cast<char>('a' + i));
      c.rows = static_cast<size_t>(i);
      ch.Push(std::move(c));
    }
    ch.Close(Status::OK());
  });
  std::string order;
  ExchangeChunk c;
  Status st;
  while (ch.Pop(&c, &st)) {
    order += c.payload;
    // Slow consumer: the producer must hit the credit window and stall.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  producer.join();
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(order, "abcdefgh");
  EXPECT_GT(ch.stalls(), 0u);
  EXPECT_LE(ch.high_water(), 2u);
}

TEST(ExchangeChannelTest, CloseWithErrorDrainsThenReports) {
  ExchangeChannel ch(4);
  ExchangeChunk c;
  c.payload = "x";
  ch.Push(std::move(c));
  ch.Close(Status::Internal("shard lost"));
  ExchangeChunk got;
  Status st;
  ASSERT_TRUE(ch.Pop(&got, &st));  // buffered chunk still delivered
  EXPECT_EQ(got.payload, "x");
  ASSERT_FALSE(ch.Pop(&got, &st));
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(ExchangeChannelTest, CancelConsumerUnblocksStalledProducer) {
  ExchangeChannel ch(/*window=*/1);
  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (int i = 0; i < 16; ++i) {
      ExchangeChunk c;
      c.payload = "p";
      ch.Push(std::move(c));  // blocks on the window until cancelled
    }
    ch.Close(Status::OK());
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ch.CancelConsumer();
  producer.join();
  EXPECT_TRUE(done.load());
}

TEST(ExchangeWireTest, RoundTripIntsDoublesStringsAndNulls) {
  RowBatch batch;
  batch.columns.emplace_back(TypeId::kInt64);
  batch.columns.emplace_back(TypeId::kDouble);
  batch.columns.emplace_back(TypeId::kVarchar);
  for (int i = 0; i < 100; ++i) {
    if (i % 9 == 0) batch.columns[0].AppendNull();
    else batch.columns[0].AppendInt(i * 1000003 - 50);
    if (i % 7 == 0) batch.columns[1].AppendNull();
    else batch.columns[1].AppendDouble(i * 0.25 - 3.5);
    if (i % 11 == 0) batch.columns[2].AppendNull();
    else batch.columns[2].AppendString("s" + std::to_string(i % 5));
  }
  const std::string payload = EncodeExchangeBatch(batch, 0, batch.num_rows());

  RowBatch out;
  out.columns.emplace_back(TypeId::kInt64);
  out.columns.emplace_back(TypeId::kDouble);
  out.columns.emplace_back(TypeId::kVarchar);
  ASSERT_TRUE(DecodeExchangeBatch(payload, &out).ok());
  ASSERT_EQ(out.num_rows(), batch.num_rows());
  for (size_t i = 0; i < batch.num_rows(); ++i) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(out.columns[c].IsNull(i), batch.columns[c].IsNull(i))
          << "row " << i << " col " << c;
      EXPECT_EQ(out.columns[c].GetValue(i).ToString(),
                batch.columns[c].GetValue(i).ToString())
          << "row " << i << " col " << c;
    }
  }
}

TEST(ExchangeWireTest, DictionaryCodesCompressRepetitiveStrings) {
  RowBatch batch;
  batch.columns.emplace_back(TypeId::kVarchar);
  const std::string values[] = {"warehouse-east", "warehouse-west", "depot"};
  size_t raw = 0;
  for (int i = 0; i < 4096; ++i) {
    batch.columns[0].AppendString(values[i % 3]);
    raw += values[i % 3].size();
  }
  const std::string payload = EncodeExchangeBatch(batch, 0, batch.num_rows());
  // 3 dictionary entries + 1-byte codes: far below the raw string bytes.
  EXPECT_LT(payload.size(), raw / 4);

  RowBatch out;
  out.columns.emplace_back(TypeId::kVarchar);
  ASSERT_TRUE(DecodeExchangeBatch(payload, &out).ok());
  ASSERT_EQ(out.num_rows(), batch.num_rows());
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(out.columns[0].GetValue(i).ToString(), values[i % 3]);
  }
}

TEST(ExchangeWireTest, DecodeRejectsCorruptPayloads) {
  RowBatch batch;
  batch.columns.emplace_back(TypeId::kInt64);
  batch.columns[0].AppendInt(42);
  std::string payload = EncodeExchangeBatch(batch, 0, 1);

  RowBatch out;
  out.columns.emplace_back(TypeId::kInt64);
  EXPECT_FALSE(DecodeExchangeBatch(payload.substr(0, payload.size() - 3), &out).ok());
  RowBatch wrong;
  wrong.columns.emplace_back(TypeId::kVarchar);
  EXPECT_FALSE(DecodeExchangeBatch(payload, &wrong).ok());
}

// ---------------------------------------------------------------------------
// ResultCache unit tests
// ---------------------------------------------------------------------------

std::shared_ptr<const QueryResult> MakeResult(int64_t v) {
  auto r = std::make_shared<QueryResult>();
  r->columns.push_back({"X", TypeId::kInt64});
  r->rows.columns.emplace_back(TypeId::kInt64);
  r->rows.columns[0].AppendInt(v);
  return r;
}

TEST(ResultCacheTest, VersionMismatchEvictsOnSight) {
  ResultCache cache(1 << 20);
  const ResultCache::Versions v1{1, 1, 1};
  cache.Insert("SELECT 1", Dialect::kAnsi, "PUBLIC", v1, MakeResult(10), 100);
  EXPECT_NE(cache.Lookup("SELECT 1", Dialect::kAnsi, "PUBLIC", v1), nullptr);
  // Any stamp moved (here: data version) -> stale, evicted on sight.
  const ResultCache::Versions v2{1, 1, 2};
  EXPECT_EQ(cache.Lookup("SELECT 1", Dialect::kAnsi, "PUBLIC", v2), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  // Gone for the old stamps too: the stale entry was dropped, not skipped.
  EXPECT_EQ(cache.Lookup("SELECT 1", Dialect::kAnsi, "PUBLIC", v1), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ResultCacheTest, KeysSeparateDialectAndSchema) {
  ResultCache cache(1 << 20);
  const ResultCache::Versions v{1, 1, 1};
  cache.Insert("SELECT * FROM T", Dialect::kAnsi, "PUBLIC", v, MakeResult(1), 50);
  EXPECT_EQ(cache.Lookup("SELECT * FROM T", Dialect::kAnsi, "S2", v), nullptr);
  EXPECT_EQ(cache.Lookup("SELECT * FROM T", Dialect::kOracle, "PUBLIC", v), nullptr);
  EXPECT_NE(cache.Lookup("SELECT * FROM T", Dialect::kAnsi, "PUBLIC", v), nullptr);
}

TEST(ResultCacheTest, ByteBoundedLruEvictionAndOversizedReject) {
  ResultCache cache(/*capacity_bytes=*/250);
  const ResultCache::Versions v{1, 1, 1};
  cache.Insert("Q1", Dialect::kAnsi, "P", v, MakeResult(1), 100);
  cache.Insert("Q2", Dialect::kAnsi, "P", v, MakeResult(2), 100);
  // Touch Q1 so Q2 is the LRU victim when Q3 needs room.
  EXPECT_NE(cache.Lookup("Q1", Dialect::kAnsi, "P", v), nullptr);
  cache.Insert("Q3", Dialect::kAnsi, "P", v, MakeResult(3), 100);
  EXPECT_NE(cache.Lookup("Q1", Dialect::kAnsi, "P", v), nullptr);
  EXPECT_EQ(cache.Lookup("Q2", Dialect::kAnsi, "P", v), nullptr);
  EXPECT_NE(cache.Lookup("Q3", Dialect::kAnsi, "P", v), nullptr);
  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_LE(cache.bytes(), 250u);

  // A result bigger than the whole cache never evicts the world.
  cache.Insert("BIG", Dialect::kAnsi, "P", v, MakeResult(4), 1000);
  EXPECT_EQ(cache.Lookup("BIG", Dialect::kAnsi, "P", v), nullptr);
  EXPECT_NE(cache.Lookup("Q1", Dialect::kAnsi, "P", v), nullptr);
}

// ---------------------------------------------------------------------------
// Result cache through the engine
// ---------------------------------------------------------------------------

class ResultCacheEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>();
    sess_ = engine_->CreateSession();
    Exec("CREATE TABLE ITEMS (ID BIGINT NOT NULL, GRP BIGINT, V BIGINT)");
    for (int i = 0; i < 64; ++i) {
      Exec("INSERT INTO ITEMS VALUES (" + std::to_string(i) + ", " +
           std::to_string(i % 5) + ", " + std::to_string(i * 13 % 97) + ")");
    }
    Exec("SET RESULT_CACHE ON");
  }

  QueryResult Exec(const std::string& sql) {
    auto r = engine_->Execute(sess_.get(), sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  std::unique_ptr<Engine> engine_;
  std::shared_ptr<Session> sess_;
};

TEST_F(ResultCacheEngineTest, HitServesByteIdenticalResult) {
  MetricDeltaScope metrics;
  const std::string q = "SELECT GRP, COUNT(*), SUM(V) FROM ITEMS GROUP BY GRP ORDER BY GRP";
  const std::string first = ResultKey(Exec(q));
  const std::string second = ResultKey(Exec(q));
  EXPECT_EQ(first, second);
  EXPECT_EQ(metrics.Delta("server.result_cache_hits"), 1);
  EXPECT_EQ(metrics.Delta("server.result_cache_misses"), 1);
  EXPECT_EQ(engine_->result_cache().size(), 1u);
  // Literal-differing text is a different entry, not a wrong hit.
  Exec("SELECT COUNT(*) FROM ITEMS WHERE V > 10");
  Exec("SELECT COUNT(*) FROM ITEMS WHERE V > 11");
  EXPECT_EQ(metrics.Delta("server.result_cache_hits"), 1);
}

TEST_F(ResultCacheEngineTest, EveryWriteClassInvalidates) {
  const std::string q = "SELECT COUNT(*), SUM(V) FROM ITEMS";
  struct Case {
    const char* write;
    bool row_change;
  };
  const Case cases[] = {
      {"INSERT INTO ITEMS VALUES (1000, 1, 40)", true},
      {"UPDATE ITEMS SET V = V + 1 WHERE ID = 3", true},
      {"DELETE FROM ITEMS WHERE ID = 1000", true},
      {"CREATE TABLE SIDE_DDL (A BIGINT)", false},
      {"CALL RUNSTATS()", false},
  };
  for (const Case& c : cases) {
    const std::string before = ResultKey(Exec(q));
    EXPECT_EQ(ResultKey(Exec(q)), before);  // warm the entry
    const uint64_t hits_before = engine_->result_cache().hits();
    Exec(c.write);
    const std::string after = ResultKey(Exec(q));
    // The post-write read recomputed (no new hit) and reflects the write.
    EXPECT_EQ(engine_->result_cache().hits(), hits_before) << c.write;
    if (c.row_change) {
      EXPECT_NE(after, before) << c.write;
    } else {
      EXPECT_EQ(after, before) << c.write;
    }
  }
  // TRUNCATE invalidates too.
  const std::string before = ResultKey(Exec(q));
  Exec("TRUNCATE TABLE ITEMS");
  EXPECT_NE(ResultKey(Exec(q)), before);
}

TEST_F(ResultCacheEngineTest, ClockReadingQueriesNeverCache) {
  MetricDeltaScope metrics;
  Exec("SELECT COUNT(*) FROM ITEMS WHERE CURRENT_DATE > DATE '1970-01-01'");
  Exec("SELECT COUNT(*) FROM ITEMS WHERE CURRENT_DATE > DATE '1970-01-01'");
  EXPECT_EQ(metrics.Delta("server.result_cache_hits"), 0);
  EXPECT_EQ(metrics.Delta("server.result_cache_misses"), 0);
  EXPECT_EQ(engine_->result_cache().size(), 0u);
}

TEST_F(ResultCacheEngineTest, DefaultSchemaKeysTheResult) {
  Exec("CREATE SCHEMA APP");
  Exec("CREATE TABLE APP.ITEMS (ID BIGINT, GRP BIGINT, V BIGINT)");
  Exec("INSERT INTO APP.ITEMS VALUES (1, 1, 1)");

  const std::string q = "SELECT COUNT(*) FROM ITEMS";
  const std::string pub = ResultKey(Exec(q));
  auto app_sess = engine_->CreateSession();
  app_sess->set_default_schema("APP");
  auto on = engine_->Execute(app_sess.get(), "SET RESULT_CACHE ON");
  ASSERT_TRUE(on.ok());
  auto r = engine_->Execute(app_sess.get(), q);
  ASSERT_TRUE(r.ok());
  // Same text, different default schema: different table, different entry.
  EXPECT_NE(ResultKey(*r), pub);
  auto r2 = engine_->Execute(app_sess.get(), q);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(ResultKey(*r2), ResultKey(*r));
}

TEST_F(ResultCacheEngineTest, SessionsWithCacheOffBypass) {
  const std::string q = "SELECT SUM(V) FROM ITEMS";
  Exec(q);
  Exec(q);  // warm: entry exists and serves this session
  const uint64_t hits = engine_->result_cache().hits();
  auto off_sess = engine_->CreateSession();
  auto r = engine_->Execute(off_sess.get(), q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(engine_->result_cache().hits(), hits);  // bypassed, no lookup
}

// Invalidation races: readers over a data-constant table must see the same
// bytes on every read while writers churn OTHER tables, RUNSTATS bumps the
// stats epoch, and DDL bumps the catalog version. Run under TSan by the
// `share` sweep in scripts/check.sh.
TEST(ResultCacheConcurrencyTest, ReadersByteIdenticalUnderDdlAndRunstatsChurn) {
  Engine engine;
  auto setup = engine.CreateSession();
  auto exec = [&](Session* s, const std::string& sql) {
    auto r = engine.Execute(s, sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  };
  exec(setup.get(), "CREATE TABLE STABLE_T (ID BIGINT, V BIGINT)");
  exec(setup.get(), "CREATE TABLE CHURN_T (ID BIGINT, V BIGINT)");
  for (int i = 0; i < 32; ++i) {
    exec(setup.get(), "INSERT INTO STABLE_T VALUES (" + std::to_string(i) +
                          ", " + std::to_string(i * 7) + ")");
  }
  std::string base;
  {
    auto r = engine.Execute(setup.get(), "SELECT COUNT(*), SUM(V) FROM STABLE_T");
    ASSERT_TRUE(r.ok());
    base = ResultKey(*r);
  }

  constexpr int kReaders = 4;
  constexpr int kIters = 25;
  std::vector<std::string> errors(kReaders + 2);
  std::vector<std::thread> threads;
  for (int c = 0; c < kReaders; ++c) {
    threads.emplace_back([&, c] {
      auto sess = engine.CreateSession();
      auto on = engine.Execute(sess.get(), "SET RESULT_CACHE ON");
      if (!on.ok()) { errors[c] = on.status().ToString(); return; }
      for (int i = 0; i < kIters; ++i) {
        auto r = engine.Execute(sess.get(), "SELECT COUNT(*), SUM(V) FROM STABLE_T");
        if (!r.ok()) { errors[c] = r.status().ToString(); return; }
        if (ResultKey(*r) != base) { errors[c] = "stale or torn read"; return; }
      }
    });
  }
  // Writer: DML on the churn table (bumps the shared data version).
  threads.emplace_back([&] {
    auto sess = engine.CreateSession();
    for (int i = 0; i < kIters; ++i) {
      auto r = engine.Execute(sess.get(), "INSERT INTO CHURN_T VALUES (" +
                                              std::to_string(i) + ", 1)");
      if (!r.ok()) { errors[kReaders] = r.status().ToString(); return; }
    }
  });
  // Writer: RUNSTATS + DDL churn (stats epoch + catalog version).
  threads.emplace_back([&] {
    auto sess = engine.CreateSession();
    for (int i = 0; i < kIters; ++i) {
      auto r1 = engine.Execute(sess.get(), "CALL RUNSTATS()");
      if (!r1.ok()) { errors[kReaders + 1] = r1.status().ToString(); return; }
      auto r2 = engine.Execute(sess.get(), "CREATE TABLE DDL_CHURN_" +
                                               std::to_string(i) + " (A BIGINT)");
      if (!r2.ok()) { errors[kReaders + 1] = r2.status().ToString(); return; }
    }
  });
  for (auto& t : threads) t.join();
  for (size_t c = 0; c < errors.size(); ++c) {
    EXPECT_TRUE(errors[c].empty()) << "thread " << c << ": " << errors[c];
  }
}

// ---------------------------------------------------------------------------
// MPP coordinator result cache + differential corpus with everything on
// ---------------------------------------------------------------------------

TEST(MppSharedWorkTest, CoordinatorCacheHitsAndInvalidatesOnInsert) {
  auto db = MakeLoadedDb(1);
  ASSERT_TRUE(db->Execute("SET RESULT_CACHE ON").ok());
  MetricDeltaScope metrics;
  const char* q = kCorpus[1];  // GRP rollup over T
  auto r1 = db->Execute(q);
  ASSERT_TRUE(r1.ok());
  auto r2 = db->Execute(q);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(ResultKey(r1->result), ResultKey(r2->result));
  EXPECT_EQ(metrics.Delta("server.result_cache_hits"), 1);

  // A routed INSERT must invalidate; the re-read matches a cache-less db
  // that took the same write.
  ASSERT_TRUE(db->Execute("INSERT INTO T VALUES (9001, 1, 1, 5, 's1')").ok());
  auto r3 = db->Execute(q);
  ASSERT_TRUE(r3.ok());
  EXPECT_NE(ResultKey(r3->result), ResultKey(r1->result));

  auto fresh = MakeLoadedDb(1);
  ASSERT_TRUE(fresh->Execute("INSERT INTO T VALUES (9001, 1, 1, 5, 's1')").ok());
  auto want = fresh->Execute(q);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(ResultKey(r3->result), ResultKey(want->result));
}

/// Serial in-process ground truth at DOP 1, no sharing features.
std::vector<std::string> SerialBaseline() {
  auto db = MakeLoadedDb(1);
  std::vector<std::string> keys;
  for (const char* q : kCorpus) {
    auto r = db->Execute(q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    keys.push_back(r.ok() ? ResultKey(r->result) : "<error>");
  }
  return keys;
}

TEST(MppSharedWorkTest, WireCorpusByteIdenticalWithSharedScanAndCacheOn) {
  std::vector<std::string> base = SerialBaseline();

  auto db = MakeLoadedDb(4);
  MppBackend backend(db.get());
  ServerConfig cfg;
  cfg.worker_threads = 8;
  Server server(&backend, cfg);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      WireClient client;
      Status st = client.Connect(server.port());
      if (!st.ok()) { errors[c] = "connect: " + st.ToString(); return; }
      for (const char* knob : {"SET SHARED_SCAN ON", "SET RESULT_CACHE ON"}) {
        auto r = client.Query(knob);
        if (!r.ok()) { errors[c] = std::string(knob) + ": " + r.status().ToString(); return; }
      }
      // Two staggered passes: the second pass is the repeat traffic the
      // result cache exists for, and must still match the cold baseline.
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t i = 0; i < kCorpusSize; ++i) {
          const size_t qi = (i + static_cast<size_t>(c) * 3) % kCorpusSize;
          auto r = client.Query(kCorpus[qi]);
          if (!r.ok()) {
            errors[c] = std::string(kCorpus[qi]) + ": " + r.status().ToString();
            return;
          }
          if (ResultKey(*r) != base[qi]) {
            errors[c] = "pass " + std::to_string(pass) + " diverged on corpus query " +
                        std::to_string(qi) + ": " + kCorpus[qi];
            return;
          }
        }
      }
      client.Close();
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(errors[c].empty()) << "client " << c << ": " << errors[c];
  }
  server.Stop();
}

}  // namespace
}  // namespace dashdb
