// Tests for the deterministic fault-injection framework: trigger semantics
// (probability / nth-hit / one-shot / stall), seed-replay determinism (the
// property that makes a failing fault schedule a bug report, not a flake),
// and the Status retryability taxonomy the recovery paths classify with.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/stopwatch.h"

namespace dashdb {
namespace {

// The global injector and metric registry are process-wide state; every
// test starts clean so `ctest -j` ordering cannot leak state across tests.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().ResetForTest();
    MetricRegistry::Global().ResetForTest();
  }
  void TearDown() override { FaultInjector::Global().ResetForTest(); }
};

TEST_F(FaultInjectionTest, DisarmedPointsNeverFire) {
  FaultInjector& fi = FaultInjector::Global();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(fi.Evaluate("never.armed").ok());
  }
  EXPECT_EQ(fi.PointStats("never.armed").hits, 0u) << "untracked when unarmed";
  EXPECT_FALSE(fi.enabled());
}

TEST_F(FaultInjectionTest, AlwaysFireAndOneShot) {
  FaultInjector& fi = FaultInjector::Global();
  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.message = "node down";
  fi.Arm("p.always", spec);
  EXPECT_TRUE(fi.enabled());
  Status st = fi.Evaluate("p.always");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("p.always#1"), std::string::npos)
      << "injected errors identify point and hit: " << st.message();
  EXPECT_NE(st.message().find("node down"), std::string::npos);

  FaultSpec once;
  once.max_fires = 1;
  fi.Arm("p.once", once);
  EXPECT_FALSE(fi.Evaluate("p.once").ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(fi.Evaluate("p.once").ok()) << "one-shot stays spent";
  }
  EXPECT_EQ(fi.PointStats("p.once").fires, 1u);
  EXPECT_EQ(fi.PointStats("p.once").hits, 11u);
}

TEST_F(FaultInjectionTest, NthHitTargeting) {
  FaultInjector& fi = FaultInjector::Global();
  FaultSpec spec;
  spec.skip_hits = 3;  // hits 1..3 pass, hit 4 fires
  spec.max_fires = 1;
  fi.Arm("p.nth", spec);
  EXPECT_TRUE(fi.Evaluate("p.nth").ok());
  EXPECT_TRUE(fi.Evaluate("p.nth").ok());
  EXPECT_TRUE(fi.Evaluate("p.nth").ok());
  EXPECT_FALSE(fi.Evaluate("p.nth").ok());
  EXPECT_TRUE(fi.Evaluate("p.nth").ok());
  auto log = fi.FireLog();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].point, "p.nth");
  EXPECT_EQ(log[0].hit_index, 4u);
}

TEST_F(FaultInjectionTest, ProbabilityIsSeedDeterministic) {
  FaultInjector& fi = FaultInjector::Global();
  auto schedule = [&](uint64_t seed) {
    fi.Reset(seed);
    FaultSpec spec;
    spec.probability = 0.3;
    fi.Arm("p.prob", spec);
    std::vector<uint64_t> fired;
    for (int i = 0; i < 200; ++i) {
      if (!fi.Evaluate("p.prob").ok()) {
        fired.push_back(static_cast<uint64_t>(i));
      }
    }
    return fired;
  };
  auto a = schedule(42);
  auto b = schedule(42);
  auto c = schedule(43);
  EXPECT_EQ(a, b) << "same seed => same fault schedule";
  EXPECT_NE(a, c) << "different seed => different schedule";
  // ~30% of 200 hits; loose bounds, deterministic given the fixed Rng.
  EXPECT_GT(a.size(), 30u);
  EXPECT_LT(a.size(), 100u);
}

TEST_F(FaultInjectionTest, DecisionIndependentOfThreadInterleaving) {
  // The per-hit decision is a pure function of (seed, point, hit index):
  // hammering a point from many threads yields the same NUMBER of fires
  // as hammering it serially, whatever the interleaving.
  FaultInjector& fi = FaultInjector::Global();
  auto count_fires = [&](int threads, int hits_per_thread) {
    fi.Reset(7);
    FaultSpec spec;
    spec.probability = 0.25;
    fi.Arm("p.mt", spec);
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (int i = 0; i < hits_per_thread; ++i) {
          (void)fi.Evaluate("p.mt");
        }
      });
    }
    for (auto& t : pool) t.join();
    return fi.PointStats("p.mt").fires;
  };
  EXPECT_EQ(count_fires(4, 100), count_fires(1, 400));
}

TEST_F(FaultInjectionTest, StallOnlyPointDelaysButSucceeds) {
  FaultInjector& fi = FaultInjector::Global();
  FaultSpec spec;
  spec.code = StatusCode::kOk;  // stall-only
  spec.stall_seconds = 0.05;
  spec.max_fires = 1;
  fi.Arm("p.stall", spec);
  Stopwatch sw;
  EXPECT_TRUE(fi.Evaluate("p.stall").ok());
  EXPECT_GE(sw.ElapsedSeconds(), 0.045);
  Stopwatch sw2;
  EXPECT_TRUE(fi.Evaluate("p.stall").ok());
  EXPECT_LT(sw2.ElapsedSeconds(), 0.045) << "one-shot stall spent";
}

TEST_F(FaultInjectionTest, FireLogSupportsReplay) {
  FaultInjector& fi = FaultInjector::Global();
  auto run = [&] {
    fi.Reset(99);
    FaultSpec spec;
    spec.probability = 0.5;
    fi.Arm("a", spec);
    fi.Arm("b", spec);
    for (int i = 0; i < 50; ++i) {
      (void)fi.Evaluate("a");
      (void)fi.Evaluate("b");
    }
    return fi.FireLog();
  };
  auto first = run();
  auto second = run();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].point, second[i].point);
    EXPECT_EQ(first[i].hit_index, second[i].hit_index);
  }
}

TEST_F(FaultInjectionTest, RearmResetsCounters) {
  FaultInjector& fi = FaultInjector::Global();
  FaultSpec spec;
  fi.Arm("p", spec);
  (void)fi.Evaluate("p");
  EXPECT_EQ(fi.PointStats("p").hits, 1u);
  fi.Arm("p", spec);  // re-arm
  EXPECT_EQ(fi.PointStats("p").hits, 0u);
  fi.Disarm("p");
  EXPECT_FALSE(fi.enabled());
}

// ------------------------------------------------ Status taxonomy ----------

TEST(StatusTaxonomyTest, TransientCodes) {
  EXPECT_TRUE(Status::Unavailable("x").IsTransient());
  EXPECT_TRUE(Status::Timeout("x").IsTransient());
  EXPECT_TRUE(Status::Aborted("x").IsTransient());
  EXPECT_FALSE(Status::Internal("x").IsTransient());
  EXPECT_FALSE(Status::InvalidArgument("x").IsTransient());
  EXPECT_FALSE(Status::NotFound("x").IsTransient());
  EXPECT_FALSE(Status::OK().IsTransient()) << "OK is not transient";
  EXPECT_STREQ(StatusCodeName(StatusCode::kTimeout), "Timeout");
}

TEST(StatusTaxonomyTest, WithContextPreservesCode) {
  Status st = Status::Unavailable("node 3 down");
  Status wrapped = st.WithContext("shard 7");
  EXPECT_EQ(wrapped.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(wrapped.IsTransient()) << "context must not launder the code";
  EXPECT_EQ(wrapped.message(), "shard 7: node 3 down");
  EXPECT_TRUE(Status::OK().WithContext("noop").ok());
}

}  // namespace
}  // namespace dashdb
