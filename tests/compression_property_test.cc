// Property-based round-trip tests for the compression layer: frequency
// dictionaries (multi-partition and single-partition), minus/FOR encoding,
// and whole-page encode/decode — over seeded-random value distributions
// (uniform, Zipf-skewed, all-distinct) plus the degenerate pages that break
// naive encoders: empty, all-NULL, and single-distinct-value. Every
// generator is seeded through common/rng.h so a failure replays exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bitutil.h"
#include "common/rng.h"
#include "compression/for_encoding.h"
#include "compression/frequency_dict.h"
#include "compression/stats.h"
#include "storage/column_page.h"

namespace dashdb {
namespace {

struct IntDataset {
  std::string label;
  std::vector<int64_t> values;
  BitVector nulls;  ///< sized values.size(); empty-size when no nulls
  const BitVector* nulls_ptr() const {
    return nulls.size() == 0 ? nullptr : &nulls;
  }
};

/// Seeded distributions covering the encoder decision space: few distinct
/// values (frequency partitions earn their 1-bit codes), Zipf skew (mixed
/// partition occupancy), dense high-cardinality (FOR territory), negatives
/// (FOR base handling), plus the degenerate shapes.
std::vector<IntDataset> MakeIntDatasets(uint64_t seed) {
  std::vector<IntDataset> out;

  {
    IntDataset d;
    d.label = "uniform_low_card";
    Rng rng(seed);
    for (int i = 0; i < 3000; ++i) {
      d.values.push_back(static_cast<int64_t>(rng.Uniform(12)));
    }
    out.push_back(std::move(d));
  }
  {
    IntDataset d;
    d.label = "zipf_skewed";
    ZipfGenerator zipf(500, 1.2, seed + 1);
    for (int i = 0; i < 4000; ++i) {
      d.values.push_back(static_cast<int64_t>(zipf.Next()) * 17 - 3000);
    }
    out.push_back(std::move(d));
  }
  {
    IntDataset d;
    d.label = "all_distinct_with_nulls";
    Rng rng(seed + 2);
    d.nulls.Resize(2500);
    for (int i = 0; i < 2500; ++i) {
      d.values.push_back(i * 7 - 9000);
      if (rng.Bernoulli(0.1)) d.nulls.Set(i);
    }
    out.push_back(std::move(d));
  }
  {
    IntDataset d;
    d.label = "empty_page";
    out.push_back(std::move(d));
  }
  {
    IntDataset d;
    d.label = "all_null_page";
    d.values.assign(kPageRows, 0);
    d.nulls.Resize(kPageRows);
    d.nulls.SetAll();
    out.push_back(std::move(d));
  }
  {
    IntDataset d;
    d.label = "single_distinct_page";
    d.values.assign(1777, 42);
    out.push_back(std::move(d));
  }
  return out;
}

TEST(CompressionPropertyTest, FrequencyDictRoundTripsEveryDistribution) {
  for (const auto& d : MakeIntDatasets(0xD45BDB01)) {
    SCOPED_TRACE(d.label);
    IntColumnStats stats =
        ComputeIntStats(d.values.data(), d.values.size(), d.nulls_ptr());
    ASSERT_TRUE(stats.ndv_exact);
    IntFrequencyDict dict = IntFrequencyDict::Build(stats.freq_desc);
    EXPECT_EQ(dict.total_values(), stats.ndv);

    // Encode->Decode identity for every non-null value.
    for (size_t i = 0; i < d.values.size(); ++i) {
      if (d.nulls_ptr() && d.nulls.Get(i)) continue;
      auto pc = dict.Encode(d.values[i]);
      ASSERT_TRUE(pc.has_value()) << "value " << d.values[i];
      EXPECT_EQ(dict.Decode(pc->partition, pc->code), d.values[i]);
    }
    // Order preservation within each partition: code order == value order.
    for (int p = 0; p < dict.num_partitions(); ++p) {
      for (size_t c = 1; c < dict.partition_size(p); ++c) {
        EXPECT_LT(dict.Decode(static_cast<uint8_t>(p),
                              static_cast<uint32_t>(c - 1)),
                  dict.Decode(static_cast<uint8_t>(p),
                              static_cast<uint32_t>(c)))
            << "partition " << p << " code " << c;
      }
      // Width schedule honored: partition p never exceeds its capacity.
      EXPECT_LE(dict.partition_size(p),
                size_t{1} << kPartitionWidths[p]);
    }
  }
}

TEST(CompressionPropertyTest, SinglePartitionDictIsGloballyOrderPreserving) {
  for (const auto& d : MakeIntDatasets(0xD45BDB02)) {
    SCOPED_TRACE(d.label);
    IntColumnStats stats =
        ComputeIntStats(d.values.data(), d.values.size(), d.nulls_ptr());
    IntFrequencyDict dict =
        IntFrequencyDict::BuildSinglePartition(stats.freq_desc);
    ASSERT_TRUE(dict.is_single_partition());
    int64_t prev = 0;
    bool first = true;
    for (uint32_t c = 0; c < dict.partition_size(0); ++c) {
      int64_t v = dict.Decode(0, c);
      if (!first) EXPECT_LT(prev, v) << "codes must sort like values";
      auto pc = dict.Encode(v);
      ASSERT_TRUE(pc.has_value());
      EXPECT_EQ(pc->code, c);
      prev = v;
      first = false;
    }
    if (dict.partition_size(0) > 0) {
      EXPECT_EQ(dict.single_width(),
                BitWidthFor(dict.partition_size(0) - 1));
    }
  }
}

TEST(CompressionPropertyTest, ForEncodingRoundTrips) {
  for (const auto& d : MakeIntDatasets(0xD45BDB03)) {
    SCOPED_TRACE(d.label);
    if (d.values.empty()) continue;  // ForEncode is per-page, pages nonempty
    ForEncoded e =
        ForEncode(d.values.data(), d.values.size(), d.nulls_ptr());
    ASSERT_EQ(e.size(), d.values.size());
    for (size_t i = 0; i < d.values.size(); ++i) {
      if (d.nulls_ptr() && d.nulls.Get(i)) continue;  // code 0, mask on decode
      EXPECT_EQ(e.Get(i), d.values[i]) << "row " << i;
    }
    // The code domain translation agrees with the value domain on a seeded
    // sample of range predicates.
    Rng rng(0xD45BDB04);
    for (int trial = 0; trial < 20; ++trial) {
      int64_t lo = d.values[rng.Uniform(d.values.size())];
      int64_t hi = d.values[rng.Uniform(d.values.size())];
      if (lo > hi) std::swap(lo, hi);
      auto cr = ForRangeFor(e, &lo, true, &hi, true);
      for (size_t i = 0; i < d.values.size(); ++i) {
        if (d.nulls_ptr() && d.nulls.Get(i)) continue;
        bool in_value_domain = d.values[i] >= lo && d.values[i] <= hi;
        bool in_code_domain =
            cr.has_value() && e.codes.Get(i) >= cr->lo &&
            e.codes.Get(i) <= cr->hi;
        EXPECT_EQ(in_code_domain, in_value_domain)
            << "row " << i << " pred [" << lo << "," << hi << "]";
      }
    }
  }
}

TEST(CompressionPropertyTest, IntPageRoundTripsFrequencyAndForEncodings) {
  for (const auto& d : MakeIntDatasets(0xD45BDB05)) {
    SCOPED_TRACE(d.label);
    IntColumnStats stats =
        ComputeIntStats(d.values.data(), d.values.size(), d.nulls_ptr());
    IntFrequencyDict dict = IntFrequencyDict::Build(stats.freq_desc);
    for (bool use_dict : {true, false}) {
      SCOPED_TRACE(use_dict ? "frequency" : "for");
      auto page = BuildIntPage(d.values.data(), d.values.size(),
                               d.nulls_ptr(), 0, use_dict ? &dict : nullptr);
      ASSERT_NE(page, nullptr);
      ASSERT_EQ(page->num_rows, d.values.size());
      ColumnVector out(TypeId::kInt64);
      DecodeIntPage(*page, use_dict ? &dict : nullptr, nullptr, &out);
      ASSERT_EQ(out.size(), d.values.size());
      for (size_t i = 0; i < d.values.size(); ++i) {
        bool want_null = d.nulls_ptr() && d.nulls.Get(i);
        ASSERT_EQ(out.IsNull(i), want_null) << "row " << i;
        if (!want_null) EXPECT_EQ(out.GetInt(i), d.values[i]) << "row " << i;
      }
    }
  }
}

TEST(CompressionPropertyTest, StringDictAndPageRoundTrip) {
  Rng rng(0xD45BDB06);
  std::vector<std::string> values;
  BitVector nulls(3000);
  for (int i = 0; i < 3000; ++i) {
    // Shared prefixes stress the front-coded dictionary payload.
    values.push_back("key_" + std::to_string(rng.Uniform(40)) + "_" +
                     std::to_string(rng.Uniform(5)));
    if (rng.Bernoulli(0.05)) nulls.Set(i);
  }
  StringColumnStats stats =
      ComputeStringStats(values.data(), values.size(), &nulls);
  ASSERT_TRUE(stats.ndv_exact);
  StringFrequencyDict dict = StringFrequencyDict::Build(stats.freq_desc);
  for (size_t i = 0; i < values.size(); ++i) {
    if (nulls.Get(i)) continue;
    auto pc = dict.Encode(values[i]);
    ASSERT_TRUE(pc.has_value());
    EXPECT_EQ(dict.Decode(pc->partition, pc->code), values[i]);
  }
  auto page = BuildStringPage(values.data(), values.size(), &nulls, 0, &dict);
  ASSERT_NE(page, nullptr);
  ColumnVector out(TypeId::kVarchar);
  DecodeStringPage(*page, &dict, nullptr, &out);
  ASSERT_EQ(out.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(out.IsNull(i), static_cast<bool>(nulls.Get(i))) << "row " << i;
    if (!nulls.Get(i)) EXPECT_EQ(out.GetString(i), values[i]) << "row " << i;
  }
}

}  // namespace
}  // namespace dashdb
