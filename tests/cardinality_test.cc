// Cardinality estimator + join-order search tests (`ctest -L opt`):
// statistics-backed scan estimates on edge-case tables (empty, all-NULL
// strides, single-distinct dictionaries), post-selection NDV capping,
// distinct-count containment join estimates, the DP/greedy order search,
// and a seeded property test comparing estimates against exact counts on
// the shared star-schema generator.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "exec/join_order.h"
#include "sql/cardinality.h"
#include "sql/engine.h"
#include "workloads/star_schema.h"

namespace dashdb {
namespace {

class CardinalityTest : public ::testing::Test {
 protected:
  CardinalityTest() : engine_(EngineConfig{}), session_(engine_.CreateSession()) {}

  std::shared_ptr<ColumnTable> MakeTable(
      const std::string& name, std::vector<ColumnDef> cols,
      const std::function<void(RowBatch*)>& fill) {
    auto t = engine_.CreateColumnTable(TableSchema("PUBLIC", name, cols));
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    RowBatch rows;
    for (const ColumnDef& c : cols) rows.columns.emplace_back(c.type);
    fill(&rows);
    EXPECT_TRUE((*t)->Load(rows).ok());
    return *t;
  }

  int64_t Count(const std::string& sql) {
    auto r = engine_.Execute(session_.get(), sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    if (!r.ok() || r->rows.num_rows() == 0) return -1;
    return r->rows.columns[0].GetValue(0).AsInt();
  }

  static ColumnPredicate IntEq(int col, int64_t v) {
    ColumnPredicate p;
    p.column = col;
    p.int_range.lo = v;
    p.int_range.hi = v;
    return p;
  }

  static ColumnPredicate IntLe(int col, int64_t hi) {
    ColumnPredicate p;
    p.column = col;
    p.int_range.hi = hi;
    return p;
  }

  Engine engine_;
  std::shared_ptr<Session> session_;
};

// ------------------------------------------------------------ edge cases --

TEST_F(CardinalityTest, EmptyTable) {
  auto t = MakeTable("EMPTYT", {{"K", TypeId::kInt64, false, 0, false}},
                     [](RowBatch*) {});
  RelationEstimate e = CardinalityEstimator::EstimateScan(*t, {});
  EXPECT_TRUE(e.has_stats);
  EXPECT_DOUBLE_EQ(e.base_rows, 0);
  EXPECT_DOUBLE_EQ(e.rows, 0);
  // An equality predicate on an empty table must not resurrect rows.
  e = CardinalityEstimator::EstimateScan(*t, {IntEq(0, 5)});
  EXPECT_DOUBLE_EQ(e.rows, 0);
  // NDV is floored at 1 so containment division stays well-defined.
  EXPECT_LE(e.KeyNdv(0), 1.0);
}

TEST_F(CardinalityTest, AllNullStrides) {
  auto t = MakeTable("NULLT",
                     {{"K", TypeId::kInt64, false, 0, false},
                      {"V", TypeId::kInt64, true, 0, false}},
                     [](RowBatch* rows) {
                       for (int64_t i = 0; i < 5000; ++i) {
                         rows->columns[0].AppendInt(i);
                         rows->columns[1].AppendNull();
                       }
                     });
  RelationEstimate base = CardinalityEstimator::EstimateScan(*t, {});
  EXPECT_DOUBLE_EQ(base.base_rows, 5000);
  // Every stride of V is NULL: any predicate on it selects nothing.
  RelationEstimate e = CardinalityEstimator::EstimateScan(*t, {IntEq(1, 7)});
  EXPECT_LT(e.rows, 1.0);
  EXPECT_EQ(Count("SELECT COUNT(*) FROM NULLT WHERE V = 7"), 0);
}

TEST_F(CardinalityTest, SingleDistinctDictionary) {
  auto t = MakeTable("ONEDIST",
                     {{"K", TypeId::kInt64, false, 0, false},
                      {"V", TypeId::kInt64, true, 0, false}},
                     [](RowBatch* rows) {
                       for (int64_t i = 0; i < 4000; ++i) {
                         rows->columns[0].AppendInt(i);
                         rows->columns[1].AppendInt(42);
                       }
                     });
  // Matching equality keeps everything (1/NDV with NDV = 1)...
  RelationEstimate hit = CardinalityEstimator::EstimateScan(*t, {IntEq(1, 42)});
  EXPECT_NEAR(hit.rows, 4000, 4000 * 0.01);
  // ...and the surviving key NDV can never exceed the surviving rows.
  EXPECT_LE(hit.KeyNdv(1), hit.rows + 1);
  EXPECT_GE(hit.KeyNdv(1), 1.0);
  // A disjoint equality is outside the synopsis domain entirely.
  RelationEstimate miss = CardinalityEstimator::EstimateScan(*t, {IntEq(1, 7)});
  EXPECT_LT(miss.rows, hit.rows * 0.01);
}

TEST_F(CardinalityTest, PostSelectionEstimate) {
  auto t = MakeTable("UNIF",
                     {{"K", TypeId::kInt64, false, 0, false},
                      {"V", TypeId::kInt64, true, 0, false}},
                     [](RowBatch* rows) {
                       for (int64_t i = 0; i < 10000; ++i) {
                         rows->columns[0].AppendInt(i);
                         rows->columns[1].AppendInt(i % 1000);
                       }
                     });
  // V <= 99 keeps ~10% under the uniform-range model; exact is 1000.
  RelationEstimate e = CardinalityEstimator::EstimateScan(*t, {IntLe(1, 99)});
  int64_t exact = Count("SELECT COUNT(*) FROM UNIF WHERE V <= 99");
  EXPECT_EQ(exact, 1000);
  EXPECT_GT(e.rows, exact / 2.0);
  EXPECT_LT(e.rows, exact * 2.0);
  // Post-selection key NDV is capped by the surviving row estimate.
  EXPECT_LE(e.KeyNdv(0), e.rows + 1);
}

// ------------------------------------------------------- join estimation --

TEST_F(CardinalityTest, JoinRowsContainment) {
  // FK join: |R|*|S| / max(ndv) — 1M facts against a 1k dimension keyed on
  // its primary key stays 1M.
  EXPECT_NEAR(CardinalityEstimator::JoinRows(1e6, 1000, 1000, 1000), 1e6,
              1e6 * 0.01);
  // A selective dimension (10 surviving keys of 10k) scales the fact down.
  EXPECT_NEAR(CardinalityEstimator::JoinRows(1e6, 10, 10000, 10), 1000,
              1000 * 0.01);
  // Unknown NDV on one side falls back to the known side.
  double one_side = CardinalityEstimator::JoinRows(1e6, 1000, 0, 1000);
  EXPECT_NEAR(one_side, 1e6, 1e6 * 0.01);
  // Both unknown degrades to the FK shape max(l, r).
  EXPECT_GE(CardinalityEstimator::JoinRows(500, 2000, 0, 0), 2000);
}

TEST_F(CardinalityTest, ResidualSelectivityClamped) {
  double s = CardinalityEstimator::ResidualConjunctSelectivity();
  EXPECT_GE(s, 0.05);
  EXPECT_LE(s, 0.95);
}

// ----------------------------------------------------- join-order search --

TEST_F(CardinalityTest, DpOrdersSelectiveDimensionFirst) {
  // fact(1M) -- dimA(10 rows, key ndv 10 vs fact ndv 10k) -- dimB(1000).
  std::vector<JoinRelation> rels = {{1e6}, {1000}, {10}};
  std::vector<JoinGraphEdge> edges = {{0, 1, 1000, 1000}, {0, 2, 10000, 10}};
  std::vector<int> order = OrderJoins(rels, edges);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2);  // the reducing dimension joins first
  EXPECT_EQ(order[2], 1);
}

TEST_F(CardinalityTest, PrefixIsPinnedVerbatim) {
  std::vector<JoinRelation> rels = {{1e6}, {1000}, {10}};
  std::vector<JoinGraphEdge> edges = {{0, 1, 1000, 1000}, {0, 2, 10000, 10}};
  std::vector<int> order = OrderJoins(rels, edges, {0, 1});
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST_F(CardinalityTest, DisconnectedRelationJoinsLast) {
  // With the driver pinned, the penalized cross product is deferred behind
  // the connected (and reducing) edge.
  std::vector<JoinRelation> rels = {{1000}, {100}, {5}};
  std::vector<JoinGraphEdge> edges = {{0, 1, 100, 100}};
  std::vector<int> order = OrderJoins(rels, edges, {0});
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);  // the cross product is deferred
}

TEST_F(CardinalityTest, GreedyBeyondDpCutoffIsValidPermutation) {
  // kDpMaxRelations + 2 relations: star of one fact and 11 dimensions.
  std::vector<JoinRelation> rels = {{1e6}};
  std::vector<JoinGraphEdge> edges;
  for (int d = 1; d <= kDpMaxRelations + 1; ++d) {
    rels.push_back({1000.0 * d});
    edges.push_back({0, d, 1000, 1000});
  }
  std::vector<int> order = OrderJoins(rels, edges);
  ASSERT_EQ(order.size(), rels.size());
  std::vector<bool> seen(rels.size(), false);
  for (int r : order) {
    ASSERT_GE(r, 0);
    ASSERT_LT(static_cast<size_t>(r), rels.size());
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
  EXPECT_EQ(order[0], 0);  // the fact drives
}

// -------------------------------------------- seeded property validation --

TEST_F(CardinalityTest, StarSchemaEstimatesTrackExactCounts) {
  bench::StarScale scale;
  scale.fact_rows = 50000;
  scale.customers = 5000;
  scale.products = 2000;
  scale.stores = 200;
  scale.dates = 365;
  scale.seed = 7;
  bench::StarSchemaWorkload workload(scale);
  ASSERT_TRUE(workload.Setup(&engine_).ok());

  auto table = [&](const std::string& name) {
    auto e = engine_.GetTable("PUBLIC", name);
    EXPECT_TRUE(e.ok());
    return std::static_pointer_cast<ColumnTable>((*e)->storage);
  };
  auto log2_error = [](double est, int64_t exact) {
    return std::fabs(std::log2((est + 1) / (exact + 1)));
  };

  // Uniform columns: estimates within 2 doublings of the exact count.
  struct Probe {
    const char* name;
    int col;
    ColumnPredicate pred;
    const char* sql;
  };
  const std::vector<Probe> probes = {
      {"CUSTOMER", 2, IntEq(2, 7),
       "SELECT COUNT(*) FROM CUSTOMER WHERE REGION = 7"},
      {"PRODUCT", 2, IntLe(2, 100),
       "SELECT COUNT(*) FROM PRODUCT WHERE PRICE <= 100"},
      {"SALES", 5, IntLe(5, 4999),
       "SELECT COUNT(*) FROM SALES WHERE AMT <= 4999"},
      {"STORE", 1, IntEq(1, 3),
       "SELECT COUNT(*) FROM STORE WHERE REGION = 3"},
  };
  for (const Probe& p : probes) {
    RelationEstimate e =
        CardinalityEstimator::EstimateScan(*table(p.name), {p.pred});
    int64_t exact = Count(p.sql);
    ASSERT_GE(exact, 0);
    EXPECT_LE(log2_error(e.rows, exact), 2.0)
        << p.name << ": est " << e.rows << " vs exact " << exact;
  }

  // The deliberately skewed column: SEGMENT = 0 holds 95% of rows but the
  // uniformity assumption predicts 1/20 — the >10x error the adaptive
  // re-planner exists to catch.
  RelationEstimate seg =
      CardinalityEstimator::EstimateScan(*table("CUSTOMER"), {IntEq(1, 0)});
  int64_t seg_exact = Count("SELECT COUNT(*) FROM CUSTOMER WHERE SEGMENT = 0");
  EXPECT_GE(seg_exact / (seg.rows + 1), 10.0);

  // FK join estimate: SALES x CUSTOMER stays within 2x of the fact count.
  RelationEstimate sales = CardinalityEstimator::EstimateScan(*table("SALES"), {});
  RelationEstimate cust =
      CardinalityEstimator::EstimateScan(*table("CUSTOMER"), {});
  double joined = CardinalityEstimator::JoinRows(
      sales.rows, cust.rows, sales.KeyNdv(1), cust.KeyNdv(0));
  int64_t exact_join = Count(
      "SELECT COUNT(*) FROM SALES S, CUSTOMER C WHERE S.CUST_ID = C.CUST_ID");
  EXPECT_LE(log2_error(joined, exact_join), 1.0)
      << "join est " << joined << " vs exact " << exact_join;
}

}  // namespace
}  // namespace dashdb
