// Tests for schemas and the catalog.
#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace dashdb {
namespace {

TableSchema MakeSchema(const std::string& schema, const std::string& name) {
  return TableSchema(schema, name,
                     {{"ID", TypeId::kInt64, false, 0, true},
                      {"AMOUNT", TypeId::kDecimal, true, 2, false},
                      {"NOTE", TypeId::kVarchar, true, 0, false}});
}

TEST(SchemaTest, FindColumnCaseInsensitive) {
  TableSchema s = MakeSchema("PUBLIC", "T");
  EXPECT_EQ(s.FindColumn("id"), 0);
  EXPECT_EQ(s.FindColumn("Amount"), 1);
  EXPECT_EQ(s.FindColumn("missing"), -1);
}

TEST(SchemaTest, QualifiedName) {
  TableSchema s = MakeSchema("SALES", "ORDERS");
  EXPECT_EQ(s.QualifiedName(), "SALES.ORDERS");
  EXPECT_EQ(s.organization(), TableOrganization::kColumn);
}

TEST(CatalogTest, CreateLookupDrop) {
  Catalog cat;
  CatalogEntry e;
  e.schema = MakeSchema("PUBLIC", "T1");
  ASSERT_TRUE(cat.CreateEntry(e).ok());
  EXPECT_TRUE(cat.HasEntry("public", "t1"));  // case-insensitive
  auto r = cat.Lookup("PUBLIC", "T1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->schema.table_name(), "T1");
  ASSERT_TRUE(cat.DropEntry("PUBLIC", "T1").ok());
  EXPECT_FALSE(cat.HasEntry("PUBLIC", "T1"));
  EXPECT_EQ(cat.DropEntry("PUBLIC", "T1").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, DuplicateRejected) {
  Catalog cat;
  CatalogEntry e;
  e.schema = MakeSchema("PUBLIC", "T1");
  ASSERT_TRUE(cat.CreateEntry(e).ok());
  EXPECT_EQ(cat.CreateEntry(e).code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, SchemasIsolateTables) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateSchema("FINANCE").ok());
  CatalogEntry a, b;
  a.schema = MakeSchema("PUBLIC", "T");
  b.schema = MakeSchema("FINANCE", "T");
  ASSERT_TRUE(cat.CreateEntry(a).ok());
  ASSERT_TRUE(cat.CreateEntry(b).ok());
  EXPECT_EQ(cat.TableCount(), 2u);
  EXPECT_EQ(cat.ListEntries("FINANCE").size(), 1u);
}

TEST(CatalogTest, UnknownSchemaRejected) {
  Catalog cat;
  CatalogEntry e;
  e.schema = MakeSchema("NOSUCH", "T");
  EXPECT_EQ(cat.CreateEntry(e).code(), StatusCode::kNotFound);
}

TEST(CatalogTest, DropSchemaDropsTables) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateSchema("S1").ok());
  CatalogEntry e;
  e.schema = MakeSchema("S1", "T");
  ASSERT_TRUE(cat.CreateEntry(e).ok());
  ASSERT_TRUE(cat.DropSchema("S1").ok());
  EXPECT_FALSE(cat.HasEntry("S1", "T"));
  EXPECT_FALSE(cat.HasSchema("S1"));
}

TEST(CatalogTest, ViewEntryKeepsDialect) {
  // Paper II.C.2: view objects remember the dialect they were created under.
  Catalog cat;
  CatalogEntry v;
  v.kind = EntryKind::kView;
  v.schema = TableSchema("PUBLIC", "V1", {});
  v.view_sql = "SELECT 1 FROM DUAL";
  v.view_dialect = "ORACLE";
  ASSERT_TRUE(cat.CreateEntry(v).ok());
  auto r = cat.Lookup("PUBLIC", "V1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->kind, EntryKind::kView);
  EXPECT_EQ((*r)->view_dialect, "ORACLE");
}

}  // namespace
}  // namespace dashdb
