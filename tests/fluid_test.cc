// Tests for Fluid Query: nicknames over simulated remote stores, federated
// SQL, pushdown vs full-transfer capability profiles (paper II.C.6).
#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "fluid/nickname.h"

namespace dashdb {
namespace fluid {
namespace {

TableSchema RemoteSchema(const char* name) {
  return TableSchema("REMOTE", name,
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"CATEGORY", TypeId::kVarchar, true, 0, false},
                      {"QTY", TypeId::kInt64, true, 0, false}});
}

RowBatch RemoteRows(int n) {
  RowBatch b;
  b.columns.emplace_back(TypeId::kInt64);
  b.columns.emplace_back(TypeId::kVarchar);
  b.columns.emplace_back(TypeId::kInt64);
  for (int i = 0; i < n; ++i) {
    b.columns[0].AppendInt(i);
    b.columns[1].AppendString(i % 2 ? "widgets" : "gears");
    b.columns[2].AppendInt(i * 3);
  }
  return b;
}

TEST(RemoteStoreTest, RdbmsPushdownTransfersOnlyMatches) {
  auto store = std::make_shared<SimRdbmsStore>("ORACLE", RemoteSchema("T"));
  ASSERT_TRUE(store->Load(RemoteRows(1000)).ok());
  ColumnPredicate p;
  p.column = 0;
  p.int_range.hi = 9;
  size_t rows = 0;
  ASSERT_TRUE(store->Scan({p}, {0, 2}, [&](RowBatch& b) {
                     rows += b.num_rows();
                   }).ok());
  EXPECT_EQ(rows, 10u);
  TransferStats s = store->stats();
  EXPECT_EQ(s.rows_transferred, 10u) << "pushdown ships only matches";
  EXPECT_EQ(s.rows_scanned, 1000u);
}

TEST(RemoteStoreTest, HadoopTransfersEverythingThenFilters) {
  auto store = std::make_shared<SimHadoopStore>(RemoteSchema("LOGS"));
  ASSERT_TRUE(store->Load(RemoteRows(1000)).ok());
  ColumnPredicate p;
  p.column = 0;
  p.int_range.hi = 9;
  size_t rows = 0;
  ASSERT_TRUE(store->Scan({p}, {0}, [&](RowBatch& b) {
                     rows += b.num_rows();
                   }).ok());
  EXPECT_EQ(rows, 10u) << "results still correct";
  TransferStats s = store->stats();
  EXPECT_EQ(s.rows_transferred, 1000u) << "no pushdown: full transfer";
}

TEST(RemoteStoreTest, TransientScanFaultRetriesExactlyOnce) {
  FaultInjector::Global().Reset(0);
  auto store = std::make_shared<SimRdbmsStore>("ORACLE", RemoteSchema("T"));
  ASSERT_TRUE(store->Load(RemoteRows(100)).ok());
  FaultSpec drop;
  drop.code = StatusCode::kUnavailable;
  drop.message = "connection reset";
  drop.max_fires = 1;
  FaultInjector::Global().Arm("fluid.remote_scan", drop);
  size_t rows = 0;
  Status st = store->Scan({}, {0, 1, 2},
                          [&](RowBatch& b) { rows += b.num_rows(); });
  FaultInjector::Global().Reset(0);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(rows, 100u) << "staged batches from the failed attempt are "
                           "discarded, the retry emits exactly once";
  TransferStats s = store->stats();
  EXPECT_EQ(s.failed_requests, 1u);
  EXPECT_EQ(s.retries, 1u);
  EXPECT_EQ(s.rows_transferred, 100u)
      << "only the successful attempt's transfer counts";
}

TEST(RemoteStoreTest, NonTransientScanFaultIsNotRetried) {
  FaultInjector::Global().Reset(0);
  auto store = std::make_shared<SimHadoopStore>(RemoteSchema("LOGS"));
  ASSERT_TRUE(store->Load(RemoteRows(50)).ok());
  FaultSpec fatal;
  fatal.code = StatusCode::kInternal;
  fatal.message = "corrupt split";
  FaultInjector::Global().Arm("fluid.remote_scan", fatal);
  size_t rows = 0;
  Status st = store->Scan({}, {0},
                          [&](RowBatch& b) { rows += b.num_rows(); });
  FaultInjector::Global().Reset(0);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal) << "code survives the wrapper";
  EXPECT_EQ(rows, 0u) << "no partial emission from the failed attempt";
  TransferStats s = store->stats();
  EXPECT_EQ(s.failed_requests, 1u);
  EXPECT_EQ(s.retries, 0u);
}

TEST(RemoteStoreTest, RetryBudgetExhaustionSurfacesTransientError) {
  FaultInjector::Global().Reset(0);
  auto store = std::make_shared<SimRdbmsStore>("DB2", RemoteSchema("T"));
  ASSERT_TRUE(store->Load(RemoteRows(10)).ok());
  FaultSpec always;
  always.code = StatusCode::kTimeout;  // fires on every attempt
  FaultInjector::Global().Arm("fluid.remote_scan", always);
  Status st = store->Scan({}, {0}, [&](RowBatch&) {});
  FaultInjector::Global().Reset(0);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsTransient());
  TransferStats s = store->stats();
  const auto attempts =
      static_cast<uint64_t>(store->retry_policy().max_attempts);
  EXPECT_EQ(s.failed_requests, attempts);
  EXPECT_EQ(s.retries, attempts - 1) << "last failure has no retry after it";
}

TEST(RemoteStoreTest, HadoopSchemaOnReadHandlesNulls) {
  auto store = std::make_shared<SimHadoopStore>(RemoteSchema("LOGS"));
  store->AppendLine("1|gears|30");
  store->AppendLine("2|\\N|\\N");
  size_t nulls = 0, rows = 0;
  ASSERT_TRUE(store->Scan({}, {1, 2}, [&](RowBatch& b) {
                     rows += b.num_rows();
                     for (size_t i = 0; i < b.num_rows(); ++i) {
                       if (b.columns[0].IsNull(i)) ++nulls;
                     }
                   }).ok());
  EXPECT_EQ(rows, 2u);
  EXPECT_EQ(nulls, 1u);
}

class FederationTest : public ::testing::Test {
 protected:
  FederationTest() : session_(engine_.CreateSession()) {
    EXPECT_TRUE(engine_.catalog()->CreateSchema("REMOTE").ok());
    oracle_ = std::make_shared<SimRdbmsStore>("ORACLE",
                                              RemoteSchema("ORDERS"));
    EXPECT_TRUE(oracle_->Load(RemoteRows(500)).ok());
    EXPECT_TRUE(CreateNickname(&engine_, "REMOTE", "ORDERS", oracle_).ok());
    hadoop_ = std::make_shared<SimHadoopStore>(RemoteSchema("CLICKS"));
    EXPECT_TRUE(hadoop_->Load(RemoteRows(500)).ok());
    EXPECT_TRUE(CreateNickname(&engine_, "REMOTE", "CLICKS", hadoop_).ok());
  }

  QueryResult Exec(const std::string& sql) {
    auto r = engine_.Execute(session_.get(), sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  Engine engine_;
  std::shared_ptr<Session> session_;
  std::shared_ptr<SimRdbmsStore> oracle_;
  std::shared_ptr<SimHadoopStore> hadoop_;
};

TEST_F(FederationTest, QueryNicknameWithExistingSqlSkills) {
  QueryResult r = Exec("SELECT COUNT(*) FROM remote.orders WHERE id < 100");
  EXPECT_EQ(r.rows.columns[0].GetInt(0), 100);
  // The sargable predicate was pushed into the remote scan.
  EXPECT_EQ(oracle_->stats().rows_transferred, 100u);
}

TEST_F(FederationTest, HadoopNicknameCorrectWithoutPushdown) {
  QueryResult r = Exec("SELECT COUNT(*) FROM remote.clicks WHERE id < 100");
  EXPECT_EQ(r.rows.columns[0].GetInt(0), 100);
  EXPECT_EQ(hadoop_->stats().rows_transferred, 500u);
}

TEST_F(FederationTest, JoinLocalTableWithNickname) {
  // "bridges to RDBMS islands": local dashDB table joined with the remote.
  Exec("CREATE TABLE local_cat (name VARCHAR(20), score INT)");
  Exec("INSERT INTO local_cat VALUES ('gears', 1), ('widgets', 2)");
  QueryResult r = Exec(
      "SELECT l.score, COUNT(*) FROM remote.orders o "
      "JOIN local_cat l ON o.category = l.name "
      "GROUP BY l.score ORDER BY l.score");
  ASSERT_EQ(r.rows.num_rows(), 2u);
  EXPECT_EQ(r.rows.columns[1].GetInt(0), 250);
}

TEST_F(FederationTest, UnifyHadoopAndRdbmsInOneQuery) {
  // "unification of Hadoop and structured data stores."
  QueryResult r = Exec(
      "SELECT COUNT(*) FROM remote.orders o JOIN remote.clicks c "
      "ON o.id = c.id WHERE o.id < 50");
  EXPECT_EQ(r.rows.columns[0].GetInt(0), 50);
}

TEST_F(FederationTest, ExplainShowsRemoteScan) {
  QueryResult r = Exec("EXPLAIN SELECT * FROM remote.orders WHERE id = 1");
  EXPECT_NE(r.message.find("RemoteScan(ORACLE"), std::string::npos)
      << r.message;
  EXPECT_NE(r.message.find("pushdown"), std::string::npos);
}

TEST_F(FederationTest, AggregateOverNickname) {
  QueryResult r = Exec(
      "SELECT category, SUM(qty) FROM remote.orders GROUP BY category "
      "ORDER BY category");
  ASSERT_EQ(r.rows.num_rows(), 2u);
  EXPECT_EQ(r.rows.columns[0].GetString(0), "gears");
}

}  // namespace
}  // namespace fluid
}  // namespace dashdb
