// Seeded property tests for the vectorized expression engine: every
// columnar kernel (arithmetic, comparison, logic, CASE, LIKE, IN, CAST,
// scalar-function vectors, dictionary-code predicates) is checked against
// the row-at-a-time oracle EvaluateRowAtATime over randomized expression
// trees, batches (NULLs, NaN/-0.0, INT64 extremes, empty strings, empty
// batches), selection vectors, and both dialects. Runs under the ASan and
// TSan sweeps via the `expr` ctest label (scripts/check.sh).
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "compression/dict_codes.h"
#include "exec/expr.h"
#include "exec/functions.h"
#include "sql/engine.h"
#include "storage/column_table.h"

namespace dashdb {
namespace {

// --------------------------------------------------------- batch builder --

// Column layout shared by the generator and the expression factory.
//   0: INT64  1: DOUBLE  2: VARCHAR  3: INT32  4: BOOLEAN  5: DATE
RowBatch MakeRandomBatch(std::mt19937* rng, size_t n) {
  RowBatch b;
  b.columns.emplace_back(TypeId::kInt64);
  b.columns.emplace_back(TypeId::kDouble);
  b.columns.emplace_back(TypeId::kVarchar);
  b.columns.emplace_back(TypeId::kInt32);
  b.columns.emplace_back(TypeId::kBoolean);
  b.columns.emplace_back(TypeId::kDate);
  auto pct = [&](int p) { return static_cast<int>((*rng)() % 100) < p; };
  static const double kDoubles[] = {
      0.0,  -0.0, 1.5,  -2.25, 1e18, -1e18, 0.1,
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity()};
  static const char* kStrings[] = {"",   "a",   "ab",  "abc", "s1", "s12",
                                   "s2", "zzz", "S1",  "s\x7f", "b%c", "a_c"};
  static const int64_t kExtremes[] = {INT64_MIN, INT64_MAX, INT64_MIN + 1, 0};
  for (size_t i = 0; i < n; ++i) {
    if (pct(15)) {
      b.columns[0].AppendNull();
    } else if (pct(5)) {
      b.columns[0].AppendInt(kExtremes[(*rng)() % 4]);
    } else {
      b.columns[0].AppendInt(static_cast<int64_t>((*rng)() % 41) - 20);
    }
    if (pct(15)) {
      b.columns[1].AppendNull();
    } else if (pct(25)) {
      b.columns[1].AppendDouble(kDoubles[(*rng)() % 10]);
    } else {
      b.columns[1].AppendDouble(static_cast<double>((*rng)() % 41) - 20);
    }
    if (pct(15)) {
      b.columns[2].AppendNull();
    } else {
      b.columns[2].AppendString(kStrings[(*rng)() % 12]);
    }
    if (pct(15)) {
      b.columns[3].AppendNull();
    } else {
      b.columns[3].AppendInt(static_cast<int64_t>((*rng)() % 21) - 10);
    }
    if (pct(15)) {
      b.columns[4].AppendNull();
    } else {
      b.columns[4].AppendInt((*rng)() % 2);
    }
    if (pct(15)) {
      b.columns[5].AppendNull();
    } else {
      b.columns[5].AppendInt(16000 + static_cast<int64_t>((*rng)() % 2000));
    }
  }
  return b;
}

// Random ascending subset of [0, n); may be empty.
std::vector<uint32_t> MakeRandomSelection(std::mt19937* rng, size_t n) {
  std::vector<uint32_t> sel;
  const int keep = static_cast<int>((*rng)() % 101);
  for (size_t i = 0; i < n; ++i) {
    if (static_cast<int>((*rng)() % 100) < keep) {
      sel.push_back(static_cast<uint32_t>(i));
    }
  }
  return sel;
}

// ---------------------------------------------------- expression factory --

class ExprGen {
 public:
  explicit ExprGen(std::mt19937* rng) : rng_(rng) {}

  ExprPtr Bool(int depth) {
    switch (depth <= 0 ? (*rng_)() % 3 : (*rng_)() % 8) {
      case 0: {  // numeric comparison
        ExprPtr l = Num(depth - 1), r = Num(depth - 1);
        return std::make_shared<CompareExpr>(Cmp(), std::move(l),
                                             std::move(r));
      }
      case 1: {  // string comparison
        return std::make_shared<CompareExpr>(Cmp(), Str(depth - 1),
                                             Str(depth - 1));
      }
      case 2:
        return std::make_shared<ColumnRefExpr>(4, TypeId::kBoolean, "B");
      case 3:
        return std::make_shared<LogicExpr>(
            (*rng_)() % 2 ? LogicOp::kAnd : LogicOp::kOr, Bool(depth - 1),
            Bool(depth - 1));
      case 4:
        return std::make_shared<LogicExpr>(LogicOp::kNot, Bool(depth - 1));
      case 5: {
        ExprPtr c = (*rng_)() % 2 ? Num(depth - 1) : Str(depth - 1);
        return std::make_shared<IsNullExpr>(std::move(c), (*rng_)() % 2 == 0);
      }
      case 6: {  // LIKE over a varchar child
        static const char* kPatterns[] = {"s1%", "abc", "%",    "s_2", "a%c",
                                          "",    "s%",  "zzz%", "_",   "%b%"};
        return std::make_shared<LikeExpr>(Str(depth - 1),
                                          kPatterns[(*rng_)() % 10],
                                          (*rng_)() % 2 == 0);
      }
      default: {  // IN list (typed sets + mixed-family fallback + NULL item)
        ExprPtr c = (*rng_)() % 2 ? Num(depth - 1) : Str(depth - 1);
        std::vector<Value> items;
        const size_t cnt = 1 + (*rng_)() % 5;
        for (size_t i = 0; i < cnt; ++i) {
          switch ((*rng_)() % 5) {
            case 0: items.push_back(Value::Null(TypeId::kInt64)); break;
            case 1: items.push_back(Value::Double(
                        static_cast<double>((*rng_)() % 7) - 3)); break;
            case 2: items.push_back(Value::String(
                        "s" + std::to_string((*rng_)() % 4))); break;
            default: items.push_back(Value::Int64(
                         static_cast<int64_t>((*rng_)() % 21) - 10));
          }
        }
        return std::make_shared<InExpr>(std::move(c), std::move(items),
                                        (*rng_)() % 2 == 0);
      }
    }
  }

  ExprPtr Num(int depth) {
    switch (depth <= 0 ? (*rng_)() % 4 : (*rng_)() % 9) {
      case 0:
        return std::make_shared<ColumnRefExpr>(0, TypeId::kInt64, "I");
      case 1:
        return std::make_shared<ColumnRefExpr>(1, TypeId::kDouble, "D");
      case 2:
        return std::make_shared<ColumnRefExpr>(3, TypeId::kInt32, "J");
      case 3:
        return std::make_shared<LiteralExpr>(
            (*rng_)() % 2
                ? Value::Int64(static_cast<int64_t>((*rng_)() % 9) - 4)
                : Value::Double(static_cast<double>((*rng_)() % 9) - 4));
      case 4: {  // arithmetic with numeric promotion (binder's rule)
        ArithOp op = static_cast<ArithOp>((*rng_)() % 5);
        ExprPtr l = Num(depth - 1), r = Num(depth - 1);
        TypeId out = (l->out_type() == TypeId::kDouble ||
                      r->out_type() == TypeId::kDouble || op == ArithOp::kDiv)
                         ? TypeId::kDouble
                         : TypeId::kInt64;
        return std::make_shared<ArithExpr>(op, std::move(l), std::move(r),
                                           out);
      }
      case 5: {  // CAST across the numeric family (and from varchar: errors)
        if ((*rng_)() % 6 == 0) {
          return std::make_shared<CastExpr>(Str(depth - 1), TypeId::kInt64);
        }
        TypeId to = (*rng_)() % 2 ? TypeId::kDouble : TypeId::kInt64;
        return std::make_shared<CastExpr>(Num(depth - 1), to);
      }
      case 6: {  // CASE over numeric arms
        std::vector<std::pair<ExprPtr, ExprPtr>> whens;
        const size_t arms = 1 + (*rng_)() % 3;
        TypeId out = TypeId::kInt64;
        for (size_t i = 0; i < arms; ++i) {
          ExprPtr then = Num(depth - 1);
          if (i == 0) out = then->out_type();
          whens.emplace_back(Bool(depth - 1), std::move(then));
        }
        ExprPtr els = (*rng_)() % 3 ? Num(depth - 1) : nullptr;
        return std::make_shared<CaseExpr>(std::move(whens), std::move(els),
                                          out);
      }
      case 7:
        return Fn((*rng_)() % 2 ? "ABS" : "MOD", depth);
      default:
        return Fn("LENGTH", depth);
    }
  }

  ExprPtr Str(int depth) {
    switch (depth <= 0 ? (*rng_)() % 2 : (*rng_)() % 4) {
      case 0:
        return std::make_shared<ColumnRefExpr>(2, TypeId::kVarchar, "S");
      case 1: {
        static const char* kLits[] = {"", "a", "s1", "s12", "zzz", "S1"};
        return std::make_shared<LiteralExpr>(
            Value::String(kLits[(*rng_)() % 6]));
      }
      case 2:
        return std::make_shared<ArithExpr>(ArithOp::kConcat, Str(depth - 1),
                                           Str(depth - 1), TypeId::kVarchar);
      default:
        return Fn((*rng_)() % 2 ? "UPPER" : "LOWER", depth);
    }
  }

 private:
  CmpOp Cmp() { return static_cast<CmpOp>((*rng_)() % 6); }

  ExprPtr Fn(const std::string& name, int depth) {
    const FunctionDef* def = FunctionRegistry::Global().Lookup(name);
    EXPECT_NE(def, nullptr) << name;
    std::vector<ExprPtr> args;
    std::vector<TypeId> types;
    if (name == "UPPER" || name == "LOWER" || name == "LENGTH") {
      args.push_back(Str(depth - 1));
    } else if (name == "ABS") {
      args.push_back(Num(depth - 1));
    } else {  // MOD
      args.push_back(Num(depth - 1));
      args.push_back(Num(depth - 1));
    }
    for (const auto& a : args) types.push_back(a->out_type());
    return std::make_shared<FuncExpr>(name, def->fn, std::move(args),
                                      def->ret_type(types), def->pure,
                                      def->vec_fn);
  }

  std::mt19937* rng_;
};

// ----------------------------------------------------------- comparators --

void ExpectVectorsEqual(const Expr& e, const ColumnVector& vec,
                        const ColumnVector& oracle, const char* what) {
  ASSERT_EQ(vec.size(), oracle.size()) << what << ": " << e.ToString();
  for (size_t i = 0; i < vec.size(); ++i) {
    ASSERT_EQ(vec.IsNull(i), oracle.IsNull(i))
        << what << " row " << i << ": " << e.ToString();
    if (vec.IsNull(i)) continue;
    if (e.out_type() == TypeId::kVarchar) {
      ASSERT_EQ(vec.GetString(i), oracle.GetString(i))
          << what << " row " << i << ": " << e.ToString();
    } else if (e.out_type() == TypeId::kDouble) {
      double a = vec.GetDouble(i), b = oracle.GetDouble(i);
      if (std::isnan(a) || std::isnan(b)) {
        ASSERT_TRUE(std::isnan(a) && std::isnan(b))
            << what << " row " << i << ": " << e.ToString();
      } else {
        ASSERT_EQ(a, b) << what << " row " << i << ": " << e.ToString();
        ASSERT_EQ(std::signbit(a), std::signbit(b))
            << what << " row " << i << " (-0.0): " << e.ToString();
      }
    } else {
      ASSERT_EQ(vec.GetInt(i), oracle.GetInt(i))
          << what << " row " << i << ": " << e.ToString();
    }
  }
}

// Vectorized EvaluateSel vs the row-at-a-time oracle. Kernels evaluate
// exactly the rows the row path would (logic/CASE narrow by selection the
// same way the row path short-circuits), so ok-ness must agree too.
void CheckEvaluate(const Expr& e, const RowBatch& b, const uint32_t* sel,
                   size_t k, const ExecContext& ctx, const char* what) {
  auto vec = e.EvaluateSel(b, sel, k, ctx);
  auto oracle = EvaluateRowAtATime(e, b, sel, k, ctx);
  ASSERT_EQ(vec.ok(), oracle.ok())
      << what << ": " << e.ToString() << " vec="
      << (vec.ok() ? "ok" : vec.status().ToString()) << " oracle="
      << (oracle.ok() ? "ok" : oracle.status().ToString());
  if (!vec.ok()) return;
  ExpectVectorsEqual(e, *vec, *oracle, what);
}

// Filter mode: TRUE rows must match when both paths succeed. Short-circuit
// filtering may legitimately *skip* rows whose evaluation would error (a
// FALSE left arm of an AND), so an oracle error with a clean vectorized run
// is acceptable — the reverse is not.
void CheckFilter(const Expr& e, const RowBatch& b, const uint32_t* sel,
                 size_t k, const ExecContext& ctx, const char* what) {
  auto got = EvalFilterSel(e, b, sel, k, ctx);
  auto oracle = EvaluateRowAtATime(e, b, sel, k, ctx);
  if (!got.ok()) {
    ASSERT_FALSE(oracle.ok())
        << what << ": vectorized filter errored (" << got.status().ToString()
        << ") but the oracle succeeded: " << e.ToString();
    return;
  }
  if (!oracle.ok()) return;  // vector short-circuited past the error
  std::vector<uint32_t> want;
  for (size_t i = 0; i < k; ++i) {
    if (!oracle->IsNull(i) && oracle->GetInt(i) != 0) {
      want.push_back(sel ? sel[i] : static_cast<uint32_t>(i));
    }
  }
  ASSERT_EQ(*got, want) << what << ": " << e.ToString();
}

void CheckAllModes(const Expr& e, const RowBatch& b, const uint32_t* sel,
                   size_t k, const ExecContext& ctx, const char* what) {
  CheckEvaluate(e, b, sel, k, ctx, what);
  if (e.out_type() == TypeId::kBoolean) CheckFilter(e, b, sel, k, ctx, what);
}

// ------------------------------------------------------------ properties --

TEST(ExprVectorProperty, KernelsMatchRowOracle) {
  std::mt19937 rng(20170405);
  ExprGen gen(&rng);
  ExecContext ansi;
  ExecContext oracle_ctx;
  oracle_ctx.dialect = Dialect::kOracle;
  static const size_t kSizes[] = {0, 1, 64, 333, 1000};
  for (int iter = 0; iter < 160; ++iter) {
    const size_t n = kSizes[iter % 5];
    RowBatch b = MakeRandomBatch(&rng, n);
    std::vector<ExprPtr> exprs = {gen.Bool(3), gen.Num(3), gen.Str(3)};
    for (const auto& e : exprs) {
      const ExecContext& ctx = iter % 2 ? oracle_ctx : ansi;
      // Full batch (null selection).
      CheckAllModes(*e, b, nullptr, n, ctx, "full");
      // Random ascending subset (possibly empty).
      std::vector<uint32_t> sel = MakeRandomSelection(&rng, n);
      CheckAllModes(*e, b, sel.data(), sel.size(), ctx, "subset");
      // Through the batch-level selection plumbing.
      RowBatch view;
      view.columns = b.columns;
      view.selection =
          std::make_shared<const std::vector<uint32_t>>(std::move(sel));
      auto via_batch = e->Evaluate(view, ctx);
      auto direct = e->EvaluateSel(b, view.selection->data(),
                                   view.selection->size(), ctx);
      ASSERT_EQ(via_batch.ok(), direct.ok()) << e->ToString();
      if (via_batch.ok()) {
        ExpectVectorsEqual(*e, *via_batch, *direct, "batch-selection");
      }
    }
  }
}

// The selection produced by one predicate feeds the next: evaluating over a
// filter's output selection must agree with the oracle on that subset.
TEST(ExprVectorProperty, ChainedSelectionsCompose) {
  std::mt19937 rng(424242);
  ExprGen gen(&rng);
  ExecContext ctx;
  for (int iter = 0; iter < 60; ++iter) {
    RowBatch b = MakeRandomBatch(&rng, 512);
    ExprPtr first = gen.Bool(2);
    auto s1 = EvalFilterSel(*first, b, nullptr, b.num_rows(), ctx);
    if (!s1.ok()) continue;  // error-raising predicate; covered above
    ExprPtr second = gen.Bool(2);
    CheckAllModes(*second, b, s1->data(), s1->size(), ctx, "chained");
    ExprPtr proj = gen.Num(2);
    CheckEvaluate(*proj, b, s1->data(), s1->size(), ctx, "chained-project");
  }
}

// ------------------------------------------- dictionary-code predicates --

class DictCodePredicateTest : public ::testing::Test {
 protected:
  DictCodePredicateTest() : engine_(EngineConfig{}) {
    TableSchema s("PUBLIC", "DCT",
                  {{"GRP", TypeId::kInt64, true, 0, false},
                   {"S", TypeId::kVarchar, true, 0, false},
                   {"V", TypeId::kInt64, true, 0, false}});
    auto t = engine_.CreateColumnTable(s);
    EXPECT_TRUE(t.ok());
    table_ = *t;
    RowBatch b;
    b.columns.emplace_back(TypeId::kInt64);
    b.columns.emplace_back(TypeId::kVarchar);
    b.columns.emplace_back(TypeId::kInt64);
    for (int64_t i = 0; i < kRows; ++i) {
      if (i % 11 == 0) {
        b.columns[0].AppendNull();
      } else {
        // Sparse domain so the encoding contest picks kDictInt over FOR
        // (7 distinct values spread across a 6000-wide range).
        b.columns[0].AppendInt((i % 7) * 1000);
      }
      if (i % 17 == 0) {
        b.columns[1].AppendNull();
      } else {
        b.columns[1].AppendString("s" + std::to_string(i % 13));
      }
      b.columns[2].AppendInt(i * 31 % 10007);  // high-cardinality: no dict
    }
    EXPECT_TRUE(table_->Load(b).ok());
  }

  // 2 full pages + a tail batch.
  static constexpr int64_t kRows = 2 * 4096 + 500;
  Engine engine_;
  std::shared_ptr<ColumnTable> table_;
};

TEST_F(DictCodePredicateTest, ScanAttachesCodesAndKernelsMatchOracle) {
  ExecContext ctx;
  std::vector<ExprPtr> preds;
  auto grp = [] { return std::make_shared<ColumnRefExpr>(0, TypeId::kInt64,
                                                         "GRP"); };
  auto str = [] { return std::make_shared<ColumnRefExpr>(1, TypeId::kVarchar,
                                                         "S"); };
  auto lit = [](int64_t v) {
    return std::make_shared<LiteralExpr>(Value::Int64(v));
  };
  auto slit = [](const std::string& v) {
    return std::make_shared<LiteralExpr>(Value::String(v));
  };
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    preds.push_back(std::make_shared<CompareExpr>(op, grp(), lit(3000)));
    preds.push_back(std::make_shared<CompareExpr>(op, str(), slit("s7")));
  }
  // Literal on the left (operator flips), out-of-dictionary literals
  // (between codes and past the range), and bands with no matching codes.
  preds.push_back(std::make_shared<CompareExpr>(CmpOp::kLt, lit(2500),
                                                grp()));
  preds.push_back(std::make_shared<CompareExpr>(CmpOp::kEq, grp(), lit(500)));
  preds.push_back(std::make_shared<CompareExpr>(CmpOp::kLe, grp(), lit(2500)));
  preds.push_back(std::make_shared<CompareExpr>(CmpOp::kGe, grp(),
                                                lit(99000)));
  preds.push_back(std::make_shared<CompareExpr>(CmpOp::kEq, str(),
                                                slit("zzz")));
  preds.push_back(std::make_shared<CompareExpr>(CmpOp::kLt, str(),
                                                slit("a")));
  // LIKE: exact, prefix (code band), match-all, general fallback.
  preds.push_back(std::make_shared<LikeExpr>(str(), "s1%", false));
  preds.push_back(std::make_shared<LikeExpr>(str(), "s12", false));
  preds.push_back(std::make_shared<LikeExpr>(str(), "%", false));
  preds.push_back(std::make_shared<LikeExpr>(str(), "s_", true));
  // AND/OR of dict predicates exercise selection-narrowed re-entry.
  preds.push_back(std::make_shared<LogicExpr>(
      LogicOp::kOr,
      std::make_shared<CompareExpr>(CmpOp::kEq, grp(), lit(1000)),
      std::make_shared<CompareExpr>(CmpOp::kEq, str(), slit("s3"))));
  preds.push_back(std::make_shared<LogicExpr>(
      LogicOp::kAnd,
      std::make_shared<CompareExpr>(CmpOp::kGe, grp(), lit(2000)),
      std::make_shared<LikeExpr>(str(), "s1%", false)));

  Counter* dict_filters =
      MetricRegistry::Global().GetCounter("exec.dict_code_filters");
  const uint64_t before = dict_filters->value();

  size_t full_pages_with_codes = 0;
  size_t batches = 0;
  Status st = table_->Scan(
      {}, {0, 1, 2}, ScanOptions{},
      [&](RowBatch& batch, const std::vector<uint64_t>&) {
        ++batches;
        const size_t n = batch.num_rows();
        if (n == 4096) {
          // Full dictionary-encoded pages keep their codes; the
          // high-cardinality column must not.
          EXPECT_NE(UsableDictCodes(batch.columns[0], n), nullptr);
          EXPECT_NE(UsableDictCodes(batch.columns[1], n), nullptr);
          EXPECT_EQ(UsableDictCodes(batch.columns[2], n), nullptr);
          ++full_pages_with_codes;
        }
        for (const auto& e : preds) {
          CheckEvaluate(*e, batch, nullptr, n, ctx, "dict-eval");
          CheckFilter(*e, batch, nullptr, n, ctx, "dict-filter");
          // Narrowed selections hit the same dict plans.
          std::vector<uint32_t> half;
          for (uint32_t i = 0; i < n; i += 2) half.push_back(i);
          CheckEvaluate(*e, batch, half.data(), half.size(), ctx,
                        "dict-eval-sel");
          CheckFilter(*e, batch, half.data(), half.size(), ctx,
                      "dict-filter-sel");
        }
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(full_pages_with_codes, 2u);
  EXPECT_GE(batches, 3u);  // 2 pages + tail
  EXPECT_GT(dict_filters->value(), before)
      << "no predicate took the dictionary-code path";
}

// Code translation caches are per-expression and hit from morsel threads;
// re-running the same expression across batches with different dictionaries
// (int vs varchar columns) must keep plans separated by dictionary identity.
TEST_F(DictCodePredicateTest, RepeatedEvaluationReusesPlans) {
  ExecContext ctx;
  auto pred = std::make_shared<CompareExpr>(
      CmpOp::kLe, std::make_shared<ColumnRefExpr>(0, TypeId::kInt64, "GRP"),
      std::make_shared<LiteralExpr>(Value::Int64(4000)));
  for (int pass = 0; pass < 3; ++pass) {
    Status st = table_->Scan(
        {}, {0, 1, 2}, ScanOptions{},
        [&](RowBatch& batch, const std::vector<uint64_t>&) {
          CheckFilter(*pred, batch, nullptr, batch.num_rows(), ctx, "reuse");
        });
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
}

}  // namespace
}  // namespace dashdb
