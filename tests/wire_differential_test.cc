// Differential testing THROUGH the wire: the full corpus served to 8
// concurrent wire sessions over the MPP backend must be byte-identical to
// a serial in-process run — the serving layer (framing, value round-trip,
// session multiplexing, backend serialization) is a transport, never a
// semantic layer. A node-kill fault mid-query must stay invisible through
// the wire exactly as it is in-process.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "corpus_util.h"
#include "server/client.h"
#include "server/server.h"

namespace dashdb {
namespace {

constexpr const char* kShardExec = "mpp.shard_exec";

using corpus::kCorpus;
using corpus::kCorpusSize;
using corpus::MakeLoadedDb;
using corpus::ResultKey;

/// Serial in-process ground truth at DOP 1.
std::vector<std::string> SerialBaseline() {
  auto db = MakeLoadedDb(1);
  std::vector<std::string> keys;
  for (const char* q : kCorpus) {
    auto r = db->Execute(q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    keys.push_back(r.ok() ? ResultKey(r->result) : "<error>");
  }
  return keys;
}

TEST(WireDifferentialTest, EightWireSessionsMatchSerialBaseline) {
  std::vector<std::string> base = SerialBaseline();

  // The served cluster runs shards at DOP 4 — wire transport AND engine
  // parallelism both under test at once.
  auto db = MakeLoadedDb(4);
  MppBackend backend(db.get());
  ServerConfig cfg;
  cfg.worker_threads = 8;
  Server server(&backend, cfg);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      WireClient client;
      Status st = client.Connect(server.port());
      if (!st.ok()) {
        errors[c] = "connect: " + st.ToString();
        return;
      }
      // Stagger starting offsets so different clients contend on
      // different corpus queries at any instant.
      for (size_t i = 0; i < kCorpusSize; ++i) {
        size_t qi = (i + static_cast<size_t>(c) * 3) % kCorpusSize;
        auto r = client.Query(kCorpus[qi]);
        if (!r.ok()) {
          errors[c] = std::string(kCorpus[qi]) + ": " + r.status().ToString();
          return;
        }
        got[c].push_back(ResultKey(*r));
      }
      client.Close();
    });
  }
  for (auto& t : threads) t.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(errors[c].empty()) << "client " << c << ": " << errors[c];
    ASSERT_EQ(got[c].size(), kCorpusSize) << "client " << c;
    for (size_t i = 0; i < kCorpusSize; ++i) {
      size_t qi = (i + static_cast<size_t>(c) * 3) % kCorpusSize;
      EXPECT_EQ(got[c][i], base[qi])
          << "client " << c << " diverged on corpus query " << qi << ": "
          << kCorpus[qi];
    }
  }
  server.Stop();
}

TEST(WireDifferentialTest, NodeKillMidQueryIsInvisibleThroughTheWire) {
  std::vector<std::string> base = SerialBaseline();

  auto db = MakeLoadedDb(4);
  MppBackend backend(db.get());
  Server server(&backend);
  ASSERT_TRUE(server.Start().ok());
  WireClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());

  const int num_shards = db->num_shards();
  // Sample a few corpus queries (full sweep lives in the in-process
  // suite); each gets a one-shot node kill at a sampled shard.
  for (size_t qi = 0; qi < kCorpusSize; qi += 4) {
    for (int k = 0; k < num_shards; k += 4) {
      FaultSpec kill;
      kill.code = StatusCode::kUnavailable;
      kill.message = "node lost";
      kill.skip_hits = static_cast<uint64_t>(k);
      kill.max_fires = 1;
      ScopedFault fault(7100 + k, kShardExec, kill);
      auto r = client.Query(kCorpus[qi]);
      ASSERT_TRUE(r.ok()) << kCorpus[qi] << ": " << r.status().ToString();
      EXPECT_EQ(ResultKey(*r), base[qi])
          << "query " << qi << " diverged over the wire after node kill at "
          << "shard " << k;
    }
  }
  server.Stop();
}

TEST(WireDifferentialTest, ConcurrentSessionsSurviveNodeKill) {
  std::vector<std::string> base = SerialBaseline();

  auto db = MakeLoadedDb(4);
  MppBackend backend(db.get());
  ServerConfig cfg;
  cfg.worker_threads = 4;
  Server server(&backend, cfg);
  ASSERT_TRUE(server.Start().ok());

  // One node kill lands on whichever session's query reaches the shard
  // executor first; failover retry must keep every session byte-identical.
  FaultSpec kill;
  kill.code = StatusCode::kUnavailable;
  kill.message = "node lost";
  kill.skip_hits = 2;
  kill.max_fires = 1;
  ScopedFault fault(7200, kShardExec, kill);

  constexpr int kClients = 4;
  std::vector<std::string> errors(kClients);
  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      WireClient client;
      Status st = client.Connect(server.port());
      if (!st.ok()) {
        errors[c] = "connect: " + st.ToString();
        return;
      }
      for (size_t qi = 0; qi < kCorpusSize; ++qi) {
        auto r = client.Query(kCorpus[qi]);
        if (!r.ok()) {
          errors[c] = std::string(kCorpus[qi]) + ": " + r.status().ToString();
          return;
        }
        got[c].push_back(ResultKey(*r));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(errors[c].empty()) << "client " << c << ": " << errors[c];
    for (size_t qi = 0; qi < kCorpusSize; ++qi) {
      EXPECT_EQ(got[c][qi], base[qi])
          << "client " << c << " diverged on corpus query " << qi
          << " during node-kill storm";
    }
  }
  server.Stop();
}

}  // namespace
}  // namespace dashdb
