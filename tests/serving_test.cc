// Concurrent multi-session serving: N sessions x M statements against ONE
// engine must behave exactly like each session's statement stream run
// serially — concurrency is a throughput lever, never a semantic one.
// Covers the in-process session API and the wire server, metric/admission
// counter consistency (via MetricDeltaScope — no global resets, so the
// assertions stay valid with other sessions in flight), and concurrent
// DDL. Labeled `serve`; runs under the ASan/TSan sweeps in
// scripts/check.sh.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/engine.h"

namespace dashdb {
namespace {

constexpr int kSessions = 8;
constexpr int kRounds = 10;

/// Canonical per-statement outcome: columns, rows, affected count, message
/// — everything a client can observe.
std::string StatementKey(const QueryResult& r) {
  std::ostringstream os;
  for (const auto& c : r.columns) os << c.name << '|';
  os << '\n';
  for (size_t i = 0; i < r.rows.num_rows(); ++i) {
    for (size_t c = 0; c < r.rows.columns.size(); ++c) {
      os << r.rows.columns[c].GetValue(i).ToString() << '|';
    }
    os << '\n';
  }
  os << "affected=" << r.affected_rows << " msg=" << r.message;
  return os.str();
}

/// Shared read-only table; sessions never mutate it concurrently (column
/// scans are thread-compatible, not thread-safe vs mutation).
void SeedItems(Engine* engine) {
  TableSchema schema("PUBLIC", "ITEMS",
                     {{"ID", TypeId::kInt64, false, 0, false},
                      {"GRP", TypeId::kInt64, true, 0, false},
                      {"V", TypeId::kInt64, true, 0, false},
                      {"S", TypeId::kVarchar, true, 0, false}});
  auto t = engine->CreateColumnTable(schema);
  ASSERT_TRUE(t.ok());
  RowBatch rows;
  for (int c = 0; c < 3; ++c) rows.columns.emplace_back(TypeId::kInt64);
  rows.columns.emplace_back(TypeId::kVarchar);
  for (int i = 0; i < 500; ++i) {
    rows.columns[0].AppendInt(i);
    rows.columns[1].AppendInt(i % 7);
    rows.columns[2].AppendInt(i * 31 % 101);
    rows.columns[3].AppendString("s" + std::to_string(i % 11));
  }
  ASSERT_TRUE(t.value()->Append(rows).ok());
}

std::unique_ptr<Engine> MakeEngine(int dop = 2) {
  EngineConfig cfg;
  cfg.query_parallelism = dop;
  auto engine = std::make_unique<Engine>(cfg);
  SeedItems(engine.get());
  return engine;
}

/// Session `sid`'s deterministic statement stream: private-table DML
/// interleaved with shared-table reads. Private tables are per-session, so
/// concurrent streams never mutate the same storage.
std::vector<std::string> SessionScript(int sid) {
  std::vector<std::string> out;
  const std::string pt = "P" + std::to_string(sid);
  out.push_back("CREATE TABLE " + pt + " (K BIGINT, V BIGINT)");
  for (int j = 0; j < kRounds; ++j) {
    out.push_back("INSERT INTO " + pt + " VALUES (" + std::to_string(j) +
                  ", " + std::to_string((sid + 1) * (j + 3)) + ")");
    out.push_back("SELECT COUNT(*), SUM(V), MIN(V), MAX(V) FROM " + pt);
    out.push_back("SELECT GRP, COUNT(*), SUM(V) FROM ITEMS WHERE V > " +
                  std::to_string((j * 7 + sid) % 60) +
                  " GROUP BY GRP ORDER BY GRP");
    if (j % 3 == 2) {
      out.push_back("UPDATE " + pt + " SET V = V + 1 WHERE K = " +
                    std::to_string(j - 1));
      out.push_back("SELECT K, V FROM " + pt + " ORDER BY K");
    }
  }
  out.push_back("DROP TABLE " + pt);
  return out;
}

/// Ground truth: every session's stream, run serially on an identically
/// seeded engine. (Out-param so ASSERT can bail.)
void SerialBaseline(std::vector<std::vector<std::string>>* keys) {
  auto engine = MakeEngine();
  keys->assign(kSessions, {});
  for (int sid = 0; sid < kSessions; ++sid) {
    auto session = engine->CreateSession();
    for (const auto& sql : SessionScript(sid)) {
      auto r = engine->Execute(session.get(), sql);
      ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
      (*keys)[sid].push_back(StatementKey(*r));
    }
  }
}

TEST(ServingTest, InProcessConcurrentSessionsMatchSerial) {
  std::vector<std::vector<std::string>> expected;
  SerialBaseline(&expected);

  auto engine = MakeEngine();
  std::vector<std::vector<std::string>> got(kSessions);
  std::vector<std::string> errors(kSessions);
  std::vector<std::thread> threads;
  for (int sid = 0; sid < kSessions; ++sid) {
    threads.emplace_back([&, sid] {
      auto session = engine->CreateSession();
      for (const auto& sql : SessionScript(sid)) {
        auto r = engine->Execute(session.get(), sql);
        if (!r.ok()) {
          errors[sid] = sql + ": " + r.status().ToString();
          return;
        }
        got[sid].push_back(StatementKey(*r));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int sid = 0; sid < kSessions; ++sid) {
    ASSERT_TRUE(errors[sid].empty()) << "session " << sid << ": "
                                     << errors[sid];
    ASSERT_EQ(got[sid].size(), expected[sid].size()) << "session " << sid;
    for (size_t i = 0; i < got[sid].size(); ++i) {
      EXPECT_EQ(got[sid][i], expected[sid][i])
          << "session " << sid << " statement " << i << " diverged";
    }
  }
}

TEST(ServingTest, WireSessionsMatchSerialAndCountersConsistent) {
  std::vector<std::vector<std::string>> expected;
  SerialBaseline(&expected);

  auto engine = MakeEngine();
  EngineBackend backend(engine.get());
  ServerConfig cfg;
  cfg.worker_threads = 4;
  Server server(&backend, cfg);
  ASSERT_TRUE(server.Start().ok());

  // Snapshot-delta, not reset: a reset would corrupt any other session's
  // counters; deltas make the assertions composable.
  MetricDeltaScope metrics;

  std::vector<std::vector<std::string>> got(kSessions);
  std::vector<std::string> errors(kSessions);
  std::vector<std::thread> threads;
  for (int sid = 0; sid < kSessions; ++sid) {
    threads.emplace_back([&, sid] {
      WireClient client;
      Status st = client.Connect(server.port());
      if (!st.ok()) {
        errors[sid] = "connect: " + st.ToString();
        return;
      }
      for (const auto& sql : SessionScript(sid)) {
        auto r = client.Query(sql);
        if (!r.ok()) {
          errors[sid] = sql + ": " + r.status().ToString();
          return;
        }
        got[sid].push_back(StatementKey(*r));
      }
      client.Close();
    });
  }
  for (auto& t : threads) t.join();
  for (int sid = 0; sid < kSessions; ++sid) {
    ASSERT_TRUE(errors[sid].empty()) << "session " << sid << ": "
                                     << errors[sid];
    ASSERT_EQ(got[sid].size(), expected[sid].size()) << "session " << sid;
    for (size_t i = 0; i < got[sid].size(); ++i) {
      EXPECT_EQ(got[sid][i], expected[sid][i])
          << "session " << sid << " wire statement " << i << " diverged";
    }
  }

  // Counter consistency across the storm.
  int64_t stmts_per_session = 0;
  int64_t selects_per_session = 0;
  for (const auto& sql : SessionScript(0)) {
    ++stmts_per_session;
    if (sql.rfind("SELECT", 0) == 0) ++selects_per_session;
  }
  EXPECT_EQ(metrics.Delta("server.connections_accepted"), kSessions);
  EXPECT_EQ(metrics.Delta("server.queries"),
            kSessions * stmts_per_session);
  // Every SELECT admits exactly once (slots are generous: nothing shed).
  EXPECT_EQ(metrics.Delta("exec.admission_admitted"),
            kSessions * selects_per_session);
  EXPECT_EQ(metrics.Delta("exec.admission_shed"), 0);
  EXPECT_EQ(engine->admission().queued(), 0);
  EXPECT_EQ(engine->admission().running(QueryClass::kCheap), 0);
  EXPECT_EQ(engine->admission().running(QueryClass::kExpensive), 0);

  server.Stop();
}

TEST(ServingTest, TinyAdmissionPoolsStayConsistentUnderStorm) {
  EngineConfig cfg;
  cfg.query_parallelism = 1;
  cfg.admission.cheap_slots = 1;
  cfg.admission.expensive_slots = 1;
  cfg.admission.max_queued = 2;
  cfg.admission.queue_timeout_seconds = 0.05;
  Engine engine(cfg);
  SeedItems(&engine);

  MetricDeltaScope metrics;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 20;
  std::vector<std::thread> threads;
  std::atomic<int64_t> ok_count{0}, shed_count{0};
  std::atomic<int> bad_errors{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto session = engine.CreateSession();
      for (int i = 0; i < kPerThread; ++i) {
        auto r = engine.Execute(session.get(),
                                "SELECT GRP, COUNT(*) FROM ITEMS "
                                "GROUP BY GRP ORDER BY GRP");
        if (r.ok()) {
          ++ok_count;
        } else if (r.status().IsResourceExhausted()) {
          ++shed_count;  // queue full or queue timeout: the only legal error
        } else {
          ++bad_errors;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad_errors.load(), 0);
  EXPECT_EQ(ok_count.load() + shed_count.load(), kThreads * kPerThread);
  // Ledger closes: every attempt was either admitted or shed, and nothing
  // is left running or queued.
  EXPECT_EQ(metrics.Delta("exec.admission_admitted"), ok_count.load());
  EXPECT_EQ(metrics.Delta("exec.admission_shed"), shed_count.load());
  EXPECT_EQ(engine.admission().queued(), 0);
  EXPECT_EQ(engine.admission().running(QueryClass::kCheap), 0);
  EXPECT_EQ(engine.admission().running(QueryClass::kExpensive), 0);
  // The engine still serves after the storm.
  auto session = engine.CreateSession();
  auto r = engine.Execute(session.get(), "SELECT COUNT(*) FROM ITEMS");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.columns[0].GetValue(0).AsInt(), 500);
}

TEST(ServingTest, ConcurrentDdlAndQueriesDoNotInterfere) {
  auto engine = MakeEngine();
  EngineBackend backend(engine.get());
  Server server(&backend);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> ddl_errors{0}, query_errors{0};
  // Churners: create/fill/drop private tables in a loop (each churn bumps
  // the catalog version, invalidating cached plans mid-storm).
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      WireClient c;
      if (!c.Connect(server.port()).ok()) {
        ++ddl_errors;
        return;
      }
      const std::string name = "CHURN" + std::to_string(t);
      for (int i = 0; i < 15; ++i) {
        bool ok = c.Query("CREATE TABLE " + name + " (X BIGINT)").ok() &&
                  c.Query("INSERT INTO " + name + " VALUES (1), (2)").ok() &&
                  c.Query("DROP TABLE " + name).ok();
        if (!ok) ++ddl_errors;
      }
    });
  }
  // Readers: shared-table aggregates must stay correct throughout.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      WireClient c;
      if (!c.Connect(server.port()).ok()) {
        ++query_errors;
        return;
      }
      while (!stop.load()) {
        auto r = c.Query("SELECT COUNT(*), SUM(V) FROM ITEMS");
        if (!r.ok() || r->rows.columns[0].GetValue(0).AsInt() != 500) {
          ++query_errors;
        }
      }
    });
  }
  threads[0].join();
  threads[1].join();
  stop.store(true);
  for (size_t i = 2; i < threads.size(); ++i) threads[i].join();
  EXPECT_EQ(ddl_errors.load(), 0);
  EXPECT_EQ(query_errors.load(), 0);
  server.Stop();
}

}  // namespace
}  // namespace dashdb
