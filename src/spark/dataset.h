// sparklite: a from-scratch mini dataflow engine standing in for Apache
// Spark (paper II.D). Same execution concepts: an immutable, lazily
// evaluated Dataset of rows split into partitions; narrow transformations
// (map/filter) compose into stages that run partition-parallel on workers;
// actions (collect/count/reduce/aggregate) trigger execution.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/threadpool.h"
#include "common/value.h"

namespace dashdb {
namespace spark {

using Row = std::vector<Value>;
using Partition = std::vector<Row>;

using MapFn = std::function<Row(const Row&)>;
using FilterFn = std::function<bool(const Row&)>;

/// Lazily evaluated distributed dataset.
class Dataset {
 public:
  /// Source dataset from materialized partitions.
  static Dataset FromPartitions(std::vector<Partition> parts);

  /// Narrow transformations (lazy).
  Dataset Map(MapFn fn) const;
  Dataset Filter(FilterFn fn) const;

  size_t num_partitions() const;

  /// Actions. `pool` supplies the worker threads (one partition per task).
  Result<std::vector<Row>> Collect(ThreadPool* pool) const;
  Result<size_t> Count(ThreadPool* pool) const;

  /// Per-partition aggregation followed by a serial merge — the shape of
  /// Spark's treeAggregate used by MLlib-style algorithms (and by the GLM).
  ///
  /// `seq` folds one row into the partition-local accumulator; `comb`
  /// merges two accumulators.
  template <typename Acc>
  Result<Acc> Aggregate(ThreadPool* pool, Acc zero,
                        std::function<void(Acc&, const Row&)> seq,
                        std::function<void(Acc&, const Acc&)> comb) const {
    std::vector<Acc> partials(num_partitions(), zero);
    Status status = ForEachPartition(
        pool, [&](size_t p, const Partition& rows) {
          for (const Row& r : rows) seq(partials[p], r);
        });
    DASHDB_RETURN_IF_ERROR(status);
    Acc out = zero;
    for (const Acc& p : partials) comb(out, p);
    return out;
  }

  /// Runs the transformation pipeline and hands each materialized partition
  /// to `fn`, partition-parallel on `pool`.
  Status ForEachPartition(
      ThreadPool* pool,
      const std::function<void(size_t, const Partition&)>& fn) const;

 private:
  struct Stage {
    MapFn map;        // one of the two set
    FilterFn filter;
  };
  struct State {
    std::vector<Partition> source;
    std::vector<Stage> stages;
  };
  std::shared_ptr<const State> state_;
};

}  // namespace spark
}  // namespace dashdb
