// The Spark Dispatcher and per-user Cluster Managers (paper II.D, Figure 6):
// "The Dispatcher takes care that for each user a different Spark Cluster
// Manager gets created and that Spark only gets the memory configured" —
// user isolation means a user can only see and cancel their own jobs.
//
// The job surface mirrors the paper's integration points: a REST-like API
// (submit / status / cancel / list) and, via Engine::RegisterProcedure, the
// SQL stored-procedure interface.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/threadpool.h"

namespace dashdb {
namespace spark {

/// One per-user Spark cluster: worker threads sized to the node layout and
/// a memory budget carved out by the autoconfigurator.
class ClusterManager {
 public:
  ClusterManager(std::string user, int workers, size_t memory_bytes)
      : user_(std::move(user)),
        memory_bytes_(memory_bytes),
        pool_(workers) {}

  const std::string& user() const { return user_; }
  size_t memory_bytes() const { return memory_bytes_; }
  ThreadPool* pool() { return &pool_; }

 private:
  std::string user_;
  size_t memory_bytes_;
  ThreadPool pool_;
};

enum class JobState : uint8_t {
  kQueued = 0,
  kRunning,
  kFinished,
  kFailed,
  kCancelled,
};

const char* JobStateName(JobState s);

struct JobInfo {
  int64_t id = 0;
  std::string user;
  std::string name;
  JobState state = JobState::kQueued;
  double seconds = 0;
  std::string result;   ///< final text of the job
  std::string error;
};

/// The Dispatcher + job registry. Jobs run synchronously on the owning
/// user's cluster manager (batch mode); the REST-ish handle API is
/// preserved so monitoring/cancellation semantics can be exercised.
class SparkDispatcher {
 public:
  /// `workers_per_user` models one worker per database node (data locality,
  /// Figure 6); `memory_per_user` comes from AutoConfig::spark_bytes.
  SparkDispatcher(int workers_per_user, size_t memory_per_user)
      : workers_per_user_(workers_per_user),
        memory_per_user_(memory_per_user) {}

  /// Per-user manager, created on first use (paper: "for each user Apache
  /// Spark starts an own Spark Cluster Manager").
  ClusterManager* ManagerFor(const std::string& user);

  /// Submits and runs a job; returns its id. The job body receives the
  /// user's cluster manager.
  using JobFn = std::function<Result<std::string>(ClusterManager*)>;
  Result<int64_t> Submit(const std::string& user, const std::string& name,
                         const JobFn& fn);

  /// Job status; NotFound when the job belongs to a different user
  /// (isolation: "different users could not see what other users are
  /// doing").
  Result<JobInfo> GetStatus(const std::string& user, int64_t job_id) const;

  /// Cancels a queued job (running/finished jobs are past cancellation).
  Status Cancel(const std::string& user, int64_t job_id);

  /// This user's jobs only.
  std::vector<JobInfo> ListJobs(const std::string& user) const;

  size_t num_managers() const;

 private:
  int workers_per_user_;
  size_t memory_per_user_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ClusterManager>> managers_;
  std::map<int64_t, JobInfo> jobs_;
  std::atomic<int64_t> next_job_id_{1};
};

}  // namespace spark
}  // namespace dashdb
