#include "spark/dataset.h"

namespace dashdb {
namespace spark {

Dataset Dataset::FromPartitions(std::vector<Partition> parts) {
  Dataset d;
  auto state = std::make_shared<State>();
  state->source = std::move(parts);
  d.state_ = std::move(state);
  return d;
}

Dataset Dataset::Map(MapFn fn) const {
  Dataset d;
  auto state = std::make_shared<State>(*state_);
  Stage s;
  s.map = std::move(fn);
  state->stages.push_back(std::move(s));
  d.state_ = std::move(state);
  return d;
}

Dataset Dataset::Filter(FilterFn fn) const {
  Dataset d;
  auto state = std::make_shared<State>(*state_);
  Stage s;
  s.filter = std::move(fn);
  state->stages.push_back(std::move(s));
  d.state_ = std::move(state);
  return d;
}

size_t Dataset::num_partitions() const {
  return state_ ? state_->source.size() : 0;
}

Status Dataset::ForEachPartition(
    ThreadPool* pool,
    const std::function<void(size_t, const Partition&)>& fn) const {
  if (!state_) return Status::Internal("empty dataset");
  const State& st = *state_;
  auto run_one = [&st, &fn](size_t p) {
    Partition cur = st.source[p];
    for (const Stage& stage : st.stages) {
      Partition next;
      next.reserve(cur.size());
      for (Row& r : cur) {
        if (stage.filter) {
          if (stage.filter(r)) next.push_back(std::move(r));
        } else {
          next.push_back(stage.map(r));
        }
      }
      cur = std::move(next);
    }
    fn(p, cur);
  };
  if (pool) {
    pool->ParallelFor(st.source.size(), run_one);
  } else {
    for (size_t p = 0; p < st.source.size(); ++p) run_one(p);
  }
  return Status::OK();
}

Result<std::vector<Row>> Dataset::Collect(ThreadPool* pool) const {
  std::vector<std::vector<Row>> per_part(num_partitions());
  DASHDB_RETURN_IF_ERROR(ForEachPartition(
      pool, [&](size_t p, const Partition& rows) { per_part[p] = rows; }));
  std::vector<Row> out;
  for (auto& part : per_part) {
    for (auto& r : part) out.push_back(std::move(r));
  }
  return out;
}

Result<size_t> Dataset::Count(ThreadPool* pool) const {
  std::vector<size_t> per_part(num_partitions(), 0);
  DASHDB_RETURN_IF_ERROR(ForEachPartition(
      pool,
      [&](size_t p, const Partition& rows) { per_part[p] = rows.size(); }));
  size_t total = 0;
  for (size_t c : per_part) total += c;
  return total;
}

}  // namespace spark
}  // namespace dashdb
