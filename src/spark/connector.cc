#include "spark/connector.h"

#include <algorithm>

#include "common/stopwatch.h"

namespace dashdb {
namespace spark {

namespace {

size_t RowBytes(const Row& r) {
  size_t b = 0;
  for (const Value& v : r) {
    if (v.is_null()) {
      b += 1;
    } else if (v.type() == TypeId::kVarchar) {
      b += v.AsString().size() + 2;
    } else {
      b += 8;
    }
  }
  return b;
}

}  // namespace

Result<Dataset> TableToDataset(MppDatabase* db, const std::string& schema,
                               const std::string& table,
                               const TransferOptions& opts,
                               TransferReport* report) {
  std::string sql = "SELECT * FROM " + schema + "." + table;
  if (!opts.pushdown_where.empty()) {
    sql += " WHERE " + opts.pushdown_where;
  }
  std::vector<Partition> parts(db->num_shards());
  std::vector<size_t> shard_bytes(db->num_shards(), 0);
  double scan_seconds = 0;
  for (int s = 0; s < db->num_shards(); ++s) {
    Engine* engine = db->shard_engine(s);
    auto session = engine->CreateSession();
    Stopwatch sw;
    DASHDB_ASSIGN_OR_RETURN(QueryResult qr,
                            engine->Execute(session.get(), sql));
    scan_seconds += sw.ElapsedSeconds();
    Partition& part = parts[s];
    part.reserve(qr.rows.num_rows());
    for (size_t i = 0; i < qr.rows.num_rows(); ++i) {
      Row row = qr.rows.Row(i);
      shard_bytes[s] += RowBytes(row);
      part.push_back(std::move(row));
    }
  }
  if (report) {
    report->rows = 0;
    report->bytes = 0;
    for (int s = 0; s < db->num_shards(); ++s) {
      report->rows += parts[s].size();
      report->bytes += shard_bytes[s];
    }
    report->scan_seconds = scan_seconds;
    const double bytes_per_sec = opts.socket_bandwidth_mbps * 1e6 / 8;
    const double overhead_s = report->rows * opts.per_row_overhead_us * 1e-6;
    if (opts.collocated) {
      // Per-node links drain in parallel: makespan = slowest node.
      const ClusterTopology* topo =
          const_cast<MppDatabase*>(db)->topology();
      std::vector<double> per_node(topo->num_nodes(), 0);
      for (int s = 0; s < db->num_shards(); ++s) {
        per_node[topo->OwnerOf(s)] +=
            shard_bytes[s] / bytes_per_sec;
      }
      double slowest = 0;
      for (double t : per_node) slowest = std::max(slowest, t);
      report->modeled_seconds =
          slowest + overhead_s / std::max(1, topo->num_alive_nodes());
    } else {
      // Remote JDBC: every byte serializes through a single coordinator
      // connection.
      report->modeled_seconds = report->bytes / bytes_per_sec + overhead_s;
    }
  }
  return Dataset::FromPartitions(std::move(parts));
}

}  // namespace spark
}  // namespace dashdb
