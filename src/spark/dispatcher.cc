#include "spark/dispatcher.h"

namespace dashdb {
namespace spark {

const char* JobStateName(JobState s) {
  switch (s) {
    case JobState::kQueued: return "QUEUED";
    case JobState::kRunning: return "RUNNING";
    case JobState::kFinished: return "FINISHED";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "?";
}

ClusterManager* SparkDispatcher::ManagerFor(const std::string& user) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = managers_.find(user);
  if (it == managers_.end()) {
    it = managers_
             .emplace(user, std::make_unique<ClusterManager>(
                                user, workers_per_user_, memory_per_user_))
             .first;
  }
  return it->second.get();
}

Result<int64_t> SparkDispatcher::Submit(const std::string& user,
                                        const std::string& name,
                                        const JobFn& fn) {
  ClusterManager* mgr = ManagerFor(user);
  int64_t id = next_job_id_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lk(mu_);
    JobInfo info;
    info.id = id;
    info.user = user;
    info.name = name;
    info.state = JobState::kRunning;
    jobs_[id] = info;
  }
  Stopwatch sw;
  Result<std::string> result = fn(mgr);
  {
    std::lock_guard<std::mutex> lk(mu_);
    JobInfo& info = jobs_[id];
    info.seconds = sw.ElapsedSeconds();
    if (info.state == JobState::kCancelled) {
      // Cancelled mid-flight; keep the cancellation visible.
    } else if (result.ok()) {
      info.state = JobState::kFinished;
      info.result = *result;
    } else {
      info.state = JobState::kFailed;
      info.error = result.status().ToString();
    }
  }
  if (!result.ok()) return result.status();
  return id;
}

Result<JobInfo> SparkDispatcher::GetStatus(const std::string& user,
                                           int64_t job_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = jobs_.find(job_id);
  // User isolation: other users' jobs are indistinguishable from absent.
  if (it == jobs_.end() || it->second.user != user) {
    return Status::NotFound("job " + std::to_string(job_id));
  }
  return it->second;
}

Status SparkDispatcher::Cancel(const std::string& user, int64_t job_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.user != user) {
    return Status::NotFound("job " + std::to_string(job_id));
  }
  if (it->second.state == JobState::kFinished ||
      it->second.state == JobState::kFailed) {
    return Status::InvalidArgument("job already completed");
  }
  it->second.state = JobState::kCancelled;
  return Status::OK();
}

std::vector<JobInfo> SparkDispatcher::ListJobs(const std::string& user) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<JobInfo> out;
  for (const auto& [id, info] : jobs_) {
    if (info.user == user) out.push_back(info);
  }
  return out;
}

size_t SparkDispatcher::num_managers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return managers_.size();
}

}  // namespace spark
}  // namespace dashdb
