// Prepackaged GLM analytics (paper II.D.1: "prepackaged Stored Procedures
// which allows to run ready to use analytic algorithms like GLM from within
// SQL"). Linear and logistic regression trained by full-batch gradient
// descent, with per-partition gradient computation and a tree-style merge —
// the MLlib execution shape on the sparklite engine.
#pragma once

#include <string>
#include <vector>

#include "spark/dataset.h"
#include "spark/dispatcher.h"
#include "sql/engine.h"

namespace dashdb {
namespace spark {

struct GlmConfig {
  bool logistic = true;       ///< false = linear (identity link)
  int iterations = 100;
  double learning_rate = 0.1;
  double l2 = 0.0;            ///< ridge penalty
};

struct GlmModel {
  std::vector<double> weights;  ///< weights[0] = intercept
  bool logistic = true;
  double final_loss = 0;
  int iterations_run = 0;

  /// Linear predictor for a feature vector (without intercept slot).
  double Predict(const std::vector<double>& x) const;
  std::string Describe() const;
};

/// Trains on `data`: feature columns + label column are positions in each
/// Row. NULL-bearing rows are skipped. Executes partition-parallel on
/// `pool` (the user's ClusterManager pool).
Result<GlmModel> TrainGlm(const Dataset& data,
                          const std::vector<int>& feature_cols, int label_col,
                          const GlmConfig& config, ThreadPool* pool);

/// Registers the SQL stored procedure
///   CALL IDAX.GLM('<schema.table>', '<label_col>', '<f1,f2,..>',
///                 <iterations>, '<LOGISTIC|LINEAR>')
/// on `engine`, running the training as a dispatcher job for the session
/// user (the SQL-level Spark integration surface of paper II.D.1).
void RegisterGlmProcedure(Engine* engine, SparkDispatcher* dispatcher);

}  // namespace spark
}  // namespace dashdb
