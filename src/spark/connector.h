// Database <-> Spark data transfer (paper II.D.2, Figure 7).
//
// "Each Spark Worker fetches the data collocated to a local shard" over a
// socket channel, "to optimize the transfer an additional where clause
// could be pushed to the database to transfer only the data really needed".
// This connector implements both levers and models the resulting transfer
// time so their effect can be measured (bench_spark_transfer):
//   - collocated: one worker per node drains that node's shards in
//     parallel; remote (plain JDBC) funnels every row through one link.
//   - pushdown: the WHERE runs inside the columnar engine (on compressed
//     data, with data skipping) before a single byte moves.
#pragma once

#include <optional>
#include <string>

#include "mpp/mpp.h"
#include "spark/dataset.h"

namespace dashdb {
namespace spark {

struct TransferOptions {
  bool collocated = true;
  /// SQL text appended as "WHERE <pushdown_where>" to the shard-side scan.
  std::string pushdown_where;
  double socket_bandwidth_mbps = 800.0;  ///< per node<->worker link
  double per_row_overhead_us = 2.0;      ///< serialization per row
};

struct TransferReport {
  size_t rows = 0;
  size_t bytes = 0;
  /// Modeled wall-clock of the transfer under the chosen mode.
  double modeled_seconds = 0;
  /// Measured database-side scan seconds (sum over shards).
  double scan_seconds = 0;
};

/// Materializes a table into a Dataset with one partition per shard.
Result<Dataset> TableToDataset(MppDatabase* db, const std::string& schema,
                               const std::string& table,
                               const TransferOptions& opts,
                               TransferReport* report);

}  // namespace spark
}  // namespace dashdb
