#include "spark/glm.h"

#include <cmath>
#include <sstream>

namespace dashdb {
namespace spark {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

/// Gradient + loss accumulator for one pass.
struct GradAcc {
  std::vector<double> grad;
  double loss = 0;
  size_t n = 0;
};

}  // namespace

double GlmModel::Predict(const std::vector<double>& x) const {
  double z = weights[0];
  for (size_t i = 0; i < x.size(); ++i) z += weights[i + 1] * x[i];
  return logistic ? Sigmoid(z) : z;
}

std::string GlmModel::Describe() const {
  std::ostringstream os;
  os << (logistic ? "logistic" : "linear") << " glm, loss=" << final_loss
     << ", iters=" << iterations_run << ", w=[";
  for (size_t i = 0; i < weights.size(); ++i) {
    if (i) os << ", ";
    os << weights[i];
  }
  os << "]";
  return os.str();
}

Result<GlmModel> TrainGlm(const Dataset& data,
                          const std::vector<int>& feature_cols, int label_col,
                          const GlmConfig& config, ThreadPool* pool) {
  const size_t d = feature_cols.size() + 1;  // + intercept
  GlmModel model;
  model.logistic = config.logistic;
  model.weights.assign(d, 0.0);

  for (int iter = 0; iter < config.iterations; ++iter) {
    GradAcc zero;
    zero.grad.assign(d, 0.0);
    // Per-partition gradient (map) + serial combine (reduce): the
    // treeAggregate shape.
    auto seq = [&](GradAcc& acc, const Row& row) {
      std::vector<double> x(feature_cols.size());
      for (size_t f = 0; f < feature_cols.size(); ++f) {
        const Value& v = row[feature_cols[f]];
        if (v.is_null()) return;
        x[f] = v.AsDouble();
      }
      const Value& lv = row[label_col];
      if (lv.is_null()) return;
      double y = lv.AsDouble();
      double z = model.weights[0];
      for (size_t f = 0; f < x.size(); ++f) z += model.weights[f + 1] * x[f];
      double pred = config.logistic ? Sigmoid(z) : z;
      double err = pred - y;
      acc.grad[0] += err;
      for (size_t f = 0; f < x.size(); ++f) acc.grad[f + 1] += err * x[f];
      if (config.logistic) {
        double p = std::min(std::max(pred, 1e-12), 1.0 - 1e-12);
        acc.loss += -(y * std::log(p) + (1 - y) * std::log(1 - p));
      } else {
        acc.loss += 0.5 * err * err;
      }
      ++acc.n;
    };
    auto comb = [](GradAcc& a, const GradAcc& b) {
      if (a.grad.size() != b.grad.size()) a.grad.assign(b.grad.size(), 0.0);
      for (size_t i = 0; i < b.grad.size(); ++i) a.grad[i] += b.grad[i];
      a.loss += b.loss;
      a.n += b.n;
    };
    DASHDB_ASSIGN_OR_RETURN(
        GradAcc total,
        data.Aggregate<GradAcc>(pool, zero, seq, comb));
    if (total.n == 0) {
      return Status::InvalidArgument("GLM: no complete training rows");
    }
    for (size_t i = 0; i < d; ++i) {
      double g = total.grad[i] / total.n;
      if (i > 0) g += config.l2 * model.weights[i];
      model.weights[i] -= config.learning_rate * g;
    }
    model.final_loss = total.loss / total.n;
    model.iterations_run = iter + 1;
  }
  return model;
}

void RegisterGlmProcedure(Engine* engine, SparkDispatcher* dispatcher) {
  engine->RegisterProcedure(
      "IDAX.GLM",
      [dispatcher](const std::vector<Value>& args, Session* session,
                   Engine* eng) -> Result<QueryResult> {
        if (args.size() < 3) {
          return Status::InvalidArgument(
              "IDAX.GLM(table, label, features[, iterations[, kind]])");
        }
        std::string table = args[0].AsString();
        std::string label = args[1].AsString();
        std::string features_csv = args[2].AsString();
        GlmConfig config;
        if (args.size() >= 4 && !args[3].is_null()) {
          config.iterations = static_cast<int>(args[3].AsInt());
        }
        if (args.size() >= 5 && !args[4].is_null()) {
          config.logistic = NormalizeIdent(args[4].AsString()) != "LINEAR";
        }
        // Resolve the table.
        std::string schema = session->default_schema();
        std::string name = table;
        size_t dot = table.find('.');
        if (dot != std::string::npos) {
          schema = table.substr(0, dot);
          name = table.substr(dot + 1);
        }
        DASHDB_ASSIGN_OR_RETURN(auto entry, eng->GetTable(schema, name));
        const TableSchema& ts = entry->schema;
        int label_idx = ts.FindColumn(label);
        if (label_idx < 0) {
          return Status::SemanticError("GLM: label column not found");
        }
        std::vector<int> features;
        std::stringstream ss(features_csv);
        std::string item;
        while (std::getline(ss, item, ',')) {
          int idx = ts.FindColumn(item);
          if (idx < 0) {
            return Status::SemanticError("GLM: feature " + item +
                                         " not found");
          }
          features.push_back(idx);
        }
        // Fetch the table into partitions (shard-free single-node path:
        // partition by scan batches).
        auto sql_session = eng->CreateSession();
        DASHDB_ASSIGN_OR_RETURN(
            QueryResult qr,
            eng->Execute(sql_session.get(),
                         "SELECT * FROM " + schema + "." + name));
        std::vector<Partition> parts(4);
        for (size_t i = 0; i < qr.rows.num_rows(); ++i) {
          parts[i % parts.size()].push_back(qr.rows.Row(i));
        }
        Dataset data = Dataset::FromPartitions(std::move(parts));
        // Run as a dispatcher job under the session user.
        GlmModel model;
        auto job = dispatcher->Submit(
            "sql-user", "IDAX.GLM " + table,
            [&](ClusterManager* mgr) -> Result<std::string> {
              DASHDB_ASSIGN_OR_RETURN(
                  model,
                  TrainGlm(data, features, label_idx, config, mgr->pool()));
              return model.Describe();
            });
        DASHDB_RETURN_IF_ERROR(job.status());
        QueryResult out;
        out.message = model.Describe();
        // Also expose the coefficients as a result row set.
        out.columns = {{"COEFF_INDEX", TypeId::kInt64},
                       {"COEFF", TypeId::kDouble}};
        out.rows.columns.emplace_back(TypeId::kInt64);
        out.rows.columns.emplace_back(TypeId::kDouble);
        for (size_t i = 0; i < model.weights.size(); ++i) {
          out.rows.columns[0].AppendInt(static_cast<int64_t>(i));
          out.rows.columns[1].AppendDouble(model.weights[i]);
        }
        return out;
      });
}

}  // namespace spark
}  // namespace dashdb
