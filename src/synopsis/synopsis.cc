#include "synopsis/synopsis.h"

#include <algorithm>

namespace dashdb {

void IntSynopsis::AddStride(const int64_t* values, size_t n,
                            const BitVector* nulls, size_t null_offset) {
  StrideSummary s;
  for (size_t i = 0; i < n; ++i) {
    if (nulls && nulls->Get(null_offset + i)) {
      ++s.null_count;
      continue;
    }
    if (!s.has_non_null) {
      s.min = s.max = values[i];
      s.has_non_null = true;
    } else {
      s.min = std::min(s.min, values[i]);
      s.max = std::max(s.max, values[i]);
    }
  }
  strides_.push_back(s);
}

bool IntSynopsis::MayContain(size_t i, const int64_t* lo, bool lo_incl,
                             const int64_t* hi, bool hi_incl) const {
  const StrideSummary& s = strides_[i];
  if (!s.has_non_null) return false;
  if (lo) {
    if (lo_incl ? (s.max < *lo) : (s.max <= *lo)) return false;
  }
  if (hi) {
    if (hi_incl ? (s.min > *hi) : (s.min >= *hi)) return false;
  }
  return true;
}

size_t IntSynopsis::SkipStrides(const int64_t* lo, bool lo_incl,
                                const int64_t* hi, bool hi_incl,
                                BitVector* mask) const {
  size_t skipped = 0;
  size_t n = std::min(mask->size(), strides_.size());
  for (size_t i = 0; i < n; ++i) {
    if (!mask->Get(i)) continue;
    if (!MayContain(i, lo, lo_incl, hi, hi_incl)) {
      mask->Clear(i);
      ++skipped;
    }
  }
  return skipped;
}

size_t IntSynopsis::CompressedByteSize() const {
  if (strides_.empty()) return 0;
  std::vector<int64_t> mins, maxs;
  mins.reserve(strides_.size());
  maxs.reserve(strides_.size());
  for (const auto& s : strides_) {
    mins.push_back(s.has_non_null ? s.min : 0);
    maxs.push_back(s.has_non_null ? s.max : 0);
  }
  ForEncoded emin = ForEncode(mins.data(), mins.size(), nullptr);
  ForEncoded emax = ForEncode(maxs.data(), maxs.size(), nullptr);
  return emin.ByteSize() + emax.ByteSize() + (strides_.size() + 7) / 8;
}

bool IntSynopsis::GlobalRange(int64_t* lo, int64_t* hi) const {
  bool any = false;
  for (const auto& s : strides_) {
    if (!s.has_non_null) continue;
    if (!any) {
      *lo = s.min;
      *hi = s.max;
      any = true;
    } else {
      *lo = std::min(*lo, s.min);
      *hi = std::max(*hi, s.max);
    }
  }
  return any;
}

size_t IntSynopsis::TotalNulls() const {
  size_t n = 0;
  for (const auto& s : strides_) n += s.null_count;
  return n;
}

void StringSynopsis::AddStride(const std::string* values, size_t n,
                               const BitVector* nulls, size_t null_offset) {
  Entry e;
  for (size_t i = 0; i < n; ++i) {
    if (nulls && nulls->Get(null_offset + i)) {
      ++e.null_count;
      continue;
    }
    if (!e.has_non_null) {
      e.min = e.max = values[i];
      e.has_non_null = true;
    } else {
      if (values[i] < e.min) e.min = values[i];
      if (values[i] > e.max) e.max = values[i];
    }
  }
  strides_.push_back(std::move(e));
}

bool StringSynopsis::MayContain(size_t i, const std::string* lo, bool lo_incl,
                                const std::string* hi, bool hi_incl) const {
  const Entry& s = strides_[i];
  if (!s.has_non_null) return false;
  if (lo) {
    if (lo_incl ? (s.max < *lo) : (s.max <= *lo)) return false;
  }
  if (hi) {
    if (hi_incl ? (s.min > *hi) : (s.min >= *hi)) return false;
  }
  return true;
}

size_t StringSynopsis::SkipStrides(const std::string* lo, bool lo_incl,
                                   const std::string* hi, bool hi_incl,
                                   BitVector* mask) const {
  size_t skipped = 0;
  size_t n = std::min(mask->size(), strides_.size());
  for (size_t i = 0; i < n; ++i) {
    if (!mask->Get(i)) continue;
    if (!MayContain(i, lo, lo_incl, hi, hi_incl)) {
      mask->Clear(i);
      ++skipped;
    }
  }
  return skipped;
}

bool StringSynopsis::GlobalRange(std::string* lo, std::string* hi) const {
  bool any = false;
  for (const auto& s : strides_) {
    if (!s.has_non_null) continue;
    if (!any) {
      *lo = s.min;
      *hi = s.max;
      any = true;
    } else {
      if (s.min < *lo) *lo = s.min;
      if (s.max > *hi) *hi = s.max;
    }
  }
  return any;
}

size_t StringSynopsis::TotalNulls() const {
  size_t n = 0;
  for (const auto& s : strides_) n += s.null_count;
  return n;
}

}  // namespace dashdb
