// Data skipping synopsis (paper II.B.4): per ~1K-tuple stride, min/max
// metadata is kept for every column. The synopsis is itself stored in the
// same compressed columnar representation as user data (FOR-encoded min and
// max columns), which is why it is ~3 orders of magnitude smaller and
// proportionally faster to scan.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bitutil.h"
#include "compression/for_encoding.h"

namespace dashdb {

/// Rows summarized per synopsis entry ("metadata is collected and stored on
/// every column for (approximately) 1K tuples").
inline constexpr size_t kStrideRows = 1024;

/// Min/max summary of one stride of one integer-backed column. The null
/// count rides along so the optimizer's cardinality estimator can derive
/// non-null fractions without a second pass (older serialized summaries
/// merge in with null_count 0 — estimates degrade, skipping is unaffected).
struct StrideSummary {
  int64_t min = 0;
  int64_t max = 0;
  bool has_non_null = false;
  uint32_t null_count = 0;
};

/// Synopsis over one integer-backed column.
class IntSynopsis {
 public:
  /// Appends the summary for the next stride.
  void AddStride(const int64_t* values, size_t n, const BitVector* nulls,
                 size_t null_offset = 0);

  /// Appends a precomputed summary (used when merging shard loads).
  void AddSummary(const StrideSummary& s) { strides_.push_back(s); }

  size_t num_strides() const { return strides_.size(); }
  const StrideSummary& stride(size_t i) const { return strides_[i]; }

  /// True when stride `i` MAY contain a value in [lo, hi] (either bound
  /// optional). False means the stride is provably skippable.
  bool MayContain(size_t i, const int64_t* lo, bool lo_incl, const int64_t* hi,
                  bool hi_incl) const;

  /// Marks skippable strides: clears bit i of *mask for every stride that
  /// provably contains no row in [lo, hi]. Returns number skipped.
  size_t SkipStrides(const int64_t* lo, bool lo_incl, const int64_t* hi,
                     bool hi_incl, BitVector* mask) const;

  /// Byte footprint when the synopsis is stored in the user-data
  /// representation (FOR-encoded min/max columns) — the quantity the paper
  /// compares against user data size.
  size_t CompressedByteSize() const;

  /// Column-wide [min, max] over every stride; false when every stride is
  /// all-NULL (or the synopsis is empty). Optimizer statistics input.
  bool GlobalRange(int64_t* lo, int64_t* hi) const;

  /// Total NULLs recorded across all strides.
  size_t TotalNulls() const;

 private:
  std::vector<StrideSummary> strides_;
};

/// Synopsis over a VARCHAR column (min/max strings per stride).
class StringSynopsis {
 public:
  void AddStride(const std::string* values, size_t n, const BitVector* nulls,
                 size_t null_offset = 0);

  size_t num_strides() const { return strides_.size(); }

  bool MayContain(size_t i, const std::string* lo, bool lo_incl,
                  const std::string* hi, bool hi_incl) const;

  size_t SkipStrides(const std::string* lo, bool lo_incl,
                     const std::string* hi, bool hi_incl,
                     BitVector* mask) const;

  /// Column-wide [min, max] strings; false when every stride is all-NULL.
  bool GlobalRange(std::string* lo, std::string* hi) const;

  /// Total NULLs recorded across all strides.
  size_t TotalNulls() const;

 private:
  struct Entry {
    std::string min, max;
    bool has_non_null = false;
    uint32_t null_count = 0;
  };
  std::vector<Entry> strides_;
};

}  // namespace dashdb
