// The database catalog: schemas, base tables, views, and Fluid Query
// nicknames (paper II.C.6). Storage objects attach through the
// StorageObject anchor so the catalog stays independent of the storage
// implementation.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"

namespace dashdb {

/// Polymorphic anchor for the physical object behind a catalog entry
/// (ColumnTable, RowTable, remote nickname handle, ...).
class StorageObject {
 public:
  virtual ~StorageObject() = default;
};

enum class EntryKind : uint8_t { kBaseTable = 0, kView, kNickname };

struct CatalogEntry {
  EntryKind kind = EntryKind::kBaseTable;
  TableSchema schema;
  std::shared_ptr<StorageObject> storage;
  /// For views: the defining SQL text and the dialect it was created under
  /// (paper II.C.2: objects remember their creation-time dialect).
  std::string view_sql;
  std::string view_dialect;
};

/// Thread-safe name -> entry map with schema support.
class Catalog {
 public:
  Catalog();

  /// Monotonic DDL version: bumped by every successful CreateSchema /
  /// DropSchema / CreateEntry / DropEntry. The engine's plan cache stamps
  /// entries with the version they were compiled against and treats a
  /// mismatch as invalidation, so DROP/CREATE anywhere in the catalog
  /// retires every cached plan without a registration protocol.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Creates a schema; AlreadyExists if present.
  Status CreateSchema(const std::string& name);
  Status DropSchema(const std::string& name);
  bool HasSchema(const std::string& name) const;

  /// Registers a table/view/nickname. AlreadyExists on duplicate names.
  Status CreateEntry(CatalogEntry entry);

  /// Drops an entry; NotFound if absent.
  Status DropEntry(const std::string& schema, const std::string& table);

  /// Looks up an entry; NotFound if absent. The returned pointer stays valid
  /// until the entry is dropped.
  Result<std::shared_ptr<CatalogEntry>> Lookup(const std::string& schema,
                                               const std::string& table) const;

  bool HasEntry(const std::string& schema, const std::string& table) const;

  /// All entries of a schema (snapshot), sorted by name.
  std::vector<std::shared_ptr<CatalogEntry>> ListEntries(
      const std::string& schema) const;

  /// Every schema name (snapshot), sorted.
  std::vector<std::string> ListSchemas() const;

  /// Total table count across schemas (catalog-size telemetry used by the
  /// customer-workload bench, which builds paper-scale catalogs).
  size_t TableCount() const;

 private:
  static std::string Key(const std::string& schema, const std::string& table);

  mutable std::mutex mu_;
  std::atomic<uint64_t> version_{1};
  std::map<std::string, bool> schemas_;
  std::map<std::string, std::shared_ptr<CatalogEntry>> entries_;
};

}  // namespace dashdb
