// Table schema metadata: column definitions, table organization
// (column-organized vs row-organized, paper II.B), and MPP distribution keys.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace dashdb {

/// How the table's pages are organized (paper II.B.3 / II.B.7): dashDB's
/// engine is column-organized; the row organization exists as the appliance
/// baseline for the 10-50x comparison.
enum class TableOrganization : uint8_t { kColumn = 0, kRow };

/// One column of a table.
struct ColumnDef {
  std::string name;
  TypeId type = TypeId::kInt64;
  bool nullable = true;
  /// Decimal scale (digits right of the point) when type == kDecimal.
  int decimal_scale = 0;
  /// Unique constraint — the only kind of index the columnar engine allows
  /// ("no indexes other than those enforcing uniqueness", paper II.B.7).
  bool unique = false;
};

/// Full logical schema of a table.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string schema_name, std::string table_name,
              std::vector<ColumnDef> columns,
              TableOrganization org = TableOrganization::kColumn)
      : schema_name_(std::move(schema_name)),
        table_name_(std::move(table_name)),
        columns_(std::move(columns)),
        organization_(org) {}

  const std::string& schema_name() const { return schema_name_; }
  const std::string& table_name() const { return table_name_; }
  std::string QualifiedName() const { return schema_name_ + "." + table_name_; }

  const std::vector<ColumnDef>& columns() const { return columns_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const { return columns_[i]; }

  /// Index of column `name` (case-insensitive), or -1.
  int FindColumn(const std::string& name) const;

  TableOrganization organization() const { return organization_; }
  void set_organization(TableOrganization o) { organization_ = o; }

  /// Column index used for MPP hash distribution; -1 = round-robin.
  int distribution_key() const { return distribution_key_; }
  void set_distribution_key(int idx) { distribution_key_ = idx; }

  bool is_temporary() const { return temporary_; }
  void set_temporary(bool t) { temporary_ = t; }

 private:
  std::string schema_name_ = "PUBLIC";
  std::string table_name_;
  std::vector<ColumnDef> columns_;
  TableOrganization organization_ = TableOrganization::kColumn;
  int distribution_key_ = -1;
  bool temporary_ = false;
};

/// Case-insensitive identifier normalization (SQL identifiers fold to upper
/// case unless quoted; quoting is handled by the lexer).
std::string NormalizeIdent(const std::string& s);

}  // namespace dashdb
