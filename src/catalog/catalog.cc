#include "catalog/catalog.h"

#include <algorithm>

namespace dashdb {

Catalog::Catalog() { schemas_[NormalizeIdent("PUBLIC")] = true; }

std::string Catalog::Key(const std::string& schema, const std::string& table) {
  return NormalizeIdent(schema) + "." + NormalizeIdent(table);
}

Status Catalog::CreateSchema(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  std::string n = NormalizeIdent(name);
  if (schemas_.count(n)) return Status::AlreadyExists("schema " + name);
  schemas_[n] = true;
  version_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Status Catalog::DropSchema(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  std::string n = NormalizeIdent(name);
  auto it = schemas_.find(n);
  if (it == schemas_.end()) return Status::NotFound("schema " + name);
  // Drop contained entries.
  std::string prefix = n + ".";
  for (auto e = entries_.begin(); e != entries_.end();) {
    if (e->first.rfind(prefix, 0) == 0) {
      e = entries_.erase(e);
    } else {
      ++e;
    }
  }
  schemas_.erase(it);
  version_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

bool Catalog::HasSchema(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  return schemas_.count(NormalizeIdent(name)) > 0;
}

Status Catalog::CreateEntry(CatalogEntry entry) {
  std::lock_guard<std::mutex> lk(mu_);
  std::string sn = NormalizeIdent(entry.schema.schema_name());
  if (!schemas_.count(sn)) {
    return Status::NotFound("schema " + entry.schema.schema_name());
  }
  std::string key = Key(entry.schema.schema_name(), entry.schema.table_name());
  if (entries_.count(key)) {
    return Status::AlreadyExists("table " + entry.schema.QualifiedName());
  }
  entries_[key] = std::make_shared<CatalogEntry>(std::move(entry));
  version_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Status Catalog::DropEntry(const std::string& schema, const std::string& table) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(Key(schema, table));
  if (it == entries_.end()) {
    return Status::NotFound("table " + schema + "." + table);
  }
  entries_.erase(it);
  version_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Result<std::shared_ptr<CatalogEntry>> Catalog::Lookup(
    const std::string& schema, const std::string& table) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(Key(schema, table));
  if (it == entries_.end()) {
    return Status::NotFound("table " + schema + "." + table);
  }
  return it->second;
}

bool Catalog::HasEntry(const std::string& schema,
                       const std::string& table) const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.count(Key(schema, table)) > 0;
}

std::vector<std::shared_ptr<CatalogEntry>> Catalog::ListEntries(
    const std::string& schema) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::shared_ptr<CatalogEntry>> out;
  std::string prefix = NormalizeIdent(schema) + ".";
  for (const auto& [k, v] : entries_) {
    if (k.rfind(prefix, 0) == 0) out.push_back(v);
  }
  return out;
}

std::vector<std::string> Catalog::ListSchemas() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(schemas_.size());
  for (const auto& [k, v] : schemas_) out.push_back(k);
  return out;
}

size_t Catalog::TableCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

}  // namespace dashdb
