#include "catalog/schema.h"

#include <algorithm>
#include <cctype>

namespace dashdb {

std::string NormalizeIdent(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

int TableSchema::FindColumn(const std::string& name) const {
  std::string n = NormalizeIdent(name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (NormalizeIdent(columns_[i].name) == n) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace dashdb
