// Fluid Query remote stores (paper II.C.6, Figure 5): "Multiple built in
// connectors allow you to quickly create a table nick-name to access and
// query remote database objects from Hadoop data repositories such as
// Cloudera Impala or structured database objects such as SQL Server, DB2,
// Netezza, or Oracle."
//
// Remote systems are simulated by independent mini engines with distinct
// capability profiles:
//   - SimRdbmsStore: an RDBMS-ish row store; supports predicate pushdown,
//     so selective queries transfer only matching rows.
//   - SimHadoopStore: an HDFS/CSV-ish store (text rows, schema-on-read);
//     no pushdown — every scan reads and parses the full file set and
//     filters locally after transfer.
// Both count rows/bytes transferred so federation costs are measurable.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/column_vector.h"
#include "common/query_context.h"
#include "common/status.h"
#include "storage/column_table.h"  // ColumnPredicate
#include "storage/row_table.h"

namespace dashdb {
namespace fluid {

/// Transfer counters for one store (federation observability).
struct TransferStats {
  uint64_t rows_scanned = 0;      ///< rows touched at the remote
  uint64_t rows_transferred = 0;  ///< rows shipped to dashDB
  uint64_t bytes_transferred = 0;
  uint64_t failed_requests = 0;   ///< scan attempts that errored
  uint64_t retries = 0;           ///< re-attempts after transient failures
};

/// Retry policy for one remote link: transient failures (kUnavailable /
/// kTimeout / kAborted) re-attempt with bounded exponential backoff; the
/// jitter is derived from the deterministic Rng so retry schedules replay.
struct RetryPolicy {
  int max_attempts = 4;  ///< first attempt included
  double backoff_base_seconds = 0.0002;
  double backoff_max_seconds = 0.005;
  uint64_t jitter_seed = 0xF1D0;
};

/// Abstract remote system behind a nickname.
class RemoteStore {
 public:
  virtual ~RemoteStore() = default;

  virtual std::string kind() const = 0;
  virtual const TableSchema& table_schema() const = 0;
  virtual bool SupportsPushdown() const = 0;

  /// Scans the remote object. The result MUST satisfy all `preds`
  /// (pushdown-capable stores filter remotely; others filter after the
  /// full transfer). Emits projected batches.
  ///
  /// Resilient wrapper over ScanOnce: batches are staged and only
  /// forwarded to `emit` after the attempt succeeds end-to-end, so a
  /// retried attempt can never duplicate rows downstream (exactly-once
  /// emission); transient failures — including the `fluid.remote_scan`
  /// fault point — back off and re-attempt per retry_policy(). When the
  /// issuing query's governor `qctx` is supplied, it is probed before
  /// every attempt and every staged batch, so a CANCEL or deadline stops
  /// the transfer (and its retry/backoff loop) instead of shipping the
  /// rest of the remote object.
  Status Scan(const std::vector<ColumnPredicate>& preds,
              const std::vector<int>& projection,
              const std::function<void(RowBatch&)>& emit,
              QueryContext* qctx = nullptr);

  RetryPolicy& retry_policy() { return retry_; }

  TransferStats stats() const {
    TransferStats s;
    s.rows_scanned = rows_scanned_.load();
    s.rows_transferred = rows_transferred_.load();
    s.bytes_transferred = bytes_transferred_.load();
    s.failed_requests = failed_requests_.load();
    s.retries = retries_.load();
    return s;
  }
  void ResetStats() {
    rows_scanned_ = 0;
    rows_transferred_ = 0;
    bytes_transferred_ = 0;
    failed_requests_ = 0;
    retries_ = 0;
  }

 protected:
  /// One scan attempt against the simulated remote.
  virtual Status ScanOnce(
      const std::vector<ColumnPredicate>& preds,
      const std::vector<int>& projection,
      const std::function<void(RowBatch&)>& emit) = 0;

  std::atomic<uint64_t> rows_scanned_{0};
  std::atomic<uint64_t> rows_transferred_{0};
  std::atomic<uint64_t> bytes_transferred_{0};
  std::atomic<uint64_t> failed_requests_{0};
  std::atomic<uint64_t> retries_{0};

 private:
  RetryPolicy retry_;
};

/// Simulated remote RDBMS (Oracle / SQL Server / Netezza flavor): a row
/// store that evaluates pushed predicates remotely.
class SimRdbmsStore : public RemoteStore {
 public:
  SimRdbmsStore(std::string kind, TableSchema schema);

  std::string kind() const override { return kind_; }
  const TableSchema& table_schema() const override { return schema_; }
  bool SupportsPushdown() const override { return true; }

  Status Load(const RowBatch& rows) { return table_.Append(rows); }

 protected:
  Status ScanOnce(const std::vector<ColumnPredicate>& preds,
                  const std::vector<int>& projection,
                  const std::function<void(RowBatch&)>& emit) override;

 private:
  std::string kind_;
  TableSchema schema_;
  RowTable table_;
};

/// Simulated Hadoop/Impala-style store: rows live as delimited text lines;
/// schema applies on read; no remote filtering.
class SimHadoopStore : public RemoteStore {
 public:
  explicit SimHadoopStore(TableSchema schema);

  std::string kind() const override { return "HADOOP"; }
  const TableSchema& table_schema() const override { return schema_; }
  bool SupportsPushdown() const override { return false; }

  /// Appends one '|'-delimited text line per row ("\N" = NULL).
  void AppendLine(std::string line) { lines_.push_back(std::move(line)); }
  Status Load(const RowBatch& rows);

 protected:
  Status ScanOnce(const std::vector<ColumnPredicate>& preds,
                  const std::vector<int>& projection,
                  const std::function<void(RowBatch&)>& emit) override;

 private:
  TableSchema schema_;
  std::vector<std::string> lines_;
};

}  // namespace fluid
}  // namespace dashdb
