// Table nicknames (paper II.C.6, Figure 5): catalog entries whose storage
// is a remote store. Once registered, "this practical use of different data
// stores can be accessed with existing SQL skills from dashDB" — the binder
// plans nickname scans exactly like base tables, pushing sargable
// predicates through the connector when the remote supports it.
#pragma once

#include <memory>
#include <string>

#include "exec/operator.h"
#include "fluid/remote_store.h"
#include "sql/engine.h"

namespace dashdb {
namespace fluid {

/// The storage object behind a nickname: adapts a RemoteStore to the
/// executor's ScannableStorage contract.
class NicknameTable : public ScannableStorage {
 public:
  explicit NicknameTable(std::shared_ptr<RemoteStore> store)
      : store_(std::move(store)) {}

  RemoteStore* store() const { return store_.get(); }

  Result<OperatorPtr> CreateScan(
      const std::vector<ColumnPredicate>& preds,
      const std::vector<int>& projection) const override;

 private:
  std::shared_ptr<RemoteStore> store_;
};

/// Registers a nickname `schema.name` in `engine`'s catalog pointing at the
/// remote store (the "Add Nickname" flow of Figure 5).
Status CreateNickname(Engine* engine, const std::string& schema,
                      const std::string& name,
                      std::shared_ptr<RemoteStore> store);

}  // namespace fluid
}  // namespace dashdb
