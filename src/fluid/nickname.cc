#include "fluid/nickname.h"

namespace dashdb {
namespace fluid {

namespace {

/// Pull operator that drains a remote store scan (materialized at Open:
/// remote cursors are a transfer, not a page iterator).
class RemoteScanOp : public Operator {
 public:
  RemoteScanOp(std::shared_ptr<RemoteStore> store,
               std::vector<ColumnPredicate> preds, std::vector<int> projection)
      : store_(std::move(store)),
        preds_(std::move(preds)),
        projection_(std::move(projection)) {
    for (int c : projection_) {
      const auto& col = store_->table_schema().column(c);
      output_.push_back({col.name, col.type});
    }
  }

  Status OpenImpl() override {
    batches_.clear();
    next_ = 0;
    // The transfer materializes at Open: charge it against the query's
    // budget per batch and let the governor stop it between batches.
    Status st = store_->Scan(
        preds_, projection_,
        [&](RowBatch& b) { batches_.push_back(b); }, query_ctx());
    if (!st.ok()) return st;
    for (const RowBatch& b : batches_) {
      DASHDB_RETURN_IF_ERROR(
          ChargeMemory(BatchMemoryBytes(b), "remote scan transfer"));
    }
    return Status::OK();
  }

  Result<bool> NextImpl(RowBatch* out) override {
    if (next_ >= batches_.size()) return false;
    *out = std::move(batches_[next_++]);
    return true;
  }

  std::string label() const override {
    return "RemoteScan(" + store_->kind() + "." +
           store_->table_schema().table_name() + ", preds=" +
           std::to_string(preds_.size()) +
           (store_->SupportsPushdown() ? ", pushdown)" : ", full-transfer)");
  }

 private:
  std::shared_ptr<RemoteStore> store_;
  std::vector<ColumnPredicate> preds_;
  std::vector<int> projection_;
  std::vector<RowBatch> batches_;
  size_t next_ = 0;
};

}  // namespace

Result<OperatorPtr> NicknameTable::CreateScan(
    const std::vector<ColumnPredicate>& preds,
    const std::vector<int>& projection) const {
  return OperatorPtr(
      std::make_unique<RemoteScanOp>(store_, preds, projection));
}

Status CreateNickname(Engine* engine, const std::string& schema,
                      const std::string& name,
                      std::shared_ptr<RemoteStore> store) {
  CatalogEntry entry;
  entry.kind = EntryKind::kNickname;
  TableSchema remote = store->table_schema();
  entry.schema = TableSchema(schema, name, remote.columns());
  entry.storage = std::make_shared<NicknameTable>(std::move(store));
  return engine->catalog()->CreateEntry(std::move(entry));
}

}  // namespace fluid
}  // namespace dashdb
