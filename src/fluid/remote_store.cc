#include "fluid/remote_store.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/rng.h"

namespace dashdb {
namespace fluid {

namespace {

/// Armed by resilience tests; models a flaky remote link (paper II.C.6
/// federation crossing real networks).
constexpr const char* kFaultRemoteScan = "fluid.remote_scan";

/// Registry mirrors of TransferStats, summed across every store in the
/// process (per-store breakdowns stay on RemoteStore::stats()).
struct FluidInstruments {
  Counter* rows_scanned;
  Counter* rows_transferred;
  Counter* bytes_transferred;
  Counter* failed_requests;
  Counter* retries;
};

FluidInstruments& GlobalFluidInstruments() {
  auto& reg = MetricRegistry::Global();
  static FluidInstruments in{
      reg.GetCounter("fluid.rows_scanned"),
      reg.GetCounter("fluid.rows_transferred"),
      reg.GetCounter("fluid.bytes_transferred"),
      reg.GetCounter("fluid.failed_requests"),
      reg.GetCounter("fluid.retries"),
  };
  return in;
}

size_t BatchBytes(const RowBatch& b) {
  size_t bytes = 0;
  for (const auto& c : b.columns) {
    if (c.type() == TypeId::kVarchar) {
      for (const auto& s : c.strings()) bytes += s.size() + 2;
    } else {
      bytes += 8 * c.size();
    }
  }
  return bytes;
}

/// Value-domain check of one predicate against one row value.
bool MatchPred(const ColumnPredicate& p, TypeId t, const Value& v) {
  if (v.is_null()) return false;
  if (t == TypeId::kVarchar) {
    const std::string& s = v.AsString();
    if (p.str_range.lo &&
        (p.str_range.lo_incl ? s < *p.str_range.lo : s <= *p.str_range.lo)) {
      return false;
    }
    if (p.str_range.hi &&
        (p.str_range.hi_incl ? s > *p.str_range.hi : s >= *p.str_range.hi)) {
      return false;
    }
    return true;
  }
  if (t == TypeId::kDouble) {
    double d = v.AsDouble();
    if (p.dlo && (p.dlo_incl ? d < *p.dlo : d <= *p.dlo)) return false;
    if (p.dhi && (p.dhi_incl ? d > *p.dhi : d >= *p.dhi)) return false;
    return true;
  }
  int64_t i = v.AsInt();
  if (p.int_range.lo &&
      (p.int_range.lo_incl ? i < *p.int_range.lo : i <= *p.int_range.lo)) {
    return false;
  }
  if (p.int_range.hi &&
      (p.int_range.hi_incl ? i > *p.int_range.hi : i >= *p.int_range.hi)) {
    return false;
  }
  return true;
}

}  // namespace

Status RemoteStore::Scan(const std::vector<ColumnPredicate>& preds,
                         const std::vector<int>& projection,
                         const std::function<void(RowBatch&)>& emit,
                         QueryContext* qctx) {
  // Registry mirroring: fold this call's TransferStats delta into the
  // process-wide fluid.* counters when the scan returns, whatever the
  // store subtype counted during its attempts.
  const TransferStats before = stats();
  struct Fold {
    const RemoteStore* store;
    TransferStats before;
    ~Fold() {
      TransferStats after = store->stats();
      auto& in = GlobalFluidInstruments();
      in.rows_scanned->Add(after.rows_scanned - before.rows_scanned);
      in.rows_transferred->Add(after.rows_transferred -
                               before.rows_transferred);
      in.bytes_transferred->Add(after.bytes_transferred -
                                before.bytes_transferred);
      in.failed_requests->Add(after.failed_requests - before.failed_requests);
      in.retries->Add(after.retries - before.retries);
    }
  } fold{this, before};
  Status last;
  for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    // Governed scans stop before (re-)hitting the remote: a cancelled or
    // timed-out query must not keep transferring, retrying, or backing off.
    if (qctx != nullptr) DASHDB_RETURN_IF_ERROR(qctx->CheckAlive());
    // Stage batches so a failed attempt never leaks partial output: the
    // downstream operator sees each row exactly once, whichever attempt
    // finally succeeds.
    std::vector<RowBatch> staged;
    Status st = FaultInjector::Global().Evaluate(kFaultRemoteScan);
    if (st.ok()) {
      Status alive;
      st = ScanOnce(preds, projection, [&](RowBatch& b) {
        // Batch boundaries are the transfer's morsel boundaries; once the
        // governor trips, drop further batches so the attempt winds down
        // without shipping the remainder.
        if (!alive.ok()) return;
        if (qctx != nullptr) alive = qctx->CheckAlive();
        if (alive.ok()) staged.push_back(std::move(b));
      });
      // A governed abort is not a remote failure: surface it without
      // counting failed_requests/retries or entering the backoff loop.
      if (!alive.ok()) return alive;
    }
    if (st.ok()) {
      for (auto& b : staged) emit(b);
      return Status::OK();
    }
    ++failed_requests_;
    last = st.WithContext(kind() + " scan attempt " +
                          std::to_string(attempt));
    if (!st.IsTransient() || attempt == retry_.max_attempts) return last;
    ++retries_;
    double delay = retry_.backoff_base_seconds *
                   static_cast<double>(uint64_t{1} << (attempt - 1));
    delay = std::min(delay, retry_.backoff_max_seconds);
    // Jitter is a pure function of (seed, attempt): replayable schedules.
    Rng jitter(retry_.jitter_seed ^ static_cast<uint64_t>(attempt));
    delay *= 0.5 + 0.5 * jitter.NextDouble();
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }
  return last;
}

SimRdbmsStore::SimRdbmsStore(std::string kind, TableSchema schema)
    : kind_(std::move(kind)), schema_(schema), table_(schema, 0) {}

Status SimRdbmsStore::ScanOnce(const std::vector<ColumnPredicate>& preds,
                               const std::vector<int>& projection,
                               const std::function<void(RowBatch&)>& emit) {
  // Pushdown-capable: the remote filters, only matches transfer.
  rows_scanned_ += table_.live_row_count();
  return table_.Scan(preds, projection,
                     [&](RowBatch& b, const std::vector<uint64_t>&) {
                       rows_transferred_ += b.num_rows();
                       bytes_transferred_ += BatchBytes(b);
                       emit(b);
                     });
}

SimHadoopStore::SimHadoopStore(TableSchema schema) : schema_(schema) {}

Status SimHadoopStore::Load(const RowBatch& rows) {
  for (size_t i = 0; i < rows.num_rows(); ++i) {
    std::ostringstream line;
    for (int c = 0; c < schema_.num_columns(); ++c) {
      if (c) line << '|';
      Value v = rows.columns[c].GetValue(i);
      line << (v.is_null() ? "\\N" : v.ToString());
    }
    lines_.push_back(line.str());
  }
  return Status::OK();
}

Status SimHadoopStore::ScanOnce(const std::vector<ColumnPredicate>& preds,
                                const std::vector<int>& projection,
                                const std::function<void(RowBatch&)>& emit) {
  // No pushdown: every line is read, transferred, parsed (schema on read),
  // THEN filtered — the HDFS performance profile the paper contrasts.
  RowBatch out;
  for (int c : projection) out.columns.emplace_back(schema_.column(c).type);
  for (const std::string& line : lines_) {
    ++rows_scanned_;
    ++rows_transferred_;
    bytes_transferred_ += line.size() + 1;
    // Schema-on-read parse.
    std::vector<Value> row;
    std::stringstream ss(line);
    std::string field;
    for (int c = 0; c < schema_.num_columns(); ++c) {
      if (!std::getline(ss, field, '|')) field = "\\N";
      if (field == "\\N") {
        row.push_back(Value::Null(schema_.column(c).type));
      } else {
        DASHDB_ASSIGN_OR_RETURN(
            Value v, Value::String(field).CastTo(schema_.column(c).type));
        row.push_back(std::move(v));
      }
    }
    bool ok = true;
    for (const auto& p : preds) {
      if (!MatchPred(p, schema_.column(p.column).type, row[p.column])) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (size_t k = 0; k < projection.size(); ++k) {
      out.columns[k].AppendValue(row[projection[k]]);
    }
    if (out.num_rows() >= 4096) {
      emit(out);
      // emit may move the batch out (Scan's staging does); rebuild rather
      // than Clear() so the next batch never appends into moved-from state.
      out.columns.clear();
      for (int c : projection) out.columns.emplace_back(schema_.column(c).type);
    }
  }
  if (out.num_rows() > 0) emit(out);
  return Status::OK();
}

}  // namespace fluid
}  // namespace dashdb
