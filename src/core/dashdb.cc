#include "core/dashdb.h"

namespace dashdb {

Result<std::unique_ptr<DashDbLocal>> DashDbLocal::Deploy(DashDbOptions opts) {
  HardwareProfile hw =
      opts.detect_hardware ? DetectLocalHardware() : opts.hardware;
  // Local dev machines may be below the paper's server minimums; clamp up
  // so Deploy() works everywhere (the deployment *simulation* in
  // src/deploy enforces the strict minimums).
  if (hw.ram_bytes < (size_t{8} << 30)) hw.ram_bytes = size_t{8} << 30;
  if (hw.storage_bytes < (size_t{20} << 30)) {
    hw.storage_bytes = size_t{20} << 30;
  }
  DASHDB_ASSIGN_OR_RETURN(AutoConfig cfg, ComputeAutoConfig(hw));
  DASHDB_RETURN_IF_ERROR(ValidateConfig(hw, cfg));
  if (opts.buffer_pool_override > 0) {
    cfg.bufferpool_bytes = opts.buffer_pool_override;
  }
  if (opts.parallelism_override > 0) {
    cfg.query_parallelism = opts.parallelism_override;
  }
  auto db = std::unique_ptr<DashDbLocal>(
      new DashDbLocal(std::move(hw), cfg));
  spark::RegisterGlmProcedure(&db->engine_, &db->spark_);
  return db;
}

std::shared_ptr<Connection> DashDbLocal::Connect(const std::string& user) {
  return std::make_shared<Connection>(&engine_, user);
}

}  // namespace dashdb
