// dashdb.h — the public API of the dashDB Local reproduction.
//
// One include gives a downstream user the whole system:
//
//   #include "core/dashdb.h"
//
//   auto db = dashdb::DashDbLocal::Deploy();          // detect + autoconfig
//   auto conn = db->Connect("analyst");
//   conn->Execute("CREATE TABLE t (x INT)");
//   conn->Execute("INSERT INTO t VALUES (1), (2)");
//   auto r = conn->Execute("SELECT SUM(x) FROM t");
//
// Deploy() mirrors the paper's container boot (II.A): detect hardware,
// derive the automatic configuration, start the engine sized to it, and
// stand up the integrated Spark dispatcher sharing the node's memory
// (II.D). For multi-node shared-nothing clusters use mpp/mpp.h directly.
#pragma once

#include <memory>
#include <string>

#include "deploy/autoconfig.h"
#include "deploy/container.h"
#include "spark/dispatcher.h"
#include "spark/glm.h"
#include "sql/engine.h"

namespace dashdb {

/// A connected SQL session.
class Connection {
 public:
  Connection(Engine* engine, std::string user)
      : engine_(engine), user_(std::move(user)),
        session_(engine->CreateSession()) {}

  /// Executes one statement.
  Result<QueryResult> Execute(const std::string& sql) {
    return engine_->Execute(session_.get(), sql);
  }

  /// Executes a ';'-separated script; returns the last result.
  Result<QueryResult> ExecuteScript(const std::string& sql) {
    return engine_->ExecuteScript(session_.get(), sql);
  }

  /// The session dialect variable (paper II.C.2); also settable via
  /// `SET SQL_DIALECT = ORACLE` etc.
  void SetDialect(Dialect d) { session_->set_dialect(d); }
  Dialect dialect() const { return session_->dialect(); }

  const std::string& user() const { return user_; }
  Session* session() { return session_.get(); }

 private:
  Engine* engine_;
  std::string user_;
  std::shared_ptr<Session> session_;
};

/// Options for Deploy().
struct DashDbOptions {
  /// Hardware to adapt to; default = detect the local machine.
  HardwareProfile hardware;
  bool detect_hardware = true;
  /// Cap the buffer pool (useful for tests); 0 = use the autoconfig value.
  size_t buffer_pool_override = 0;
  /// Override the intra-query parallelism degree (useful for tests and the
  /// scaling bench); 0 = use the autoconfig value (detected cores).
  int parallelism_override = 0;
};

/// A single-node dashDB Local instance (one container's worth).
class DashDbLocal {
 public:
  /// Boots an instance: hardware detection, automatic configuration,
  /// engine + integrated Spark startup, GLM procedure registration.
  static Result<std::unique_ptr<DashDbLocal>> Deploy(DashDbOptions opts = {});

  /// Opens a SQL session for `user`. Spark jobs submitted on behalf of the
  /// user are isolated per user (paper II.D.1).
  std::shared_ptr<Connection> Connect(const std::string& user);

  Engine* engine() { return &engine_; }
  spark::SparkDispatcher* spark() { return &spark_; }
  const AutoConfig& config() const { return config_; }
  const HardwareProfile& hardware() const { return hardware_; }

 private:
  DashDbLocal(HardwareProfile hw, AutoConfig cfg)
      : hardware_(std::move(hw)),
        config_(cfg),
        engine_(ToEngineConfig(cfg)),
        spark_(/*workers_per_user=*/std::max(1, cfg.query_parallelism / 2),
               cfg.spark_bytes) {}

  HardwareProfile hardware_;
  AutoConfig config_;
  Engine engine_;
  spark::SparkDispatcher spark_;
};

}  // namespace dashdb
