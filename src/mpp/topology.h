// Shared-nothing cluster topology (paper II.E, Figures 2 and 9).
//
// Data is hash-partitioned into a number of shards "several factors larger
// than the number of servers, though not larger than the cumulative number
// of cores". The shard -> node association is fixed during steady state but
// freely adjustable: node failure reassociates the victim's shards across
// the survivors (HA); deliberate removal/addition does the same for elastic
// shrink/grow; since every shard's file set lives on the shared clustered
// filesystem, all of this is metadata-only. Per-shard memory and query
// parallelism are rescaled on every change ("the query parallelism per
// shard is reduced accordingly, as is the memory allocation per shard").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace dashdb {

struct NodeInfo {
  int node_id = 0;
  bool alive = true;
  int cores = 16;
  size_t ram_bytes = size_t{64} << 30;
};

/// Outcome of one reassociation (HA failover / elastic resize).
struct RebalanceStats {
  size_t shards_moved = 0;
  int surviving_nodes = 0;
  size_t max_shards_per_node = 0;
  size_t min_shards_per_node = 0;
};

class ClusterTopology {
 public:
  /// Creates `nodes` identical nodes with `shards_per_node` shards each
  /// (constraint-checked against core counts).
  ClusterTopology(int nodes, int shards_per_node, int cores_per_node,
                  size_t ram_per_node);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_alive_nodes() const;
  int num_shards() const { return static_cast<int>(shard_owner_.size()); }

  const NodeInfo& node(int id) const { return nodes_[id]; }
  bool IsAlive(int node_id) const { return nodes_[node_id].alive; }

  /// Node currently serving a shard.
  int OwnerOf(int shard_id) const { return shard_owner_[shard_id]; }
  std::vector<int> ShardsOnNode(int node_id) const;

  /// Memory available to each shard on `node_id` (ram / resident shards).
  size_t RamPerShard(int node_id) const;
  /// Query parallelism (cores) available per shard on `node_id`; at least 1.
  int CoresPerShard(int node_id) const;

  /// HA: marks the node failed and reassociates its shards round-robin to
  /// the survivors, keeping the cluster "a well-balanced unit" (Figure 9).
  Result<RebalanceStats> FailNode(int node_id);

  /// Reinstates a repaired node and rebalances shards back onto it.
  Result<RebalanceStats> RepairNode(int node_id);

  /// Elastic growth: adds a node and rebalances.
  Result<RebalanceStats> AddNode(int cores, size_t ram_bytes);

  /// Elastic contraction: deliberate removal, same path as failover.
  Result<RebalanceStats> RemoveNode(int node_id);

  /// Longest-processing-time makespan of per-shard work on this topology:
  /// each alive node runs its shards on `cores_per_node` workers. Used by
  /// the scaling and failover benches to model cluster wall-clock from
  /// measured single-shard times.
  double Makespan(const std::vector<double>& shard_seconds) const;

  /// A human-readable shard map (Figure 9-style).
  std::string Describe() const;

 private:
  RebalanceStats Rebalance();

  std::vector<NodeInfo> nodes_;
  std::vector<int> shard_owner_;  ///< shard id -> node id
};

}  // namespace dashdb
