#include "mpp/topology.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace dashdb {

ClusterTopology::ClusterTopology(int nodes, int shards_per_node,
                                 int cores_per_node, size_t ram_per_node) {
  assert(nodes >= 1);
  // Paper constraint: shards <= cumulative cores.
  shards_per_node = std::min(shards_per_node, cores_per_node);
  for (int n = 0; n < nodes; ++n) {
    nodes_.push_back(NodeInfo{n, true, cores_per_node, ram_per_node});
  }
  for (int n = 0; n < nodes; ++n) {
    for (int s = 0; s < shards_per_node; ++s) {
      shard_owner_.push_back(n);
    }
  }
}

int ClusterTopology::num_alive_nodes() const {
  int n = 0;
  for (const auto& node : nodes_) n += node.alive ? 1 : 0;
  return n;
}

std::vector<int> ClusterTopology::ShardsOnNode(int node_id) const {
  std::vector<int> out;
  for (size_t s = 0; s < shard_owner_.size(); ++s) {
    if (shard_owner_[s] == node_id) out.push_back(static_cast<int>(s));
  }
  return out;
}

size_t ClusterTopology::RamPerShard(int node_id) const {
  size_t n = ShardsOnNode(node_id).size();
  return n == 0 ? nodes_[node_id].ram_bytes : nodes_[node_id].ram_bytes / n;
}

int ClusterTopology::CoresPerShard(int node_id) const {
  size_t n = ShardsOnNode(node_id).size();
  if (n == 0) return nodes_[node_id].cores;
  return std::max<int>(1, nodes_[node_id].cores / static_cast<int>(n));
}

RebalanceStats ClusterTopology::Rebalance() {
  RebalanceStats stats;
  std::vector<int> alive;
  for (const auto& n : nodes_) {
    if (n.alive) alive.push_back(n.node_id);
  }
  stats.surviving_nodes = static_cast<int>(alive.size());
  if (alive.empty()) return stats;
  // Target: floor/ceil of shards per alive node. Move as few as possible:
  // first orphaned shards (dead owners), then trim overfull nodes.
  size_t total = shard_owner_.size();
  size_t base = total / alive.size();
  size_t extra = total % alive.size();
  std::map<int, size_t> target;
  for (size_t i = 0; i < alive.size(); ++i) {
    target[alive[i]] = base + (i < extra ? 1 : 0);
  }
  std::map<int, size_t> have;
  for (int owner : shard_owner_) {
    if (nodes_[owner].alive) ++have[owner];
  }
  // Receivers with free capacity, most room first.
  auto next_receiver = [&]() -> int {
    int best = -1;
    size_t best_room = 0;
    for (int n : alive) {
      size_t cur = have.count(n) ? have[n] : 0;
      size_t room = target[n] > cur ? target[n] - cur : 0;
      if (room > best_room) {
        best_room = room;
        best = n;
      }
    }
    return best;
  };
  for (size_t s = 0; s < shard_owner_.size(); ++s) {
    int owner = shard_owner_[s];
    bool must_move = !nodes_[owner].alive;
    if (!must_move && have[owner] > target[owner]) must_move = true;
    if (!must_move) continue;
    int to = next_receiver();
    if (to < 0 || to == owner) continue;
    if (nodes_[owner].alive) --have[owner];
    shard_owner_[s] = to;
    ++have[to];
    ++stats.shards_moved;
  }
  stats.max_shards_per_node = 0;
  stats.min_shards_per_node = total;
  for (int n : alive) {
    size_t c = have.count(n) ? have[n] : 0;
    stats.max_shards_per_node = std::max(stats.max_shards_per_node, c);
    stats.min_shards_per_node = std::min(stats.min_shards_per_node, c);
  }
  return stats;
}

Result<RebalanceStats> ClusterTopology::FailNode(int node_id) {
  if (node_id < 0 || node_id >= num_nodes()) {
    return Status::InvalidArgument("no such node");
  }
  if (!nodes_[node_id].alive) return Status::Unavailable("node already down");
  if (num_alive_nodes() == 1) {
    return Status::Unavailable("cannot fail the last node");
  }
  nodes_[node_id].alive = false;
  return Rebalance();
}

Result<RebalanceStats> ClusterTopology::RepairNode(int node_id) {
  if (node_id < 0 || node_id >= num_nodes()) {
    return Status::InvalidArgument("no such node");
  }
  if (nodes_[node_id].alive) return Status::InvalidArgument("node is up");
  nodes_[node_id].alive = true;
  return Rebalance();
}

Result<RebalanceStats> ClusterTopology::AddNode(int cores, size_t ram_bytes) {
  nodes_.push_back(
      NodeInfo{num_nodes(), true, cores, ram_bytes});
  return Rebalance();
}

Result<RebalanceStats> ClusterTopology::RemoveNode(int node_id) {
  return FailNode(node_id);  // same mechanics, deliberate trigger (II.E)
}

double ClusterTopology::Makespan(
    const std::vector<double>& shard_seconds) const {
  assert(shard_seconds.size() == shard_owner_.size());
  // Work-conserving model: dashDB rescales per-shard query parallelism to
  // whatever cores the node has (paper II.E: "the number of cores
  // associated with each shard can be adjusted along with a concomitant
  // modification in the query parallelism per shard"), so a node finishes
  // its shards in (total shard work) / cores. Cluster wall-clock is the
  // slowest node.
  double worst = 0;
  for (const auto& n : nodes_) {
    if (!n.alive) continue;
    double total = 0;
    for (size_t s = 0; s < shard_owner_.size(); ++s) {
      if (shard_owner_[s] == n.node_id) total += shard_seconds[s];
    }
    worst = std::max(worst, total / n.cores);
  }
  return worst;
}

std::string ClusterTopology::Describe() const {
  std::ostringstream os;
  for (const auto& n : nodes_) {
    os << "node " << n.node_id << (n.alive ? " [up]  " : " [DOWN]")
       << " shards:";
    for (int s : ShardsOnNode(n.node_id)) os << " " << s;
    os << "\n";
  }
  return os.str();
}

}  // namespace dashdb
