#include "mpp/mpp.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/stopwatch.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace dashdb {

using ast::ExprKind;

MppDatabase::MppDatabase(int nodes, int shards_per_node, int cores_per_node,
                         size_t ram_per_node, EngineConfig shard_config)
    : topo_(nodes, shards_per_node, cores_per_node, ram_per_node) {
  for (int s = 0; s < topo_.num_shards(); ++s) {
    shards_.push_back(std::make_unique<Engine>(shard_config));
    sessions_.push_back(shards_.back()->CreateSession());
  }
}

Status MppDatabase::CreateTable(const TableSchema& schema, bool replicated) {
  for (auto& shard : shards_) {
    if (schema.organization() == TableOrganization::kRow) {
      DASHDB_ASSIGN_OR_RETURN(auto t, shard->CreateRowTable(schema));
      (void)t;
    } else {
      DASHDB_ASSIGN_OR_RETURN(auto t, shard->CreateColumnTable(schema));
      (void)t;
    }
  }
  replicated_[NormalizeIdent(schema.schema_name()) + "." +
              NormalizeIdent(schema.table_name())] = replicated;
  return Status::OK();
}

int MppDatabase::RouteRow(const TableSchema& schema,
                          const std::vector<Value>& row) {
  int key = schema.distribution_key();
  if (key < 0) {
    return static_cast<int>(round_robin_++ % shards_.size());
  }
  const Value& v = row[key];
  uint64_t h = v.is_null() ? 0
               : v.type() == TypeId::kVarchar
                   ? HashString(v.AsString())
                   : HashInt64(static_cast<uint64_t>(v.AsInt()));
  return static_cast<int>(h % shards_.size());
}

Status MppDatabase::Load(const std::string& schema, const std::string& table,
                         const RowBatch& rows) {
  std::string key = NormalizeIdent(schema) + "." + NormalizeIdent(table);
  auto rep = replicated_.find(key);
  bool replicate = rep != replicated_.end() && rep->second;
  DASHDB_ASSIGN_OR_RETURN(auto entry, shards_[0]->GetTable(schema, table));
  const TableSchema& ts = entry->schema;

  auto append_to = [&](int shard, const RowBatch& batch) -> Status {
    DASHDB_ASSIGN_OR_RETURN(auto e, shards_[shard]->GetTable(schema, table));
    auto col = std::dynamic_pointer_cast<ColumnTable>(e->storage);
    auto row = std::dynamic_pointer_cast<RowTable>(e->storage);
    if (col) return col->Append(batch);
    if (row) return row->Append(batch);
    return Status::Internal("shard table without storage");
  };

  if (replicate) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      DASHDB_RETURN_IF_ERROR(append_to(static_cast<int>(s), rows));
    }
    return Status::OK();
  }
  // Partition rows per shard, then bulk-append.
  std::vector<RowBatch> parts(shards_.size());
  for (auto& p : parts) {
    for (int c = 0; c < ts.num_columns(); ++c) {
      p.columns.emplace_back(ts.column(c).type);
    }
  }
  const size_t n = rows.num_rows();
  for (size_t i = 0; i < n; ++i) {
    std::vector<Value> row = rows.Row(i);
    int shard = RouteRow(ts, row);
    for (int c = 0; c < ts.num_columns(); ++c) {
      parts[shard].columns[c].AppendFrom(rows.columns[c], i);
    }
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (parts[s].num_rows() > 0) {
      DASHDB_RETURN_IF_ERROR(append_to(static_cast<int>(s), parts[s]));
    }
  }
  return Status::OK();
}

Result<MppQueryResult> MppDatabase::Broadcast(const std::string& sql) {
  MppQueryResult out;
  out.shard_seconds.resize(shards_.size(), 0);
  for (size_t s = 0; s < shards_.size(); ++s) {
    Stopwatch sw;
    DASHDB_ASSIGN_OR_RETURN(out.result,
                            shards_[s]->Execute(sessions_[s].get(), sql));
    out.shard_seconds[s] = sw.ElapsedSeconds();
  }
  return out;
}

Result<MppQueryResult> MppDatabase::RoutedInsert(const ast::Statement& st,
                                                 const std::string& sql) {
  std::string schema = st.target_schema.empty() ? "PUBLIC" : st.target_schema;
  std::string key =
      NormalizeIdent(schema) + "." + NormalizeIdent(st.target_table);
  auto rep = replicated_.find(key);
  if ((rep != replicated_.end() && rep->second) || st.select ||
      !st.insert_columns.empty()) {
    // Replicated targets, INSERT..SELECT, and column-subset inserts run on
    // every shard (the engine resolves shard-local sources); distributed
    // correctness for INSERT..SELECT relies on shard-local source data.
    return Broadcast(sql);
  }
  DASHDB_ASSIGN_OR_RETURN(auto entry,
                          shards_[0]->GetTable(schema, st.target_table));
  const TableSchema& ts = entry->schema;
  // Evaluate literal rows and route each to its shard.
  MppQueryResult out;
  out.shard_seconds.resize(shards_.size(), 0);
  int64_t affected = 0;
  for (const auto& ast_row : st.insert_rows) {
    if (static_cast<int>(ast_row.size()) != ts.num_columns()) {
      return Status::SemanticError("INSERT row width mismatch");
    }
    std::vector<Value> row;
    Binder binder(shards_[0]->catalog(), sessions_[0].get());
    for (size_t c = 0; c < ast_row.size(); ++c) {
      DASHDB_ASSIGN_OR_RETURN(ExprPtr bound,
                              binder.BindScalar(ast_row[c], {}));
      RowBatch empty;
      DASHDB_ASSIGN_OR_RETURN(
          Value v, bound->EvaluateRow(empty, 0, sessions_[0]->exec_ctx()));
      DASHDB_ASSIGN_OR_RETURN(v, v.CastTo(ts.column(c).type));
      row.push_back(std::move(v));
    }
    int shard = RouteRow(ts, row);
    DASHDB_ASSIGN_OR_RETURN(auto e,
                            shards_[shard]->GetTable(schema, st.target_table));
    auto col = std::dynamic_pointer_cast<ColumnTable>(e->storage);
    auto rtab = std::dynamic_pointer_cast<RowTable>(e->storage);
    Stopwatch sw;
    if (col) {
      DASHDB_RETURN_IF_ERROR(col->AppendRow(row));
    } else if (rtab) {
      DASHDB_RETURN_IF_ERROR(rtab->AppendRow(row));
    }
    out.shard_seconds[shard] += sw.ElapsedSeconds();
    ++affected;
  }
  out.result.affected_rows = affected;
  out.result.message = "INSERTED " + std::to_string(affected);
  return out;
}

namespace {

/// Merge operation for one partial-aggregate column.
enum class MergeOp : uint8_t { kSum, kMin, kMax };

/// One original select item in an aggregate query.
struct FinalItem {
  enum Kind { kGroup, kAggDirect, kAvg } kind = kGroup;
  int group_idx = 0;     // kGroup: which group column
  int partial_idx = 0;   // kAggDirect: merged partial column
  int sum_idx = 0, count_idx = 0;  // kAvg
};

bool IsSimpleAgg(const ast::ExprP& e) {
  if (e->kind != ExprKind::kFuncCall) return false;
  AggKind k;
  if (!AggKindFromName(e->name, &k)) return false;
  switch (k) {
    case AggKind::kCount:
    case AggKind::kCountStar:
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kAvg:
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<MppQueryResult> MppDatabase::ExecSelect(const ast::SelectStmt& sel) {
  // Detect aggregation.
  bool has_agg = !sel.group_by.empty();
  for (const auto& item : sel.items) {
    if (item.expr->kind == ExprKind::kFuncCall) {
      AggKind k;
      if (AggKindFromName(item.expr->name, &k)) has_agg = true;
    }
  }
  MppQueryResult out;
  out.shard_seconds.resize(shards_.size(), 0);

  if (!has_agg) {
    // Run shard-local plans without ORDER BY/LIMIT; merge; finish globally.
    ast::SelectStmt shard_sel = sel;
    shard_sel.order_by.clear();
    shard_sel.limit = -1;
    shard_sel.offset = 0;
    RowBatch merged;
    std::vector<OutputCol> cols;
    for (size_t s = 0; s < shards_.size(); ++s) {
      Stopwatch sw;
      BindOptions bopts;
      bopts.scan = shards_[s]->MakeScanOptions();
      Binder binder(shards_[s]->catalog(), sessions_[s].get(), bopts);
      DASHDB_ASSIGN_OR_RETURN(OperatorPtr root, binder.BindSelect(shard_sel));
      DASHDB_ASSIGN_OR_RETURN(RowBatch batch, DrainOperator(root.get()));
      out.shard_seconds[s] = sw.ElapsedSeconds();
      if (cols.empty()) {
        cols = root->output();
        for (const auto& c : cols) merged.columns.emplace_back(c.type);
      }
      for (size_t i = 0; i < batch.num_rows(); ++i) {
        for (size_t c = 0; c < batch.columns.size(); ++c) {
          merged.columns[c].AppendFrom(batch.columns[c], i);
        }
      }
    }
    // Coordinator-side ORDER BY / LIMIT.
    out.result.columns = cols;
    out.result.rows = std::move(merged);
    if (!sel.order_by.empty()) {
      std::vector<uint32_t> order(out.result.rows.num_rows());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::vector<std::pair<int, bool>> keys;  // col idx, desc
      for (const auto& oi : sel.order_by) {
        int idx = -1;
        if (oi.ordinal > 0) {
          idx = oi.ordinal - 1;
        } else if (oi.expr && oi.expr->kind == ExprKind::kColumnRef) {
          for (size_t c = 0; c < cols.size(); ++c) {
            if (NormalizeIdent(cols[c].name) == oi.expr->name) {
              idx = static_cast<int>(c);
            }
          }
        }
        if (idx < 0) {
          return Status::Unimplemented(
              "MPP ORDER BY supports output columns/ordinals");
        }
        keys.emplace_back(idx, oi.desc);
      }
      const RowBatch& rb = out.result.rows;
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) {
                         for (auto [c, desc] : keys) {
                           int cmp = rb.columns[c].GetValue(a).Compare(
                               rb.columns[c].GetValue(b));
                           if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
                         }
                         return false;
                       });
      RowBatch sorted;
      for (const auto& c : cols) sorted.columns.emplace_back(c.type);
      int64_t limit = sel.limit < 0
                          ? static_cast<int64_t>(order.size())
                          : sel.limit;
      for (size_t i = sel.offset;
           i < order.size() &&
           static_cast<int64_t>(sorted.num_rows()) < limit;
           ++i) {
        for (size_t c = 0; c < cols.size(); ++c) {
          sorted.columns[c].AppendFrom(out.result.rows.columns[c], order[i]);
        }
      }
      out.result.rows = std::move(sorted);
    } else if (sel.limit >= 0 || sel.offset > 0) {
      RowBatch limited;
      for (const auto& c : cols) limited.columns.emplace_back(c.type);
      int64_t limit = sel.limit < 0
                          ? static_cast<int64_t>(out.result.rows.num_rows())
                          : sel.limit;
      for (size_t i = sel.offset;
           i < out.result.rows.num_rows() &&
           static_cast<int64_t>(limited.num_rows()) < limit;
           ++i) {
        for (size_t c = 0; c < cols.size(); ++c) {
          limited.columns[c].AppendFrom(out.result.rows.columns[c], i);
        }
      }
      out.result.rows = std::move(limited);
    }
    out.result.affected_rows =
        static_cast<int64_t>(out.result.rows.num_rows());
    return out;
  }

  // ---- two-phase aggregation ----
  // Build the partial (shard) statement: group exprs + decomposed partials.
  if (sel.having) {
    return Status::Unimplemented("MPP HAVING not supported");
  }
  ast::SelectStmt partial = sel;
  partial.order_by.clear();
  partial.limit = -1;
  partial.offset = 0;
  partial.items.clear();
  // Group columns first.
  for (size_t g = 0; g < sel.group_by.size(); ++g) {
    ast::SelectItem it;
    it.expr = sel.group_by[g];
    it.alias = "G" + std::to_string(g);
    partial.items.push_back(std::move(it));
  }
  std::vector<FinalItem> finals;
  std::vector<MergeOp> merges;  // per partial agg column
  auto add_partial = [&](ast::ExprP call, MergeOp m) -> int {
    ast::SelectItem it;
    it.expr = std::move(call);
    it.alias = "P" + std::to_string(partial.items.size());
    partial.items.push_back(std::move(it));
    merges.push_back(m);
    return static_cast<int>(merges.size()) - 1;
  };
  for (const auto& item : sel.items) {
    const ast::ExprP& e = item.expr;
    if (IsSimpleAgg(e)) {
      AggKind k;
      AggKindFromName(e->name, &k);
      FinalItem f;
      if (e->name == "AVG" || e->name == "MEAN") {
        auto sum = std::make_shared<ast::Expr>(*e);
        sum->name = "SUM";
        auto cnt = std::make_shared<ast::Expr>(*e);
        cnt->name = "COUNT";
        f.kind = FinalItem::kAvg;
        f.sum_idx = add_partial(sum, MergeOp::kSum);
        f.count_idx = add_partial(cnt, MergeOp::kSum);
      } else {
        f.kind = FinalItem::kAggDirect;
        MergeOp m = MergeOp::kSum;
        if (e->name == "MIN") m = MergeOp::kMin;
        if (e->name == "MAX") m = MergeOp::kMax;
        f.partial_idx = add_partial(std::make_shared<ast::Expr>(*e), m);
      }
      finals.push_back(f);
      continue;
    }
    // Must be a group expression.
    bool found = false;
    for (size_t g = 0; g < sel.group_by.size(); ++g) {
      if (AstToString(sel.group_by[g]) == AstToString(e)) {
        FinalItem f;
        f.kind = FinalItem::kGroup;
        f.group_idx = static_cast<int>(g);
        finals.push_back(f);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::Unimplemented(
          "MPP SELECT items must be group expressions or simple aggregates "
          "(COUNT/SUM/MIN/MAX/AVG)");
    }
  }
  const size_t n_groups = sel.group_by.size();
  // Run partials on every shard and merge by group key.
  struct GroupAccum {
    std::vector<Value> groups;
    std::vector<Value> partials;
  };
  std::unordered_map<std::string, GroupAccum> table;
  std::vector<OutputCol> partial_cols;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Stopwatch sw;
    BindOptions bopts;
    bopts.scan = shards_[s]->MakeScanOptions();
    Binder binder(shards_[s]->catalog(), sessions_[s].get(), bopts);
    DASHDB_ASSIGN_OR_RETURN(OperatorPtr root, binder.BindSelect(partial));
    DASHDB_ASSIGN_OR_RETURN(RowBatch batch, DrainOperator(root.get()));
    out.shard_seconds[s] = sw.ElapsedSeconds();
    if (partial_cols.empty()) partial_cols = root->output();
    for (size_t i = 0; i < batch.num_rows(); ++i) {
      std::string key;
      for (size_t g = 0; g < n_groups; ++g) {
        key += batch.columns[g].GetValue(i).ToString();
        key += '\x1f';
      }
      auto it = table.find(key);
      if (it == table.end()) {
        GroupAccum acc;
        for (size_t g = 0; g < n_groups; ++g) {
          acc.groups.push_back(batch.columns[g].GetValue(i));
        }
        for (size_t p = 0; p < merges.size(); ++p) {
          acc.partials.push_back(batch.columns[n_groups + p].GetValue(i));
        }
        table.emplace(std::move(key), std::move(acc));
        continue;
      }
      for (size_t p = 0; p < merges.size(); ++p) {
        Value incoming = batch.columns[n_groups + p].GetValue(i);
        Value& cur = it->second.partials[p];
        if (incoming.is_null()) continue;
        if (cur.is_null()) {
          cur = incoming;
          continue;
        }
        switch (merges[p]) {
          case MergeOp::kSum:
            cur = cur.type() == TypeId::kDouble ||
                          incoming.type() == TypeId::kDouble
                      ? Value::Double(cur.AsDouble() + incoming.AsDouble())
                      : Value::Int64(cur.AsInt() + incoming.AsInt());
            break;
          case MergeOp::kMin:
            if (incoming.Compare(cur) < 0) cur = incoming;
            break;
          case MergeOp::kMax:
            if (incoming.Compare(cur) > 0) cur = incoming;
            break;
        }
      }
    }
  }
  // Final projection.
  std::vector<OutputCol> final_cols;
  for (size_t i = 0; i < sel.items.size(); ++i) {
    const FinalItem& f = finals[i];
    std::string name = !sel.items[i].alias.empty()
                           ? sel.items[i].alias
                           : (sel.items[i].expr->kind == ExprKind::kColumnRef
                                  ? sel.items[i].expr->name
                                  : sel.items[i].expr->name);
    TypeId t;
    if (f.kind == FinalItem::kGroup) {
      t = partial_cols[f.group_idx].type;
    } else if (f.kind == FinalItem::kAvg) {
      t = TypeId::kDouble;
    } else {
      t = partial_cols[n_groups + f.partial_idx].type;
    }
    final_cols.push_back({name, t});
  }
  out.result.columns = final_cols;
  for (const auto& c : final_cols) {
    out.result.rows.columns.emplace_back(c.type);
  }
  // Global aggregate with no groups and no rows still yields one row.
  if (table.empty() && n_groups == 0) {
    GroupAccum acc;
    for (size_t p = 0; p < merges.size(); ++p) {
      acc.partials.push_back(Value::Null(TypeId::kInt64));
    }
    table.emplace("", std::move(acc));
  }
  for (auto& [key, acc] : table) {
    for (size_t i = 0; i < finals.size(); ++i) {
      const FinalItem& f = finals[i];
      Value v = Value::Null(final_cols[i].type);
      if (f.kind == FinalItem::kGroup) {
        v = acc.groups[f.group_idx];
      } else if (f.kind == FinalItem::kAggDirect) {
        v = acc.partials[f.partial_idx];
        if (v.is_null() && merges[f.partial_idx] == MergeOp::kSum &&
            partial_cols[n_groups + f.partial_idx].type == TypeId::kInt64 &&
            n_groups == 0) {
          // COUNT over zero rows is 0, not NULL.
          const ast::ExprP& e = sel.items[i].expr;
          if (e->name == "COUNT") v = Value::Int64(0);
        }
      } else {  // AVG
        Value sum = acc.partials[f.sum_idx];
        Value cnt = acc.partials[f.count_idx];
        if (!sum.is_null() && !cnt.is_null() && cnt.AsInt() > 0) {
          v = Value::Double(sum.AsDouble() / cnt.AsDouble());
        }
      }
      out.result.rows.columns[i].AppendValue(v);
    }
  }
  // Coordinator ORDER BY / LIMIT over the merged result.
  if (!sel.order_by.empty() || sel.limit >= 0) {
    std::vector<uint32_t> order(out.result.rows.num_rows());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::vector<std::pair<int, bool>> keys;
    for (const auto& oi : sel.order_by) {
      int idx = -1;
      if (oi.ordinal > 0) {
        idx = oi.ordinal - 1;
      } else if (oi.expr && oi.expr->kind == ExprKind::kColumnRef) {
        for (size_t c = 0; c < final_cols.size(); ++c) {
          if (NormalizeIdent(final_cols[c].name) == oi.expr->name) {
            idx = static_cast<int>(c);
          }
        }
      }
      if (idx < 0) {
        return Status::Unimplemented(
            "MPP ORDER BY supports output columns/ordinals");
      }
      keys.emplace_back(idx, oi.desc);
    }
    const RowBatch& rb = out.result.rows;
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      for (auto [c, desc] : keys) {
        int cmp =
            rb.columns[c].GetValue(a).Compare(rb.columns[c].GetValue(b));
        if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
      }
      return false;
    });
    RowBatch sorted;
    for (const auto& c : final_cols) sorted.columns.emplace_back(c.type);
    int64_t limit =
        sel.limit < 0 ? static_cast<int64_t>(order.size()) : sel.limit;
    for (size_t i = sel.offset;
         i < order.size() && static_cast<int64_t>(sorted.num_rows()) < limit;
         ++i) {
      for (size_t c = 0; c < final_cols.size(); ++c) {
        sorted.columns[c].AppendFrom(out.result.rows.columns[c], order[i]);
      }
    }
    out.result.rows = std::move(sorted);
  }
  out.result.affected_rows = static_cast<int64_t>(out.result.rows.num_rows());
  return out;
}

Result<MppQueryResult> MppDatabase::Execute(const std::string& sql) {
  DASHDB_ASSIGN_OR_RETURN(ast::StatementP stmt, ParseStatement(sql));
  switch (stmt->kind) {
    case ast::StmtKind::kSelect:
      return ExecSelect(*stmt->select);
    case ast::StmtKind::kInsert:
      return RoutedInsert(*stmt, sql);
    default:
      return Broadcast(sql);
  }
}

Result<std::vector<size_t>> MppDatabase::ShardRowCounts(
    const std::string& schema, const std::string& table) {
  std::vector<size_t> out;
  for (auto& shard : shards_) {
    DASHDB_ASSIGN_OR_RETURN(auto entry, shard->GetTable(schema, table));
    auto col = std::dynamic_pointer_cast<ColumnTable>(entry->storage);
    auto row = std::dynamic_pointer_cast<RowTable>(entry->storage);
    out.push_back(col ? col->live_row_count()
                      : (row ? row->live_row_count() : 0));
  }
  return out;
}

}  // namespace dashdb
