#include "mpp/mpp.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "common/fault_injector.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/sort_key.h"
#include "common/stopwatch.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace dashdb {

using ast::ExprKind;

namespace {
/// Fault points exercised by the resilience tests (tests/mpp_fault_test.cc)
/// and the failover drill. Evaluated on every shard attempt; free when
/// nothing is armed.
constexpr const char* kFaultShardExec = "mpp.shard_exec";
constexpr const char* kFaultShardStall = "mpp.shard_stall";

/// Registry mirrors of MppExecStats, resolved once per process.
struct MppInstruments {
  Counter* shard_attempts;
  Counter* shard_retries;
  Counter* failovers;
  Counter* timeouts;
  Counter* speculative_launches;
  Counter* speculative_wins;
  Counter* bloom_filters;  ///< cross-shard Bloom filters shipped
  Counter* bloom_bytes;    ///< serialized bytes of those filters
  Counter* exchange_chunks;            ///< shard->coordinator chunks shipped
  Counter* exchange_bytes;             ///< in-memory bytes those chunks decode to
  Counter* exchange_compressed_bytes;  ///< wire bytes actually shipped
  Counter* exchange_stalls;            ///< producer waits on a full window
  Counter* merge_streams;  ///< pre-sorted shard streams k-way merged
};

MppInstruments& GlobalMppInstruments() {
  auto& reg = MetricRegistry::Global();
  static MppInstruments in{
      reg.GetCounter("mpp.shard_attempts"),
      reg.GetCounter("mpp.shard_retries"),
      reg.GetCounter("mpp.failovers"),
      reg.GetCounter("mpp.timeouts"),
      reg.GetCounter("mpp.speculative_launches"),
      reg.GetCounter("mpp.speculative_wins"),
      reg.GetCounter("mpp.bloom_filters"),
      reg.GetCounter("mpp.bloom_bytes"),
      reg.GetCounter("mpp.exchange_chunks"),
      reg.GetCounter("mpp.exchange_bytes"),
      reg.GetCounter("mpp.exchange_compressed_bytes"),
      reg.GetCounter("mpp.exchange_stalls"),
      reg.GetCounter("mpp.merge_streams"),
  };
  return in;
}

/// AND-tree flattening (coordinator-side mirror of the binder's).
void SplitAndConjuncts(const ast::ExprP& e, std::vector<ast::ExprP>* out) {
  if (e && e->kind == ExprKind::kBinary && e->bin_op == ast::BinOp::kAnd) {
    SplitAndConjuncts(e->children[0], out);
    SplitAndConjuncts(e->children[1], out);
    return;
  }
  if (e) out->push_back(e);
}

/// Resolves one ORDER BY key to a select-list index: ordinals, output
/// names/aliases, bare column refs, and — the pushdown enabler — any
/// expression textually identical to a select item (e.g. ORDER BY V + C
/// when V + C is selected). Returns -1 when the key is none of these.
int ResolveOrderKeyIdx(const ast::OrderItem& oi, const ast::SelectStmt& sel) {
  const size_t n = sel.items.size();
  if (oi.ordinal > 0) {
    return oi.ordinal <= static_cast<int>(n) ? oi.ordinal - 1 : -1;
  }
  for (size_t c = 0; c < n; ++c) {
    const ast::SelectItem& item = sel.items[c];
    std::string name;
    if (!item.alias.empty()) {
      name = NormalizeIdent(item.alias);
    } else if (item.expr && (item.expr->kind == ExprKind::kColumnRef ||
                             item.expr->kind == ExprKind::kFuncCall)) {
      name = item.expr->name;
    } else {
      name = "EXPR_" + std::to_string(c + 1);
    }
    if (!oi.output_name.empty() && NormalizeIdent(oi.output_name) == name) {
      return static_cast<int>(c);
    }
    if (oi.expr && oi.expr->kind == ExprKind::kColumnRef &&
        oi.expr->name == name) {
      return static_cast<int>(c);
    }
  }
  if (oi.expr) {
    const std::string want = AstToString(oi.expr);
    for (size_t c = 0; c < n; ++c) {
      if (sel.items[c].expr && AstToString(sel.items[c].expr) == want) {
        return static_cast<int>(c);
      }
    }
  }
  return -1;
}

void CollectRefs(const ast::ExprP& e, std::vector<const ast::Expr*>* out) {
  if (!e) return;
  if (e->kind == ExprKind::kColumnRef) out->push_back(e.get());
  for (const auto& c : e->children) CollectRefs(c, out);
}

void FoldExecStats(const MppExecStats& s, MppExecStats* into) {
  into->shard_retries += s.shard_retries;
  into->failovers += s.failovers;
  into->timeouts += s.timeouts;
  into->speculative_launches += s.speculative_launches;
  into->speculative_wins += s.speculative_wins;
}

/// Indents a multi-line block (shard plans inside the combined report).
std::string Indent(const std::string& text, int spaces) {
  std::string pad(spaces, ' ');
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    if (nl > pos) out += pad + text.substr(pos, nl - pos) + "\n";
    pos = nl + 1;
  }
  return out;
}
}  // namespace

// --- flow-controlled exchange ----------------------------------------------

void ExchangeChannel::Push(ExchangeChunk chunk) {
  std::unique_lock<std::mutex> lk(mu_);
  if (queue_.size() >= window_ && !cancelled_) {
    ++stalls_;
    can_push_.wait(lk, [&] { return queue_.size() < window_ || cancelled_; });
  }
  if (cancelled_) return;  // consumer aborted: drop
  queue_.push_back(std::move(chunk));
  high_water_ = std::max(high_water_, queue_.size());
  can_pop_.notify_one();
}

void ExchangeChannel::Close(Status status) {
  std::lock_guard<std::mutex> lk(mu_);
  closed_ = true;
  status_ = std::move(status);
  can_pop_.notify_all();
}

void ExchangeChannel::CancelConsumer() {
  std::lock_guard<std::mutex> lk(mu_);
  cancelled_ = true;
  queue_.clear();
  can_push_.notify_all();
}

bool ExchangeChannel::Pop(ExchangeChunk* chunk, Status* status) {
  std::unique_lock<std::mutex> lk(mu_);
  can_pop_.wait(lk, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) {
    *status = status_;
    return false;
  }
  *chunk = std::move(queue_.front());
  queue_.pop_front();
  can_push_.notify_one();
  return true;
}

uint64_t ExchangeChannel::stalls() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stalls_;
}

size_t ExchangeChannel::high_water() const {
  std::lock_guard<std::mutex> lk(mu_);
  return high_water_;
}

namespace {

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

bool GetU8(const std::string& in, size_t* pos, uint8_t* v) {
  if (*pos + 1 > in.size()) return false;
  *v = static_cast<uint8_t>(in[*pos]);
  *pos += 1;
  return true;
}

bool GetU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 4);
  *pos += 4;
  return true;
}

bool GetU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

size_t DictCodeWidth(size_t dict_size) {
  if (dict_size <= 0xFF) return 1;
  if (dict_size <= 0xFFFF) return 2;
  return 4;
}

}  // namespace

std::string EncodeExchangeBatch(const RowBatch& rows, size_t begin,
                                size_t end) {
  std::string out;
  const uint32_t ncols = static_cast<uint32_t>(rows.columns.size());
  const uint32_t nrows = static_cast<uint32_t>(end - begin);
  PutU32(&out, ncols);
  PutU32(&out, nrows);
  for (const ColumnVector& col : rows.columns) {
    PutU8(&out, static_cast<uint8_t>(col.type()));
    bool any_null = false;
    for (size_t i = begin; i < end && !any_null; ++i) any_null = col.IsNull(i);
    PutU8(&out, any_null ? 1 : 0);
    if (any_null) {
      for (size_t i = begin; i < end; ++i) PutU8(&out, col.IsNull(i) ? 1 : 0);
    }
    if (col.type() == TypeId::kDouble) {
      for (size_t i = begin; i < end; ++i) {
        const double d = col.IsNull(i) ? 0.0 : col.GetDouble(i);
        char b[8];
        std::memcpy(b, &d, 8);
        out.append(b, 8);
      }
    } else if (col.type() == TypeId::kVarchar) {
      // Dictionary coding: each distinct string ships once, rows ship as
      // minimal-width codes. Repetitive columns (dimension attributes,
      // status fields) collapse to near-nothing on the wire.
      std::unordered_map<std::string, uint32_t> dict;
      std::vector<const std::string*> entries;
      std::vector<uint32_t> codes;
      codes.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        if (col.IsNull(i)) {
          codes.push_back(0);  // masked by the null byte on decode
          continue;
        }
        const std::string& s = col.GetString(i);
        auto [it, inserted] =
            dict.emplace(s, static_cast<uint32_t>(entries.size()));
        if (inserted) entries.push_back(&it->first);
        codes.push_back(it->second);
      }
      PutU32(&out, static_cast<uint32_t>(entries.size()));
      for (const std::string* s : entries) {
        PutU32(&out, static_cast<uint32_t>(s->size()));
        out.append(*s);
      }
      const size_t width = DictCodeWidth(entries.size());
      PutU8(&out, static_cast<uint8_t>(width));
      for (uint32_t c : codes) {
        char b[4];
        std::memcpy(b, &c, 4);
        out.append(b, width);
      }
    } else {
      for (size_t i = begin; i < end; ++i) {
        const int64_t v = col.IsNull(i) ? 0 : col.GetInt(i);
        PutU64(&out, static_cast<uint64_t>(v));
      }
    }
  }
  return out;
}

Status DecodeExchangeBatch(const std::string& payload, RowBatch* into) {
  size_t pos = 0;
  uint32_t ncols = 0, nrows = 0;
  if (!GetU32(payload, &pos, &ncols) || !GetU32(payload, &pos, &nrows)) {
    return Status::Internal("exchange chunk: truncated header");
  }
  if (ncols != into->columns.size()) {
    return Status::Internal("exchange chunk: column count mismatch");
  }
  for (uint32_t c = 0; c < ncols; ++c) {
    ColumnVector& col = into->columns[c];
    uint8_t type_byte = 0, any_null = 0;
    if (!GetU8(payload, &pos, &type_byte) ||
        !GetU8(payload, &pos, &any_null)) {
      return Status::Internal("exchange chunk: truncated column header");
    }
    if (static_cast<TypeId>(type_byte) != col.type()) {
      return Status::Internal("exchange chunk: column type mismatch");
    }
    std::vector<uint8_t> nulls;
    if (any_null) {
      nulls.resize(nrows);
      for (uint32_t i = 0; i < nrows; ++i) {
        if (!GetU8(payload, &pos, &nulls[i])) {
          return Status::Internal("exchange chunk: truncated null bytes");
        }
      }
    }
    if (col.type() == TypeId::kDouble) {
      for (uint32_t i = 0; i < nrows; ++i) {
        if (pos + 8 > payload.size()) {
          return Status::Internal("exchange chunk: truncated doubles");
        }
        double d;
        std::memcpy(&d, payload.data() + pos, 8);
        pos += 8;
        if (any_null && nulls[i]) {
          col.AppendNull();
        } else {
          col.AppendDouble(d);
        }
      }
    } else if (col.type() == TypeId::kVarchar) {
      uint32_t ndict = 0;
      if (!GetU32(payload, &pos, &ndict)) {
        return Status::Internal("exchange chunk: truncated dictionary");
      }
      std::vector<std::string> dict(ndict);
      for (uint32_t d = 0; d < ndict; ++d) {
        uint32_t len = 0;
        if (!GetU32(payload, &pos, &len) || pos + len > payload.size()) {
          return Status::Internal("exchange chunk: truncated dict entry");
        }
        dict[d].assign(payload, pos, len);
        pos += len;
      }
      uint8_t width = 0;
      if (!GetU8(payload, &pos, &width) ||
          (width != 1 && width != 2 && width != 4)) {
        return Status::Internal("exchange chunk: bad code width");
      }
      for (uint32_t i = 0; i < nrows; ++i) {
        if (pos + width > payload.size()) {
          return Status::Internal("exchange chunk: truncated codes");
        }
        uint32_t code = 0;
        std::memcpy(&code, payload.data() + pos, width);
        pos += width;
        if (any_null && nulls[i]) {
          col.AppendNull();
          continue;
        }
        if (code >= ndict) {
          return Status::Internal("exchange chunk: code out of range");
        }
        col.AppendString(dict[code]);
      }
    } else {
      for (uint32_t i = 0; i < nrows; ++i) {
        uint64_t v = 0;
        if (!GetU64(payload, &pos, &v)) {
          return Status::Internal("exchange chunk: truncated ints");
        }
        if (any_null && nulls[i]) {
          col.AppendNull();
        } else {
          col.AppendInt(static_cast<int64_t>(v));
        }
      }
    }
  }
  if (pos != payload.size()) {
    return Status::Internal("exchange chunk: trailing bytes");
  }
  return Status::OK();
}

MppDatabase::MppDatabase(int nodes, int shards_per_node, int cores_per_node,
                         size_t ram_per_node, EngineConfig shard_config)
    : topo_(nodes, shards_per_node, cores_per_node, ram_per_node) {
  for (int s = 0; s < topo_.num_shards(); ++s) {
    shards_.push_back(std::make_unique<Engine>(shard_config));
    sessions_.push_back(shards_.back()->CreateSession());
  }
}

Status MppDatabase::CreateTable(const TableSchema& schema, bool replicated) {
  for (auto& shard : shards_) {
    if (schema.organization() == TableOrganization::kRow) {
      DASHDB_ASSIGN_OR_RETURN(auto t, shard->CreateRowTable(schema));
      (void)t;
    } else {
      DASHDB_ASSIGN_OR_RETURN(auto t, shard->CreateColumnTable(schema));
      (void)t;
    }
  }
  replicated_[NormalizeIdent(schema.schema_name()) + "." +
              NormalizeIdent(schema.table_name())] = replicated;
  data_version_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

int MppDatabase::RouteRow(const TableSchema& schema,
                          const std::vector<Value>& row) {
  int key = schema.distribution_key();
  if (key < 0) {
    return static_cast<int>(round_robin_++ % shards_.size());
  }
  const Value& v = row[key];
  uint64_t h = v.is_null() ? 0
               : v.type() == TypeId::kVarchar
                   ? HashString(v.AsString())
                   : HashInt64(static_cast<uint64_t>(v.AsInt()));
  return static_cast<int>(h % shards_.size());
}

Status MppDatabase::Load(const std::string& schema, const std::string& table,
                         const RowBatch& rows) {
  data_version_.fetch_add(1, std::memory_order_release);
  std::string key = NormalizeIdent(schema) + "." + NormalizeIdent(table);
  auto rep = replicated_.find(key);
  bool replicate = rep != replicated_.end() && rep->second;
  DASHDB_ASSIGN_OR_RETURN(auto entry, shards_[0]->GetTable(schema, table));
  const TableSchema& ts = entry->schema;

  auto append_to = [&](int shard, const RowBatch& batch) -> Status {
    DASHDB_ASSIGN_OR_RETURN(auto e, shards_[shard]->GetTable(schema, table));
    auto col = std::dynamic_pointer_cast<ColumnTable>(e->storage);
    auto row = std::dynamic_pointer_cast<RowTable>(e->storage);
    if (col) return col->Append(batch);
    if (row) return row->Append(batch);
    return Status::InvalidArgument("table has no local shard storage "
                                   "(nickname or view?)");
  };

  if (replicate) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      DASHDB_RETURN_IF_ERROR(append_to(static_cast<int>(s), rows));
    }
    return Status::OK();
  }
  // Partition rows per shard, then bulk-append.
  std::vector<RowBatch> parts(shards_.size());
  for (auto& p : parts) {
    for (int c = 0; c < ts.num_columns(); ++c) {
      p.columns.emplace_back(ts.column(c).type);
    }
  }
  // Route straight off the key column — no per-row Value boxing.
  const size_t n = rows.num_rows();
  const int key_col = ts.distribution_key();
  const ColumnVector* kc = key_col >= 0 ? &rows.columns[key_col] : nullptr;
  for (size_t i = 0; i < n; ++i) {
    int shard;
    if (!kc) {
      shard = static_cast<int>(round_robin_++ % shards_.size());
    } else if (kc->IsNull(i)) {
      shard = 0;
    } else if (kc->type() == TypeId::kVarchar) {
      shard = static_cast<int>(HashString(kc->GetString(i)) % shards_.size());
    } else {
      const uint64_t h = kc->type() == TypeId::kDouble
                             ? HashInt64(static_cast<uint64_t>(
                                   kc->GetValue(i).AsInt()))
                             : HashInt64(static_cast<uint64_t>(kc->GetInt(i)));
      shard = static_cast<int>(h % shards_.size());
    }
    for (int c = 0; c < ts.num_columns(); ++c) {
      parts[shard].columns[c].AppendFrom(rows.columns[c], i);
    }
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (parts[s].num_rows() > 0) {
      DASHDB_RETURN_IF_ERROR(append_to(static_cast<int>(s), parts[s]));
    }
  }
  return Status::OK();
}

Status MppDatabase::AttemptWithSpeculation(int shard, const ShardFn& fn,
                                           MppExecStats* stats,
                                           ShardAttemptOut* out) {
  // The primary runs under its own child of the query root: a winning
  // speculative attempt cancels the loser through this context and it
  // stops at its next morsel boundary, so every attempt is joined before
  // this call returns (no abandoned futures, sessions are always idle for
  // the next statement).
  QueryContext primary_ctx(query_ctx_.get());
  auto primary = std::async(std::launch::async, [&fn, &primary_ctx, shard] {
    AttemptResult r;
    r.status = fn(shard, /*speculative=*/false, &primary_ctx, &r.out);
    return r;
  });
  auto window =
      std::chrono::duration<double>(fail_policy_.straggler_after_seconds);
  if (primary.wait_for(window) == std::future_status::ready) {
    AttemptResult r = primary.get();
    *out = std::move(r.out);
    return r.status;
  }
  // Straggler: re-execute on the calling thread with a fresh session.
  ++stats->speculative_launches;
  GlobalMppInstruments().speculative_launches->Add(1);
  ShardAttemptOut spec;
  QueryContext spec_ctx(query_ctx_.get());
  Status spec_st = fn(shard, /*speculative=*/true, &spec_ctx, &spec);
  if (spec_st.ok()) {
    // First result wins; actively cancel the straggling primary and join
    // it (its result — typically kCancelled — is discarded).
    if (primary.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ++stats->speculative_wins;
      GlobalMppInstruments().speculative_wins->Add(1);
      primary_ctx.Cancel();
    }
    primary.wait();
    *out = std::move(spec);
    return Status::OK();
  }
  // Speculation failed; fall back to whatever the primary produces.
  AttemptResult r = primary.get();
  *out = std::move(r.out);
  return r.status;
}

Result<MppDatabase::ShardAttemptOut> MppDatabase::RunShardResilient(
    int shard, bool idempotent, const ShardFn& fn, MppExecStats* stats,
    double* seconds) {
  FaultInjector& fault = FaultInjector::Global();
  const FailoverPolicy& pol = fail_policy_;
  Status last;
  for (int attempt = 1; attempt <= pol.max_attempts_per_shard; ++attempt) {
    GlobalMppInstruments().shard_attempts->Add(1);
    Stopwatch sw;
    // Gate: "the node just died under you". Fires before the attempt does
    // anything, so a gate failure is retryable even for DML.
    Status st = fault.Evaluate(kFaultShardExec);
    const bool gate_failure = !st.ok();
    ShardAttemptOut out;
    if (st.ok()) {
      if (idempotent && pol.straggler_after_seconds >= 0) {
        st = AttemptWithSpeculation(shard, fn, stats, &out);
      } else {
        st = fn(shard, /*speculative=*/false, query_ctx_.get(), &out);
      }
    }
    double elapsed = sw.ElapsedSeconds();
    if (st.ok() && idempotent && elapsed > pol.shard_timeout_seconds) {
      // Post-hoc budget check: the deterministic plan makes discarding a
      // late result and re-executing safe (and byte-identical).
      ++stats->timeouts;
      GlobalMppInstruments().timeouts->Add(1);
      st = Status::Timeout("shard attempt took " + std::to_string(elapsed) +
                           "s (budget " +
                           std::to_string(pol.shard_timeout_seconds) + "s)");
    }
    if (st.ok()) {
      *seconds = elapsed;
      return out;
    }
    last = st.WithContext("shard " + std::to_string(shard) + " (node " +
                          std::to_string(topo_.OwnerOf(shard)) + ")");
    // A governed abort (CANCEL or statement timeout on the query root)
    // must surface to the coordinator, never be retried — even though
    // kTimeout is transient for shard-budget timeouts.
    bool governed = query_ctx_ != nullptr && query_ctx_->cancelled();
    bool retryable =
        st.IsTransient() && (gate_failure || idempotent) && !governed;
    if (!retryable || attempt == pol.max_attempts_per_shard) return last;
    ++stats->shard_retries;
    GlobalMppInstruments().shard_retries->Add(1);
    if (st.IsUnavailable() && pol.failover_on_unavailable) {
      // Model the paper's II.E response: mark the owner dead, reassociate
      // its shards across survivors, then re-execute only the victim. The
      // shard's file set lives on the clustered FS, so the retry below IS
      // the survivor running the reassociated shard.
      int owner = topo_.OwnerOf(shard);
      if (topo_.IsAlive(owner) && topo_.num_alive_nodes() > 1 &&
          topo_.FailNode(owner).ok()) {
        ++stats->failovers;
        GlobalMppInstruments().failovers->Add(1);
      }
    }
    // Bounded exponential backoff; jitter is a pure function of
    // (injector seed, shard, attempt) so schedules replay exactly.
    double delay = pol.backoff_base_seconds *
                   static_cast<double>(uint64_t{1} << (attempt - 1));
    delay = std::min(delay, pol.backoff_max_seconds);
    Rng jitter(fault.seed() ^ (static_cast<uint64_t>(shard) << 32) ^
               static_cast<uint64_t>(attempt));
    delay *= 0.5 + 0.5 * jitter.NextDouble();
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }
  return last;
}

Result<MppQueryResult> MppDatabase::Broadcast(const std::string& sql) {
  MppQueryResult out;
  out.shard_seconds.resize(shards_.size(), 0);
  ShardFn fn = [this, sql](int shard, bool /*speculative*/, QueryContext* qctx,
                           ShardAttemptOut* o) -> Status {
    if (qctx != nullptr) DASHDB_RETURN_IF_ERROR(qctx->CheckAlive());
    DASHDB_RETURN_IF_ERROR(FaultInjector::Global().Evaluate(kFaultShardStall));
    DASHDB_ASSIGN_OR_RETURN(
        o->qr, shards_[shard]->Execute(sessions_[shard].get(), sql));
    return Status::OK();
  };
  for (size_t s = 0; s < shards_.size(); ++s) {
    double secs = 0;
    DASHDB_ASSIGN_OR_RETURN(
        ShardAttemptOut r,
        RunShardResilient(static_cast<int>(s), /*idempotent=*/false, fn,
                          &out.exec, &secs));
    out.result = std::move(r.qr);
    out.shard_seconds[s] = secs;
  }
  return out;
}

Result<MppQueryResult> MppDatabase::RoutedInsert(const ast::Statement& st,
                                                 const std::string& sql) {
  std::string schema = st.target_schema.empty() ? "PUBLIC" : st.target_schema;
  std::string key =
      NormalizeIdent(schema) + "." + NormalizeIdent(st.target_table);
  auto rep = replicated_.find(key);
  if ((rep != replicated_.end() && rep->second) || st.select ||
      !st.insert_columns.empty()) {
    // Replicated targets, INSERT..SELECT, and column-subset inserts run on
    // every shard (the engine resolves shard-local sources); distributed
    // correctness for INSERT..SELECT relies on shard-local source data.
    return Broadcast(sql);
  }
  DASHDB_ASSIGN_OR_RETURN(auto entry,
                          shards_[0]->GetTable(schema, st.target_table));
  const TableSchema& ts = entry->schema;
  // Evaluate literal rows and route each to its shard.
  MppQueryResult out;
  out.shard_seconds.resize(shards_.size(), 0);
  int64_t affected = 0;
  for (const auto& ast_row : st.insert_rows) {
    if (static_cast<int>(ast_row.size()) != ts.num_columns()) {
      return Status::SemanticError("INSERT row width mismatch");
    }
    std::vector<Value> row;
    Binder binder(shards_[0]->catalog(), sessions_[0].get());
    for (size_t c = 0; c < ast_row.size(); ++c) {
      DASHDB_ASSIGN_OR_RETURN(ExprPtr bound,
                              binder.BindScalar(ast_row[c], {}));
      RowBatch empty;
      DASHDB_ASSIGN_OR_RETURN(
          Value v, bound->EvaluateRow(empty, 0, sessions_[0]->exec_ctx()));
      DASHDB_ASSIGN_OR_RETURN(v, v.CastTo(ts.column(c).type));
      row.push_back(std::move(v));
    }
    int shard = RouteRow(ts, row);
    DASHDB_ASSIGN_OR_RETURN(auto e,
                            shards_[shard]->GetTable(schema, st.target_table));
    auto col = std::dynamic_pointer_cast<ColumnTable>(e->storage);
    auto rtab = std::dynamic_pointer_cast<RowTable>(e->storage);
    Stopwatch sw;
    if (col) {
      DASHDB_RETURN_IF_ERROR(col->AppendRow(row));
    } else if (rtab) {
      DASHDB_RETURN_IF_ERROR(rtab->AppendRow(row));
    }
    out.shard_seconds[shard] += sw.ElapsedSeconds();
    ++affected;
  }
  out.result.affected_rows = affected;
  out.result.message = "INSERTED " + std::to_string(affected);
  return out;
}

namespace {

/// Merge operation for one partial-aggregate column.
enum class MergeOp : uint8_t { kSum, kMin, kMax };

/// One original select item in an aggregate query.
struct FinalItem {
  enum Kind { kGroup, kAggDirect, kAvg } kind = kGroup;
  int group_idx = 0;     // kGroup: which group column
  int partial_idx = 0;   // kAggDirect: merged partial column
  int sum_idx = 0, count_idx = 0;  // kAvg
};

/// Coordinator-side memory accounting: merged shard results are charged to
/// the query root's budget (the coordinator materializes every shard's
/// output) and released in one piece when merging finishes.
struct MergeCharge {
  QueryContext* qc = nullptr;
  int64_t bytes = 0;
  Status Add(int64_t b, const char* what) {
    if (qc == nullptr || b <= 0) return Status::OK();
    DASHDB_RETURN_IF_ERROR(qc->Charge(b, what));
    bytes += b;
    return Status::OK();
  }
  ~MergeCharge() {
    if (qc != nullptr && bytes > 0) qc->Release(bytes);
  }
};

bool IsSimpleAgg(const ast::ExprP& e) {
  if (e->kind != ExprKind::kFuncCall) return false;
  AggKind k;
  if (!AggKindFromName(e->name, &k)) return false;
  switch (k) {
    case AggKind::kCount:
    case AggKind::kCountStar:
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kAvg:
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<MppQueryResult> MppDatabase::ExecSelect(const ast::SelectStmt& sel,
                                               bool analyze) {
  // Detect aggregation.
  bool has_agg = !sel.group_by.empty();
  for (const auto& item : sel.items) {
    if (item.expr->kind == ExprKind::kFuncCall) {
      AggKind k;
      if (AggKindFromName(item.expr->name, &k)) has_agg = true;
    }
  }
  MppQueryResult out;
  out.shard_seconds.resize(shards_.size(), 0);
  out.shard_exec.resize(shards_.size());
  // EXPLAIN ANALYZE state: the coordinator's span tree (shards execute
  // serially in shard order, so span ids are deterministic) plus the
  // per-shard annotated plans for the combined report.
  std::shared_ptr<Trace> trace;
  uint32_t root_span = 0;
  std::vector<std::string> shard_plans(shards_.size());
  if (analyze) {
    trace = std::make_shared<Trace>();
    root_span = trace->AddSpan("MppQuery", Trace::kNoParent);
  }
  // Records one shard's attempt outcome into the trace and report state.
  auto record_shard = [&](size_t s, const MppExecStats& sstats,
                          ShardAttemptOut& r, double secs) {
    out.shard_exec[s] = sstats;
    FoldExecStats(sstats, &out.exec);
    if (!analyze) return;
    uint32_t sid = trace->AddSpan("Shard", root_span);
    TraceSpan& ss = trace->span(sid);
    ss.rows = r.batch.num_rows();
    ss.wall_seconds = secs;
    ss.attrs["shard"] = static_cast<int64_t>(s);
    ss.attrs["attempts"] = static_cast<int64_t>(1 + sstats.shard_retries);
    if (sstats.shard_retries) {
      ss.attrs["retries"] = static_cast<int64_t>(sstats.shard_retries);
    }
    if (sstats.failovers) {
      ss.attrs["failovers"] = static_cast<int64_t>(sstats.failovers);
    }
    if (sstats.speculative_launches) {
      ss.attrs["spec_launches"] =
          static_cast<int64_t>(sstats.speculative_launches);
      ss.attrs["spec_wins"] = static_cast<int64_t>(sstats.speculative_wins);
    }
    if (r.shard_trace) trace->Graft(*r.shard_trace, sid);
    shard_plans[s] = std::move(r.analyzed_plan);
  };
  // Assembles the combined report once the merged result cardinality is
  // known: cluster header, per-shard counters, indented shard plans.
  auto finish_analyze = [&]() {
    if (!analyze) return;
    uint64_t rows = out.result.rows.num_rows();
    std::string msg =
        "EXPLAIN ANALYZE (mpp shards=" + std::to_string(shards_.size()) +
        ", alive_nodes=" + std::to_string(topo_.num_alive_nodes()) +
        ", rows=" + std::to_string(rows) + ")\n";
    for (size_t s = 0; s < shards_.size(); ++s) {
      const MppExecStats& st = out.shard_exec[s];
      msg += "Shard " + std::to_string(s) + " (node " +
             std::to_string(topo_.OwnerOf(s)) +
             "): attempts=" + std::to_string(1 + st.shard_retries);
      if (st.shard_retries) {
        msg += " retries=" + std::to_string(st.shard_retries);
      }
      if (st.failovers) msg += " failovers=" + std::to_string(st.failovers);
      if (st.timeouts) msg += " timeouts=" + std::to_string(st.timeouts);
      if (st.speculative_launches) {
        msg += " spec_launches=" + std::to_string(st.speculative_launches) +
               " spec_wins=" + std::to_string(st.speculative_wins);
      }
      msg += "\n" + Indent(shard_plans[s], 2);
    }
    out.result.message = std::move(msg);
    trace->span(root_span).rows = rows;
    out.trace = trace;
  };

  // Cross-shard Bloom semi-join pushdown (best effort; null when the query
  // doesn't qualify). Both SELECT paths hand the filters to the shard fn.
  std::shared_ptr<const std::vector<RuntimeScanFilter>> bloom_filters =
      PrepareBloomPushdown(sel);

  if (!has_agg) {
    bool has_star = false;
    for (const auto& item : sel.items) {
      if (item.expr && item.expr->kind == ExprKind::kStar) has_star = true;
    }
    // Pre-execution ORDER BY resolution against the select list. When every
    // key resolves (star expansion hides the output indices, so star
    // queries keep the legacy gather+re-sort), the ORDER BY — plus a LIMIT
    // inflated by the offset — ships into the shard-local plans, and the
    // coordinator k-way merges the pre-sorted shard streams instead of
    // re-sorting the whole union.
    std::vector<std::pair<int, bool>> ord_keys;  // select-item idx, desc
    bool push_sort = false;
    if (!sel.order_by.empty() && !has_star) {
      for (const auto& oi : sel.order_by) {
        int idx = ResolveOrderKeyIdx(oi, sel);
        if (idx < 0) {
          return Status::Unimplemented(
              "MPP ORDER BY supports output columns, ordinals, and "
              "select-list expressions");
        }
        ord_keys.emplace_back(idx, oi.desc);
      }
      push_sort = true;
    }
    auto shard_sel = std::make_shared<ast::SelectStmt>(sel);
    shard_sel->offset = 0;
    if (!push_sort) shard_sel->order_by.clear();
    // A shard truncated to its first limit+offset rows still contains every
    // row a global prefix of limit+offset can draw from it, so LIMIT pushes
    // down whenever the shard stream order is the one the prefix is taken
    // in — sorted (push_sort) or plain concatenation order.
    if ((push_sort || sel.order_by.empty()) && sel.limit >= 0) {
      shard_sel->limit = sel.limit + sel.offset;
    } else {
      shard_sel->limit = -1;
    }
    ShardFn fn = MakeShardSelectFn(shard_sel, analyze, bloom_filters);
    RowBatch merged;                      // legacy concatenation
    std::vector<RowBatch> shard_batches;  // push_sort: one stream per shard
    std::vector<OutputCol> cols;
    MergeCharge mem{query_ctx_.get()};
    for (size_t s = 0; s < shards_.size(); ++s) {
      // Shards run serially: probe the governor between them so CANCEL and
      // deadlines abort the coordinator without dispatching further shards.
      if (query_ctx_ != nullptr) {
        DASHDB_RETURN_IF_ERROR(query_ctx_->CheckAlive());
      }
      double secs = 0;
      MppExecStats sstats;
      DASHDB_ASSIGN_OR_RETURN(
          ShardAttemptOut r,
          RunShardResilient(static_cast<int>(s), /*idempotent=*/true, fn,
                            &sstats, &secs));
      out.shard_seconds[s] = secs;
      if (cols.empty()) {
        cols = r.cols;
        for (const auto& c : cols) merged.columns.emplace_back(c.type);
      }
      DASHDB_RETURN_IF_ERROR(
          mem.Add(BatchMemoryBytes(r.batch), "MPP result assembly"));
      record_shard(s, sstats, r, secs);
      if (push_sort) {
        shard_batches.push_back(std::move(r.batch));
        continue;
      }
      const RowBatch& batch = r.batch;
      for (size_t i = 0; i < batch.num_rows(); ++i) {
        for (size_t c = 0; c < batch.columns.size(); ++c) {
          merged.columns[c].AppendFrom(batch.columns[c], i);
        }
      }
    }
    out.result.columns = cols;
    if (push_sort) {
      // Streaming k-way merge over the pre-sorted shard streams. Shard
      // sorts are stable, and key ties break on the shard index, so the
      // output is byte-identical to concatenating the unsorted streams in
      // shard order and stable-sorting globally.
      const size_t S = shard_batches.size();
      std::vector<bool> desc;
      for (const auto& [idx, d] : ord_keys) desc.push_back(d);
      std::vector<NormalizedKeyColumn> keys(S);
      int64_t key_bytes = 0;
      for (size_t s = 0; s < S; ++s) {
        std::vector<const ColumnVector*> kc;
        for (const auto& [idx, d] : ord_keys) {
          kc.push_back(&shard_batches[s].columns[idx]);
        }
        keys[s].Build(kc, desc, 0, shard_batches[s].num_rows());
        key_bytes += static_cast<int64_t>(keys[s].byte_size());
      }
      DASHDB_RETURN_IF_ERROR(mem.Add(key_bytes, "MPP merge keys"));
      GlobalMppInstruments().merge_streams->Add(static_cast<int64_t>(S));
      std::vector<size_t> pos(S, 0);
      auto alive = [&](size_t s) {
        return pos[s] < shard_batches[s].num_rows();
      };
      auto wins = [&](size_t a, size_t b) {
        int c = keys[a].Compare(pos[a], keys[b], pos[b]);
        return c != 0 ? c < 0 : a < b;
      };
      TournamentTree tree;
      tree.Init(S, wins, alive);
      RowBatch sorted;
      for (const auto& c : cols) sorted.columns.emplace_back(c.type);
      const int64_t want =
          sel.limit < 0 ? -1 : sel.limit + static_cast<int64_t>(sel.offset);
      int64_t popped = 0;
      size_t since_probe = 0;
      for (;;) {
        if (want >= 0 && popped >= want) break;  // prefix satisfied: stop
        const int w = tree.winner();
        if (w < 0) break;
        if (popped >= static_cast<int64_t>(sel.offset)) {
          for (size_t c = 0; c < cols.size(); ++c) {
            sorted.columns[c].AppendFrom(shard_batches[w].columns[c],
                                         pos[w]);
          }
        }
        ++pos[w];
        ++popped;
        tree.Replay(static_cast<size_t>(w), wins, alive);
        if (query_ctx_ != nullptr && ++since_probe >= 2048) {
          since_probe = 0;
          DASHDB_RETURN_IF_ERROR(query_ctx_->CheckAlive());
        }
      }
      out.result.rows = std::move(sorted);
      out.result.affected_rows =
          static_cast<int64_t>(out.result.rows.num_rows());
      finish_analyze();
      return out;
    }
    out.result.rows = std::move(merged);
    if (!sel.order_by.empty()) {
      // Star-expansion fallback: gather everything, resolve against the
      // shard output columns, re-sort globally (the pre-PR path).
      std::vector<uint32_t> order(out.result.rows.num_rows());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::vector<std::pair<int, bool>> keys;  // col idx, desc
      for (const auto& oi : sel.order_by) {
        int idx = -1;
        if (oi.ordinal > 0) {
          idx = oi.ordinal - 1;
        } else if (oi.expr && oi.expr->kind == ExprKind::kColumnRef) {
          for (size_t c = 0; c < cols.size(); ++c) {
            if (NormalizeIdent(cols[c].name) == oi.expr->name) {
              idx = static_cast<int>(c);
            }
          }
        }
        if (idx < 0) {
          return Status::Unimplemented(
              "MPP ORDER BY supports output columns, ordinals, and "
              "select-list expressions");
        }
        keys.emplace_back(idx, oi.desc);
      }
      const RowBatch& rb = out.result.rows;
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) {
                         for (auto [c, desc] : keys) {
                           int cmp = rb.columns[c].GetValue(a).Compare(
                               rb.columns[c].GetValue(b));
                           if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
                         }
                         return false;
                       });
      RowBatch sorted;
      for (const auto& c : cols) sorted.columns.emplace_back(c.type);
      int64_t limit = sel.limit < 0
                          ? static_cast<int64_t>(order.size())
                          : sel.limit;
      for (size_t i = sel.offset;
           i < order.size() &&
           static_cast<int64_t>(sorted.num_rows()) < limit;
           ++i) {
        for (size_t c = 0; c < cols.size(); ++c) {
          sorted.columns[c].AppendFrom(out.result.rows.columns[c], order[i]);
        }
      }
      out.result.rows = std::move(sorted);
    } else if (sel.limit >= 0 || sel.offset > 0) {
      RowBatch limited;
      for (const auto& c : cols) limited.columns.emplace_back(c.type);
      int64_t limit = sel.limit < 0
                          ? static_cast<int64_t>(out.result.rows.num_rows())
                          : sel.limit;
      for (size_t i = sel.offset;
           i < out.result.rows.num_rows() &&
           static_cast<int64_t>(limited.num_rows()) < limit;
           ++i) {
        for (size_t c = 0; c < cols.size(); ++c) {
          limited.columns[c].AppendFrom(out.result.rows.columns[c], i);
        }
      }
      out.result.rows = std::move(limited);
    }
    out.result.affected_rows =
        static_cast<int64_t>(out.result.rows.num_rows());
    finish_analyze();
    return out;
  }

  // ---- two-phase aggregation ----
  // Build the partial (shard) statement: group exprs + decomposed partials.
  if (sel.having) {
    return Status::Unimplemented("MPP HAVING not supported");
  }
  auto partial_p = std::make_shared<ast::SelectStmt>(sel);
  ast::SelectStmt& partial = *partial_p;
  partial.order_by.clear();
  partial.limit = -1;
  partial.offset = 0;
  partial.items.clear();
  // Group columns first.
  for (size_t g = 0; g < sel.group_by.size(); ++g) {
    ast::SelectItem it;
    it.expr = sel.group_by[g];
    it.alias = "G" + std::to_string(g);
    partial.items.push_back(std::move(it));
  }
  std::vector<FinalItem> finals;
  std::vector<MergeOp> merges;  // per partial agg column
  auto add_partial = [&](ast::ExprP call, MergeOp m) -> int {
    ast::SelectItem it;
    it.expr = std::move(call);
    it.alias = "P" + std::to_string(partial.items.size());
    partial.items.push_back(std::move(it));
    merges.push_back(m);
    return static_cast<int>(merges.size()) - 1;
  };
  for (const auto& item : sel.items) {
    const ast::ExprP& e = item.expr;
    if (IsSimpleAgg(e)) {
      AggKind k;
      AggKindFromName(e->name, &k);
      FinalItem f;
      if (e->name == "AVG" || e->name == "MEAN") {
        auto sum = std::make_shared<ast::Expr>(*e);
        sum->name = "SUM";
        auto cnt = std::make_shared<ast::Expr>(*e);
        cnt->name = "COUNT";
        f.kind = FinalItem::kAvg;
        f.sum_idx = add_partial(sum, MergeOp::kSum);
        f.count_idx = add_partial(cnt, MergeOp::kSum);
      } else {
        f.kind = FinalItem::kAggDirect;
        MergeOp m = MergeOp::kSum;
        if (e->name == "MIN") m = MergeOp::kMin;
        if (e->name == "MAX") m = MergeOp::kMax;
        f.partial_idx = add_partial(std::make_shared<ast::Expr>(*e), m);
      }
      finals.push_back(f);
      continue;
    }
    // Must be a group expression.
    bool found = false;
    for (size_t g = 0; g < sel.group_by.size(); ++g) {
      if (AstToString(sel.group_by[g]) == AstToString(e)) {
        FinalItem f;
        f.kind = FinalItem::kGroup;
        f.group_idx = static_cast<int>(g);
        finals.push_back(f);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::Unimplemented(
          "MPP SELECT items must be group expressions or simple aggregates "
          "(COUNT/SUM/MIN/MAX/AVG)");
    }
  }
  const size_t n_groups = sel.group_by.size();
  // Run partials on every shard and merge by group key.
  struct GroupAccum {
    std::vector<Value> groups;
    std::vector<Value> partials;
  };
  std::unordered_map<std::string, GroupAccum> table;
  std::vector<OutputCol> partial_cols;
  ShardFn fn = MakeShardSelectFn(partial_p, analyze, bloom_filters);
  MergeCharge mem{query_ctx_.get()};
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (query_ctx_ != nullptr) {
      DASHDB_RETURN_IF_ERROR(query_ctx_->CheckAlive());
    }
    double secs = 0;
    MppExecStats sstats;
    DASHDB_ASSIGN_OR_RETURN(
        ShardAttemptOut r,
        RunShardResilient(static_cast<int>(s), /*idempotent=*/true, fn,
                          &sstats, &secs));
    out.shard_seconds[s] = secs;
    record_shard(s, sstats, r, secs);
    const RowBatch& batch = r.batch;
    DASHDB_RETURN_IF_ERROR(
        mem.Add(BatchMemoryBytes(batch), "MPP partial-aggregate merge"));
    if (partial_cols.empty()) partial_cols = r.cols;
    for (size_t i = 0; i < batch.num_rows(); ++i) {
      std::string key;
      for (size_t g = 0; g < n_groups; ++g) {
        key += batch.columns[g].GetValue(i).ToString();
        key += '\x1f';
      }
      auto it = table.find(key);
      if (it == table.end()) {
        GroupAccum acc;
        for (size_t g = 0; g < n_groups; ++g) {
          acc.groups.push_back(batch.columns[g].GetValue(i));
        }
        for (size_t p = 0; p < merges.size(); ++p) {
          acc.partials.push_back(batch.columns[n_groups + p].GetValue(i));
        }
        table.emplace(std::move(key), std::move(acc));
        continue;
      }
      for (size_t p = 0; p < merges.size(); ++p) {
        Value incoming = batch.columns[n_groups + p].GetValue(i);
        Value& cur = it->second.partials[p];
        if (incoming.is_null()) continue;
        if (cur.is_null()) {
          cur = incoming;
          continue;
        }
        switch (merges[p]) {
          case MergeOp::kSum:
            cur = cur.type() == TypeId::kDouble ||
                          incoming.type() == TypeId::kDouble
                      ? Value::Double(cur.AsDouble() + incoming.AsDouble())
                      : Value::Int64(cur.AsInt() + incoming.AsInt());
            break;
          case MergeOp::kMin:
            if (incoming.Compare(cur) < 0) cur = incoming;
            break;
          case MergeOp::kMax:
            if (incoming.Compare(cur) > 0) cur = incoming;
            break;
        }
      }
    }
  }
  // Final projection.
  std::vector<OutputCol> final_cols;
  for (size_t i = 0; i < sel.items.size(); ++i) {
    const FinalItem& f = finals[i];
    std::string name = !sel.items[i].alias.empty()
                           ? sel.items[i].alias
                           : (sel.items[i].expr->kind == ExprKind::kColumnRef
                                  ? sel.items[i].expr->name
                                  : sel.items[i].expr->name);
    TypeId t;
    if (f.kind == FinalItem::kGroup) {
      t = partial_cols[f.group_idx].type;
    } else if (f.kind == FinalItem::kAvg) {
      t = TypeId::kDouble;
    } else {
      t = partial_cols[n_groups + f.partial_idx].type;
    }
    final_cols.push_back({name, t});
  }
  out.result.columns = final_cols;
  for (const auto& c : final_cols) {
    out.result.rows.columns.emplace_back(c.type);
  }
  // Global aggregate with no groups and no rows still yields one row.
  if (table.empty() && n_groups == 0) {
    GroupAccum acc;
    for (size_t p = 0; p < merges.size(); ++p) {
      acc.partials.push_back(Value::Null(TypeId::kInt64));
    }
    table.emplace("", std::move(acc));
  }
  for (auto& [key, acc] : table) {
    for (size_t i = 0; i < finals.size(); ++i) {
      const FinalItem& f = finals[i];
      Value v = Value::Null(final_cols[i].type);
      if (f.kind == FinalItem::kGroup) {
        v = acc.groups[f.group_idx];
      } else if (f.kind == FinalItem::kAggDirect) {
        v = acc.partials[f.partial_idx];
        if (v.is_null() && merges[f.partial_idx] == MergeOp::kSum &&
            partial_cols[n_groups + f.partial_idx].type == TypeId::kInt64 &&
            n_groups == 0) {
          // COUNT over zero rows is 0, not NULL.
          const ast::ExprP& e = sel.items[i].expr;
          if (e->name == "COUNT") v = Value::Int64(0);
        }
      } else {  // AVG
        Value sum = acc.partials[f.sum_idx];
        Value cnt = acc.partials[f.count_idx];
        if (!sum.is_null() && !cnt.is_null() && cnt.AsInt() > 0) {
          v = Value::Double(sum.AsDouble() / cnt.AsDouble());
        }
      }
      out.result.rows.columns[i].AppendValue(v);
    }
  }
  // Coordinator ORDER BY / LIMIT over the merged result.
  if (!sel.order_by.empty() || sel.limit >= 0) {
    std::vector<uint32_t> order(out.result.rows.num_rows());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::vector<std::pair<int, bool>> keys;
    for (const auto& oi : sel.order_by) {
      // final_cols run parallel to sel.items, so select-list resolution
      // (names, ordinals, and whole select-list expressions — e.g.
      // ORDER BY COUNT(*)) indexes the merged result directly.
      int idx = ResolveOrderKeyIdx(oi, sel);
      if (idx < 0) {
        return Status::Unimplemented(
            "MPP ORDER BY supports output columns, ordinals, and "
            "select-list expressions");
      }
      keys.emplace_back(idx, oi.desc);
    }
    const RowBatch& rb = out.result.rows;
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      for (auto [c, desc] : keys) {
        int cmp =
            rb.columns[c].GetValue(a).Compare(rb.columns[c].GetValue(b));
        if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
      }
      return false;
    });
    RowBatch sorted;
    for (const auto& c : final_cols) sorted.columns.emplace_back(c.type);
    int64_t limit =
        sel.limit < 0 ? static_cast<int64_t>(order.size()) : sel.limit;
    for (size_t i = sel.offset;
         i < order.size() && static_cast<int64_t>(sorted.num_rows()) < limit;
         ++i) {
      for (size_t c = 0; c < final_cols.size(); ++c) {
        sorted.columns[c].AppendFrom(out.result.rows.columns[c], order[i]);
      }
    }
    out.result.rows = std::move(sorted);
  }
  out.result.affected_rows = static_cast<int64_t>(out.result.rows.num_rows());
  finish_analyze();
  return out;
}

std::shared_ptr<const std::vector<RuntimeScanFilter>>
MppDatabase::PrepareBloomPushdown(const ast::SelectStmt& sel) {
  if (sel.from.size() < 2 || shards_.empty()) return nullptr;
  if (sessions_[0]->optimizer_mode() != OptimizerMode::kCost) return nullptr;
  // Inner/cross joins of plain base tables only: a Bloom filter drops
  // probe rows, which an outer join must instead null-extend.
  for (const auto& ref : sel.from) {
    if (ref.subquery || !ref.using_cols.empty()) return nullptr;
    if (ref.join != ast::TableRef::JoinKind::kNone &&
        ref.join != ast::TableRef::JoinKind::kInner &&
        ref.join != ast::TableRef::JoinKind::kCross) {
      return nullptr;
    }
  }
  struct Item {
    std::string schema_name;
    std::string qualified;
    std::string alias;
    bool replicated = false;
    std::shared_ptr<CatalogEntry> entry;
  };
  std::vector<Item> items;
  for (const auto& ref : sel.from) {
    Item it;
    it.schema_name = ref.schema.empty() ? sessions_[0]->default_schema()
                                        : NormalizeIdent(ref.schema);
    auto entry = shards_[0]->catalog()->Lookup(it.schema_name,
                                               NormalizeIdent(ref.table));
    if (!entry.ok()) return nullptr;
    it.entry = std::move(entry).value();
    it.qualified = it.entry->schema.QualifiedName();
    auto rep = replicated_.find(it.qualified);
    if (rep == replicated_.end()) return nullptr;
    it.replicated = rep->second;
    it.alias = !ref.alias.empty() ? ref.alias : NormalizeIdent(ref.table);
    items.push_back(std::move(it));
  }
  std::vector<ast::ExprP> conjs;
  SplitAndConjuncts(sel.where, &conjs);
  for (const auto& ref : sel.from) {
    SplitAndConjuncts(ref.join_condition, &conjs);
  }
  // Resolves one column ref to (item, schema column); -1 on miss/ambiguity.
  auto owner_of = [&](const ast::Expr& c, int* col) -> int {
    if (c.kind != ExprKind::kColumnRef) return -1;
    int found = -1, fcol = -1;
    for (size_t i = 0; i < items.size(); ++i) {
      if (!c.qualifier.empty() && items[i].alias != c.qualifier) continue;
      int ci = items[i].entry->schema.FindColumn(c.name);
      if (ci < 0) continue;
      if (found >= 0) return -1;
      found = static_cast<int>(i);
      fcol = ci;
    }
    *col = fcol;
    return found;
  };
  // Item owning every column ref of an expression; -1 mixed, -2 none.
  auto item_of = [&](const ast::ExprP& e) -> int {
    std::vector<const ast::Expr*> refs;
    CollectRefs(e, &refs);
    if (refs.empty()) return -2;
    int item = -3;
    for (const auto* r : refs) {
      int col;
      int it = owner_of(*r, &col);
      if (it < 0) return -1;
      if (item == -3) item = it;
      else if (item != it) return -1;
    }
    return item;
  };
  auto result = std::make_shared<std::vector<RuntimeScanFilter>>();
  auto& ins = GlobalMppInstruments();
  for (const auto& conj : conjs) {
    // fact.col = dim.col with a hash-distributed fact and replicated dim.
    if (conj->kind != ExprKind::kBinary || conj->bin_op != ast::BinOp::kEq) {
      continue;
    }
    int lc, rc;
    int li = owner_of(*conj->children[0], &lc);
    int ri = owner_of(*conj->children[1], &rc);
    if (li < 0 || ri < 0 || li == ri) continue;
    int fact = -1, dim = -1, fact_col = -1, dim_col = -1;
    if (!items[li].replicated && items[ri].replicated) {
      fact = li; fact_col = lc; dim = ri; dim_col = rc;
    } else if (!items[ri].replicated && items[li].replicated) {
      fact = ri; fact_col = rc; dim = li; dim_col = lc;
    } else {
      continue;
    }
    // Identical non-double key types: the scan-side cell hash must agree
    // with the coordinator's value hash for equal keys.
    TypeId ft = items[fact].entry->schema.columns()[fact_col].type;
    TypeId dt = items[dim].entry->schema.columns()[dim_col].type;
    if (ft != dt || ft == TypeId::kDouble) continue;
    // Only worth shipping when the dimension is locally filtered.
    std::vector<ast::ExprP> dim_filters;
    for (const auto& c : conjs) {
      if (c != conj && item_of(c) == dim) dim_filters.push_back(c);
    }
    if (dim_filters.empty()) continue;
    // Evaluate the filtered dimension once on shard 0 (replicas are full
    // copies) and collect the surviving join keys.
    auto dsel = std::make_shared<ast::SelectStmt>();
    ast::SelectItem si;
    si.expr = ast::MakeColumnRef(
        items[dim].alias, items[dim].entry->schema.columns()[dim_col].name);
    dsel->items.push_back(std::move(si));
    ast::TableRef tr;
    tr.schema = items[dim].schema_name;
    tr.table = items[dim].entry->schema.table_name();
    tr.alias = items[dim].alias;
    dsel->from.push_back(std::move(tr));
    for (const auto& c : dim_filters) {
      dsel->where = dsel->where
                        ? ast::MakeBinary(ast::BinOp::kAnd, dsel->where, c)
                        : c;
    }
    BindOptions bopts;
    bopts.scan = shards_[0]->MakeScanOptions();
    Binder binder(shards_[0]->catalog(), sessions_[0].get(), bopts);
    auto root = binder.BindSelect(*dsel);
    if (!root.ok()) continue;
    // Coordinator-side dimension scan is governed too (best effort: a
    // cancelled scan just skips the filter; the shard checks still abort).
    AttachQueryContext(root.value().get(), query_ctx_.get());
    auto keys = DrainOperator(root.value().get());
    if (!keys.ok()) continue;
    const ColumnVector& kv = keys.value().columns[0];
    BloomPrefilter bloom;
    bloom.Init(std::max<size_t>(1, kv.size()));
    for (size_t r = 0; r < kv.size(); ++r) {
      if (kv.IsNull(r)) continue;
      bloom.Add(HashValue(kv.GetValue(r)));
    }
    // Round-trip through the wire form the shard request would carry.
    std::string bytes = bloom.Serialize();
    ins.bloom_filters->Add(1);
    ins.bloom_bytes->Add(bytes.size());
    auto wire = std::make_shared<BloomPrefilter>();
    if (!wire->Deserialize(bytes)) continue;
    RuntimeScanFilter f;
    f.table = items[fact].qualified;
    f.column = items[fact].entry->schema.columns()[fact_col].name;
    f.bloom = std::move(wire);
    result->push_back(std::move(f));
  }
  if (result->empty()) return nullptr;
  return result;
}

MppDatabase::ShardFn MppDatabase::MakeShardSelectFn(
    std::shared_ptr<ast::SelectStmt> stmt, bool analyze,
    std::shared_ptr<const std::vector<RuntimeScanFilter>> filters) {
  return [this, stmt, analyze, filters](int shard, bool speculative,
                                        QueryContext* qctx,
                                        ShardAttemptOut* o) -> Status {
    if (qctx != nullptr) DASHDB_RETURN_IF_ERROR(qctx->CheckAlive());
    DASHDB_RETURN_IF_ERROR(FaultInjector::Global().Evaluate(kFaultShardStall));
    std::shared_ptr<Session> session =
        speculative ? shards_[shard]->CreateSession() : sessions_[shard];
    if (speculative) {
      // A fresh session must plan identically to the primary's.
      session->set_optimizer_mode(sessions_[shard]->optimizer_mode());
      session->set_adaptive_enabled(sessions_[shard]->adaptive_enabled());
      session->set_shared_scan_enabled(sessions_[shard]->shared_scan_enabled());
      session->set_serial_sort(sessions_[shard]->serial_sort());
      session->set_topn_enabled(sessions_[shard]->topn_enabled());
    }
    BindOptions bopts;
    bopts.scan = shards_[shard]->MakeScanOptions();
    bopts.scan.shared_scan = session->shared_scan_enabled();
    Binder binder(shards_[shard]->catalog(), session.get(), bopts);
    // Coordinator Bloom filters apply at bind time only; clear right after
    // so later statements on this session never see stale filters.
    if (filters) {
      for (const auto& f : *filters) session->AddRuntimeFilter(f);
    }
    auto bound = binder.BindSelect(*stmt);
    session->ClearRuntimeFilters();
    DASHDB_RETURN_IF_ERROR(bound.status());
    OperatorPtr root = std::move(bound).value();
    // The shard-local plan probes the attempt's governor at every operator
    // Open/Next and morsel boundary; its memory charges roll up to the
    // query root's budget.
    AttachQueryContext(root.get(), qctx);
    // Shard results travel through the flow-controlled exchange: a producer
    // thread drains the plan into size-bounded dictionary-coded chunks and
    // blocks whenever the credit window fills (backpressure); this thread
    // decodes chunks into the attempt payload as they arrive. The fn stays
    // synchronous overall, so retry/speculation semantics are unchanged.
    constexpr size_t kChunkTargetBytes = 64 << 10;
    constexpr size_t kCreditWindow = 4;
    ExchangeChannel channel(kCreditWindow);
    std::thread producer([&] {
      Status st = root->Open();
      RowBatch batch;
      while (st.ok()) {
        Result<bool> more = root->Next(&batch);
        if (!more.ok()) {
          st = more.status();
          break;
        }
        if (!more.value()) break;
        batch.Compact();
        const size_t n = batch.num_rows();
        if (n == 0) continue;
        const int64_t total = BatchMemoryBytes(batch);
        size_t per_chunk = n;
        if (static_cast<size_t>(total) > kChunkTargetBytes) {
          per_chunk = std::max<size_t>(
              1, n * kChunkTargetBytes / static_cast<size_t>(total));
        }
        for (size_t begin = 0; begin < n; begin += per_chunk) {
          const size_t end = std::min(n, begin + per_chunk);
          ExchangeChunk chunk;
          chunk.payload = EncodeExchangeBatch(batch, begin, end);
          chunk.rows = end - begin;
          chunk.raw_bytes =
              static_cast<size_t>(total) * (end - begin) / n;
          channel.Push(std::move(chunk));
        }
      }
      channel.Close(std::move(st));
    });
    o->cols = root->output();
    o->batch = RowBatch{};  // retries reuse the attempt payload
    for (const OutputCol& c : o->cols) o->batch.columns.emplace_back(c.type);
    MppInstruments& ins = GlobalMppInstruments();
    Status decode_err;
    Status produce_st;
    ExchangeChunk chunk;
    while (channel.Pop(&chunk, &produce_st)) {
      if (decode_err.ok()) {
        decode_err = DecodeExchangeBatch(chunk.payload, &o->batch);
        if (!decode_err.ok()) channel.CancelConsumer();
        ins.exchange_chunks->Add(1);
        ins.exchange_bytes->Add(static_cast<int64_t>(chunk.raw_bytes));
        ins.exchange_compressed_bytes->Add(
            static_cast<int64_t>(chunk.payload.size()));
      }
    }
    ins.exchange_stalls->Add(static_cast<int64_t>(channel.stalls()));
    producer.join();
    DASHDB_RETURN_IF_ERROR(decode_err);
    DASHDB_RETURN_IF_ERROR(produce_st);
    if (analyze) {
      o->analyzed_plan = root->AnalyzeString();
      auto t = std::make_shared<Trace>();
      root->AddTraceSpans(t.get(), Trace::kNoParent);
      o->shard_trace = std::move(t);
    }
    return Status::OK();
  };
}

Result<MppQueryResult> MppDatabase::Execute(const std::string& sql) {
  return Execute(sql, nullptr);
}

ResultCache::Versions MppDatabase::CoordinatorVersions() {
  ResultCache::Versions v;
  if (!shards_.empty()) {
    Engine& s0 = *shards_.front();
    v.catalog = s0.catalog()->version();
    v.stats = s0.stats_version();
    v.data = s0.data_version();
  }
  v.data += data_version_.load(std::memory_order_acquire);
  return v;
}

Result<MppQueryResult> MppDatabase::Execute(
    const std::string& sql, std::shared_ptr<QueryContext> qctx) {
  query_ctx_ = qctx != nullptr ? std::move(qctx)
                               : std::make_shared<QueryContext>();
  // Clear on every exit so a finished statement's governor never gates the
  // next one (the coordinator executes one statement at a time).
  struct Scope {
    MppDatabase* db;
    ~Scope() { db->query_ctx_.reset(); }
  } scope{this};
  DASHDB_ASSIGN_OR_RETURN(ast::StatementP stmt, ParseStatement(sql));
  switch (stmt->kind) {
    case ast::StmtKind::kSelect: {
      if (result_cache_enabled_ && stmt->select &&
          IsResultCacheableSelect(*stmt->select)) {
        // Versions captured before the lookup: a write racing this query
        // can only skip the insert below, never produce a stale hit.
        const ResultCache::Versions v = CoordinatorVersions();
        if (std::shared_ptr<const QueryResult> cached = result_cache_.Lookup(
                sql, Dialect::kAnsi, "PUBLIC", v)) {
          MppQueryResult out;
          out.result = *cached;
          out.shard_seconds.assign(shards_.size(), 0.0);
          return out;
        }
        Result<MppQueryResult> r = ExecSelect(*stmt->select);
        if (r.ok() && CoordinatorVersions() == v) {
          const int64_t bytes = BatchMemoryBytes(r->result.rows);
          // The retained copy charges this statement's budget; a query that
          // cannot afford it completes normally and just skips caching.
          if (query_ctx_->Charge(bytes, "result cache insert").ok()) {
            result_cache_.Insert(sql, Dialect::kAnsi, "PUBLIC", v,
                                 std::make_shared<QueryResult>(r->result),
                                 static_cast<size_t>(bytes));
            query_ctx_->Release(bytes);
          }
        }
        return r;
      }
      return ExecSelect(*stmt->select);
    }
    case ast::StmtKind::kExplain:
      // EXPLAIN ANALYZE runs the query through the coordinator and reports
      // per-shard plans + failover counters; plain EXPLAIN broadcasts so
      // the message shows a shard-local plan.
      if (stmt->explain_analyze && stmt->select) {
        return ExecSelect(*stmt->select, /*analyze=*/true);
      }
      return Broadcast(sql);
    case ast::StmtKind::kInsert:
      data_version_.fetch_add(1, std::memory_order_release);
      return RoutedInsert(*stmt, sql);
    case ast::StmtKind::kSet: {
      // RESULT_CACHE is a coordinator knob (the cache lives here, not on
      // the shards); record it, then broadcast like any SET so shard
      // sessions stay in sync for knobs they do own (SHARED_SCAN, DOP...).
      const std::string name = NormalizeIdent(stmt->set_name);
      if (name == "RESULT_CACHE") {
        const std::string v = NormalizeIdent(stmt->set_value);
        if (v == "ON" || v == "TRUE" || v == "1") {
          result_cache_enabled_ = true;
        } else if (v == "OFF" || v == "FALSE" || v == "0") {
          result_cache_enabled_ = false;
        } else {
          return Status::InvalidArgument("RESULT_CACHE must be ON or OFF");
        }
      }
      return Broadcast(sql);
    }
    default:
      // Conservative: any other statement may write (DDL, UPDATE, DELETE,
      // TRUNCATE, CALL RUNSTATS...). Broadcast DML reaches shard 0, whose
      // versions already stamp cache entries, but bumping the coordinator
      // counter too keeps invalidation independent of routing details.
      data_version_.fetch_add(1, std::memory_order_release);
      return Broadcast(sql);
  }
}

Result<std::vector<size_t>> MppDatabase::ShardRowCounts(
    const std::string& schema, const std::string& table) {
  std::vector<size_t> out;
  for (auto& shard : shards_) {
    DASHDB_ASSIGN_OR_RETURN(auto entry, shard->GetTable(schema, table));
    auto col = std::dynamic_pointer_cast<ColumnTable>(entry->storage);
    auto row = std::dynamic_pointer_cast<RowTable>(entry->storage);
    out.push_back(col ? col->live_row_count()
                      : (row ? row->live_row_count() : 0));
  }
  return out;
}

}  // namespace dashdb
