// MPP coordinator: hash-distributed tables over per-shard engines, DDL/DML
// broadcast and routing, and two-phase distributed query execution
// (shard-local partials + coordinator merge), mirroring the shared-nothing
// scale-out of paper Figure 2.
//
// Shards always remain executable because their file sets live on the
// shared clustered filesystem; node failure only changes WHICH node runs a
// shard (src/mpp/topology.h). Cluster wall-clock for a query is therefore
// modeled as the topology makespan over measured per-shard times.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/threadpool.h"
#include "common/trace.h"
#include "mpp/topology.h"
#include "sql/engine.h"

namespace dashdb {

/// Per-query resilience policy. Shard plans are deterministic and
/// side-effect-free for SELECT, so a failed or slow attempt can simply be
/// re-executed — on a survivor after reassociation, or speculatively while
/// the straggler is still running — and the merged result stays
/// byte-identical to the fault-free run.
struct FailoverPolicy {
  /// Total attempts per shard task (first attempt included).
  int max_attempts_per_shard = 3;
  /// A SELECT attempt running longer than this is classified kTimeout and
  /// re-executed. Generous default: only injected stalls trip it in tests.
  double shard_timeout_seconds = 60.0;
  /// Straggler handling: a shard attempt still running after this long gets
  /// a speculative re-execution on a fresh session; first result wins.
  /// Negative disables speculation (the default — it costs a thread).
  double straggler_after_seconds = -1.0;
  /// Treat kUnavailable from a shard as the owner node dying: FailNode()
  /// reassociates its shards across survivors before the retry (II.E).
  bool failover_on_unavailable = true;
  /// Bounded exponential backoff between attempts, with deterministic
  /// jitter derived from the fault-injector seed.
  double backoff_base_seconds = 0.0002;
  double backoff_max_seconds = 0.005;
};

/// What fault tolerance did during one Execute (observability for tests,
/// benches, and the failover drill).
struct MppExecStats {
  uint64_t shard_retries = 0;        ///< re-executed shard attempts
  uint64_t failovers = 0;            ///< nodes failed over mid-query
  uint64_t timeouts = 0;             ///< attempts past the timeout budget
  uint64_t speculative_launches = 0; ///< straggler re-executions started
  uint64_t speculative_wins = 0;     ///< ... that beat the primary
};

// --- flow-controlled shard -> coordinator exchange -------------------------
//
// Shard SELECT results no longer materialize in one piece on the producer
// side: the shard plan drains into size-bounded, column-encoded chunks that
// travel through a credit-window channel. The producer blocks (a "stall")
// whenever the full window is in flight, so a slow coordinator backpressures
// the shard instead of letting it buffer an unbounded result. VARCHAR
// columns ride dictionary-coded (distinct strings once + minimal-width
// codes), which is where the wire wins over raw row shipping.

/// One wire unit of the exchange.
struct ExchangeChunk {
  std::string payload;   ///< column-encoded rows (EncodeExchangeBatch)
  size_t raw_bytes = 0;  ///< in-memory bytes this chunk decodes back to
  size_t rows = 0;
};

/// Bounded SPSC channel with credit-based backpressure. Push blocks while
/// `window` chunks are in flight; Close publishes the producer's terminal
/// status; Pop drains remaining chunks after Close before reporting it.
class ExchangeChannel {
 public:
  explicit ExchangeChannel(size_t window = 4)
      : window_(window == 0 ? 1 : window) {}

  /// Blocks until a credit frees up (counted as one stall), then enqueues.
  /// Chunks pushed after CancelConsumer are dropped without blocking.
  void Push(ExchangeChunk chunk);

  /// Producer-side terminal: no more chunks; `status` is the produce result.
  void Close(Status status);

  /// Consumer-side abort: unblocks and discards the producer's remaining
  /// pushes (decode error / cancelled query).
  void CancelConsumer();

  /// Returns true with the next chunk, or false when closed and drained
  /// (then *status receives the producer's terminal status).
  bool Pop(ExchangeChunk* chunk, Status* status);

  uint64_t stalls() const;
  size_t high_water() const;  ///< max chunks ever simultaneously in flight

 private:
  const size_t window_;
  mutable std::mutex mu_;
  std::condition_variable can_push_, can_pop_;
  std::deque<ExchangeChunk> queue_;
  bool closed_ = false;
  bool cancelled_ = false;
  Status status_;
  uint64_t stalls_ = 0;
  size_t high_water_ = 0;
};

/// Encodes rows [begin, end) of a compacted batch into the exchange wire
/// format: per column a type byte, optional null bytes, then 8-byte values
/// (integer-backed types and DOUBLE) or a string dictionary plus 1/2/4-byte
/// codes sized to the dictionary (VARCHAR).
std::string EncodeExchangeBatch(const RowBatch& rows, size_t begin,
                                size_t end);

/// Appends a chunk's rows onto `into` (columns must already exist with the
/// producing plan's output types).
Status DecodeExchangeBatch(const std::string& payload, RowBatch* into);

/// A distributed query's result plus per-shard timing.
struct MppQueryResult {
  QueryResult result;
  std::vector<double> shard_seconds;
  MppExecStats exec;
  /// Per-shard breakdown of `exec` for SELECT paths (empty for DDL/DML);
  /// EXPLAIN ANALYZE renders these as per-shard attempt/retry counters.
  std::vector<MppExecStats> shard_exec;
  /// Span tree for EXPLAIN ANALYZE: MppQuery -> Shard -> operator spans.
  /// Ids are deterministic (shards execute serially in shard order), so the
  /// tree replays exactly under a fixed fault seed.
  std::shared_ptr<const Trace> trace;

  /// Modeled cluster wall-clock on `topo` (max over nodes of LPT schedule).
  double MakespanOn(const ClusterTopology& topo) const {
    return topo.Makespan(shard_seconds);
  }
};

class MppDatabase {
 public:
  /// `shards_per_node` shards per node ("several factors larger than the
  /// number of servers"), each shard backed by its own engine instance.
  MppDatabase(int nodes, int shards_per_node, int cores_per_node,
              size_t ram_per_node, EngineConfig shard_config = {});

  ClusterTopology* topology() { return &topo_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  Engine* shard_engine(int shard) { return shards_[shard].get(); }

  /// Creates a table on every shard. `replicated` tables receive full
  /// copies on every shard (dimension tables, enabling shard-local joins);
  /// otherwise rows hash-distribute on `schema.distribution_key()` (or
  /// round-robin when -1).
  Status CreateTable(const TableSchema& schema, bool replicated = false);

  /// Distributes a batch of rows into the shards.
  Status Load(const std::string& schema, const std::string& table,
              const RowBatch& rows);

  /// Executes a statement across the cluster.
  /// SELECT: runs shard-local plans and merges (two-phase aggregation for
  /// COUNT/SUM/MIN/MAX/AVG, coordinator-side ORDER BY/LIMIT).
  /// DDL/UPDATE/DELETE: broadcast. INSERT: routed by distribution key.
  Result<MppQueryResult> Execute(const std::string& sql);

  /// Governed execution: the statement runs under `qctx` (null makes a
  /// fresh ungoverned context). Cancel()/deadline/budget on the root stop
  /// shard-local plans at the next morsel boundary, abort the coordinator
  /// between shards, and bound the merged-result memory; every shard
  /// attempt runs under a child of this root.
  Result<MppQueryResult> Execute(const std::string& sql,
                                 std::shared_ptr<QueryContext> qctx);

  /// Per-shard live row count of a table (balance checks).
  Result<std::vector<size_t>> ShardRowCounts(const std::string& schema,
                                             const std::string& table);

  /// Every table registered via CreateTable: (qualified name, replicated).
  std::vector<std::pair<std::string, bool>> ListDistributedTables() const {
    std::vector<std::pair<std::string, bool>> out;
    for (const auto& [name, rep] : replicated_) out.emplace_back(name, rep);
    return out;
  }

  /// Resilience knobs; adjust before Execute (not thread-safe mid-query).
  FailoverPolicy& failover_policy() { return fail_policy_; }

 private:
  /// One shard attempt's payload: SELECT paths fill batch/cols, the
  /// broadcast path fills qr. Each attempt owns its payload so concurrent
  /// (speculative) attempts never share output state.
  struct ShardAttemptOut {
    RowBatch batch;
    std::vector<OutputCol> cols;
    QueryResult qr;
    /// EXPLAIN ANALYZE payloads (filled when the shard fn runs analyzed):
    /// the annotated shard plan and its operator span tree.
    std::string analyzed_plan;
    std::shared_ptr<Trace> shard_trace;
  };
  struct AttemptResult {
    Status status;
    ShardAttemptOut out;
  };
  /// A re-executable shard task. MUST be safe to run twice concurrently
  /// when `speculative` differs (fresh session on the speculative run).
  /// `qctx` is the attempt's governor (a child of the query root, or the
  /// root itself for non-speculative attempts; may be null for ungoverned
  /// callers): the fn attaches it to the shard-local plan so cancellation,
  /// deadlines, and budgets reach every morsel it runs.
  using ShardFn = std::function<Status(int shard, bool speculative,
                                       QueryContext* qctx,
                                       ShardAttemptOut* out)>;

  /// A re-executable bind+drain of one shard-local SELECT. Captures the
  /// statement by shared_ptr so re-executions stay valid; the
  /// speculative run binds against a fresh session (copying the primary
  /// session's optimizer settings). With `analyze` the fn also fills the
  /// attempt's analyzed_plan/shard_trace from the drained plan's operator
  /// metrics. `filters` are coordinator-built Bloom semi-join filters,
  /// installed on the binding session for the bind only.
  ShardFn MakeShardSelectFn(
      std::shared_ptr<ast::SelectStmt> stmt, bool analyze = false,
      std::shared_ptr<const std::vector<RuntimeScanFilter>> filters = nullptr);

  /// Cross-shard Bloom semi-join pushdown (DESIGN.md "Cost-based
  /// optimization"): for a join of a hash-distributed fact table with a
  /// locally-filtered replicated dimension, evaluate the dimension filter
  /// once on shard 0 (replicas are full copies), build a Bloom filter over
  /// the surviving join keys, and serialize it as it would ride in the
  /// shard request. Shard-local binders semi-filter the fact scan with it.
  /// Returns null when the query doesn't qualify; best-effort otherwise.
  std::shared_ptr<const std::vector<RuntimeScanFilter>> PrepareBloomPushdown(
      const ast::SelectStmt& sel);

  /// Runs one shard task under the failover policy: fault-point gate,
  /// retry/backoff, timeout classification, node failover, speculation.
  /// `idempotent` marks side-effect-free tasks (SELECT); non-idempotent
  /// tasks only retry failures injected before the task ran.
  Result<ShardAttemptOut> RunShardResilient(int shard, bool idempotent,
                                            const ShardFn& fn,
                                            MppExecStats* stats,
                                            double* seconds);
  /// First-result-wins speculation: the primary attempt runs async under
  /// its own child QueryContext; if the speculative re-execution finishes
  /// first, the loser is actively cancelled through that context and
  /// joined before returning (it stops at its next morsel boundary), so no
  /// attempt ever outlives the Execute call that launched it.
  Status AttemptWithSpeculation(int shard, const ShardFn& fn,
                                MppExecStats* stats, ShardAttemptOut* out);

  Result<MppQueryResult> ExecSelect(const ast::SelectStmt& sel,
                                    bool analyze = false);
  /// Version stamps for the coordinator result cache: shard 0's catalog /
  /// stats / data versions (broadcast DDL, RUNSTATS, and broadcast DML all
  /// reach shard 0) plus the coordinator's own data counter (covers routed
  /// INSERTs and Loads that may skip shard 0 entirely).
  ResultCache::Versions CoordinatorVersions();
  Result<MppQueryResult> Broadcast(const std::string& sql);
  Result<MppQueryResult> RoutedInsert(const ast::Statement& st,
                                      const std::string& sql);
  int RouteRow(const TableSchema& schema, const std::vector<Value>& row);

  FailoverPolicy fail_policy_;
  /// The in-flight statement's root governor (the coordinator executes one
  /// statement at a time; set/cleared by the governed Execute overload).
  std::shared_ptr<QueryContext> query_ctx_;
  ClusterTopology topo_;
  std::vector<std::unique_ptr<Engine>> shards_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::map<std::string, bool> replicated_;  ///< qualified name -> replicated
  size_t round_robin_ = 0;
  /// Coordinator-level result cache (SET RESULT_CACHE ON): whole merged
  /// MppQueryResults keyed on statement text, stamped with
  /// CoordinatorVersions() so any write anywhere in the cluster invalidates.
  ResultCache result_cache_;
  std::atomic<uint64_t> data_version_{1};
  bool result_cache_enabled_ = false;
};

}  // namespace dashdb
