// MPP coordinator: hash-distributed tables over per-shard engines, DDL/DML
// broadcast and routing, and two-phase distributed query execution
// (shard-local partials + coordinator merge), mirroring the shared-nothing
// scale-out of paper Figure 2.
//
// Shards always remain executable because their file sets live on the
// shared clustered filesystem; node failure only changes WHICH node runs a
// shard (src/mpp/topology.h). Cluster wall-clock for a query is therefore
// modeled as the topology makespan over measured per-shard times.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/threadpool.h"
#include "mpp/topology.h"
#include "sql/engine.h"

namespace dashdb {

/// A distributed query's result plus per-shard timing.
struct MppQueryResult {
  QueryResult result;
  std::vector<double> shard_seconds;

  /// Modeled cluster wall-clock on `topo` (max over nodes of LPT schedule).
  double MakespanOn(const ClusterTopology& topo) const {
    return topo.Makespan(shard_seconds);
  }
};

class MppDatabase {
 public:
  /// `shards_per_node` shards per node ("several factors larger than the
  /// number of servers"), each shard backed by its own engine instance.
  MppDatabase(int nodes, int shards_per_node, int cores_per_node,
              size_t ram_per_node, EngineConfig shard_config = {});

  ClusterTopology* topology() { return &topo_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  Engine* shard_engine(int shard) { return shards_[shard].get(); }

  /// Creates a table on every shard. `replicated` tables receive full
  /// copies on every shard (dimension tables, enabling shard-local joins);
  /// otherwise rows hash-distribute on `schema.distribution_key()` (or
  /// round-robin when -1).
  Status CreateTable(const TableSchema& schema, bool replicated = false);

  /// Distributes a batch of rows into the shards.
  Status Load(const std::string& schema, const std::string& table,
              const RowBatch& rows);

  /// Executes a statement across the cluster.
  /// SELECT: runs shard-local plans and merges (two-phase aggregation for
  /// COUNT/SUM/MIN/MAX/AVG, coordinator-side ORDER BY/LIMIT).
  /// DDL/UPDATE/DELETE: broadcast. INSERT: routed by distribution key.
  Result<MppQueryResult> Execute(const std::string& sql);

  /// Per-shard live row count of a table (balance checks).
  Result<std::vector<size_t>> ShardRowCounts(const std::string& schema,
                                             const std::string& table);

  /// Every table registered via CreateTable: (qualified name, replicated).
  std::vector<std::pair<std::string, bool>> ListDistributedTables() const {
    std::vector<std::pair<std::string, bool>> out;
    for (const auto& [name, rep] : replicated_) out.emplace_back(name, rep);
    return out;
  }

 private:
  Result<MppQueryResult> ExecSelect(const ast::SelectStmt& sel);
  Result<MppQueryResult> Broadcast(const std::string& sql);
  Result<MppQueryResult> RoutedInsert(const ast::Statement& st,
                                      const std::string& sql);
  int RouteRow(const TableSchema& schema, const std::vector<Value>& row);

  ClusterTopology topo_;
  std::vector<std::unique_ptr<Engine>> shards_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::map<std::string, bool> replicated_;  ///< qualified name -> replicated
  size_t round_robin_ = 0;
};

}  // namespace dashdb
