#include "mpp/portability.h"

#include <sstream>

namespace dashdb {

std::string SchemaToManifest(const TableSchema& schema, bool replicated) {
  std::ostringstream os;
  os << schema.schema_name() << "|" << schema.table_name() << "|"
     << (schema.organization() == TableOrganization::kRow ? "ROW" : "COLUMN")
     << "|" << schema.distribution_key() << "|"
     << (replicated ? "R" : "D") << "\n";
  for (const auto& c : schema.columns()) {
    os << c.name << "|" << TypeName(c.type) << "|" << (c.nullable ? 1 : 0)
       << "|" << (c.unique ? 1 : 0) << "\n";
  }
  return os.str();
}

Result<std::pair<TableSchema, bool>> ManifestToSchema(
    const std::string& manifest) {
  std::istringstream is(manifest);
  std::string line;
  if (!std::getline(is, line)) return Status::IOError("empty manifest");
  auto split = [](const std::string& s) {
    std::vector<std::string> parts;
    std::stringstream ss(s);
    std::string p;
    while (std::getline(ss, p, '|')) parts.push_back(p);
    return parts;
  };
  auto head = split(line);
  if (head.size() != 5) return Status::IOError("bad manifest header");
  std::vector<ColumnDef> cols;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    auto f = split(line);
    if (f.size() != 4) return Status::IOError("bad manifest column line");
    ColumnDef c;
    c.name = f[0];
    DASHDB_ASSIGN_OR_RETURN(c.type, TypeFromName(f[1]));
    c.nullable = f[2] == "1";
    c.unique = f[3] == "1";
    cols.push_back(std::move(c));
  }
  TableSchema schema(head[0], head[1], cols,
                     head[2] == "ROW" ? TableOrganization::kRow
                                      : TableOrganization::kColumn);
  schema.set_distribution_key(std::stoi(head[3]));
  return std::make_pair(std::move(schema), head[4] == "R");
}

Status SaveCluster(MppDatabase* db, ClusterFileSystem* fs,
                   const std::string& prefix) {
  for (const auto& [qualified, replicated] : db->ListDistributedTables()) {
    size_t dot = qualified.find('.');
    std::string schema_name = qualified.substr(0, dot);
    std::string table_name = qualified.substr(dot + 1);
    DASHDB_ASSIGN_OR_RETURN(auto entry,
                            db->shard_engine(0)->GetTable(schema_name,
                                                          table_name));
    const TableSchema& schema = entry->schema;
    // Manifest.
    std::string manifest = SchemaToManifest(schema, replicated);
    DASHDB_RETURN_IF_ERROR(fs->WriteFile(
        prefix + "/tables/" + qualified + "/manifest",
        std::vector<uint8_t>(manifest.begin(), manifest.end())));
    // Logical rows: replicated tables live fully on every shard (take
    // shard 0); distributed tables concatenate across shards.
    RowBatch all;
    for (const auto& c : schema.columns()) all.columns.emplace_back(c.type);
    int shard_limit = replicated ? 1 : db->num_shards();
    for (int s = 0; s < shard_limit; ++s) {
      DASHDB_ASSIGN_OR_RETURN(
          auto e, db->shard_engine(s)->GetTable(schema_name, table_name));
      auto col = std::dynamic_pointer_cast<ColumnTable>(e->storage);
      auto row = std::dynamic_pointer_cast<RowTable>(e->storage);
      auto gather = [&](RowBatch& b, const std::vector<uint64_t>&) {
        for (size_t i = 0; i < b.num_rows(); ++i) {
          for (size_t c = 0; c < b.columns.size(); ++c) {
            all.columns[c].AppendFrom(b.columns[c], i);
          }
        }
      };
      std::vector<int> proj;
      for (int c = 0; c < schema.num_columns(); ++c) proj.push_back(c);
      if (col) {
        DASHDB_RETURN_IF_ERROR(col->Scan({}, proj, ScanOptions{}, gather));
      } else if (row) {
        DASHDB_RETURN_IF_ERROR(row->Scan({}, proj, gather));
      }
    }
    std::vector<uint8_t> bytes;
    SerializeBatch(schema, all, &bytes);
    DASHDB_RETURN_IF_ERROR(fs->WriteFile(
        prefix + "/tables/" + qualified + "/data.bin", std::move(bytes)));
  }
  return Status::OK();
}

Status RestoreCluster(MppDatabase* db, const ClusterFileSystem& fs,
                      const std::string& prefix) {
  for (const std::string& path : fs.List(prefix + "/tables/")) {
    if (path.size() < 9 || path.substr(path.size() - 9) != "/manifest") {
      continue;
    }
    DASHDB_ASSIGN_OR_RETURN(const std::vector<uint8_t>* mbytes,
                            fs.ReadFile(path));
    DASHDB_ASSIGN_OR_RETURN(
        auto parsed,
        ManifestToSchema(std::string(mbytes->begin(), mbytes->end())));
    const TableSchema& schema = parsed.first;
    bool replicated = parsed.second;
    if (!db->shard_engine(0)->catalog()->HasSchema(schema.schema_name())) {
      for (int s = 0; s < db->num_shards(); ++s) {
        (void)db->shard_engine(s)->catalog()->CreateSchema(
            schema.schema_name());
      }
    }
    DASHDB_RETURN_IF_ERROR(db->CreateTable(schema, replicated));
    std::string data_path =
        path.substr(0, path.size() - 9) + "/data.bin";
    DASHDB_ASSIGN_OR_RETURN(const std::vector<uint8_t>* dbytes,
                            fs.ReadFile(data_path));
    DASHDB_ASSIGN_OR_RETURN(RowBatch rows,
                            DeserializeBatch(schema, dbytes->data(),
                                             dbytes->size()));
    // Load() re-hashes over THIS cluster's shard count — the new topology.
    DASHDB_RETURN_IF_ERROR(
        db->Load(schema.schema_name(), schema.table_name(), rows));
  }
  return Status::OK();
}

}  // namespace dashdb
