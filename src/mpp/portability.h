// Full-cluster portability (paper II.E): "By copying/moving the clustered
// file system by any method available to your infrastructure you can now
// docker run and deploy quick and easily against an entirely new set of
// hardware with a different physical cluster topology of your choice."
//
// Save writes every distributed table's schema manifest and logical rows
// into the shared filesystem; Restore stands the database up on a NEW
// topology, re-hashing rows across however many shards the new cluster has.
#pragma once

#include <string>

#include "mpp/mpp.h"
#include "storage/clusterfs.h"

namespace dashdb {

/// Persists all of `db`'s tables (schemas + data) under `prefix`.
Status SaveCluster(MppDatabase* db, ClusterFileSystem* fs,
                   const std::string& prefix);

/// Recreates every saved table inside `db` (a freshly constructed cluster,
/// possibly with a completely different node/shard topology) and reloads +
/// redistributes the data.
Status RestoreCluster(MppDatabase* db, const ClusterFileSystem& fs,
                      const std::string& prefix);

/// Serializes a table schema to a one-line-per-field manifest (and back).
std::string SchemaToManifest(const TableSchema& schema, bool replicated);
Result<std::pair<TableSchema, bool>> ManifestToSchema(
    const std::string& manifest);

}  // namespace dashdb
