// Buffer pool with pluggable victim-selection policies (paper II.B.5).
//
// The paper's observation: Big Data analytics are scan-dominated, and LRU
// is pathological under cyclic scans (the page you just evicted is exactly
// the one the next scan needs first). dashDB instead uses a probabilistic
// replacement algorithm with randomized page weights [13] that keeps a
// frequency notion but is insensitive to a page's position in the table,
// achieving hit ratios "within a few percentiles of optimal".
//
// Policies:
//   kLru           - classic least-recently-used (the strawman)
//   kClock         - second-chance clock (common middle ground)
//   kRandomWeight  - the paper's policy: access bumps a page weight; a
//                    victim is the lowest randomized weight among K sampled
//                    candidates, so cyclic scans settle into keeping a
//                    stable hot subset instead of thrashing.
//
// This pool tracks residency and charges simulated I/O on misses; page
// payloads live with their tables (we simulate memory pressure, not spill).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"

namespace dashdb {

/// Identifies one column page of one table.
struct PageId {
  uint64_t table_id = 0;
  uint32_t column = 0;
  uint32_t page_no = 0;

  bool operator==(const PageId& o) const {
    return table_id == o.table_id && column == o.column && page_no == o.page_no;
  }
};

struct PageIdHash {
  size_t operator()(const PageId& p) const {
    return HashCombine(HashInt64(p.table_id),
                       HashInt64((uint64_t{p.column} << 32) | p.page_no));
  }
};

enum class ReplacementPolicy { kLru = 0, kClock, kRandomWeight };

const char* PolicyName(ReplacementPolicy p);

/// Cumulative counters; reads are cheap and lock-protected.
struct BufferPoolStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Frames dropped by the `bufferpool.page_drop` fault point (a clustered
  /// FS read failing under a node's feet); the access then re-reads.
  uint64_t faulted_drops = 0;

  double HitRatio() const {
    return accesses == 0 ? 0.0 : static_cast<double>(hits) / accesses;
  }
};

class BufferPool {
 public:
  BufferPool(size_t capacity_bytes, ReplacementPolicy policy,
             uint64_t seed = 0xDA5BDB);

  /// Records an access to `id` (`bytes` = page footprint). Returns true on
  /// a cache hit; on a miss the page is admitted, evicting victims until it
  /// fits. Thread-safe. When the `bufferpool.page_drop` fault point fires,
  /// a resident frame is discarded first, so the access degrades to a miss
  /// and the page is re-read — the recovery path a lost frame takes.
  ///
  /// `sequential_scan` tags accesses from table scans. Under kLru it
  /// routes the page through cold-end (probationary) admission: a scan
  /// miss inserts at the eviction end instead of the front, so a one-pass
  /// scan of a big table victimizes only its own pages and the hot working
  /// set survives; a scan HIT still promotes (a re-touched page has earned
  /// residency — exactly how a repeatedly-scanned small table climbs out
  /// of probation). kClock/kRandomWeight already admit probationally, so
  /// the tag is a no-op there.
  bool Access(const PageId& id, size_t bytes, bool sequential_scan = false);

  /// Drops a table's pages (DROP/TRUNCATE paths).
  void EvictTable(uint64_t table_id);

  BufferPoolStats stats() const;
  void ResetStats();

  size_t capacity_bytes() const { return capacity_; }
  size_t used_bytes() const;
  ReplacementPolicy policy() const { return policy_; }

 private:
  struct Frame {
    PageId id;
    size_t bytes = 0;
    double weight = 0;                     // kRandomWeight
    bool ref = false;                      // kClock
    std::list<PageId>::iterator lru_pos;   // kLru
  };

  void EvictOneLocked();
  /// Removes one frame from every residency structure (drop/evict paths).
  void RemoveFrameLocked(
      std::unordered_map<PageId, Frame, PageIdHash>::iterator it);

  const size_t capacity_;
  const ReplacementPolicy policy_;

  mutable std::mutex mu_;
  std::unordered_map<PageId, Frame, PageIdHash> frames_;
  std::list<PageId> lru_;                 // front = most recent
  std::vector<PageId> resident_;          // sampling pool for kRandomWeight/kClock
  std::unordered_map<PageId, size_t, PageIdHash> resident_pos_;
  size_t clock_hand_ = 0;
  size_t used_ = 0;
  Rng rng_;
  BufferPoolStats stats_;
};

/// Offline Belady/MIN simulation over a page-access trace with uniform page
/// sizes: returns the hit ratio an omniscient policy would achieve with
/// `capacity_pages` frames. This is the "optimal" yardstick for the
/// paper's "within a few percentiles of optimal" claim.
double SimulateOptimalHitRatio(const std::vector<uint32_t>& trace,
                               size_t capacity_pages);

}  // namespace dashdb
