#include "bufferpool/bufferpool.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>

#include "common/fault_injector.h"
#include "common/metrics.h"

namespace dashdb {

namespace {
/// Armed by resilience tests: a resident frame is lost (clustered FS read
/// error / node memory gone) and the access must recover by re-reading.
constexpr const char* kFaultPageDrop = "bufferpool.page_drop";

/// Registry mirrors of BufferPoolStats (summed across all pools in the
/// process — per-pool breakdowns stay on BufferPool::stats()).
struct PoolInstruments {
  Counter* accesses;
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Counter* page_drop_recovered;
};

PoolInstruments& GlobalPoolInstruments() {
  auto& reg = MetricRegistry::Global();
  static PoolInstruments in{
      reg.GetCounter("bufferpool.accesses"),
      reg.GetCounter("bufferpool.hits"),
      reg.GetCounter("bufferpool.misses"),
      reg.GetCounter("bufferpool.evictions"),
      reg.GetCounter("bufferpool.page_drop_recovered"),
  };
  return in;
}
}  // namespace

const char* PolicyName(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::kLru: return "LRU";
    case ReplacementPolicy::kClock: return "CLOCK";
    case ReplacementPolicy::kRandomWeight: return "RandomWeight";
  }
  return "?";
}

BufferPool::BufferPool(size_t capacity_bytes, ReplacementPolicy policy,
                       uint64_t seed)
    : capacity_(capacity_bytes), policy_(policy), rng_(seed) {}

void BufferPool::RemoveFrameLocked(
    std::unordered_map<PageId, Frame, PageIdHash>::iterator it) {
  const PageId id = it->first;
  used_ -= it->second.bytes;
  if (policy_ == ReplacementPolicy::kLru) {
    lru_.erase(it->second.lru_pos);
  } else {
    size_t pos = resident_pos_[id];
    resident_pos_.erase(id);
    if (pos != resident_.size() - 1) {
      resident_[pos] = resident_.back();
      resident_pos_[resident_[pos]] = pos;
    }
    resident_.pop_back();
  }
  frames_.erase(it);
}

bool BufferPool::Access(const PageId& id, size_t bytes,
                        bool sequential_scan) {
  if (!FaultInjector::Global().Evaluate(kFaultPageDrop).ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = frames_.find(id);
    if (it != frames_.end()) {
      RemoveFrameLocked(it);
      ++stats_.faulted_drops;
      GlobalPoolInstruments().page_drop_recovered->Add(1);
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.accesses;
  GlobalPoolInstruments().accesses->Add(1);
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++stats_.hits;
    GlobalPoolInstruments().hits->Add(1);
    Frame& f = it->second;
    switch (policy_) {
      case ReplacementPolicy::kLru:
        lru_.erase(f.lru_pos);
        lru_.push_front(id);
        f.lru_pos = lru_.begin();
        break;
      case ReplacementPolicy::kClock:
        f.ref = true;
        break;
      case ReplacementPolicy::kRandomWeight:
        // Access frequency accumulates; position in the table is irrelevant.
        f.weight += 1.0;
        break;
    }
    return true;
  }
  ++stats_.misses;
  GlobalPoolInstruments().misses->Add(1);
  if (bytes > capacity_) return false;  // page can never be cached
  while (used_ + bytes > capacity_ && !frames_.empty()) EvictOneLocked();
  Frame f;
  f.id = id;
  f.bytes = bytes;
  // Probationary admission weight: newcomers must earn residency through
  // hits, so cyclic scans victimize fresh pages and a stable hot subset
  // survives — the scan-resistance mechanism of [13].
  f.weight = 0.25;
  f.ref = true;
  if (policy_ == ReplacementPolicy::kLru) {
    // Scan resistance: sequential-scan misses take probationary cold-end
    // admission (the LRU analogue of the kRandomWeight 0.25 weight), so a
    // full table scan churns at the eviction end and never flushes the hot
    // set. The page is promoted normally on its next hit.
    if (sequential_scan) {
      lru_.push_back(id);
      f.lru_pos = std::prev(lru_.end());
    } else {
      lru_.push_front(id);
      f.lru_pos = lru_.begin();
    }
  } else {
    resident_pos_[id] = resident_.size();
    resident_.push_back(id);
  }
  used_ += bytes;
  frames_.emplace(id, std::move(f));
  return false;
}

void BufferPool::EvictOneLocked() {
  assert(!frames_.empty());
  PageId victim;
  switch (policy_) {
    case ReplacementPolicy::kLru: {
      victim = lru_.back();
      break;
    }
    case ReplacementPolicy::kClock: {
      // Second chance sweep over the resident vector.
      for (;;) {
        if (clock_hand_ >= resident_.size()) clock_hand_ = 0;
        Frame& f = frames_[resident_[clock_hand_]];
        if (f.ref) {
          f.ref = false;
          ++clock_hand_;
        } else {
          victim = resident_[clock_hand_];
          break;
        }
      }
      break;
    }
    case ReplacementPolicy::kRandomWeight: {
      // Randomized page weights [13]: sample K resident pages, perturb each
      // weight with a uniform factor, evict the smallest. The perturbation
      // keeps scans from victimizing deterministically, and sampled pages
      // decay so stale frequency fades.
      constexpr int kCandidates = 8;
      double best = 0;
      bool first = true;
      size_t best_idx = 0;
      for (int i = 0; i < kCandidates; ++i) {
        size_t idx = rng_.Uniform(resident_.size());
        Frame& f = frames_[resident_[idx]];
        double perturbed = f.weight * rng_.NextDouble();
        if (first || perturbed < best) {
          best = perturbed;
          best_idx = idx;
          first = false;
        }
        f.weight *= 0.98;  // gentle decay so old heat fades
      }
      victim = resident_[best_idx];
      break;
    }
  }
  RemoveFrameLocked(frames_.find(victim));
  ++stats_.evictions;
  GlobalPoolInstruments().evictions->Add(1);
}

void BufferPool::EvictTable(uint64_t table_id) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = frames_.begin(); it != frames_.end();) {
    auto next = std::next(it);
    if (it->first.table_id == table_id) RemoveFrameLocked(it);
    it = next;
  }
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void BufferPool::ResetStats() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_ = BufferPoolStats{};
}

size_t BufferPool::used_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return used_;
}

double SimulateOptimalHitRatio(const std::vector<uint32_t>& trace,
                               size_t capacity_pages) {
  if (trace.empty() || capacity_pages == 0) return 0.0;
  const size_t n = trace.size();
  // next_use[i] = next position after i where trace[i] recurs (or n).
  std::vector<size_t> next_use(n);
  std::unordered_map<uint32_t, size_t> last_seen;
  for (size_t i = n; i-- > 0;) {
    auto it = last_seen.find(trace[i]);
    next_use[i] = it == last_seen.end() ? n : it->second;
    last_seen[trace[i]] = i;
  }
  // Cache = set of pages; victim = resident page with farthest next use.
  // Keep a max-heap of (next_use, page) with lazy invalidation.
  std::unordered_map<uint32_t, size_t> resident;  // page -> its current next use
  std::priority_queue<std::pair<size_t, uint32_t>> heap;
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t p = trace[i];
    auto it = resident.find(p);
    if (it != resident.end()) {
      ++hits;
      it->second = next_use[i];
      heap.emplace(next_use[i], p);
      continue;
    }
    if (resident.size() >= capacity_pages) {
      // Pop until a live entry (entry matches the page's recorded next use).
      for (;;) {
        auto [nu, q] = heap.top();
        heap.pop();
        auto rit = resident.find(q);
        if (rit != resident.end() && rit->second == nu) {
          resident.erase(rit);
          break;
        }
      }
    }
    resident[p] = next_use[i];
    heap.emplace(next_use[i], p);
  }
  return static_cast<double>(hits) / n;
}

}  // namespace dashdb
