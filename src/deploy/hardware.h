// Hardware detection (paper II.A): dashDB Local "automatically adapts to
// hardware platforms", detecting CPU/core counts and RAM at container start.
//
// In this reproduction, detection reads the real host when possible and
// otherwise falls back to canned profiles spanning the paper's stated range
// ("entry-level hardware requirements start at 8GB RAM and 20GB of storage
// ... larger servers such as Xeon e7 4 x 18 core 72 way machines with 6 TB
// RAM").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dashdb {

struct HardwareProfile {
  std::string name;
  int cores = 4;
  size_t ram_bytes = size_t{8} << 30;
  size_t storage_bytes = size_t{100} << 30;
  bool ssd = true;

  size_t ram_gb() const { return ram_bytes >> 30; }
};

/// Detects the actual machine this process runs on (cores via the OS; RAM
/// via sysconf). Always succeeds; used for true auto-adaptation.
HardwareProfile DetectLocalHardware();

/// The paper's reference hardware range, used by benches and tests.
std::vector<HardwareProfile> StandardProfiles();

/// Validates the paper's entry-level minimums (8 GB RAM, 20 GB storage).
Status CheckMinimumRequirements(const HardwareProfile& hw);

}  // namespace dashdb
