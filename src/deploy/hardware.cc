#include "deploy/hardware.h"

#include <thread>
#include <unistd.h>

namespace dashdb {

HardwareProfile DetectLocalHardware() {
  HardwareProfile hw;
  hw.name = "local";
  unsigned n = std::thread::hardware_concurrency();
  hw.cores = n == 0 ? 1 : static_cast<int>(n);
#if defined(_SC_PHYS_PAGES) && defined(_SC_PAGESIZE)
  long pages = sysconf(_SC_PHYS_PAGES);
  long page = sysconf(_SC_PAGESIZE);
  if (pages > 0 && page > 0) {
    hw.ram_bytes = static_cast<size_t>(pages) * static_cast<size_t>(page);
  }
#endif
  hw.storage_bytes = size_t{100} << 30;  // not probed; irrelevant to config
  return hw;
}

std::vector<HardwareProfile> StandardProfiles() {
  return {
      // Paper: laptop dev/test entry point.
      {"laptop-dev", 4, size_t{8} << 30, size_t{20} << 30, true},
      {"small-server", 16, size_t{64} << 30, size_t{2} << 40, true},
      {"mid-server", 24, size_t{512} << 30, size_t{6} << 40, true},
      // Paper: "Xeon e7 4 x 18 core 72 way machines with 6 TB RAM".
      {"xeon-e7-72way", 72, size_t{6} << 40, size_t{28} << 40, true},
      // The Table 1 Test 1/2 dashDB nodes: 20 cores, 256 GB, SSD.
      {"table1-dashdb-node", 20, size_t{256} << 30, size_t{7} << 40, true},
      // The Table 1 appliance nodes: 16 cores, 132 GB, HDD.
      {"table1-appliance-node", 16, size_t{132} << 30, size_t{6} << 40,
       false},
  };
}

Status CheckMinimumRequirements(const HardwareProfile& hw) {
  if (hw.ram_bytes < (size_t{8} << 30)) {
    return Status::ResourceExhausted(
        "dashDB Local requires at least 8GB RAM (" + hw.name + ")");
  }
  if (hw.storage_bytes < (size_t{20} << 30)) {
    return Status::ResourceExhausted(
        "dashDB Local requires at least 20GB storage (" + hw.name + ")");
  }
  return Status::OK();
}

}  // namespace dashdb
