// Linux-container deployment simulation (paper II.A, Figure 1).
//
// Models the dashDB Local deployment contract: the customer owns host OS,
// Docker engine, and the clustered filesystem mounted at /mnt/clusterfs;
// IBM ships a single container image holding the full software stack; one
// dashDB Local container per host; stack updates are stop-and-rename of the
// current container plus `docker run` of the new image against the same
// mount (data preserved). Step durations are modeled so the "< 30 minutes
// to a fully configured cluster" claim can be measured end to end.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "deploy/autoconfig.h"
#include "deploy/hardware.h"
#include "storage/clusterfs.h"

namespace dashdb {

enum class ContainerState : uint8_t { kAbsent, kCreated, kRunning, kStopped };

/// A dashDB Local container on one host.
struct ContainerInfo {
  std::string name = "dashDB";
  std::string image;  ///< e.g. "ibmdashdb/local:1.0.0"
  ContainerState state = ContainerState::kAbsent;
};

/// A customer-owned host.
class Host {
 public:
  Host(std::string name, HardwareProfile hw)
      : name_(std::move(name)), hw_(std::move(hw)) {}

  const std::string& name() const { return name_; }
  const HardwareProfile& hardware() const { return hw_; }

  bool docker_installed() const { return docker_installed_; }
  void InstallDocker() { docker_installed_ = true; }

  /// Mounts the shared clustered filesystem at /mnt/clusterfs (required
  /// before the container will start, per the paper's prerequisites).
  void MountClusterFs(std::shared_ptr<ClusterFileSystem> fs) {
    clusterfs_ = std::move(fs);
  }
  bool clusterfs_mounted() const { return clusterfs_ != nullptr; }
  ClusterFileSystem* clusterfs() { return clusterfs_.get(); }

  /// The (at most one) dashDB container on this host.
  ContainerInfo& container() { return container_; }
  const ContainerInfo& container() const { return container_; }

  /// Image versions already pulled to this host.
  bool HasImage(const std::string& image) const {
    for (const auto& i : pulled_images_) {
      if (i == image) return true;
    }
    return false;
  }
  void AddImage(const std::string& image) { pulled_images_.push_back(image); }

 private:
  std::string name_;
  HardwareProfile hw_;
  bool docker_installed_ = false;
  std::shared_ptr<ClusterFileSystem> clusterfs_;
  ContainerInfo container_;
  std::vector<std::string> pulled_images_;
};

/// One timed step of a deployment.
struct DeployStep {
  std::string host;   ///< empty = cluster-level step
  std::string name;
  double seconds = 0;
};

/// Full record of a deployment / update run.
struct DeploymentReport {
  std::vector<DeployStep> steps;
  std::vector<AutoConfig> node_configs;  ///< per host, post-detection
  /// Host steps run in parallel across hosts; cluster steps serialize.
  double TotalSeconds() const;
  std::string Describe() const;
};

/// Deployment timing model (documented in DESIGN.md; the logic being
/// validated — detection, configuration, orchestration order — is real
/// code, only elapsed seconds are modeled).
struct DeployTimeModel {
  double image_size_gb = 4.0;
  double pull_bandwidth_gbps = 0.8;     ///< registry -> host
  double container_create_s = 3.0;
  double container_start_s = 8.0;       ///< "seconds to start container"
  double engine_start_base_s = 30.0;    ///< "few minutes ... on large memory"
  double engine_start_per_tb_ram_s = 45.0;
  double shard_init_s = 2.0;            ///< per shard
  double cluster_handshake_s = 10.0;    ///< node discovery & topology commit
};

class Deployer {
 public:
  explicit Deployer(DeployTimeModel model = {}) : model_(model) {}

  /// Deploys the image to every host: pull (skipped if cached), docker run,
  /// hardware detection, autoconfig, shard init, cluster handshake.
  /// Fails if a host misses prerequisites (Docker, clusterfs mount, minimum
  /// hardware).
  Result<DeploymentReport> DeployCluster(std::vector<Host>* hosts,
                                         const std::string& image);

  /// Stack update (paper II.A): stop-and-rename the running container, run
  /// the new image against the same clusterfs; data survives untouched.
  Result<DeploymentReport> UpdateStack(std::vector<Host>* hosts,
                                       const std::string& new_image);

 private:
  double EngineStartSeconds(const HardwareProfile& hw) const;
  DeployTimeModel model_;
};

}  // namespace dashdb
