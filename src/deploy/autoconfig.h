// Automatic configuration (paper II.A): "dashDB Local includes an automatic
// configuration component that detects several characteristics of the
// hardware environment, and adapts its configuration to optimize for the
// resources available" — memory split across functional purposes (caching,
// sorting, hashing, locking, logging), query parallelism degree, and
// workload-management admission, in the rules-based style of [16].
#pragma once

#include <string>

#include "bufferpool/bufferpool.h"
#include "deploy/hardware.h"
#include "sql/engine.h"

namespace dashdb {

/// The full derived configuration for one node.
struct AutoConfig {
  // Memory split (bytes).
  size_t bufferpool_bytes = 0;  ///< columnar page cache
  size_t sort_bytes = 0;
  size_t hash_join_bytes = 0;
  size_t lock_bytes = 0;
  size_t log_bytes = 0;
  size_t spark_bytes = 0;       ///< shared with the integrated Spark (II.D)
  size_t os_reserved_bytes = 0;

  int query_parallelism = 1;    ///< intra-query degree (cores)
  int wlm_concurrency = 1;      ///< concurrent admitted queries
  int shards_per_node = 1;      ///< MPP shards hosted per node
  ReplacementPolicy buffer_policy = ReplacementPolicy::kRandomWeight;

  size_t TotalAllocated() const {
    return bufferpool_bytes + sort_bytes + hash_join_bytes + lock_bytes +
           log_bytes + spark_bytes + os_reserved_bytes;
  }

  std::string Describe() const;
};

/// Derives the configuration for a hardware profile. Fails only when the
/// profile misses the paper's entry-level minimums.
Result<AutoConfig> ComputeAutoConfig(const HardwareProfile& hw);

/// Invariants every derived config must satisfy (tested property-style):
/// allocations fit in RAM, parallelism matches cores, shards within cores.
Status ValidateConfig(const HardwareProfile& hw, const AutoConfig& cfg);

/// Projects the node config onto the SQL engine's knobs.
EngineConfig ToEngineConfig(const AutoConfig& cfg);

}  // namespace dashdb
