#include "deploy/autoconfig.h"

#include <algorithm>
#include <sstream>

namespace dashdb {

Result<AutoConfig> ComputeAutoConfig(const HardwareProfile& hw) {
  DASHDB_RETURN_IF_ERROR(CheckMinimumRequirements(hw));
  AutoConfig cfg;
  const size_t ram = hw.ram_bytes;
  // Memory split: the analytics cache dominates; Spark shares the node
  // memory with the database (paper II.D.1: "a scalable analytic engine
  // that shares the available memory with the database").
  cfg.os_reserved_bytes = std::max<size_t>(ram / 10, size_t{1} << 30);
  cfg.bufferpool_bytes = ram * 40 / 100;
  cfg.spark_bytes = ram * 20 / 100;
  cfg.sort_bytes = ram * 10 / 100;
  cfg.hash_join_bytes = ram * 10 / 100;
  cfg.lock_bytes = ram * 2 / 100;
  cfg.log_bytes = ram * 3 / 100;
  // Keep the total within RAM after the OS floor.
  while (cfg.TotalAllocated() > ram && cfg.bufferpool_bytes > (ram / 10)) {
    cfg.bufferpool_bytes -= ram / 100;
  }
  cfg.query_parallelism = hw.cores;
  cfg.wlm_concurrency = std::max(2, hw.cores / 2);
  // Shards per node: enough for elasticity headroom, bounded by cores
  // (paper II.E: shard count "not larger than the cumulative cores").
  cfg.shards_per_node = std::clamp(hw.cores / 2, 1, 24);
  cfg.buffer_policy = ReplacementPolicy::kRandomWeight;
  return cfg;
}

Status ValidateConfig(const HardwareProfile& hw, const AutoConfig& cfg) {
  if (cfg.TotalAllocated() > hw.ram_bytes) {
    return Status::Internal("config over-allocates RAM");
  }
  if (cfg.bufferpool_bytes < (size_t{512} << 20)) {
    return Status::Internal("buffer pool below minimum");
  }
  if (cfg.query_parallelism < 1 || cfg.query_parallelism > hw.cores) {
    return Status::Internal("parallelism out of range");
  }
  if (cfg.shards_per_node < 1 || cfg.shards_per_node > hw.cores) {
    return Status::Internal("shards out of range");
  }
  if (cfg.wlm_concurrency < 1) {
    return Status::Internal("WLM concurrency out of range");
  }
  return Status::OK();
}

EngineConfig ToEngineConfig(const AutoConfig& cfg) {
  EngineConfig e;
  e.buffer_pool_bytes = cfg.bufferpool_bytes;
  e.buffer_policy = cfg.buffer_policy;
  e.default_organization = TableOrganization::kColumn;
  e.query_parallelism = cfg.query_parallelism;
  return e;
}

std::string AutoConfig::Describe() const {
  std::ostringstream os;
  auto gb = [](size_t b) { return static_cast<double>(b) / (1 << 30); };
  os << "bufferpool=" << gb(bufferpool_bytes) << "GB"
     << " sort=" << gb(sort_bytes) << "GB"
     << " hash=" << gb(hash_join_bytes) << "GB"
     << " lock=" << gb(lock_bytes) << "GB"
     << " log=" << gb(log_bytes) << "GB"
     << " spark=" << gb(spark_bytes) << "GB"
     << " parallelism=" << query_parallelism
     << " wlm=" << wlm_concurrency << " shards=" << shards_per_node;
  return os.str();
}

}  // namespace dashdb
