#include "deploy/container.h"

#include <map>
#include <sstream>

namespace dashdb {

double DeploymentReport::TotalSeconds() const {
  // Host-scoped steps run in parallel per host; cluster steps serialize
  // after all hosts finish.
  std::map<std::string, double> per_host;
  double cluster = 0;
  for (const auto& s : steps) {
    if (s.host.empty()) {
      cluster += s.seconds;
    } else {
      per_host[s.host] += s.seconds;
    }
  }
  double slowest_host = 0;
  for (const auto& [h, t] : per_host) slowest_host = std::max(slowest_host, t);
  return slowest_host + cluster;
}

std::string DeploymentReport::Describe() const {
  std::ostringstream os;
  for (const auto& s : steps) {
    os << (s.host.empty() ? "[cluster]" : "[" + s.host + "]") << " " << s.name
       << ": " << s.seconds << "s\n";
  }
  os << "total (hosts parallel): " << TotalSeconds() << "s\n";
  return os.str();
}

double Deployer::EngineStartSeconds(const HardwareProfile& hw) const {
  double tb = static_cast<double>(hw.ram_bytes) / (size_t{1} << 40);
  return model_.engine_start_base_s + tb * model_.engine_start_per_tb_ram_s;
}

Result<DeploymentReport> Deployer::DeployCluster(std::vector<Host>* hosts,
                                                 const std::string& image) {
  DeploymentReport report;
  for (Host& host : *hosts) {
    // Prerequisites (paper II.A): customer-managed Docker engine and a
    // POSIX-compliant clustered filesystem mount, plus minimum hardware.
    if (!host.docker_installed()) {
      return Status::Unavailable("host " + host.name() + ": Docker missing");
    }
    if (!host.clusterfs_mounted()) {
      return Status::Unavailable("host " + host.name() +
                                 ": /mnt/clusterfs not mounted");
    }
    DASHDB_RETURN_IF_ERROR(CheckMinimumRequirements(host.hardware()));
    if (host.container().state == ContainerState::kRunning) {
      return Status::AlreadyExists(
          "host " + host.name() +
          ": only one dashDB Local container per Docker host");
    }
    // Pull.
    if (!host.HasImage(image)) {
      report.steps.push_back(
          {host.name(), "docker pull " + image,
           model_.image_size_gb / model_.pull_bandwidth_gbps});
      host.AddImage(image);
    }
    // docker run = create + start.
    report.steps.push_back(
        {host.name(), "docker run (create)", model_.container_create_s});
    report.steps.push_back(
        {host.name(), "container start", model_.container_start_s});
    host.container().image = image;
    host.container().state = ContainerState::kRunning;
    // In-container boot: hardware detection + automatic configuration.
    DASHDB_ASSIGN_OR_RETURN(AutoConfig cfg,
                            ComputeAutoConfig(host.hardware()));
    DASHDB_RETURN_IF_ERROR(ValidateConfig(host.hardware(), cfg));
    report.steps.push_back({host.name(), "detect hardware + autoconfig", 1.0});
    report.steps.push_back(
        {host.name(), "start dashDB engine",
         EngineStartSeconds(host.hardware())});
    report.steps.push_back(
        {host.name(), "initialize shards",
         cfg.shards_per_node * model_.shard_init_s});
    report.node_configs.push_back(cfg);
  }
  report.steps.push_back(
      {"", "cluster handshake + topology commit", model_.cluster_handshake_s});
  return report;
}

Result<DeploymentReport> Deployer::UpdateStack(std::vector<Host>* hosts,
                                               const std::string& new_image) {
  DeploymentReport report;
  for (Host& host : *hosts) {
    if (host.container().state != ContainerState::kRunning) {
      return Status::Unavailable("host " + host.name() +
                                 ": no running container to update");
    }
    // Stop-and-rename the old container; data stays in clusterfs.
    report.steps.push_back({host.name(), "stop container", 5.0});
    report.steps.push_back({host.name(), "rename old container", 1.0});
    if (!host.HasImage(new_image)) {
      report.steps.push_back(
          {host.name(), "docker pull " + new_image,
           model_.image_size_gb / model_.pull_bandwidth_gbps});
      host.AddImage(new_image);
    }
    report.steps.push_back(
        {host.name(), "docker run new image", model_.container_create_s +
                                                  model_.container_start_s});
    host.container().image = new_image;
    host.container().state = ContainerState::kRunning;
    DASHDB_ASSIGN_OR_RETURN(AutoConfig cfg,
                            ComputeAutoConfig(host.hardware()));
    report.steps.push_back(
        {host.name(), "start dashDB engine",
         EngineStartSeconds(host.hardware())});
    report.node_configs.push_back(cfg);
  }
  report.steps.push_back({"", "cluster rejoin", model_.cluster_handshake_s});
  return report;
}

}  // namespace dashdb
