// Blocking wire-protocol client (test driver + bench harness + quickstart
// example). One WireClient = one connection = one server-side session.
//
// Query/Prepare/ExecutePrepared are synchronous and must be called from
// one thread at a time; SendCancel is safe from any thread while a query
// is in flight (writes are serialized on the connection's write mutex, and
// the reader skips the interleaved CANCEL_ACK).
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/wire.h"
#include "sql/engine.h"  // QueryResult

namespace dashdb {

class WireClient {
 public:
  WireClient() = default;
  ~WireClient() { Close(); }

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Connects to 127.0.0.1:port and performs the HELLO handshake under the
  /// given dialect name ("ANSI", "ORACLE", "NETEZZA", "POSTGRES", "DB2").
  Status Connect(int port, const std::string& dialect = "ANSI");

  /// Executes one statement; returns its full result (or the server's
  /// typed error Status).
  Result<QueryResult> Query(const std::string& sql);

  /// PREPARE name FROM sql; returns the statement's parameter count.
  Result<int> Prepare(const std::string& name, const std::string& sql);

  /// EXECUTE name with positional parameter values.
  Result<QueryResult> ExecutePrepared(const std::string& name,
                                      const std::vector<Value>& params);

  /// Fire-and-forget CANCEL of whatever statement this connection is
  /// running; thread-safe against a concurrent Query on another thread.
  Status SendCancel();

  /// Sends BYE and closes the socket. Idempotent.
  void Close();

  /// Closes the socket WITHOUT the BYE goodbye — simulates a client that
  /// vanished mid-query (the server must cancel the statement and free its
  /// admission slot). Idempotent.
  void Abort();

  bool connected() const { return fd_ >= 0; }

 private:
  Status SendPayload(const std::string& payload);
  /// Blocking read of the next complete frame payload.
  Result<std::string> ReadFrame();
  /// Reads RESULT_HEADER / RESULT_BATCH* / RESULT_DONE (tolerating
  /// interleaved CANCEL_ACKs), or maps an ERROR frame to its Status.
  Result<QueryResult> ReadResult();

  int fd_ = -1;
  std::mutex write_mu_;
  wire::FrameReader frames_{wire::kDefaultMaxFrame};
};

}  // namespace dashdb
