#include "server/wire.h"

#include <cstring>

namespace dashdb {
namespace wire {

void Writer::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void Writer::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void Writer::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void Writer::Val(const Value& v) {
  U8(static_cast<uint8_t>(v.type()));
  U8(v.is_null() ? 1 : 0);
  if (v.is_null()) return;
  switch (v.type()) {
    case TypeId::kDouble: {
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      U64(bits);
      return;
    }
    case TypeId::kVarchar:
      Str(v.AsString());
      return;
    default:
      I64(v.AsInt());
      return;
  }
}

std::string Frame(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 4);
  const uint32_t n = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((n >> (8 * i)) & 0xff));
  }
  out.append(payload);
  return out;
}

Result<uint8_t> Reader::U8() {
  if (pos_ + 1 > n_) return Status::ParseError("wire: truncated u8");
  return p_[pos_++];
}

Result<uint32_t> Reader::U32() {
  if (pos_ + 4 > n_) return Status::ParseError("wire: truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> Reader::U64() {
  if (pos_ + 8 > n_) return Status::ParseError("wire: truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> Reader::I64() {
  DASHDB_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<std::string> Reader::Str() {
  DASHDB_ASSIGN_OR_RETURN(uint32_t len, U32());
  if (pos_ + len > n_ || len > n_) {
    return Status::ParseError("wire: truncated string");
  }
  std::string s(reinterpret_cast<const char*>(p_ + pos_), len);
  pos_ += len;
  return s;
}

Result<Value> Reader::Val() {
  DASHDB_ASSIGN_OR_RETURN(uint8_t type_byte, U8());
  if (type_byte > static_cast<uint8_t>(TypeId::kDecimal)) {
    return Status::ParseError("wire: unknown value type " +
                              std::to_string(type_byte));
  }
  const TypeId type = static_cast<TypeId>(type_byte);
  DASHDB_ASSIGN_OR_RETURN(uint8_t null_flag, U8());
  if (null_flag > 1) return Status::ParseError("wire: bad null flag");
  if (null_flag == 1) return Value::Null(type);
  switch (type) {
    case TypeId::kDouble: {
      DASHDB_ASSIGN_OR_RETURN(uint64_t bits, U64());
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::Double(d);
    }
    case TypeId::kVarchar: {
      DASHDB_ASSIGN_OR_RETURN(std::string s, Str());
      return Value::String(std::move(s));
    }
    case TypeId::kBoolean: {
      DASHDB_ASSIGN_OR_RETURN(int64_t i, I64());
      return Value::Boolean(i != 0);
    }
    case TypeId::kInt32: {
      DASHDB_ASSIGN_OR_RETURN(int64_t i, I64());
      return Value::Int32(static_cast<int32_t>(i));
    }
    case TypeId::kInt64: {
      DASHDB_ASSIGN_OR_RETURN(int64_t i, I64());
      return Value::Int64(i);
    }
    case TypeId::kDate: {
      DASHDB_ASSIGN_OR_RETURN(int64_t i, I64());
      return Value::Date(static_cast<int32_t>(i));
    }
    case TypeId::kTimestamp: {
      DASHDB_ASSIGN_OR_RETURN(int64_t i, I64());
      return Value::Timestamp(i);
    }
    case TypeId::kDecimal: {
      DASHDB_ASSIGN_OR_RETURN(int64_t i, I64());
      return Value::Decimal(i);
    }
  }
  return Status::ParseError("wire: unreachable value type");
}

Result<bool> FrameReader::Next(std::string* payload) {
  // Reclaim the consumed prefix once it dominates the buffer.
  if (pos_ > 0 && pos_ >= buf_.size() / 2 && pos_ > 4096) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  const size_t avail = buf_.size() - pos_;
  if (avail < 4) return false;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(
               static_cast<uint8_t>(buf_[pos_ + static_cast<size_t>(i)]))
           << (8 * i);
  }
  if (len == 0) return Status::ParseError("wire: zero-length frame");
  if (len > max_frame_) {
    return Status::ParseError("wire: frame of " + std::to_string(len) +
                              " bytes exceeds cap of " +
                              std::to_string(max_frame_));
  }
  if (avail < 4 + static_cast<size_t>(len)) return false;
  payload->assign(buf_, pos_ + 4, len);
  pos_ += 4 + static_cast<size_t>(len);
  return true;
}

}  // namespace wire
}  // namespace dashdb
