#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dashdb {

Status WireClient::Connect(int port, const std::string& dialect) {
  if (fd_ >= 0) return Status::InvalidArgument("client already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    return Status::IOError("connect: " + std::string(strerror(errno)));
  }
  wire::Writer w;
  w.U8(wire::kHello);
  w.U8(wire::kProtocolVersion);
  w.Str(dialect);
  DASHDB_RETURN_IF_ERROR(SendPayload(w.payload()));
  DASHDB_ASSIGN_OR_RETURN(std::string reply, ReadFrame());
  wire::Reader r(reply);
  DASHDB_ASSIGN_OR_RETURN(uint8_t type, r.U8());
  if (type == wire::kError) {
    DASHDB_ASSIGN_OR_RETURN(uint8_t code, r.U8());
    DASHDB_ASSIGN_OR_RETURN(std::string msg, r.Str());
    Close();
    return Status(static_cast<StatusCode>(code), std::move(msg));
  }
  if (type != wire::kHelloOk) {
    Close();
    return Status::ParseError("wire: expected HELLO_OK");
  }
  return Status::OK();
}

Status WireClient::SendPayload(const std::string& payload) {
  if (fd_ < 0) return Status::IOError("client not connected");
  const std::string frame = wire::Frame(payload);
  std::lock_guard<std::mutex> lk(write_mu_);
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError("send: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Result<std::string> WireClient::ReadFrame() {
  char buf[65536];
  for (;;) {
    std::string payload;
    DASHDB_ASSIGN_OR_RETURN(bool got, frames_.Next(&payload));
    if (got) return payload;
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      frames_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError(n == 0 ? "connection closed by server"
                                  : "recv: " + std::string(strerror(errno)));
  }
}

Result<QueryResult> WireClient::ReadResult() {
  QueryResult out;
  bool have_header = false;
  for (;;) {
    DASHDB_ASSIGN_OR_RETURN(std::string payload, ReadFrame());
    wire::Reader r(payload);
    DASHDB_ASSIGN_OR_RETURN(uint8_t type, r.U8());
    switch (type) {
      case wire::kCancelAck:
        continue;  // out-of-band ack interleaved into the result stream
      case wire::kError: {
        DASHDB_ASSIGN_OR_RETURN(uint8_t code, r.U8());
        DASHDB_ASSIGN_OR_RETURN(std::string msg, r.Str());
        return Status(static_cast<StatusCode>(code), std::move(msg));
      }
      case wire::kResultHeader: {
        DASHDB_ASSIGN_OR_RETURN(uint32_t ncols, r.U32());
        for (uint32_t i = 0; i < ncols; ++i) {
          OutputCol col;
          DASHDB_ASSIGN_OR_RETURN(col.name, r.Str());
          DASHDB_ASSIGN_OR_RETURN(uint8_t t, r.U8());
          col.type = static_cast<TypeId>(t);
          out.columns.push_back(std::move(col));
          out.rows.columns.emplace_back(out.columns.back().type);
        }
        have_header = true;
        continue;
      }
      case wire::kResultBatch: {
        if (!have_header) {
          return Status::ParseError("wire: RESULT_BATCH before header");
        }
        DASHDB_ASSIGN_OR_RETURN(uint32_t nrows, r.U32());
        DASHDB_ASSIGN_OR_RETURN(uint32_t ncols, r.U32());
        if (ncols != out.columns.size()) {
          return Status::ParseError("wire: batch column count mismatch");
        }
        for (uint32_t i = 0; i < nrows; ++i) {
          for (uint32_t c = 0; c < ncols; ++c) {
            DASHDB_ASSIGN_OR_RETURN(Value v, r.Val());
            out.rows.columns[c].AppendValue(v);
          }
        }
        continue;
      }
      case wire::kResultDone: {
        DASHDB_ASSIGN_OR_RETURN(out.affected_rows, r.I64());
        DASHDB_ASSIGN_OR_RETURN(out.message, r.Str());
        return out;
      }
      default:
        return Status::ParseError("wire: unexpected frame type " +
                                  std::to_string(type) + " in result stream");
    }
  }
}

Result<QueryResult> WireClient::Query(const std::string& sql) {
  wire::Writer w;
  w.U8(wire::kQuery);
  w.Str(sql);
  DASHDB_RETURN_IF_ERROR(SendPayload(w.payload()));
  return ReadResult();
}

Result<int> WireClient::Prepare(const std::string& name,
                                const std::string& sql) {
  wire::Writer w;
  w.U8(wire::kPrepare);
  w.Str(name);
  w.Str(sql);
  DASHDB_RETURN_IF_ERROR(SendPayload(w.payload()));
  for (;;) {
    DASHDB_ASSIGN_OR_RETURN(std::string payload, ReadFrame());
    wire::Reader r(payload);
    DASHDB_ASSIGN_OR_RETURN(uint8_t type, r.U8());
    if (type == wire::kCancelAck) continue;
    if (type == wire::kError) {
      DASHDB_ASSIGN_OR_RETURN(uint8_t code, r.U8());
      DASHDB_ASSIGN_OR_RETURN(std::string msg, r.Str());
      return Status(static_cast<StatusCode>(code), std::move(msg));
    }
    if (type != wire::kPrepareOk) {
      return Status::ParseError("wire: expected PREPARE_OK");
    }
    DASHDB_ASSIGN_OR_RETURN(uint32_t count, r.U32());
    return static_cast<int>(count);
  }
}

Result<QueryResult> WireClient::ExecutePrepared(
    const std::string& name, const std::vector<Value>& params) {
  wire::Writer w;
  w.U8(wire::kExecute);
  w.Str(name);
  w.U32(static_cast<uint32_t>(params.size()));
  for (const auto& p : params) w.Val(p);
  DASHDB_RETURN_IF_ERROR(SendPayload(w.payload()));
  return ReadResult();
}

Status WireClient::SendCancel() {
  wire::Writer w;
  w.U8(wire::kCancel);
  return SendPayload(w.payload());
}

void WireClient::Close() {
  if (fd_ < 0) return;
  wire::Writer w;
  w.U8(wire::kBye);
  (void)SendPayload(w.payload());  // best effort
  ::close(fd_);
  fd_ = -1;
}

void WireClient::Abort() {
  if (fd_ < 0) return;
  // shutdown (not close) so a concurrent Query blocked in recv() on
  // another thread wakes with EOF instead of racing a reused fd; the fd
  // itself is reclaimed by the eventual Close()/destructor.
  ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace dashdb
