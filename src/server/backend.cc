#include "server/backend.h"

#include <mutex>

#include "common/query_context.h"
#include "mpp/mpp.h"

namespace dashdb {

namespace {

class EngineBackendSession : public BackendSession {
 public:
  EngineBackendSession(Engine* engine, std::shared_ptr<Session> session)
      : engine_(engine), session_(std::move(session)) {}

  Status SetDialect(Dialect d) override {
    session_->set_dialect(d);
    return Status::OK();
  }

  Result<QueryResult> Execute(const std::string& sql) override {
    return engine_->Execute(session_.get(), sql);
  }

  Result<int> Prepare(const std::string& name,
                      const std::string& sql) override {
    return engine_->Prepare(session_.get(), name, sql);
  }

  Result<QueryResult> ExecutePrepared(const std::string& name,
                                      std::vector<Value> params) override {
    return engine_->ExecutePrepared(session_.get(), name, std::move(params));
  }

  bool Cancel() override { return session_->CancelCurrentQuery(); }

 private:
  Engine* engine_;
  std::shared_ptr<Session> session_;
};

}  // namespace

std::unique_ptr<BackendSession> EngineBackend::CreateSession() {
  return std::make_unique<EngineBackendSession>(engine_,
                                                engine_->CreateSession());
}

class MppBackendSession : public BackendSession {
 public:
  explicit MppBackendSession(MppBackend* backend) : backend_(backend) {}

  Status SetDialect(Dialect d) override {
    // Shard sessions are created inside MppDatabase per statement; only the
    // default dialect is supported over this backend for now.
    if (d != Dialect::kAnsi) {
      return Status::Unimplemented("MPP backend serves the ANSI dialect only");
    }
    return Status::OK();
  }

  Result<QueryResult> Execute(const std::string& sql) override {
    auto qc = std::make_shared<QueryContext>();
    {
      std::lock_guard<std::mutex> lk(mu_);
      current_ = qc;
    }
    // Publish-before-lock: a CANCEL (or disconnect) that lands while this
    // statement waits its turn behind exec_mu_ marks the context, and the
    // governed Execute aborts at its first liveness check.
    Result<MppQueryResult> r = [&] {
      std::lock_guard<std::mutex> exec_lk(backend_->exec_mu_);
      return backend_->db_->Execute(sql, qc);
    }();
    {
      std::lock_guard<std::mutex> lk(mu_);
      current_.reset();
    }
    if (!r.ok()) return r.status();
    return std::move(r).value().result;
  }

  Result<int> Prepare(const std::string&, const std::string&) override {
    return Status::Unimplemented("PREPARE is not supported over MPP backend");
  }

  Result<QueryResult> ExecutePrepared(const std::string&,
                                      std::vector<Value>) override {
    return Status::Unimplemented("EXECUTE is not supported over MPP backend");
  }

  bool Cancel() override {
    std::lock_guard<std::mutex> lk(mu_);
    if (!current_) return false;
    current_->Cancel();
    return true;
  }

 private:
  MppBackend* backend_;
  std::mutex mu_;
  std::shared_ptr<QueryContext> current_;
};

std::unique_ptr<BackendSession> MppBackend::CreateSession() {
  return std::make_unique<MppBackendSession>(this);
}

}  // namespace dashdb
