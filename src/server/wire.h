// Wire protocol for the serving layer (DESIGN.md "Serving layer").
//
// Framing: every message is a 4-byte little-endian payload length followed
// by the payload; payload byte 0 is the message type. The length covers the
// payload only (so the minimum frame is 5 bytes on the wire) and is bounded
// by the peer's configured maximum — an oversized or zero length is a
// protocol error that closes the connection, never an allocation.
//
// Client -> server: HELLO (protocol version + dialect name), QUERY (sql),
// PREPARE (name, sql), EXECUTE (name, params), CANCEL (out-of-band: aborts
// the statement currently running on this connection), BYE.
// Server -> client: HELLO_OK, RESULT_HEADER (column names/types),
// RESULT_BATCH (row chunk), RESULT_DONE (affected rows + message), ERROR
// (Status code + text), PREPARE_OK (param count), CANCEL_ACK.
//
// All multi-byte integers are little-endian. Strings are u32 length +
// bytes. Values are (type id, null flag, payload) with doubles shipped as
// IEEE-754 bit patterns. Decoding is bounds-checked everywhere: a
// truncated or garbage payload yields a Status, never a read past the
// buffer (the hostile-input tests in tests/wire_protocol_test.cc fuzz
// exactly this surface).
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/value.h"

namespace dashdb {
namespace wire {

/// Protocol revision carried in HELLO; bumped on incompatible change.
inline constexpr uint8_t kProtocolVersion = 1;

/// Default cap on one frame's payload (16 MB) — both sides enforce it.
inline constexpr size_t kDefaultMaxFrame = size_t{16} << 20;

enum MsgType : uint8_t {
  // client -> server
  kHello = 0x01,
  kQuery = 0x02,
  kPrepare = 0x03,
  kExecute = 0x04,
  kCancel = 0x05,
  kBye = 0x06,
  // server -> client
  kHelloOk = 0x81,
  kResultHeader = 0x82,
  kResultBatch = 0x83,
  kResultDone = 0x84,
  kError = 0x85,
  kPrepareOk = 0x86,
  kCancelAck = 0x87,
};

/// Append-only payload builder. The first byte written should be the
/// message type; Frame() then adds the length prefix.
class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Str(const std::string& s);
  void Val(const Value& v);

  const std::string& payload() const { return buf_; }
  std::string TakePayload() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Length-prefixes a payload into one on-the-wire frame.
std::string Frame(const std::string& payload);

/// Bounds-checked payload decoder. Every accessor returns a Status on
/// overrun instead of reading past the buffer.
class Reader {
 public:
  Reader(const void* data, size_t size)
      : p_(static_cast<const uint8_t*>(data)), n_(size) {}
  explicit Reader(const std::string& payload)
      : Reader(payload.data(), payload.size()) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<std::string> Str();
  Result<Value> Val();

  size_t remaining() const { return n_ - pos_; }
  bool AtEnd() const { return pos_ == n_; }

 private:
  const uint8_t* p_;
  size_t n_;
  size_t pos_ = 0;
};

/// Incremental frame assembler fed by recv() chunks. Enforces the frame
/// cap before buffering a payload, so a hostile 4 GB length never
/// allocates.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame = kDefaultMaxFrame)
      : max_frame_(max_frame) {}

  void Feed(const char* data, size_t n) { buf_.append(data, n); }

  /// Extracts the next complete frame's payload. Returns true with the
  /// payload, false when more bytes are needed, or a Status on a framing
  /// violation (zero-length or oversized frame) — after which the
  /// connection must be torn down.
  Result<bool> Next(std::string* payload);

  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_frame_;
  std::string buf_;
  size_t pos_ = 0;  ///< consumed prefix of buf_
};

}  // namespace wire
}  // namespace dashdb
