// Backend abstraction behind the wire server: the server speaks frames,
// a backend executes statements. Two implementations:
//
//  - EngineBackend: fronts one single-node Engine. Sessions are the cheap
//    per-connection Session objects (knobs + current-query pointer); all
//    shared state (catalog, bufferpool, admission, plan cache, metrics)
//    lives in the Engine, so any number of connections execute
//    concurrently.
//  - MppBackend: fronts an MppDatabase for the wire differential tests.
//    MppDatabase::Execute is not concurrency-safe (shared failover policy,
//    per-statement query_ctx_), so statements serialize on one mutex; each
//    wire session still gets its own cancel handle via the governed
//    Execute overload, so CANCEL/disconnect aborts a statement that is
//    queued behind the mutex or mid-flight.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/dialect.h"
#include "common/status.h"
#include "sql/engine.h"

namespace dashdb {

class MppDatabase;

/// One connection's execution state. Calls arrive one at a time (the
/// server runs a connection's statements FIFO) except Cancel, which may
/// arrive from any thread at any moment.
class BackendSession {
 public:
  virtual ~BackendSession() = default;

  virtual Status SetDialect(Dialect d) = 0;
  virtual Result<QueryResult> Execute(const std::string& sql) = 0;
  virtual Result<int> Prepare(const std::string& name,
                              const std::string& sql) = 0;
  virtual Result<QueryResult> ExecutePrepared(const std::string& name,
                                              std::vector<Value> params) = 0;

  /// Aborts the statement currently executing on this session, if any.
  /// Thread-safe; returns whether one was running.
  virtual bool Cancel() = 0;
};

class SqlBackend {
 public:
  virtual ~SqlBackend() = default;
  virtual std::unique_ptr<BackendSession> CreateSession() = 0;
};

class EngineBackend : public SqlBackend {
 public:
  explicit EngineBackend(Engine* engine) : engine_(engine) {}
  std::unique_ptr<BackendSession> CreateSession() override;

 private:
  Engine* engine_;
};

class MppBackend : public SqlBackend {
 public:
  explicit MppBackend(MppDatabase* db) : db_(db) {}
  std::unique_ptr<BackendSession> CreateSession() override;

 private:
  friend class MppBackendSession;
  MppDatabase* db_;
  std::mutex exec_mu_;  ///< MppDatabase executes one statement at a time
};

}  // namespace dashdb
