// Multi-session TCP server (DESIGN.md "Serving layer").
//
// One I/O thread owns accept + poll + frame reassembly for every
// connection; complete frames are handed to a worker pool that executes
// each connection's statements FIFO (one in flight per connection, many
// connections in flight across the pool). CANCEL frames are handled
// directly on the I/O thread — that is what makes them out-of-band: a
// connection whose worker is grinding through a SELECT still gets its
// CANCEL delivered, which trips the statement's QueryContext (or aborts
// its queued admission wait).
//
// A disconnect behaves exactly like a CANCEL followed by teardown: the
// I/O thread cancels the backend session, so the in-flight statement stops
// at its next governor check and its admission slot frees; the connection
// object itself is refcounted and dies when the last worker drops it.
//
// Exposes server.* metrics: connections_{accepted,active}, frames_in,
// queries, cancels, protocol_errors (plus the plan cache's
// server.plan_cache_* counters fed by the engine).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "common/status.h"
#include "server/backend.h"
#include "server/wire.h"

namespace dashdb {

class ThreadPool;

struct ServerConfig {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back with
  /// Server::port() — the test/bench default).
  uint16_t port = 0;
  /// Statement-execution workers (concurrent statements across sessions).
  int worker_threads = 4;
  /// Frame payload cap enforced on ingest.
  size_t max_frame_bytes = wire::kDefaultMaxFrame;
  /// Result rows per RESULT_BATCH frame.
  size_t max_batch_rows = 1024;
  int listen_backlog = 128;
};

class Server {
 public:
  explicit Server(SqlBackend* backend, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the I/O thread + worker pool.
  Status Start();

  /// Stops accepting, cancels every in-flight statement, joins the I/O
  /// thread and workers, and closes every connection. Idempotent.
  void Stop();

  /// Bound port (valid after Start; the ephemeral port when config.port=0).
  int port() const { return port_; }

 private:
  struct Conn;

  void IoLoop();
  void HandleReadable(const std::shared_ptr<Conn>& c);
  void DispatchFrame(const std::shared_ptr<Conn>& c, std::string payload);
  void ProcessLoop(std::shared_ptr<Conn> c);
  void HandleMessage(Conn* c, const std::string& payload);
  void SendPayload(Conn* c, const std::string& payload);
  void SendStatusError(Conn* c, const Status& s);
  void SendResult(Conn* c, const QueryResult& r);
  void RequestClose(Conn* c);
  void Wake();

  SqlBackend* backend_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe to interrupt poll()
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread io_thread_;
  std::unique_ptr<ThreadPool> workers_;
  // Connection registry lives in IoLoop (single-threaded owner); workers
  // only ever touch Conns through the shared_ptr handed to them.
};

}  // namespace dashdb
