#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "common/threadpool.h"

namespace dashdb {

namespace {

struct ServerInstruments {
  Counter* accepted;
  Gauge* active;
  Counter* frames_in;
  Counter* queries;
  Counter* cancels;
  Counter* protocol_errors;
};

ServerInstruments& Instruments() {
  static ServerInstruments in{
      MetricRegistry::Global().GetCounter("server.connections_accepted"),
      MetricRegistry::Global().GetGauge("server.connections_active"),
      MetricRegistry::Global().GetCounter("server.frames_in"),
      MetricRegistry::Global().GetCounter("server.queries"),
      MetricRegistry::Global().GetCounter("server.cancels"),
      MetricRegistry::Global().GetCounter("server.protocol_errors"),
  };
  return in;
}

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string UpperCopy(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

/// One client connection. Owned jointly by the I/O thread (registry) and
/// whichever worker is executing its current statement; the socket closes
/// when the last owner drops the shared_ptr.
struct Server::Conn {
  int fd = -1;
  std::unique_ptr<BackendSession> session;
  wire::FrameReader frames;

  /// Worker-side state. HELLO must precede everything else; the flag is
  /// only touched from the (serialized) statement stream.
  bool handshaken = false;

  /// Set by the I/O thread when the connection leaves the registry;
  /// workers drop pending work and suppress writes once it flips.
  std::atomic<bool> closed{false};
  /// Set by a worker (protocol error, BYE, failed write) to ask the I/O
  /// thread for teardown.
  std::atomic<bool> close_requested{false};

  std::mutex write_mu;  ///< serializes whole frames onto the socket

  /// FIFO of complete frames awaiting execution. `busy` means a worker is
  /// draining; the I/O thread only submits a new drain task when it flips
  /// busy false->true, so one statement runs at a time per connection.
  std::mutex work_mu;
  std::deque<std::string> pending;
  bool busy = false;

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
};

Server::Server(SqlBackend* backend, ServerConfig config)
    : backend_(backend), config_(config) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load()) return Status::OK();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind: " + std::string(strerror(errno)));
  }
  if (::listen(listen_fd_, config_.listen_backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("listen: " + std::string(strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);
  if (::pipe(wake_fds_) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("pipe: " + std::string(strerror(errno)));
  }
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);
  workers_ = std::make_unique<ThreadPool>(std::max(1, config_.worker_threads));
  running_.store(true);
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false)) {
    // Never started (or already stopped): nothing to join.
    if (workers_) workers_.reset();
    return;
  }
  Wake();
  if (io_thread_.joinable()) io_thread_.join();
  // Drains any queued drain-tasks; their Conns see closed=true and bail.
  workers_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void Server::Wake() {
  if (wake_fds_[1] >= 0) {
    char b = 1;
    ssize_t ignored = ::write(wake_fds_[1], &b, 1);
    (void)ignored;
  }
}

void Server::IoLoop() {
  std::map<int, std::shared_ptr<Conn>> conns;
  auto teardown = [&](const std::shared_ptr<Conn>& c) {
    // Disconnect acts as CANCEL: the in-flight statement aborts at its
    // next governor check (freeing its admission slot), a queued admission
    // wait returns kCancelled. The fd stays open (workers may still try to
    // write; those writes fail harmlessly) until the last ref drops.
    c->closed.store(true, std::memory_order_release);
    c->session->Cancel();
    ::shutdown(c->fd, SHUT_RDWR);
    conns.erase(c->fd);
    Instruments().active->Set(static_cast<int64_t>(conns.size()));
  };

  std::vector<pollfd> pfds;
  while (running_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back({listen_fd_, POLLIN, 0});
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    for (const auto& [fd, c] : conns) pfds.push_back({fd, POLLIN, 0});
    if (::poll(pfds.data(), pfds.size(), /*timeout_ms=*/250) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[1].revents & POLLIN) {
      char drain[64];
      while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (pfds[0].revents & POLLIN) {
      for (;;) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        // Blocking socket: reads use MSG_DONTWAIT (poll decides when),
        // writes block with a timeout so a stalled client cannot wedge a
        // worker forever.
        timeval tv{30, 0};
        setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto c = std::make_shared<Conn>();
        c->fd = fd;
        c->session = backend_->CreateSession();
        c->frames = wire::FrameReader(config_.max_frame_bytes);
        conns[fd] = std::move(c);
        Instruments().accepted->Add(1);
        Instruments().active->Set(static_cast<int64_t>(conns.size()));
      }
    }
    // Snapshot: HandleReadable can request closes, and teardown mutates
    // the registry.
    std::vector<std::shared_ptr<Conn>> ready;
    for (size_t i = 2; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      auto it = conns.find(pfds[i].fd);
      if (it != conns.end()) ready.push_back(it->second);
    }
    for (const auto& c : ready) HandleReadable(c);
    std::vector<std::shared_ptr<Conn>> doomed;
    for (const auto& [fd, c] : conns) {
      if (c->close_requested.load(std::memory_order_acquire)) {
        doomed.push_back(c);
      }
    }
    for (const auto& c : doomed) teardown(c);
  }
  for (auto& [fd, c] : conns) {
    c->closed.store(true, std::memory_order_release);
    c->session->Cancel();
    ::shutdown(c->fd, SHUT_RDWR);
  }
  conns.clear();
  Instruments().active->Set(0);
}

void Server::HandleReadable(const std::shared_ptr<Conn>& c) {
  char buf[65536];
  for (;;) {
    ssize_t n = ::recv(c->fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      c->frames.Feed(buf, static_cast<size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {  // peer closed
      c->close_requested.store(true, std::memory_order_release);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    c->close_requested.store(true, std::memory_order_release);
    return;
  }
  for (;;) {
    std::string payload;
    Result<bool> got = c->frames.Next(&payload);
    if (!got.ok()) {  // framing violation (oversized / zero length)
      Instruments().protocol_errors->Add(1);
      SendStatusError(c.get(), got.status());
      c->close_requested.store(true, std::memory_order_release);
      return;
    }
    if (!*got) return;
    DispatchFrame(c, std::move(payload));
  }
}

void Server::DispatchFrame(const std::shared_ptr<Conn>& c,
                           std::string payload) {
  Instruments().frames_in->Add(1);
  const uint8_t type = static_cast<uint8_t>(payload[0]);
  if (type == wire::kCancel) {
    // Out-of-band: handled here on the I/O thread, never queued behind the
    // statement it is trying to stop.
    Instruments().cancels->Add(1);
    const bool was_running = c->session->Cancel();
    wire::Writer w;
    w.U8(wire::kCancelAck);
    w.U8(was_running ? 1 : 0);
    SendPayload(c.get(), w.payload());
    return;
  }
  bool submit = false;
  {
    std::lock_guard<std::mutex> lk(c->work_mu);
    c->pending.push_back(std::move(payload));
    if (!c->busy) {
      c->busy = true;
      submit = true;
    }
  }
  if (submit) {
    std::shared_ptr<Conn> ref = c;
    workers_->Submit([this, ref] { ProcessLoop(ref); });
  }
}

void Server::ProcessLoop(std::shared_ptr<Conn> c) {
  for (;;) {
    std::string payload;
    {
      std::lock_guard<std::mutex> lk(c->work_mu);
      if (c->pending.empty() ||
          c->closed.load(std::memory_order_acquire)) {
        c->pending.clear();
        c->busy = false;
        return;
      }
      payload = std::move(c->pending.front());
      c->pending.pop_front();
    }
    HandleMessage(c.get(), payload);
  }
}

void Server::HandleMessage(Conn* c, const std::string& payload) {
  const uint8_t type = static_cast<uint8_t>(payload[0]);
  wire::Reader r(payload.data() + 1, payload.size() - 1);

  auto protocol_error = [&](const Status& s) {
    Instruments().protocol_errors->Add(1);
    SendStatusError(c, s);
    RequestClose(c);
  };

  if (!c->handshaken && type != wire::kHello) {
    protocol_error(Status::InvalidArgument("wire: expected HELLO"));
    return;
  }
  switch (type) {
    case wire::kHello: {
      auto ver = r.U8();
      auto dialect_name = r.Str();
      if (!ver.ok() || !dialect_name.ok() || !r.AtEnd()) {
        protocol_error(Status::ParseError("wire: malformed HELLO"));
        return;
      }
      if (*ver != wire::kProtocolVersion) {
        protocol_error(Status::InvalidArgument(
            "wire: unsupported protocol version " + std::to_string(*ver)));
        return;
      }
      Dialect d;
      const std::string upper = UpperCopy(*dialect_name);
      if (!DialectFromName(upper, &d)) {
        protocol_error(
            Status::InvalidArgument("wire: unknown dialect " + *dialect_name));
        return;
      }
      Status set = c->session->SetDialect(d);
      if (!set.ok()) {
        protocol_error(set);
        return;
      }
      c->handshaken = true;
      wire::Writer w;
      w.U8(wire::kHelloOk);
      w.U8(wire::kProtocolVersion);
      w.Str("dashdb-serve");
      w.Str(DialectName(d));
      SendPayload(c, w.payload());
      return;
    }
    case wire::kQuery: {
      auto sql = r.Str();
      if (!sql.ok() || !r.AtEnd()) {
        protocol_error(Status::ParseError("wire: malformed QUERY"));
        return;
      }
      Instruments().queries->Add(1);
      Result<QueryResult> res = c->session->Execute(*sql);
      if (!res.ok()) {
        SendStatusError(c, res.status());  // typed error; connection lives on
        return;
      }
      SendResult(c, *res);
      return;
    }
    case wire::kPrepare: {
      auto name = r.Str();
      auto sql = name.ok() ? r.Str() : Result<std::string>(name.status());
      if (!name.ok() || !sql.ok() || !r.AtEnd()) {
        protocol_error(Status::ParseError("wire: malformed PREPARE"));
        return;
      }
      Result<int> count = c->session->Prepare(*name, *sql);
      if (!count.ok()) {
        SendStatusError(c, count.status());
        return;
      }
      wire::Writer w;
      w.U8(wire::kPrepareOk);
      w.U32(static_cast<uint32_t>(*count));
      SendPayload(c, w.payload());
      return;
    }
    case wire::kExecute: {
      auto name = r.Str();
      auto nparams = name.ok() ? r.U32() : Result<uint32_t>(name.status());
      std::vector<Value> params;
      bool malformed = !name.ok() || !nparams.ok();
      if (!malformed) {
        if (*nparams > 4096) {
          protocol_error(
              Status::InvalidArgument("wire: EXECUTE parameter count " +
                                      std::to_string(*nparams)));
          return;
        }
        params.reserve(*nparams);
        for (uint32_t i = 0; i < *nparams; ++i) {
          auto v = r.Val();
          if (!v.ok()) {
            malformed = true;
            break;
          }
          params.push_back(std::move(*v));
        }
      }
      if (malformed || !r.AtEnd()) {
        protocol_error(Status::ParseError("wire: malformed EXECUTE"));
        return;
      }
      Instruments().queries->Add(1);
      Result<QueryResult> res =
          c->session->ExecutePrepared(*name, std::move(params));
      if (!res.ok()) {
        SendStatusError(c, res.status());
        return;
      }
      SendResult(c, *res);
      return;
    }
    case wire::kBye:
      RequestClose(c);
      return;
    default:
      protocol_error(Status::InvalidArgument(
          "wire: unexpected message type " + std::to_string(type)));
      return;
  }
}

void Server::SendPayload(Conn* c, const std::string& payload) {
  if (c->closed.load(std::memory_order_acquire)) return;
  const std::string frame = wire::Frame(payload);
  std::lock_guard<std::mutex> lk(c->write_mu);
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::send(c->fd, frame.data() + off, frame.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // Peer gone or send timeout: ask the I/O thread for teardown.
    c->close_requested.store(true, std::memory_order_release);
    Wake();
    return;
  }
}

void Server::SendStatusError(Conn* c, const Status& s) {
  wire::Writer w;
  w.U8(wire::kError);
  w.U8(static_cast<uint8_t>(s.code()));
  w.Str(s.message());
  SendPayload(c, w.payload());
}

void Server::SendResult(Conn* c, const QueryResult& r) {
  {
    wire::Writer w;
    w.U8(wire::kResultHeader);
    w.U32(static_cast<uint32_t>(r.columns.size()));
    for (const auto& col : r.columns) {
      w.Str(col.name);
      w.U8(static_cast<uint8_t>(col.type));
    }
    SendPayload(c, w.payload());
  }
  const size_t total = r.rows.logical_rows();
  const size_t ncols = r.rows.num_columns();
  for (size_t begin = 0; begin < total;
       begin += config_.max_batch_rows) {
    const size_t end = std::min(total, begin + config_.max_batch_rows);
    wire::Writer w;
    w.U8(wire::kResultBatch);
    w.U32(static_cast<uint32_t>(end - begin));
    w.U32(static_cast<uint32_t>(ncols));
    for (size_t i = begin; i < end; ++i) {
      const size_t row = r.rows.row_at(i);
      for (size_t col = 0; col < ncols; ++col) {
        w.Val(r.rows.columns[col].GetValue(row));
      }
    }
    SendPayload(c, w.payload());
  }
  wire::Writer w;
  w.U8(wire::kResultDone);
  w.I64(r.affected_rows);
  w.Str(r.message);
  SendPayload(c, w.payload());
}

void Server::RequestClose(Conn* c) {
  c->close_requested.store(true, std::memory_order_release);
  Wake();
}

}  // namespace dashdb
