// Scalar function registry: the polyglot surface of paper II.C.1.
//
// dashDB's approach is "creating a superset of the language elements (for
// example, the union of popular scalar functions used across products)".
// Every function is registered once with its origin dialect recorded as
// metadata; the union is visible to every session, while colliding
// semantics are handled at the expression layer (e.g. Oracle VARCHAR2
// empty-string-is-NULL in ExecContext).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/dialect.h"
#include "common/status.h"
#include "common/value.h"
#include "exec/expr.h"

namespace dashdb {

/// One registered scalar function.
struct FunctionDef {
  std::string name;
  int min_args = 0;
  int max_args = 0;  ///< -1 = variadic
  /// Dialect the function originates from (documentation/metadata; all
  /// functions are exposed as a union per the paper).
  Dialect origin = Dialect::kAnsi;
  /// Infers the result type from argument types.
  std::function<TypeId(const std::vector<TypeId>&)> ret_type;
  ScalarFnImpl fn;
  /// Deterministic and context-free: a call over all-literal arguments
  /// folds to a literal at bind time.
  bool pure = false;
  /// Optional columnar kernel (see VectorFnImpl); null = row loop only.
  VectorFnImpl vec_fn;
};

/// Global immutable registry built at startup.
class FunctionRegistry {
 public:
  static const FunctionRegistry& Global();

  /// Looks up by (upper-cased) name; nullptr when unknown.
  const FunctionDef* Lookup(const std::string& upper_name) const;

  /// All function names originating from `d` (for docs / tests).
  std::vector<std::string> NamesByOrigin(Dialect d) const;

  size_t size() const { return fns_.size(); }

 private:
  FunctionRegistry();
  void Register(FunctionDef def);
  std::map<std::string, FunctionDef> fns_;
};

}  // namespace dashdb
