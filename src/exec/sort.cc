#include "exec/sort.h"

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "common/metrics.h"
#include "common/threadpool.h"

namespace dashdb {

namespace {

void InitBatchFor(const std::vector<OutputCol>& cols, RowBatch* out) {
  out->columns.clear();
  out->columns.reserve(cols.size());
  for (const auto& c : cols) out->columns.emplace_back(c.type);
}

void AppendRowFrom(const RowBatch& src, size_t row, RowBatch* dst) {
  for (size_t c = 0; c < src.columns.size(); ++c) {
    dst->columns[c].AppendFrom(src.columns[c], row);
  }
}

/// memcmp over (ptr, len) byte strings: <0, 0, >0.
int CompareBytes(const uint8_t* a, size_t la, const uint8_t* b, size_t lb) {
  const size_t n = la < lb ? la : lb;
  int c = std::memcmp(a, b, n);
  if (c != 0) return c;
  return la < lb ? -1 : (la == lb ? 0 : 1);
}

struct SortInstruments {
  Counter* sort_rows;   ///< rows materialized through SortOp
  Counter* sort_runs;   ///< sorted runs produced (1 per serial sort)
  Counter* topn_fused;  ///< ORDER BY+LIMIT plans served by TopNOp
};

SortInstruments& GlobalSortInstruments() {
  auto& reg = MetricRegistry::Global();
  static SortInstruments in{
      reg.GetCounter("exec.sort_rows"),
      reg.GetCounter("exec.sort_runs"),
      reg.GetCounter("exec.topn_fused"),
  };
  return in;
}

/// One contiguous slice of the input, sorted independently.
struct SortRun {
  size_t begin = 0, end = 0;
  NormalizedKeyColumn keys;     ///< keys of rows [begin, end)
  std::vector<uint32_t> order;  ///< LOCAL indices (row - begin), sorted
};

/// Probe the governor every this many merged rows.
constexpr size_t kMergeProbeInterval = 2048;

}  // namespace

// ------------------------------------------------------------------ Sort --

SortOp::SortOp(OperatorPtr child, std::vector<SortKey> keys,
               const ExecContext* ctx, bool serial)
    : child_(std::move(child)),
      keys_(std::move(keys)),
      ctx_(ctx),
      serial_(serial) {
  output_ = child_->output();
}

Status SortOp::OpenImpl() {
  done_ = false;
  materialized_ = false;
  runs_used_ = 0;
  merge_fanin_ = 0;
  return child_->Open();
}

void SortOp::SerialOrder(const RowBatch& all,
                         const std::vector<ColumnVector>& key_cols,
                         std::vector<uint32_t>* order) const {
  // Typed cell comparison straight off the key columns' primitive
  // payloads — no per-comparison Value boxing. Mirrors Value::Compare:
  // NULLs sort high, doubles via <, everything else via the int64
  // payload (a key column has one type, so no cross-family cases).
  auto compare_cell = [](const ColumnVector& cv, uint32_t a,
                         uint32_t b) -> int {
    const bool an = cv.IsNull(a), bn = cv.IsNull(b);
    if (an || bn) return an ? (bn ? 0 : 1) : -1;
    if (cv.type() == TypeId::kVarchar) {
      const std::string& x = cv.GetString(a);
      const std::string& y = cv.GetString(b);
      return x < y ? -1 : (x == y ? 0 : 1);
    }
    if (cv.type() == TypeId::kDouble) {
      const double x = cv.GetDouble(a), y = cv.GetDouble(b);
      return x < y ? -1 : (x == y ? 0 : 1);
    }
    const int64_t x = cv.GetInt(a), y = cv.GetInt(b);
    return x < y ? -1 : (x == y ? 0 : 1);
  };
  std::stable_sort(order->begin(), order->end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < keys_.size(); ++k) {
      int c = compare_cell(key_cols[k], a, b);
      if (c != 0) return keys_[k].desc ? c > 0 : c < 0;
    }
    return false;
  });
}

Status SortOp::ParallelOrder(const RowBatch& all,
                             const std::vector<ColumnVector>& key_cols,
                             std::vector<uint32_t>* order) {
  const size_t n = all.num_rows();
  std::vector<const ColumnVector*> cols;
  std::vector<bool> desc;
  for (size_t k = 0; k < keys_.size(); ++k) {
    cols.push_back(&key_cols[k]);
    desc.push_back(keys_[k].desc);
  }

  // Run count: one per worker, but never runs smaller than ~4K rows — a
  // tiny input sorts in one run even at high DOP.
  size_t R = 1;
  if (ctx_ != nullptr && ctx_->parallel() && n >= 8192) {
    R = std::min<size_t>(static_cast<size_t>(ctx_->dop), n / 4096);
    if (R == 0) R = 1;
  }
  runs_used_ = R;

  std::vector<SortRun> runs(R);
  for (size_t r = 0; r < R; ++r) {
    runs[r].begin = r * n / R;
    runs[r].end = (r + 1) * n / R;
  }
  auto sort_run = [&](size_t r) {
    SortRun& run = runs[r];
    run.keys.Build(cols, desc, run.begin, run.end);
    const size_t len = run.end - run.begin;
    run.order.resize(len);
    for (size_t i = 0; i < len; ++i) run.order[i] = static_cast<uint32_t>(i);
    // Equal normalized keys mean comparator-equal rows, so breaking ties
    // on the index reproduces stable_sort exactly (within a run, local
    // order == global order).
    std::sort(run.order.begin(), run.order.end(),
              [&run](uint32_t a, uint32_t b) {
                int c = run.keys.Compare(a, run.keys, b);
                return c != 0 ? c < 0 : a < b;
              });
  };
  if (R == 1) {
    sort_run(0);
  } else {
    ctx_->pool->ParallelFor(R, sort_run, ctx_->dop, query_ctx());
  }
  DASHDB_RETURN_IF_ERROR(CheckQueryAlive());
  int64_t key_bytes = 0;
  for (const auto& run : runs) {
    key_bytes += static_cast<int64_t>(run.keys.byte_size());
  }
  DASHDB_RETURN_IF_ERROR(ChargeMemory(key_bytes, "sort keys"));

  order->resize(n);
  if (R == 1) {
    std::copy(runs[0].order.begin(), runs[0].order.end(), order->begin());
    merge_fanin_ = 0;
    return Status::OK();
  }
  merge_fanin_ = R;

  // Splitter-partitioned parallel merge: S = R segments. Splitters are
  // actual elements sampled from the largest run's sorted order; each
  // run's boundary for a splitter (key, gidx) is the count of its rows
  // strictly before that element in the composite total order, so the
  // segments partition the output exactly and merge independently.
  const size_t S = R;
  size_t big = 0;
  for (size_t r = 1; r < R; ++r) {
    if (runs[r].order.size() > runs[big].order.size()) big = r;
  }
  // bounds[s][r]: first position of run r's order belonging to segment s.
  std::vector<std::vector<size_t>> bounds(S + 1,
                                          std::vector<size_t>(R, 0));
  for (size_t r = 0; r < R; ++r) bounds[S][r] = runs[r].order.size();
  for (size_t s = 1; s < S; ++s) {
    const SortRun& sb = runs[big];
    if (sb.order.empty()) {
      bounds[s] = bounds[s - 1];
      continue;
    }
    const size_t pos =
        std::min(s * sb.order.size() / S, sb.order.size() - 1);
    const uint32_t split_local = sb.order[pos];
    const uint64_t split_gidx = sb.begin + split_local;
    for (size_t r = 0; r < R; ++r) {
      const SortRun& run = runs[r];
      // lower_bound over the run's sorted order on (key, gidx).
      size_t lo = 0, hi = run.order.size();
      while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        const uint32_t ml = run.order[mid];
        int c = run.keys.Compare(ml, sb.keys, split_local);
        const bool before =
            c != 0 ? c < 0 : (run.begin + ml) < split_gidx;
        if (before) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      bounds[s][r] = lo;
    }
  }
  // Output offset of each segment = total rows in earlier segments.
  std::vector<size_t> seg_out(S + 1, 0);
  for (size_t s = 0; s <= S; ++s) {
    size_t total = 0;
    for (size_t r = 0; r < R; ++r) total += bounds[s][r];
    seg_out[s] = total;
  }

  std::mutex err_mu;
  Status first_err = Status::OK();
  QueryContext* qctx = query_ctx();
  auto merge_segment = [&](size_t s) {
    std::vector<size_t> pos(R), end(R);
    for (size_t r = 0; r < R; ++r) {
      pos[r] = bounds[s][r];
      end[r] = bounds[s + 1][r];
    }
    auto alive = [&](size_t r) { return pos[r] < end[r]; };
    auto wins = [&](size_t a, size_t b) {
      const uint32_t la = runs[a].order[pos[a]];
      const uint32_t lb = runs[b].order[pos[b]];
      int c = runs[a].keys.Compare(la, runs[b].keys, lb);
      if (c != 0) return c < 0;
      return runs[a].begin + la < runs[b].begin + lb;
    };
    TournamentTree tree;
    tree.Init(R, wins, alive);
    size_t out_idx = seg_out[s];
    size_t since_probe = 0;
    for (;;) {
      const int w = tree.winner();
      if (w < 0) break;
      const SortRun& run = runs[w];
      (*order)[out_idx++] =
          static_cast<uint32_t>(run.begin + run.order[pos[w]]);
      ++pos[w];
      tree.Replay(static_cast<size_t>(w), wins, alive);
      if (qctx != nullptr && ++since_probe >= kMergeProbeInterval) {
        since_probe = 0;
        Status st = qctx->CheckAlive();
        if (!st.ok()) {
          std::lock_guard<std::mutex> lk(err_mu);
          if (first_err.ok()) first_err = st;
          return;
        }
      }
    }
  };
  ctx_->pool->ParallelFor(S, merge_segment, ctx_->dop, qctx);
  DASHDB_RETURN_IF_ERROR(CheckQueryAlive());
  return first_err;
}

Status SortOp::Materialize() {
  DASHDB_ASSIGN_OR_RETURN(RowBatch all, DrainOperator(child_.get()));
  // The sort holds both the drained input and the reordered copy.
  DASHDB_RETURN_IF_ERROR(
      ChargeMemory(2 * BatchMemoryBytes(all), "sort materialize"));
  const size_t n = all.num_rows();
  // Evaluate sort keys once.
  std::vector<ColumnVector> key_cols;
  for (const auto& k : keys_) {
    DASHDB_ASSIGN_OR_RETURN(ColumnVector cv, k.expr->Evaluate(all, *ctx_));
    key_cols.push_back(std::move(cv));
  }
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  if (serial_) {
    runs_used_ = 1;
    SerialOrder(all, key_cols, &order);
  } else {
    DASHDB_RETURN_IF_ERROR(ParallelOrder(all, key_cols, &order));
  }
  auto& in = GlobalSortInstruments();
  in.sort_rows->Add(static_cast<int64_t>(n));
  in.sort_runs->Add(static_cast<int64_t>(runs_used_));
  // Column-wise gather by order vector (no per-row boxing).
  InitBatchFor(output_, &result_);
  for (size_t c = 0; c < result_.columns.size(); ++c) {
    result_.columns[c].Gather(all.columns[c], order.data(), n);
  }
  materialized_ = true;
  return Status::OK();
}

Result<bool> SortOp::NextImpl(RowBatch* out) {
  if (!materialized_) DASHDB_RETURN_IF_ERROR(Materialize());
  if (done_) return false;
  *out = std::move(result_);
  done_ = true;
  return out->num_rows() > 0;
}

std::string SortOp::AnalyzeExtra() const {
  if (!materialized_) return std::string();
  if (serial_) return " strategy=serial";
  char buf[64];
  std::snprintf(buf, sizeof(buf), " strategy=full runs=%zu fanin=%zu",
                runs_used_, merge_fanin_);
  return buf;
}

// ------------------------------------------------------------------ TopN --

TopNOp::TopNOp(OperatorPtr child, std::vector<SortKey> keys, int64_t limit,
               int64_t offset, const ExecContext* ctx)
    : child_(std::move(child)),
      keys_(std::move(keys)),
      limit_(limit < 0 ? 0 : limit),
      offset_(offset < 0 ? 0 : offset),
      ctx_(ctx) {
  capacity_ = static_cast<size_t>(limit_) + static_cast<size_t>(offset_);
  output_ = child_->output();
}

Status TopNOp::OpenImpl() {
  done_ = false;
  materialized_ = false;
  heaps_.clear();
  heaps_used_ = 0;
  return child_->Open();
}

void TopNOp::Consume(Heap* h, const RowBatch& in,
                     const NormalizedKeyColumn& keys, size_t lo, size_t hi,
                     uint64_t seq_base) {
  auto heap_less = [](const Heap::Entry& a, const Heap::Entry& b) {
    int c = CompareBytes(
        reinterpret_cast<const uint8_t*>(a.key.data()), a.key.size(),
        reinterpret_cast<const uint8_t*>(b.key.data()), b.key.size());
    return c != 0 ? c < 0 : a.seq < b.seq;
  };
  for (size_t row = lo; row < hi; ++row) {
    const size_t local = row - lo;
    const uint8_t* kd = keys.data(local);
    const size_t kl = keys.length(local);
    const uint64_t seq = seq_base + row;
    if (h->entries.size() >= capacity_) {
      // Admit only when strictly better than the boundary: an equal key
      // with a later sequence number loses, so the retained prefix is the
      // stable one.
      const Heap::Entry& top = h->entries.front();
      int c = CompareBytes(kd, kl,
                           reinterpret_cast<const uint8_t*>(top.key.data()),
                           top.key.size());
      if (c > 0 || (c == 0 && seq > top.seq)) continue;
      std::pop_heap(h->entries.begin(), h->entries.end(), heap_less);
      h->entries.pop_back();
    }
    AppendRowFrom(in, row, &h->pool);
    Heap::Entry e;
    e.key.assign(reinterpret_cast<const char*>(kd), kl);
    e.seq = seq;
    e.pool_row = static_cast<uint32_t>(h->pool_rows++);
    h->entries.push_back(std::move(e));
    std::push_heap(h->entries.begin(), h->entries.end(), heap_less);
    if (h->pool_rows > 2 * capacity_ + 4096) CompactPool(h);
  }
}

void TopNOp::CompactPool(Heap* h) {
  std::vector<uint32_t> sel;
  sel.reserve(h->entries.size());
  for (auto& e : h->entries) sel.push_back(e.pool_row);
  RowBatch dense;
  InitBatchFor(output_, &dense);
  for (size_t c = 0; c < dense.columns.size(); ++c) {
    dense.columns[c].Gather(h->pool.columns[c], sel.data(), sel.size());
  }
  for (size_t i = 0; i < h->entries.size(); ++i) {
    h->entries[i].pool_row = static_cast<uint32_t>(i);
  }
  h->pool = std::move(dense);
  h->pool_rows = h->entries.size();
}

Status TopNOp::Materialize() {
  InitBatchFor(output_, &result_);
  materialized_ = true;
  GlobalSortInstruments().topn_fused->Add(1);
  if (capacity_ == 0 || limit_ == 0) return Status::OK();  // never pulls

  const size_t W =
      (ctx_ != nullptr && ctx_->parallel()) ? static_cast<size_t>(ctx_->dop)
                                            : 1;
  heaps_.resize(W);
  for (auto& h : heaps_) InitBatchFor(output_, &h.pool);

  std::vector<const ColumnVector*> cols;
  std::vector<bool> desc;
  uint64_t seq_base = 0;
  RowBatch in;
  for (;;) {
    DASHDB_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) break;
    const size_t n = in.num_rows();
    if (n == 0) continue;
    std::vector<ColumnVector> key_cols;
    for (const auto& k : keys_) {
      DASHDB_ASSIGN_OR_RETURN(ColumnVector cv, k.expr->Evaluate(in, *ctx_));
      key_cols.push_back(std::move(cv));
    }
    cols.clear();
    desc.clear();
    for (size_t k = 0; k < keys_.size(); ++k) {
      cols.push_back(&key_cols[k]);
      desc.push_back(keys_[k].desc);
    }
    if (W > 1 && n >= 8192) {
      // Per-thread heaps over disjoint row slices; the slice owner is
      // fixed by the slice index, so results are DOP-deterministic.
      ctx_->pool->ParallelFor(
          W,
          [&](size_t w) {
            const size_t lo = w * n / W, hi = (w + 1) * n / W;
            if (lo >= hi) return;
            NormalizedKeyColumn nk;
            nk.Build(cols, desc, lo, hi);
            Consume(&heaps_[w], in, nk, lo, hi, seq_base);
          },
          ctx_->dop, query_ctx());
      DASHDB_RETURN_IF_ERROR(CheckQueryAlive());
    } else {
      NormalizedKeyColumn nk;
      nk.Build(cols, desc, 0, n);
      Consume(&heaps_[0], in, nk, 0, n, seq_base);
    }
    seq_base += n;
  }

  int64_t held = 0;
  for (const auto& h : heaps_) {
    held += BatchMemoryBytes(h.pool);
    for (const auto& e : h.entries) {
      held += static_cast<int64_t>(e.key.size() + sizeof(Heap::Entry));
    }
  }
  DASHDB_RETURN_IF_ERROR(ChargeMemory(held, "topn heaps"));

  // Merge the per-thread heaps: total order on (key, seq), then emit rows
  // [offset, offset+limit) — identical to Sort + Limit over the same input.
  struct Ref {
    const Heap::Entry* e;
    const Heap* h;
  };
  std::vector<Ref> refs;
  for (const auto& h : heaps_) {
    if (!h.entries.empty()) ++heaps_used_;
    for (const auto& e : h.entries) refs.push_back({&e, &h});
  }
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    int c = CompareBytes(
        reinterpret_cast<const uint8_t*>(a.e->key.data()), a.e->key.size(),
        reinterpret_cast<const uint8_t*>(b.e->key.data()), b.e->key.size());
    return c != 0 ? c < 0 : a.e->seq < b.e->seq;
  });
  const size_t first = std::min(static_cast<size_t>(offset_), refs.size());
  const size_t last =
      std::min(first + static_cast<size_t>(limit_), refs.size());
  for (size_t i = first; i < last; ++i) {
    AppendRowFrom(refs[i].h->pool, refs[i].e->pool_row, &result_);
  }
  heaps_.clear();
  return Status::OK();
}

Result<bool> TopNOp::NextImpl(RowBatch* out) {
  if (!materialized_) DASHDB_RETURN_IF_ERROR(Materialize());
  if (done_) return false;
  *out = std::move(result_);
  done_ = true;
  return out->num_rows() > 0;
}

std::string TopNOp::AnalyzeExtra() const {
  if (!materialized_) return std::string();
  char buf[64];
  std::snprintf(buf, sizeof(buf), " strategy=topn capacity=%zu heaps=%zu",
                capacity_, heaps_used_);
  return buf;
}

}  // namespace dashdb
