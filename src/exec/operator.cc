#include "exec/operator.h"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "common/hash.h"
#include "common/metrics.h"
#include "common/threadpool.h"

namespace dashdb {

uint64_t HashValue(const Value& v) {
  if (v.is_null()) return 0x9E3779B97F4A7C15ull;
  switch (v.type()) {
    case TypeId::kVarchar:
      return HashString(v.AsString());
    case TypeId::kDouble: {
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      return HashInt64(bits);
    }
    default:
      return HashInt64(static_cast<uint64_t>(v.AsInt()));
  }
}

namespace {

void InitBatchFor(const std::vector<OutputCol>& cols, RowBatch* out) {
  out->columns.clear();
  out->columns.reserve(cols.size());
  for (const auto& c : cols) out->columns.emplace_back(c.type);
}

void AppendRowFrom(const RowBatch& src, size_t row, RowBatch* dst,
                   size_t dst_col_offset = 0) {
  for (size_t c = 0; c < src.columns.size(); ++c) {
    dst->columns[dst_col_offset + c].AppendFrom(src.columns[c], row);
  }
}

}  // namespace

std::string Operator::PlanString(int indent) const {
  std::string out(indent * 2, ' ');
  out += label();
  out += "\n";
  for (const Operator* c : children()) out += c->PlanString(indent + 1);
  return out;
}

namespace {

double ThreadCpuSeconds() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) + ts.tv_nsec * 1e-9;
}

/// Registry instruments for the exec layer, resolved once per process;
/// after that every event is one relaxed atomic add.
struct ExecInstruments {
  Counter* rows_out;
  Counter* batches_out;
  Counter* operator_opens;
  Counter* morsels;
  Histogram* batch_rows;
};

ExecInstruments& GlobalExecInstruments() {
  auto& reg = MetricRegistry::Global();
  static ExecInstruments in{
      reg.GetCounter("exec.rows_out"),
      reg.GetCounter("exec.batches_out"),
      reg.GetCounter("exec.operator_opens"),
      reg.GetCounter("exec.morsels"),
      reg.GetHistogram("exec.batch_rows", {16, 64, 256, 1024, 4096}),
  };
  return in;
}

}  // namespace

Status Operator::Open() {
  ++metrics_.open_calls;
  GlobalExecInstruments().operator_opens->Add(1);
  const auto wall0 = std::chrono::steady_clock::now();
  const double cpu0 = ThreadCpuSeconds();
  Status s = OpenImpl();
  metrics_.cpu_seconds += ThreadCpuSeconds() - cpu0;
  metrics_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  return s;
}

Result<bool> Operator::Next(RowBatch* out) {
  ++metrics_.next_calls;
  const auto wall0 = std::chrono::steady_clock::now();
  const double cpu0 = ThreadCpuSeconds();
  Result<bool> r = NextImpl(out);
  metrics_.cpu_seconds += ThreadCpuSeconds() - cpu0;
  metrics_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  if (r.ok() && *r) {
    const uint64_t n = out->num_rows();
    ++metrics_.batches_out;
    metrics_.rows_out += n;
    auto& in = GlobalExecInstruments();
    in.rows_out->Add(n);
    in.batches_out->Add(1);
    in.batch_rows->Observe(static_cast<int64_t>(n));
  }
  return r;
}

std::string Operator::kind() const {
  std::string l = label();
  size_t p = l.find('(');
  return p == std::string::npos ? l : l.substr(0, p);
}

std::string Operator::AnalyzeString(int indent) const {
  double child_wall = 0;
  for (const Operator* c : children()) child_wall += c->metrics().wall_seconds;
  const double self = std::max(0.0, metrics_.wall_seconds - child_wall);
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                " [rows=%llu batches=%llu wall=%.3fms self=%.3fms]",
                static_cast<unsigned long long>(metrics_.rows_out),
                static_cast<unsigned long long>(metrics_.batches_out),
                metrics_.wall_seconds * 1e3, self * 1e3);
  std::string out(indent * 2, ' ');
  out += label();
  out += buf;
  out += "\n";
  for (const Operator* c : children()) out += c->AnalyzeString(indent + 1);
  return out;
}

uint32_t Operator::AddTraceSpans(Trace* trace, uint32_t parent) const {
  const uint32_t id = trace->AddSpan(kind(), parent);
  TraceSpan& s = trace->span(id);
  s.rows = metrics_.rows_out;
  s.wall_seconds = metrics_.wall_seconds;
  s.cpu_seconds = metrics_.cpu_seconds;
  for (const Operator* c : children()) c->AddTraceSpans(trace, id);
  return id;
}

Result<RowBatch> DrainOperator(Operator* op) {
  DASHDB_RETURN_IF_ERROR(op->Open());
  RowBatch all;
  InitBatchFor(op->output(), &all);
  RowBatch batch;
  for (;;) {
    DASHDB_ASSIGN_OR_RETURN(bool more, op->Next(&batch));
    if (!more) break;
    for (size_t i = 0; i < batch.num_rows(); ++i) AppendRowFrom(batch, i, &all);
  }
  return all;
}

// ------------------------------------------------------------ ColumnScan --

ColumnScanOp::ColumnScanOp(std::shared_ptr<const ColumnTable> table,
                           std::vector<ColumnPredicate> preds,
                           std::vector<int> projection, ScanOptions opts)
    : table_(std::move(table)),
      preds_(std::move(preds)),
      projection_(std::move(projection)),
      opts_(opts) {
  for (int c : projection_) {
    output_.push_back(
        {table_->schema().column(c).name, table_->schema().column(c).type});
  }
}

Status ColumnScanOp::OpenImpl() {
  next_page_ = 0;
  stats_ = ScanStats{};
  return Status::OK();
}

Result<bool> ColumnScanOp::NextImpl(RowBatch* out) {
  while (next_page_ <= table_->num_pages()) {
    InitBatchFor(output_, out);
    DASHDB_RETURN_IF_ERROR(table_->ScanPage(next_page_, preds_, projection_,
                                            opts_, out, nullptr, &stats_));
    ++next_page_;
    if (out->num_rows() > 0) return true;
  }
  return false;
}

// ---------------------------------------------------- ParallelColumnScan --

ParallelColumnScanOp::ParallelColumnScanOp(
    std::shared_ptr<const ColumnTable> table,
    std::vector<ColumnPredicate> preds, std::vector<int> projection,
    ScanOptions opts)
    : table_(std::move(table)),
      preds_(std::move(preds)),
      projection_(std::move(projection)),
      opts_(opts) {
  for (int c : projection_) {
    output_.push_back(
        {table_->schema().column(c).name, table_->schema().column(c).type});
  }
}

Status ParallelColumnScanOp::OpenImpl() {
  ran_ = false;
  next_slot_ = 0;
  results_.clear();
  stats_ = ScanStats{};
  return Status::OK();
}

Status ParallelColumnScanOp::RunMorsels() {
  // One morsel per page plus the uncompressed tail; the pool chunks
  // contiguous page ranges across workers, and per-page result slots keep
  // the emitted batches in exact page order (identical to the serial scan).
  const size_t n_units = table_->num_pages() + 1;
  results_.resize(n_units);
  std::vector<ScanStats> unit_stats(n_units);
  Status first_error;
  std::mutex err_mu;
  auto scan_unit = [&](size_t p) {
    GlobalExecInstruments().morsels->Add(1);
    RowBatch* out = &results_[p];
    out->columns.clear();
    out->columns.reserve(output_.size());
    for (const auto& c : output_) out->columns.emplace_back(c.type);
    Status s = table_->ScanPage(p, preds_, projection_, opts_, out, nullptr,
                                &unit_stats[p]);
    if (!s.ok()) {
      std::lock_guard<std::mutex> lk(err_mu);
      if (first_error.ok()) first_error = s;
    }
  };
  if (opts_.exec_pool != nullptr && opts_.dop > 1) {
    opts_.exec_pool->ParallelFor(n_units, scan_unit, opts_.dop);
  } else {
    for (size_t p = 0; p < n_units; ++p) scan_unit(p);
  }
  DASHDB_RETURN_IF_ERROR(first_error);
  for (const auto& s : unit_stats) {
    stats_.pages_visited += s.pages_visited;
    stats_.pages_skipped += s.pages_skipped;
    stats_.strides_skipped += s.strides_skipped;
    stats_.rows_matched += s.rows_matched;
  }
  ran_ = true;
  return Status::OK();
}

Result<bool> ParallelColumnScanOp::NextImpl(RowBatch* out) {
  if (!ran_) DASHDB_RETURN_IF_ERROR(RunMorsels());
  while (next_slot_ < results_.size()) {
    RowBatch& slot = results_[next_slot_];
    ++next_slot_;
    if (slot.num_rows() > 0) {
      *out = std::move(slot);
      return true;
    }
  }
  return false;
}

// --------------------------------------------------------------- RowScan --

RowScanOp::RowScanOp(std::shared_ptr<const RowTable> table,
                     std::vector<ColumnPredicate> preds,
                     std::vector<int> projection)
    : table_(std::move(table)),
      preds_(std::move(preds)),
      projection_(std::move(projection)) {
  for (int c : projection_) {
    output_.push_back(
        {table_->schema().column(c).name, table_->schema().column(c).type});
  }
}

Status RowScanOp::OpenImpl() {
  next_row_ = 0;
  return Status::OK();
}

Result<bool> RowScanOp::NextImpl(RowBatch* out) {
  while (next_row_ < table_->row_count()) {
    InitBatchFor(output_, out);
    uint64_t end = std::min<uint64_t>(next_row_ + kChunk, table_->row_count());
    DASHDB_RETURN_IF_ERROR(
        table_->ScanRange(next_row_, end, preds_, projection_, out, nullptr));
    next_row_ = end;
    if (out->num_rows() > 0) return true;
  }
  return false;
}

// ---------------------------------------------------------- RowIndexScan --

RowIndexScanOp::RowIndexScanOp(std::shared_ptr<const RowTable> table,
                               int index_col, int64_t lo, int64_t hi,
                               std::vector<ColumnPredicate> residual,
                               std::vector<int> projection)
    : table_(std::move(table)),
      index_col_(index_col),
      lo_(lo),
      hi_(hi),
      residual_(std::move(residual)),
      projection_(std::move(projection)) {
  for (int c : projection_) {
    output_.push_back(
        {table_->schema().column(c).name, table_->schema().column(c).type});
  }
}

Status RowIndexScanOp::OpenImpl() {
  drained_ = false;
  InitBatchFor(output_, &buffer_);
  return table_->IndexScan(
      index_col_, lo_, hi_, residual_, projection_,
      [&](RowBatch& b, const std::vector<uint64_t>&) {
        for (size_t i = 0; i < b.num_rows(); ++i) {
          AppendRowFrom(b, i, &buffer_);
        }
      });
}

Result<bool> RowIndexScanOp::NextImpl(RowBatch* out) {
  if (drained_ || buffer_.num_rows() == 0) return false;
  *out = std::move(buffer_);
  InitBatchFor(output_, &buffer_);
  drained_ = true;
  return true;
}

// ---------------------------------------------------------------- Filter --

FilterOp::FilterOp(OperatorPtr child, ExprPtr pred, const ExecContext* ctx)
    : child_(std::move(child)), pred_(std::move(pred)), ctx_(ctx) {
  output_ = child_->output();
}

Status FilterOp::OpenImpl() { return child_->Open(); }

Result<bool> FilterOp::NextImpl(RowBatch* out) {
  RowBatch in;
  for (;;) {
    DASHDB_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) return false;
    DASHDB_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                            EvalFilter(*pred_, in, *ctx_));
    if (sel.empty()) continue;
    InitBatchFor(output_, out);
    for (uint32_t r : sel) AppendRowFrom(in, r, out);
    return true;
  }
}

// --------------------------------------------------------------- Project --

ProjectOp::ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
                     std::vector<std::string> names, const ExecContext* ctx)
    : child_(std::move(child)), exprs_(std::move(exprs)), ctx_(ctx) {
  for (size_t i = 0; i < exprs_.size(); ++i) {
    output_.push_back({names[i], exprs_[i]->out_type()});
  }
}

Status ProjectOp::OpenImpl() { return child_->Open(); }

Result<bool> ProjectOp::NextImpl(RowBatch* out) {
  RowBatch in;
  DASHDB_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  out->columns.clear();
  out->columns.reserve(exprs_.size());
  for (const auto& e : exprs_) {
    DASHDB_ASSIGN_OR_RETURN(ColumnVector cv, e->Evaluate(in, *ctx_));
    out->columns.push_back(std::move(cv));
  }
  return true;
}

// -------------------------------------------------------------- HashJoin --

HashJoinOp::HashJoinOp(OperatorPtr probe, OperatorPtr build,
                       std::vector<ExprPtr> probe_keys,
                       std::vector<ExprPtr> build_keys, JoinType type,
                       const ExecContext* ctx, bool partitioned)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      probe_keys_(std::move(probe_keys)),
      build_keys_(std::move(build_keys)),
      type_(type),
      ctx_(ctx),
      partitioned_(partitioned) {
  output_ = probe_->output();
  for (const auto& c : build_->output()) output_.push_back(c);
}

Status HashJoinOp::OpenImpl() {
  built_ = false;
  build_data_.columns.clear();
  build_key_vals_.clear();
  partitions_.clear();
  int_partitions_.clear();
  fast_int_ = false;
  DASHDB_RETURN_IF_ERROR(probe_->Open());
  return build_->Open();
}

std::string HashJoinOp::label() const {
  std::string s = type_ == JoinType::kLeft ? "HashLeftJoin" : "HashJoin";
  s += "(keys=" + std::to_string(probe_keys_.size());
  if (partitioned_) s += ", cache-partitioned";
  if (ctx_->parallel() && partitioned_) {
    s += ", build-dop=" + std::to_string(ctx_->dop);
  }
  s += ")";
  return s;
}

bool HashJoinOp::ParallelBuildEligible(size_t build_rows) const {
  return ctx_->parallel() && partitioned_ &&
         build_rows >= kParallelBuildMinRows;
}

Status HashJoinOp::BuildSide() {
  InitBatchFor(build_->output(), &build_data_);
  const int nparts = partitioned_ ? (1 << kPartitionBits) : 1;
  partitions_.resize(nparts);
  // Fast path detection: one integer-backed column-ref key on both sides.
  if (probe_keys_.size() == 1) {
    auto* pk = dynamic_cast<ColumnRefExpr*>(probe_keys_[0].get());
    auto* bk = dynamic_cast<ColumnRefExpr*>(build_keys_[0].get());
    if (pk && bk && IsIntegerBacked(pk->out_type()) &&
        IsIntegerBacked(bk->out_type())) {
      fast_int_ = true;
      probe_key_col_ = pk->index();
      build_key_col_ = bk->index();
      int_partitions_.resize(nparts);
    }
  }
  // Drain the build side first: cardinality is then known before any hash
  // table is sized, and the appended build_data_ batch becomes the single
  // input the (possibly parallel) partitioning phases read from.
  {
    RowBatch in;
    for (;;) {
      DASHDB_ASSIGN_OR_RETURN(bool more, build_->Next(&in));
      if (!more) break;
      for (size_t r = 0; r < in.num_rows(); ++r) {
        AppendRowFrom(in, r, &build_data_);
      }
    }
  }
  const size_t n = build_data_.num_rows();
  const size_t per_part = n / static_cast<size_t>(nparts) + 1;
  if (fast_int_) {
    for (auto& p : int_partitions_) p.table.reserve(per_part);
  } else {
    for (auto& p : partitions_) p.table.reserve(per_part);
    build_key_vals_.resize(n);
  }
  built_ = true;
  if (n == 0) return Status::OK();

  const bool parallel = ParallelBuildEligible(n);
  auto run = [&](size_t count, const std::function<void(size_t)>& f) {
    if (parallel) {
      ctx_->pool->ParallelFor(count, f, ctx_->dop);
    } else {
      for (size_t i = 0; i < count; ++i) f(i);
    }
  };

  // Phase 1 — per-row partition assignment (rows are independent): key
  // evaluation, hashing, and the radix digit. -1 marks NULL keys, which
  // never join and stay out of the tables.
  std::vector<int32_t> part_of(n);
  std::vector<uint64_t> hash_of;
  const ColumnVector* key_col =
      fast_int_ ? &build_data_.columns[build_key_col_] : nullptr;
  if (fast_int_) {
    run(n, [&](size_t r) {
      if (key_col->IsNull(r)) {
        part_of[r] = -1;
        return;
      }
      uint64_t h = HashInt64(static_cast<uint64_t>(key_col->GetInt(r)));
      part_of[r] =
          partitioned_ ? static_cast<int32_t>((h >> 32) & (nparts - 1)) : 0;
    });
  } else {
    hash_of.resize(n);
    Status first_error;
    std::mutex err_mu;
    run(n, [&](size_t r) {
      std::vector<Value> keys;
      keys.reserve(build_keys_.size());
      uint64_t h = 0;
      bool has_null = false;
      for (const auto& k : build_keys_) {
        Result<Value> v = k->EvaluateRow(build_data_, r, *ctx_);
        if (!v.ok()) {
          std::lock_guard<std::mutex> lk(err_mu);
          if (first_error.ok()) first_error = v.status();
          part_of[r] = -1;
          return;
        }
        has_null |= v->is_null();
        h = HashCombine(h, HashValue(*v));
        keys.push_back(std::move(*v));
      }
      build_key_vals_[r] = std::move(keys);
      hash_of[r] = h;
      part_of[r] =
          has_null
              ? -1
              : (partitioned_ ? static_cast<int32_t>((h >> 32) & (nparts - 1))
                              : 0);
    });
    DASHDB_RETURN_IF_ERROR(first_error);
  }

  // Phase 2 — counting sort of row ids by partition (serial, O(n)).
  std::vector<uint32_t> offsets(nparts + 1, 0);
  for (size_t r = 0; r < n; ++r) {
    if (part_of[r] >= 0) ++offsets[part_of[r] + 1];
  }
  for (int p = 0; p < nparts; ++p) offsets[p + 1] += offsets[p];
  std::vector<uint32_t> rows(offsets[nparts]);
  {
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (size_t r = 0; r < n; ++r) {
      if (part_of[r] >= 0) rows[cursor[part_of[r]]++] = static_cast<uint32_t>(r);
    }
  }

  // Phase 3 — per-partition table construction: the radix partitions are
  // independent, so they fan out across the pool. Rows insert in ascending
  // row order within each partition — the same sequence the serial build
  // used — so equal_range chains (and join output order) are unchanged.
  run(static_cast<size_t>(nparts), [&](size_t p) {
    for (uint32_t idx = offsets[p]; idx < offsets[p + 1]; ++idx) {
      uint32_t r = rows[idx];
      if (fast_int_) {
        int_partitions_[p].table.emplace(key_col->GetInt(r), r);
      } else {
        partitions_[p].table.emplace(hash_of[r], r);
      }
    }
  });
  return Status::OK();
}

bool HashJoinOp::KeysEqual(const RowBatch&, size_t, uint32_t build_row,
                           const std::vector<Value>& probe_key_vals) const {
  const std::vector<Value>& bk = build_key_vals_[build_row];
  for (size_t i = 0; i < bk.size(); ++i) {
    if (bk[i].is_null() || probe_key_vals[i].is_null()) return false;
    if (bk[i].Compare(probe_key_vals[i]) != 0) return false;
  }
  return true;
}

Result<bool> HashJoinOp::NextImpl(RowBatch* out) {
  if (!built_) DASHDB_RETURN_IF_ERROR(BuildSide());
  const int nparts = partitioned_ ? (1 << kPartitionBits) : 1;
  RowBatch in;
  for (;;) {
    DASHDB_ASSIGN_OR_RETURN(bool more, probe_->Next(&in));
    if (!more) return false;
    InitBatchFor(output_, out);
    const size_t probe_cols = in.columns.size();
    if (fast_int_) {
      const ColumnVector& kc = in.columns[probe_key_col_];
      for (size_t r = 0; r < in.num_rows(); ++r) {
        bool matched = false;
        if (!kc.IsNull(r)) {
          int64_t k = kc.GetInt(r);
          int part =
              partitioned_
                  ? static_cast<int>((HashInt64(static_cast<uint64_t>(k))
                                      >> 32) & (nparts - 1))
                  : 0;
          auto [b, e] = int_partitions_[part].table.equal_range(k);
          for (auto it = b; it != e; ++it) {
            matched = true;
            AppendRowFrom(in, r, out);
            for (size_t c = 0; c < build_data_.columns.size(); ++c) {
              out->columns[probe_cols + c].AppendFrom(build_data_.columns[c],
                                                      it->second);
            }
          }
        }
        if (!matched && type_ == JoinType::kLeft) {
          AppendRowFrom(in, r, out);
          for (size_t c = 0; c < build_data_.columns.size(); ++c) {
            out->columns[probe_cols + c].AppendNull();
          }
        }
      }
      if (out->num_rows() > 0) return true;
      continue;
    }
    for (size_t r = 0; r < in.num_rows(); ++r) {
      std::vector<Value> keys;
      keys.reserve(probe_keys_.size());
      uint64_t h = 0;
      bool has_null = false;
      for (const auto& k : probe_keys_) {
        DASHDB_ASSIGN_OR_RETURN(Value v, k->EvaluateRow(in, r, *ctx_));
        has_null |= v.is_null();
        h = HashCombine(h, HashValue(v));
        keys.push_back(std::move(v));
      }
      bool matched = false;
      if (!has_null) {
        const Partition& part =
            partitions_[partitioned_ ? (h >> 32) & (nparts - 1) : 0];
        auto [b, e] = part.table.equal_range(h);
        for (auto it = b; it != e; ++it) {
          if (!KeysEqual(in, r, it->second, keys)) continue;
          matched = true;
          AppendRowFrom(in, r, out);
          for (size_t c = 0; c < build_data_.columns.size(); ++c) {
            out->columns[probe_cols + c].AppendFrom(build_data_.columns[c],
                                                    it->second);
          }
        }
      }
      if (!matched && type_ == JoinType::kLeft) {
        AppendRowFrom(in, r, out);
        for (size_t c = 0; c < build_data_.columns.size(); ++c) {
          out->columns[probe_cols + c].AppendNull();
        }
      }
    }
    if (out->num_rows() > 0) return true;
  }
}

// -------------------------------------------------------- NestedLoopJoin --

NestedLoopJoinOp::NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                                   ExprPtr condition, JoinType type,
                                   const ExecContext* ctx)
    : left_(std::move(left)),
      right_(std::move(right)),
      condition_(std::move(condition)),
      type_(type),
      ctx_(ctx) {
  output_ = left_->output();
  for (const auto& c : right_->output()) output_.push_back(c);
}

Status NestedLoopJoinOp::OpenImpl() {
  built_ = false;
  DASHDB_RETURN_IF_ERROR(left_->Open());
  return right_->Open();
}

Result<bool> NestedLoopJoinOp::NextImpl(RowBatch* out) {
  if (!built_) {
    DASHDB_ASSIGN_OR_RETURN(right_data_, DrainOperator(right_.get()));
    built_ = true;
  }
  RowBatch in;
  const size_t left_cols = left_->output().size();
  for (;;) {
    DASHDB_ASSIGN_OR_RETURN(bool more, left_->Next(&in));
    if (!more) return false;
    InitBatchFor(output_, out);
    for (size_t l = 0; l < in.num_rows(); ++l) {
      bool matched = false;
      for (size_t r = 0; r < right_data_.num_rows(); ++r) {
        bool ok = true;
        if (condition_) {
          // Evaluate condition on the (l, r) pair via a tiny assembled batch.
          RowBatch one;
          InitBatchFor(output_, &one);
          AppendRowFrom(in, l, &one);
          for (size_t c = 0; c < right_data_.columns.size(); ++c) {
            one.columns[left_cols + c].AppendFrom(right_data_.columns[c], r);
          }
          DASHDB_ASSIGN_OR_RETURN(Value v,
                                  condition_->EvaluateRow(one, 0, *ctx_));
          ok = !v.is_null() && v.AsBool();
        }
        if (!ok) continue;
        matched = true;
        AppendRowFrom(in, l, out);
        for (size_t c = 0; c < right_data_.columns.size(); ++c) {
          out->columns[left_cols + c].AppendFrom(right_data_.columns[c], r);
        }
      }
      if (!matched && type_ == JoinType::kLeft) {
        AppendRowFrom(in, l, out);
        for (size_t c = 0; c < right_data_.columns.size(); ++c) {
          out->columns[left_cols + c].AppendNull();
        }
      }
    }
    if (out->num_rows() > 0) return true;
  }
}

// --------------------------------------------------------------- HashAgg --

namespace {
struct GroupKey {
  std::vector<Value> vals;
  uint64_t hash = 0;
  bool operator==(const GroupKey& o) const {
    if (vals.size() != o.vals.size()) return false;
    for (size_t i = 0; i < vals.size(); ++i) {
      bool n1 = vals[i].is_null(), n2 = o.vals[i].is_null();
      if (n1 != n2) return false;
      if (!n1 && vals[i].Compare(o.vals[i]) != 0) return false;
    }
    return true;
  }
};
struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const { return k.hash; }
};
}  // namespace

HashAggOp::HashAggOp(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                     std::vector<std::string> group_names,
                     std::vector<AggSpec> aggs,
                     std::vector<std::string> agg_names,
                     const ExecContext* ctx)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      ctx_(ctx) {
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    output_.push_back({group_names[i], group_exprs_[i]->out_type()});
  }
  for (size_t i = 0; i < aggs_.size(); ++i) {
    output_.push_back({agg_names[i], aggs_[i].out_type});
  }
}

Status HashAggOp::OpenImpl() {
  done_ = false;
  materialized_ = false;
  return child_->Open();
}

std::string HashAggOp::label() const {
  std::string s = "HashAggregate(groups=" + std::to_string(group_exprs_.size()) +
                  ", aggs=" + std::to_string(aggs_.size());
  if (ParallelEligible()) s += ", dop=" + std::to_string(ctx_->dop);
  s += ")";
  return s;
}

bool HashAggOp::ParallelEligible() const {
  if (!ctx_->parallel()) return false;
  for (const auto& a : aggs_) {
    if (!AggState::CanMergeParallel(a)) return false;
  }
  return true;
}

Status HashAggOp::Materialize() {
  using GroupMap =
      std::unordered_map<GroupKey, std::vector<AggState>, GroupKeyHash>;
  // Fast path: when every group key and aggregate argument is a plain
  // column reference, rows are consumed straight from the typed column
  // vectors — no per-row expression evaluation, no per-row Value vectors.
  // With a single integer-backed group column the hash table keys directly
  // on the int64 value.
  bool fast = true;
  std::vector<int> group_cols, arg_cols, arg2_cols;
  for (const auto& g : group_exprs_) {
    auto* ref = dynamic_cast<ColumnRefExpr*>(g.get());
    if (!ref) {
      fast = false;
      break;
    }
    group_cols.push_back(ref->index());
  }
  for (const auto& a : aggs_) {
    auto get_col = [&](const ExprPtr& e, std::vector<int>* out) {
      if (!e) {
        out->push_back(-1);
        return true;
      }
      auto* ref = dynamic_cast<ColumnRefExpr*>(e.get());
      if (!ref) return false;
      out->push_back(ref->index());
      return true;
    };
    if (!get_col(a.arg, &arg_cols) || !get_col(a.arg2, &arg2_cols)) {
      fast = false;
      break;
    }
  }
  bool single_int_key =
      fast && group_exprs_.size() == 1 &&
      group_exprs_[0]->out_type() != TypeId::kVarchar &&
      group_exprs_[0]->out_type() != TypeId::kDouble;
  // A partial aggregation table. The serial path uses one; the parallel
  // path gives each pool worker its own and merges them afterwards.
  struct AggPartial {
    GroupMap groups;
    std::unordered_map<int64_t, std::vector<AggState>> int_groups;
    std::unordered_map<int64_t, bool> int_group_null;  // NULL key sentinel
  };
  AggPartial root;

  auto new_states = [&]() {
    std::vector<AggState> states;
    states.reserve(aggs_.size());
    for (const auto& a : aggs_) states.emplace_back(&a);
    return states;
  };

  // Consumes one batch into `P` on the column-ref fast path. No expression
  // evaluation and no failure modes, so it is safe to run on pool workers
  // against thread-local partials.
  auto consume_fast = [&](const RowBatch& in, AggPartial& P) {
    const size_t n = in.num_rows();
    auto feed = [&](std::vector<AggState>& states, size_t r) {
      for (size_t a = 0; a < aggs_.size(); ++a) {
        const AggSpec& spec = aggs_[a];
        int c1 = arg_cols[a], c2 = arg2_cols[a];
        // Typed hot path: single-arg non-DISTINCT numeric aggregates
        // consume raw column payloads without boxing.
        if (spec.kind == AggKind::kCountStar) {
          states[a].AddCountStarFast();
          continue;
        }
        if (!spec.distinct && c2 < 0 && c1 >= 0 &&
            spec.kind != AggKind::kCovarPop &&
            spec.kind != AggKind::kCovarSamp) {
          const ColumnVector& cv = in.columns[c1];
          if (cv.IsNull(r)) continue;
          if (cv.type() == TypeId::kDouble) {
            double x = cv.GetDouble(r);
            states[a].AddNumericFast(x, static_cast<int64_t>(x), false);
            continue;
          }
          if (cv.type() != TypeId::kVarchar) {
            int64_t x = cv.GetInt(r);
            states[a].AddNumericFast(static_cast<double>(x), x, true);
            continue;
          }
        }
        Value v1 = c1 < 0 ? Value::Null(TypeId::kInt64)
                          : in.columns[c1].GetValue(r);
        Value v2 = c2 < 0 ? Value::Null(TypeId::kInt64)
                          : in.columns[c2].GetValue(r);
        states[a].Add(v1, v2);
      }
    };
    if (single_int_key) {
      const ColumnVector& kc = in.columns[group_cols[0]];
      for (size_t r = 0; r < n; ++r) {
        // NULL group keys collapse into one group, keyed by a sentinel
        // tracked separately from the value domain.
        bool is_null = kc.IsNull(r);
        int64_t k = is_null ? INT64_MIN + 1 : kc.GetInt(r);
        auto it = P.int_groups.find(k);
        if (it == P.int_groups.end()) {
          it = P.int_groups.emplace(k, new_states()).first;
          P.int_group_null[k] = is_null;
        }
        feed(it->second, r);
      }
    } else {
      for (size_t r = 0; r < n; ++r) {
        GroupKey key;
        key.vals.reserve(group_cols.size());
        for (int c : group_cols) {
          Value v = in.columns[c].GetValue(r);
          key.hash = HashCombine(key.hash, HashValue(v));
          key.vals.push_back(std::move(v));
        }
        auto it = P.groups.find(key);
        if (it == P.groups.end()) {
          it = P.groups.emplace(std::move(key), new_states()).first;
        }
        feed(it->second, r);
      }
    }
  };

  // Moves a partial's single-int-key groups into its generic map (the
  // output and merge paths speak GroupKey).
  TypeId key_type =
      group_exprs_.empty() ? TypeId::kInt64 : group_exprs_[0]->out_type();
  auto flatten_int_groups = [&](AggPartial& P) {
    for (auto& [k, states] : P.int_groups) {
      GroupKey key;
      Value v = P.int_group_null[k] ? Value::Null(key_type)
                                    : *Value::Int64(k).CastTo(key_type);
      key.hash = HashCombine(0, HashValue(v));
      key.vals.push_back(std::move(v));
      P.groups.emplace(std::move(key), std::move(states));
    }
    P.int_groups.clear();
    P.int_group_null.clear();
  };

  // The parallel path additionally requires the fast path: slow-path rows
  // go through expression evaluation, which can fail and is not guaranteed
  // re-entrant across workers.
  const bool parallel = fast && ParallelEligible();
  std::vector<GroupMap> out_maps;
  if (!parallel) {
    RowBatch in;
    for (;;) {
      DASHDB_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
      if (!more) break;
      if (fast) {
        consume_fast(in, root);
        continue;
      }
      const size_t n = in.num_rows();
      for (size_t r = 0; r < n; ++r) {
        GroupKey key;
        key.vals.reserve(group_exprs_.size());
        for (const auto& g : group_exprs_) {
          DASHDB_ASSIGN_OR_RETURN(Value v, g->EvaluateRow(in, r, *ctx_));
          key.hash = HashCombine(key.hash, HashValue(v));
          key.vals.push_back(std::move(v));
        }
        auto it = root.groups.find(key);
        if (it == root.groups.end()) {
          it = root.groups.emplace(std::move(key), new_states()).first;
        }
        for (size_t a = 0; a < aggs_.size(); ++a) {
          Value v1 = Value::Null(TypeId::kInt64);
          Value v2 = Value::Null(TypeId::kInt64);
          if (aggs_[a].arg) {
            DASHDB_ASSIGN_OR_RETURN(v1,
                                    aggs_[a].arg->EvaluateRow(in, r, *ctx_));
          }
          if (aggs_[a].arg2) {
            DASHDB_ASSIGN_OR_RETURN(v2,
                                    aggs_[a].arg2->EvaluateRow(in, r, *ctx_));
          }
          it->second[a].Add(v1, v2);
        }
      }
    }
    flatten_int_groups(root);
    out_maps.push_back(std::move(root.groups));
  } else {
    // Morsel-driven parallel aggregation (paper II.B.7): drain the child's
    // batches as morsels, fan them out over the pool building thread-local
    // partials, then merge partials in a hash-partitioned phase.
    std::vector<RowBatch> morsels;
    {
      RowBatch in;
      for (;;) {
        DASHDB_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
        if (!more) break;
        morsels.push_back(std::move(in));
        in = RowBatch();
      }
    }
    std::deque<AggPartial> partials;  // deque: stable element addresses
    std::unordered_map<std::thread::id, AggPartial*> slots;
    std::mutex reg_mu;
    ctx_->pool->ParallelFor(
        morsels.size(),
        [&](size_t i) {
          AggPartial* P;
          {
            std::lock_guard<std::mutex> lk(reg_mu);
            AggPartial*& slot = slots[std::this_thread::get_id()];
            if (!slot) {
              partials.emplace_back();
              slot = &partials.back();
            }
            P = slot;
          }
          consume_fast(morsels[i], *P);
        },
        ctx_->dop);
    for (auto& P : partials) flatten_int_groups(P);
    // Hash-partitioned merge: shard m owns the keys with hash % M == m, so
    // shards build concurrently without locks — each partial-map node is
    // read (and its value moved) by exactly one shard.
    const size_t M = std::max<size_t>(1, static_cast<size_t>(ctx_->dop));
    std::vector<GroupMap> shards(M);
    ctx_->pool->ParallelFor(
        M,
        [&](size_t m) {
          GroupMap& shard = shards[m];
          for (auto& P : partials) {
            for (auto& kv : P.groups) {
              if (kv.first.hash % M != m) continue;
              auto it = shard.find(kv.first);
              if (it == shard.end()) {
                shard.emplace(kv.first, std::move(kv.second));
              } else {
                for (size_t a = 0; a < aggs_.size(); ++a) {
                  it->second[a].Merge(kv.second[a]);
                }
              }
            }
          }
        },
        ctx_->dop);
    out_maps = std::move(shards);
  }

  // Global aggregation with no groups must yield one row even on empty input.
  InitBatchFor(output_, &result_);
  size_t total_groups = 0;
  for (const auto& m : out_maps) total_groups += m.size();
  if (total_groups == 0 && group_exprs_.empty()) {
    std::vector<AggState> states = new_states();
    for (size_t a = 0; a < aggs_.size(); ++a) {
      result_.columns[a].AppendValue(states[a].Finish());
    }
  } else {
    for (const auto& m : out_maps) {
      for (const auto& [key, states] : m) {
        for (size_t g = 0; g < key.vals.size(); ++g) {
          result_.columns[g].AppendValue(key.vals[g]);
        }
        for (size_t a = 0; a < states.size(); ++a) {
          result_.columns[key.vals.size() + a].AppendValue(states[a].Finish());
        }
      }
    }
  }
  materialized_ = true;
  return Status::OK();
}

Result<bool> HashAggOp::NextImpl(RowBatch* out) {
  if (!materialized_) DASHDB_RETURN_IF_ERROR(Materialize());
  if (done_) return false;
  *out = std::move(result_);
  done_ = true;
  return out->num_rows() > 0 || !out->columns.empty();
}

// ------------------------------------------------------------------ Sort --

SortOp::SortOp(OperatorPtr child, std::vector<SortKey> keys,
               const ExecContext* ctx)
    : child_(std::move(child)), keys_(std::move(keys)), ctx_(ctx) {
  output_ = child_->output();
}

Status SortOp::OpenImpl() {
  done_ = false;
  materialized_ = false;
  return child_->Open();
}

Result<bool> SortOp::NextImpl(RowBatch* out) {
  if (!materialized_) {
    DASHDB_ASSIGN_OR_RETURN(RowBatch all, DrainOperator(child_.get()));
    const size_t n = all.num_rows();
    // Evaluate sort keys once.
    std::vector<ColumnVector> key_cols;
    for (const auto& k : keys_) {
      DASHDB_ASSIGN_OR_RETURN(ColumnVector cv, k.expr->Evaluate(all, *ctx_));
      key_cols.push_back(std::move(cv));
    }
    std::vector<uint32_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                       for (size_t k = 0; k < keys_.size(); ++k) {
                         Value va = key_cols[k].GetValue(a);
                         Value vb = key_cols[k].GetValue(b);
                         int c = va.Compare(vb);
                         if (c != 0) return keys_[k].desc ? c > 0 : c < 0;
                       }
                       return false;
                     });
    InitBatchFor(output_, &result_);
    for (uint32_t r : order) AppendRowFrom(all, r, &result_);
    materialized_ = true;
  }
  if (done_) return false;
  *out = std::move(result_);
  done_ = true;
  return out->num_rows() > 0;
}

// ----------------------------------------------------------------- Limit --

LimitOp::LimitOp(OperatorPtr child, int64_t limit, int64_t offset)
    : child_(std::move(child)), limit_(limit), offset_(offset) {
  output_ = child_->output();
}

Status LimitOp::OpenImpl() {
  skipped_ = 0;
  emitted_ = 0;
  return child_->Open();
}

Result<bool> LimitOp::NextImpl(RowBatch* out) {
  if (limit_ >= 0 && emitted_ >= limit_) return false;
  RowBatch in;
  for (;;) {
    DASHDB_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) return false;
    InitBatchFor(output_, out);
    for (size_t r = 0; r < in.num_rows(); ++r) {
      if (skipped_ < offset_) {
        ++skipped_;
        continue;
      }
      if (limit_ >= 0 && emitted_ >= limit_) break;
      AppendRowFrom(in, r, out);
      ++emitted_;
    }
    if (out->num_rows() > 0) return true;
    if (limit_ >= 0 && emitted_ >= limit_) return false;
  }
}

// ---------------------------------------------------------------- Values --

ValuesOp::ValuesOp(RowBatch batch, std::vector<OutputCol> cols)
    : batch_(std::move(batch)) {
  output_ = std::move(cols);
}

Status ValuesOp::OpenImpl() {
  done_ = false;
  return Status::OK();
}

Result<bool> ValuesOp::NextImpl(RowBatch* out) {
  if (done_) return false;
  *out = batch_;
  done_ = true;
  return true;
}

// -------------------------------------------------------------- UnionAll --

UnionAllOp::UnionAllOp(std::vector<OperatorPtr> children)
    : children_(std::move(children)) {
  output_ = children_.front()->output();
}

Status UnionAllOp::OpenImpl() {
  current_ = 0;
  for (auto& c : children_) DASHDB_RETURN_IF_ERROR(c->Open());
  return Status::OK();
}

Result<bool> UnionAllOp::NextImpl(RowBatch* out) {
  while (current_ < children_.size()) {
    DASHDB_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(out));
    if (more) return true;
    ++current_;
  }
  return false;
}

}  // namespace dashdb
