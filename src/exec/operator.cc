#include "exec/operator.h"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <limits>
#include <mutex>
#include <thread>

#include <cmath>

#include "common/hash.h"
#include "common/metrics.h"
#include "common/threadpool.h"
#include "exec/join_order.h"
#include "exec/shared_scan.h"

namespace dashdb {

uint64_t HashValue(const Value& v) {
  if (v.is_null()) return 0x9E3779B97F4A7C15ull;
  switch (v.type()) {
    case TypeId::kVarchar:
      return HashString(v.AsString());
    case TypeId::kDouble: {
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      return HashInt64(bits);
    }
    default:
      return HashInt64(static_cast<uint64_t>(v.AsInt()));
  }
}

namespace {

void InitBatchFor(const std::vector<OutputCol>& cols, RowBatch* out) {
  out->columns.clear();
  out->columns.reserve(cols.size());
  for (const auto& c : cols) out->columns.emplace_back(c.type);
}

void AppendRowFrom(const RowBatch& src, size_t row, RowBatch* dst,
                   size_t dst_col_offset = 0) {
  for (size_t c = 0; c < src.columns.size(); ++c) {
    dst->columns[dst_col_offset + c].AppendFrom(src.columns[c], row);
  }
}

/// HashValue without the Value boxing: hashes cell r of a typed column
/// vector, producing the same hash HashValue(cv.GetValue(r)) would.
uint64_t HashCell(const ColumnVector& cv, size_t r) {
  if (cv.IsNull(r)) return 0x9E3779B97F4A7C15ull;
  switch (cv.type()) {
    case TypeId::kVarchar:
      return HashString(cv.GetString(r));
    case TypeId::kDouble: {
      double d = cv.GetDouble(r);
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      return HashInt64(bits);
    }
    default:
      return HashInt64(static_cast<uint64_t>(cv.GetInt(r)));
  }
}

/// Typed non-null cell equality mirroring Value::Compare(..) == 0 without
/// materializing Values. Mixed varchar/non-varchar cells (not producible
/// by the binder's equi-join typing, but legal for Value) fall back to the
/// boxed comparison.
bool CellsEqual(const ColumnVector& a, size_t i, const ColumnVector& b,
                size_t j) {
  const bool av = a.type() == TypeId::kVarchar;
  const bool bv = b.type() == TypeId::kVarchar;
  if (av && bv) return a.GetString(i) == b.GetString(j);
  if (av != bv) return a.GetValue(i).Compare(b.GetValue(j)) == 0;
  if (a.type() == TypeId::kDouble || b.type() == TypeId::kDouble) {
    return a.GetDouble(i) == b.GetDouble(j);
  }
  return a.GetInt(i) == b.GetInt(j);
}

/// Applies pushed-down Bloom filters to a freshly scanned (dense) batch,
/// compacting away rows whose key hash misses any filter. Returns the
/// number of rows dropped. NULL keys hash to the null sentinel, which the
/// build side never adds — correct for the INNER joins these filters are
/// installed for.
size_t ApplyScanBlooms(const std::vector<ScanRuntimeFilter>& filters,
                       RowBatch* batch) {
  const size_t n = batch->num_rows();
  if (filters.empty() || n == 0) return 0;
  std::vector<uint32_t> keep;
  keep.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    bool ok = true;
    for (const auto& f : filters) {
      const ColumnVector& cv = batch->columns[f.col];
      if (!f.bloom->MayContain(HashCell(cv, r))) {
        ok = false;
        break;
      }
    }
    if (ok) keep.push_back(static_cast<uint32_t>(r));
  }
  if (keep.size() == n) return 0;
  RowBatch out;
  out.columns.reserve(batch->columns.size());
  for (const auto& c : batch->columns) out.columns.emplace_back(c.type());
  for (uint32_t r : keep) {
    for (size_t c = 0; c < batch->columns.size(); ++c) {
      out.columns[c].AppendFrom(batch->columns[c], r);
    }
  }
  const size_t dropped = n - keep.size();
  *batch = std::move(out);
  return dropped;
}

std::string BloomDroppedExtra(const std::vector<ScanRuntimeFilter>& filters,
                              uint64_t dropped) {
  if (filters.empty()) return std::string();
  char buf[64];
  std::snprintf(buf, sizeof(buf), " blooms=%zu bloom-dropped=%llu",
                filters.size(), static_cast<unsigned long long>(dropped));
  return buf;
}

}  // namespace

std::string Operator::PlanString(int indent) const {
  std::string out(indent * 2, ' ');
  out += label();
  out += "\n";
  for (const Operator* c : children()) out += c->PlanString(indent + 1);
  return out;
}

namespace {

double ThreadCpuSeconds() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) + ts.tv_nsec * 1e-9;
}

/// Registry instruments for the exec layer, resolved once per process;
/// after that every event is one relaxed atomic add.
struct ExecInstruments {
  Counter* rows_out;
  Counter* batches_out;
  Counter* operator_opens;
  Counter* morsels;
  Counter* bloom_pushdowns;      ///< runtime Bloom filters installed on scans
  Counter* bloom_rows_dropped;   ///< scan rows rejected by pushed filters
  Counter* adaptive_replans;     ///< mid-query join re-orderings
  Counter* limit_early_stops;    ///< LimitOp stops with limit satisfied
  Histogram* batch_rows;
  Histogram* filter_selectivity;  ///< percent of examined rows passing
  Histogram* card_est_error;      ///< log2(actual/estimated) per operator
};

ExecInstruments& GlobalExecInstruments() {
  auto& reg = MetricRegistry::Global();
  static ExecInstruments in{
      reg.GetCounter("exec.rows_out"),
      reg.GetCounter("exec.batches_out"),
      reg.GetCounter("exec.operator_opens"),
      reg.GetCounter("exec.morsels"),
      reg.GetCounter("exec.bloom_pushdowns"),
      reg.GetCounter("exec.bloom_rows_dropped"),
      reg.GetCounter("exec.adaptive_replans"),
      reg.GetCounter("exec.limit_early_stops"),
      reg.GetHistogram("exec.batch_rows", {16, 64, 256, 1024, 4096}),
      reg.GetHistogram("exec.filter_selectivity", {1, 5, 10, 25, 50, 75, 90, 100}),
      reg.GetHistogram("exec.card_est_error", {-4, -2, -1, 0, 1, 2, 4}),
  };
  return in;
}

}  // namespace

Operator::~Operator() {
  if (qctx_ != nullptr && mem_reserved_ > 0) qctx_->Release(mem_reserved_);
}

Status Operator::ChargeMemory(int64_t bytes, const char* what) {
  if (bytes <= 0) return Status::OK();
  if (qctx_ != nullptr) DASHDB_RETURN_IF_ERROR(qctx_->Charge(bytes, what));
  mem_reserved_ += bytes;
  mem_peak_bytes_ = std::max(mem_peak_bytes_, mem_reserved_);
  return Status::OK();
}

Status Operator::Open() {
  ++metrics_.open_calls;
  GlobalExecInstruments().operator_opens->Add(1);
  if (qctx_ != nullptr) DASHDB_RETURN_IF_ERROR(qctx_->CheckAlive());
  const auto wall0 = std::chrono::steady_clock::now();
  const double cpu0 = ThreadCpuSeconds();
  Status s = OpenImpl();
  metrics_.cpu_seconds += ThreadCpuSeconds() - cpu0;
  metrics_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  return s;
}

Result<bool> Operator::Next(RowBatch* out) {
  return NextInternal(out, /*allow_selection=*/false);
}

Result<bool> Operator::NextSel(RowBatch* out) {
  return NextInternal(out, /*allow_selection=*/true);
}

Result<bool> Operator::NextInternal(RowBatch* out, bool allow_selection) {
  ++metrics_.next_calls;
  if (qctx_ != nullptr) DASHDB_RETURN_IF_ERROR(qctx_->CheckAlive());
  const auto wall0 = std::chrono::steady_clock::now();
  const double cpu0 = ThreadCpuSeconds();
  Result<bool> r = NextImpl(out);
  // Compaction for selection-unaware callers counts as this operator's
  // work, so it stays inside the timed window.
  if (r.ok() && *r && !allow_selection) out->Compact();
  metrics_.cpu_seconds += ThreadCpuSeconds() - cpu0;
  metrics_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  if (r.ok() && *r) {
    // Logical rows: a batch carrying a selection counts its selected rows,
    // so EXPLAIN ANALYZE cardinalities are invariant to where compaction
    // happens.
    const uint64_t n = out->logical_rows();
    ++metrics_.batches_out;
    metrics_.rows_out += n;
    auto& in = GlobalExecInstruments();
    in.rows_out->Add(n);
    in.batches_out->Add(1);
    in.batch_rows->Observe(static_cast<int64_t>(n));
  }
  return r;
}

std::string Operator::kind() const {
  std::string l = label();
  size_t p = l.find('(');
  return p == std::string::npos ? l : l.substr(0, p);
}

std::string Operator::AnalyzeString(int indent) const {
  double child_wall = 0;
  for (const Operator* c : children()) child_wall += c->metrics().wall_seconds;
  const double self = std::max(0.0, metrics_.wall_seconds - child_wall);
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                " [rows=%llu batches=%llu wall=%.3fms self=%.3fms",
                static_cast<unsigned long long>(metrics_.rows_out),
                static_cast<unsigned long long>(metrics_.batches_out),
                metrics_.wall_seconds * 1e3, self * 1e3);
  std::string out(indent * 2, ' ');
  out += label();
  out += buf;
  if (has_est_) {
    char ebuf[32];
    std::snprintf(ebuf, sizeof(ebuf), " est=%.0f", est_rows_);
    out += ebuf;
  }
  if (mem_peak_bytes_ > 0) {
    char mbuf[32];
    std::snprintf(mbuf, sizeof(mbuf), " mem=%lld",
                  static_cast<long long>(mem_peak_bytes_));
    out += mbuf;
  }
  out += AnalyzeExtra();
  out += "]";
  out += "\n";
  for (const Operator* c : children()) out += c->AnalyzeString(indent + 1);
  return out;
}

void RecordCardinalityFeedback(const Operator* root) {
  if (root == nullptr) return;
  if (root->has_est_rows() && root->metrics().next_calls > 0) {
    const double actual = static_cast<double>(root->metrics().rows_out);
    // +1 on both sides keeps zero-row plans finite; the histogram bucket
    // is the rounded log2 ratio (0 = on the money, ±1 = off by 2x, ...).
    const double ratio = (actual + 1.0) / (root->est_rows() + 1.0);
    GlobalExecInstruments().card_est_error->Observe(
        static_cast<int64_t>(std::llround(std::log2(ratio))));
  }
  for (const Operator* c : root->children()) RecordCardinalityFeedback(c);
}

uint32_t Operator::AddTraceSpans(Trace* trace, uint32_t parent) const {
  const uint32_t id = trace->AddSpan(kind(), parent);
  TraceSpan& s = trace->span(id);
  s.rows = metrics_.rows_out;
  s.wall_seconds = metrics_.wall_seconds;
  s.cpu_seconds = metrics_.cpu_seconds;
  for (const Operator* c : children()) c->AddTraceSpans(trace, id);
  return id;
}

Result<RowBatch> DrainOperator(Operator* op) {
  DASHDB_RETURN_IF_ERROR(op->Open());
  RowBatch all;
  InitBatchFor(op->output(), &all);
  RowBatch batch;
  for (;;) {
    DASHDB_ASSIGN_OR_RETURN(bool more, op->Next(&batch));
    if (!more) break;
    for (size_t i = 0; i < batch.num_rows(); ++i) AppendRowFrom(batch, i, &all);
  }
  return all;
}

void AttachQueryContext(Operator* root, QueryContext* qctx) {
  if (root == nullptr) return;
  root->set_query_ctx(qctx);
  // children() is the EXPLAIN view (const), but attachment happens once on
  // the freshly bound tree the walker's caller owns mutably.
  for (const Operator* c : root->children()) {
    AttachQueryContext(const_cast<Operator*>(c), qctx);
  }
}

int64_t BatchMemoryBytes(const RowBatch& b) {
  int64_t bytes = 0;
  for (const auto& col : b.columns) {
    if (col.type() == TypeId::kVarchar) {
      for (const auto& s : col.strings()) {
        bytes += static_cast<int64_t>(s.size()) + 2;
      }
    } else {
      bytes += static_cast<int64_t>(col.size()) * 8;
    }
  }
  return bytes;
}

// ------------------------------------------------------------ ColumnScan --

ColumnScanOp::ColumnScanOp(std::shared_ptr<const ColumnTable> table,
                           std::vector<ColumnPredicate> preds,
                           std::vector<int> projection, ScanOptions opts)
    : table_(std::move(table)),
      preds_(std::move(preds)),
      projection_(std::move(projection)),
      opts_(opts) {
  for (int c : projection_) {
    output_.push_back(
        {table_->schema().column(c).name, table_->schema().column(c).type});
  }
}

Status ColumnScanOp::OpenImpl() {
  next_page_ = 0;
  stats_ = ScanStats{};
  bloom_dropped_ = 0;
  return Status::OK();
}

bool ColumnScanOp::AcceptRuntimeFilter(
    int col, std::shared_ptr<const BloomPrefilter> bloom) {
  if (col < 0 || col >= static_cast<int>(output_.size()) || !bloom) {
    return false;
  }
  runtime_filters_.push_back({col, std::move(bloom)});
  GlobalExecInstruments().bloom_pushdowns->Add(1);
  return true;
}

std::string ColumnScanOp::AnalyzeExtra() const {
  return BloomDroppedExtra(runtime_filters_, bloom_dropped_);
}

Result<bool> ColumnScanOp::NextImpl(RowBatch* out) {
  while (next_page_ <= table_->num_pages()) {
    InitBatchFor(output_, out);
    DASHDB_RETURN_IF_ERROR(table_->ScanPage(next_page_, preds_, projection_,
                                            opts_, out, nullptr, &stats_));
    ++next_page_;
    if (!runtime_filters_.empty()) {
      const size_t dropped = ApplyScanBlooms(runtime_filters_, out);
      bloom_dropped_ += dropped;
      GlobalExecInstruments().bloom_rows_dropped->Add(dropped);
    }
    if (out->num_rows() > 0) return true;
  }
  return false;
}

// ---------------------------------------------------- ParallelColumnScan --

ParallelColumnScanOp::ParallelColumnScanOp(
    std::shared_ptr<const ColumnTable> table,
    std::vector<ColumnPredicate> preds, std::vector<int> projection,
    ScanOptions opts)
    : table_(std::move(table)),
      preds_(std::move(preds)),
      projection_(std::move(projection)),
      opts_(opts) {
  for (int c : projection_) {
    output_.push_back(
        {table_->schema().column(c).name, table_->schema().column(c).type});
  }
}

Status ParallelColumnScanOp::OpenImpl() {
  ran_ = false;
  next_slot_ = 0;
  results_.clear();
  stats_ = ScanStats{};
  bloom_dropped_ = 0;
  return Status::OK();
}

bool ParallelColumnScanOp::AcceptRuntimeFilter(
    int col, std::shared_ptr<const BloomPrefilter> bloom) {
  // Filters must land before the morsel fan-out snapshots them; a build
  // side always completes before the probe side's first pull, so this
  // holds for every install path.
  if (ran_ || col < 0 || col >= static_cast<int>(output_.size()) || !bloom) {
    return false;
  }
  runtime_filters_.push_back({col, std::move(bloom)});
  GlobalExecInstruments().bloom_pushdowns->Add(1);
  return true;
}

std::string ParallelColumnScanOp::AnalyzeExtra() const {
  return BloomDroppedExtra(runtime_filters_, bloom_dropped_);
}

Status ParallelColumnScanOp::RunMorsels() {
  // One morsel per page plus the uncompressed tail; the pool chunks
  // contiguous page ranges across workers, and per-page result slots keep
  // the emitted batches in exact page order (identical to the serial scan).
  const size_t n_units = table_->num_pages() + 1;
  results_.resize(n_units);
  std::vector<ScanStats> unit_stats(n_units);
  Status first_error;
  std::mutex err_mu;
  std::atomic<uint64_t> dropped_total{0};
  // Cooperative shared scan: attach to the engine's circular page clock
  // for this (table, column-set) and start at its current position. Unit i
  // maps to page (start + i) % n_units, so concurrent scans of the same
  // table cluster on the same (buffer-resident) pages while the per-page
  // result slots keep emission in exact page order regardless.
  SharedScanTicket share_ticket;
  size_t start = 0;
  if (opts_.shared_scan && opts_.share != nullptr) {
    std::vector<int> pred_cols;
    for (const auto& p : preds_) pred_cols.push_back(p.column);
    share_ticket = opts_.share->Attach(
        table_->table_id(), ScanColumnSetSignature(projection_, pred_cols),
        n_units);
    start = share_ticket.start();
  }
  auto scan_unit = [&](size_t unit) {
    const size_t p = (start + unit) % n_units;
    if (share_ticket.valid()) share_ticket.NotePage(p);
    // Governor probe at morsel granularity: a cancel/timeout stops every
    // worker before its next page, and the first failing status surfaces
    // through first_error just like a storage fault.
    Status alive = CheckQueryAlive();
    if (!alive.ok()) {
      std::lock_guard<std::mutex> lk(err_mu);
      if (first_error.ok()) first_error = alive;
      return;
    }
    GlobalExecInstruments().morsels->Add(1);
    RowBatch* out = &results_[p];
    out->columns.clear();
    out->columns.reserve(output_.size());
    for (const auto& c : output_) out->columns.emplace_back(c.type);
    Status s = table_->ScanPage(p, preds_, projection_, opts_, out, nullptr,
                                &unit_stats[p]);
    if (s.ok() && !runtime_filters_.empty()) {
      dropped_total.fetch_add(ApplyScanBlooms(runtime_filters_, out),
                              std::memory_order_relaxed);
    }
    if (!s.ok()) {
      std::lock_guard<std::mutex> lk(err_mu);
      if (first_error.ok()) first_error = s;
    }
  };
  if (opts_.exec_pool != nullptr && opts_.dop > 1) {
    opts_.exec_pool->ParallelFor(n_units, scan_unit, opts_.dop, query_ctx());
  } else {
    for (size_t p = 0; p < n_units; ++p) {
      scan_unit(p);
      if (!first_error.ok()) break;
    }
  }
  DASHDB_RETURN_IF_ERROR(first_error);
  // A governed ParallelFor abandons its tail when a cancel/timeout lands on
  // its own chunk-claim probe — without recording an error. Re-probe before
  // reporting the morsel set complete, or a cancelled scan would surface as
  // a clean (but truncated) end-of-stream.
  DASHDB_RETURN_IF_ERROR(CheckQueryAlive());
  for (const auto& s : unit_stats) {
    stats_.pages_visited += s.pages_visited;
    stats_.pages_skipped += s.pages_skipped;
    stats_.strides_skipped += s.strides_skipped;
    stats_.rows_matched += s.rows_matched;
  }
  bloom_dropped_ += dropped_total.load(std::memory_order_relaxed);
  GlobalExecInstruments().bloom_rows_dropped->Add(
      dropped_total.load(std::memory_order_relaxed));
  ran_ = true;
  return Status::OK();
}

Result<bool> ParallelColumnScanOp::NextImpl(RowBatch* out) {
  if (!ran_) DASHDB_RETURN_IF_ERROR(RunMorsels());
  while (next_slot_ < results_.size()) {
    RowBatch& slot = results_[next_slot_];
    ++next_slot_;
    if (slot.num_rows() > 0) {
      *out = std::move(slot);
      return true;
    }
  }
  return false;
}

// --------------------------------------------------------- CountStarScan --

CountStarScanOp::CountStarScanOp(std::shared_ptr<const ColumnTable> table,
                                 std::vector<ColumnPredicate> preds,
                                 ScanOptions opts, const std::string& out_name)
    : table_(std::move(table)), preds_(std::move(preds)), opts_(opts) {
  output_.push_back({out_name, TypeId::kInt64});
}

Status CountStarScanOp::OpenImpl() {
  done_ = false;
  stats_ = ScanStats{};
  return Status::OK();
}

Result<bool> CountStarScanOp::NextImpl(RowBatch* out) {
  if (done_) return false;
  DASHDB_ASSIGN_OR_RETURN(size_t count,
                          table_->CountRows(preds_, opts_, &stats_));
  InitBatchFor(output_, out);
  out->columns[0].AppendInt(static_cast<int64_t>(count));
  done_ = true;
  return true;
}

// --------------------------------------------------------------- RowScan --

RowScanOp::RowScanOp(std::shared_ptr<const RowTable> table,
                     std::vector<ColumnPredicate> preds,
                     std::vector<int> projection)
    : table_(std::move(table)),
      preds_(std::move(preds)),
      projection_(std::move(projection)) {
  for (int c : projection_) {
    output_.push_back(
        {table_->schema().column(c).name, table_->schema().column(c).type});
  }
}

Status RowScanOp::OpenImpl() {
  next_row_ = 0;
  return Status::OK();
}

Result<bool> RowScanOp::NextImpl(RowBatch* out) {
  while (next_row_ < table_->row_count()) {
    InitBatchFor(output_, out);
    uint64_t end = std::min<uint64_t>(next_row_ + kChunk, table_->row_count());
    DASHDB_RETURN_IF_ERROR(
        table_->ScanRange(next_row_, end, preds_, projection_, out, nullptr));
    next_row_ = end;
    if (out->num_rows() > 0) return true;
  }
  return false;
}

// ---------------------------------------------------------- RowIndexScan --

RowIndexScanOp::RowIndexScanOp(std::shared_ptr<const RowTable> table,
                               int index_col, int64_t lo, int64_t hi,
                               std::vector<ColumnPredicate> residual,
                               std::vector<int> projection)
    : table_(std::move(table)),
      index_col_(index_col),
      lo_(lo),
      hi_(hi),
      residual_(std::move(residual)),
      projection_(std::move(projection)) {
  for (int c : projection_) {
    output_.push_back(
        {table_->schema().column(c).name, table_->schema().column(c).type});
  }
}

Status RowIndexScanOp::OpenImpl() {
  drained_ = false;
  InitBatchFor(output_, &buffer_);
  return table_->IndexScan(
      index_col_, lo_, hi_, residual_, projection_,
      [&](RowBatch& b, const std::vector<uint64_t>&) {
        for (size_t i = 0; i < b.num_rows(); ++i) {
          AppendRowFrom(b, i, &buffer_);
        }
      });
}

Result<bool> RowIndexScanOp::NextImpl(RowBatch* out) {
  if (drained_ || buffer_.num_rows() == 0) return false;
  *out = std::move(buffer_);
  InitBatchFor(output_, &buffer_);
  drained_ = true;
  return true;
}

// ---------------------------------------------------------------- Filter --

FilterOp::FilterOp(OperatorPtr child, ExprPtr pred, const ExecContext* ctx)
    : child_(std::move(child)), pred_(std::move(pred)), ctx_(ctx) {
  output_ = child_->output();
}

Status FilterOp::OpenImpl() {
  rows_in_ = 0;
  rows_passed_ = 0;
  sel_batches_ = 0;
  return child_->Open();
}

Result<bool> FilterOp::NextImpl(RowBatch* out) {
  RowBatch in;
  for (;;) {
    DASHDB_ASSIGN_OR_RETURN(bool more, child_->NextSel(&in));
    if (!more) return false;
    const size_t examined = in.logical_rows();
    DASHDB_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                            EvalFilter(*pred_, in, *ctx_));
    rows_in_ += examined;
    rows_passed_ += sel.size();
    if (examined > 0) {
      GlobalExecInstruments().filter_selectivity->Observe(
          static_cast<int64_t>(100 * sel.size() / examined));
    }
    if (sel.empty()) continue;
    // No row movement: the child's columns pass through untouched and the
    // qualifying rows ride along as a selection vector. Compaction happens
    // at the first selection-unaware consumer (Operator::Next) or blow-up
    // point, not here.
    ++sel_batches_;
    *out = std::move(in);
    out->selection =
        std::make_shared<const std::vector<uint32_t>>(std::move(sel));
    return true;
  }
}

std::string FilterOp::AnalyzeExtra() const {
  if (rows_in_ == 0) return std::string();
  char buf[64];
  std::snprintf(buf, sizeof(buf), " sel=%.1f%% sel-batches=%llu",
                100.0 * static_cast<double>(rows_passed_) /
                    static_cast<double>(rows_in_),
                static_cast<unsigned long long>(sel_batches_));
  return buf;
}

// --------------------------------------------------------------- Project --

ProjectOp::ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
                     std::vector<std::string> names, const ExecContext* ctx)
    : child_(std::move(child)), exprs_(std::move(exprs)), ctx_(ctx) {
  for (size_t i = 0; i < exprs_.size(); ++i) {
    output_.push_back({names[i], exprs_[i]->out_type()});
  }
}

Status ProjectOp::OpenImpl() { return child_->Open(); }

Result<bool> ProjectOp::NextImpl(RowBatch* out) {
  // Selection-aware: Evaluate() produces dense output over the selected
  // rows, so projection doubles as the compaction point — selected rows
  // are gathered exactly once, into the projected columns.
  RowBatch in;
  DASHDB_ASSIGN_OR_RETURN(bool more, child_->NextSel(&in));
  if (!more) return false;
  out->columns.clear();
  out->columns.reserve(exprs_.size());
  for (const auto& e : exprs_) {
    DASHDB_ASSIGN_OR_RETURN(ColumnVector cv, e->Evaluate(in, *ctx_));
    out->columns.push_back(std::move(cv));
  }
  return true;
}

// -------------------------------------------------------------- HashJoin --

HashJoinOp::HashJoinOp(OperatorPtr probe, OperatorPtr build,
                       std::vector<ExprPtr> probe_keys,
                       std::vector<ExprPtr> build_keys, JoinType type,
                       const ExecContext* ctx, bool partitioned)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      probe_keys_(std::move(probe_keys)),
      build_keys_(std::move(build_keys)),
      type_(type),
      ctx_(ctx),
      partitioned_(partitioned) {
  output_ = probe_->output();
  for (const auto& c : build_->output()) output_.push_back(c);
}

Status HashJoinOp::OpenImpl() {
  built_ = false;
  build_data_.columns.clear();
  build_key_cols_.clear();
  partitions_.clear();
  fast_int_ = false;
  filter_installed_ = false;
  DASHDB_RETURN_IF_ERROR(probe_->Open());
  return build_->Open();
}

std::string HashJoinOp::label() const {
  std::string s = type_ == JoinType::kLeft ? "HashLeftJoin" : "HashJoin";
  s += "(keys=" + std::to_string(probe_keys_.size());
  if (partitioned_) s += ", cache-partitioned";
  if (ctx_->parallel() && partitioned_) {
    s += ", build-dop=" + std::to_string(ctx_->dop);
  }
  s += ")";
  return s;
}

std::string HashJoinOp::AnalyzeExtra() const {
  if (!filter_installed_) return std::string();
  return " bloom-pushdown=yes";
}

bool HashJoinOp::ParallelBuildEligible(size_t build_rows) const {
  return ctx_->parallel() && partitioned_ &&
         build_rows >= kParallelBuildMinRows;
}

Status HashJoinOp::BuildSide() {
  InitBatchFor(build_->output(), &build_data_);
  const int nparts = partitioned_ ? (1 << kPartitionBits) : 1;
  partitions_.resize(nparts);
  // Fast path detection: one integer-backed column-ref key on both sides.
  if (probe_keys_.size() == 1) {
    auto* pk = dynamic_cast<ColumnRefExpr*>(probe_keys_[0].get());
    auto* bk = dynamic_cast<ColumnRefExpr*>(build_keys_[0].get());
    if (pk && bk && IsIntegerBacked(pk->out_type()) &&
        IsIntegerBacked(bk->out_type())) {
      fast_int_ = true;
      probe_key_col_ = pk->index();
      build_key_col_ = bk->index();
    }
  }
  // Drain the build side first: cardinality is then known before any hash
  // table is sized, and the appended build_data_ batch becomes the single
  // input the (possibly parallel) partitioning phases read from.
  {
    RowBatch in;
    for (;;) {
      DASHDB_ASSIGN_OR_RETURN(bool more, build_->Next(&in));
      if (!more) break;
      for (size_t r = 0; r < in.num_rows(); ++r) {
        AppendRowFrom(in, r, &build_data_);
      }
    }
  }
  const size_t n = build_data_.num_rows();
  built_ = true;
  if (n == 0) return Status::OK();

  // Budget the materialized build side: the drained batch plus the flat
  // table slots and Bloom bits about to be built over it (~20 bytes/row).
  DASHDB_RETURN_IF_ERROR(ChargeMemory(
      BatchMemoryBytes(build_data_) + static_cast<int64_t>(n) * 20,
      "hash join build"));

  // Generic path: evaluate every build key column once over the drained
  // batch. The per-row std::vector<Value> materialization the old table
  // layout needed is gone — equality checks read the columns directly.
  if (!fast_int_) {
    build_key_cols_.reserve(build_keys_.size());
    for (const auto& k : build_keys_) {
      DASHDB_ASSIGN_OR_RETURN(ColumnVector cv,
                              k->Evaluate(build_data_, *ctx_));
      build_key_cols_.push_back(std::move(cv));
    }
  }

  const bool parallel = ParallelBuildEligible(n);
  auto run = [&](size_t count, const std::function<void(size_t)>& f) {
    if (parallel) {
      ctx_->pool->ParallelFor(count, f, ctx_->dop, query_ctx());
    } else {
      for (size_t i = 0; i < count; ++i) f(i);
    }
  };

  // Phase 1 — per-row partition assignment (rows are independent): hashing
  // and the radix digit. -1 marks NULL keys, which never join and stay out
  // of the tables. Hashes are kept for the flat tables and Bloom filters.
  std::vector<int32_t> part_of(n);
  std::vector<uint64_t> hash_of(n);
  const ColumnVector* key_col =
      fast_int_ ? &build_data_.columns[build_key_col_] : nullptr;
  if (fast_int_) {
    run(n, [&](size_t r) {
      if (key_col->IsNull(r)) {
        part_of[r] = -1;
        return;
      }
      uint64_t h = HashInt64(static_cast<uint64_t>(key_col->GetInt(r)));
      hash_of[r] = h;
      part_of[r] =
          partitioned_ ? static_cast<int32_t>((h >> 32) & (nparts - 1)) : 0;
    });
  } else {
    run(n, [&](size_t r) {
      uint64_t h = 0;
      bool has_null = false;
      for (const auto& kc : build_key_cols_) {
        has_null |= kc.IsNull(r);
        h = HashCombine(h, HashCell(kc, r));
      }
      hash_of[r] = h;
      part_of[r] =
          has_null
              ? -1
              : (partitioned_ ? static_cast<int32_t>((h >> 32) & (nparts - 1))
                              : 0);
    });
  }

  // A governed ParallelFor abandons its tail on cancel/timeout, so phase 1
  // may have left rows unassigned — re-probe before trusting its output.
  DASHDB_RETURN_IF_ERROR(CheckQueryAlive());

  // Phase 2 — counting sort of row ids by partition (serial, O(n)).
  std::vector<uint32_t> offsets(nparts + 1, 0);
  for (size_t r = 0; r < n; ++r) {
    if (part_of[r] >= 0) ++offsets[part_of[r] + 1];
  }
  for (int p = 0; p < nparts; ++p) offsets[p + 1] += offsets[p];
  std::vector<uint32_t> rows(offsets[nparts]);
  {
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (size_t r = 0; r < n; ++r) {
      if (part_of[r] >= 0) rows[cursor[part_of[r]]++] = static_cast<uint32_t>(r);
    }
  }

  // Phase 3 — per-partition table construction: the radix partitions are
  // independent, so they fan out across the pool. Rows insert in ascending
  // row order within each partition — the same sequence the serial build
  // used — so duplicate chains (and join output order) are unchanged.
  run(static_cast<size_t>(nparts), [&](size_t p) {
    Partition& part = partitions_[p];
    const size_t rows_in_p = offsets[p + 1] - offsets[p];
    part.table.Reserve(rows_in_p);
    part.bloom.Init(rows_in_p);
    for (uint32_t idx = offsets[p]; idx < offsets[p + 1]; ++idx) {
      uint32_t r = rows[idx];
      uint64_t key = fast_int_
                         ? static_cast<uint64_t>(key_col->GetInt(r))
                         : hash_of[r];
      part.table.Insert(key, hash_of[r], r);
      part.bloom.Add(hash_of[r]);
    }
  });
  DASHDB_RETURN_IF_ERROR(CheckQueryAlive());

  // Scan-side semi-join pushdown: the build is complete and the probe side
  // has not been pulled yet, so a Bloom filter over the (single) build key
  // column can still land on the probe-side scan before it runs. The
  // filter hashes raw key cells (HashValue semantics), independent of the
  // multi-key HashCombine chain the join tables use.
  if (filter_target_ != nullptr && type_ == JoinType::kInner &&
      build_keys_.size() == 1) {
    const ColumnVector& bc = fast_int_ ? build_data_.columns[build_key_col_]
                                       : build_key_cols_[0];
    auto bloom = std::make_shared<BloomPrefilter>();
    bloom->Init(n);
    for (size_t r = 0; r < n; ++r) {
      if (bc.IsNull(r)) continue;
      bloom->Add(HashCell(bc, r));
    }
    filter_installed_ =
        filter_target_->AcceptRuntimeFilter(filter_target_col_,
                                            std::move(bloom));
  }
  return Status::OK();
}

bool HashJoinOp::KeysEqual(const std::vector<ColumnVector>& probe_key_cols,
                           size_t probe_row, uint32_t build_row) const {
  for (size_t i = 0; i < build_key_cols_.size(); ++i) {
    const ColumnVector& pc = probe_key_cols[i];
    const ColumnVector& bc = build_key_cols_[i];
    if (pc.IsNull(probe_row) || bc.IsNull(build_row)) return false;
    if (!CellsEqual(pc, probe_row, bc, build_row)) return false;
  }
  return true;
}

Result<bool> HashJoinOp::NextImpl(RowBatch* out) {
  if (!built_) DASHDB_RETURN_IF_ERROR(BuildSide());
  const int nparts = partitioned_ ? (1 << kPartitionBits) : 1;
  RowBatch in;
  std::vector<ColumnVector> probe_key_cols;
  std::vector<uint64_t> probe_hash;
  std::vector<uint8_t> probe_null;
  for (;;) {
    DASHDB_ASSIGN_OR_RETURN(bool more, probe_->NextSel(&in));
    if (!more) return false;
    InitBatchFor(output_, out);
    const size_t probe_cols = in.columns.size();
    // Selection-aware: `i` walks the batch's logical (selected) rows and
    // in.row_at(i) maps to the dense row for direct column access. Key
    // expressions evaluate through Evaluate(), which honors the selection
    // and produces logical-dense vectors indexed by `i`. The join output
    // is a blow-up point, so qualifying probe rows gather here exactly
    // once — never compacted upstream.
    const size_t nrows = in.logical_rows();

    // Vectorized probe prologue: evaluate the key expressions once per
    // batch and hash every key column in one column-major pass, instead of
    // boxing a std::vector<Value> per probe row.
    probe_hash.assign(nrows, 0);
    probe_null.assign(nrows, 0);
    if (fast_int_) {
      const ColumnVector& kc = in.columns[probe_key_col_];
      for (size_t i = 0; i < nrows; ++i) {
        const size_t r = in.row_at(i);
        if (kc.IsNull(r)) {
          probe_null[i] = 1;
        } else {
          probe_hash[i] = HashInt64(static_cast<uint64_t>(kc.GetInt(r)));
        }
      }
    } else {
      probe_key_cols.clear();
      probe_key_cols.reserve(probe_keys_.size());
      for (const auto& k : probe_keys_) {
        DASHDB_ASSIGN_OR_RETURN(ColumnVector cv, k->Evaluate(in, *ctx_));
        probe_key_cols.push_back(std::move(cv));
      }
      for (const auto& kc : probe_key_cols) {
        for (size_t i = 0; i < nrows; ++i) {
          probe_null[i] |= kc.IsNull(i) ? 1 : 0;
          probe_hash[i] = HashCombine(probe_hash[i], HashCell(kc, i));
        }
      }
    }

    const ColumnVector* fast_kc =
        fast_int_ ? &in.columns[probe_key_col_] : nullptr;
    constexpr size_t kPrefetchDist = 8;
    for (size_t i = 0; i < nrows; ++i) {
      // Overlap the next rows' filter-word and slot misses with this
      // row's work; all addresses derive from the already-batched hashes.
      if (i + kPrefetchDist < nrows && !probe_null[i + kPrefetchDist]) {
        const uint64_t ph = probe_hash[i + kPrefetchDist];
        const Partition& pp =
            partitions_[partitioned_ ? (ph >> 32) & (nparts - 1) : 0];
        pp.bloom.Prefetch(ph);
        pp.table.Prefetch(ph);
      }
      const size_t r = in.row_at(i);
      bool matched = false;
      if (!probe_null[i]) {
        const uint64_t h = probe_hash[i];
        const Partition& part =
            partitions_[partitioned_ ? (h >> 32) & (nparts - 1) : 0];
        // Bloom prefilter: most probe misses reject on one or two cache
        // lines of filter words without ever touching the table.
        if (part.bloom.MayContain(h)) {
          const uint64_t key =
              fast_int_ ? static_cast<uint64_t>(fast_kc->GetInt(r)) : h;
          for (int32_t cur = part.table.Find(key, h);
               cur != FlatJoinIndex::kNone; cur = part.table.Next(cur)) {
            const uint32_t brow = part.table.Row(cur);
            if (!fast_int_ && !KeysEqual(probe_key_cols, i, brow)) continue;
            matched = true;
            AppendRowFrom(in, r, out);
            for (size_t c = 0; c < build_data_.columns.size(); ++c) {
              out->columns[probe_cols + c].AppendFrom(build_data_.columns[c],
                                                      brow);
            }
          }
        }
      }
      if (!matched && type_ == JoinType::kLeft) {
        AppendRowFrom(in, r, out);
        for (size_t c = 0; c < build_data_.columns.size(); ++c) {
          out->columns[probe_cols + c].AppendNull();
        }
      }
    }
    if (out->num_rows() > 0) return true;
  }
}

// -------------------------------------------------------- NestedLoopJoin --

NestedLoopJoinOp::NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                                   ExprPtr condition, JoinType type,
                                   const ExecContext* ctx)
    : left_(std::move(left)),
      right_(std::move(right)),
      condition_(std::move(condition)),
      type_(type),
      ctx_(ctx) {
  output_ = left_->output();
  for (const auto& c : right_->output()) output_.push_back(c);
}

Status NestedLoopJoinOp::OpenImpl() {
  built_ = false;
  DASHDB_RETURN_IF_ERROR(left_->Open());
  return right_->Open();
}

Result<bool> NestedLoopJoinOp::NextImpl(RowBatch* out) {
  if (!built_) {
    DASHDB_ASSIGN_OR_RETURN(right_data_, DrainOperator(right_.get()));
    DASHDB_RETURN_IF_ERROR(
        ChargeMemory(BatchMemoryBytes(right_data_), "nested-loop inner"));
    built_ = true;
  }
  RowBatch in;
  const size_t left_cols = left_->output().size();
  for (;;) {
    DASHDB_ASSIGN_OR_RETURN(bool more, left_->Next(&in));
    if (!more) return false;
    InitBatchFor(output_, out);
    for (size_t l = 0; l < in.num_rows(); ++l) {
      bool matched = false;
      for (size_t r = 0; r < right_data_.num_rows(); ++r) {
        bool ok = true;
        if (condition_) {
          // Evaluate condition on the (l, r) pair via a tiny assembled batch.
          RowBatch one;
          InitBatchFor(output_, &one);
          AppendRowFrom(in, l, &one);
          for (size_t c = 0; c < right_data_.columns.size(); ++c) {
            one.columns[left_cols + c].AppendFrom(right_data_.columns[c], r);
          }
          DASHDB_ASSIGN_OR_RETURN(Value v,
                                  condition_->EvaluateRow(one, 0, *ctx_));
          ok = !v.is_null() && v.AsBool();
        }
        if (!ok) continue;
        matched = true;
        AppendRowFrom(in, l, out);
        for (size_t c = 0; c < right_data_.columns.size(); ++c) {
          out->columns[left_cols + c].AppendFrom(right_data_.columns[c], r);
        }
      }
      if (!matched && type_ == JoinType::kLeft) {
        AppendRowFrom(in, l, out);
        for (size_t c = 0; c < right_data_.columns.size(); ++c) {
          out->columns[left_cols + c].AppendNull();
        }
      }
    }
    if (out->num_rows() > 0) return true;
  }
}

// --------------------------------------------------------------- HashAgg --

namespace {
// Group keys are serialized to a canonical byte string and interned in a
// FlatKeyIndex (arena-backed), replacing the per-group std::vector<Value>
// boxing. The encoding is one tagged cell per group column:
//   0x00                  NULL (no payload)
//   0x01 + 8B int64       integer-backed types (BOOL/INT/DATE/TS/DECIMAL)
//   0x02 + 8B double      DOUBLE (-0.0 and NaN canonicalized so equal keys
//                         serialize identically)
//   0x03 + u32 len + data VARCHAR
// Cells serialize from the expression's output type, so the column fast
// path and the row-at-a-time slow path produce identical bytes.
constexpr uint8_t kKeyTagNull = 0x00;
constexpr uint8_t kKeyTagInt = 0x01;
constexpr uint8_t kKeyTagDouble = 0x02;
constexpr uint8_t kKeyTagString = 0x03;

void SerializeCell(const ColumnVector& cv, size_t r, std::string* out) {
  if (cv.IsNull(r)) {
    out->push_back(static_cast<char>(kKeyTagNull));
    return;
  }
  char buf[8];
  switch (cv.type()) {
    case TypeId::kVarchar: {
      const std::string& s = cv.GetString(r);
      out->push_back(static_cast<char>(kKeyTagString));
      uint32_t len = static_cast<uint32_t>(s.size());
      std::memcpy(buf, &len, 4);
      out->append(buf, 4);
      out->append(s);
      return;
    }
    case TypeId::kDouble: {
      double d = cv.GetDouble(r);
      if (d == 0.0) d = 0.0;                                  // -0.0 -> +0.0
      if (d != d) d = std::numeric_limits<double>::quiet_NaN();  // one NaN
      out->push_back(static_cast<char>(kKeyTagDouble));
      std::memcpy(buf, &d, 8);
      out->append(buf, 8);
      return;
    }
    default: {
      int64_t v = cv.GetInt(r);
      out->push_back(static_cast<char>(kKeyTagInt));
      std::memcpy(buf, &v, 8);
      out->append(buf, 8);
      return;
    }
  }
}

/// Decodes a serialized group key back into the first `ncols` columns of
/// `out` (which are typed by the grouping expressions' output types).
void AppendSerializedKey(const uint8_t* p, size_t len, size_t ncols,
                         RowBatch* out) {
  const uint8_t* end = p + len;
  for (size_t c = 0; c < ncols && p < end; ++c) {
    ColumnVector& cv = out->columns[c];
    uint8_t tag = *p++;
    switch (tag) {
      case kKeyTagNull:
        cv.AppendNull();
        break;
      case kKeyTagInt: {
        int64_t v;
        std::memcpy(&v, p, 8);
        p += 8;
        cv.AppendInt(v);
        break;
      }
      case kKeyTagDouble: {
        double d;
        std::memcpy(&d, p, 8);
        p += 8;
        cv.AppendDouble(d);
        break;
      }
      default: {  // kKeyTagString
        uint32_t slen;
        std::memcpy(&slen, p, 4);
        p += 4;
        cv.AppendString(std::string(reinterpret_cast<const char*>(p), slen));
        p += slen;
        break;
      }
    }
  }
}
}  // namespace

HashAggOp::HashAggOp(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                     std::vector<std::string> group_names,
                     std::vector<AggSpec> aggs,
                     std::vector<std::string> agg_names,
                     const ExecContext* ctx)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      ctx_(ctx) {
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    output_.push_back({group_names[i], group_exprs_[i]->out_type()});
  }
  for (size_t i = 0; i < aggs_.size(); ++i) {
    output_.push_back({agg_names[i], aggs_[i].out_type});
  }
}

Status HashAggOp::OpenImpl() {
  done_ = false;
  materialized_ = false;
  return child_->Open();
}

std::string HashAggOp::label() const {
  std::string s = "HashAggregate(groups=" + std::to_string(group_exprs_.size()) +
                  ", aggs=" + std::to_string(aggs_.size());
  if (ParallelEligible()) s += ", dop=" + std::to_string(ctx_->dop);
  s += ")";
  return s;
}

bool HashAggOp::ParallelEligible() const {
  if (!ctx_->parallel()) return false;
  for (const auto& a : aggs_) {
    if (!AggState::CanMergeParallel(a)) return false;
  }
  return true;
}

Status HashAggOp::Materialize() {
  // Fast path: when every group key and aggregate argument is a plain
  // column reference, rows are consumed straight from the typed column
  // vectors — no per-row expression evaluation, no per-row Value vectors.
  // With a single integer-backed group column the hash table keys directly
  // on the int64 value.
  bool fast = true;
  std::vector<int> group_cols, arg_cols, arg2_cols;
  for (const auto& g : group_exprs_) {
    auto* ref = dynamic_cast<ColumnRefExpr*>(g.get());
    if (!ref) {
      fast = false;
      break;
    }
    group_cols.push_back(ref->index());
  }
  for (const auto& a : aggs_) {
    auto get_col = [&](const ExprPtr& e, std::vector<int>* out) {
      if (!e) {
        out->push_back(-1);
        return true;
      }
      auto* ref = dynamic_cast<ColumnRefExpr*>(e.get());
      if (!ref) return false;
      out->push_back(ref->index());
      return true;
    };
    if (!get_col(a.arg, &arg_cols) || !get_col(a.arg2, &arg2_cols)) {
      fast = false;
      break;
    }
  }
  bool single_int_key =
      fast && group_exprs_.size() == 1 &&
      group_exprs_[0]->out_type() != TypeId::kVarchar &&
      group_exprs_[0]->out_type() != TypeId::kDouble;
  // A partial aggregation table. The serial path uses one; the parallel
  // path gives each pool worker its own and merges them afterwards. Group
  // keys live in a FlatKeyIndex (serialized bytes in a single arena);
  // states are addressed by the index's dense insertion-order ids. The
  // single-int-key path keys a FlatIntMap on the raw int64 instead and is
  // flattened into the byte index before merge/output.
  struct AggPartial {
    FlatKeyIndex index;
    FlatIntMap int_index;
    std::vector<uint8_t> int_null;  // NULL-sentinel flag per int_index id
    std::vector<std::vector<AggState>> states;
    std::string scratch;
  };
  AggPartial root;

  auto new_states = [&]() {
    std::vector<AggState> states;
    states.reserve(aggs_.size());
    for (const auto& a : aggs_) states.emplace_back(&a);
    return states;
  };

  // Consumes one batch into `P` on the column-ref fast path. No expression
  // evaluation and no failure modes, so it is safe to run on pool workers
  // against thread-local partials.
  auto consume_fast = [&](const RowBatch& in, AggPartial& P) {
    // Selection-aware: logical row i maps to dense row in.row_at(i); the
    // aggregation table is the compaction point, so filtered batches are
    // consumed without ever materializing the selected rows.
    const size_t n = in.logical_rows();
    auto feed = [&](std::vector<AggState>& states, size_t r) {
      for (size_t a = 0; a < aggs_.size(); ++a) {
        const AggSpec& spec = aggs_[a];
        int c1 = arg_cols[a], c2 = arg2_cols[a];
        // Typed hot path: single-arg non-DISTINCT numeric aggregates
        // consume raw column payloads without boxing.
        if (spec.kind == AggKind::kCountStar) {
          states[a].AddCountStarFast();
          continue;
        }
        if (!spec.distinct && c2 < 0 && c1 >= 0 &&
            spec.kind != AggKind::kCovarPop &&
            spec.kind != AggKind::kCovarSamp) {
          const ColumnVector& cv = in.columns[c1];
          if (cv.IsNull(r)) continue;
          if (cv.type() == TypeId::kDouble) {
            double x = cv.GetDouble(r);
            states[a].AddNumericFast(x, static_cast<int64_t>(x), false);
            continue;
          }
          if (cv.type() != TypeId::kVarchar) {
            int64_t x = cv.GetInt(r);
            states[a].AddNumericFast(static_cast<double>(x), x, true);
            continue;
          }
        }
        Value v1 = c1 < 0 ? Value::Null(TypeId::kInt64)
                          : in.columns[c1].GetValue(r);
        Value v2 = c2 < 0 ? Value::Null(TypeId::kInt64)
                          : in.columns[c2].GetValue(r);
        states[a].Add(v1, v2);
      }
    };
    if (single_int_key) {
      const ColumnVector& kc = in.columns[group_cols[0]];
      for (size_t i = 0; i < n; ++i) {
        const size_t r = in.row_at(i);
        // NULL group keys collapse into one group, keyed by a sentinel
        // tracked separately from the value domain.
        bool is_null = kc.IsNull(r);
        int64_t k = is_null ? INT64_MIN + 1 : kc.GetInt(r);
        bool inserted = false;
        uint32_t id = P.int_index.FindOrInsert(k, &inserted);
        if (inserted) {
          P.states.push_back(new_states());
          P.int_null.push_back(is_null ? 1 : 0);
        }
        feed(P.states[id], r);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const size_t r = in.row_at(i);
        P.scratch.clear();
        for (int c : group_cols) SerializeCell(in.columns[c], r, &P.scratch);
        uint64_t h = HashBytesFast(P.scratch.data(), P.scratch.size());
        bool inserted = false;
        uint32_t id = P.index.FindOrInsert(
            reinterpret_cast<const uint8_t*>(P.scratch.data()),
            P.scratch.size(), h, &inserted);
        if (inserted) P.states.push_back(new_states());
        feed(P.states[id], r);
      }
    }
  };

  // Moves a partial's single-int-key groups into its byte-key index (the
  // merge and output paths speak serialized keys). Keys are distinct, so
  // the dense ids — and with them the states addressing — are preserved.
  auto flatten_int_groups = [&](AggPartial& P) {
    for (uint32_t g = 0; g < P.int_index.size(); ++g) {
      P.scratch.clear();
      if (P.int_null[g]) {
        P.scratch.push_back(static_cast<char>(kKeyTagNull));
      } else {
        char buf[8];
        int64_t k = P.int_index.KeyOf(g);
        P.scratch.push_back(static_cast<char>(kKeyTagInt));
        std::memcpy(buf, &k, 8);
        P.scratch.append(buf, 8);
      }
      uint64_t h = HashBytesFast(P.scratch.data(), P.scratch.size());
      bool inserted = false;
      P.index.FindOrInsert(
          reinterpret_cast<const uint8_t*>(P.scratch.data()),
          P.scratch.size(), h, &inserted);
    }
  };

  // The parallel path additionally requires the fast path: slow-path rows
  // go through expression evaluation, which can fail and is not guaranteed
  // re-entrant across workers.
  const bool parallel = fast && ParallelEligible();
  // Final groups land here: index g in each shard addresses both the
  // serialized key (index) and the agg states.
  struct Shard {
    FlatKeyIndex index;
    std::vector<std::vector<AggState>> states;
  };
  std::vector<Shard> out_shards;
  if (!parallel) {
    RowBatch in;
    for (;;) {
      DASHDB_ASSIGN_OR_RETURN(bool more, child_->NextSel(&in));
      if (!more) break;
      if (fast) {
        consume_fast(in, root);
        continue;
      }
      // Slow path: evaluate the grouping expressions once per batch into
      // typed columns (logical-dense: Evaluate honors the selection, so
      // gcols index by logical row i), then serialize keys per row. Agg
      // arguments still evaluate row-at-a-time against the dense batch.
      const size_t n = in.logical_rows();
      std::vector<ColumnVector> gcols;
      gcols.reserve(group_exprs_.size());
      for (const auto& g : group_exprs_) {
        DASHDB_ASSIGN_OR_RETURN(ColumnVector cv, g->Evaluate(in, *ctx_));
        gcols.push_back(std::move(cv));
      }
      for (size_t i = 0; i < n; ++i) {
        const size_t r = in.row_at(i);
        root.scratch.clear();
        for (const auto& gc : gcols) SerializeCell(gc, i, &root.scratch);
        uint64_t h = HashBytesFast(root.scratch.data(), root.scratch.size());
        bool inserted = false;
        uint32_t id = root.index.FindOrInsert(
            reinterpret_cast<const uint8_t*>(root.scratch.data()),
            root.scratch.size(), h, &inserted);
        if (inserted) root.states.push_back(new_states());
        std::vector<AggState>& states = root.states[id];
        for (size_t a = 0; a < aggs_.size(); ++a) {
          Value v1 = Value::Null(TypeId::kInt64);
          Value v2 = Value::Null(TypeId::kInt64);
          if (aggs_[a].arg) {
            DASHDB_ASSIGN_OR_RETURN(v1,
                                    aggs_[a].arg->EvaluateRow(in, r, *ctx_));
          }
          if (aggs_[a].arg2) {
            DASHDB_ASSIGN_OR_RETURN(v2,
                                    aggs_[a].arg2->EvaluateRow(in, r, *ctx_));
          }
          states[a].Add(v1, v2);
        }
      }
    }
    if (single_int_key) flatten_int_groups(root);
    out_shards.emplace_back();
    out_shards[0].index = std::move(root.index);
    out_shards[0].states = std::move(root.states);
  } else {
    // Morsel-driven parallel aggregation (paper II.B.7): drain the child's
    // batches as morsels, fan them out over the pool building thread-local
    // partials, then merge partials in a hash-partitioned phase.
    std::vector<RowBatch> morsels;
    {
      RowBatch in;
      for (;;) {
        // Selections ride along into the morsels; consume_fast reads
        // through them.
        DASHDB_ASSIGN_OR_RETURN(bool more, child_->NextSel(&in));
        if (!more) break;
        // The collected morsels are the aggregation's dominant footprint;
        // charge them as they arrive so a budget breach aborts mid-collect
        // instead of after the whole input is pinned.
        DASHDB_RETURN_IF_ERROR(
            ChargeMemory(BatchMemoryBytes(in), "group-by materialize"));
        morsels.push_back(std::move(in));
        in = RowBatch();
      }
    }
    std::deque<AggPartial> partials;  // deque: stable element addresses
    std::unordered_map<std::thread::id, AggPartial*> slots;
    std::mutex reg_mu;
    ctx_->pool->ParallelFor(
        morsels.size(),
        [&](size_t i) {
          AggPartial* P;
          {
            std::lock_guard<std::mutex> lk(reg_mu);
            AggPartial*& slot = slots[std::this_thread::get_id()];
            if (!slot) {
              partials.emplace_back();
              slot = &partials.back();
            }
            P = slot;
          }
          consume_fast(morsels[i], *P);
        },
        ctx_->dop, query_ctx());
    // Partials are incomplete if the governed fan-out stopped early.
    DASHDB_RETURN_IF_ERROR(CheckQueryAlive());
    if (single_int_key) {
      for (auto& P : partials) flatten_int_groups(P);
    }
    // Hash-partitioned merge: shard m owns the keys with hash % M == m, so
    // shards build concurrently without locks — each partial group is read
    // (and its states moved) by exactly one shard.
    const size_t M = std::max<size_t>(1, static_cast<size_t>(ctx_->dop));
    std::vector<Shard> shards(M);
    ctx_->pool->ParallelFor(
        M,
        [&](size_t m) {
          Shard& shard = shards[m];
          for (auto& P : partials) {
            for (uint32_t g = 0; g < P.index.size(); ++g) {
              uint64_t h = P.index.HashOf(g);
              if (h % M != m) continue;
              bool inserted = false;
              uint32_t id = shard.index.FindOrInsert(
                  P.index.KeyData(g), P.index.KeyLen(g), h, &inserted);
              if (inserted) {
                shard.states.push_back(std::move(P.states[g]));
              } else {
                for (size_t a = 0; a < aggs_.size(); ++a) {
                  shard.states[id][a].Merge(P.states[g][a]);
                }
              }
            }
          }
        },
        ctx_->dop, query_ctx());
    DASHDB_RETURN_IF_ERROR(CheckQueryAlive());
    out_shards = std::move(shards);
  }

  // Global aggregation with no groups must yield one row even on empty input.
  InitBatchFor(output_, &result_);
  const size_t ngroups = group_exprs_.size();
  size_t total_groups = 0;
  for (const auto& s : out_shards) total_groups += s.index.size();
  if (total_groups == 0 && group_exprs_.empty()) {
    std::vector<AggState> states = new_states();
    for (size_t a = 0; a < aggs_.size(); ++a) {
      result_.columns[a].AppendValue(states[a].Finish());
    }
  } else {
    for (auto& s : out_shards) {
      for (uint32_t g = 0; g < s.index.size(); ++g) {
        AppendSerializedKey(s.index.KeyData(g), s.index.KeyLen(g), ngroups,
                            &result_);
        for (size_t a = 0; a < s.states[g].size(); ++a) {
          result_.columns[ngroups + a].AppendValue(s.states[g][a].Finish());
        }
      }
    }
  }
  DASHDB_RETURN_IF_ERROR(
      ChargeMemory(BatchMemoryBytes(result_), "group-by result"));
  materialized_ = true;
  return Status::OK();
}

Result<bool> HashAggOp::NextImpl(RowBatch* out) {
  if (!materialized_) DASHDB_RETURN_IF_ERROR(Materialize());
  if (done_) return false;
  *out = std::move(result_);
  done_ = true;
  return out->num_rows() > 0 || !out->columns.empty();
}

// SortOp / TopNOp live in exec/sort.cc (parallel sort subsystem).

// ----------------------------------------------------------------- Limit --

LimitOp::LimitOp(OperatorPtr child, int64_t limit, int64_t offset)
    : child_(std::move(child)), limit_(limit), offset_(offset) {
  output_ = child_->output();
}

Status LimitOp::OpenImpl() {
  skipped_ = 0;
  emitted_ = 0;
  child_pulls_ = 0;
  done_ = limit_ == 0;  // LIMIT 0 never pulls the child at all
  return child_->Open();
}

Result<bool> LimitOp::NextImpl(RowBatch* out) {
  if (done_) return false;
  RowBatch in;
  for (;;) {
    ++child_pulls_;
    DASHDB_ASSIGN_OR_RETURN(bool more, child_->NextSel(&in));
    if (!more) {
      done_ = true;
      return false;
    }
    InitBatchFor(output_, out);
    const size_t lrows = in.logical_rows();
    for (size_t i = 0; i < lrows; ++i) {
      if (skipped_ < offset_) {
        ++skipped_;
        continue;
      }
      if (limit_ >= 0 && emitted_ >= limit_) break;
      AppendRowFrom(in, in.row_at(i), out);
      ++emitted_;
    }
    // Latch completion the moment the limit is met: no later NextImpl may
    // touch the child again (verified by child_pulls() in tests).
    if (limit_ >= 0 && emitted_ >= limit_) {
      done_ = true;
      GlobalExecInstruments().limit_early_stops->Add(1);
    }
    if (out->num_rows() > 0) return true;
    if (done_) return false;
  }
}

std::string LimitOp::AnalyzeExtra() const {
  return " pulls=" + std::to_string(child_pulls_);
}

// ---------------------------------------------------------------- Values --

ValuesOp::ValuesOp(RowBatch batch, std::vector<OutputCol> cols)
    : batch_(std::move(batch)) {
  output_ = std::move(cols);
}

Status ValuesOp::OpenImpl() {
  done_ = false;
  return Status::OK();
}

Result<bool> ValuesOp::NextImpl(RowBatch* out) {
  if (done_) return false;
  *out = batch_;
  done_ = true;
  return true;
}

// -------------------------------------------------------------- UnionAll --

UnionAllOp::UnionAllOp(std::vector<OperatorPtr> children)
    : children_(std::move(children)) {
  output_ = children_.front()->output();
}

Status UnionAllOp::OpenImpl() {
  current_ = 0;
  for (auto& c : children_) DASHDB_RETURN_IF_ERROR(c->Open());
  return Status::OK();
}

Result<bool> UnionAllOp::NextImpl(RowBatch* out) {
  while (current_ < children_.size()) {
    DASHDB_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(out));
    if (more) return true;
    ++current_;
  }
  return false;
}

// ---------------------------------------------------------- Materialized --

MaterializedOp::MaterializedOp(OperatorPtr child, RowBatch data)
    : child_(std::move(child)), data_(std::move(data)) {
  output_ = child_->output();
}

Status MaterializedOp::OpenImpl() {
  // The child was already drained by the assembler; re-opening it would
  // re-execute the relation. Only the emit state resets.
  done_ = false;
  return Status::OK();
}

Result<bool> MaterializedOp::NextImpl(RowBatch* out) {
  if (done_ || data_.num_rows() == 0) return false;
  *out = data_;
  done_ = true;
  return true;
}

// ---------------------------------------------------------- AdaptiveJoin --

AdaptiveJoinOp::AdaptiveJoinOp(std::vector<OperatorPtr> sources,
                               std::vector<AdaptiveJoinEdge> edges,
                               std::vector<double> source_est_rows,
                               bool adaptive, const ExecContext* ctx)
    : sources_(std::move(sources)),
      edges_(std::move(edges)),
      source_est_rows_(std::move(source_est_rows)),
      adaptive_(adaptive),
      ctx_(ctx) {
  for (const auto& s : sources_) {
    for (const auto& c : s->output()) output_.push_back(c);
  }
}

std::string AdaptiveJoinOp::label() const {
  return "AdaptiveJoin(sources=" + std::to_string(sources_.size()) +
         " edges=" + std::to_string(edges_.size()) +
         (adaptive_ ? "" : " adaptive=off") + ")";
}

std::vector<const Operator*> AdaptiveJoinOp::children() const {
  if (assembled_) return {chain_.get()};
  std::vector<const Operator*> out;
  for (const auto& s : sources_) out.push_back(s.get());
  return out;
}

std::string AdaptiveJoinOp::AnalyzeExtra() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " replans=%llu blooms=%llu",
                static_cast<unsigned long long>(replans_),
                static_cast<unsigned long long>(blooms_));
  return buf;
}

Status AdaptiveJoinOp::OpenImpl() {
  // Assembly is deferred to the first Next so Open stays cheap (EXPLAIN
  // opens nothing). A re-open after assembly re-opens the built chain;
  // materialized relations replay their captured batches.
  if (assembled_) return chain_->Open();
  return Status::OK();
}

Status AdaptiveJoinOp::Assemble() {
  const int n = static_cast<int>(sources_.size());
  const double kReplanLogThreshold = std::log2(10.0);

  // Per-item output widths and FROM-order offsets, captured before the
  // sources are moved into the chain.
  std::vector<int> item_width(n, 0), from_off(n, 0);
  for (int i = 0, off = 0; i < n; ++i) {
    item_width[i] = static_cast<int>(sources_[i]->output().size());
    from_off[i] = off;
    off += item_width[i];
  }

  std::vector<JoinRelation> rels(n);
  for (int i = 0; i < n; ++i) rels[i].rows = source_est_rows_[i];
  std::vector<JoinGraphEdge> graph;
  graph.reserve(edges_.size());
  for (const auto& e : edges_) {
    graph.push_back({e.left_item, e.right_item, e.left_ndv, e.right_ndv});
  }

  std::vector<int> order = OrderJoins(rels, graph);

  // Materialize every non-driving relation in join order, observing true
  // cardinalities as we go. A >10x mis-estimate with joins still ahead
  // re-plans the remaining suffix using the observed counts.
  std::vector<RowBatch> mat(n);
  const int driver = order[0];
  for (size_t k = 1; k < order.size(); ++k) {
    const int r = order[k];
    DASHDB_ASSIGN_OR_RETURN(mat[r], DrainOperator(sources_[r].get()));
    DASHDB_RETURN_IF_ERROR(
        ChargeMemory(BatchMemoryBytes(mat[r]), "adaptive join materialize"));
    const double observed = static_cast<double>(mat[r].num_rows());
    const double est = std::max(0.0, rels[r].rows);
    rels[r].rows = observed;
    if (adaptive_ && k + 1 < order.size()) {
      const double err = std::fabs(std::log2((observed + 1) / (est + 1)));
      if (err > kReplanLogThreshold) {
        std::vector<int> prefix(order.begin(), order.begin() + k + 1);
        order = OrderJoins(rels, graph, prefix);
        ++replans_;
        GlobalExecInstruments().adaptive_replans->Add(1);
      }
    }
  }

  // Semi-join reduction: each materialized relation with an edge straight
  // to the driving relation pushes a Bloom filter of its key column into
  // the driving scan before that scan runs.
  for (const auto& e : edges_) {
    int mat_item = -1, mat_col = -1, drv_col = -1;
    if (e.left_item == driver && e.right_item != driver) {
      mat_item = e.right_item;
      mat_col = e.right_col;
      drv_col = e.left_col;
    } else if (e.right_item == driver && e.left_item != driver) {
      mat_item = e.left_item;
      mat_col = e.left_col;
      drv_col = e.right_col;
    } else {
      continue;
    }
    const RowBatch& b = mat[mat_item];
    if (b.num_rows() == 0) continue;
    const ColumnVector& kc = b.columns[mat_col];
    auto bloom = std::make_shared<BloomPrefilter>();
    bloom->Init(b.num_rows());
    for (size_t r = 0; r < b.num_rows(); ++r) {
      if (kc.IsNull(r)) continue;
      bloom->Add(HashCell(kc, r));
    }
    if (sources_[driver]->AcceptRuntimeFilter(drv_col, std::move(bloom))) {
      ++blooms_;
    }
  }

  // Assemble the left-deep chain: the driver streams as the probe side;
  // each later relation replays its captured batch into a hash-join build.
  // chain_off[i] = column offset of item i inside the chain output.
  std::vector<int> chain_off(n, -1);
  std::vector<char> in_chain(n, 0);
  OperatorPtr root = std::move(sources_[driver]);
  chain_off[driver] = 0;
  in_chain[driver] = 1;
  int width = static_cast<int>(root->output().size());
  double est_out = source_est_rows_[driver];
  for (size_t k = 1; k < order.size(); ++k) {
    const int r = order[k];
    std::vector<ExprPtr> pks, bks;
    double best_ndv = 0;
    for (const auto& e : edges_) {
      int chain_item = -1, chain_col = -1, new_col = -1;
      double ndv = 0;
      if (e.left_item == r && in_chain[e.right_item]) {
        chain_item = e.right_item;
        chain_col = e.right_col;
        new_col = e.left_col;
        ndv = std::max(e.left_ndv, e.right_ndv);
      } else if (e.right_item == r && in_chain[e.left_item]) {
        chain_item = e.left_item;
        chain_col = e.left_col;
        new_col = e.right_col;
        ndv = std::max(e.left_ndv, e.right_ndv);
      } else {
        continue;
      }
      const auto& probe_col = output_[from_off[chain_item] + chain_col];
      const auto& build_col = output_[from_off[r] + new_col];
      pks.push_back(std::make_unique<ColumnRefExpr>(
          chain_off[chain_item] + chain_col, probe_col.type, probe_col.name));
      bks.push_back(std::make_unique<ColumnRefExpr>(new_col, build_col.type,
                                                    build_col.name));
      best_ndv = std::max(best_ndv, ndv);
    }
    const double build_rows = rels[r].rows;
    auto build = std::make_unique<MaterializedOp>(std::move(sources_[r]),
                                                  std::move(mat[r]));
    const int add_width = static_cast<int>(build->output().size());
    if (pks.empty()) {
      // Disconnected relation: cross product (rare; the order places these
      // last).
      root = std::make_unique<NestedLoopJoinOp>(std::move(root),
                                                std::move(build), nullptr,
                                                JoinType::kCross, ctx_);
      est_out = est_out * std::max(1.0, build_rows);
    } else {
      root = std::make_unique<HashJoinOp>(std::move(root), std::move(build),
                                          std::move(pks), std::move(bks),
                                          JoinType::kInner, ctx_);
      est_out = est_out * std::max(0.0, build_rows) /
                std::max(1.0, best_ndv > 0 ? best_ndv
                                           : std::min(est_out, build_rows));
    }
    root->set_est_rows(est_out);
    chain_off[r] = width;
    in_chain[r] = 1;
    width += add_width;
  }

  // Chain output is in join order; the operator's contract is FROM order.
  // out_perm_[chain position] = FROM position.
  out_perm_.assign(width, 0);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < item_width[i]; ++c) {
      out_perm_[chain_off[i] + c] = from_off[i] + c;
    }
  }

  chain_ = std::move(root);
  // The chain was built at runtime, after AttachQueryContext walked the
  // bound tree — re-attach so its hash builds stay governable. (The moved
  // sources keep their attachment; this covers the new join nodes.)
  AttachQueryContext(chain_.get(), query_ctx());
  assembled_ = true;
  return chain_->Open();
}

Result<bool> AdaptiveJoinOp::NextImpl(RowBatch* out) {
  if (!assembled_) DASHDB_RETURN_IF_ERROR(Assemble());
  RowBatch in;
  DASHDB_ASSIGN_OR_RETURN(bool more, chain_->Next(&in));
  if (!more) return false;
  // Permute chain columns back to FROM order.
  out->columns.clear();
  out->columns.resize(in.columns.size(), ColumnVector(TypeId::kInt64));
  for (size_t c = 0; c < in.columns.size(); ++c) {
    out->columns[out_perm_[c]] = std::move(in.columns[c]);
  }
  return true;
}

}  // namespace dashdb
